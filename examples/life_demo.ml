(* The asynchronous distributed Game of Life (paper sec. 11): the partial
   order of the distributed execution, functional correctness against the
   synchronous reference, and a concrete asynchrony witness.

   Run with: dune exec examples/life_demo.exe *)

open Gem

let render grid =
  Array.iter
    (fun row ->
      Array.iter (fun alive -> print_string (if alive then "#" else ".")) row;
      print_newline ())
    grid

let () =
  let width = 5 and height = 5 and generations = 3 in
  let alive = [ (2, 1); (2, 2); (2, 3) ] (* blinker *) in
  Printf.printf "Asynchronous Game of Life, %dx%d torus, %d generations\n\n" width height
    generations;
  List.iteri
    (fun g grid ->
      Printf.printf "generation %d:\n" g;
      render grid;
      print_newline ())
    (Life.reference ~width ~height ~generations ~alive);

  let comp = Life.build ~width ~height ~generations ~alive in
  Printf.printf "distributed computation: %d state events, temporal order width = %d\n"
    (Computation.n_events comp)
    (Poset.width (Computation.temporal_exn comp));

  let spec = Life.spec ~width ~height in
  Printf.printf "legality: %b\n" (Legality.is_legal spec comp);
  Printf.printf "functional correctness (every state = reference): %b\n"
    (Check.holds spec comp (Life.matches_reference ~width ~height ~generations ~alive));

  (match Life.asynchrony_witness comp with
  | Some (a, b) ->
      Format.printf
        "asynchrony witness: %a and %a are potentially concurrent across generations@."
        Event.pp_id a Event.pp_id b
  | None -> print_endline "no asynchrony witness (grid too coupled)");

  (* Progress (eventually every final state occurs) on sampled runs: the
     full run set is astronomically large, so we sample. *)
  let progress =
    Check.check_formula
      ~strategy:(Strategy.Sampled { seed = 11; count = 5 })
      spec comp ~name:"progress"
      (Life.progress ~generations)
  in
  Printf.printf "progress on 5 sampled runs: %b\n" (Verdict.ok progress)
