(* The distributed database update application (paper sec. 11): timestamped
   updates propagate over CSP channels; every exhaustively-explored
   execution converges and none deadlocks.

   Run with: dune exec examples/db_demo.exe *)

open Gem

let () =
  let sites = 3 in
  Printf.printf "Distributed database update, %d sites, full mesh, Thomas write rule\n\n" sites;
  let program = Db_update.program ~sites in
  let outcome = Csp.explore program in
  Printf.printf "distinct computations: %d, deadlocks: %d\n"
    (List.length outcome.Csp.computations)
    (List.length outcome.Csp.deadlocks);

  let spec = Csp.language_spec ~name:"db-update" program in
  let converge = Db_update.convergence in
  let to_max = Db_update.converges_to ~sites in
  let all_ok =
    List.for_all
      (fun comp -> Check.holds spec comp Formula.(converge &&& to_max))
      outcome.Csp.computations
  in
  Printf.printf "all executions converge to the newest update (%d): %b\n" (100 + sites)
    all_ok;

  match outcome.Csp.computations with
  | comp :: _ ->
      let finals = Computation.events_of_class comp "Final" in
      Printf.printf "\nfinal values in one computation:\n";
      List.iter
        (fun h ->
          let e = Computation.event comp h in
          Format.printf "  %s: %a@." e.Event.id.element Value.pp (Event.param e "p0"))
        finals
  | [] -> ()
