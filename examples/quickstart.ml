(* Quickstart: the paper's integer-variable example (§4, §6, §8.2),
   built and checked by hand.

   Run with: dune exec examples/quickstart.exe *)

open Gem

let () =
  print_endline "== GEM quickstart: the Var element ==";

  (* 1. Build a computation: a process assigns 1 then 2 to Var, then reads
     it back — the paper's Var^i events. *)
  let b = Build.create () in
  let step0 = Build.emit b ~element:"Proc" ~klass:"Step" () in
  let assign1 =
    Build.emit_enabled_by b ~by:step0 ~element:"Var" ~klass:"Assign"
      ~params:[ ("newval", Value.Int 1) ] ()
  in
  let step1 = Build.emit_enabled_by b ~by:assign1 ~element:"Proc" ~klass:"Step" () in
  let assign2 =
    Build.emit_enabled_by b ~by:step1 ~element:"Var" ~klass:"Assign"
      ~params:[ ("newval", Value.Int 2) ] ()
  in
  let getval =
    Build.emit_enabled_by b ~by:assign2 ~element:"Var" ~klass:"Getval"
      ~params:[ ("oldval", Value.Int 2) ] ()
  in
  let comp = Build.finish b in
  Format.printf "%a@.@." Computation.pp comp;

  (* 2. Describe the specification: Proc is a free-running element, Var is
     an instance of the paper's Variable element type (which carries the
     "a Getval yields the value last assigned" restriction). *)
  let proc_type =
    Etype.make "Stepper" ~events:[ { Etype.klass = "Step"; schema = [] } ] ()
  in
  let spec =
    Spec.make "quickstart" ~elements:[ ("Proc", proc_type); ("Var", Etype.variable) ] ()
  in

  (* 3. Check: legality + the Variable type restriction. *)
  let verdict = Check.check spec comp in
  Format.printf "spec check: %a@.@." (Verdict.pp (Some comp)) verdict;

  (* 4. Ask order-theoretic questions, per the model. *)
  Format.printf "assign1 => getval (temporal)? %b@."
    (Computation.temp_lt comp assign1 getval);
  Format.printf "assign1 =>el assign2 (element order)? %b@."
    (Computation.elem_lt comp assign1 assign2);
  Format.printf "histories: %d, complete runs (vhs): %d, linearizations: %d@.@."
    (History.count comp) (Vhs.count comp)
    (List.length (Vhs.all_linearizations comp));

  (* 5. A restriction of our own, in the paper's notation: every Getval is
     temporally preceded by some Assign. *)
  let mine =
    Formula.(
      forall [ ("g", Cls "Getval") ]
        (exists [ ("a", Cls "Assign") ] (temp_lt "a" "g")))
  in
  Format.printf "custom restriction %s: %b@." (Formula.to_string mine)
    (Check.holds spec comp mine);

  (* 6. Export for graphviz. *)
  Dot.save "quickstart.dot" comp;
  print_endline "wrote quickstart.dot (render with: dot -Tpng quickstart.dot)"
