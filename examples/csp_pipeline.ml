(* A CSP bounded-buffer pipeline: producers -> buffer process -> consumers,
   in Hoare's guarded-command style, verified against the bounded-buffer
   problem specification and CSP's own GEM description.

   Run with: dune exec examples/csp_pipeline.exe *)

open Gem

let () =
  let capacity = 2 and producers = 2 and consumers = 1 and items_each = 1 in
  Printf.printf "CSP bounded buffer: capacity=%d, %d producers x %d items, %d consumer\n\n"
    capacity producers items_each consumers;
  let program = Buffer_problem.csp_solution ~capacity ~producers ~consumers ~items_each in
  let outcome = Csp.explore program in
  Printf.printf "schedules explored: %d distinct computations, %d deadlocks\n"
    (List.length outcome.Csp.computations)
    (List.length outcome.Csp.deadlocks);

  (* Every computation satisfies CSP's own semantics restrictions
     (simultaneity of I/O exchange, matching, value transfer). *)
  let lang_spec = Csp.language_spec program in
  let lang_ok =
    List.for_all
      (fun comp -> Verdict.ok (Check.check lang_spec comp))
      outcome.Csp.computations
  in
  Printf.printf "CSP language restrictions (io-simultaneity, matching, value): %s\n"
    (if lang_ok then "SAT" else "VIOLATED");

  (* And refines the bounded-buffer problem. *)
  let problem = Buffer_problem.spec ~capacity in
  let ok =
    Refine.sat_ok
      ~strategy:(Strategy.Linearizations (Some 200))
      ~problem ~map:Buffer_problem.csp_correspondence outcome.Csp.computations
  in
  Printf.printf "bounded-buffer-%d problem (value-fifo + capacity): %s\n" capacity
    (if ok then "SAT" else "VIOLATED");

  (* Show one computation. *)
  match outcome.Csp.computations with
  | comp :: _ ->
      Printf.printf "\nfirst computation (%d events):\n" (Computation.n_events comp);
      Format.printf "%a@." Computation.pp comp
  | [] -> ()
