(* Load a GEM specification from its concrete syntax (examples/variable.gem)
   and check computations against it — the paper presents specifications
   textually; this demo round-trips that.

   Run with: dune exec examples/parse_demo.exe (from the repo root) *)

open Gem

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let spec_path =
  (* dune exec runs in the project root by default; fall back to the
     source dir when run from elsewhere. *)
  if Sys.file_exists "examples/variable.gem" then "examples/variable.gem"
  else "variable.gem"

let () =
  let src = read_file spec_path in
  let spec =
    match Parser.parse_spec src with
    | Ok s -> s
    | Error m ->
        Printf.eprintf "parse error: %s\n" m;
        exit 1
  in
  Format.printf "parsed specification:@.%a@.@." Spec.pp spec;

  let good =
    let b = Build.create () in
    let s = Build.emit b ~element:"Proc" ~klass:"Step" () in
    let a =
      Build.emit_enabled_by b ~by:s ~element:"Var" ~klass:"Assign"
        ~params:[ ("newval", Value.Int 7) ] ()
    in
    let _ =
      Build.emit_enabled_by b ~by:a ~element:"Var" ~klass:"Getval"
        ~params:[ ("oldval", Value.Int 7) ] ()
    in
    Build.finish b
  in
  Format.printf "well-behaved computation: %a@.@."
    (Verdict.pp (Some good))
    (Check.check spec good);

  (* A stale read violates the element type's own restriction. *)
  let stale =
    let b = Build.create () in
    let s = Build.emit b ~element:"Proc" ~klass:"Step" () in
    let a =
      Build.emit_enabled_by b ~by:s ~element:"Var" ~klass:"Assign"
        ~params:[ ("newval", Value.Int 7) ] ()
    in
    let _ =
      Build.emit_enabled_by b ~by:a ~element:"Var" ~klass:"Getval"
        ~params:[ ("oldval", Value.Int 99) ] ()
    in
    Build.finish b
  in
  Format.printf "stale read: %a@.@." (Verdict.pp (Some stale)) (Check.check spec stale);

  (* The thread defined in the file labels the access chain. *)
  let labelled = Spec.label_threads spec good in
  Format.printf "thread instances of 'access': %d@."
    (List.length (Thread.instances labelled "access"))
