(* The paper's sec. 7 worked example, interactively: the diamond
   computation's history lattice, its valid history sequences (including
   the one where e2 and e3 occur "at the same time"), and temporal
   evaluation over the runs.

   Run with: dune exec examples/histories_demo.exe *)

open Gem

let () =
  print_endline "== The paper's sec. 7 example ==";
  print_endline "e1 |> e2, e1 |> e3, e2 |> e4, e3 |> e4, one element each\n";
  let b = Build.create () in
  let e1 = Build.emit b ~element:"E1" ~klass:"A" () in
  let e2 = Build.emit_enabled_by b ~by:e1 ~element:"E2" ~klass:"B" () in
  let e3 = Build.emit_enabled_by b ~by:e1 ~element:"E3" ~klass:"C" () in
  let e4 = Build.emit_enabled_by b ~by:e2 ~element:"E4" ~klass:"D" () in
  Build.enable b e3 e4;
  let comp = Build.finish b in

  Printf.printf "histories (the paper lists 5; plus the empty one):\n";
  List.iter (fun h -> Format.printf "  %a@." History.pp h) (History.all comp);

  Printf.printf "\ncomplete runs (valid history sequences):\n";
  List.iter (fun run -> Format.printf "  %a@." Vhs.pp run) (Vhs.all comp);
  Printf.printf
    "note the run whose middle step is {E2^0,E3^0}: e2 and e3 occur\n\
     \"at the same time\" — no linearization contains that history jump.\n\n";

  (* Potential concurrency, straight from the model. *)
  Printf.printf "e2 and e3 potentially concurrent: %b\n" (Computation.concurrent comp e2 e3);
  Printf.printf "e1 => e4 (temporal): %b\n\n" (Computation.temp_lt comp e1 e4);

  (* Temporal evaluation differs per run. *)
  let env = [ ("e2", e2); ("e3", e3) ] in
  let separated =
    Formula.(
      eventually (occurred "e2" &&& neg (occurred "e3")))
  in
  List.iteri
    (fun i run ->
      Format.printf "run %d: <>(e2 without e3) = %b@." i (Eval.eval_run ~env run separated))
    (Vhs.all comp);

  (* The same property through the checker's strategies. *)
  let et = Etype.make "T" ~events:[ { Etype.klass = "A"; schema = [] };
                                    { klass = "B"; schema = [] };
                                    { klass = "C"; schema = [] };
                                    { klass = "D"; schema = [] } ] () in
  let spec = Spec.make "diamond"
      ~elements:[ ("E1", et); ("E2", et); ("E3", et); ("E4", et) ] () in
  (* Closed form of "some history separates B from C". *)
  let closed =
    Formula.(
      eventually
        (exists [ ("b", Cls "B") ]
           (occurred "b" &&& neg (exists [ ("c", Cls "C") ] (occurred "c")))
         ||| exists [ ("c", Cls "C") ]
               (occurred "c" &&& neg (exists [ ("b", Cls "B") ] (occurred "b")))))
  in
  Printf.printf "\nholds on ALL runs (exhaustive vhs)?  %b\n"
    (Check.holds ~strategy:(Strategy.Exhaustive_vhs None) spec comp closed);
  Printf.printf "holds on all linearizations?         %b\n"
    (Check.holds ~strategy:(Strategy.Linearizations None) spec comp closed);
  print_endline
    "(they differ exactly on the simultaneous step - the E14 ablation\n\
     quantifies this)"
