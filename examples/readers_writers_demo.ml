(* The paper's §9 case study, mechanized: the ReadersWriters monitor is
   explored exhaustively and verified against all five versions of the
   Readers/Writers problem specification; mutated monitors are refuted.

   Run with: dune exec examples/readers_writers_demo.exe *)

open Gem
module RW = Readers_writers

let strategy = Strategy.Linearizations (Some 400)

let verdict_of monitor version ~readers ~writers =
  let program = RW.program ~monitor ~readers ~writers in
  let outcome = Monitor.explore program in
  let problem = RW.spec version ~users:(RW.user_names ~readers ~writers) in
  let ok =
    Refine.sat_ok ~strategy ~edges:Refine.Actor_paths ~problem ~map:RW.correspondence
      outcome.Monitor.computations
  in
  (List.length outcome.Monitor.computations, List.length outcome.Monitor.deadlocks, ok)

let () =
  let readers = 2 and writers = 1 in
  Printf.printf "Readers/Writers, %d readers + %d writer, exhaustive schedules\n\n" readers
    writers;
  let monitors =
    [
      ("paper-monitor (sec. 9)", RW.paper_monitor);
      ("writers-priority", RW.writers_priority_monitor);
      ("buggy-wakeup", RW.buggy_monitor);
      ("no-exclusion", RW.no_exclusion_monitor);
    ]
  in
  Printf.printf "%-24s %-22s %6s %5s  %s\n" "monitor" "problem version" "comps" "dead"
    "verdict";
  List.iter
    (fun (mname, monitor) ->
      List.iter
        (fun version ->
          let comps, dead, ok = verdict_of monitor version ~readers ~writers in
          Printf.printf "%-24s %-22s %6d %5d  %s\n%!" mname (RW.version_name version)
            comps dead
            (if ok then "SAT" else "VIOLATED"))
        RW.all_versions;
      print_newline ())
    monitors;
  (* The buggy wakeup only shows with two contending writers. *)
  Printf.printf "with 1 reader + 2 writers (exposes the buggy wakeup):\n";
  List.iter
    (fun (mname, monitor) ->
      let comps, dead, ok = verdict_of monitor RW.Readers_priority ~readers:1 ~writers:2 in
      Printf.printf "%-24s %-22s %6d %5d  %s\n%!" mname
        (RW.version_name RW.Readers_priority)
        comps dead
        (if ok then "SAT" else "VIOLATED"))
    [ ("paper-monitor (sec. 9)", RW.paper_monitor); ("buggy-wakeup", RW.buggy_monitor) ];
  print_newline ();
  print_endline
    "Expected: the paper's monitor satisfies free-for-all and readers-priority\n\
     (its sec. 9 theorem) and violates the writer-favouring versions; the\n\
     buggy variant (EndWrite wakes writers first) loses readers-priority once\n\
     two writers contend; the no-exclusion variant even loses mutual exclusion."
