(* The whole sink is pre-allocated at load time: a fixed array of
   atomics for counters, another for span aggregates. Recording is
   [if Atomic.get on then Atomic.incr cell] — when disabled that is one
   load and a branch, which is what keeps the instrumented hot paths
   within the <2% overhead budget (BENCH_telemetry.json measures it).
   Nothing here allocates on the hot path. *)

type counter =
  | Configs_explored
  | Configs_reduced
  | Memo_hits
  | Memo_misses
  | Sleep_prunes
  | Deque_steals
  | Shard_collisions
  | Runs_enumerated
  | Formula_evals
  | Vhs_histories
  | Budget_stop_deadline
  | Budget_stop_configs
  | Budget_stop_runs
  | Budget_stop_memory
  | Fingerprint_collisions
  | Footprint_checks
  | Spill_bytes
  | Spill_chunks
  | Checkpoint_writes
  | Faults_injected
  | Faults_survived
  | Bitstate_saturated_prunes
  | Batches_stolen
  | Batch_probe_hits
  | Local_cache_hits
  | Cache_hits
  | Cache_misses
  | Requests_coalesced
  | Explorations_shared
  | Races_detected
  | Backtrack_points
  | Source_prunes

let counter_idx = function
  | Configs_explored -> 0
  | Configs_reduced -> 1
  | Memo_hits -> 2
  | Memo_misses -> 3
  | Sleep_prunes -> 4
  | Deque_steals -> 5
  | Shard_collisions -> 6
  | Runs_enumerated -> 7
  | Formula_evals -> 8
  | Vhs_histories -> 9
  | Budget_stop_deadline -> 10
  | Budget_stop_configs -> 11
  | Budget_stop_runs -> 12
  | Budget_stop_memory -> 13
  | Fingerprint_collisions -> 14
  | Footprint_checks -> 15
  | Spill_bytes -> 16
  | Spill_chunks -> 17
  | Checkpoint_writes -> 18
  | Faults_injected -> 19
  | Faults_survived -> 20
  | Bitstate_saturated_prunes -> 21
  | Batches_stolen -> 22
  | Batch_probe_hits -> 23
  | Local_cache_hits -> 24
  | Cache_hits -> 25
  | Cache_misses -> 26
  | Requests_coalesced -> 27
  | Explorations_shared -> 28
  | Races_detected -> 29
  | Backtrack_points -> 30
  | Source_prunes -> 31

let n_counters = 32

let counter_name = function
  | Configs_explored -> "configs_explored"
  | Configs_reduced -> "configs_reduced"
  | Memo_hits -> "memo_hits"
  | Memo_misses -> "memo_misses"
  | Sleep_prunes -> "sleep_prunes"
  | Deque_steals -> "deque_steals"
  | Shard_collisions -> "shard_collisions"
  | Runs_enumerated -> "runs_enumerated"
  | Formula_evals -> "formula_evals"
  | Vhs_histories -> "vhs_histories"
  | Budget_stop_deadline -> "deadline-exceeded"
  | Budget_stop_configs -> "config-budget"
  | Budget_stop_runs -> "run-cap"
  | Budget_stop_memory -> "memory-watermark"
  | Fingerprint_collisions -> "fingerprint_collisions"
  | Footprint_checks -> "footprint_checks"
  | Spill_bytes -> "spill_bytes"
  | Spill_chunks -> "spill_chunks"
  | Checkpoint_writes -> "checkpoint_writes"
  | Faults_injected -> "faults_injected"
  | Faults_survived -> "faults_survived"
  | Bitstate_saturated_prunes -> "bitstate_saturated_prunes"
  | Batches_stolen -> "batches_stolen"
  | Batch_probe_hits -> "batch_probe_hits"
  | Local_cache_hits -> "local_cache_hits"
  | Cache_hits -> "cache_hits"
  | Cache_misses -> "cache_misses"
  | Requests_coalesced -> "requests_coalesced"
  | Explorations_shared -> "explorations_shared"
  | Races_detected -> "races_detected"
  | Backtrack_points -> "backtrack_points"
  | Source_prunes -> "source_prunes"

type phase =
  | Interp_step
  | Canon_key
  | Seen_table
  | Run_enum
  | Formula_eval
  | Project
  | Merge

let phase_idx = function
  | Interp_step -> 0
  | Canon_key -> 1
  | Seen_table -> 2
  | Run_enum -> 3
  | Formula_eval -> 4
  | Project -> 5
  | Merge -> 6

let n_phases = 7
let phases = [ Interp_step; Canon_key; Seen_table; Run_enum; Formula_eval; Project; Merge ]

let phase_name = function
  | Interp_step -> "interp_step"
  | Canon_key -> "canon_key"
  | Seen_table -> "seen_table"
  | Run_enum -> "run_enum"
  | Formula_eval -> "formula_eval"
  | Project -> "project"
  | Merge -> "merge"

let on = Atomic.make false
let trace_on = Atomic.make false
let counters = Array.init n_counters (fun _ -> Atomic.make 0)
let span_totals = Array.init n_phases (fun _ -> Atomic.make 0)
let span_counts = Array.init n_phases (fun _ -> Atomic.make 0)

let enabled () = Atomic.get on
let enable () = Atomic.set on true
let disable () = Atomic.set on false

(* gettimeofday is the only wall clock the stdlib offers portably; spans
   clamp negative deltas to zero so an NTP step cannot produce nonsense
   aggregates. Resolution (~1us) is fine for the phases timed here. *)
let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

let hit c = if Atomic.get on then Atomic.incr counters.(counter_idx c)

let add c n =
  if Atomic.get on then ignore (Atomic.fetch_and_add counters.(counter_idx c) n)

let read c = Atomic.get counters.(counter_idx c)

(* ------------------------------------------------------------------ *)
(* Trace buffers (domain-local, registered globally)                   *)
(* ------------------------------------------------------------------ *)

type trace_sink = { mutable t_file : string option; mutable t_epoch : int }

let sink = { t_file = None; t_epoch = 0 }
let trace_mutex = Mutex.create ()
let trace_bufs : Buffer.t list ref = ref []

let trace_key =
  Domain.DLS.new_key (fun () ->
      let b = Buffer.create 4096 in
      Mutex.protect trace_mutex (fun () -> trace_bufs := b :: !trace_bufs);
      b)

let emit_trace p t0 dur_ns =
  let b = Domain.DLS.get trace_key in
  Buffer.add_string b
    (Printf.sprintf
       {|{"name":"%s","cat":"gem","ph":"X","ts":%.3f,"dur":%.3f,"pid":0,"tid":%d}|}
       (phase_name p)
       (float_of_int (t0 - sink.t_epoch) /. 1e3)
       (float_of_int dur_ns /. 1e3)
       (Domain.self () :> int));
  Buffer.add_char b '\n'

let trace_to file =
  Mutex.protect trace_mutex (fun () ->
      sink.t_file <- Some file;
      sink.t_epoch <- now_ns ());
  Atomic.set trace_on true;
  enable ()

let tracing () = Atomic.get trace_on

let flush_trace () =
  match sink.t_file with
  | None -> ()
  | Some file ->
      let bufs = Mutex.protect trace_mutex (fun () -> !trace_bufs) in
      let oc = open_out file in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> List.iter (fun b -> Buffer.output_buffer oc b) bufs)

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let span_begin _p = if Atomic.get on then now_ns () else 0

let span_end p t0 =
  if t0 <> 0 then begin
    let dt = now_ns () - t0 in
    let dt = if dt < 0 then 0 else dt in
    let i = phase_idx p in
    ignore (Atomic.fetch_and_add span_totals.(i) dt);
    Atomic.incr span_counts.(i);
    if Atomic.get trace_on then emit_trace p t0 dt
  end

let span_count p = Atomic.get span_counts.(phase_idx p)
let span_ns p = Atomic.get span_totals.(phase_idx p)

let time p f =
  let t0 = span_begin p in
  Fun.protect ~finally:(fun () -> span_end p t0) f

(* Checkpoint support: export/import counter totals by name. Only
   counters are persisted — spans and trace buffers are diagnostic
   timing data that cannot meaningfully survive a process restart. *)

let all_counters =
  [
    Configs_explored; Configs_reduced; Memo_hits; Memo_misses; Sleep_prunes;
    Deque_steals; Shard_collisions; Runs_enumerated; Formula_evals;
    Vhs_histories; Budget_stop_deadline; Budget_stop_configs; Budget_stop_runs;
    Budget_stop_memory; Fingerprint_collisions; Footprint_checks; Spill_bytes;
    Spill_chunks; Checkpoint_writes; Faults_injected; Faults_survived;
    Bitstate_saturated_prunes; Batches_stolen; Batch_probe_hits;
    Local_cache_hits; Cache_hits; Cache_misses; Requests_coalesced;
    Explorations_shared; Races_detected; Backtrack_points; Source_prunes;
  ]

let snapshot_counters () = List.map (fun c -> (counter_name c, read c)) all_counters

let restore_counters kvs =
  List.iter
    (fun c ->
      match List.assoc_opt (counter_name c) kvs with
      | Some v -> Atomic.set counters.(counter_idx c) v
      | None -> ())
    all_counters

let reset () =
  Array.iter (fun c -> Atomic.set c 0) counters;
  Array.iter (fun c -> Atomic.set c 0) span_totals;
  Array.iter (fun c -> Atomic.set c 0) span_counts;
  Mutex.protect trace_mutex (fun () ->
      List.iter Buffer.clear !trace_bufs;
      sink.t_epoch <- now_ns ())

(* ------------------------------------------------------------------ *)
(* Stats snapshot                                                      *)
(* ------------------------------------------------------------------ *)

(* Field order is fixed by construction, so equal counter values render
   to byte-equal JSON — the property the CLI's --stats-deterministic
   mode and the bench golden gate rely on. *)

let stats_json ?(deterministic = false) () =
  let c name = Printf.sprintf {|"%s":%d|} (counter_name name) (read name) in
  let invariant =
    Printf.sprintf {|"invariant":{%s,%s,%s}|} (c Runs_enumerated)
      (c Formula_evals) (c Vhs_histories)
  in
  if deterministic then Printf.sprintf {|{"schema_version":1,%s}|} invariant
  else begin
    let schedule =
      Printf.sprintf
        {|"schedule":{%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,"budget_stops":{%s,%s,%s,%s},"resilience":{%s,%s,%s,%s,%s,%s},"serve":{%s,%s,%s,%s}}|}
        (c Configs_explored) (c Configs_reduced) (c Memo_hits) (c Memo_misses)
        (c Sleep_prunes) (c Deque_steals) (c Shard_collisions)
        (c Fingerprint_collisions) (c Footprint_checks) (c Batches_stolen)
        (c Batch_probe_hits) (c Local_cache_hits) (c Races_detected)
        (c Backtrack_points) (c Source_prunes)
        (c Budget_stop_deadline) (c Budget_stop_configs) (c Budget_stop_runs)
        (c Budget_stop_memory) (c Spill_bytes) (c Spill_chunks)
        (c Checkpoint_writes) (c Faults_injected) (c Faults_survived)
        (c Bitstate_saturated_prunes)
        (c Cache_hits) (c Cache_misses) (c Requests_coalesced)
        (c Explorations_shared)
    in
    let timings =
      Printf.sprintf {|"timings":{%s}|}
        (String.concat ","
           (List.map
              (fun p ->
                Printf.sprintf {|"%s":{"count":%d,"total_ns":%d}|}
                  (phase_name p) (span_count p) (span_ns p))
              phases))
    in
    Printf.sprintf {|{"schema_version":1,%s,%s,%s}|} invariant schedule timings
  end
