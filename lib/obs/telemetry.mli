(** Process-wide observability: lock-free counters, phase timing spans
    and an optional Chrome-trace-event exporter.

    The checker's performance story (sleep-set effectiveness, memo-table
    hit rates, work-stealing balance) is invisible from verdicts alone;
    this module gives every layer a place to record what it did without
    changing any result. Instrumentation sites live in
    {!Gem_lang.Explore}, the three language interpreters,
    {!Gem_check.Budget}/[Check]/[Refine] and {!Gem_logic.Eval}/[Vhs];
    the CLI surfaces the totals via [gemcheck --stats] and [--trace].

    {b Disabled by default, and a no-op sink when disabled.} All state
    is a pre-allocated record of [Atomic.t] cells guarded by one flag:
    the disabled hot path is a single atomic load and branch — no
    closures, no allocation, no syscalls. Measured overhead on the bench
    workloads is well under the 2% budget (see [BENCH_telemetry.json]).

    {b Domain-safety.} Counters are [Atomic.t] (fetch-and-add), span
    aggregates too, and trace events go to domain-local buffers, so any
    number of domains may record concurrently.

    {b Conservation invariants} (asserted in [test/test_telemetry.ml]
    across jobs 1/2/8, POR on and off):
    - [Configs_explored] = the [explored] field of the exploration
      result, and [Configs_reduced] = its [reduced] field;
    - [Configs_reduced] = [Sleep_prunes] + [Memo_hits] +
      [Local_cache_hits] + [Source_prunes] — every pruned arrival is
      asleep, memo-covered by the shared seen table, covered by a
      domain-local cache entry, or skipped by a source set that never
      scheduled it, never more than one;
    - [Batch_probe_hits] <= [Memo_hits] — batched shard probes are a
      subset of all shared seen-table hits;
    - the {e invariant} section of {!stats_json} ([Runs_enumerated],
      [Formula_evals], [Vhs_histories]) is byte-stable across job
      counts, because it is derived from the canonical (schedule
      independent) computation list. *)

type counter =
  | Configs_explored  (** Interpreter configurations claimed and visited. *)
  | Configs_reduced  (** Arrivals pruned (sleep set or memo coverage). *)
  | Memo_hits  (** Seen-table lookups answered "already covered". *)
  | Memo_misses  (** Seen-table lookups that recorded a new entry. *)
  | Sleep_prunes  (** Successors skipped because their move slept. *)
  | Deque_steals  (** Tasks stolen from another domain's deque. *)
  | Shard_collisions  (** Seen-table shard locks found contended. *)
  | Runs_enumerated  (** Runs consumed by temporal checks. *)
  | Formula_evals  (** Formula evaluations (per run or computation). *)
  | Vhs_histories  (** Valid history sequences materialized. *)
  | Budget_stop_deadline  (** Budget stops: wall-clock deadline. *)
  | Budget_stop_configs  (** Budget stops: configuration budget. *)
  | Budget_stop_runs  (** Budget stops: run cap. *)
  | Budget_stop_memory  (** Budget stops: heap watermark. *)
  | Fingerprint_collisions
      (** Audit mode only: seen-table hits whose exact structural key
          differs from the one recorded at first insert — a lossy
          fingerprint merge that would silently prune a distinct state. *)
  | Footprint_checks  (** Move-independence (footprint disjointness) tests. *)
  | Spill_bytes  (** Bytes of frontier paged to the spool temp file. *)
  | Spill_chunks  (** Frontier chunks written to the spool temp file. *)
  | Checkpoint_writes  (** Checkpoint snapshots successfully persisted. *)
  | Faults_injected  (** Faults fired by the {!Gem_check.Faults} harness. *)
  | Faults_survived
      (** Injected faults handled gracefully (degraded, not crashed). *)
  | Bitstate_saturated_prunes
      (** Arrivals pruned because the bitstate table refused an insert at
          its load cap — coverage silently lost, hence the mandatory
          [Bitstate_collision_risk] downgrade. *)
  | Batches_stolen
      (** Chunks of frontier tasks stolen from another domain's deque by
          the batched parallel engine. *)
  | Batch_probe_hits
      (** Shared seen-table hits answered inside a batched per-shard
          probe (one lock acquisition per shard per chunk). Always a
          subset of [Memo_hits]. *)
  | Local_cache_hits
      (** Arrivals pruned by a domain-local fingerprint cache without
          touching the shared shards. Counted into [Configs_reduced]
          alongside [Sleep_prunes] and [Memo_hits]. *)
  | Cache_hits
      (** Serve mode: requests answered from the verdict cache without
          recomputing anything ({!Gem_check.Cache}). *)
  | Cache_misses
      (** Serve mode: requests that computed (and cached) a fresh
          verdict. [Cache_hits + Cache_misses + Requests_coalesced] =
          well-formed check requests handled. *)
  | Requests_coalesced
      (** Serve mode: requests that arrived while an identical request
          was already in flight and waited for its result instead of
          recomputing (single-flight coalescing). *)
  | Explorations_shared
      (** Serve mode: verdict-cache misses that still skipped
          exploration because another request for the same (program,
          workload, engine) key — differing only in restriction — had
          already populated the exploration cache. *)
  | Races_detected
      (** Source-DPOR: reversible races found between an executed (or
          summarized) event and an earlier event on the DFS stack. *)
  | Backtrack_points
      (** Source-DPOR: labels added to a stack frame's backtrack set in
          response to a race (including conservative fills when no
          initial of the reversing sequence is enabled at the frame). *)
  | Source_prunes
      (** Source-DPOR: awake successors never scheduled into a frame's
          backtrack set by any race — the engine's saving over sleep
          sets. Counted into [Configs_reduced] alongside [Sleep_prunes],
          [Memo_hits] and [Local_cache_hits]. *)

type phase =
  | Interp_step  (** One interpreter successor computation. *)
  | Canon_key  (** Canonical state-key construction (seal + marshal). *)
  | Seen_table  (** Seen-table lookup/record (memo subset rule). *)
  | Run_enum  (** Linext/vhs run enumeration. *)
  | Formula_eval  (** Temporal/immediate formula evaluation. *)
  | Project  (** Program-to-problem projection ({!Gem_check.Refine}). *)
  | Merge  (** Canonical leaf sort and fingerprint dedup. *)

val enabled : unit -> bool
val enable : unit -> unit

val disable : unit -> unit
(** Turns collection off; recorded totals remain readable. *)

val reset : unit -> unit
(** Zero every counter and span and drop buffered trace events. The
    enabled/tracing flags are untouched. *)

val hit : counter -> unit
(** Add one. A single atomic load + branch when disabled. *)

val add : counter -> int -> unit
val read : counter -> int

val span_begin : phase -> int
(** Start a span; returns an opaque token (0 when disabled). No closure:
    pair with {!span_end} around the timed expression. *)

val span_end : phase -> int -> unit
(** Close a span started by {!span_begin}: accumulates wall-clock
    nanoseconds into the phase aggregate and, when tracing, appends a
    Chrome trace event to the current domain's buffer. *)

val span_count : phase -> int
val span_ns : phase -> int

val time : phase -> (unit -> 'a) -> 'a
(** [time p f] = {!span_begin}/{!span_end} around [f ()] — for cold
    call sites where the closure cost is irrelevant. *)

val trace_to : string -> unit
(** Start collecting Chrome trace events (also enables collection).
    Nothing is written until {!flush_trace}. *)

val tracing : unit -> bool

val flush_trace : unit -> unit
(** Write buffered events to the {!trace_to} file, one JSON trace-event
    object per line ([ph:"X"], microsecond [ts]/[dur], [tid] = domain
    id) — loadable by Perfetto / chrome://tracing. Raises [Sys_error]
    if the file cannot be written. *)

val counter_name : counter -> string
val phase_name : phase -> string

val snapshot_counters : unit -> (string * int) list
(** Every counter's current total, keyed by {!counter_name} — the
    telemetry component of a checkpoint snapshot. *)

val restore_counters : (string * int) list -> unit
(** Overwrite counters present in the list (by {!counter_name}); absent
    counters are left untouched. Used on [--resume] so a resumed run's
    totals continue from the interrupted run's. *)

val stats_json : ?deterministic:bool -> unit -> string
(** One-line JSON snapshot:
    [{"schema_version":1,"invariant":{...},"schedule":{...},"timings":{...}}].

    The [invariant] counters are schedule-independent (byte-stable
    across [--jobs] for a given workload); [schedule] counters are exact
    but legitimately vary with domain interleaving under partial-order
    reduction; [timings] are per-phase [{"count","total_ns"}].
    [~deterministic:true] keeps only [schema_version] + [invariant], so
    the output is byte-identical across job counts. *)
