open Gem

type row = { label : string; pass : bool; detail : string }

let row label pass detail = { label; pass; detail }

(* Default experiment budget: the linearization cap every sat check runs
   under (EXPERIMENTS.md "Budgets"). One knob, shared with the CLI and the
   benches via Strategy.of_budget. *)
let default_budget () = Budget.make ~max_runs:400 ()
let strategy = Strategy.of_budget (default_budget ())

(* ------------------------------------------------------------------ *)
(* E1: legality                                                        *)
(* ------------------------------------------------------------------ *)

let tick_etype = Etype.make "Tick" ~events:[ { Etype.klass = "Tick"; schema = [] } ] ()

(* A random legal computation over [k] declared elements. *)
let random_computation rng ~elements:k ~events:n =
  let b = Build.create () in
  let handles =
    Array.init n (fun _ ->
        Build.emit b ~element:(Printf.sprintf "X%d" (Random.State.int rng k)) ~klass:"Tick" ())
  in
  for j = 1 to n - 1 do
    if Random.State.int rng 3 = 0 then
      Build.enable b handles.(Random.State.int rng j) handles.(j)
  done;
  for i = 0 to k - 1 do
    Build.declare_element b (Printf.sprintf "X%d" i)
  done;
  Build.finish b

let legality_spec k =
  Spec.make "random"
    ~elements:(List.init k (fun i -> (Printf.sprintf "X%d" i, tick_etype)))
    ()

let e01_legality () =
  let rng = Random.State.make [| 2024 |] in
  let sizes = [ 10; 50; 100 ] in
  let accept =
    List.map
      (fun n ->
        let all_legal =
          List.init 20 (fun _ -> random_computation rng ~elements:4 ~events:n)
          |> List.for_all (fun c -> Legality.is_legal (legality_spec 4) c)
        in
        row (Printf.sprintf "random legal computations accepted (n=%d)" n) all_legal
          "20 samples")
      sizes
  in
  (* Planted violations. *)
  let spec = legality_spec 2 in
  let undeclared =
    let b = Build.create () in
    let _ = Build.emit b ~element:"Rogue" ~klass:"Tick" () in
    Legality.check spec (Build.finish b)
  in
  let bad_class =
    let b = Build.create () in
    let _ = Build.emit b ~element:"X0" ~klass:"Boom" () in
    Legality.check spec (Build.finish b)
  in
  let cyclic =
    let b = Build.create () in
    let x = Build.emit b ~element:"X0" ~klass:"Tick" () in
    let y = Build.emit b ~element:"X1" ~klass:"Tick" () in
    Build.enable b x y;
    Build.enable b y x;
    Legality.check spec (Build.finish b)
  in
  let access =
    let s =
      Spec.make "grouped"
        ~elements:[ ("X0", tick_etype); ("X1", tick_etype) ]
        ~groups:[ Group.make "G" [ Group.Elem "X1" ] ]
        ()
    in
    let b = Build.create () in
    let x = Build.emit b ~element:"X0" ~klass:"Tick" () in
    let _ = Build.emit_enabled_by b ~by:x ~element:"X1" ~klass:"Tick" () in
    Legality.check s (Build.finish b)
  in
  accept
  @ [
      row "undeclared element rejected" (undeclared <> []) "1 violation";
      row "undeclared class rejected" (bad_class <> []) "1 violation";
      row "causal cycle rejected" (cyclic <> []) "cycle witness";
      row "group access violation rejected" (access <> []) "port-less enable";
    ]

(* ------------------------------------------------------------------ *)
(* E2: histories & vhs (the paper's §7 example)                        *)
(* ------------------------------------------------------------------ *)

let paper_diamond () =
  let b = Build.create () in
  let e1 = Build.emit b ~element:"E1" ~klass:"A" () in
  let e2 = Build.emit_enabled_by b ~by:e1 ~element:"E2" ~klass:"B" () in
  let e3 = Build.emit_enabled_by b ~by:e1 ~element:"E3" ~klass:"C" () in
  let e4 = Build.emit_enabled_by b ~by:e2 ~element:"E4" ~klass:"D" () in
  Build.enable b e3 e4;
  Build.finish b

let e02_histories () =
  let comp = paper_diamond () in
  let histories = History.count comp in
  let runs = Vhs.count comp in
  let lins = List.length (Vhs.all_linearizations comp) in
  let poset = Computation.temporal_exn comp in
  let valid =
    List.for_all
      (fun run -> Linext.is_step_sequence poset (Vhs.steps run))
      (Vhs.all comp)
  in
  [
    row "history lattice of the §7 example" (histories = 6) (Printf.sprintf "%d histories (5 + empty)" histories);
    row "complete runs (vhs)" (runs = 3) (Printf.sprintf "%d runs incl. the simultaneous step" runs);
    row "maximal runs (linearizations)" (lins = 2) (Printf.sprintf "%d" lins);
    row "every enumerated run validates" valid "antichain steps, downward closed";
  ]

(* ------------------------------------------------------------------ *)
(* E3–E5: the three language descriptions                              *)
(* ------------------------------------------------------------------ *)

let e03_monitor_language () =
  let program =
    Readers_writers.program ~monitor:Readers_writers.paper_monitor ~readers:2 ~writers:1
  in
  let o = Monitor.explore program in
  let spec = Monitor.language_spec program in
  let all_ok =
    List.for_all (fun c -> Verdict.ok (Check.check spec c)) o.Monitor.computations
  in
  let getvals =
    (* With Getval emission on, the Variable restriction is exercised. *)
    let small_program =
      { Monitor.monitors = [ Readers_writers.paper_monitor ]; shared = [];
        processes =
          [ { Monitor.proc_name = "R1"; locals = [];
              code =
                [ Monitor.PCall { monitor = "RW"; entry = "StartRead"; args = []; bind = None };
                  Monitor.PCall { monitor = "RW"; entry = "EndRead"; args = []; bind = None } ] } ] }
    in
    let o = Monitor.explore ~emit_getvals:true small_program in
    let small_spec = Monitor.language_spec small_program in
    List.for_all (fun c -> Verdict.ok (Check.check small_spec c)) o.Monitor.computations
  in
  [
    row "monitor semantics restrictions hold on all RW computations" all_ok
      (Printf.sprintf "%d computations x (lock-alternation, release-needs-signal, total order)"
         (List.length o.Monitor.computations));
    row "variable restrictions hold with Getval emission" getvals "1 reader, getvals on";
  ]

let e04_csp_language () =
  let program = Buffer_problem.csp_solution ~capacity:1 ~producers:1 ~consumers:1 ~items_each:2 in
  let o = Csp.explore program in
  let spec = Csp.language_spec program in
  let all_ok = List.for_all (fun c -> Verdict.ok (Check.check spec c)) o.Csp.computations in
  [
    row "CSP io-simultaneity / matching / value-transfer hold" all_ok
      (Printf.sprintf "%d computations" (List.length o.Csp.computations));
    row "no deadlock in the pipeline" (o.Csp.deadlocks = []) "";
  ]

let e05_ada_language () =
  let program = Buffer_problem.ada_solution ~capacity:1 ~producers:1 ~consumers:1 ~items_each:2 in
  let o = Ada.explore program in
  let spec = Ada.language_spec program in
  let all_ok = List.for_all (fun c -> Verdict.ok (Check.check spec c)) o.Ada.computations in
  [
    row "ADA rendezvous-matching / entry-addressing / caller-suspension hold" all_ok
      (Printf.sprintf "%d computations" (List.length o.Ada.computations));
    row "no deadlock" (o.Ada.deadlocks = []) "";
  ]

(* ------------------------------------------------------------------ *)
(* E6/E7: buffers                                                      *)
(* ------------------------------------------------------------------ *)

let e06_one_slot_buffer () =
  let problem = Buffer_problem.spec ~capacity:1 in
  let mon = Monitor.explore (Buffer_problem.monitor_solution ~capacity:1 ~producers:1 ~consumers:1 ~items_each:2) in
  let csp = Csp.explore (Buffer_problem.csp_solution ~capacity:1 ~producers:1 ~consumers:1 ~items_each:2) in
  let ada = Ada.explore (Buffer_problem.ada_solution ~capacity:1 ~producers:1 ~consumers:1 ~items_each:2) in
  let buggy = Monitor.explore (Buffer_problem.buggy_monitor_solution ~capacity:1 ~producers:1 ~consumers:1 ~items_each:2) in
  [
    row "Monitor solution sat one-slot"
      (mon.Monitor.deadlocks = []
      && Refine.sat_ok ~strategy ~problem ~map:Buffer_problem.monitor_correspondence
           mon.Monitor.computations)
      (Printf.sprintf "%d computations" (List.length mon.Monitor.computations));
    row "CSP solution sat one-slot"
      (csp.Csp.deadlocks = []
      && Refine.sat_ok ~strategy ~problem ~map:Buffer_problem.csp_correspondence
           csp.Csp.computations)
      (Printf.sprintf "%d computations" (List.length csp.Csp.computations));
    row "ADA solution sat one-slot"
      (ada.Ada.deadlocks = []
      && Refine.sat_ok ~strategy ~problem ~map:Buffer_problem.ada_correspondence
           ada.Ada.computations)
      (Printf.sprintf "%d computations" (List.length ada.Ada.computations));
    row "unguarded monitor refuted"
      (not
         (Refine.sat_ok ~strategy ~problem ~map:Buffer_problem.monitor_correspondence
            buggy.Monitor.computations))
      "capacity violated";
  ]

let e07_bounded_buffer () =
  List.map
    (fun capacity ->
      let o =
        Monitor.explore
          (Buffer_problem.monitor_solution ~capacity ~producers:2 ~consumers:1 ~items_each:1)
      in
      let ok =
        o.Monitor.deadlocks = []
        && Refine.sat_ok ~strategy
             ~problem:(Buffer_problem.spec ~capacity)
             ~map:Buffer_problem.monitor_correspondence o.Monitor.computations
      in
      row
        (Printf.sprintf "Monitor bounded buffer capacity=%d (2 producers)" capacity)
        ok
        (Printf.sprintf "%d computations" (List.length o.Monitor.computations)))
    [ 2; 3 ]
  @ [
      (let o =
         Monitor.explore
           (Buffer_problem.monitor_solution ~capacity:2 ~producers:1 ~consumers:1 ~items_each:3)
       in
       row "capacity-2 implementation refuted against one-slot spec"
         (not
            (Refine.sat_ok ~strategy
               ~problem:(Buffer_problem.spec ~capacity:1)
               ~map:Buffer_problem.monitor_correspondence o.Monitor.computations))
         "cross-capacity check");
    ]

(* ------------------------------------------------------------------ *)
(* E8/E9: Readers/Writers                                              *)
(* ------------------------------------------------------------------ *)

let rw_sat monitor version ~readers ~writers =
  let program = Readers_writers.program ~monitor ~readers ~writers in
  let o = Monitor.explore program in
  let problem =
    Readers_writers.spec version ~users:(Readers_writers.user_names ~readers ~writers)
  in
  ( Refine.sat_ok ~strategy ~edges:Refine.Actor_paths ~problem
      ~map:Readers_writers.correspondence o.Monitor.computations,
    List.length o.Monitor.computations,
    List.length o.Monitor.deadlocks )

let e08_rw_versions () =
  let expected =
    [
      (* (monitor, version) -> expected SAT *)
      ("paper", Readers_writers.Free_for_all, true);
      ("paper", Readers_writers.Readers_priority, true);
      ("paper", Readers_writers.Writers_priority, false);
      ("paper", Readers_writers.Arrival_order, false);
      ("paper", Readers_writers.No_starved_writers, false);
      ("writers-priority", Readers_writers.Free_for_all, true);
      ("writers-priority", Readers_writers.Readers_priority, false);
      ("writers-priority", Readers_writers.Writers_priority, true);
      ("writers-priority", Readers_writers.No_starved_writers, true);
    ]
  in
  List.map
    (fun (mname, version, expect) ->
      let monitor =
        if String.equal mname "paper" then Readers_writers.paper_monitor
        else Readers_writers.writers_priority_monitor
      in
      let sat, comps, dead = rw_sat monitor version ~readers:2 ~writers:1 in
      row
        (Printf.sprintf "%s vs %s" mname (Readers_writers.version_name version))
        (sat = expect && dead = 0)
        (Printf.sprintf "%s over %d computations (expected %s)"
           (if sat then "SAT" else "VIOLATED")
           comps
           (if expect then "SAT" else "VIOLATED")))
    expected

let e09_readers_priority () =
  let p21, c21, d21 = rw_sat Readers_writers.paper_monitor Readers_writers.Readers_priority ~readers:2 ~writers:1 in
  let p12, c12, d12 = rw_sat Readers_writers.paper_monitor Readers_writers.Readers_priority ~readers:1 ~writers:2 in
  let b12, cb, _ = rw_sat Readers_writers.buggy_monitor Readers_writers.Readers_priority ~readers:1 ~writers:2 in
  let nx, cn, _ = rw_sat Readers_writers.no_exclusion_monitor Readers_writers.Free_for_all ~readers:2 ~writers:1 in
  [
    row "paper monitor guarantees readers-priority (2R+1W)" (p21 && d21 = 0)
      (Printf.sprintf "%d computations, exhaustive schedules" c21);
    row "paper monitor guarantees readers-priority (1R+2W)" (p12 && d12 = 0)
      (Printf.sprintf "%d computations" c12);
    row "inverted-wakeup mutant violates readers-priority" (not b12)
      (Printf.sprintf "%d computations, counterexample found" cb);
    row "no-exclusion mutant violates mutual exclusion" (not nx)
      (Printf.sprintf "%d computations" cn);
  ]

(* ------------------------------------------------------------------ *)
(* E10/E11: distributed applications                                   *)
(* ------------------------------------------------------------------ *)

let e10_db_update () =
  List.map
    (fun sites ->
      let r = Db_update.check ~sites () in
      row
        (Printf.sprintf "db update converges, no deadlock (%d sites)" sites)
        (r.Db_update.converges && r.deadlocks = 0 && r.computations > 0
        && r.exhausted = None)
        (Printf.sprintf "%d computations" r.Db_update.computations))
    [ 2; 3 ]

let life_case name ~width ~height ~generations ~alive =
  let comp = Life.build ~width ~height ~generations ~alive in
  let spec = Life.spec ~width ~height in
  let correct =
    Check.holds spec comp (Life.matches_reference ~width ~height ~generations ~alive)
  in
  let async = Life.asynchrony_witness comp <> None in
  let progress =
    Verdict.ok
      (Check.check_formula
         ~strategy:(Strategy.Sampled { seed = 17; count = 3 })
         spec comp ~name:"progress" (Life.progress ~generations))
  in
  row
    (Printf.sprintf "life %s: correct + asynchronous + progress" name)
    (correct && async && progress)
    (Printf.sprintf "%dx%d, %d generations, %d events" width height generations
       (Computation.n_events comp))

let e11_life () =
  [
    life_case "blinker" ~width:4 ~height:4 ~generations:2 ~alive:[ (1, 0); (1, 1); (1, 2) ];
    life_case "block" ~width:4 ~height:4 ~generations:2
      ~alive:[ (1, 1); (1, 2); (2, 1); (2, 2) ];
    life_case "glider" ~width:6 ~height:6 ~generations:4
      ~alive:[ (1, 0); (2, 1); (0, 2); (1, 2); (2, 2) ];
  ]

(* ------------------------------------------------------------------ *)
(* E12: threads                                                        *)
(* ------------------------------------------------------------------ *)

let e12_threads () =
  let program =
    Readers_writers.program ~monitor:Readers_writers.paper_monitor ~readers:1 ~writers:1
  in
  let o = Monitor.explore program in
  let problem =
    Readers_writers.spec Readers_writers.Free_for_all
      ~users:(Readers_writers.user_names ~readers:1 ~writers:1)
  in
  let ok =
    List.for_all
      (fun comp ->
        match
          Refine.project ~edges:Refine.Actor_paths Readers_writers.correspondence comp
            ~elements:problem.Spec.elements ~groups:problem.Spec.groups
        with
        | Error _ -> false
        | Ok p ->
            let labelled = Spec.label_threads problem p in
            let instances = Thread.instances labelled Readers_writers.thread_name in
            List.length instances = 2
            && List.for_all
                 (fun i ->
                   List.length
                     (Thread.events_of_instance labelled Readers_writers.thread_name i)
                   = 6)
                 instances)
      o.Monitor.computations
  in
  [
    row "piRW labels each transaction with a 6-event chain" ok
      (Printf.sprintf "over %d computations" (List.length o.Monitor.computations));
  ]

(* ------------------------------------------------------------------ *)
(* E13: conciseness proxies                                            *)
(* ------------------------------------------------------------------ *)

let e13_conciseness () =
  let count name spec = row name true (Printf.sprintf "%d restrictions" (Spec.restriction_count spec)) in
  let rw_program =
    Readers_writers.program ~monitor:Readers_writers.paper_monitor ~readers:2 ~writers:1
  in
  [
    count "Monitor language spec (RW program)" (Monitor.language_spec rw_program);
    count "CSP language spec (buffer pipeline)"
      (Csp.language_spec (Buffer_problem.csp_solution ~capacity:1 ~producers:1 ~consumers:1 ~items_each:1));
    count "ADA language spec (buffer)"
      (Ada.language_spec (Buffer_problem.ada_solution ~capacity:1 ~producers:1 ~consumers:1 ~items_each:1));
    count "One-slot buffer problem" (Buffer_problem.spec ~capacity:1);
    count "Readers/Writers problem (readers-priority)"
      (Readers_writers.spec Readers_writers.Readers_priority
         ~users:(Readers_writers.user_names ~readers:2 ~writers:1));
  ]

(* ------------------------------------------------------------------ *)
(* E14: strategy ablation                                              *)
(* ------------------------------------------------------------------ *)

(* [k] independent 2-chains: 2k events, known run-space sizes. *)
let parallel_chains k =
  let b = Build.create () in
  for i = 0 to k - 1 do
    let a = Build.emit b ~element:(Printf.sprintf "C%d" i) ~klass:"Tick" () in
    ignore (Build.emit_enabled_by b ~by:a ~element:(Printf.sprintf "C%d" i) ~klass:"Tick" ())
  done;
  Build.finish b

let e14_ablation () =
  let size_rows =
    List.map
      (fun k ->
        let comp = parallel_chains k in
        let p = Computation.temporal_exn comp in
        let lin = Poset.count_linear_extensions ~cap:10_000_000 p in
        let vhs = Linext.count_step_sequences ~cap:10_000_000 p in
        row
          (Printf.sprintf "run-space growth, %d parallel 2-chains (%d events)" k (2 * k))
          (vhs >= lin && lin > 0)
          (Printf.sprintf "%d linearizations vs %d vhs runs" lin vhs))
      [ 2; 3; 4 ]
  in
  (* A fixed RW computation with modest concurrency. *)
  let program =
    Readers_writers.program ~monitor:Readers_writers.paper_monitor ~readers:2 ~writers:1
  in
  let comp = Monitor.run_one ~seed:5 program in
  let spec = Monitor.language_spec program in
  let prop =
    (* Temporal sanity property: once a Rel occurred, eventually another
       Acq occurs or the run ends — use a simple liveness check that all
       strategies agree on. *)
    Formula.(eventually (exists [ ("x", Cls "FinishWrite") ] (occurred "x")))
  in
  let agree =
    let v1 =
      Verdict.ok
        (Check.check_formula ~strategy:(Strategy.Exhaustive_vhs (Some 5_000)) spec comp
           ~name:"p" prop)
    in
    let v2 =
      Verdict.ok
        (Check.check_formula ~strategy:(Strategy.Linearizations (Some 5_000)) spec comp
           ~name:"p" prop)
    in
    let v3 =
      Verdict.ok
        (Check.check_formula ~strategy:(Strategy.Sampled { seed = 3; count = 50 }) spec comp
           ~name:"p" prop)
    in
    v1 && v2 && v3
  in
  size_rows
  @ [
      row "strategies agree on liveness property" agree
        (Printf.sprintf "exhaustive-vhs = linearizations = sampled (%d-event RW computation)"
           (Computation.n_events comp));
    ]

(* ------------------------------------------------------------------ *)
(* E15: CSP and ADA Readers/Writers                                    *)
(* ------------------------------------------------------------------ *)

let e15_rw_distributed () =
  let module RWD = Rw_distributed in
  let sat_csp program ~readers:rn ~writers:wn =
    let o = Csp.explore ~max_configs:10_000_000 program in
    let rnames, wnames = RWD.user_names ~readers:rn ~writers:wn in
    let problem = RWD.spec ~readers:rnames ~writers:wnames in
    ( Refine.sat_ok ~strategy ~problem ~map:RWD.csp_correspondence o.Csp.computations,
      List.length o.Csp.computations,
      List.length o.Csp.deadlocks )
  in
  let sat_ada program ~readers:rn ~writers:wn =
    let o = Ada.explore ~max_configs:10_000_000 program in
    let rnames, wnames = RWD.user_names ~readers:rn ~writers:wn in
    let problem = RWD.spec ~readers:rnames ~writers:wnames in
    ( Refine.sat_ok ~strategy ~problem ~map:RWD.ada_correspondence o.Ada.computations,
      List.length o.Ada.computations,
      List.length o.Ada.deadlocks )
  in
  let c1, cc1, cd1 = sat_csp (RWD.csp_program ~readers:1 ~writers:1) ~readers:1 ~writers:1 in
  let c0, _, _ =
    sat_csp (RWD.csp_program_no_priority ~readers:1 ~writers:1) ~readers:1 ~writers:1
  in
  let a1, ac1, ad1 = sat_ada (RWD.ada_program ~readers:1 ~writers:1) ~readers:1 ~writers:1 in
  let a0, _, _ =
    sat_ada (RWD.ada_program_no_priority ~readers:1 ~writers:1) ~readers:1 ~writers:1
  in
  [
    row "CSP solution sat readers-priority (1R+1W)" (c1 && cd1 = 0)
      (Printf.sprintf "%d computations" cc1);
    row "CSP priority-less controller refuted" (not c0) "counterexample found";
    row "ADA solution sat readers-priority (1R+1W)" (a1 && ad1 = 0)
      (Printf.sprintf "%d computations" ac1);
    row "ADA guard without 'Count refuted" (not a0) "counterexample found";
  ]

(* ------------------------------------------------------------------ *)
(* E16: dynamic group structures (footnote 5)                          *)
(* ------------------------------------------------------------------ *)

let e16_dynamic_groups () =
  let dyn_spec groups =
    Spec.make "dyn"
      ~elements:
        [ ("A", tick_etype); ("B", tick_etype);
          (Dyngroup.structure_element, Dyngroup.etype) ]
      ~groups ()
  in
  let hidden = [ Group.make "G" [ Group.Elem "B" ] ] in
  (* A gains access to the hidden B only after a membership-change event. *)
  let granted =
    let b = Build.create () in
    let s =
      Build.emit b ~element:Dyngroup.structure_element ~klass:"AddElem"
        ~params:[ ("group", Value.Str "G"); ("element", Value.Str "A") ] ()
    in
    let a = Build.emit_enabled_by b ~by:s ~element:"A" ~klass:"Tick" () in
    let _ = Build.emit_enabled_by b ~by:a ~element:"B" ~klass:"Tick" () in
    Build.finish b
  in
  let denied =
    let b = Build.create () in
    let a = Build.emit b ~element:"A" ~klass:"Tick" () in
    let _ = Build.emit_enabled_by b ~by:a ~element:"B" ~klass:"Tick" () in
    Build.finish b
  in
  [
    row "membership change grants access (dynamic check)"
      (Dyngroup.check_access (dyn_spec hidden) granted = []
      && not (Legality.is_legal (dyn_spec hidden) granted))
      "statically illegal, dynamically legal";
    row "without the change the enable is rejected"
      (Dyngroup.check_access (dyn_spec hidden) denied <> [])
      "1 violating edge";
    row "computations grow monotonically (structure events are ordinary events)"
      (Gem_logic.History.count granted = 1 + Computation.n_events granted)
      "chain: one history per prefix";
  ]

(* ------------------------------------------------------------------ *)

let all =
  [
    ("E1", "legality restrictions (paper §3–5)", e01_legality);
    ("E2", "histories and valid history sequences (§7)", e02_histories);
    ("E3", "GEM description of the Monitor primitive (§9)", e03_monitor_language);
    ("E4", "GEM description of CSP (§8.2)", e04_csp_language);
    ("E5", "GEM description of ADA tasking", e05_ada_language);
    ("E6", "One-Slot Buffer: 3 verified solutions + mutant (§11)", e06_one_slot_buffer);
    ("E7", "Bounded Buffer (§11)", e07_bounded_buffer);
    ("E8", "five Readers/Writers versions (§8.3, §11)", e08_rw_versions);
    ("E9", "reader's priority theorem, mechanized (§9)", e09_readers_priority);
    ("E10", "distributed database update (§11)", e10_db_update);
    ("E11", "asynchronous Game of Life (§11)", e11_life);
    ("E12", "thread labelling (§8.3)", e12_threads);
    ("E13", "specification conciseness proxies (§1)", e13_conciseness);
    ("E14", "checking-strategy ablation", e14_ablation);
    ("E15", "CSP and ADA Readers/Writers solutions (§11)", e15_rw_distributed);
    ("E16", "dynamic group structures (footnote 5)", e16_dynamic_groups);
  ]

let run_all () =
  let all_pass = ref true in
  List.iter
    (fun (id, title, kernel) ->
      Printf.printf "\n%s — %s\n" id title;
      let rows = kernel () in
      List.iter
        (fun r ->
          if not r.pass then all_pass := false;
          Printf.printf "  [%s] %-62s %s\n%!" (if r.pass then "PASS" else "FAIL") r.label
            r.detail)
        rows)
    all;
  !all_pass
