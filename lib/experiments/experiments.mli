(** The reproduction experiments (DESIGN.md §4, EXPERIMENTS.md).

    The paper has no numbered tables or figures; its evaluation is a set of
    claims. Each [eNN_*] function here mechanically checks one claim and
    returns rows of (label, pass, detail); {!run_all} prints the full
    PASS/FAIL table. The same kernels are timed by [bench/main.exe]. *)

type row = { label : string; pass : bool; detail : string }

val e01_legality : unit -> row list
(** Legality restrictions accept random legal computations and reject each
    planted violation kind (§3–5). *)

val e02_histories : unit -> row list
(** The §7 example: history lattice and vhs counts, tail closure,
    step-sequence validity. *)

val e03_monitor_language : unit -> row list
(** The Monitor primitive's GEM description holds on every computation of
    monitor programs: lock alternation, release-needs-signal, and total
    temporal order of monitor events (§9's lemma). *)

val e04_csp_language : unit -> row list
(** CSP's GEM description: simultaneity of I/O exchange, matching,
    value transfer (§8.2). *)

val e05_ada_language : unit -> row list
(** ADA tasking's GEM description: rendezvous matching and caller
    suspension. *)

val e06_one_slot_buffer : unit -> row list
(** One-Slot Buffer: Monitor, CSP and ADA solutions satisfy the problem;
    the unguarded monitor is refuted (§11). *)

val e07_bounded_buffer : unit -> row list
(** Bounded Buffer at capacities 2 and 3. *)

val e08_rw_versions : unit -> row list
(** The five Readers/Writers versions against the paper's monitor and the
    writer-priority monitor: the full SAT/VIOLATED matrix (§8.3, §11). *)

val e09_readers_priority : unit -> row list
(** The §9 worked proof, mechanized: the paper's monitor guarantees
    reader's priority (two workloads); the inverted-wakeup mutant does
    not; the no-exclusion mutant loses mutual exclusion. *)

val e10_db_update : unit -> row list
(** Distributed database update: deadlock freedom + convergence (§11). *)

val e11_life : unit -> row list
(** Asynchronous Game of Life: functional correctness vs the synchronous
    reference, genuine asynchrony, progress (§11). *)

val e12_threads : unit -> row list
(** Thread labelling isolates each transaction's control chain (§8.3). *)

val e13_conciseness : unit -> row list
(** Spec-size proxies for the paper's conciseness claim: restriction
    counts per language/problem specification. *)

val e14_ablation : unit -> row list
(** Checking-strategy ablation: run counts and verdict agreement of
    exhaustive-vhs vs linearizations vs sampling on a fixed computation. *)

val e15_rw_distributed : unit -> row list
(** CSP and ADA Reader's-Priority Readers/Writers solutions verified
    against the distributed problem spec; priority-less mutants refuted
    (§11). *)

val e16_dynamic_groups : unit -> row list
(** Dynamic group structures (footnote 5): membership changes as events;
    access checked against the table in effect at each enable's target. *)

val all : (string * string * (unit -> row list)) list
(** (experiment id, title, kernel). *)

val run_all : unit -> bool
(** Prints every experiment's rows; returns whether everything passed. *)
