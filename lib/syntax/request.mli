(** The [gemcheck serve] wire request language.

    One request per line. Three verbs:

    {[
      request  ::= "ping"
                 | "stats"
                 | "check" cmd (key "=" value)*
      cmd      ::= ident                      -- rw, buffer, rwd, db, life
      value    ::= bare-token | '"' escaped '"'
    ]}

    Values containing spaces (notably [restrict=...] formulas) are
    double-quoted, with backslash-quote and backslash-backslash as the
    only escapes. Keys split into two vocabularies:

    - {e engine} keys, parsed and validated here because every check
      command shares them: [reduction=none|sleep|source], [por=on|off],
      [keys=fp|exact], [jobs=N], [batch=N], [bitstate=off|BITS],
      [timeout=SECS], [max-configs=N], [max-runs=N];
    - {e workload} keys (e.g. [readers=2], [version=readers-priority]),
      kept as an association list for the command runner to interpret.

    The one workload key interpreted here is [restrict]: its value is a
    restriction formula in the concrete GEM formula syntax ({!Parser}),
    parsed at request-parse time so a malformed formula is rejected at
    the wire — the daemon never starts an exploration it cannot finish
    checking. The formula's canonical rendering ([Formula.to_string])
    is what enters the cache key's restriction component.

    {!to_line} renders the canonical form — workload keys sorted,
    engine keys in a fixed order with defaults omitted — and
    [parse (to_line r)] returns a request equal to [r] (the round-trip
    property tested in [test/test_serve.ml]). *)

type reduction = Reduction_none | Reduction_sleep | Reduction_source
(** Mirror of [Explore.reduction] — [Gem_syntax] cannot depend on
    [Gem_lang], so the wire protocol carries its own copy; the daemon
    runner translates. *)

val reduction_to_string : reduction -> string
(** ["none"], ["sleep"] or ["source"] — the wire spellings. *)

val reduction_of_string : string -> reduction option

type engine = {
  reduction : reduction option;
      (** [None] defers to [Explore.reduction_default] (which still
          honours the legacy [por] key below). The [reduction] key wins
          over [por] when both are present. *)
  por : bool option;  (** [None] defers to [Explore.por_default]. *)
  exact_keys : bool option;
      (** [None] defers to [Explore.exact_keys_default]. *)
  jobs : int;  (** Default 1. *)
  batch : int;  (** Default 64. *)
  bitstate_bits : int option;
      (** [Some bits] = bitstate mode with a [2^bits]-slot table. *)
  timeout : float option;
  max_configs : int option;
  max_runs : int option;
}

val default_engine : engine

type check = {
  cmd : string;
  params : (string * string) list;
      (** Workload parameters, sorted by key; excludes [restrict]. *)
  restrict : Gem_logic.Formula.t option;
      (** Extra named restriction to check alongside the problem's own. *)
  engine : engine;
}

type t = Ping | Stats | Check of check

val parse : string -> (t, string) result
(** Errors are one-line human-readable descriptions (no newlines), so
    the daemon can embed them in a JSON error reply verbatim. *)

val to_line : t -> string
(** Canonical rendering; see above. *)

val restriction_name : string
(** The name under which a [restrict=...] formula is added to the
    problem specification (and reported in failure verdicts). *)
