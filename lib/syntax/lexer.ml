type token =
  | IDENT of string
  | INT of int
  | STRING of string
  | ALL
  | EX
  | TRUE
  | FALSE
  | NOT
  | AND
  | OR
  | IMPLIES
  | IFF
  | HENCEFORTH
  | EVENTUALLY
  | ENABLES
  | ELEM_LT
  | TEMP_LT
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | BANG
  | AT
  | OCCURRED
  | NEW
  | POTENTIAL
  | INDEX
  | ELEM
  | IN
  | STAR
  | QUESTION
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COMMA
  | COLON
  | SEMI
  | DOT
  | BAR
  | COLONCOLON
  | KW_ELEMENT
  | KW_TYPE
  | KW_EVENTS
  | KW_RESTRICTIONS
  | KW_RESTRICTION
  | KW_END
  | KW_GROUP
  | KW_PORTS
  | KW_THREAD
  | KW_SPECIFICATION
  | EOF

type error = { pos : int; message : string }

let keyword = function
  | "ALL" -> Some ALL
  | "EX" -> Some EX
  | "true" -> Some TRUE
  | "false" -> Some FALSE
  | "at" -> Some AT
  | "in" -> Some IN
  | "occurred" -> Some OCCURRED
  | "new" -> Some NEW
  | "potential" -> Some POTENTIAL
  | "index" -> Some INDEX
  | "elem" -> Some ELEM
  | "ELEMENT" -> Some KW_ELEMENT
  | "TYPE" -> Some KW_TYPE
  | "EVENTS" -> Some KW_EVENTS
  | "RESTRICTIONS" -> Some KW_RESTRICTIONS
  | "RESTRICTION" -> Some KW_RESTRICTION
  | "END" -> Some KW_END
  | "GROUP" -> Some KW_GROUP
  | "PORTS" -> Some KW_PORTS
  | "THREAD" -> Some KW_THREAD
  | "SPECIFICATION" -> Some KW_SPECIFICATION
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '\'' || c = '-'

let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let error = ref None in
  let emit t = tokens := t :: !tokens in
  let peek i = if i < n then Some src.[i] else None in
  let fail pos message = error := Some { pos; message } in
  let rec loop i =
    if !error <> None then ()
    else if i >= n then emit EOF
    else
      match src.[i] with
      | ' ' | '\t' | '\n' | '\r' -> loop (i + 1)
      | '(' -> emit LPAREN; loop (i + 1)
      | ')' -> emit RPAREN; loop (i + 1)
      | '{' -> emit LBRACE; loop (i + 1)
      | '}' -> emit RBRACE; loop (i + 1)
      | ',' -> emit COMMA; loop (i + 1)
      | ';' -> emit SEMI; loop (i + 1)
      | '.' -> emit DOT; loop (i + 1)
      | '*' -> emit STAR; loop (i + 1)
      | '?' -> emit QUESTION; loop (i + 1)
      | '+' -> emit PLUS; loop (i + 1)
      | '~' -> emit NOT; loop (i + 1)
      | '[' ->
          if peek (i + 1) = Some ']' then begin emit HENCEFORTH; loop (i + 2) end
          else fail i "expected []"
      | ']' -> fail i "unmatched ]"
      | ':' ->
          if peek (i + 1) = Some ':' then begin emit COLONCOLON; loop (i + 2) end
          else begin emit COLON; loop (i + 1) end
      | '/' ->
          if peek (i + 1) = Some '\\' then begin emit AND; loop (i + 2) end
          else fail i "expected /\\"
      | '\\' ->
          if peek (i + 1) = Some '/' then begin emit OR; loop (i + 2) end
          else fail i "expected \\/"
      | '|' ->
          if peek (i + 1) = Some '>' then begin emit ENABLES; loop (i + 2) end
          else begin emit BAR; loop (i + 1) end
      | '!' ->
          if peek (i + 1) = Some '=' then begin emit NE; loop (i + 2) end
          else begin emit BANG; loop (i + 1) end
      | '=' ->
          if peek (i + 1) = Some '>' then
            if peek (i + 2) = Some 'e' && peek (i + 3) = Some 'l'
               && not (match peek (i + 4) with Some c -> is_ident_char c | None -> false)
            then begin emit ELEM_LT; loop (i + 4) end
            else begin emit TEMP_LT; loop (i + 2) end
          else begin emit EQ; loop (i + 1) end
      | '<' -> (
          match peek (i + 1) with
          | Some '>' -> emit EVENTUALLY; loop (i + 2)
          | Some '=' -> emit LE; loop (i + 2)
          | Some '-' when peek (i + 2) = Some '>' -> emit IFF; loop (i + 3)
          | _ -> emit LT; loop (i + 1))
      | '>' ->
          if peek (i + 1) = Some '=' then begin emit GE; loop (i + 2) end
          else begin emit GT; loop (i + 1) end
      | '-' -> (
          match peek (i + 1) with
          | Some '>' -> emit IMPLIES; loop (i + 2)
          | Some '-' ->
              (* comment to end of line *)
              let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
              loop (skip (i + 2))
          | Some c when is_digit c ->
              let rec num j acc =
                match peek j with
                | Some c when is_digit c -> num (j + 1) ((acc * 10) + Char.code c - 48)
                | _ -> (j, acc)
              in
              let j, v = num (i + 1) 0 in
              emit (INT (-v));
              loop j
          | _ -> fail i "stray '-'")
      | '"' ->
          let buf = Buffer.create 16 in
          let rec str j =
            match peek j with
            | None -> fail j "unterminated string"
            | Some '"' ->
                emit (STRING (Buffer.contents buf));
                loop (j + 1)
            | Some '\\' -> (
                match peek (j + 1) with
                | Some 'n' -> Buffer.add_char buf '\n'; str (j + 2)
                | Some 't' -> Buffer.add_char buf '\t'; str (j + 2)
                | Some c -> Buffer.add_char buf c; str (j + 2)
                | None -> fail j "unterminated escape")
            | Some c ->
                Buffer.add_char buf c;
                str (j + 1)
          in
          str (i + 1)
      | c when is_digit c ->
          let rec num j acc =
            match peek j with
            | Some c when is_digit c -> num (j + 1) ((acc * 10) + Char.code c - 48)
            | _ -> (j, acc)
          in
          let j, v = num i 0 in
          emit (INT v);
          loop j
      | c when is_ident_start c ->
          (* A dash continues the identifier only when followed by another
             identifier character (so "a->b" is three tokens). *)
          let rec ident j =
            match peek j with
            | Some '-' -> (
                match peek (j + 1) with
                | Some c when is_ident_char c && c <> '-' -> ident (j + 1)
                | _ -> j)
            | Some c when is_ident_char c -> ident (j + 1)
            | _ -> j
          in
          let j = ident (i + 1) in
          let word = String.sub src i (j - i) in
          (match keyword word with Some t -> emit t | None -> emit (IDENT word));
          loop j
      | c -> fail i (Printf.sprintf "unexpected character %C" c)
  in
  loop 0;
  match !error with Some e -> Error e | None -> Ok (List.rev !tokens)

let pp_token ppf t =
  let s =
    match t with
    | IDENT s -> Printf.sprintf "identifier %s" s
    | INT n -> Printf.sprintf "integer %d" n
    | STRING s -> Printf.sprintf "string %S" s
    | ALL -> "ALL"
    | EX -> "EX"
    | TRUE -> "true"
    | FALSE -> "false"
    | NOT -> "~"
    | AND -> "/\\"
    | OR -> "\\/"
    | IMPLIES -> "->"
    | IFF -> "<->"
    | HENCEFORTH -> "[]"
    | EVENTUALLY -> "<>"
    | ENABLES -> "|>"
    | ELEM_LT -> "=>el"
    | TEMP_LT -> "=>"
    | EQ -> "="
    | NE -> "!="
    | LT -> "<"
    | LE -> "<="
    | GT -> ">"
    | GE -> ">="
    | PLUS -> "+"
    | BANG -> "!"
    | AT -> "at"
    | OCCURRED -> "occurred"
    | NEW -> "new"
    | POTENTIAL -> "potential"
    | INDEX -> "index"
    | ELEM -> "elem"
    | IN -> "in"
    | STAR -> "*"
    | QUESTION -> "?"
    | LPAREN -> "("
    | RPAREN -> ")"
    | LBRACE -> "{"
    | RBRACE -> "}"
    | COMMA -> ","
    | COLON -> ":"
    | SEMI -> ";"
    | DOT -> "."
    | BAR -> "|"
    | COLONCOLON -> "::"
    | KW_ELEMENT -> "ELEMENT"
    | KW_TYPE -> "TYPE"
    | KW_EVENTS -> "EVENTS"
    | KW_RESTRICTIONS -> "RESTRICTIONS"
    | KW_RESTRICTION -> "RESTRICTION"
    | KW_END -> "END"
    | KW_GROUP -> "GROUP"
    | KW_PORTS -> "PORTS"
    | KW_THREAD -> "THREAD"
    | KW_SPECIFICATION -> "SPECIFICATION"
    | EOF -> "end of input"
  in
  Format.pp_print_string ppf s
