module F = Gem_logic.Formula
module V = Gem_model.Value
module Etype = Gem_spec.Etype
module Group = Gem_model.Group
module Thread = Gem_spec.Thread
module Spec = Gem_spec.Spec
open Lexer

exception Parse_error of string

(* Mutable token cursor. *)
type cursor = { toks : token array; mutable pos : int }

let peek c = c.toks.(c.pos)
let peek2 c = if c.pos + 1 < Array.length c.toks then c.toks.(c.pos + 1) else EOF
let advance c = if c.pos < Array.length c.toks - 1 then c.pos <- c.pos + 1

let fail c what =
  raise
    (Parse_error
       (Format.asprintf "at token %d: expected %s, found %a" c.pos what pp_token (peek c)))

let expect c t what = if peek c = t then advance c else fail c what

let ident c =
  match peek c with
  | IDENT s -> advance c; s
  | _ -> fail c "an identifier"

(* ------------------------------------------------------------------ *)
(* Domains                                                             *)
(* ------------------------------------------------------------------ *)

(* path = ident (DOT ident)* (DOT STAR)? — returns segments and whether it
   ended in ".*". *)
let rec path_segments c acc =
  let seg = ident c in
  if peek c = DOT then begin
    advance c;
    match peek c with
    | STAR ->
        advance c;
        (List.rev (seg :: acc), true)
    | IDENT _ -> path_segments c (seg :: acc)
    | _ -> fail c "an identifier or * after '.'"
  end
  else (List.rev (seg :: acc), false)

let rec domain c =
  match peek c with
  | STAR -> advance c; F.Any
  | LBRACE ->
      advance c;
      let rec members acc =
        let d = domain c in
        if peek c = BAR then begin advance c; members (d :: acc) end
        else begin
          expect c RBRACE "'}'";
          F.Union (List.rev (d :: acc))
        end
      in
      members []
  | IDENT _ -> (
      let segs, at_elem = path_segments c [] in
      if at_elem then F.At_elem (String.concat "." segs)
      else
        match segs with
        | [ cls ] -> F.Cls cls
        | _ ->
            let rec split acc = function
              | [ last ] -> (String.concat "." (List.rev acc), last)
              | x :: rest -> split (x :: acc) rest
              | [] -> assert false
            in
            let el, cls = split [] segs in
            F.Cls_at (el, cls))
  | _ -> fail c "a domain"

(* ------------------------------------------------------------------ *)
(* Terms and comparisons                                               *)
(* ------------------------------------------------------------------ *)

let cmp_of_token = function
  | EQ -> Some F.Eq
  | NE -> Some F.Ne
  | LT -> Some F.Lt
  | LE -> Some F.Le
  | GT -> Some F.Gt
  | GE -> Some F.Ge
  | _ -> None

let rec term c =
  let base =
    match peek c with
    | INT n -> advance c; F.Const (V.Int n)
    | STRING s -> advance c; F.Const (V.Str s)
    | TRUE -> advance c; F.Const (V.Bool true)
    | FALSE -> advance c; F.Const (V.Bool false)
    | LPAREN ->
        advance c;
        expect c RPAREN "')' (the unit constant)";
        F.Const V.Unit
    | INDEX ->
        advance c;
        expect c LPAREN "'('";
        let x = ident c in
        expect c RPAREN "')'";
        F.Index x
    | IDENT x ->
        advance c;
        expect c DOT "'.' (a parameter access)";
        let p = ident c in
        F.Param (x, p)
    | _ -> fail c "a term"
  in
  plus_suffix c base

and plus_suffix c t =
  if peek c = PLUS then begin
    advance c;
    match peek c with
    | INT n ->
        advance c;
        plus_suffix c (F.Plus (t, n))
    | _ -> fail c "an integer offset"
  end
  else t

(* ------------------------------------------------------------------ *)
(* Formulae                                                            *)
(* ------------------------------------------------------------------ *)

let rec formula c = iff_level c

and iff_level c =
  let lhs = implies_level c in
  if peek c = IFF then begin
    advance c;
    F.Iff (lhs, implies_level c)
  end
  else lhs

and implies_level c =
  let lhs = or_level c in
  if peek c = IMPLIES then begin
    advance c;
    (* right associative *)
    F.Implies (lhs, implies_level c)
  end
  else lhs

and or_level c =
  let first = and_level c in
  if peek c = OR then begin
    let rec more acc =
      if peek c = OR then begin
        advance c;
        more (and_level c :: acc)
      end
      else F.Or (List.rev acc)
    in
    more [ first ]
  end
  else first

and and_level c =
  let first = unary c in
  if peek c = AND then begin
    let rec more acc =
      if peek c = AND then begin
        advance c;
        more (unary c :: acc)
      end
      else F.And (List.rev acc)
    in
    more [ first ]
  end
  else first

and unary c =
  match peek c with
  | NOT ->
      advance c;
      F.Not (unary c)
  | HENCEFORTH ->
      advance c;
      F.Henceforth (unary c)
  | EVENTUALLY ->
      advance c;
      F.Eventually (unary c)
  | LPAREN when peek2 c = ALL || peek2 c = EX -> quantifier c
  | _ -> atom c

and quantifier c =
  expect c LPAREN "'('";
  let quant =
    match peek c with
    | ALL -> advance c; `All
    | EX -> (
        advance c;
        match peek c with
        | BANG -> advance c; `Ex1
        | LE -> (
            advance c;
            match peek c with
            | INT 1 -> advance c; `Atmost1
            | _ -> fail c "'1' (in EX<=1)")
        | _ -> `Ex)
    | _ -> fail c "ALL or EX"
  in
  let rec binders acc =
    let x = ident c in
    expect c COLON "':'";
    let d = domain c in
    if peek c = COMMA then begin advance c; binders ((x, d) :: acc) end
    else List.rev ((x, d) :: acc)
  in
  let bs = binders [] in
  expect c RPAREN "')'";
  let body = unary c in
  match quant with
  | `All -> List.fold_right (fun (x, d) f -> F.Forall (x, d, f)) bs body
  | `Ex -> List.fold_right (fun (x, d) f -> F.Exists (x, d, f)) bs body
  | `Ex1 -> List.fold_right (fun (x, d) f -> F.Exists_unique (x, d, f)) bs body
  | `Atmost1 -> List.fold_right (fun (x, d) f -> F.At_most_one (x, d, f)) bs body

and atom c =
  match peek c with
  | TRUE when cmp_of_token (peek2 c) = None -> advance c; F.True
  | FALSE when cmp_of_token (peek2 c) = None -> advance c; F.False
  | TRUE | FALSE -> comparison c
  | OCCURRED ->
      advance c;
      expect c LPAREN "'('";
      let x = ident c in
      expect c RPAREN "')'";
      F.Atom (F.Occurred x)
  | NEW ->
      advance c;
      expect c LPAREN "'('";
      let x = ident c in
      expect c RPAREN "')'";
      F.Atom (F.New x)
  | POTENTIAL ->
      advance c;
      expect c LPAREN "'('";
      let x = ident c in
      expect c RPAREN "')'";
      F.Atom (F.Potential x)
  | ELEM ->
      advance c;
      expect c LPAREN "'('";
      let x = ident c in
      expect c RPAREN "')'";
      expect c EQ "'='";
      (match peek c with ELEM -> advance c | _ -> fail c "elem");
      expect c LPAREN "'('";
      let y = ident c in
      expect c RPAREN "')'";
      F.Atom (F.Same_element (x, y))
  | LPAREN ->
      (* Either a parenthesized formula or the unit constant starting a
         comparison. *)
      if peek2 c = RPAREN then comparison c
      else begin
        advance c;
        let f = formula c in
        expect c RPAREN "')'";
        f
      end
  | INT _ | STRING _ | INDEX -> comparison c
  | IDENT x -> (
      match peek2 c with
      | DOT -> comparison c
      | ENABLES ->
          advance c; advance c;
          F.Atom (F.Enables (x, ident c))
      | ELEM_LT ->
          advance c; advance c;
          F.Atom (F.Elem_lt (x, ident c))
      | TEMP_LT ->
          advance c; advance c;
          F.Atom (F.Temp_lt (x, ident c))
      | EQ ->
          advance c; advance c;
          F.Atom (F.Same_event (x, ident c))
      | AT ->
          advance c; advance c;
          F.Atom (F.At_class (x, domain c))
      | IN ->
          advance c; advance c;
          F.Atom (F.In_thread (ident c, x))
      | NOT ->
          advance c; advance c;
          let pi = ident c in
          expect c NOT "'~'";
          F.Atom (F.Same_thread (pi, x, ident c))
      | BANG ->
          advance c; advance c;
          expect c NOT "'~'";
          let pi = ident c in
          expect c NOT "'~'";
          F.Atom (F.Distinct_thread (pi, x, ident c))
      | _ -> fail c "a relation after the event variable")
  | _ -> fail c "a formula"

and comparison c =
  let lhs = term c in
  let op =
    match cmp_of_token (peek c) with
    | Some op -> advance c; op
    | None -> fail c "a comparison operator"
  in
  let rhs = term c in
  F.Atom (F.Cmp (op, lhs, rhs))

(* ------------------------------------------------------------------ *)
(* Thread patterns                                                     *)
(* ------------------------------------------------------------------ *)

let rec thread_pat c =
  let first = thread_seq c in
  if peek c = BAR then begin
    let rec more acc =
      if peek c = BAR then begin advance c; more (thread_seq c :: acc) end
      else Thread.Alt (List.rev acc)
    in
    more [ first ]
  end
  else first

and thread_seq c =
  let first = thread_rep c in
  if peek c = COLONCOLON then begin
    let rec more acc =
      if peek c = COLONCOLON then begin advance c; more (thread_rep c :: acc) end
      else Thread.Seq (List.rev acc)
    in
    more [ first ]
  end
  else first

and thread_rep c =
  let base = thread_prim c in
  match peek c with
  | STAR -> advance c; Thread.Star base
  | QUESTION -> advance c; Thread.Opt base
  | _ -> base

and thread_prim c =
  match peek c with
  | LPAREN ->
      advance c;
      let p = thread_pat c in
      expect c RPAREN "')'";
      p
  | _ -> Thread.Step (domain c)

(* ------------------------------------------------------------------ *)
(* Specifications                                                      *)
(* ------------------------------------------------------------------ *)

let ptype_of = function
  | "INTEGER" -> Etype.P_int
  | "BOOLEAN" -> Etype.P_bool
  | "STRING" -> Etype.P_str
  | "UNIT" -> Etype.P_unit
  | "VALUE" -> Etype.P_any
  | s -> raise (Parse_error ("unknown parameter type " ^ s))

(* A parameter type in a (possibly parameterized) element type body: a
   concrete ptype or a reference to a type parameter (paper §6:
   TypedVariable(t: TYPE)). *)
type ptype_ref = Concrete_pt of Etype.ptype | Pt_var of string

let ptype_ref ~type_params name =
  if List.mem name type_params then Pt_var name else Concrete_pt (ptype_of name)

let event_decl ~type_params c =
  let klass = ident c in
  let schema =
    if peek c = LPAREN then begin
      advance c;
      let rec params acc =
        let p = ident c in
        expect c COLON "':'";
        let ty = ptype_ref ~type_params (ident c) in
        if peek c = COMMA then begin advance c; params ((p, ty) :: acc) end
        else begin
          expect c RPAREN "')'";
          List.rev ((p, ty) :: acc)
        end
      in
      params []
    end
    else []
  in
  (klass, schema)

(* Substitute the pseudo-element "self" in a formula's domains. *)
let rec subst_self el f =
  let dom = function
    | F.Cls_at ("self", cls) -> F.Cls_at (el, cls)
    | F.At_elem "self" -> F.At_elem el
    | F.Union ds ->
        F.Union
          (List.map
             (function
               | F.Cls_at ("self", cls) -> F.Cls_at (el, cls)
               | F.At_elem "self" -> F.At_elem el
               | d -> d)
             ds)
    | d -> d
  in
  let atom = function
    | F.In_class (x, d) -> F.In_class (x, dom d)
    | F.At_class (x, d) -> F.At_class (x, dom d)
    | a -> a
  in
  match f with
  | F.True | F.False -> f
  | F.Atom a -> F.Atom (atom a)
  | F.Not g -> F.Not (subst_self el g)
  | F.And gs -> F.And (List.map (subst_self el) gs)
  | F.Or gs -> F.Or (List.map (subst_self el) gs)
  | F.Implies (a, b) -> F.Implies (subst_self el a, subst_self el b)
  | F.Iff (a, b) -> F.Iff (subst_self el a, subst_self el b)
  | F.Forall (x, d, g) -> F.Forall (x, dom d, subst_self el g)
  | F.Exists (x, d, g) -> F.Exists (x, dom d, subst_self el g)
  | F.Exists_unique (x, d, g) -> F.Exists_unique (x, dom d, subst_self el g)
  | F.At_most_one (x, d, g) -> F.At_most_one (x, dom d, subst_self el g)
  | F.Henceforth g -> F.Henceforth (subst_self el g)
  | F.Eventually g -> F.Eventually (subst_self el g)

(* A type definition: possibly parameterized over TYPE parameters
   (paper §6). Instantiating with concrete ptypes yields an Etype. *)
type type_def = {
  td_name : string;
  td_params : string list;
  td_events : (string * (string * ptype_ref) list) list;
  td_restrictions : (string * (string -> Gem_logic.Formula.t)) list;
}

let instantiate_type td args =
  if List.length args <> List.length td.td_params then
    raise
      (Parse_error
         (Printf.sprintf "type %s expects %d type argument(s), got %d" td.td_name
            (List.length td.td_params) (List.length args)));
  let binding = List.combine td.td_params args in
  let events =
    List.map
      (fun (klass, schema) ->
        {
          Etype.klass;
          schema =
            List.map
              (fun (p, ty) ->
                match ty with
                | Concrete_pt pt -> (p, pt)
                | Pt_var v -> (p, List.assoc v binding))
              schema;
        })
      td.td_events
  in
  let suffix =
    if args = [] then ""
    else
      "("
      ^ String.concat ","
          (List.map
             (function
               | Etype.P_int -> "INTEGER"
               | Etype.P_bool -> "BOOLEAN"
               | Etype.P_str -> "STRING"
               | Etype.P_unit -> "UNIT"
               | Etype.P_any -> "VALUE")
             args)
      ^ ")"
  in
  Etype.make (td.td_name ^ suffix) ~events ~restrictions:td.td_restrictions ()

let etype_def c =
  (* ELEMENT TYPE already consumed *)
  let name = ident c in
  let type_params =
    if peek c = LPAREN then begin
      advance c;
      let rec params acc =
        let p = ident c in
        expect c COLON "':'";
        (match peek c with
        | KW_TYPE -> advance c
        | IDENT "TYPE" -> advance c
        | _ -> fail c "TYPE");
        if peek c = COMMA then begin advance c; params (p :: acc) end
        else begin
          expect c RPAREN "')'";
          List.rev (p :: acc)
        end
      in
      params []
    end
    else []
  in
  expect c KW_EVENTS "EVENTS";
  let rec events acc =
    match peek c with
    | IDENT _ -> events (event_decl ~type_params c :: acc)
    | _ -> List.rev acc
  in
  let events = events [] in
  let restrictions =
    if peek c = KW_RESTRICTIONS then begin
      advance c;
      let rec restr acc =
        match peek c, peek2 c with
        | IDENT rname, COLON ->
            advance c;
            advance c;
            let f = formula c in
            restr ((rname, fun el -> subst_self el f) :: acc)
        | _ -> List.rev acc
      in
      restr []
    end
    else []
  in
  expect c KW_END "END";
  { td_name = name; td_params = type_params; td_events = events;
    td_restrictions = restrictions }

let type_def_of_etype (t : Etype.t) =
  {
    td_name = t.Etype.type_name;
    td_params = [];
    td_events =
      List.map
        (fun (d : Etype.event_decl) ->
          (d.klass, List.map (fun (p, pt) -> (p, Concrete_pt pt)) d.schema))
        t.Etype.events;
    td_restrictions = t.Etype.restrictions;
  }

let builtin_types =
  [
    ("Variable", type_def_of_etype Etype.variable);
    ("IntegerVariable", type_def_of_etype Etype.integer_variable);
  ]

let group_def c =
  (* GROUP already consumed *)
  let name = ident c in
  expect c LPAREN "'('";
  let rec members acc =
    let m =
      if peek c = KW_GROUP then begin
        advance c;
        Group.Grp (ident c)
      end
      else
        let segs, star = path_segments c [] in
        if star then raise (Parse_error "group members cannot end in .*")
        else Group.Elem (String.concat "." segs)
    in
    if peek c = COMMA then begin advance c; members (m :: acc) end
    else begin
      expect c RPAREN "')'";
      List.rev (m :: acc)
    end
  in
  let members = members [] in
  let ports =
    if peek c = KW_PORTS then begin
      advance c;
      expect c LPAREN "'('";
      let rec ports acc =
        let segs, star = path_segments c [] in
        if star then raise (Parse_error "a port is element.Class, not element.*");
        let port =
          match List.rev segs with
          | cls :: rev_el when rev_el <> [] ->
              { Group.port_element = String.concat "." (List.rev rev_el); port_class = cls }
          | _ -> raise (Parse_error "a port is element.Class")
        in
        if peek c = COMMA then begin advance c; ports (port :: acc) end
        else begin
          expect c RPAREN "')'";
          List.rev (port :: acc)
        end
      in
      ports []
    end
    else []
  in
  Group.make name members ~ports

let spec_items c =
  let types = ref builtin_types in
  let elements = ref [] in
  let groups = ref [] in
  let restrictions = ref [] in
  let threads = ref [] in
  let rec items () =
    match peek c with
    | KW_ELEMENT when peek2 c = KW_TYPE ->
        advance c;
        advance c;
        let td = etype_def c in
        types := (td.td_name, td) :: !types;
        items ()
    | KW_ELEMENT ->
        advance c;
        let segs, star = path_segments c [] in
        if star then raise (Parse_error "an element name cannot end in .*");
        let name = String.concat "." segs in
        expect c COLON "':'";
        let tyname = ident c in
        let td =
          match List.assoc_opt tyname !types with
          | Some t -> t
          | None -> raise (Parse_error ("unknown element type " ^ tyname))
        in
        let args =
          if peek c = LPAREN then begin
            advance c;
            let rec args acc =
              let a = ptype_of (ident c) in
              if peek c = COMMA then begin advance c; args (a :: acc) end
              else begin
                expect c RPAREN "')'";
                List.rev (a :: acc)
              end
            in
            args []
          end
          else []
        in
        elements := (name, instantiate_type td args) :: !elements;
        items ()
    | KW_GROUP ->
        advance c;
        groups := group_def c :: !groups;
        items ()
    | KW_RESTRICTION ->
        advance c;
        let name = ident c in
        expect c COLON "':'";
        restrictions := (name, formula c) :: !restrictions;
        items ()
    | KW_THREAD ->
        advance c;
        let name = ident c in
        expect c EQ "'='";
        threads := Thread.def name (thread_pat c) :: !threads;
        items ()
    | KW_END -> advance c
    | EOF -> ()
    | _ -> fail c "ELEMENT, GROUP, RESTRICTION, THREAD or END"
  in
  items ();
  (List.rev !elements, List.rev !groups, List.rev !restrictions, List.rev !threads)

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let with_cursor src k =
  match tokenize src with
  | Error e -> Error (Printf.sprintf "lexical error at offset %d: %s" e.pos e.message)
  | Ok toks -> (
      let c = { toks = Array.of_list toks; pos = 0 } in
      try
        let v = k c in
        if peek c <> EOF then
          Error
            (Format.asprintf "trailing input at token %d: %a" c.pos pp_token (peek c))
        else Ok v
      with Parse_error m -> Error m)

let parse_formula src = with_cursor src formula

let parse_thread_pattern src = with_cursor src thread_pat

let parse_spec src =
  with_cursor src (fun c ->
      expect c KW_SPECIFICATION "SPECIFICATION";
      let name = ident c in
      let elements, groups, restrictions, threads = spec_items c in
      Spec.make name ~elements ~groups ~restrictions ~threads ())
