(** Parser for the GEM concrete syntax — the textual specification language
    the paper presents its examples in, ASCII-ized.

    {2 Formulae}

    {[
      formula   ::= iff
      iff       ::= implies ( "<->" implies )*
      implies   ::= or ( "->" or )*          (right associative)
      or        ::= and ( \/ and )*
      and       ::= unary ( /\ unary )*
      unary     ::= "~" unary | "[]" unary | "<>" unary | quant | atom
      quant     ::= "(" ("ALL" | "EX" | "EX!" | "EX<=1") binders ")" unary
                    -- a quantifier's scope is ONE unary formula: wrap
                    -- larger bodies in parentheses, as Formula.pp does
      binders   ::= ident ":" domain ( "," ident ":" domain )*
      atom      ::= "true" | "false" | "(" formula ")"
                  | "occurred" "(" ident ")" | "new" "(" ident ")"
                  | "potential" "(" ident ")"
                  | "elem" "(" ident ")" "=" "elem" "(" ident ")"
                  | term cmp term                  (data comparison)
                  | ident "|>" ident | ident "=>el" ident | ident "=>" ident
                  | ident "=" ident | ident "at" domain | ident "in" ident
                  | ident "~" ident "~" ident      (same thread instance)
                  | ident "!" "~" ident "~" ident  (distinct instances)
      term      ::= ident "." ident | "index" "(" ident ")" | term "+" int
                  | int | string | "true" | "false" | "(" ")"
      cmp       ::= "=" | "!=" | "<" | "<=" | ">" | ">="
      domain    ::= "*" | path | path "." "*"
                  | "{" domain ("|" domain)* "}"
      path      ::= ident ( "." ident )*
    ]}

    A one-segment domain is a class anywhere ([Formula.Cls]); a multi-
    segment domain is class-at-element ([Formula.Cls_at]), the element
    being all but the last segment (element names may contain dots); a
    path ending in [.*] is every event at the element ([Formula.At_elem]);
    a bare [*] is every event.

    [Formula.pp] prints in exactly this syntax, and
    [parse_formula (Formula.to_string f)] returns [f] for [Sem]-free
    formulae whose data constants are ints, strings, booleans or unit.

    {2 Specifications}

    {[
      spec      ::= "SPECIFICATION" ident item* "END"?
      item      ::= etype | element | group | restriction | thread
      etype     ::= "ELEMENT" "TYPE" ident tparams? "EVENTS" eventdecl*
                    ( "RESTRICTIONS" (ident ":" formula)* )? "END"
      tparams   ::= "(" ident ":" "TYPE" ("," ident ":" "TYPE")* ")"
      eventdecl ::= ident ( "(" ident ":" ptyref ("," ident ":" ptyref)* ")" )?
      ptype     ::= "INTEGER" | "BOOLEAN" | "STRING" | "UNIT" | "VALUE"
      ptyref    ::= ptype | ident          (a declared TYPE parameter)
      element   ::= "ELEMENT" path ":" ident ( "(" ptype ("," ptype)* ")" )?
                    -- instance : type, with type arguments for
                    -- parameterized types (paper sec. 6's TypedVariable)
      group     ::= "GROUP" ident "(" member ("," member)* ")"
                    ( "PORTS" "(" path ("," path)* ")" )?
      member    ::= path | "GROUP" ident
      restriction ::= "RESTRICTION" ident ":" formula
      thread    ::= "THREAD" ident "=" tpat
      tpat      ::= tseq ( "|" tseq )*
      tseq      ::= trep ( "::" trep )*
      trep      ::= tprim ( "*" | "?" )?
      tprim     ::= domain | "(" tpat ")"
    ]}

    Inside an element type's restrictions, the pseudo-element [self]
    refers to the instance: [self.Assign] becomes
    [Cls_at (instance, "Assign")] at instantiation.

    Reserved words ([at], [in], [occurred], [new], [potential], [index],
    [elem], the keywords) cannot be used as variable or parameter names. *)

val parse_formula : string -> (Gem_logic.Formula.t, string) result

val parse_spec : string -> (Gem_spec.Spec.t, string) result
(** Element instances may reference types declared earlier in the same
    text or the built-ins [Variable] / [IntegerVariable]. *)

val parse_thread_pattern : string -> (Gem_spec.Thread.pat, string) result
