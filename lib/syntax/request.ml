type reduction = Reduction_none | Reduction_sleep | Reduction_source

let reduction_to_string = function
  | Reduction_none -> "none"
  | Reduction_sleep -> "sleep"
  | Reduction_source -> "source"

let reduction_of_string = function
  | "none" -> Some Reduction_none
  | "sleep" -> Some Reduction_sleep
  | "source" -> Some Reduction_source
  | _ -> None

type engine = {
  reduction : reduction option;
  por : bool option;
  exact_keys : bool option;
  jobs : int;
  batch : int;
  bitstate_bits : int option;
  timeout : float option;
  max_configs : int option;
  max_runs : int option;
}

let default_engine =
  {
    reduction = None;
    por = None;
    exact_keys = None;
    jobs = 1;
    batch = 64;
    bitstate_bits = None;
    timeout = None;
    max_configs = None;
    max_runs = None;
  }

type check = {
  cmd : string;
  params : (string * string) list;
  restrict : Gem_logic.Formula.t option;
  engine : engine;
}

type t = Ping | Stats | Check of check

let restriction_name = "client-restriction"

(* --- tokenizer ------------------------------------------------------ *)

(* Splits a request line into bare words and [key=value] pairs, where a
   value may be double-quoted to carry spaces. Escapes inside quotes are
   backslash-quote and backslash-backslash; anything else after a
   backslash is an error rather than silently passed through, so a
   typo'd escape fails loudly. *)

type token = Word of string | Pair of string * string

let is_space c = c = ' ' || c = '\t'

let tokenize line =
  let n = String.length line in
  let toks = ref [] in
  let i = ref 0 in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let result = ref None in
  while !result = None && !i < n do
    if is_space line.[!i] then incr i
    else begin
      (* A token runs to the next unquoted space. *)
      let b = Buffer.create 16 in
      let key = ref None in
      let stop = ref false in
      while !result = None && (not !stop) && !i < n do
        match line.[!i] with
        | c when is_space c -> stop := true
        | '=' when !key = None ->
            key := Some (Buffer.contents b);
            Buffer.clear b;
            incr i
        | '"' ->
            if !key = None || Buffer.length b > 0 then
              result := Some (err "misplaced quote at column %d" (!i + 1))
            else begin
              incr i;
              let closed = ref false in
              while !result = None && (not !closed) && !i < n do
                match line.[!i] with
                | '"' ->
                    closed := true;
                    incr i
                | '\\' ->
                    if !i + 1 >= n then
                      result := Some (err "dangling backslash in quoted value")
                    else begin
                      (match line.[!i + 1] with
                      | ('"' | '\\') as c -> Buffer.add_char b c
                      | c ->
                          result :=
                            Some (err "unknown escape \\%c in quoted value" c));
                      i := !i + 2
                    end
                | c ->
                    Buffer.add_char b c;
                    incr i
              done;
              if !result = None && not !closed then
                result := Some (err "unterminated quoted value")
            end
        | c ->
            Buffer.add_char b c;
            incr i
      done;
      if !result = None then
        let tok =
          match !key with
          | None -> Word (Buffer.contents b)
          | Some k -> Pair (k, Buffer.contents b)
        in
        toks := tok :: !toks
    end
  done;
  match !result with Some e -> e | None -> Ok (List.rev !toks)

(* --- engine / workload key parsing ---------------------------------- *)

let pos_int ~key v =
  match int_of_string_opt v with
  | Some n when n > 0 -> Ok n
  | _ -> Error (Printf.sprintf "%s expects a positive integer, got %S" key v)

let parse_engine_key eng key v =
  let open Result in
  match key with
  | "reduction" -> (
      match reduction_of_string v with
      | Some r -> Ok (Some { eng with reduction = Some r })
      | None ->
          Error (Printf.sprintf "reduction expects none|sleep|source, got %S" v))
  | "por" -> (
      match v with
      | "on" -> Ok (Some { eng with por = Some true })
      | "off" -> Ok (Some { eng with por = Some false })
      | _ -> Error (Printf.sprintf "por expects on|off, got %S" v))
  | "keys" -> (
      match v with
      | "fp" -> Ok (Some { eng with exact_keys = Some false })
      | "exact" -> Ok (Some { eng with exact_keys = Some true })
      | _ -> Error (Printf.sprintf "keys expects fp|exact, got %S" v))
  | "jobs" -> map (fun n -> Some { eng with jobs = n }) (pos_int ~key v)
  | "batch" -> map (fun n -> Some { eng with batch = n }) (pos_int ~key v)
  | "bitstate" -> (
      match v with
      | "off" -> Ok (Some { eng with bitstate_bits = None })
      | _ ->
          map
            (fun n -> Some { eng with bitstate_bits = Some n })
            (pos_int ~key:"bitstate" v))
  | "timeout" -> (
      match float_of_string_opt v with
      | Some f when f > 0. && Float.is_finite f ->
          Ok (Some { eng with timeout = Some f })
      | _ -> Error (Printf.sprintf "timeout expects positive seconds, got %S" v)
      )
  | "max-configs" ->
      map (fun n -> Some { eng with max_configs = Some n }) (pos_int ~key v)
  | "max-runs" ->
      map (fun n -> Some { eng with max_runs = Some n }) (pos_int ~key v)
  | _ -> Ok None

let ident_ok s =
  s <> ""
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> true | _ -> false)
       s

let parse_check toks =
  let rec go cmd params restrict eng = function
    | [] -> (
        match cmd with
        | None -> Error "check expects a command name"
        | Some cmd ->
            Ok
              (Check
                 {
                   cmd;
                   params = List.sort (fun (a, _) (b, _) -> compare a b) params;
                   restrict;
                   engine = eng;
                 }))
    | Word w :: rest -> (
        match cmd with
        | None when ident_ok w -> go (Some w) params restrict eng rest
        | None -> Error (Printf.sprintf "invalid command name %S" w)
        | Some _ ->
            Error
              (Printf.sprintf "unexpected bare word %S (expected key=value)" w))
    | Pair (k, v) :: rest -> (
        if cmd = None then
          Error (Printf.sprintf "check expects a command name before %s=..." k)
        else if not (ident_ok k) then
          Error (Printf.sprintf "invalid key %S" k)
        else if
          List.mem_assoc k params
          || (k = "restrict" && restrict <> None)
        then Error (Printf.sprintf "duplicate key %s" k)
        else if k = "restrict" then
          match Parser.parse_formula v with
          | Ok f -> go cmd params (Some f) eng rest
          | Error e -> Error (Printf.sprintf "restrict: %s" e)
        else
          match parse_engine_key eng k v with
          | Error e -> Error e
          | Ok (Some eng) -> go cmd params restrict eng rest
          | Ok None -> go cmd ((k, v) :: params) restrict eng rest)
  in
  go None [] None default_engine toks

let parse line =
  match tokenize line with
  | Error e -> Error e
  | Ok [] -> Error "empty request"
  | Ok (Word "ping" :: rest) ->
      if rest = [] then Ok Ping else Error "ping takes no arguments"
  | Ok (Word "stats" :: rest) ->
      if rest = [] then Ok Stats else Error "stats takes no arguments"
  | Ok (Word "check" :: rest) -> parse_check rest
  | Ok (Word w :: _) ->
      Error (Printf.sprintf "unknown verb %S (expected ping, stats or check)" w)
  | Ok (Pair (k, _) :: _) ->
      Error (Printf.sprintf "request must start with a verb, not %s=..." k)

(* --- canonical rendering -------------------------------------------- *)

let needs_quoting v =
  v = ""
  || String.exists
       (fun c -> is_space c || c = '"' || c = '\\' || c = '=')
       v

let render_value v =
  if not (needs_quoting v) then v
  else begin
    let b = Buffer.create (String.length v + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        if c = '"' || c = '\\' then Buffer.add_char b '\\';
        Buffer.add_char b c)
      v;
    Buffer.add_char b '"';
    Buffer.contents b
  end

let engine_pairs eng =
  let d = default_engine in
  let p = ref [] in
  let add k v = p := (k, v) :: !p in
  (match eng.max_runs with Some n -> add "max-runs" (string_of_int n) | None -> ());
  (match eng.max_configs with
  | Some n -> add "max-configs" (string_of_int n)
  | None -> ());
  (match eng.timeout with
  | Some f -> add "timeout" (Printf.sprintf "%g" f)
  | None -> ());
  (match eng.bitstate_bits with
  | Some n -> add "bitstate" (string_of_int n)
  | None -> ());
  if eng.batch <> d.batch then add "batch" (string_of_int eng.batch);
  if eng.jobs <> d.jobs then add "jobs" (string_of_int eng.jobs);
  (match eng.exact_keys with
  | Some true -> add "keys" "exact"
  | Some false -> add "keys" "fp"
  | None -> ());
  (match eng.por with
  | Some true -> add "por" "on"
  | Some false -> add "por" "off"
  | None -> ());
  (match eng.reduction with
  | Some r -> add "reduction" (reduction_to_string r)
  | None -> ());
  !p

let to_line = function
  | Ping -> "ping"
  | Stats -> "stats"
  | Check c ->
      let params = List.sort (fun (a, _) (b, _) -> compare a b) c.params in
      let restrict =
        match c.restrict with
        | Some f -> [ ("restrict", Format.asprintf "%a" Gem_logic.Formula.pp f) ]
        | None -> []
      in
      let pairs = params @ restrict @ engine_pairs c.engine in
      String.concat " "
        ("check" :: c.cmd
        :: List.map (fun (k, v) -> Printf.sprintf "%s=%s" k (render_value v)) pairs)
