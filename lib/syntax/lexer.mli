(** Tokenizer for the GEM concrete syntax (see {!Parser} for the grammar).

    Identifiers are [[A-Za-z_][A-Za-z0-9_'-]*] (dashes allowed inside, as
    in the paper's restriction names; a dash is part of an identifier only
    when followed by another identifier character, so [a->b] lexes as
    [a], [->], [b]). Comments run from [--] to end of line. String
    literals use double quotes with [\\] escapes. *)

type token =
  | IDENT of string
  | INT of int
  | STRING of string
  (* formula tokens *)
  | ALL
  | EX
  | TRUE
  | FALSE
  | NOT  (** [~] *)
  | AND  (** [/\ ] *)
  | OR  (** [\/ ] *)
  | IMPLIES  (** [->] *)
  | IFF  (** [<->] *)
  | HENCEFORTH  (** [[]] *)
  | EVENTUALLY  (** [<>] *)
  | ENABLES  (** [|>] *)
  | ELEM_LT  (** [=>el] *)
  | TEMP_LT  (** [=>] *)
  | EQ  (** [=] *)
  | NE  (** [!=] *)
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | BANG  (** [!] — [EX!], [x !~pi~ y] *)
  | AT  (** [at] *)
  | OCCURRED
  | NEW
  | POTENTIAL
  | INDEX
  | ELEM
  | IN
  | STAR
  | QUESTION
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COMMA
  | COLON
  | SEMI
  | DOT
  | BAR
  | COLONCOLON
  (* specification keywords *)
  | KW_ELEMENT
  | KW_TYPE
  | KW_EVENTS
  | KW_RESTRICTIONS
  | KW_RESTRICTION
  | KW_END
  | KW_GROUP
  | KW_PORTS
  | KW_THREAD
  | KW_SPECIFICATION
  | EOF

type error = { pos : int; message : string }

val tokenize : string -> (token list, error) result
(** The token list always ends with [EOF]. *)

val pp_token : Format.formatter -> token -> unit
