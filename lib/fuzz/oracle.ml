(* The differential oracle over the engine-configuration lattice. *)

module Csp = Gem_lang.Csp
module Monitor = Gem_lang.Monitor
module Ada = Gem_lang.Ada
module Explore = Gem_lang.Explore
module Budget = Gem_check.Budget
module Bitstate = Gem_check.Bitstate
module Check = Gem_check.Check

type cell = {
  por : bool;
  jobs : int;
  exact : bool;
  bitstate : bool;
  batch : int;
  source : bool;
}

let baseline =
  { por = true; jobs = 1; exact = true; bitstate = false; batch = 1; source = false }

(* The core 24-cell grid runs with batch 1 (per-task chunks, the
   degenerate scheduler the engine grew out of); the two appended cells
   exercise the batched scheduler proper at its default chunk size, in
   both search modes, so every fuzz run differentially tests the chunked
   deques, per-shard probe batching and domain-local caches against the
   sequential baseline. *)
let lattice =
  (baseline
  :: List.filter
       (fun c -> c <> baseline)
       (List.concat_map
          (fun por ->
            List.concat_map
              (fun jobs ->
                List.concat_map
                  (fun exact ->
                    List.map
                      (fun bitstate ->
                        { por; jobs; exact; bitstate; batch = 1; source = false })
                      [ false; true ])
                  [ true; false ])
              [ 1; 2; 8 ])
          [ true; false ]))
  @ [
      {
        por = false;
        jobs = 8;
        exact = false;
        bitstate = false;
        batch = 64;
        source = false;
      };
      {
        por = true;
        jobs = 8;
        exact = false;
        bitstate = false;
        batch = 64;
        source = false;
      };
      (* Source-DPOR cells: one sequential, one riding the parallel and
         batch flags (the engine deliberately ignores them and runs
         sequentially — the cell checks those knobs cannot corrupt it). *)
      {
        por = true;
        jobs = 1;
        exact = false;
        bitstate = false;
        batch = 1;
        source = true;
      };
      {
        por = true;
        jobs = 8;
        exact = false;
        bitstate = false;
        batch = 64;
        source = true;
      };
    ]

let cell_name c =
  Printf.sprintf "reduction=%s jobs=%d keys=%s seen=%s batch=%d"
    (if c.source then "source" else if c.por then "sleep" else "none")
    c.jobs
    (if c.exact then "exact" else "fp")
    (if c.bitstate then "bitstate" else "unbounded")
    c.batch

type run = {
  r_completed : string list;  (* canonical fps, sorted: a multiset *)
  r_deadlocked : string list;
  r_exhausted : string option;
  r_verdicts : (string * bool) list;  (* per completed computation, sorted *)
  r_explored : int;
}

type disagreement = {
  d_cell : cell;
  d_kind : string;
  d_expected : string;
  d_actual : string;
}

let pp_disagreement ppf d =
  Format.fprintf ppf "[%s] %s: expected %s, got %s" (cell_name d.d_cell) d.d_kind
    d.d_expected d.d_actual

(* Bitstate tables are tiny (2^16 slots = 1 MiB) but ample for generated
   programs, so in practice the subset comparisons are equalities; the
   contract the oracle enforces is only the subset. *)
let resilience_of c =
  if c.bitstate then
    { Explore.no_resilience with Explore.bitstate = Some (Bitstate.create ~bits:16 ()) }
  else Explore.no_resilience

let explore_cell ~max_configs c prog =
  let resilience = resilience_of c in
  let reduction = if c.source then Some Explore.Source_sets else None in
  match prog with
  | Case.P_csp p ->
      let o =
        Csp.explore ?reduction ~por:c.por ~exact_keys:c.exact ~audit_keys:false ~max_configs
          ~jobs:c.jobs ~batch:c.batch ~resilience p
      in
      (o.Csp.computations, o.Csp.deadlocks, o.Csp.exhausted, o.Csp.explored)
  | Case.P_monitor p ->
      let o =
        Monitor.explore ?reduction ~por:c.por ~exact_keys:c.exact ~audit_keys:false
          ~max_configs ~jobs:c.jobs ~batch:c.batch ~resilience p
      in
      (o.Monitor.computations, o.Monitor.deadlocks, o.Monitor.exhausted, o.Monitor.explored)
  | Case.P_ada p ->
      let o =
        Ada.explore ?reduction ~por:c.por ~exact_keys:c.exact ~audit_keys:false ~max_configs
          ~jobs:c.jobs ~batch:c.batch ~resilience p
      in
      (o.Ada.computations, o.Ada.deadlocks, o.Ada.exhausted, o.Ada.explored)

let language_spec = function
  | Case.P_csp p -> Csp.language_spec p
  | Case.P_monitor p -> Monitor.language_spec p
  | Case.P_ada p -> Ada.language_spec p

let fps comps = List.sort compare (List.map Explore.fingerprint comps)

let run_cell ~max_configs ~spec ~formula c prog =
  let comps, deads, exhausted, explored = explore_cell ~max_configs c prog in
  let verdicts =
    match (formula, spec) with
    | Some f, Some spec ->
        List.sort compare
          (List.map (fun comp -> (Explore.fingerprint comp, Check.holds spec comp f)) comps)
    | _ -> []
  in
  {
    r_completed = fps comps;
    r_deadlocked = fps deads;
    r_exhausted = Option.map Budget.reason_keyword exhausted;
    r_verdicts = verdicts;
    r_explored = explored;
  }

let show_multiset fps = Printf.sprintf "{%d: %s}" (List.length fps) (String.concat "," (List.map (fun f -> String.sub f 0 (min 12 (String.length f))) fps))

let show_exhausted = function None -> "none" | Some r -> r

let show_verdicts vs =
  Printf.sprintf "{%s}"
    (String.concat ","
       (List.map
          (fun (f, b) ->
            Printf.sprintf "%s=%b" (String.sub f 0 (min 12 (String.length f))) b)
          vs))

let subset xs ys = List.for_all (fun x -> List.mem x ys) xs

let compare_runs ~base c r : disagreement option =
  let fail kind expected actual =
    Some { d_cell = c; d_kind = kind; d_expected = expected; d_actual = actual }
  in
  if not c.bitstate then
    if r.r_completed <> base.r_completed then
      fail "completed" (show_multiset base.r_completed) (show_multiset r.r_completed)
    else if r.r_deadlocked <> base.r_deadlocked then
      fail "deadlocks" (show_multiset base.r_deadlocked) (show_multiset r.r_deadlocked)
    else if r.r_exhausted <> base.r_exhausted then
      fail "exhausted" (show_exhausted base.r_exhausted) (show_exhausted r.r_exhausted)
    else if r.r_verdicts <> base.r_verdicts then
      fail "verdicts" (show_verdicts base.r_verdicts) (show_verdicts r.r_verdicts)
    else None
  else
    (* Lossy mode: a clean sweep is unconditionally downgraded, and
       whatever it did find must be a subset of the clean baseline. *)
    let setify l = List.sort_uniq compare l in
    if r.r_exhausted <> Some "bitstate-collision-risk" then
      fail "exhausted" "bitstate-collision-risk" (show_exhausted r.r_exhausted)
    else if not (subset (setify r.r_completed) (setify base.r_completed)) then
      fail "completed-subset" (show_multiset base.r_completed) (show_multiset r.r_completed)
    else if not (subset (setify r.r_deadlocked) (setify base.r_deadlocked)) then
      fail "deadlocks-subset" (show_multiset base.r_deadlocked)
        (show_multiset r.r_deadlocked)
    else if not (subset (setify r.r_verdicts) (setify base.r_verdicts)) then
      fail "verdicts-subset" (show_verdicts base.r_verdicts) (show_verdicts r.r_verdicts)
    else None

let check ?(max_configs = 1_000_000) ?formula prog =
  let spec =
    match formula with None -> None | Some _ -> Some (language_spec prog)
  in
  let guarded c f =
    try Ok (f ()) with
    | e ->
        Error
          {
            d_cell = c;
            d_kind = "exception";
            d_expected = "a verdict";
            d_actual = Printexc.to_string e;
          }
  in
  match guarded baseline (fun () -> run_cell ~max_configs ~spec ~formula baseline prog) with
  | Error d -> Error d
  | Ok base when base.r_exhausted <> None -> Ok 0
  | Ok base ->
      let rec go explored = function
        | [] -> Ok explored
        | c :: rest -> (
            match guarded c (fun () -> run_cell ~max_configs ~spec ~formula c prog) with
            | Error d -> Error d
            | Ok r -> (
                match compare_runs ~base c r with
                | Some d -> Error d
                | None -> go (explored + r.r_explored) rest))
      in
      go base.r_explored (List.tl lattice)

let skeys prog c =
  let comps, deads, _, _ = explore_cell ~max_configs:1_000_000 c prog in
  (fps comps, fps deads)
