(** The parameterized workload matrix: every [lib/problems] family swept
    over a parameter grid, one BENCH-schema JSON row per cell — so
    fuzzing, benchmarking, and the CLI's verification subcommands share
    one harness ([gemcheck matrix]).

    Statuses use the standard verdict keywords ([verified] | [falsified]
    | [inconclusive]) plus [skipped] for cells an overall time budget cut
    before they started. *)

type cell = { family : string; params : (string * int) list }

type row = {
  r_cell : cell;
  r_status : string;
  r_reason : string option;  (** Budget reason keyword when inconclusive. *)
  r_computations : int;
  r_deadlocks : int;
  r_explored : int;
  r_reduced : int;
  r_wall : float option;  (** [None] under [~timings:false]. *)
}

val families : (string * string) list
(** Name and one-line description of each workload family. *)

val family_names : string list

val cells : ?scale:[ `Small | `Wide ] -> string list -> cell list
(** The grid for the named families (all families when the list is
    empty), in deterministic order. [`Wide] (default [`Small]) adds the
    larger instances PR 6's capacity work targets, plus the
    readers=3 Readers/Writers instance promoted to BENCH_dpor.json by
    the source-DPOR work. *)

val cell_name : cell -> string

val run_cell :
  ?jobs:int -> ?max_configs:int -> ?timeout:float -> ?timings:bool -> cell -> row
(** Explore + verify one cell. [timings] (default true) records wall
    seconds; switch it off for byte-deterministic output. Never raises on
    exhaustion — budget cuts surface as [inconclusive] rows. *)

val skipped : cell -> row

val row_json : row -> string

val report_json : row list -> string
(** [{"schema_version":1,"command":"matrix","rows":[...]}] — same schema
    family as the bench reports (BENCH_*.json). *)
