(* Greedy structural shrinking. Every candidate is a well-formed program:
   processes/monitors/entries/tasks are only dropped when nothing left
   names them, so a shrunk reproducer runs under the same interpreters as
   the original. *)

module Csp = Gem_lang.Csp
module Monitor = Gem_lang.Monitor
module Ada = Gem_lang.Ada
module E = Gem_lang.Expr

(* ---- Expressions: shrink integer constants toward zero, offer the
   operands of arithmetic nodes (type-preserving for guards: comparisons
   and connectives only recurse). ---- *)

let rec expr_shrinks (e : E.t) : E.t list =
  let unary wrap a = List.map (fun a' -> wrap a') (expr_shrinks a) in
  let binary wrap a b =
    List.map (fun a' -> wrap a' b) (expr_shrinks a)
    @ List.map (fun b' -> wrap a b') (expr_shrinks b)
  in
  match e with
  | E.Int k when k <> 0 ->
      E.Int 0 :: (if abs k > 1 then [ E.Int (k / 2) ] else [])
  | E.Int _ | E.Bool _ | E.Str _ | E.Var _ | E.Nil -> []
  | E.Add (a, b) -> (a :: b :: binary (fun a b -> E.Add (a, b)) a b)
  | E.Sub (a, b) -> (a :: b :: binary (fun a b -> E.Sub (a, b)) a b)
  | E.Mul (a, b) -> (a :: b :: binary (fun a b -> E.Mul (a, b)) a b)
  | E.Div (a, b) -> binary (fun a b -> E.Div (a, b)) a b
  | E.Mod (a, b) -> binary (fun a b -> E.Mod (a, b)) a b
  | E.Eq (a, b) -> binary (fun a b -> E.Eq (a, b)) a b
  | E.Ne (a, b) -> binary (fun a b -> E.Ne (a, b)) a b
  | E.Lt (a, b) -> binary (fun a b -> E.Lt (a, b)) a b
  | E.Le (a, b) -> binary (fun a b -> E.Le (a, b)) a b
  | E.Gt (a, b) -> binary (fun a b -> E.Gt (a, b)) a b
  | E.Ge (a, b) -> binary (fun a b -> E.Ge (a, b)) a b
  | E.And (a, b) -> (a :: b :: binary (fun a b -> E.And (a, b)) a b)
  | E.Or (a, b) -> (a :: b :: binary (fun a b -> E.Or (a, b)) a b)
  | E.Not a -> unary (fun a -> E.Not a) a
  | E.Neg a -> unary (fun a -> E.Neg a) a
  | E.Queue_non_empty _ | E.Queue_length _ -> []
  | E.Append (a, b) -> (a :: binary (fun a b -> E.Append (a, b)) a b)
  | E.Head a -> unary (fun a -> E.Head a) a
  | E.Tail a -> unary (fun a -> E.Tail a) a
  | E.Len a -> unary (fun a -> E.Len a) a

(* One-step simplifications of a statement list: drop an element, splice
   a compound statement down to one of its bodies, or simplify an
   element in place — in that (most-aggressive-first) order. *)
let rec list_shrinks ~splice ~elt = function
  | [] -> []
  | s :: rest ->
      (rest :: List.map (fun sp -> sp @ rest) (splice s))
      @ List.map (fun s' -> s' :: rest) (elt s)
      @ List.map (fun rest' -> s :: rest') (list_shrinks ~splice ~elt rest)

(* ---- CSP ---- *)

let rec csp_splice = function
  | Csp.CIfb (_, a, b) -> [ a; b ]
  | Csp.CWhile (_, body) -> [ body ]
  | Csp.CIf gs | Csp.CDo gs -> List.map (fun (g : Csp.guarded) -> g.Csp.body) gs
  | Csp.CLocal _ | Csp.CMark _ | Csp.CComm _ -> []

and csp_stmt_shrinks (s : Csp.stmt) : Csp.stmt list =
  match s with
  | Csp.CLocal (x, e) -> List.map (fun e' -> Csp.CLocal (x, e')) (expr_shrinks e)
  | Csp.CMark _ -> []
  | Csp.CComm (Csp.Send { to_; value }) ->
      List.map (fun v -> Csp.CComm (Csp.Send { to_; value = v })) (expr_shrinks value)
  | Csp.CComm (Csp.Recv _) -> []
  | Csp.CIfb (g, a, b) ->
      List.map (fun g' -> Csp.CIfb (g', a, b)) (expr_shrinks g)
      @ List.map (fun a' -> Csp.CIfb (g, a', b)) (csp_stmts_shrinks a)
      @ List.map (fun b' -> Csp.CIfb (g, a, b')) (csp_stmts_shrinks b)
  | Csp.CWhile (g, body) ->
      List.map (fun g' -> Csp.CWhile (g', body)) (expr_shrinks g)
      @ List.map (fun body' -> Csp.CWhile (g, body')) (csp_stmts_shrinks body)
  | Csp.CIf gs ->
      if List.length gs > 1 then
        List.mapi (fun i _ -> Csp.CIf (List.filteri (fun j _ -> j <> i) gs)) gs
      else []
  | Csp.CDo gs ->
      if List.length gs > 1 then
        List.mapi (fun i _ -> Csp.CDo (List.filteri (fun j _ -> j <> i) gs)) gs
      else []

and csp_stmts_shrinks ss = list_shrinks ~splice:csp_splice ~elt:csp_stmt_shrinks ss

let rec csp_refs acc = function
  | Csp.CComm (Csp.Send { to_; _ }) -> to_ :: acc
  | Csp.CComm (Csp.Recv { from_; _ }) -> from_ :: acc
  | Csp.CIfb (_, a, b) -> List.fold_left csp_refs (List.fold_left csp_refs acc a) b
  | Csp.CWhile (_, body) -> List.fold_left csp_refs acc body
  | Csp.CIf gs | Csp.CDo gs ->
      List.fold_left
        (fun acc (g : Csp.guarded) ->
          let acc =
            match g.Csp.comm with
            | Some (Csp.Send { to_; _ }) -> to_ :: acc
            | Some (Csp.Recv { from_; _ }) -> from_ :: acc
            | None -> acc
          in
          List.fold_left csp_refs acc g.Csp.body)
        acc gs
  | Csp.CLocal _ | Csp.CMark _ -> acc

let csp_candidates (prog : Csp.program) : Csp.program list =
  let drops =
    if List.length prog <= 1 then []
    else
      List.filteri
        (fun _ _ -> true)
        (List.mapi
           (fun i (p : Csp.process) ->
             let rest = List.filteri (fun j _ -> j <> i) prog in
             let referenced =
               List.exists
                 (fun (q : Csp.process) ->
                   List.mem p.Csp.proc_name (List.fold_left csp_refs [] q.Csp.code))
                 rest
             in
             if referenced then None else Some rest)
           prog)
      |> List.filter_map Fun.id
  in
  let code_shrinks =
    List.concat
      (List.mapi
         (fun i (p : Csp.process) ->
           List.map
             (fun code' ->
               List.mapi
                 (fun j (q : Csp.process) ->
                   if i = j then { q with Csp.code = code' } else q)
                 prog)
             (csp_stmts_shrinks p.Csp.code))
         prog)
  in
  drops @ code_shrinks

(* ---- Monitor ---- *)

let rec mstmt_splice = function
  | Monitor.MIf (_, a, b) -> [ a; b ]
  | Monitor.MWhile (_, body) -> [ body ]
  | _ -> []

and mstmt_shrinks (s : Monitor.mstmt) : Monitor.mstmt list =
  match s with
  | Monitor.MAssign { var; value; site } ->
      List.map (fun v -> Monitor.MAssign { var; value = v; site }) (expr_shrinks value)
  | Monitor.MIf (g, a, b) ->
      List.map (fun g' -> Monitor.MIf (g', a, b)) (expr_shrinks g)
      @ List.map (fun a' -> Monitor.MIf (g, a', b)) (mstmts_shrinks a)
      @ List.map (fun b' -> Monitor.MIf (g, a, b')) (mstmts_shrinks b)
  | Monitor.MWhile (g, body) ->
      List.map (fun g' -> Monitor.MWhile (g', body)) (expr_shrinks g)
      @ List.map (fun body' -> Monitor.MWhile (g, body')) (mstmts_shrinks body)
  | Monitor.MReturn e -> List.map (fun e' -> Monitor.MReturn e') (expr_shrinks e)
  | Monitor.MWait _ | Monitor.MSignal _ | Monitor.MSkip -> []

and mstmts_shrinks ss = list_shrinks ~splice:mstmt_splice ~elt:mstmt_shrinks ss

let rec pstmt_splice = function
  | Monitor.PIf (_, a, b) -> [ a; b ]
  | Monitor.PWhile (_, body) -> [ body ]
  | _ -> []

and pstmt_shrinks (s : Monitor.pstmt) : Monitor.pstmt list =
  match s with
  | Monitor.PLocal (x, e) -> List.map (fun e' -> Monitor.PLocal (x, e')) (expr_shrinks e)
  | Monitor.PIf (g, a, b) ->
      List.map (fun g' -> Monitor.PIf (g', a, b)) (expr_shrinks g)
      @ List.map (fun a' -> Monitor.PIf (g, a', b)) (pstmts_shrinks a)
      @ List.map (fun b' -> Monitor.PIf (g, a, b')) (pstmts_shrinks b)
  | Monitor.PWhile (g, body) ->
      List.map (fun g' -> Monitor.PWhile (g', body)) (expr_shrinks g)
      @ List.map (fun body' -> Monitor.PWhile (g, body')) (pstmts_shrinks body)
  | Monitor.PCall { monitor; entry; args; bind } ->
      List.concat
        (List.mapi
           (fun i a ->
             List.map
               (fun a' ->
                 Monitor.PCall
                   {
                     monitor;
                     entry;
                     args = List.mapi (fun j x -> if i = j then a' else x) args;
                     bind;
                   })
               (expr_shrinks a))
           args)
  | Monitor.PWrite { var; value } ->
      List.map (fun v -> Monitor.PWrite { var; value = v }) (expr_shrinks value)
  | Monitor.PRead _ | Monitor.PMark _ -> []

and pstmts_shrinks ss = list_shrinks ~splice:pstmt_splice ~elt:pstmt_shrinks ss

let monitor_calls (prog : Monitor.program) =
  let rec go acc = function
    | Monitor.PCall { monitor; entry; _ } -> (monitor, entry) :: acc
    | Monitor.PIf (_, a, b) -> List.fold_left go (List.fold_left go acc a) b
    | Monitor.PWhile (_, body) -> List.fold_left go acc body
    | _ -> acc
  in
  List.concat_map
    (fun (p : Monitor.process) -> List.fold_left go [] p.Monitor.code)
    prog.Monitor.processes

let monitor_candidates (prog : Monitor.program) : Monitor.program list =
  let calls = monitor_calls prog in
  let drop_process =
    if List.length prog.Monitor.processes <= 1 then []
    else
      List.mapi
        (fun i _ ->
          {
            prog with
            Monitor.processes =
              List.filteri (fun j _ -> j <> i) prog.Monitor.processes;
          })
        prog.Monitor.processes
  in
  let drop_monitor =
    List.filteri (fun _ _ -> true) prog.Monitor.monitors
    |> List.mapi (fun i (m : Monitor.monitor) ->
           if List.exists (fun (mn, _) -> String.equal mn m.Monitor.mon_name) calls
           then None
           else
             Some
               {
                 prog with
                 Monitor.monitors = List.filteri (fun j _ -> j <> i) prog.Monitor.monitors;
               })
    |> List.filter_map Fun.id
  in
  let drop_entry =
    List.concat
      (List.mapi
         (fun i (m : Monitor.monitor) ->
           List.filter_map Fun.id
             (List.mapi
                (fun k (e : Monitor.entry) ->
                  if
                    List.exists
                      (fun (mn, en) ->
                        String.equal mn m.Monitor.mon_name
                        && String.equal en e.Monitor.entry_name)
                      calls
                    || List.length m.Monitor.entries <= 1
                  then None
                  else
                    Some
                      {
                        prog with
                        Monitor.monitors =
                          List.mapi
                            (fun j (m' : Monitor.monitor) ->
                              if i = j then
                                {
                                  m' with
                                  Monitor.entries =
                                    List.filteri (fun l _ -> l <> k) m'.Monitor.entries;
                                }
                              else m')
                            prog.Monitor.monitors;
                      })
                m.Monitor.entries))
         prog.Monitor.monitors)
  in
  let entry_body_shrinks =
    List.concat
      (List.mapi
         (fun i (m : Monitor.monitor) ->
           List.concat
             (List.mapi
                (fun k (e : Monitor.entry) ->
                  List.map
                    (fun body' ->
                      {
                        prog with
                        Monitor.monitors =
                          List.mapi
                            (fun j (m' : Monitor.monitor) ->
                              if i = j then
                                {
                                  m' with
                                  Monitor.entries =
                                    List.mapi
                                      (fun l (e' : Monitor.entry) ->
                                        if k = l then { e' with Monitor.body = body' }
                                        else e')
                                      m'.Monitor.entries;
                                }
                              else m')
                            prog.Monitor.monitors;
                      })
                    (mstmts_shrinks e.Monitor.body))
                m.Monitor.entries))
         prog.Monitor.monitors)
  in
  let code_shrinks =
    List.concat
      (List.mapi
         (fun i (p : Monitor.process) ->
           List.map
             (fun code' ->
               {
                 prog with
                 Monitor.processes =
                   List.mapi
                     (fun j (q : Monitor.process) ->
                       if i = j then { q with Monitor.code = code' } else q)
                     prog.Monitor.processes;
               })
             (pstmts_shrinks p.Monitor.code))
         prog.Monitor.processes)
  in
  drop_process @ drop_monitor @ drop_entry @ code_shrinks @ entry_body_shrinks

(* ---- ADA ---- *)

let rec astmt_splice = function
  | Ada.AIf (_, a, b) -> [ a; b ]
  | Ada.AWhile (_, body) -> [ body ]
  (* Splicing an accept body inline discards the rendezvous — only legal
     when the body doesn't use the accept's formals. *)
  | Ada.AAccept a when a.Ada.acc_formals = [] -> [ a.Ada.acc_body ]
  | Ada.ASelect bs -> List.map (fun (b : Ada.branch) -> [ Ada.AAccept b.Ada.accept ]) bs
  | _ -> []

and accept_shrinks (a : Ada.accept) : Ada.accept list =
  List.map (fun body' -> { a with Ada.acc_body = body' }) (astmts_shrinks a.Ada.acc_body)
  @ (match a.Ada.acc_result with
    | None -> []
    | Some e ->
        { a with Ada.acc_result = None }
        :: List.map (fun e' -> { a with Ada.acc_result = Some e' }) (expr_shrinks e))

and astmt_shrinks (s : Ada.stmt) : Ada.stmt list =
  match s with
  | Ada.ALocal (x, e) -> List.map (fun e' -> Ada.ALocal (x, e')) (expr_shrinks e)
  | Ada.AIf (g, a, b) ->
      List.map (fun g' -> Ada.AIf (g', a, b)) (expr_shrinks g)
      @ List.map (fun a' -> Ada.AIf (g, a', b)) (astmts_shrinks a)
      @ List.map (fun b' -> Ada.AIf (g, a, b')) (astmts_shrinks b)
  | Ada.AWhile (g, body) ->
      List.map (fun g' -> Ada.AWhile (g', body)) (expr_shrinks g)
      @ List.map (fun body' -> Ada.AWhile (g, body')) (astmts_shrinks body)
  | Ada.ACall { task; entry; args; bind } ->
      List.concat
        (List.mapi
           (fun i a ->
             List.map
               (fun a' ->
                 Ada.ACall
                   {
                     task;
                     entry;
                     args = List.mapi (fun j x -> if i = j then a' else x) args;
                     bind;
                   })
               (expr_shrinks a))
           args)
  | Ada.AAccept a -> List.map (fun a' -> Ada.AAccept a') (accept_shrinks a)
  | Ada.ASelect bs ->
      (if List.length bs > 1 then
         List.mapi (fun i _ -> Ada.ASelect (List.filteri (fun j _ -> j <> i) bs)) bs
       else [])
      @ List.concat
          (List.mapi
             (fun i (b : Ada.branch) ->
               List.map
                 (fun acc' ->
                   Ada.ASelect
                     (List.mapi
                        (fun j (b' : Ada.branch) ->
                          if i = j then { b' with Ada.accept = acc' } else b')
                        bs))
                 (accept_shrinks b.Ada.accept))
             bs)
  | Ada.AMark _ -> []

and astmts_shrinks ss = list_shrinks ~splice:astmt_splice ~elt:astmt_shrinks ss

let rec ada_refs acc = function
  | Ada.ACall { task; _ } -> task :: acc
  | Ada.AIf (_, a, b) -> List.fold_left ada_refs (List.fold_left ada_refs acc a) b
  | Ada.AWhile (_, body) -> List.fold_left ada_refs acc body
  | Ada.AAccept a -> List.fold_left ada_refs acc a.Ada.acc_body
  | Ada.ASelect bs ->
      List.fold_left
        (fun acc (b : Ada.branch) -> List.fold_left ada_refs acc b.Ada.accept.Ada.acc_body)
        acc bs
  | Ada.ALocal _ | Ada.AMark _ -> acc

let ada_candidates (prog : Ada.program) : Ada.program list =
  let drops =
    if List.length prog <= 1 then []
    else
      List.mapi
        (fun i (t : Ada.task) ->
          let rest = List.filteri (fun j _ -> j <> i) prog in
          let referenced =
            List.exists
              (fun (u : Ada.task) ->
                List.mem t.Ada.task_name (List.fold_left ada_refs [] u.Ada.code))
              rest
          in
          if referenced then None else Some rest)
        prog
      |> List.filter_map Fun.id
  in
  let code_shrinks =
    List.concat
      (List.mapi
         (fun i (t : Ada.task) ->
           List.map
             (fun code' ->
               List.mapi
                 (fun j (u : Ada.task) ->
                   if i = j then { u with Ada.code = code' } else u)
                 prog)
             (astmts_shrinks t.Ada.code))
         prog)
  in
  drops @ code_shrinks

let candidates = function
  | Case.P_csp p -> List.map (fun p' -> Case.P_csp p') (csp_candidates p)
  | Case.P_monitor p -> List.map (fun p' -> Case.P_monitor p') (monitor_candidates p)
  | Case.P_ada p -> List.map (fun p' -> Case.P_ada p') (ada_candidates p)

let minimize ?(max_steps = 1000) still_fails prog =
  let rec go prog steps =
    if steps >= max_steps then (prog, steps)
    else
      match List.find_opt still_fails (candidates prog) with
      | Some c -> go c (steps + 1)
      | None -> (prog, steps)
  in
  go prog 0

let csp_qshrink p yield = List.iter yield (csp_candidates p)

let monitor_qshrink p yield = List.iter yield (monitor_candidates p)

let ada_qshrink p yield = List.iter yield (ada_candidates p)
