(** A fuzz case: one program in any of the three embedded languages,
    under a stable name. The fuzzer generates cases ({!Gen}), runs them
    across the engine-configuration lattice ({!Oracle}), minimizes
    disagreeing ones ({!Shrink}) and persists them ({!Corpus}). *)

type prog =
  | P_csp of Gem_lang.Csp.program
  | P_monitor of Gem_lang.Monitor.program
  | P_ada of Gem_lang.Ada.program

type t = { name : string; prog : prog }

val lang : prog -> string
(** ["csp"], ["monitor"] or ["ada"]. *)

val size : prog -> int
(** Statement count, the shrinker's progress measure. *)

val loop_free : prog -> bool
(** No [CWhile]/[CDo]/[MWhile]/[PWhile]/[AWhile] anywhere — the
    generators' termination guarantee (every case's exploration is
    finite). *)

val prog_to_string : prog -> string
(** Compact one-line rendering for failure reports. *)

val to_string : t -> string

val csp_to_string : Gem_lang.Csp.program -> string

val monitor_to_string : Gem_lang.Monitor.program -> string

val ada_to_string : Gem_lang.Ada.program -> string
