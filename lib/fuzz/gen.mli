(** Seeded random program and restriction generators for the three
    embedded languages — the library home of what used to be
    [test/gen_csp.ml], extended to Monitor and ADA.

    Every generator keeps the loop-free termination guarantee
    ({!Case.loop_free}): straight-line statements, shallow conditionals,
    point-to-point communication — so every generated program's
    exploration is finite (possibly ending in deadlock leaves, which the
    differential oracle compares too).

    Determinism: [instance]/[formula_for] derive their randomness from
    [Random.State.make [| seed; index |]], so a (seed, index) pair names
    the same case on every run, machine, and OCaml version shipping the
    same splitmix [Random]. *)

val csp_gen : Gem_lang.Csp.program QCheck.Gen.t

val monitor_gen : Gem_lang.Monitor.program QCheck.Gen.t

val ada_gen : Gem_lang.Ada.program QCheck.Gen.t

val csp_arb : Gem_lang.Csp.program QCheck.arbitrary
(** With printer and structural shrinker ({!Shrink.csp_qshrink}). *)

val monitor_arb : Gem_lang.Monitor.program QCheck.arbitrary

val ada_arb : Gem_lang.Ada.program QCheck.arbitrary

(** Back-compat aliases for the parity suites that grew around the CSP
    generator. *)

val prog_gen : Gem_lang.Csp.program QCheck.Gen.t

val prog_arb : Gem_lang.Csp.program QCheck.arbitrary

val prog_to_string : Gem_lang.Csp.program -> string

val instance : seed:int -> index:int -> Case.t
(** The [index]-th case of a fuzz run: language round-robins
    csp/monitor/ada, program drawn from that language's generator with
    the (seed, index)-derived state. *)

val formula_gen : Gem_logic.Formula.t QCheck.Gen.t
(** A random restriction over the marker events (class ["M"], parameter
    [p0]) every generator emits: existence, multiplicity, total-order and
    data-comparison shapes, occasionally under a temporal operator. Its
    per-computation verdict is part of the differential oracle's
    agreement check. *)

val formula_for : seed:int -> index:int -> Gem_logic.Formula.t
(** Deterministic companion of {!instance} (independent stream). *)
