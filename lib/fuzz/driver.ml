type failure = {
  f_index : int;
  f_case : Case.t;
  f_shrunk : Case.t;
  f_steps : int;
  f_disagreement : Oracle.disagreement;
  f_corpus_path : string option;
}

type outcome = {
  o_seed : int;
  o_iters : int;
  o_ran : int;
  o_cells : int;
  o_explored : int;
  o_elapsed : float;
  o_failure : failure option;
}

let progress_stride = 50

let run ?time_budget ?(max_configs = 1_000_000) ?corpus_dir ?(log = ignore) ~seed
    ~iters () =
  let started = Unix.gettimeofday () in
  let cells = List.length Oracle.lattice in
  let explored = ref 0 in
  let over_budget () =
    match time_budget with
    | None -> false
    | Some b -> Unix.gettimeofday () -. started >= b
  in
  let fail index (case : Case.t) formula d =
    (* Minimize while the oracle still disagrees — on anything: the
       shrunk program may fail differently (e.g. a different cell), which
       is just as good a reproducer. *)
    let still_fails prog =
      match Oracle.check ~max_configs ~formula prog with
      | Ok _ -> false
      | Error _ -> true
    in
    let shrunk_prog, steps = Shrink.minimize still_fails case.Case.prog in
    let shrunk = { Case.name = case.Case.name; prog = shrunk_prog } in
    let disagreement =
      match Oracle.check ~max_configs ~formula shrunk_prog with
      | Error d -> d
      | Ok _ -> d (* the predicate flapped (e.g. fault injection); keep the original *)
    in
    let corpus_path = Option.map (fun dir -> Corpus.save ~dir shrunk) corpus_dir in
    {
      f_index = index;
      f_case = case;
      f_shrunk = shrunk;
      f_steps = steps;
      f_disagreement = disagreement;
      f_corpus_path = corpus_path;
    }
  in
  let rec go i =
    if i >= iters || over_budget () then (i, None)
    else begin
      if i > 0 && i mod progress_stride = 0 then
        log (Printf.sprintf "fuzz: %d/%d instances agreed" i iters);
      let case = Gen.instance ~seed ~index:i in
      let formula = Gen.formula_for ~seed ~index:i in
      match Oracle.check ~max_configs ~formula case.Case.prog with
      | Ok n ->
          explored := !explored + n;
          go (i + 1)
      | Error d -> (i, Some (fail i case formula d))
    end
  in
  let ran, failure = go 0 in
  {
    o_seed = seed;
    o_iters = iters;
    o_ran = ran;
    o_cells = cells;
    o_explored = !explored;
    o_elapsed = Unix.gettimeofday () -. started;
    o_failure = failure;
  }
