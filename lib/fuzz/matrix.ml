(* The sweepable workload matrix over lib/problems. Each cell reuses the
   exact explore+refine pipeline of the corresponding gemcheck
   subcommand, so a matrix row certifies the same claim the CLI would. *)

module Monitor = Gem_lang.Monitor
module Csp = Gem_lang.Csp
module Ada = Gem_lang.Ada
module Budget = Gem_check.Budget
module Strategy = Gem_check.Strategy
module Verdict = Gem_check.Verdict
module Refine = Gem_check.Refine
module Check = Gem_check.Check
module Rw = Gem_problems.Readers_writers
module Buffer_problem = Gem_problems.Buffer
module Rwd = Gem_problems.Rw_distributed
module Db = Gem_problems.Db_update
module Life = Gem_problems.Life

type cell = { family : string; params : (string * int) list }

type row = {
  r_cell : cell;
  r_status : string;
  r_reason : string option;
  r_computations : int;
  r_deadlocks : int;
  r_explored : int;
  r_reduced : int;
  r_wall : float option;
}

let families =
  [
    ("rw", "paper Readers/Writers monitor vs reader's priority");
    ("buffer-monitor", "bounded buffer, Monitor solution");
    ("buffer-csp", "bounded buffer, CSP solution");
    ("buffer-ada", "bounded buffer, ADA solution");
    ("rwd-csp", "distributed Readers/Writers, CSP");
    ("rwd-ada", "distributed Readers/Writers, ADA");
    ("db", "distributed database update (Thomas write rule)");
    ("life", "asynchronous Game of Life vs synchronous reference");
  ]

let family_names = List.map fst families

let grid ~scale family =
  let wide = scale = `Wide in
  match family with
  | "rw" ->
      [ [ ("readers", 1); ("writers", 1) ]; [ ("readers", 2); ("writers", 1) ] ]
      @ (if wide then
           (* readers=3 is the promoted BENCH_dpor.json instance: plain
              DFS caps on it while both reduced engines complete. *)
           [ [ ("readers", 2); ("writers", 2) ]; [ ("readers", 3); ("writers", 1) ] ]
         else [])
  | "buffer-monitor" | "buffer-csp" | "buffer-ada" ->
      let base cap =
        [ ("capacity", cap); ("producers", 1); ("consumers", 1); ("items", 2) ]
      in
      [ base 1; base 2 ] @ (if wide then [ base 3 ] else [])
  | "rwd-csp" | "rwd-ada" ->
      [ [ ("readers", 1); ("writers", 1) ] ]
      @ (if wide then [ [ ("readers", 2); ("writers", 1) ] ] else [])
  | "db" -> [ [ ("sites", 2) ]; [ ("sites", 3) ] ] @ (if wide then [ [ ("sites", 4) ] ] else [])
  | "life" ->
      [
        [ ("width", 3); ("height", 3); ("generations", 2) ];
        [ ("width", 4); ("height", 4); ("generations", 2) ];
      ]
      @ (if wide then [ [ ("width", 5); ("height", 5); ("generations", 3) ] ] else [])
  | f -> invalid_arg ("unknown workload family " ^ f)

let cells ?(scale = `Small) names =
  let names = if names = [] then family_names else names in
  List.concat_map
    (fun family -> List.map (fun params -> { family; params }) (grid ~scale family))
    names

let cell_name c =
  Printf.sprintf "%s[%s]" c.family
    (String.concat ","
       (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) c.params))

let param c k =
  match List.assoc_opt k c.params with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "cell %s lacks parameter %s" c.family k)

(* Falsified wins even under a cut exploration; any other cut makes the
   row inconclusive (same rule as the CLI's combined_status). *)
let status_of ~exhausted ~deadlocks_falsify ~deadlocks verdicts =
  let overall = Verdict.overall verdicts in
  let falsified = overall = Verdict.Falsified || (deadlocks_falsify && deadlocks > 0) in
  if falsified then ("falsified", None)
  else
    match exhausted with
    | Some r -> ("inconclusive", Some (Budget.reason_keyword r))
    | None -> (
        match overall with
        | Verdict.Verified -> ("verified", None)
        | Verdict.Falsified -> ("falsified", None)
        | Verdict.Inconclusive r -> ("inconclusive", Some (Budget.reason_keyword r)))

let run_cell ?(jobs = 1) ?(max_configs = 2_000_000) ?timeout ?(timings = true) c =
  let started = Unix.gettimeofday () in
  let budget = Budget.make ?timeout () in
  let strategy = Strategy.of_budget budget in
  let finish ~status ~reason ~computations ~deadlocks ~explored ~reduced =
    {
      r_cell = c;
      r_status = status;
      r_reason = reason;
      r_computations = computations;
      r_deadlocks = deadlocks;
      r_explored = explored;
      r_reduced = reduced;
      r_wall = (if timings then Some (Unix.gettimeofday () -. started) else None);
    }
  in
  let refined ~deadlocks_falsify (comps, deads, explored, reduced, exhausted) ~problem
      ~map ~edges =
    let results = Refine.sat ~strategy ~budget ~jobs ?edges ~problem ~map comps in
    let verdicts = List.map snd results in
    let deadlocks = List.length deads in
    let status, reason = status_of ~exhausted ~deadlocks_falsify ~deadlocks verdicts in
    finish ~status ~reason ~computations:(List.length comps) ~deadlocks ~explored
      ~reduced
  in
  match c.family with
  | "rw" ->
      let readers = param c "readers" and writers = param c "writers" in
      let program = Rw.program ~monitor:Rw.paper_monitor ~readers ~writers in
      let o = Monitor.explore ~max_configs ~budget ~jobs program in
      let problem = Rw.spec Rw.Readers_priority ~users:(Rw.user_names ~readers ~writers) in
      refined ~deadlocks_falsify:false
        (o.Monitor.computations, o.Monitor.deadlocks, o.Monitor.explored,
         o.Monitor.reduced, o.Monitor.exhausted)
        ~problem ~map:Rw.correspondence ~edges:(Some Refine.Actor_paths)
  | "buffer-monitor" | "buffer-csp" | "buffer-ada" ->
      let capacity = param c "capacity"
      and producers = param c "producers"
      and consumers = param c "consumers"
      and items_each = param c "items" in
      let problem = Buffer_problem.spec ~capacity in
      let outcome, map =
        match c.family with
        | "buffer-monitor" ->
            let o =
              Monitor.explore ~max_configs ~budget ~jobs
                (Buffer_problem.monitor_solution ~capacity ~producers ~consumers
                   ~items_each)
            in
            ( (o.Monitor.computations, o.Monitor.deadlocks, o.Monitor.explored,
               o.Monitor.reduced, o.Monitor.exhausted),
              Buffer_problem.monitor_correspondence )
        | "buffer-csp" ->
            let o =
              Csp.explore ~max_configs ~budget ~jobs
                (Buffer_problem.csp_solution ~capacity ~producers ~consumers ~items_each)
            in
            ( (o.Csp.computations, o.Csp.deadlocks, o.Csp.explored, o.Csp.reduced,
               o.Csp.exhausted),
              Buffer_problem.csp_correspondence )
        | _ ->
            let o =
              Ada.explore ~max_configs ~budget ~jobs
                (Buffer_problem.ada_solution ~capacity ~producers ~consumers ~items_each)
            in
            ( (o.Ada.computations, o.Ada.deadlocks, o.Ada.explored, o.Ada.reduced,
               o.Ada.exhausted),
              Buffer_problem.ada_correspondence )
      in
      refined ~deadlocks_falsify:true outcome ~problem ~map ~edges:None
  | "rwd-csp" | "rwd-ada" ->
      let readers = param c "readers" and writers = param c "writers" in
      let rnames, wnames = Rwd.user_names ~readers ~writers in
      let problem = Rwd.spec ~readers:rnames ~writers:wnames in
      let outcome, map =
        if c.family = "rwd-csp" then (
          let o =
            Csp.explore ~max_configs ~budget ~jobs (Rwd.csp_program ~readers ~writers)
          in
          ( (o.Csp.computations, o.Csp.deadlocks, o.Csp.explored, o.Csp.reduced,
             o.Csp.exhausted),
            Rwd.csp_correspondence ))
        else
          let o =
            Ada.explore ~max_configs ~budget ~jobs (Rwd.ada_program ~readers ~writers)
          in
          ( (o.Ada.computations, o.Ada.deadlocks, o.Ada.explored, o.Ada.reduced,
             o.Ada.exhausted),
            Rwd.ada_correspondence )
      in
      refined ~deadlocks_falsify:true outcome ~problem ~map ~edges:None
  | "db" ->
      let sites = param c "sites" in
      let r = Db.check ~max_configs ~budget ~jobs ~sites () in
      let status, reason =
        if (not r.Db.converges) || r.Db.deadlocks > 0 then ("falsified", None)
        else
          match r.Db.exhausted with
          | Some reason -> ("inconclusive", Some (Budget.reason_keyword reason))
          | None -> ("verified", None)
      in
      finish ~status ~reason ~computations:r.Db.computations ~deadlocks:r.Db.deadlocks
        ~explored:r.Db.explored ~reduced:r.Db.reduced
  | "life" ->
      let width = param c "width"
      and height = param c "height"
      and generations = param c "generations" in
      let alive = [ (1, 0); (1, 1); (1, 2) ] in
      let comp = Life.build ~width ~height ~generations ~alive in
      let spec = Life.spec ~width ~height in
      let v =
        Check.check_formula ~budget spec comp ~name:"matches-reference"
          (Life.matches_reference ~width ~height ~generations ~alive)
      in
      let status, reason =
        match Verdict.status v with
        | Verdict.Verified -> ("verified", None)
        | Verdict.Falsified -> ("falsified", None)
        | Verdict.Inconclusive r -> ("inconclusive", Some (Budget.reason_keyword r))
      in
      finish ~status ~reason ~computations:1 ~deadlocks:0 ~explored:0 ~reduced:0
  | f -> invalid_arg ("unknown workload family " ^ f)

let skipped c =
  {
    r_cell = c;
    r_status = "skipped";
    r_reason = Some "deadline-exceeded";
    r_computations = 0;
    r_deadlocks = 0;
    r_explored = 0;
    r_reduced = 0;
    r_wall = None;
  }

let row_json r =
  let params =
    String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf {|"%s":%d|} k v) r.r_cell.params)
  in
  let timing =
    match r.r_wall with
    | None -> ""
    | Some w ->
        let rate = if w > 0. then float_of_int r.r_explored /. w else 0. in
        Printf.sprintf {|,"wall_s":%.6f,"configs_per_sec":%.1f|} w rate
  in
  Printf.sprintf
    {|{"family":"%s","params":{%s},"status":"%s","reason":%s,"computations":%d,"deadlocks":%d,"explored":%d,"reduced":%d%s}|}
    r.r_cell.family params r.r_status
    (match r.r_reason with None -> "null" | Some k -> Printf.sprintf "%S" k)
    r.r_computations r.r_deadlocks r.r_explored r.r_reduced timing

let report_json rows =
  Printf.sprintf {|{"schema_version":1,"command":"matrix","rows":[%s]}|}
    (String.concat "," (List.map row_json rows))
