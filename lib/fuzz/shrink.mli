(** Greedy structural shrinking for fuzz cases.

    [candidates p] enumerates one-step simplifications of a program, most
    aggressive first: drop a whole process/task/monitor (only when no
    remaining code names it, so candidates stay well-formed), drop a
    single statement or select branch, splice a conditional down to one
    of its arms, and shrink integer constants toward zero. [minimize]
    iterates greedily: as long as some candidate still satisfies the
    failure predicate, descend into it.

    The same candidate enumerations back the qcheck [~shrink] of the
    {!Gen} arbitraries, so property failures in the test suites minimize
    with the identical step set the fuzzer uses. *)

val csp_candidates : Gem_lang.Csp.program -> Gem_lang.Csp.program list

val monitor_candidates : Gem_lang.Monitor.program -> Gem_lang.Monitor.program list

val ada_candidates : Gem_lang.Ada.program -> Gem_lang.Ada.program list

val candidates : Case.prog -> Case.prog list

val minimize :
  ?max_steps:int -> (Case.prog -> bool) -> Case.prog -> Case.prog * int
(** [minimize still_fails prog] greedily descends to a program where no
    candidate satisfies [still_fails] (or [max_steps], default 1000,
    shrink steps were taken); returns it with the number of accepted
    steps. The result satisfies [still_fails] whenever the input did. *)

val csp_qshrink : Gem_lang.Csp.program QCheck.Shrink.t

val monitor_qshrink : Gem_lang.Monitor.program QCheck.Shrink.t

val ada_qshrink : Gem_lang.Ada.program QCheck.Shrink.t
