(** The differential oracle: run one case across the engine-configuration
    lattice and assert agreement.

    The lattice is {plain, sleep-set POR} x {jobs 1, 2, 8} x {fp, exact
    keys} x {unbounded, bitstate} at batch 1 — 24 cells — plus two
    batched-scheduler cells (jobs 8, batch 64, fp keys, unbounded seen,
    POR off and on) and two source-DPOR cells (sequential, and jobs 8 x
    batch 64 — the source engine ignores both knobs and must stay
    correct under them), 28 in total. The exact (non-bitstate) cells must
    produce identical completed/deadlocked computation {e multisets}
    (canonical fingerprints), identical exhaustion, and identical
    per-computation verdicts for the case's random restriction. Bitstate
    cells are lossy by design: they must report exactly
    [bitstate-collision-risk] (the unconditional clean-sweep downgrade)
    and their computation/deadlock {e sets} must be a subset of the
    baseline's — the subset-of-clean soundness contract of PR 6. *)

type cell = {
  por : bool;
  jobs : int;
  exact : bool;
  bitstate : bool;
  batch : int;  (** Work-distribution chunk size; 1 = per-task stealing. *)
  source : bool;  (** Use the source-DPOR engine ([--reduction source]). *)
}

val lattice : cell list
(** All 28 cells; the head is {!baseline}. *)

val baseline : cell
(** POR on, jobs 1, exact keys, no bitstate, batch 1 — the truth
    anchor. *)

val cell_name : cell -> string

type disagreement = {
  d_cell : cell;
  d_kind : string;
      (** [completed] | [deadlocks] | [exhausted] | [verdicts] |
          [completed-subset] | [deadlocks-subset] | [verdicts-subset] |
          [exception]. *)
  d_expected : string;
  d_actual : string;
}

val pp_disagreement : Format.formatter -> disagreement -> unit

val check :
  ?max_configs:int ->
  ?formula:Gem_logic.Formula.t ->
  Case.prog ->
  (int, disagreement) result
(** Run every lattice cell; [Ok total_explored] (configurations summed
    over all cells) when they agree, the first disagreement otherwise.
    [formula] (default none) additionally compares the per-computation
    verdict vector of the given restriction, checked against the
    program's {e language spec} context. A cell that raises is itself a
    disagreement ([exception]), never an escape: the fuzzer treats
    crashes as findings. If the baseline cell exhausts its budget
    ([max_configs], default 1_000_000) the instance is vacuously [Ok 0]
    — tiny generated programs never hit this. *)

val skeys : Case.prog -> cell -> string list * string list
(** The (completed, deadlocked) canonical-fingerprint multisets of one
    cell, exposed for the corpus replay tests. *)
