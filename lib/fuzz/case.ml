(* A fuzz case and its compact printers. The renderings are for humans
   reading failure reports and shrunk reproducers; the lossless
   serialization lives in Corpus. *)

module Csp = Gem_lang.Csp
module Monitor = Gem_lang.Monitor
module Ada = Gem_lang.Ada
module E = Gem_lang.Expr

type prog =
  | P_csp of Csp.program
  | P_monitor of Monitor.program
  | P_ada of Ada.program

type t = { name : string; prog : prog }

let lang = function P_csp _ -> "csp" | P_monitor _ -> "monitor" | P_ada _ -> "ada"

let expr_to_string e = Format.asprintf "%a" E.pp e

(* ---- CSP ---- *)

let rec csp_stmt_to_string = function
  | Csp.CLocal (x, e) -> Printf.sprintf "%s:=%s" x (expr_to_string e)
  | Csp.CMark { klass; _ } -> "mark:" ^ klass
  | Csp.CComm (Csp.Send { to_; value }) ->
      Printf.sprintf "%s!%s" to_ (expr_to_string value)
  | Csp.CComm (Csp.Recv { from_; bind }) -> Printf.sprintf "%s?%s" from_ bind
  | Csp.CIfb (g, a, b) ->
      Printf.sprintf "if %s [%s][%s]" (expr_to_string g)
        (csp_stmts_to_string a) (csp_stmts_to_string b)
  | Csp.CWhile (g, body) ->
      Printf.sprintf "while %s [%s]" (expr_to_string g) (csp_stmts_to_string body)
  | Csp.CIf gs -> Printf.sprintf "alt[%s]" (csp_guards_to_string gs)
  | Csp.CDo gs -> Printf.sprintf "do[%s]" (csp_guards_to_string gs)

and csp_stmts_to_string ss = String.concat ";" (List.map csp_stmt_to_string ss)

and csp_guards_to_string gs =
  String.concat " | "
    (List.map
       (fun (g : Csp.guarded) ->
         Printf.sprintf "%s%s->%s" (expr_to_string g.guard)
           (match g.comm with
           | None -> ""
           | Some c -> "&" ^ csp_stmt_to_string (Csp.CComm c))
           (csp_stmts_to_string g.body))
       gs)

let csp_to_string (prog : Csp.program) =
  String.concat " || "
    (List.map
       (fun (p : Csp.process) ->
         Printf.sprintf "%s:[%s]" p.Csp.proc_name (csp_stmts_to_string p.Csp.code))
       prog)

(* ---- Monitor ---- *)

let rec mstmt_to_string = function
  | Monitor.MAssign { var; value; _ } ->
      Printf.sprintf "%s:=%s" var (expr_to_string value)
  | Monitor.MIf (g, a, b) ->
      Printf.sprintf "if %s [%s][%s]" (expr_to_string g) (mstmts_to_string a)
        (mstmts_to_string b)
  | Monitor.MWhile (g, body) ->
      Printf.sprintf "while %s [%s]" (expr_to_string g) (mstmts_to_string body)
  | Monitor.MWait c -> "wait " ^ c
  | Monitor.MSignal c -> "signal " ^ c
  | Monitor.MReturn e -> "return " ^ expr_to_string e
  | Monitor.MSkip -> "skip"

and mstmts_to_string ss = String.concat ";" (List.map mstmt_to_string ss)

let rec pstmt_to_string = function
  | Monitor.PLocal (x, e) -> Printf.sprintf "%s:=%s" x (expr_to_string e)
  | Monitor.PIf (g, a, b) ->
      Printf.sprintf "if %s [%s][%s]" (expr_to_string g) (pstmts_to_string a)
        (pstmts_to_string b)
  | Monitor.PWhile (g, body) ->
      Printf.sprintf "while %s [%s]" (expr_to_string g) (pstmts_to_string body)
  | Monitor.PCall { monitor; entry; _ } -> Printf.sprintf "%s.%s()" monitor entry
  | Monitor.PRead { var; bind } -> Printf.sprintf "%s<-%s" bind var
  | Monitor.PWrite { var; value } ->
      Printf.sprintf "%s:=%s" var (expr_to_string value)
  | Monitor.PMark { klass; _ } -> "mark:" ^ klass

and pstmts_to_string ss = String.concat ";" (List.map pstmt_to_string ss)

let monitor_to_string (prog : Monitor.program) =
  let mon (m : Monitor.monitor) =
    Printf.sprintf "monitor %s{%s}" m.Monitor.mon_name
      (String.concat " "
         (List.map
            (fun (e : Monitor.entry) ->
              Printf.sprintf "%s:[%s]" e.Monitor.entry_name
                (mstmts_to_string e.Monitor.body))
            m.Monitor.entries))
  in
  String.concat " || "
    (List.map mon prog.Monitor.monitors
    @ List.map
        (fun (p : Monitor.process) ->
          Printf.sprintf "%s:[%s]" p.Monitor.proc_name
            (pstmts_to_string p.Monitor.code))
        prog.Monitor.processes)

(* ---- ADA ---- *)

let rec astmt_to_string = function
  | Ada.ALocal (x, e) -> Printf.sprintf "%s:=%s" x (expr_to_string e)
  | Ada.AIf (g, a, b) ->
      Printf.sprintf "if %s [%s][%s]" (expr_to_string g) (astmts_to_string a)
        (astmts_to_string b)
  | Ada.AWhile (g, body) ->
      Printf.sprintf "while %s [%s]" (expr_to_string g) (astmts_to_string body)
  | Ada.AMark { klass; _ } -> "mark:" ^ klass
  | Ada.ACall { task; entry; _ } -> Printf.sprintf "%s.%s()" task entry
  | Ada.AAccept a -> accept_to_string a
  | Ada.ASelect bs ->
      Printf.sprintf "select[%s]"
        (String.concat " | "
           (List.map
              (fun (b : Ada.branch) ->
                Printf.sprintf "%s->%s" (expr_to_string b.Ada.when_)
                  (accept_to_string b.Ada.accept))
              bs))

and astmts_to_string ss = String.concat ";" (List.map astmt_to_string ss)

and accept_to_string (a : Ada.accept) =
  Printf.sprintf "accept %s[%s]" a.Ada.acc_entry (astmts_to_string a.Ada.acc_body)

let ada_to_string (prog : Ada.program) =
  String.concat " || "
    (List.map
       (fun (t : Ada.task) ->
         Printf.sprintf "%s:[%s]" t.Ada.task_name (astmts_to_string t.Ada.code))
       prog)

let prog_to_string = function
  | P_csp p -> csp_to_string p
  | P_monitor p -> monitor_to_string p
  | P_ada p -> ada_to_string p

let to_string c = Printf.sprintf "%s %s: %s" (lang c.prog) c.name (prog_to_string c.prog)

(* ---- Size (statement count): the shrinker's progress measure ---- *)

let rec csp_stmt_size = function
  | Csp.CLocal _ | Csp.CMark _ | Csp.CComm _ -> 1
  | Csp.CIfb (_, a, b) -> 1 + csp_size a + csp_size b
  | Csp.CWhile (_, body) -> 1 + csp_size body
  | Csp.CIf gs | Csp.CDo gs ->
      1 + List.fold_left (fun n (g : Csp.guarded) -> n + csp_size g.body) 0 gs

and csp_size ss = List.fold_left (fun n s -> n + csp_stmt_size s) 0 ss

let rec mstmt_size = function
  | Monitor.MWait _ | Monitor.MSignal _ | Monitor.MReturn _ | Monitor.MSkip
  | Monitor.MAssign _ ->
      1
  | Monitor.MIf (_, a, b) -> 1 + msize a + msize b
  | Monitor.MWhile (_, body) -> 1 + msize body

and msize ss = List.fold_left (fun n s -> n + mstmt_size s) 0 ss

let rec pstmt_size = function
  | Monitor.PLocal _ | Monitor.PCall _ | Monitor.PRead _ | Monitor.PWrite _
  | Monitor.PMark _ ->
      1
  | Monitor.PIf (_, a, b) -> 1 + psize a + psize b
  | Monitor.PWhile (_, body) -> 1 + psize body

and psize ss = List.fold_left (fun n s -> n + pstmt_size s) 0 ss

let rec astmt_size = function
  | Ada.ALocal _ | Ada.AMark _ | Ada.ACall _ -> 1
  | Ada.AIf (_, a, b) -> 1 + asize a + asize b
  | Ada.AWhile (_, body) -> 1 + asize body
  | Ada.AAccept a -> 1 + asize a.Ada.acc_body
  | Ada.ASelect bs ->
      1 + List.fold_left (fun n (b : Ada.branch) -> n + asize b.Ada.accept.Ada.acc_body) 0 bs

and asize ss = List.fold_left (fun n s -> n + astmt_size s) 0 ss

let size = function
  | P_csp p -> List.fold_left (fun n (pr : Csp.process) -> n + csp_size pr.Csp.code) 0 p
  | P_monitor p ->
      List.fold_left
        (fun n (m : Monitor.monitor) ->
          n
          + List.fold_left
              (fun n (e : Monitor.entry) -> n + msize e.Monitor.body)
              0 m.Monitor.entries)
        0 p.Monitor.monitors
      + List.fold_left
          (fun n (pr : Monitor.process) -> n + psize pr.Monitor.code)
          0 p.Monitor.processes
  | P_ada p -> List.fold_left (fun n (t : Ada.task) -> n + asize t.Ada.code) 0 p

(* ---- Loop freedom: the generators' termination guarantee ---- *)

let rec csp_stmt_loop_free = function
  | Csp.CLocal _ | Csp.CMark _ | Csp.CComm _ -> true
  | Csp.CIfb (_, a, b) -> List.for_all csp_stmt_loop_free (a @ b)
  | Csp.CWhile _ | Csp.CDo _ -> false
  | Csp.CIf gs ->
      List.for_all (fun (g : Csp.guarded) -> List.for_all csp_stmt_loop_free g.body) gs

let rec mstmt_loop_free = function
  | Monitor.MWait _ | Monitor.MSignal _ | Monitor.MReturn _ | Monitor.MSkip
  | Monitor.MAssign _ ->
      true
  | Monitor.MIf (_, a, b) -> List.for_all mstmt_loop_free (a @ b)
  | Monitor.MWhile _ -> false

let rec pstmt_loop_free = function
  | Monitor.PLocal _ | Monitor.PCall _ | Monitor.PRead _ | Monitor.PWrite _
  | Monitor.PMark _ ->
      true
  | Monitor.PIf (_, a, b) -> List.for_all pstmt_loop_free (a @ b)
  | Monitor.PWhile _ -> false

let rec astmt_loop_free = function
  | Ada.ALocal _ | Ada.AMark _ | Ada.ACall _ -> true
  | Ada.AIf (_, a, b) -> List.for_all astmt_loop_free (a @ b)
  | Ada.AWhile _ -> false
  | Ada.AAccept a -> List.for_all astmt_loop_free a.Ada.acc_body
  | Ada.ASelect bs ->
      List.for_all
        (fun (b : Ada.branch) -> List.for_all astmt_loop_free b.Ada.accept.Ada.acc_body)
        bs

let loop_free = function
  | P_csp p ->
      List.for_all
        (fun (pr : Csp.process) -> List.for_all csp_stmt_loop_free pr.Csp.code)
        p
  | P_monitor p ->
      List.for_all
        (fun (m : Monitor.monitor) ->
          List.for_all
            (fun (e : Monitor.entry) -> List.for_all mstmt_loop_free e.Monitor.body)
            m.Monitor.entries)
        p.Monitor.monitors
      && List.for_all
           (fun (pr : Monitor.process) -> List.for_all pstmt_loop_free pr.Monitor.code)
           p.Monitor.processes
  | P_ada p ->
      List.for_all
        (fun (t : Ada.task) -> List.for_all astmt_loop_free t.Ada.code)
        p
