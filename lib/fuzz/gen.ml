(* Random loop-free programs in all three embedded languages, plus random
   restrictions over their marker events. Grown out of test/gen_csp.ml
   (PR 2), which only knew CSP; the parity suites (POR, parallel, keys,
   resilience) and the fuzz driver all draw from here now.

   Straight-line statements only — local arithmetic, markers,
   point-to-point communication, shallow conditionals — so every
   generated program terminates (possibly in a deadlock leaf when
   communications mismatch; the differentials compare those too). *)

module Csp = Gem_lang.Csp
module Monitor = Gem_lang.Monitor
module Ada = Gem_lang.Ada
module E = Gem_lang.Expr
module V = Gem_model.Value
module F = Gem_logic.Formula

(* ---- CSP (the original test/gen_csp.ml distribution, verbatim — the
   POR/parallel/keys/resilience suites' corpora must not shift) ---- *)

let base_stmt_gen others =
  QCheck.Gen.(
    oneof
      [
        map (fun k -> Csp.CLocal ("x", E.Add (E.Var "x", E.Int k))) (int_range 0 3);
        return (Csp.CMark { klass = "M"; params = [ E.Var "x" ] });
        map (fun o -> Csp.CComm (Csp.Send { to_ = o; value = E.Var "x" })) (oneofl others);
        map (fun o -> Csp.CComm (Csp.Recv { from_ = o; bind = "m" })) (oneofl others);
      ])

let stmt_gen others =
  QCheck.Gen.(
    frequency
      [
        (4, base_stmt_gen others);
        ( 1,
          map3
            (fun t a b -> Csp.CIfb (E.Lt (E.Var "x", E.Int t), a, b))
            (int_range 0 3)
            (list_size (int_range 0 2) (base_stmt_gen others))
            (list_size (int_range 0 2) (base_stmt_gen others)) );
      ])

let csp_gen =
  QCheck.Gen.(
    let* n = int_range 2 3 in
    let names = List.init n (Printf.sprintf "P%d") in
    (* Three processes explode the unreduced path count; keep them short. *)
    let code_size = if n = 3 then int_range 1 2 else int_range 1 3 in
    flatten_l
      (List.map
         (fun me ->
           let others = List.filter (fun o -> o <> me) names in
           let* code = list_size code_size (stmt_gen others) in
           return
             { Csp.proc_name = me; locals = [ ("x", V.Int 1); ("m", V.Int 0) ]; code })
         names))

(* ---- Monitor ---- *)

let monitor_entry_names = [ "e0"; "e1" ]

let mstmt_gen =
  QCheck.Gen.(
    frequency
      [
        ( 3,
          map
            (fun k ->
              Monitor.MAssign
                { var = "v"; value = E.Add (E.Var "v", E.Int k); site = None })
            (int_range 0 2) );
        (2, return (Monitor.MSignal "c"));
        (1, return (Monitor.MWait "c"));
        ( 1,
          map
            (fun t ->
              Monitor.MIf
                ( E.Lt (E.Var "v", E.Int t),
                  [ Monitor.MAssign
                      { var = "v"; value = E.Add (E.Var "v", E.Int 1); site = None } ],
                  [ Monitor.MSignal "c" ] ))
            (int_range 0 2) );
      ])

let pstmt_gen entries =
  QCheck.Gen.(
    oneof
      [
        map (fun k -> Monitor.PLocal ("x", E.Add (E.Var "x", E.Int k))) (int_range 0 2);
        return (Monitor.PMark { klass = "M"; params = [ E.Var "x" ] });
        map
          (fun e -> Monitor.PCall { monitor = "M"; entry = e; args = []; bind = None })
          (oneofl entries);
        return (Monitor.PWrite { var = "s"; value = E.Var "x" });
        return (Monitor.PRead { var = "s"; bind = "x" });
      ])

let monitor_gen =
  QCheck.Gen.(
    let* n_entries = int_range 1 2 in
    let entries = List.filteri (fun i _ -> i < n_entries) monitor_entry_names in
    let* entry_bodies =
      flatten_l
        (List.map
           (fun name ->
             let* body = list_size (int_range 1 2) mstmt_gen in
             return { Monitor.entry_name = name; formals = []; body })
           entries)
    in
    let monitor =
      {
        Monitor.mon_name = "M";
        vars = [ ("v", V.Int 0) ];
        conditions = [ "c" ];
        entries = entry_bodies;
      }
    in
    let* processes =
      flatten_l
        (List.map
           (fun name ->
             let* code = list_size (int_range 1 2) (pstmt_gen entries) in
             return { Monitor.proc_name = name; locals = [ ("x", V.Int 1) ]; code })
           [ "P0"; "P1" ])
    in
    return
      { Monitor.monitors = [ monitor ]; shared = [ ("s", V.Int 0) ]; processes })

(* ---- ADA ---- *)

(* Entry arities are fixed per name ("e"/0, "f"/1) so any call can meet
   any accept of the same entry; mismatched rendezvous — a call nobody
   accepts, an accept nobody calls — deadlock, which is in scope. *)

let ada_accept_e =
  QCheck.Gen.(
    let* body =
      list_size (int_range 0 1)
        (oneof
           [
             return (Ada.ALocal ("y", E.Add (E.Var "y", E.Int 1)));
             return (Ada.AMark { klass = "M"; params = [ E.Var "y" ] });
           ])
    in
    return { Ada.acc_entry = "e"; acc_formals = []; acc_body = body; acc_result = None })

let ada_accept_f =
  QCheck.Gen.return
    {
      Ada.acc_entry = "f";
      acc_formals = [ "z" ];
      acc_body = [ Ada.ALocal ("y", E.Add (E.Var "y", E.Var "z")) ];
      acc_result = None;
    }

let ada_accept_gen = QCheck.Gen.oneof [ ada_accept_e; ada_accept_f ]

let server_stmt_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun a -> Ada.AAccept a) ada_accept_gen);
        ( 2,
          let* n = int_range 1 2 in
          let* accepts = flatten_l (List.init n (fun _ -> ada_accept_gen)) in
          let* guards =
            flatten_l
              (List.init n (fun _ ->
                   oneof
                     [
                       return (E.Bool true);
                       map (fun t -> E.Lt (E.Var "y", E.Int t)) (int_range 0 2);
                     ]))
          in
          return
            (Ada.ASelect
               (List.map2 (fun when_ accept -> { Ada.when_; accept }) guards accepts)) );
        ( 1,
          map (fun k -> Ada.ALocal ("y", E.Add (E.Var "y", E.Int k))) (int_range 0 2) );
        (1, return (Ada.AMark { klass = "M"; params = [ E.Var "y" ] }));
      ])

let client_stmt_gen =
  QCheck.Gen.(
    frequency
      [
        ( 3,
          oneof
            [
              return (Ada.ACall { task = "T0"; entry = "e"; args = []; bind = None });
              map
                (fun k ->
                  Ada.ACall { task = "T0"; entry = "f"; args = [ E.Int k ]; bind = None })
                (int_range 0 2);
            ] );
        ( 1,
          map (fun k -> Ada.ALocal ("y", E.Add (E.Var "y", E.Int k))) (int_range 0 2) );
        (1, return (Ada.AMark { klass = "M"; params = [ E.Var "y" ] }));
      ])

let ada_gen =
  QCheck.Gen.(
    let* n_clients = int_range 1 2 in
    let* server_code = list_size (int_range 1 2) server_stmt_gen in
    let server = { Ada.task_name = "T0"; locals = [ ("y", V.Int 0) ]; code = server_code } in
    let* clients =
      flatten_l
        (List.init n_clients (fun i ->
             let* code = list_size (int_range 1 2) client_stmt_gen in
             return
               {
                 Ada.task_name = Printf.sprintf "T%d" (i + 1);
                 locals = [ ("y", V.Int 1) ];
                 code;
               }))
    in
    return (server :: clients))

(* ---- Arbitraries (printer + structural shrinker) ---- *)

let csp_arb =
  QCheck.make csp_gen ~print:Case.csp_to_string ~shrink:Shrink.csp_qshrink

let monitor_arb =
  QCheck.make monitor_gen ~print:Case.monitor_to_string ~shrink:Shrink.monitor_qshrink

let ada_arb = QCheck.make ada_gen ~print:Case.ada_to_string ~shrink:Shrink.ada_qshrink

let prog_gen = csp_gen

let prog_arb = csp_arb

let prog_to_string = Case.csp_to_string

(* ---- Deterministic instances ---- *)

let instance ~seed ~index =
  let st = Random.State.make [| 0x9e3779; seed; index |] in
  let prog =
    match index mod 3 with
    | 0 -> Case.P_csp (QCheck.Gen.generate1 ~rand:st csp_gen)
    | 1 -> Case.P_monitor (QCheck.Gen.generate1 ~rand:st monitor_gen)
    | _ -> Case.P_ada (QCheck.Gen.generate1 ~rand:st ada_gen)
  in
  { Case.name = Printf.sprintf "seed%d-i%d-%s" seed index (Case.lang prog); prog }

(* ---- Random restrictions over the marker events ----

   All shapes are immediate (temporal-operator-free): they are evaluated
   once on the full history, so the verdict depends only on the
   computation's partial order and data — never on run-enumeration order
   or caps, which are not part of the engine lattice under differential
   test. *)

let markers = F.Cls "M"

let formula_gen =
  QCheck.Gen.(
    oneof
      [
        (* Some marker occurred. *)
        return (F.Exists ("m", markers, F.occurred "m"));
        (* At most one marker overall. *)
        return (F.At_most_one ("m", markers, F.occurred "m"));
        (* Markers are temporally totally ordered. *)
        return
          (F.forall
             [ ("m", markers); ("n", markers) ]
             (F.disj
                [
                  F.Atom (F.Same_event ("m", "n"));
                  F.Atom (F.Temp_lt ("m", "n"));
                  F.Atom (F.Temp_lt ("n", "m"));
                ]));
        (* Two distinct markers exist, temporally ordered. *)
        return
          (F.exists
             [ ("m", markers); ("n", markers) ]
             (F.Atom (F.Temp_lt ("m", "n"))));
        (* Data shapes over the marker payload p0. *)
        map2
          (fun op k ->
            F.Exists
              ( "m",
                markers,
                F.Atom (F.Cmp (op, F.Param ("m", "p0"), F.Const (V.Int k))) ))
          (oneofl [ F.Eq; F.Ge; F.Le ])
          (int_range 0 3);
        map
          (fun k ->
            F.forall
              [ ("m", markers) ]
              (F.Atom (F.Cmp (F.Le, F.Param ("m", "p0"), F.Const (V.Int k)))))
          (int_range 1 6);
        (* Payloads never decrease along the temporal order. *)
        return
          (F.forall
             [ ("m", markers); ("n", markers) ]
             (F.Implies
                ( F.Atom (F.Temp_lt ("m", "n")),
                  F.Atom (F.Cmp (F.Le, F.Param ("m", "p0"), F.Param ("n", "p0"))) )));
      ])

let formula_for ~seed ~index =
  let st = Random.State.make [| 0x51ed27; seed; index |] in
  QCheck.Gen.generate1 ~rand:st formula_gen
