(** The fuzz loop: deterministic instances through the differential
    oracle, greedy shrinking and corpus persistence on disagreement.

    All progress strings pushed through [log] are derived from counts,
    never from wall time, so a run's logged output is byte-identical for
    a given (seed, iters) — the CLI's same-seed determinism contract.
    Throughput belongs on stderr (the CLI computes it from {!outcome}). *)

type failure = {
  f_index : int;  (** Instance index within the run. *)
  f_case : Case.t;  (** As generated. *)
  f_shrunk : Case.t;  (** After greedy minimization. *)
  f_steps : int;  (** Accepted shrink steps. *)
  f_disagreement : Oracle.disagreement;  (** Re-derived on the shrunk case. *)
  f_corpus_path : string option;  (** Where the reproducer was written. *)
}

type outcome = {
  o_seed : int;
  o_iters : int;  (** Requested. *)
  o_ran : int;  (** Completed before failure/time budget. *)
  o_cells : int;  (** Lattice width (per instance). *)
  o_explored : int;  (** Configurations, summed over all cell runs. *)
  o_elapsed : float;  (** Wall seconds (reporting only, keep off stdout). *)
  o_failure : failure option;
}

val run :
  ?time_budget:float ->
  ?max_configs:int ->
  ?corpus_dir:string ->
  ?log:(string -> unit) ->
  seed:int ->
  iters:int ->
  unit ->
  outcome
(** Stops at the first disagreement (after shrinking and, when
    [corpus_dir] is given, persisting the reproducer) or when
    [time_budget] wall seconds have elapsed. *)
