(** The reproducer corpus: shrunk disagreeing cases persisted as text and
    replayed as regression tests.

    Format ([.gemfuzz], versioned s-expressions):
    {v (gemfuzz 1 (case NAME (csp (process P0 (locals (x (int 1))) (seq ...)) ...))) v}

    The encoding is lossless over the whole of the three ASTs —
    [decode (encode c) = Ok c] for every case, generated or hand-written
    — and the decoder rejects unknown forms with a message naming the
    offending node, so a corpus file never silently degrades into a
    different program. *)

val encode : Case.t -> string

val decode : string -> (Case.t, string) result

val save : dir:string -> Case.t -> string
(** Write [<dir>/<name>.gemfuzz] (creating [dir] if needed); returns the
    path. *)

val load_file : string -> (Case.t, string) result

val load_dir : string -> (string * (Case.t, string) result) list
(** Every [*.gemfuzz] under the directory, sorted by file name. *)
