(* Textual reproducer corpus: a tiny s-expression layer plus a lossless
   codec for the three language ASTs. Shrunk programs are not
   seed-reproducible (the shrinker leaves the generator's image), so the
   corpus stores the AST itself. *)

module Csp = Gem_lang.Csp
module Monitor = Gem_lang.Monitor
module Ada = Gem_lang.Ada
module E = Gem_lang.Expr
module V = Gem_model.Value

type sexp = Atom of string | L of sexp list

(* ---- printing ---- *)

let atom_is_plain s =
  s <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = '-' || c = '.' || c = ':' || c = '+')
       s

let rec print_sexp buf = function
  | Atom s -> if atom_is_plain s then Buffer.add_string buf s else Buffer.add_string buf (Printf.sprintf "%S" s)
  | L items ->
      Buffer.add_char buf '(';
      List.iteri
        (fun i s ->
          if i > 0 then Buffer.add_char buf ' ';
          print_sexp buf s)
        items;
      Buffer.add_char buf ')'

let sexp_to_string s =
  let buf = Buffer.create 256 in
  print_sexp buf s;
  Buffer.contents buf

(* ---- parsing ---- *)

exception Parse_error of string

let parse_sexp (src : string) : sexp =
  let n = String.length src in
  let pos = ref 0 in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | Some ';' ->
        (* comment to end of line *)
        while !pos < n && src.[!pos] <> '\n' do advance () done;
        skip_ws ()
    | _ -> ()
  in
  let read_quoted () =
    advance () (* opening quote *);
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then raise (Parse_error "unterminated string")
      else
        match src.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            if !pos + 1 >= n then raise (Parse_error "unterminated escape");
            (match src.[!pos + 1] with
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | c -> Buffer.add_char buf c);
            advance ();
            advance ();
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let read_atom () =
    let start = !pos in
    while
      !pos < n
      && match src.[!pos] with
         | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';' -> false
         | _ -> true
    do
      advance ()
    done;
    String.sub src start (!pos - start)
  in
  let rec read () =
    skip_ws ();
    match peek () with
    | None -> raise (Parse_error "unexpected end of input")
    | Some '(' ->
        advance ();
        let items = ref [] in
        let rec items_loop () =
          skip_ws ();
          match peek () with
          | None -> raise (Parse_error "unclosed (")
          | Some ')' -> advance ()
          | _ ->
              items := read () :: !items;
              items_loop ()
        in
        items_loop ();
        L (List.rev !items)
    | Some ')' -> raise (Parse_error "unexpected )")
    | Some '"' -> Atom (read_quoted ())
    | Some _ -> Atom (read_atom ())
  in
  let s = read () in
  skip_ws ();
  if !pos <> n then raise (Parse_error "trailing input after expression");
  s

(* ---- decode plumbing ---- *)

exception Decode_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Decode_error m)) fmt

let head_of = function
  | L (Atom h :: _) -> h
  | Atom a -> "atom " ^ a
  | L _ -> "(...)"

let atom = function Atom a -> a | s -> fail "expected atom, got %s" (head_of s)

let int_atom s =
  match int_of_string_opt (atom s) with
  | Some i -> i
  | None -> fail "expected integer, got %s" (atom s)

let bool_atom s =
  match atom s with
  | "true" -> true
  | "false" -> false
  | a -> fail "expected bool, got %s" a

(* ---- values ---- *)

let rec value_to_sexp = function
  | V.Unit -> L [ Atom "unit" ]
  | V.Bool b -> L [ Atom "bool"; Atom (string_of_bool b) ]
  | V.Int k -> L [ Atom "int"; Atom (string_of_int k) ]
  | V.Str s -> L [ Atom "str"; Atom s ]
  | V.Pair (a, b) -> L [ Atom "pair"; value_to_sexp a; value_to_sexp b ]
  | V.List vs -> L (Atom "list" :: List.map value_to_sexp vs)

let rec value_of_sexp = function
  | L [ Atom "unit" ] -> V.Unit
  | L [ Atom "bool"; b ] -> V.Bool (bool_atom b)
  | L [ Atom "int"; k ] -> V.Int (int_atom k)
  | L [ Atom "str"; s ] -> V.Str (atom s)
  | L [ Atom "pair"; a; b ] -> V.Pair (value_of_sexp a, value_of_sexp b)
  | L (Atom "list" :: vs) -> V.List (List.map value_of_sexp vs)
  | s -> fail "unknown value form %s" (head_of s)

(* ---- expressions ---- *)

let rec expr_to_sexp = function
  | E.Int k -> L [ Atom "i"; Atom (string_of_int k) ]
  | E.Bool b -> L [ Atom "b"; Atom (string_of_bool b) ]
  | E.Str s -> L [ Atom "s"; Atom s ]
  | E.Var x -> L [ Atom "var"; Atom x ]
  | E.Neg a -> L [ Atom "neg"; expr_to_sexp a ]
  | E.Not a -> L [ Atom "not"; expr_to_sexp a ]
  | E.Add (a, b) -> L [ Atom "add"; expr_to_sexp a; expr_to_sexp b ]
  | E.Sub (a, b) -> L [ Atom "sub"; expr_to_sexp a; expr_to_sexp b ]
  | E.Mul (a, b) -> L [ Atom "mul"; expr_to_sexp a; expr_to_sexp b ]
  | E.Div (a, b) -> L [ Atom "div"; expr_to_sexp a; expr_to_sexp b ]
  | E.Mod (a, b) -> L [ Atom "mod"; expr_to_sexp a; expr_to_sexp b ]
  | E.Eq (a, b) -> L [ Atom "eq"; expr_to_sexp a; expr_to_sexp b ]
  | E.Ne (a, b) -> L [ Atom "ne"; expr_to_sexp a; expr_to_sexp b ]
  | E.Lt (a, b) -> L [ Atom "lt"; expr_to_sexp a; expr_to_sexp b ]
  | E.Le (a, b) -> L [ Atom "le"; expr_to_sexp a; expr_to_sexp b ]
  | E.Gt (a, b) -> L [ Atom "gt"; expr_to_sexp a; expr_to_sexp b ]
  | E.Ge (a, b) -> L [ Atom "ge"; expr_to_sexp a; expr_to_sexp b ]
  | E.And (a, b) -> L [ Atom "and"; expr_to_sexp a; expr_to_sexp b ]
  | E.Or (a, b) -> L [ Atom "or"; expr_to_sexp a; expr_to_sexp b ]
  | E.Queue_non_empty c -> L [ Atom "queue-non-empty"; Atom c ]
  | E.Queue_length c -> L [ Atom "queue-length"; Atom c ]
  | E.Nil -> L [ Atom "nil" ]
  | E.Append (a, b) -> L [ Atom "append"; expr_to_sexp a; expr_to_sexp b ]
  | E.Head a -> L [ Atom "head"; expr_to_sexp a ]
  | E.Tail a -> L [ Atom "tail"; expr_to_sexp a ]
  | E.Len a -> L [ Atom "len"; expr_to_sexp a ]

let rec expr_of_sexp s =
  let e = expr_of_sexp in
  match s with
  | L [ Atom "i"; k ] -> E.Int (int_atom k)
  | L [ Atom "b"; b ] -> E.Bool (bool_atom b)
  | L [ Atom "s"; x ] -> E.Str (atom x)
  | L [ Atom "var"; x ] -> E.Var (atom x)
  | L [ Atom "neg"; a ] -> E.Neg (e a)
  | L [ Atom "not"; a ] -> E.Not (e a)
  | L [ Atom "add"; a; b ] -> E.Add (e a, e b)
  | L [ Atom "sub"; a; b ] -> E.Sub (e a, e b)
  | L [ Atom "mul"; a; b ] -> E.Mul (e a, e b)
  | L [ Atom "div"; a; b ] -> E.Div (e a, e b)
  | L [ Atom "mod"; a; b ] -> E.Mod (e a, e b)
  | L [ Atom "eq"; a; b ] -> E.Eq (e a, e b)
  | L [ Atom "ne"; a; b ] -> E.Ne (e a, e b)
  | L [ Atom "lt"; a; b ] -> E.Lt (e a, e b)
  | L [ Atom "le"; a; b ] -> E.Le (e a, e b)
  | L [ Atom "gt"; a; b ] -> E.Gt (e a, e b)
  | L [ Atom "ge"; a; b ] -> E.Ge (e a, e b)
  | L [ Atom "and"; a; b ] -> E.And (e a, e b)
  | L [ Atom "or"; a; b ] -> E.Or (e a, e b)
  | L [ Atom "queue-non-empty"; c ] -> E.Queue_non_empty (atom c)
  | L [ Atom "queue-length"; c ] -> E.Queue_length (atom c)
  | L [ Atom "nil" ] -> E.Nil
  | L [ Atom "append"; a; b ] -> E.Append (e a, e b)
  | L [ Atom "head"; a ] -> E.Head (e a)
  | L [ Atom "tail"; a ] -> E.Tail (e a)
  | L [ Atom "len"; a ] -> E.Len (e a)
  | s -> fail "unknown expression form %s" (head_of s)

let locals_to_sexp locals =
  L (Atom "locals" :: List.map (fun (x, v) -> L [ Atom x; value_to_sexp v ]) locals)

let locals_of_sexp = function
  | L (Atom "locals" :: bindings) ->
      List.map
        (function
          | L [ x; v ] -> (atom x, value_of_sexp v)
          | s -> fail "bad binding %s" (head_of s))
        bindings
  | s -> fail "expected (locals ...), got %s" (head_of s)

(* ---- CSP ---- *)

let csp_comm_to_sexp = function
  | Csp.Send { to_; value } -> L [ Atom "send"; Atom to_; expr_to_sexp value ]
  | Csp.Recv { from_; bind } -> L [ Atom "recv"; Atom from_; Atom bind ]

let csp_comm_of_sexp = function
  | L [ Atom "send"; to_; value ] ->
      Csp.Send { to_ = atom to_; value = expr_of_sexp value }
  | L [ Atom "recv"; from_; bind ] -> Csp.Recv { from_ = atom from_; bind = atom bind }
  | s -> fail "unknown communication form %s" (head_of s)

let rec csp_stmt_to_sexp = function
  | Csp.CLocal (x, e) -> L [ Atom "local"; Atom x; expr_to_sexp e ]
  | Csp.CMark { klass; params } -> L (Atom "mark" :: Atom klass :: List.map expr_to_sexp params)
  | Csp.CComm c -> csp_comm_to_sexp c
  | Csp.CIfb (g, a, b) ->
      L [ Atom "ifb"; expr_to_sexp g; csp_seq_to_sexp a; csp_seq_to_sexp b ]
  | Csp.CWhile (g, body) -> L [ Atom "while"; expr_to_sexp g; csp_seq_to_sexp body ]
  | Csp.CIf gs -> L (Atom "alt" :: List.map csp_guarded_to_sexp gs)
  | Csp.CDo gs -> L (Atom "do" :: List.map csp_guarded_to_sexp gs)

and csp_seq_to_sexp ss = L (Atom "seq" :: List.map csp_stmt_to_sexp ss)

and csp_guarded_to_sexp (g : Csp.guarded) =
  L
    [
      Atom "guard";
      expr_to_sexp g.Csp.guard;
      (match g.Csp.comm with None -> L [ Atom "nocomm" ] | Some c -> csp_comm_to_sexp c);
      csp_seq_to_sexp g.Csp.body;
    ]

let rec csp_stmt_of_sexp = function
  | L [ Atom "local"; x; e ] -> Csp.CLocal (atom x, expr_of_sexp e)
  | L (Atom "mark" :: klass :: params) ->
      Csp.CMark { klass = atom klass; params = List.map expr_of_sexp params }
  | L (Atom ("send" | "recv") :: _) as s -> Csp.CComm (csp_comm_of_sexp s)
  | L [ Atom "ifb"; g; a; b ] ->
      Csp.CIfb (expr_of_sexp g, csp_seq_of_sexp a, csp_seq_of_sexp b)
  | L [ Atom "while"; g; body ] -> Csp.CWhile (expr_of_sexp g, csp_seq_of_sexp body)
  | L (Atom "alt" :: gs) -> Csp.CIf (List.map csp_guarded_of_sexp gs)
  | L (Atom "do" :: gs) -> Csp.CDo (List.map csp_guarded_of_sexp gs)
  | s -> fail "unknown CSP statement form %s" (head_of s)

and csp_seq_of_sexp = function
  | L (Atom "seq" :: ss) -> List.map csp_stmt_of_sexp ss
  | s -> fail "expected (seq ...), got %s" (head_of s)

and csp_guarded_of_sexp = function
  | L [ Atom "guard"; g; comm; body ] ->
      {
        Csp.guard = expr_of_sexp g;
        comm =
          (match comm with L [ Atom "nocomm" ] -> None | c -> Some (csp_comm_of_sexp c));
        body = csp_seq_of_sexp body;
      }
  | s -> fail "expected (guard ...), got %s" (head_of s)

let csp_to_sexp (prog : Csp.program) =
  L
    (Atom "csp"
    :: List.map
         (fun (p : Csp.process) ->
           L
             [
               Atom "process";
               Atom p.Csp.proc_name;
               locals_to_sexp p.Csp.locals;
               csp_seq_to_sexp p.Csp.code;
             ])
         prog)

let csp_of_sexp = function
  | L (Atom "csp" :: procs) ->
      List.map
        (function
          | L [ Atom "process"; name; locals; code ] ->
              {
                Csp.proc_name = atom name;
                locals = locals_of_sexp locals;
                code = csp_seq_of_sexp code;
              }
          | s -> fail "expected (process ...), got %s" (head_of s))
        procs
  | s -> fail "expected (csp ...), got %s" (head_of s)

(* ---- Monitor ---- *)

let site_to_sexp = function
  | None -> L [ Atom "nosite" ]
  | Some s -> L [ Atom "site"; Atom s ]

let site_of_sexp = function
  | L [ Atom "nosite" ] -> None
  | L [ Atom "site"; s ] -> Some (atom s)
  | s -> fail "expected site, got %s" (head_of s)

let bind_to_sexp = function
  | None -> L [ Atom "nobind" ]
  | Some x -> L [ Atom "bind"; Atom x ]

let bind_of_sexp = function
  | L [ Atom "nobind" ] -> None
  | L [ Atom "bind"; x ] -> Some (atom x)
  | s -> fail "expected bind, got %s" (head_of s)

let rec mstmt_to_sexp = function
  | Monitor.MAssign { var; value; site } ->
      L [ Atom "assign"; Atom var; expr_to_sexp value; site_to_sexp site ]
  | Monitor.MIf (g, a, b) ->
      L [ Atom "mif"; expr_to_sexp g; mseq_to_sexp a; mseq_to_sexp b ]
  | Monitor.MWhile (g, body) -> L [ Atom "mwhile"; expr_to_sexp g; mseq_to_sexp body ]
  | Monitor.MWait c -> L [ Atom "wait"; Atom c ]
  | Monitor.MSignal c -> L [ Atom "signal"; Atom c ]
  | Monitor.MReturn e -> L [ Atom "return"; expr_to_sexp e ]
  | Monitor.MSkip -> L [ Atom "skip" ]

and mseq_to_sexp ss = L (Atom "seq" :: List.map mstmt_to_sexp ss)

let rec mstmt_of_sexp = function
  | L [ Atom "assign"; var; value; site ] ->
      Monitor.MAssign
        { var = atom var; value = expr_of_sexp value; site = site_of_sexp site }
  | L [ Atom "mif"; g; a; b ] ->
      Monitor.MIf (expr_of_sexp g, mseq_of_sexp a, mseq_of_sexp b)
  | L [ Atom "mwhile"; g; body ] -> Monitor.MWhile (expr_of_sexp g, mseq_of_sexp body)
  | L [ Atom "wait"; c ] -> Monitor.MWait (atom c)
  | L [ Atom "signal"; c ] -> Monitor.MSignal (atom c)
  | L [ Atom "return"; e ] -> Monitor.MReturn (expr_of_sexp e)
  | L [ Atom "skip" ] -> Monitor.MSkip
  | s -> fail "unknown monitor statement form %s" (head_of s)

and mseq_of_sexp = function
  | L (Atom "seq" :: ss) -> List.map mstmt_of_sexp ss
  | s -> fail "expected (seq ...), got %s" (head_of s)

let rec pstmt_to_sexp = function
  | Monitor.PLocal (x, e) -> L [ Atom "local"; Atom x; expr_to_sexp e ]
  | Monitor.PIf (g, a, b) ->
      L [ Atom "pif"; expr_to_sexp g; pseq_to_sexp a; pseq_to_sexp b ]
  | Monitor.PWhile (g, body) -> L [ Atom "pwhile"; expr_to_sexp g; pseq_to_sexp body ]
  | Monitor.PCall { monitor; entry; args; bind } ->
      L
        [
          Atom "call";
          Atom monitor;
          Atom entry;
          L (Atom "args" :: List.map expr_to_sexp args);
          bind_to_sexp bind;
        ]
  | Monitor.PRead { var; bind } -> L [ Atom "read"; Atom var; Atom bind ]
  | Monitor.PWrite { var; value } -> L [ Atom "write"; Atom var; expr_to_sexp value ]
  | Monitor.PMark { klass; params } ->
      L (Atom "mark" :: Atom klass :: List.map expr_to_sexp params)

and pseq_to_sexp ss = L (Atom "seq" :: List.map pstmt_to_sexp ss)

let rec pstmt_of_sexp = function
  | L [ Atom "local"; x; e ] -> Monitor.PLocal (atom x, expr_of_sexp e)
  | L [ Atom "pif"; g; a; b ] ->
      Monitor.PIf (expr_of_sexp g, pseq_of_sexp a, pseq_of_sexp b)
  | L [ Atom "pwhile"; g; body ] -> Monitor.PWhile (expr_of_sexp g, pseq_of_sexp body)
  | L [ Atom "call"; monitor; entry; L (Atom "args" :: args); bind ] ->
      Monitor.PCall
        {
          monitor = atom monitor;
          entry = atom entry;
          args = List.map expr_of_sexp args;
          bind = bind_of_sexp bind;
        }
  | L [ Atom "read"; var; bind ] -> Monitor.PRead { var = atom var; bind = atom bind }
  | L [ Atom "write"; var; value ] ->
      Monitor.PWrite { var = atom var; value = expr_of_sexp value }
  | L (Atom "mark" :: klass :: params) ->
      Monitor.PMark { klass = atom klass; params = List.map expr_of_sexp params }
  | s -> fail "unknown process statement form %s" (head_of s)

and pseq_of_sexp = function
  | L (Atom "seq" :: ss) -> List.map pstmt_of_sexp ss
  | s -> fail "expected (seq ...), got %s" (head_of s)

let monitor_to_sexp (prog : Monitor.program) =
  let mon (m : Monitor.monitor) =
    L
      [
        Atom "monitor";
        Atom m.Monitor.mon_name;
        L
          (Atom "vars"
          :: List.map (fun (x, v) -> L [ Atom x; value_to_sexp v ]) m.Monitor.vars);
        L (Atom "conditions" :: List.map (fun c -> Atom c) m.Monitor.conditions);
        L
          (Atom "entries"
          :: List.map
               (fun (e : Monitor.entry) ->
                 L
                   [
                     Atom "entry";
                     Atom e.Monitor.entry_name;
                     L (Atom "formals" :: List.map (fun f -> Atom f) e.Monitor.formals);
                     mseq_to_sexp e.Monitor.body;
                   ])
               m.Monitor.entries);
      ]
  in
  L
    [
      Atom "monitor-prog";
      L (Atom "monitors" :: List.map mon prog.Monitor.monitors);
      L
        (Atom "shared"
        :: List.map (fun (x, v) -> L [ Atom x; value_to_sexp v ]) prog.Monitor.shared);
      L
        (Atom "processes"
        :: List.map
             (fun (p : Monitor.process) ->
               L
                 [
                   Atom "process";
                   Atom p.Monitor.proc_name;
                   locals_to_sexp p.Monitor.locals;
                   pseq_to_sexp p.Monitor.code;
                 ])
             prog.Monitor.processes);
    ]

let monitor_of_sexp = function
  | L
      [
        Atom "monitor-prog";
        L (Atom "monitors" :: mons);
        L (Atom "shared" :: shared);
        L (Atom "processes" :: procs);
      ] ->
      {
        Monitor.monitors =
          List.map
            (function
              | L
                  [
                    Atom "monitor";
                    name;
                    L (Atom "vars" :: vars);
                    L (Atom "conditions" :: conds);
                    L (Atom "entries" :: entries);
                  ] ->
                  {
                    Monitor.mon_name = atom name;
                    vars =
                      List.map
                        (function
                          | L [ x; v ] -> (atom x, value_of_sexp v)
                          | s -> fail "bad var binding %s" (head_of s))
                        vars;
                    conditions = List.map atom conds;
                    entries =
                      List.map
                        (function
                          | L [ Atom "entry"; name; L (Atom "formals" :: formals); body ]
                            ->
                              {
                                Monitor.entry_name = atom name;
                                formals = List.map atom formals;
                                body = mseq_of_sexp body;
                              }
                          | s -> fail "expected (entry ...), got %s" (head_of s))
                        entries;
                  }
              | s -> fail "expected (monitor ...), got %s" (head_of s))
            mons;
        shared =
          List.map
            (function
              | L [ x; v ] -> (atom x, value_of_sexp v)
              | s -> fail "bad shared binding %s" (head_of s))
            shared;
        processes =
          List.map
            (function
              | L [ Atom "process"; name; locals; code ] ->
                  {
                    Monitor.proc_name = atom name;
                    locals = locals_of_sexp locals;
                    code = pseq_of_sexp code;
                  }
              | s -> fail "expected (process ...), got %s" (head_of s))
            procs;
      }
  | s -> fail "expected (monitor-prog ...), got %s" (head_of s)

(* ---- ADA ---- *)

let rec astmt_to_sexp = function
  | Ada.ALocal (x, e) -> L [ Atom "local"; Atom x; expr_to_sexp e ]
  | Ada.AIf (g, a, b) -> L [ Atom "aif"; expr_to_sexp g; aseq_to_sexp a; aseq_to_sexp b ]
  | Ada.AWhile (g, body) -> L [ Atom "awhile"; expr_to_sexp g; aseq_to_sexp body ]
  | Ada.AMark { klass; params } ->
      L (Atom "mark" :: Atom klass :: List.map expr_to_sexp params)
  | Ada.ACall { task; entry; args; bind } ->
      L
        [
          Atom "call";
          Atom task;
          Atom entry;
          L (Atom "args" :: List.map expr_to_sexp args);
          bind_to_sexp bind;
        ]
  | Ada.AAccept a -> L [ Atom "accept"; accept_to_sexp a ]
  | Ada.ASelect bs ->
      L
        (Atom "select"
        :: List.map
             (fun (b : Ada.branch) ->
               L [ Atom "branch"; expr_to_sexp b.Ada.when_; accept_to_sexp b.Ada.accept ])
             bs)

and aseq_to_sexp ss = L (Atom "seq" :: List.map astmt_to_sexp ss)

and accept_to_sexp (a : Ada.accept) =
  L
    [
      Atom "acc";
      Atom a.Ada.acc_entry;
      L (Atom "formals" :: List.map (fun f -> Atom f) a.Ada.acc_formals);
      aseq_to_sexp a.Ada.acc_body;
      (match a.Ada.acc_result with
      | None -> L [ Atom "noresult" ]
      | Some e -> L [ Atom "result"; expr_to_sexp e ]);
    ]

let rec astmt_of_sexp = function
  | L [ Atom "local"; x; e ] -> Ada.ALocal (atom x, expr_of_sexp e)
  | L [ Atom "aif"; g; a; b ] ->
      Ada.AIf (expr_of_sexp g, aseq_of_sexp a, aseq_of_sexp b)
  | L [ Atom "awhile"; g; body ] -> Ada.AWhile (expr_of_sexp g, aseq_of_sexp body)
  | L (Atom "mark" :: klass :: params) ->
      Ada.AMark { klass = atom klass; params = List.map expr_of_sexp params }
  | L [ Atom "call"; task; entry; L (Atom "args" :: args); bind ] ->
      Ada.ACall
        {
          task = atom task;
          entry = atom entry;
          args = List.map expr_of_sexp args;
          bind = bind_of_sexp bind;
        }
  | L [ Atom "accept"; a ] -> Ada.AAccept (accept_of_sexp a)
  | L (Atom "select" :: bs) ->
      Ada.ASelect
        (List.map
           (function
             | L [ Atom "branch"; when_; accept ] ->
                 { Ada.when_ = expr_of_sexp when_; accept = accept_of_sexp accept }
             | s -> fail "expected (branch ...), got %s" (head_of s))
           bs)
  | s -> fail "unknown ADA statement form %s" (head_of s)

and aseq_of_sexp = function
  | L (Atom "seq" :: ss) -> List.map astmt_of_sexp ss
  | s -> fail "expected (seq ...), got %s" (head_of s)

and accept_of_sexp = function
  | L [ Atom "acc"; entry; L (Atom "formals" :: formals); body; result ] ->
      {
        Ada.acc_entry = atom entry;
        acc_formals = List.map atom formals;
        acc_body = aseq_of_sexp body;
        acc_result =
          (match result with
          | L [ Atom "noresult" ] -> None
          | L [ Atom "result"; e ] -> Some (expr_of_sexp e)
          | s -> fail "expected result, got %s" (head_of s));
      }
  | s -> fail "expected (acc ...), got %s" (head_of s)

let ada_to_sexp (prog : Ada.program) =
  L
    (Atom "ada"
    :: List.map
         (fun (t : Ada.task) ->
           L
             [
               Atom "task";
               Atom t.Ada.task_name;
               locals_to_sexp t.Ada.locals;
               aseq_to_sexp t.Ada.code;
             ])
         prog)

let ada_of_sexp = function
  | L (Atom "ada" :: tasks) ->
      List.map
        (function
          | L [ Atom "task"; name; locals; code ] ->
              {
                Ada.task_name = atom name;
                locals = locals_of_sexp locals;
                code = aseq_of_sexp code;
              }
          | s -> fail "expected (task ...), got %s" (head_of s))
        tasks
  | s -> fail "expected (ada ...), got %s" (head_of s)

(* ---- cases ---- *)

let format_version = 1

let prog_to_sexp = function
  | Case.P_csp p -> csp_to_sexp p
  | Case.P_monitor p -> monitor_to_sexp p
  | Case.P_ada p -> ada_to_sexp p

let prog_of_sexp s =
  match s with
  | L (Atom "csp" :: _) -> Case.P_csp (csp_of_sexp s)
  | L (Atom "monitor-prog" :: _) -> Case.P_monitor (monitor_of_sexp s)
  | L (Atom "ada" :: _) -> Case.P_ada (ada_of_sexp s)
  | s -> fail "unknown program form %s" (head_of s)

let encode (c : Case.t) =
  sexp_to_string
    (L
       [
         Atom "gemfuzz";
         Atom (string_of_int format_version);
         L [ Atom "case"; Atom c.Case.name; prog_to_sexp c.Case.prog ];
       ])
  ^ "\n"

let decode src =
  match parse_sexp src with
  | exception Parse_error m -> Error ("parse error: " ^ m)
  | L [ Atom "gemfuzz"; v; L [ Atom "case"; name; prog ] ] -> (
      match int_of_string_opt (match v with Atom a -> a | _ -> "") with
      | Some 1 -> (
          try Ok { Case.name = (match name with Atom a -> a | s -> atom s); prog = prog_of_sexp prog }
          with Decode_error m -> Error m)
      | Some v -> Error (Printf.sprintf "unsupported gemfuzz format version %d" v)
      | None -> Error "malformed version")
  | _ -> Error "expected (gemfuzz VERSION (case NAME PROGRAM))"

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let save ~dir (c : Case.t) =
  mkdir_p dir;
  let path = Filename.concat dir (c.Case.name ^ ".gemfuzz") in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (encode c));
  path

let load_file path =
  let ic = open_in path in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  decode src

let load_dir dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".gemfuzz")
    |> List.sort compare
    |> List.map (fun f -> (f, load_file (Filename.concat dir f)))
