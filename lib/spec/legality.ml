module Computation = Gem_model.Computation
module Event = Gem_model.Event
module Digraph = Gem_order.Digraph

type violation =
  | Cyclic_causality of int list
  | Self_enable of int
  | Undeclared_element of string
  | Undeclared_class of int
  | Bad_params of int
  | Access_violation of int * int

let pp_violation comp ppf v =
  let pe ppf h = Event.pp ppf (Computation.event comp h) in
  match v with
  | Cyclic_causality hs ->
      Format.fprintf ppf "causal cycle through %a"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " -> ") pe)
        hs
  | Self_enable h -> Format.fprintf ppf "event %a enables itself" pe h
  | Undeclared_element el -> Format.fprintf ppf "element %s not declared" el
  | Undeclared_class h ->
      Format.fprintf ppf "event %a: class not declared at its element" pe h
  | Bad_params h -> Format.fprintf ppf "event %a: parameters do not match schema" pe h
  | Access_violation (a, b) ->
      Format.fprintf ppf "enable %a |> %a violates group access" pe a pe b

(* One directed cycle's node list, via DFS with a gray stack. *)
let find_cycle g =
  let n = Digraph.size g in
  let color = Array.make n 0 in
  (* 0 white, 1 gray, 2 black *)
  let cycle = ref None in
  let rec dfs path v =
    if !cycle = None then begin
      color.(v) <- 1;
      List.iter
        (fun w ->
          if !cycle = None then
            if color.(w) = 1 then begin
              let rec upto acc = function
                | [] -> acc
                | x :: rest -> if x = w then x :: acc else upto (x :: acc) rest
              in
              cycle := Some (upto [] (v :: path))
            end
            else if color.(w) = 0 then dfs (v :: path) w)
        (Digraph.succs g v);
      color.(v) <- 2
    end
  in
  let v = ref 0 in
  while !cycle = None && !v < n do
    if color.(!v) = 0 then dfs [] !v;
    incr v
  done;
  !cycle

let check spec comp =
  let violations = ref [] in
  let push v = violations := v :: !violations in
  (* 1. Acyclicity. *)
  (match Computation.temporal comp with
  | Some _ -> ()
  | None -> (
      match find_cycle (Computation.causal_graph comp) with
      | Some c -> push (Cyclic_causality c)
      | None -> assert false));
  (* 2. Irreflexive enable. *)
  let enable = Computation.enable_graph comp in
  List.iter
    (fun h -> if Digraph.mem_edge enable h h then push (Self_enable h))
    (Computation.all_events comp);
  (* 3/4. Declared elements, classes, schemas. *)
  let undeclared = Hashtbl.create 4 in
  List.iter
    (fun h ->
      let e = Computation.event comp h in
      match Spec.element_type spec e.Event.id.element with
      | None ->
          if not (Hashtbl.mem undeclared e.Event.id.element) then begin
            Hashtbl.add undeclared e.Event.id.element ();
            push (Undeclared_element e.Event.id.element)
          end
      | Some ty -> (
          match Etype.event_decl ty e.Event.klass with
          | None -> push (Undeclared_class h)
          | Some decl -> if not (Etype.schema_ok decl e.Event.params) then push (Bad_params h)))
    (Computation.all_events comp);
  (* 5. Group access. *)
  let table = Spec.access_table spec in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let ea = Computation.event comp a and eb = Computation.event comp b in
          if
            not
              (Access.may_enable table ~from_element:ea.Event.id.element
                 ~to_element:eb.Event.id.element ~to_class:eb.Event.klass)
          then push (Access_violation (a, b)))
        (Computation.enable_succs comp a))
    (Computation.all_events comp);
  List.rev !violations

let is_legal spec comp = check spec comp = []
