module F = Gem_logic.Formula
module Value = Gem_model.Value

type ptype = P_int | P_bool | P_str | P_unit | P_any

type event_decl = { klass : string; schema : (string * ptype) list }

type t = {
  type_name : string;
  events : event_decl list;
  restrictions : (string * (string -> F.t)) list;
}

let make type_name ~events ?(restrictions = []) () = { type_name; events; restrictions }

let refine base ~name ?(add_events = []) ?(add_restrictions = []) () =
  List.iter
    (fun (d : event_decl) ->
      if List.exists (fun (d' : event_decl) -> String.equal d'.klass d.klass) base.events
      then invalid_arg ("Etype.refine: event class " ^ d.klass ^ " already declared"))
    add_events;
  {
    type_name = name;
    events = base.events @ add_events;
    restrictions = base.restrictions @ add_restrictions;
  }

let event_decl t klass =
  List.find_opt (fun (d : event_decl) -> String.equal d.klass klass) t.events

let declares t klass = event_decl t klass <> None

let param_ok pt (v : Value.t) =
  match pt, v with
  | P_any, _ -> true
  | P_int, Int _ -> true
  | P_bool, Bool _ -> true
  | P_str, Str _ -> true
  | P_unit, Unit -> true
  | (P_int | P_bool | P_str | P_unit), _ -> false

let schema_ok decl params =
  List.length decl.schema = List.length params
  && List.for_all2
       (fun (name, pt) (name', v) -> String.equal name name' && param_ok pt v)
       decl.schema params

(* The paper's Variable restriction (§8.2): a Getval must yield the value
   last assigned. Phrased contrapositively to match the paper: if [assign]
   is element-before [getval] with no intervening assignment, the values
   agree. *)
let getval_yields_last_assigned el =
  let open F in
  forall
    [ ("assign", Cls_at (el, "Assign")); ("getval", Cls_at (el, "Getval")) ]
    (elem_lt "assign" "getval"
     &&& neg
           (exists
              [ ("assign'", Cls_at (el, "Assign")) ]
              (elem_lt "assign" "assign'" &&& elem_lt "assign'" "getval"))
    ==> (param "assign" "newval" =. param "getval" "oldval"))

let variable =
  make "Variable"
    ~events:
      [
        { klass = "Assign"; schema = [ ("newval", P_any) ] };
        { klass = "Getval"; schema = [ ("oldval", P_any) ] };
      ]
    ~restrictions:[ ("getval-yields-last-assigned", getval_yields_last_assigned) ]
    ()

let integer_variable =
  {
    (refine variable ~name:"IntegerVariable" ()) with
    events =
      [
        { klass = "Assign"; schema = [ ("newval", P_int) ] };
        { klass = "Getval"; schema = [ ("oldval", P_int) ] };
      ];
  }

let pp_ptype ppf = function
  | P_int -> Format.fprintf ppf "INTEGER"
  | P_bool -> Format.fprintf ppf "BOOLEAN"
  | P_str -> Format.fprintf ppf "STRING"
  | P_unit -> Format.fprintf ppf "UNIT"
  | P_any -> Format.fprintf ppf "VALUE"

let pp ppf t =
  Format.fprintf ppf "@[<v 2>%s = ELEMENT TYPE@,EVENTS" t.type_name;
  List.iter
    (fun d ->
      Format.fprintf ppf "@,  %s(%a)" d.klass
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           (fun ppf (n, pt) -> Format.fprintf ppf "%s:%a" n pp_ptype pt))
        d.schema)
    t.events;
  if t.restrictions <> [] then begin
    Format.fprintf ppf "@,RESTRICTIONS";
    List.iter (fun (name, _) -> Format.fprintf ppf "@,  %s" name) t.restrictions
  end;
  Format.fprintf ppf "@,END %s@]" t.type_name
