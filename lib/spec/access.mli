(** Scope control via groups (paper §4 and footnote 4).

    [access(x, y)] holds iff there is a group [G] with [y] a direct member
    of [G] and [x] contained (transitively) in [G]. All elements and groups
    not placed in any declared group are treated as direct members of an
    implicit universal enclosing group, per the paper's convention.

    An event [e1 @ EL1] may enable [e2 @ EL2] (class [K2]) iff
    [access(EL1, EL2)], or [e2] is a port event of some group [G] with
    [access(EL1, G)]. *)

type t

type node = E of string | G of string
(** An element or group name. *)

val build : elements:string list -> groups:Gem_model.Group.t list -> t
(** Precomputes containment. Unknown member names are tolerated (they
    simply never grant access); duplicate group names raise
    [Invalid_argument]. *)

val contained : t -> node -> string -> bool
(** [contained t x g]: x is in group [g], directly or transitively.
    The universal group is named [""] internally and contains exactly the
    orphan nodes. *)

val access : t -> node -> node -> bool

val may_enable :
  t -> from_element:string -> to_element:string -> to_class:string -> bool

val pp : Format.formatter -> t -> unit
