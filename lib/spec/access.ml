module Group = Gem_model.Group

type node = E of string | G of string

let node_equal a b =
  match a, b with
  | E x, E y | G x, G y -> String.equal x y
  | E _, G _ | G _, E _ -> false

type t = {
  groups : (string * Group.t) list;  (* "" is the universal group *)
}

let member_node = function Group.Elem e -> E e | Group.Grp g -> G g

let build ~elements ~groups =
  let names = List.map (fun (g : Group.t) -> g.name) groups in
  let rec dup = function
    | [] -> None
    | n :: rest -> if List.exists (String.equal n) rest then Some n else dup rest
  in
  (match dup names with
  | Some n -> invalid_arg ("Access.build: duplicate group " ^ n)
  | None -> ());
  let in_some_group node =
    List.exists
      (fun (g : Group.t) -> List.exists (fun m -> node_equal (member_node m) node) g.members)
      groups
  in
  let orphans =
    List.filter_map
      (fun el -> if in_some_group (E el) then None else Some (Group.Elem el))
      elements
    @ List.filter_map
        (fun (g : Group.t) -> if in_some_group (G g.name) then None else Some (Group.Grp g.name))
        groups
  in
  let universal = Group.make "" orphans in
  { groups = ("", universal) :: List.map (fun (g : Group.t) -> (g.name, g)) groups }

let direct_member t node gname =
  match List.assoc_opt gname t.groups with
  | None -> false
  | Some g -> List.exists (fun m -> node_equal (member_node m) node) g.members

(* contained(x, G) = x in G directly, or some group G' containing x (as we
   recurse: x in G' and contained(G', G)). Guard against membership cycles. *)
let contained t node gname =
  let rec go node visiting =
    direct_member t node gname
    || List.exists
         (fun (g', _) ->
           (not (List.mem g' visiting))
           && (not (String.equal g' gname))
           && direct_member t node g'
           && go (G g') (g' :: visiting))
         t.groups
  in
  go node []

let access t x y =
  List.exists (fun (gname, _) -> direct_member t y gname && contained t x gname) t.groups

(* Same-element enabling needs no special case: every element sits in some
   group (at worst the universal one), so access(EL, EL) always holds. *)
let may_enable t ~from_element ~to_element ~to_class =
  access t (E from_element) (E to_element)
  || List.exists
       (fun (gname, g) ->
         (not (String.equal gname ""))
         && Group.is_port g ~element:to_element ~klass:to_class
         && access t (E from_element) (G gname))
       t.groups

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (name, g) ->
      if String.equal name "" then Format.fprintf ppf "UNIVERSAL: %a@," Group.pp g
      else Format.fprintf ppf "%a@," Group.pp g)
    t.groups;
  Format.fprintf ppf "@]"
