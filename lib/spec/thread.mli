(** GEM threads (paper §8.3): named chains of enabled events matching a
    path-expression-like pattern.

    A thread definition gives a pattern over eventclass descriptors; a
    fresh instance identifier is created at every event matching the start
    of the pattern, and the identifier is passed along enable edges as long
    as successive events match the pattern in order. Labelled events can
    then be related by the [Same_thread]/[Distinct_thread] predicates.

    Patterns are the path-expression subset the paper's examples need,
    plus alternation and iteration: [Step d], [Seq], [Alt], [Opt], [Star]. *)

type pat =
  | Step of Gem_logic.Formula.domain
  | Seq of pat list
  | Alt of pat list
  | Opt of pat
  | Star of pat

type def = { thread_name : string; pattern : pat }

val def : string -> pat -> def

val seq_of_domains : Gem_logic.Formula.domain list -> pat
(** The common linear form [(A :: B :: C)]. *)

val label : Gem_model.Computation.t -> def list -> Gem_model.Computation.t
(** Returns the computation with thread labels attached to events.
    Processing visits events in a topological order of the causal graph
    (requires an acyclic computation): an event extends an instance when an
    enable-predecessor carries that instance at a pattern position from
    which the event can continue; otherwise, if it matches the pattern's
    start, it founds a new instance. Instance numbers are dense per
    definition, in founding order. *)

val instances : Gem_model.Computation.t -> string -> int list
(** Instance numbers of a thread type present in a labelled computation. *)

val events_of_instance : Gem_model.Computation.t -> string -> int -> int list
(** Handles carrying the given instance, ascending. *)
