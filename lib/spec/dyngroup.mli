(** Dynamic group structures (paper §4, footnote 5: "Computations grow
    monotonically, even in the presence of dynamic group structures. This
    is because changes to group structure are represented as events.").

    Structure changes are ordinary GEM events at a designated sequential
    element (default ["structure"]), so they are totally ordered and every
    other event [e] has a well-defined set of structure events temporally
    before it — the group table in effect "when [e] occurs", independent of
    the run chosen. Declared classes:

    - [NewGroup(name)] — create an empty group;
    - [DeleteGroup(name)] — remove a group (its members become orphans);
    - [AddElem(group, element)] / [AddGroup(group, member)] — add a member;
    - [RemoveElem(group, element)] / [RemoveGroup(group, member)];
    - [AddPort(group, element, class)] — declare a port event.

    {!check} replays these changes along the temporal order and verifies
    every enable edge against the group table in effect at its target —
    the dynamic counterpart of {!Legality}'s access check. *)

val structure_element : string
(** ["structure"]. *)

val etype : Etype.t
(** The element type declaring the six structure-change classes. *)

val groups_before :
  base:Gem_model.Group.t list ->
  Gem_model.Computation.t ->
  int ->
  Gem_model.Group.t list
(** The group table in effect for event [h]: the base groups with every
    structure-change event temporally before [h] applied, in structure
    element order. Changes naming unknown groups are ignored (they never
    grant access). Requires an acyclic computation. *)

val check_access :
  Spec.t -> Gem_model.Computation.t -> (int * int) list
(** Enable edges forbidden by the group table in effect at their target
    event. The spec's static groups are the base table; the computation's
    structure events modify it. Edges {e from} the structure element are
    exempt — structure changes are administrative meta-events that may
    order anything. An empty list means dynamically legal. *)
