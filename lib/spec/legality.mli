(** The built-in GEM legality restrictions (paper §3, §5) — "automatically
    part of any GEM specification".

    A computation is structurally legal with respect to a specification iff
    - the causal graph (enable relation together with the element order) is
      acyclic, so the temporal order is a strict partial order equal to
      their transitive closure minus identity;
    - every event occurs at an element declared by the specification
      (events occur at exactly one element by construction — identity is
      element + occurrence index);
    - every event's class is declared by its element's type, with
      parameters matching the declared schema;
    - every enable edge respects the group access rules (including ports);
    - the enable relation is irreflexive (guaranteed by {!Build}, but
      re-checked here since computations can come from anywhere).

    Totality of the element order at each element and downward closure of
    histories are structural invariants of the representation and need no
    runtime check. *)

type violation =
  | Cyclic_causality of int list
      (** Handles on a causal cycle (witness: one cycle's nodes). *)
  | Self_enable of int
  | Undeclared_element of string
  | Undeclared_class of int  (** Event whose class its element doesn't declare. *)
  | Bad_params of int
  | Access_violation of int * int  (** Enable edge forbidden by the groups. *)

val pp_violation :
  Gem_model.Computation.t -> Format.formatter -> violation -> unit

val check : Spec.t -> Gem_model.Computation.t -> violation list
(** All violations, deterministically ordered. *)

val is_legal : Spec.t -> Gem_model.Computation.t -> bool
