module Computation = Gem_model.Computation
module Event = Gem_model.Event
module Group = Gem_model.Group
module V = Gem_model.Value

let structure_element = "structure"

let etype =
  Etype.make "GroupStructure"
    ~events:
      [
        { Etype.klass = "NewGroup"; schema = [ ("name", Etype.P_str) ] };
        { klass = "DeleteGroup"; schema = [ ("name", Etype.P_str) ] };
        {
          klass = "AddElem";
          schema = [ ("group", Etype.P_str); ("element", Etype.P_str) ];
        };
        { klass = "AddGroup"; schema = [ ("group", Etype.P_str); ("member", Etype.P_str) ] };
        {
          klass = "RemoveElem";
          schema = [ ("group", Etype.P_str); ("element", Etype.P_str) ];
        };
        {
          klass = "RemoveGroup";
          schema = [ ("group", Etype.P_str); ("member", Etype.P_str) ];
        };
        {
          klass = "AddPort";
          schema =
            [ ("group", Etype.P_str); ("element", Etype.P_str); ("class", Etype.P_str) ];
        };
      ]
    ()

let str e name = V.as_string (Event.param e name)

let apply groups e =
  let update name f =
    List.map (fun (g : Group.t) -> if String.equal g.name name then f g else g) groups
  in
  match e.Event.klass with
  | "NewGroup" ->
      let name = str e "name" in
      if List.exists (fun (g : Group.t) -> String.equal g.name name) groups then groups
      else Group.make name [] :: groups
  | "DeleteGroup" ->
      let name = str e "name" in
      List.filter (fun (g : Group.t) -> not (String.equal g.name name)) groups
  | "AddElem" ->
      update (str e "group") (fun g ->
          { g with members = Group.Elem (str e "element") :: g.members })
  | "AddGroup" ->
      update (str e "group") (fun g ->
          { g with members = Group.Grp (str e "member") :: g.members })
  | "RemoveElem" ->
      update (str e "group") (fun g ->
          {
            g with
            members =
              List.filter
                (fun m -> not (Group.member_equal m (Group.Elem (str e "element"))))
                g.members;
          })
  | "RemoveGroup" ->
      update (str e "group") (fun g ->
          {
            g with
            members =
              List.filter
                (fun m -> not (Group.member_equal m (Group.Grp (str e "member"))))
                g.members;
          })
  | "AddPort" ->
      update (str e "group") (fun g ->
          {
            g with
            ports =
              { Group.port_element = str e "element"; port_class = str e "class" }
              :: g.ports;
          })
  | _ -> groups

let structure_events comp =
  List.filter
    (fun h ->
      String.equal (Computation.event comp h).Event.id.element structure_element)
    (Computation.all_events comp)

let groups_before ~base comp h =
  let poset = Computation.temporal_exn comp in
  List.fold_left
    (fun groups s ->
      if Gem_order.Poset.lt poset s h then apply groups (Computation.event comp s)
      else groups)
    base (structure_events comp)

let check_access spec comp =
  let base = spec.Spec.groups in
  let bad = ref [] in
  List.iter
    (fun a ->
      if
        String.equal (Computation.event comp a).Event.id.element structure_element
      then () (* administrative meta-events may order anything *)
      else
      List.iter
        (fun b ->
          let groups = groups_before ~base comp b in
          let table =
            Access.build ~elements:(Spec.declared_elements spec) ~groups
          in
          let ea = Computation.event comp a and eb = Computation.event comp b in
          if
            not
              (Access.may_enable table ~from_element:ea.Event.id.element
                 ~to_element:eb.Event.id.element ~to_class:eb.Event.klass)
          then bad := (a, b) :: !bad)
        (Computation.enable_succs comp a))
    (Computation.all_events comp);
  List.rev !bad
