(** GEM specifications (paper §3): element instances, groups, explicit
    restrictions, and thread definitions, bundled.

    A specification admits the computations that (a) pass the built-in
    legality restrictions ({!Legality}) and (b) satisfy every explicit
    restriction — that check lives in [Gem_check], which also needs
    checking strategies; this module is the passive description.

    Group {e types} (paper §6) need no dedicated machinery: a group type is
    an OCaml function returning a specification fragment ("semantically,
    the GEM type system may be viewed as a simple text substitution
    facility"); fragments compose with {!merge}. *)

type t = {
  spec_name : string;
  elements : (string * Etype.t) list;  (** (element name, its type). *)
  groups : Gem_model.Group.t list;
  restrictions : (string * Gem_logic.Formula.t) list;
      (** Named explicit restrictions, already instantiated. *)
  threads : Thread.def list;
}

val make :
  string ->
  ?elements:(string * Etype.t) list ->
  ?groups:Gem_model.Group.t list ->
  ?restrictions:(string * Gem_logic.Formula.t) list ->
  ?threads:Thread.def list ->
  unit ->
  t
(** Raises [Invalid_argument] on duplicate element names. *)

val merge : string -> t list -> t
(** Union of fragments under a new name. Duplicate element names must
    agree on their type name; duplicate group or restriction names raise
    [Invalid_argument]. *)

val element_type : t -> string -> Etype.t option

val declared_elements : t -> string list

val access_table : t -> Access.t

val type_restrictions : t -> (string * Gem_logic.Formula.t) list
(** Element-type restriction templates instantiated per element:
    ["El.restriction-name"]. *)

val all_restrictions : t -> (string * Gem_logic.Formula.t) list
(** Type restrictions followed by explicit restrictions. *)

val label_threads : t -> Gem_model.Computation.t -> Gem_model.Computation.t
(** Attach this spec's thread labels to a computation. *)

val restriction_count : t -> int

val pp : Format.formatter -> t -> unit
