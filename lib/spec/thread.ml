module F = Gem_logic.Formula
module Computation = Gem_model.Computation
module Event = Gem_model.Event
module Digraph = Gem_order.Digraph

type pat =
  | Step of F.domain
  | Seq of pat list
  | Alt of pat list
  | Opt of pat
  | Star of pat

type def = { thread_name : string; pattern : pat }

let def thread_name pattern = { thread_name; pattern }

let seq_of_domains ds = Seq (List.map (fun d -> Step d) ds)

(* Thompson-style NFA: integer states, epsilon edges, domain-labelled
   edges. State 0 is the start. *)
type nfa = {
  mutable n_states : int;
  mutable eps : (int * int) list;
  mutable moves : (int * F.domain * int) list;
}

let compile pat =
  let nfa = { n_states = 1; eps = []; moves = [] } in
  let fresh () =
    let s = nfa.n_states in
    nfa.n_states <- s + 1;
    s
  in
  (* build returns the accepting state of the fragment started at [entry]. *)
  let rec build entry = function
    | Step d ->
        let exit = fresh () in
        nfa.moves <- (entry, d, exit) :: nfa.moves;
        exit
    | Seq ps -> List.fold_left build entry ps
    | Alt ps ->
        let exit = fresh () in
        List.iter
          (fun p ->
            let s = fresh () in
            nfa.eps <- (entry, s) :: nfa.eps;
            let e = build s p in
            nfa.eps <- (e, exit) :: nfa.eps)
          ps;
        exit
    | Opt p ->
        let exit = build entry p in
        nfa.eps <- (entry, exit) :: nfa.eps;
        exit
    | Star p ->
        (* Exit via the fragment's own accepting state [e]: entry -eps-> e
           covers zero iterations, e -eps-> s re-enters for repetition. *)
        let s = fresh () in
        nfa.eps <- (entry, s) :: nfa.eps;
        let e = build s p in
        nfa.eps <- (e, s) :: nfa.eps;
        nfa.eps <- (entry, e) :: nfa.eps;
        e
  in
  let _accept = build 0 pat in
  nfa

module Iset = Set.Make (Int)

let eps_closure nfa states =
  let rec grow states =
    let states' =
      List.fold_left
        (fun acc (a, b) -> if Iset.mem a acc then Iset.add b acc else acc)
        states nfa.eps
    in
    if Iset.equal states states' then states else grow states'
  in
  grow states

(* States reachable from [states] by consuming an event matching via
   [matches]. *)
let step nfa comp states h =
  let after =
    List.fold_left
      (fun acc (a, d, b) ->
        if Iset.mem a states && Gem_logic.Eval.matches_domain comp h d then Iset.add b acc
        else acc)
      Iset.empty nfa.moves
  in
  if Iset.is_empty after then None else Some (eps_closure nfa after)

let label comp defs =
  let n = Computation.n_events comp in
  let order =
    match Digraph.topological_sort (Computation.causal_graph comp) with
    | Some o -> o
    | None -> invalid_arg "Thread.label: cyclic computation"
  in
  (* labels.(h) = (def name, instance, nfa state set) list *)
  let labels : (string * int * Iset.t) list array = Array.make n [] in
  List.iter
    (fun d ->
      let nfa = compile d.pattern in
      let start = eps_closure nfa (Iset.singleton 0) in
      let next_instance = ref 0 in
      List.iter
        (fun h ->
          (* Continuations: extend instances carried by enable-predecessors. *)
          let continued = ref [] in
          List.iter
            (fun p ->
              List.iter
                (fun (dn, inst, states) ->
                  if String.equal dn d.thread_name then
                    match step nfa comp states h with
                    | Some states' ->
                        if not (List.exists (fun (_, i, _) -> i = inst) !continued)
                        then continued := (dn, inst, states') :: !continued
                    | None -> ())
                labels.(p))
            (Computation.enable_preds comp h);
          if !continued <> [] then labels.(h) <- !continued @ labels.(h)
          else
            (* Roots: found a new instance at pattern start. *)
            match step nfa comp start h with
            | Some states' ->
                let inst = !next_instance in
                incr next_instance;
                labels.(h) <- (d.thread_name, inst, states') :: labels.(h)
            | None -> ())
        order)
    defs;
  Computation.map_events
    (fun h e ->
      List.fold_left (fun e (dn, inst, _) -> Event.with_thread e dn inst) e labels.(h))
    comp

let instances comp name =
  let module S = Set.Make (Int) in
  let s =
    List.fold_left
      (fun acc h ->
        match Event.thread_instance (Computation.event comp h) name with
        | Some i -> S.add i acc
        | None -> acc)
      S.empty (Computation.all_events comp)
  in
  S.elements s

let events_of_instance comp name inst =
  List.filter
    (fun h -> Event.thread_instance (Computation.event comp h) name = Some inst)
    (Computation.all_events comp)
