(** Restriction abbreviations (paper §8.2) — common computational patterns
    packaged as formula generators.

    Each function returns a closed {!Gem_logic.Formula.t}; generated bound
    variables are prefixed with ['_'] to avoid clashing with user variables. *)

open Gem_logic

val prerequisite : Formula.domain -> Formula.domain -> Formula.t
(** [E1 --> E2]: every occurred E2-event is enabled by exactly one E1-event,
    and each E1-event enables at most one E2-event. *)

val chain : Formula.domain list -> Formula.t
(** [E1 --> E2 --> ... --> En] as a conjunction of adjacent prerequisites —
    the paper's sequential-code pattern. *)

val nondet_prerequisite : Formula.domain list -> Formula.domain -> Formula.t
(** [{E1,...,Ek} --> E]: every occurred E-event is enabled by exactly one
    event drawn from the union, and each union event enables at most one
    E-event. *)

val fork : Formula.domain -> Formula.domain list -> Formula.t
(** Event FORK: [E --> Ei] for each [Ei] in the set. *)

val join : Formula.domain list -> Formula.domain -> Formula.t
(** Event JOIN: [Ei --> E] for each [Ei]. *)

val message_passing :
  send:Formula.domain ->
  receive:Formula.domain ->
  send_param:string ->
  receive_param:string ->
  Formula.t
(** If a send enables a receive, their data parameters are equal (§5). *)

val mutex :
  thread:string ->
  start1:Formula.domain ->
  finish1:Formula.domain ->
  start2:Formula.domain ->
  finish2:Formula.domain ->
  Formula.t
(** Intervals [start1..finish1] and [start2..finish2] belonging to distinct
    instances of [thread] never overlap: henceforth, it is not the case
    that both a started-and-unfinished interval of the first kind and one
    of the second kind (from a different thread instance) exist. Matches
    the paper's Mutual Exclusion Restriction shape (§8.3). *)

val priority :
  thread:string ->
  req_hi:Formula.domain ->
  start_hi:Formula.domain ->
  req_lo:Formula.domain ->
  start_lo:Formula.domain ->
  Formula.t
(** The paper's priority pattern (§8.3): henceforth, if a high-priority
    request is pending (has not yet led to its start) while a low-priority
    request of a different thread instance is also pending, then the
    low-priority start does not happen before the high-priority start —
    [occurred(start_lo) => occurred(start_hi)] from that point on, for the
    pending pair. *)
