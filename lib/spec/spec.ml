module Group = Gem_model.Group

type t = {
  spec_name : string;
  elements : (string * Etype.t) list;
  groups : Group.t list;
  restrictions : (string * Gem_logic.Formula.t) list;
  threads : Thread.def list;
}

let check_dup_elements elements =
  let rec loop = function
    | [] -> ()
    | (name, _) :: rest ->
        if List.mem_assoc name rest then
          invalid_arg ("Spec: duplicate element " ^ name);
        loop rest
  in
  loop elements

let make spec_name ?(elements = []) ?(groups = []) ?(restrictions = []) ?(threads = [])
    () =
  check_dup_elements elements;
  { spec_name; elements; groups; restrictions; threads }

let merge spec_name fragments =
  let elements =
    List.concat_map (fun f -> f.elements) fragments
    |> List.fold_left
         (fun acc (name, ty) ->
           match List.assoc_opt name acc with
           | None -> (name, ty) :: acc
           | Some ty' ->
               if String.equal ty'.Etype.type_name ty.Etype.type_name then acc
               else
                 invalid_arg
                   ("Spec.merge: element " ^ name ^ " declared with two types"))
         []
    |> List.rev
  in
  let groups = List.concat_map (fun f -> f.groups) fragments in
  let rec dup_group = function
    | [] -> ()
    | (g : Group.t) :: rest ->
        if List.exists (fun (g' : Group.t) -> String.equal g'.name g.name) rest then
          invalid_arg ("Spec.merge: duplicate group " ^ g.name);
        dup_group rest
  in
  dup_group groups;
  let restrictions = List.concat_map (fun f -> f.restrictions) fragments in
  let rec dup_restr = function
    | [] -> ()
    | (name, _) :: rest ->
        if List.mem_assoc name rest then
          invalid_arg ("Spec.merge: duplicate restriction " ^ name);
        dup_restr rest
  in
  dup_restr restrictions;
  let threads = List.concat_map (fun f -> f.threads) fragments in
  { spec_name; elements; groups; restrictions; threads }

let element_type t name = List.assoc_opt name t.elements

let declared_elements t = List.map fst t.elements

let access_table t = Access.build ~elements:(declared_elements t) ~groups:t.groups

let type_restrictions t =
  List.concat_map
    (fun (el, ty) ->
      List.map
        (fun (rname, template) -> (el ^ "." ^ rname, template el))
        ty.Etype.restrictions)
    t.elements

let all_restrictions t = type_restrictions t @ t.restrictions

let label_threads t comp = Thread.label comp t.threads

let restriction_count t = List.length (all_restrictions t)

let pp ppf t =
  Format.fprintf ppf "@[<v 2>SPECIFICATION %s" t.spec_name;
  List.iter
    (fun (el, ty) -> Format.fprintf ppf "@,%s = %s ELEMENT" el ty.Etype.type_name)
    t.elements;
  List.iter (fun g -> Format.fprintf ppf "@,%a" Group.pp g) t.groups;
  if t.restrictions <> [] then begin
    Format.fprintf ppf "@,RESTRICTIONS";
    List.iter
      (fun (name, f) ->
        Format.fprintf ppf "@,  @[<hov 2>%s:@ %a@]" name Gem_logic.Formula.pp f)
      t.restrictions
  end;
  List.iter (fun d -> Format.fprintf ppf "@,THREAD %s" d.Thread.thread_name) t.threads;
  Format.fprintf ppf "@]"
