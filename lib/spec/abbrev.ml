open Gem_logic.Formula

let prerequisite e1 e2 =
  conj
    [
      forall
        [ ("_e2", e2) ]
        (occurred "_e2" ==> exists1 "_e1" e1 (enables "_e1" "_e2"));
      forall [ ("_e1", e1) ] (at_most_one "_e2" e2 (enables "_e1" "_e2"));
    ]

let chain domains =
  let rec pairs = function
    | a :: (b :: _ as rest) -> prerequisite a b :: pairs rest
    | [ _ ] | [] -> []
  in
  conj (pairs domains)

let nondet_prerequisite sources target =
  let union = Union sources in
  conj
    [
      forall
        [ ("_e", target) ]
        (occurred "_e" ==> exists1 "_e'" union (enables "_e'" "_e"));
      forall [ ("_e'", union) ] (at_most_one "_e" target (enables "_e'" "_e"));
    ]

let fork source targets = conj (List.map (fun t -> prerequisite source t) targets)

let join sources target = conj (List.map (fun s -> prerequisite s target) sources)

let message_passing ~send ~receive ~send_param ~receive_param =
  forall
    [ ("_s", send); ("_r", receive) ]
    (enables "_s" "_r" ==> (param "_s" send_param =. param "_r" receive_param))

(* started-and-unfinished: the start occurred but no finish of the same
   thread instance has. *)
let in_progress th start_var finish_dom =
  occurred start_var
  &&& neg
        (exists
           [ ("_f", finish_dom) ]
           (same_thread th start_var "_f" &&& occurred "_f"))

let mutex ~thread ~start1 ~finish1 ~start2 ~finish2 =
  henceforth
    (forall
       [ ("_s1", start1); ("_s2", start2) ]
       (distinct_thread thread "_s1" "_s2"
        ==> neg
              (in_progress thread "_s1" finish1 &&& in_progress thread "_s2" finish2)))

let priority ~thread ~req_hi ~start_hi ~req_lo ~start_lo =
  henceforth
    (forall
       [ ("_rh", req_hi); ("_rl", req_lo) ]
       (at_cls "_rh" start_hi
        &&& at_cls "_rl" start_lo
        &&& distinct_thread thread "_rh" "_rl"
        ==> henceforth
              (forall
                 [ ("_sl", start_lo) ]
                 (same_thread thread "_rl" "_sl" &&& occurred "_sl"
                  ==> exists
                        [ ("_sh", start_hi) ]
                        (same_thread thread "_rh" "_sh" &&& occurred "_sh")))))
