(** Element type descriptions (paper §6).

    An element type declares the event classes that may occur at elements
    of that type, each with a parameter schema, plus restriction templates.
    GEM's type system is "a simple text substitution facility": a
    restriction template is a function of the instance's element name, so
    instantiating [Var = IntegerVariable ELEMENT] substitutes ["Var"] into
    the template — the OCaml closure {e is} the substitution.

    Refinement ([TypedVariable = Variable ELEMENT TYPE / ADD RESTRICTION
    ...]) is expressed by {!refine}, which extends the event and
    restriction lists of a base type. *)

type ptype = P_int | P_bool | P_str | P_unit | P_any

type event_decl = { klass : string; schema : (string * ptype) list }

type t = {
  type_name : string;
  events : event_decl list;
  restrictions : (string * (string -> Gem_logic.Formula.t)) list;
      (** (restriction name, template over the instance element name). *)
}

val make :
  string ->
  events:event_decl list ->
  ?restrictions:(string * (string -> Gem_logic.Formula.t)) list ->
  unit ->
  t

val refine :
  t ->
  name:string ->
  ?add_events:event_decl list ->
  ?add_restrictions:(string * (string -> Gem_logic.Formula.t)) list ->
  unit ->
  t
(** The refined type has the base's events and restrictions plus the
    additions. Raises [Invalid_argument] if an added event class clashes
    with a declared one. *)

val event_decl : t -> string -> event_decl option

val declares : t -> string -> bool
(** Does the type declare the event class? *)

val param_ok : ptype -> Gem_model.Value.t -> bool

val schema_ok : event_decl -> (string * Gem_model.Value.t) list -> bool
(** Parameters match the declaration: same names in the same order, each
    value of the declared type. *)

(** {1 Stock types from the paper} *)

val variable : t
(** The paper's generic [Variable]: [Assign(newval)], [Getval(oldval)],
    with the "a Getval yields the value last assigned" restriction (§8.2)
    and the convention that a Getval before any Assign is unconstrained. *)

val integer_variable : t
(** [TypedVariable(INTEGER)] per §6. *)

val pp : Format.formatter -> t -> unit
