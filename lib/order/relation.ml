module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (X : ORDERED) = struct
  type elt = X.t

  module Pair = struct
    type t = elt * elt

    let compare (a1, b1) (a2, b2) =
      match X.compare a1 a2 with 0 -> X.compare b1 b2 | c -> c
  end

  module Pairs = Set.Make (Pair)
  module Elts = Set.Make (X)

  type t = Pairs.t

  let empty = Pairs.empty
  let add a b r = Pairs.add (a, b) r
  let mem a b r = Pairs.mem (a, b) r
  let of_list l = Pairs.of_list l
  let to_list r = Pairs.elements r
  let cardinal = Pairs.cardinal
  let union = Pairs.union
  let inverse r = Pairs.fold (fun (a, b) acc -> Pairs.add (b, a) acc) r Pairs.empty

  let successors a r =
    Pairs.fold (fun (x, y) acc -> if X.compare x a = 0 then y :: acc else acc) r []
    |> List.rev

  let compose r s =
    Pairs.fold
      (fun (a, b) acc ->
        List.fold_left (fun acc c -> Pairs.add (a, c) acc) acc (successors b s))
      r Pairs.empty

  let domain r =
    Elts.elements (Pairs.fold (fun (a, _) acc -> Elts.add a acc) r Elts.empty)

  let range r =
    Elts.elements (Pairs.fold (fun (_, b) acc -> Elts.add b acc) r Elts.empty)

  let rec transitive_closure r =
    let r' = Pairs.union r (compose r r) in
    if Pairs.equal r r' then r else transitive_closure r'

  let reflexive_over xs =
    List.fold_left (fun acc x -> Pairs.add (x, x) acc) Pairs.empty xs

  let is_irreflexive r = Pairs.for_all (fun (a, b) -> X.compare a b <> 0) r
  let is_transitive r = Pairs.subset (compose r r) r

  let is_antisymmetric r =
    Pairs.for_all (fun (a, b) -> X.compare a b = 0 || not (Pairs.mem (b, a) r)) r

  let is_strict_order r = is_irreflexive r && is_transitive r

  let restrict p r = Pairs.filter (fun (a, b) -> p a && p b) r

  let map f r = Pairs.fold (fun (a, b) acc -> Pairs.add (f a, f b) acc) r Pairs.empty

  let equal = Pairs.equal
  let subrelation = Pairs.subset
end
