(** Strict partial orders on the universe [0 .. size-1], represented by
    their full reachability matrix.

    GEM's temporal order [e1 => e2] is a strict partial order obtained as the
    transitive closure of the enable relation and the element order; this
    module hosts that closure and answers the order-theoretic queries the
    logic layer needs (precedence, potential concurrency, down-sets for
    histories, antichains for valid-history-sequence steps). *)

type t

val of_digraph : Digraph.t -> t option
(** Transitive closure of the edge set; [None] if that closure would be
    reflexive anywhere (i.e. the graph has a cycle), since a strict order
    must be irreflexive. *)

val of_digraph_exn : Digraph.t -> t
(** Raises [Invalid_argument] on cyclic input. *)

val size : t -> int

val lt : t -> int -> int -> bool
(** [lt p a b] iff [a] strictly precedes [b]. *)

val leq : t -> int -> int -> bool

val concurrent : t -> int -> int -> bool
(** Neither [lt p a b] nor [lt p b a] nor [a = b] — the paper's "potentially
    concurrent" / "no observable order". *)

val comparable : t -> int -> int -> bool

val covers : t -> (int * int) list
(** The covering pairs (transitive reduction of the order). *)

val down_set : t -> int -> Bitset.t
(** Strict predecessors of a node. *)

val up_set : t -> int -> Bitset.t

val down_closure : t -> Bitset.t -> Bitset.t
(** [down_closure p s] is [s] together with every predecessor of a member —
    the smallest history containing [s]. *)

val is_down_closed : t -> Bitset.t -> bool

val minimal_of : t -> Bitset.t -> Bitset.t
(** Members of [s] with no strict predecessor inside [s]. *)

val maximal_of : t -> Bitset.t -> Bitset.t

val is_antichain : t -> Bitset.t -> bool
(** True iff members of [s] are pairwise concurrent. *)

val is_chain : t -> Bitset.t -> bool

val height : t -> int
(** Length (in nodes) of a longest chain; 0 for the empty poset. *)

val width_lower_bound : t -> int
(** Size of the largest antichain found greedily layer-by-layer; exact on
    graded posets and a lower bound in general (documented, cheap). *)

val width : t -> int
(** Exact width (size of a maximum antichain), by Dilworth's theorem via
    Mirsky/Fulkerson: a minimum chain cover of the order equals the
    maximum antichain, computed as [n - maximum matching] in the bipartite
    comparability graph (Hopcroft-Karp-style augmenting paths). O(n^3)
    worst case; fine at checker scales. *)

val max_antichain : t -> int list
(** A maximum antichain (a witness for {!width}), recovered from the
    matching by the Koenig vertex-cover construction. Elements in
    increasing order. *)

val linear_extensions : ?limit:int -> t -> int list list
(** All total orders extending the order, each as a node list. Stops after
    [limit] extensions when given (default: unbounded). Singleton [[[]]] for
    the empty poset. *)

val count_linear_extensions : ?cap:int -> t -> int
(** Number of linear extensions, computed by dynamic programming over
    down-closed subsets; stops and returns [cap] when the count reaches
    [cap] (default [max_int]). *)

val to_digraph : t -> Digraph.t
(** The full strict-order relation as a graph (all pairs, not just covers). *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
