type t = { n : int; adj : Bitset.t array }

let create n =
  if n < 0 then invalid_arg "Digraph.create";
  { n; adj = Array.init n (fun _ -> Bitset.create n) }

let size g = g.n

let check g v = if v < 0 || v >= g.n then invalid_arg "Digraph: node out of range"

let add_edge g u v =
  check g u;
  check g v;
  Bitset.add g.adj.(u) v

let mem_edge g u v =
  check g u;
  check g v;
  Bitset.mem g.adj.(u) v

let succs g u =
  check g u;
  Bitset.elements g.adj.(u)

let preds g v =
  check g v;
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    if Bitset.mem g.adj.(u) v then acc := u :: !acc
  done;
  !acc

let edges g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    List.iter (fun v -> acc := (u, v) :: !acc) (List.rev (succs g u))
  done;
  (* Built backwards twice: restore lexicographic order. *)
  List.sort compare !acc

let nb_edges g =
  let total = ref 0 in
  Array.iter (fun row -> total := !total + Bitset.cardinal row) g.adj;
  !total

let of_edges n es =
  let g = create n in
  List.iter (fun (u, v) -> add_edge g u v) es;
  g

let copy g = { n = g.n; adj = Array.map Bitset.copy g.adj }

let union a b =
  if a.n <> b.n then invalid_arg "Digraph.union: size mismatch";
  { n = a.n; adj = Array.init a.n (fun u -> Bitset.union a.adj.(u) b.adj.(u)) }

let transpose g =
  let t = create g.n in
  for u = 0 to g.n - 1 do
    Bitset.iter (fun v -> add_edge t v u) g.adj.(u)
  done;
  t

let in_degrees g =
  let deg = Array.make g.n 0 in
  Array.iter (fun row -> Bitset.iter (fun v -> deg.(v) <- deg.(v) + 1) row) g.adj;
  deg

(* Kahn's algorithm with a smallest-first ready heap (a sorted module on
   int lists would be quadratic; a simple priority queue via module Set). *)
module Iset = Set.Make (Int)

let topological_sort g =
  let deg = in_degrees g in
  let ready = ref Iset.empty in
  for v = 0 to g.n - 1 do
    if deg.(v) = 0 then ready := Iset.add v !ready
  done;
  let rec loop acc seen =
    match Iset.min_elt_opt !ready with
    | None -> if seen = g.n then Some (List.rev acc) else None
    | Some v ->
        ready := Iset.remove v !ready;
        Bitset.iter
          (fun w ->
            deg.(w) <- deg.(w) - 1;
            if deg.(w) = 0 then ready := Iset.add w !ready)
          g.adj.(v);
        loop (v :: acc) (seen + 1)
  in
  loop [] 0

let has_cycle g = topological_sort g = None

let reachable g v =
  check g v;
  let seen = Bitset.create g.n in
  let stack = ref (Bitset.elements g.adj.(v)) in
  let rec loop () =
    match !stack with
    | [] -> ()
    | u :: rest ->
        stack := rest;
        if not (Bitset.mem seen u) then begin
          Bitset.add seen u;
          Bitset.iter (fun w -> if not (Bitset.mem seen w) then stack := w :: !stack) g.adj.(u)
        end;
        loop ()
  in
  loop ();
  seen

let transitive_closure ?(reflexive = false) g =
  (* Process nodes so that, on DAGs, each row is finished before it is
     consumed; on cyclic graphs fall back to per-node DFS. *)
  match topological_sort g with
  | Some order ->
      let closure = create g.n in
      List.iter
        (fun u ->
          Bitset.iter
            (fun v ->
              Bitset.add closure.adj.(u) v;
              Bitset.union_into closure.adj.(u) closure.adj.(v))
            g.adj.(u))
        (List.rev order);
      if reflexive then
        for v = 0 to g.n - 1 do
          Bitset.add closure.adj.(v) v
        done;
      closure
  | None ->
      let closure = { n = g.n; adj = Array.init g.n (fun v -> reachable g v) } in
      if reflexive then
        for v = 0 to g.n - 1 do
          Bitset.add closure.adj.(v) v
        done;
      closure

let transitive_reduction g =
  if has_cycle g then invalid_arg "Digraph.transitive_reduction: cyclic graph";
  let closure = transitive_closure g in
  let red = create g.n in
  for u = 0 to g.n - 1 do
    Bitset.iter
      (fun v ->
        (* Keep u->v unless some other successor w of u reaches v. *)
        let redundant =
          Bitset.exists (fun w -> w <> v && Bitset.mem closure.adj.(w) v) g.adj.(u)
        in
        if not redundant then add_edge red u v)
      g.adj.(u)
  done;
  red

let sources g =
  let deg = in_degrees g in
  let acc = ref [] in
  for v = g.n - 1 downto 0 do
    if deg.(v) = 0 then acc := v :: !acc
  done;
  !acc

let sinks g =
  let acc = ref [] in
  for v = g.n - 1 downto 0 do
    if Bitset.is_empty g.adj.(v) then acc := v :: !acc
  done;
  !acc

let induced g s =
  let h = create g.n in
  Bitset.iter
    (fun u -> Bitset.iter (fun v -> if Bitset.mem s v then add_edge h u v) g.adj.(u))
    s;
  h

let equal a b = a.n = b.n && Array.for_all2 Bitset.equal a.adj b.adj

let pp ppf g =
  Format.fprintf ppf "@[<v>digraph(%d nodes)" g.n;
  List.iter (fun (u, v) -> Format.fprintf ppf "@,%d -> %d" u v) (edges g);
  Format.fprintf ppf "@]"
