(** Step sequences and sampled extensions of a strict partial order.

    GEM's valid history sequences (paper §7) correspond one-to-one with
    {e step sequences}: ordered partitions of the poset into non-empty
    antichains such that every element's predecessors appear in strictly
    earlier steps. The history after step [k] is the union of the first [k]
    steps; condition (2) of the paper (events first occurring together must
    be potentially concurrent) is exactly the antichain requirement. *)

val step_sequences : ?limit:int -> Poset.t -> int list list list
(** All step sequences, each a list of steps, each step an increasing node
    list. For the empty poset the only sequence is [[]]. Enumeration stops
    after [limit] sequences when given. Order of results is deterministic. *)

val count_step_sequences : ?cap:int -> Poset.t -> int
(** Number of step sequences, capped at [cap] (default [max_int]). *)

val greedy_levels : Poset.t -> int list list
(** The unique maximally-parallel step sequence: step [k] contains every
    node all of whose predecessors lie in steps [< k]. *)

val singleton_steps : int list -> int list list
(** View a linear extension as a step sequence of singletons. *)

val sample_linear_extension : Random.State.t -> Poset.t -> int list
(** A uniformly-chosen-at-each-step (not globally uniform) random
    topological order; cheap and adequate for sampling-based checking. *)

val sample_step_sequence : Random.State.t -> Poset.t -> int list list
(** Random step sequence: at each step, a non-empty random subset of the
    currently-minimal elements. *)

val is_step_sequence : Poset.t -> int list list -> bool
(** Checks the two vhs conditions: steps partition the universe, each step
    is an antichain, and predecessors occur strictly earlier. *)
