(* 126-bit fingerprints: two 63-bit native-int lanes, each finalized by a
   splitmix64-style avalanche. Native ints keep the hot path allocation
   free on 64-bit platforms (the record is two immediate fields); the
   multiplier constants are the splitmix64 ones truncated to fit an OCaml
   int literal, which costs nothing but the top bit's avalanche. *)

type t = { hi : int; lo : int }

let zero = { hi = 0; lo = 0 }

(* Finalizer: xor-shift / multiply rounds. Input bits spread across the
   whole lane, so lane sums (see [cadd]) of distinct multisets collide
   with probability ~2^-63 per lane. *)
let mix x =
  let x = x lxor (x lsr 30) in
  let x = x * 0x1ce4e5b9bf58476d in
  let x = x lxor (x lsr 27) in
  let x = x * 0x133111eb94d049bb in
  x lxor (x lsr 31)

(* Distinct lane salts keep hi and lo decorrelated even though they are
   built from the same inputs. *)
let hi_salt = 0x2545f4914f6cdd1d
let lo_salt = 0x1f123bb5159a55e5

let of_int n = { hi = mix (n lxor hi_salt); lo = mix (n lxor lo_salt) }

(* FNV-1a per lane (different offset bases), then the avalanche. The
   64-bit FNV prime fits an int literal unchanged. *)
let of_string s =
  let a = ref 0x0bf29ce484222325 and b = ref 0x3579d9f44812f305 in
  String.iter
    (fun c ->
      let x = Char.code c in
      a := (!a lxor x) * 0x100000001b3;
      b := (!b lxor x) * 0x100000001b3)
    s;
  { hi = mix !a; lo = mix !b }

(* Structural hash of an arbitrary (acyclic, handle-free) OCaml value:
   two independently seeded polymorphic hashes, spread over both lanes.
   The traversal limits are far above any interpreter continuation or
   store in this codebase, but they are still limits: a value whose
   meaningful-node count exceeds them hashes by prefix only, which is one
   of the collision sources the audit counter exists to catch. *)
let of_struct x =
  let h1 = Hashtbl.seeded_hash_param 4096 65536 17 x
  and h2 = Hashtbl.seeded_hash_param 4096 65536 0x2545f491 x in
  { hi = mix (h1 lor (h2 lsl 30) lxor hi_salt); lo = mix (h2 lor (h1 lsl 30) lxor lo_salt) }

(* Ordered combination: multiply-accumulate then avalanche, so
   [combine a b <> combine b a] and chains of combines behave like a
   polynomial hash over the sequence. *)
let combine x y =
  {
    hi = mix ((x.hi * 0x1ce4e5b9bf58476d) + y.hi + 0x9e3779b97f4a7c1);
    lo = mix ((x.lo * 0x133111eb94d049bb) + y.lo + 0x61c8864680b583e);
  }

(* Commutative accumulation: per-lane wrapping sums of already-mixed
   contributions — the standard multiset hash. Used for the running trace
   fingerprint (event/edge multisets) and for association stores whose
   insertion order varies across interleavings. *)
let cadd x y = { hi = x.hi + y.hi; lo = x.lo + y.lo }

let equal a b = a.hi = b.hi && a.lo = b.lo

let compare a b =
  match Int.compare a.hi b.hi with 0 -> Int.compare a.lo b.lo | c -> c

let hash t = t.lo land max_int
let to_int t = t.lo
(* %x renders an OCaml int as unsigned in its native 63-bit width, so no
   masking (which would drop the sign bit) is needed. *)
let to_hex t = Printf.sprintf "%016x%016x" t.hi t.lo

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
