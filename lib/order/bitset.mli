(** Fixed-capacity mutable bitsets over the universe [0 .. capacity-1].

    Used as the dense set representation throughout the order substrate:
    rows of reachability matrices, history membership, antichain candidates.
    All operations besides [copy], [union], [inter] and [diff] are in-place. *)

type t

val create : int -> t
(** [create n] is the empty set with capacity [n]. Raises
    [Invalid_argument] if [n < 0]. *)

val capacity : t -> int

val mem : t -> int -> bool

val add : t -> int -> unit

val remove : t -> int -> unit

val copy : t -> t

val clear : t -> unit

val cardinal : t -> int

val is_empty : t -> bool

val equal : t -> t -> bool
(** Sets must have the same capacity. *)

val subset : t -> t -> bool
(** [subset a b] is true iff every member of [a] is a member of [b]. *)

val union : t -> t -> t

val inter : t -> t -> t

val diff : t -> t -> t

val union_into : t -> t -> unit
(** [union_into dst src] adds every member of [src] to [dst]. *)

val disjoint : t -> t -> bool

val iter : (int -> unit) -> t -> unit
(** Iterates members in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val elements : t -> int list
(** Members in increasing order. *)

val of_list : int -> int list -> t
(** [of_list n xs] is the set with capacity [n] containing [xs]. *)

val for_all : (int -> bool) -> t -> bool

val exists : (int -> bool) -> t -> bool

val choose : t -> int option
(** Smallest member, if any. *)

val hash : t -> int

val compare : t -> t -> int
(** Total order compatible with [equal]; compares capacities first. *)

val pp : Format.formatter -> t -> unit
