let ready_nodes p taken =
  let n = Poset.size p in
  let acc = ref [] in
  for v = n - 1 downto 0 do
    if (not (Bitset.mem taken v)) && Bitset.subset (Poset.down_set p v) taken then
      acc := v :: !acc
  done;
  !acc

(* All non-empty subsets of [xs] that are antichains in [p]; [xs] consists of
   currently-minimal nodes, which are pairwise incomparable only if the poset
   says so — minimal nodes of the *remaining* poset are automatically
   pairwise incomparable, so every non-empty subset qualifies. *)
let nonempty_subsets xs =
  let rec loop = function
    | [] -> [ [] ]
    | x :: rest ->
        let subs = loop rest in
        subs @ List.map (fun s -> x :: s) subs
  in
  List.filter (fun s -> s <> []) (loop xs)

exception Limit_reached

let step_sequences ?limit p =
  let n = Poset.size p in
  let results = ref [] in
  let count = ref 0 in
  let taken = Bitset.create n in
  let rec extend acc covered =
    if covered = n then begin
      results := List.rev acc :: !results;
      incr count;
      match limit with Some l when !count >= l -> raise Limit_reached | _ -> ()
    end
    else
      let ready = ready_nodes p taken in
      let steps = nonempty_subsets ready in
      List.iter
        (fun step ->
          List.iter (Bitset.add taken) step;
          extend (step :: acc) (covered + List.length step);
          List.iter (Bitset.remove taken) step)
        steps
  in
  (try extend [] 0 with Limit_reached -> ());
  List.rev !results

let count_step_sequences ?(cap = max_int) p =
  let module H = Hashtbl.Make (struct
    type t = Bitset.t

    let equal = Bitset.equal
    let hash = Bitset.hash
  end) in
  let n = Poset.size p in
  let memo = H.create 256 in
  let rec ways taken =
    if Bitset.cardinal taken = n then 1
    else
      match H.find_opt memo taken with
      | Some w -> w
      | None ->
          let ready = ready_nodes p taken in
          let total = ref 0 in
          List.iter
            (fun step ->
              if !total < cap then begin
                let taken' = Bitset.copy taken in
                List.iter (Bitset.add taken') step;
                total := min cap (!total + ways taken')
              end)
            (nonempty_subsets ready);
          H.add memo taken !total;
          !total
  in
  ways (Bitset.create n)

let greedy_levels p =
  let n = Poset.size p in
  let taken = Bitset.create n in
  let rec loop acc covered =
    if covered = n then List.rev acc
    else begin
      let step = ready_nodes p taken in
      List.iter (Bitset.add taken) step;
      loop (step :: acc) (covered + List.length step)
    end
  in
  loop [] 0

let singleton_steps ext = List.map (fun v -> [ v ]) ext

let sample_linear_extension rng p =
  let n = Poset.size p in
  let taken = Bitset.create n in
  let rec loop acc covered =
    if covered = n then List.rev acc
    else begin
      let ready = Array.of_list (ready_nodes p taken) in
      let v = ready.(Random.State.int rng (Array.length ready)) in
      Bitset.add taken v;
      loop (v :: acc) (covered + 1)
    end
  in
  loop [] 0

let sample_step_sequence rng p =
  let n = Poset.size p in
  let taken = Bitset.create n in
  let rec loop acc covered =
    if covered = n then List.rev acc
    else begin
      let ready = ready_nodes p taken in
      let chosen = List.filter (fun _ -> Random.State.bool rng) ready in
      let step =
        if chosen = [] then [ List.nth ready (Random.State.int rng (List.length ready)) ]
        else chosen
      in
      List.iter (Bitset.add taken) step;
      loop (step :: acc) (covered + List.length step)
    end
  in
  loop [] 0

let is_step_sequence p steps =
  let n = Poset.size p in
  let taken = Bitset.create n in
  let ok_step step =
    let antichain =
      List.for_all
        (fun a -> List.for_all (fun b -> a = b || Poset.concurrent p a b) step)
        step
    in
    let preds_done =
      List.for_all (fun v -> Bitset.subset (Poset.down_set p v) taken) step
    in
    let fresh = List.for_all (fun v -> not (Bitset.mem taken v)) step in
    let nonempty = step <> [] in
    if antichain && preds_done && fresh && nonempty then begin
      List.iter (Bitset.add taken) step;
      true
    end
    else false
  in
  List.for_all ok_step steps && Bitset.cardinal taken = n
