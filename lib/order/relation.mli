(** Finite binary relations over an arbitrary ordered carrier.

    A thin, purely-functional companion to the dense {!Digraph}: used where
    the carrier is not a dense integer range (group containment between
    named groups, element access tables, test oracles). *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (X : ORDERED) : sig
  type elt = X.t

  type t

  val empty : t

  val add : elt -> elt -> t -> t

  val mem : elt -> elt -> t -> bool

  val of_list : (elt * elt) list -> t

  val to_list : t -> (elt * elt) list
  (** Sorted by [X.compare] on the first then second component. *)

  val cardinal : t -> int

  val union : t -> t -> t

  val inverse : t -> t

  val compose : t -> t -> t
  (** [(a,c)] in [compose r s] iff exists [b] with [(a,b)] in [r] and
      [(b,c)] in [s]. *)

  val domain : t -> elt list

  val range : t -> elt list

  val successors : elt -> t -> elt list

  val transitive_closure : t -> t

  val reflexive_over : elt list -> t
  (** Identity relation on the given carrier list. *)

  val is_irreflexive : t -> bool

  val is_transitive : t -> bool

  val is_antisymmetric : t -> bool
  (** No pair [(a,b)], [a <> b], with both directions present. *)

  val is_strict_order : t -> bool
  (** Irreflexive and transitive (hence antisymmetric). *)

  val restrict : (elt -> bool) -> t -> t
  (** Keep pairs whose both components satisfy the predicate. *)

  val map : (elt -> elt) -> t -> t

  val equal : t -> t -> bool

  val subrelation : t -> t -> bool
end
