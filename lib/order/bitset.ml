type t = { mutable bits : Bytes.t; cap : int }

let bytes_needed n = (n + 7) / 8

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { bits = Bytes.make (bytes_needed n) '\000'; cap = n }

let capacity t = t.cap

let check t i =
  if i < 0 || i >= t.cap then invalid_arg "Bitset: index out of range"

let mem t i =
  check t i;
  Char.code (Bytes.unsafe_get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add t i =
  check t i;
  let j = i lsr 3 in
  let b = Char.code (Bytes.unsafe_get t.bits j) in
  Bytes.unsafe_set t.bits j (Char.unsafe_chr (b lor (1 lsl (i land 7))))

let remove t i =
  check t i;
  let j = i lsr 3 in
  let b = Char.code (Bytes.unsafe_get t.bits j) in
  Bytes.unsafe_set t.bits j (Char.unsafe_chr (b land lnot (1 lsl (i land 7)) land 0xff))

let copy t = { bits = Bytes.copy t.bits; cap = t.cap }

let clear t = Bytes.fill t.bits 0 (Bytes.length t.bits) '\000'

(* Popcount of a byte, via a 256-entry table. *)
let popcount_table =
  let tbl = Bytes.create 256 in
  for b = 0 to 255 do
    let rec count x = if x = 0 then 0 else (x land 1) + count (x lsr 1) in
    Bytes.set tbl b (Char.chr (count b))
  done;
  tbl

let cardinal t =
  let n = ref 0 in
  for j = 0 to Bytes.length t.bits - 1 do
    n := !n + Char.code (Bytes.get popcount_table (Char.code (Bytes.get t.bits j)))
  done;
  !n

let is_empty t =
  let rec loop j =
    j >= Bytes.length t.bits || (Bytes.get t.bits j = '\000' && loop (j + 1))
  in
  loop 0

let same_cap a b =
  if a.cap <> b.cap then invalid_arg "Bitset: capacity mismatch"

let equal a b = same_cap a b; Bytes.equal a.bits b.bits

let zip_bytes f a b =
  same_cap a b;
  let len = Bytes.length a.bits in
  let out = Bytes.create len in
  for j = 0 to len - 1 do
    Bytes.unsafe_set out j
      (Char.unsafe_chr
         (f (Char.code (Bytes.unsafe_get a.bits j))
            (Char.code (Bytes.unsafe_get b.bits j))
          land 0xff))
  done;
  { bits = out; cap = a.cap }

let union a b = zip_bytes ( lor ) a b
let inter a b = zip_bytes ( land ) a b
let diff a b = zip_bytes (fun x y -> x land lnot y) a b

let union_into dst src =
  same_cap dst src;
  for j = 0 to Bytes.length dst.bits - 1 do
    Bytes.unsafe_set dst.bits j
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get dst.bits j)
          lor Char.code (Bytes.unsafe_get src.bits j)))
  done

let subset a b =
  same_cap a b;
  let rec loop j =
    j >= Bytes.length a.bits
    || (Char.code (Bytes.get a.bits j) land lnot (Char.code (Bytes.get b.bits j)) = 0
        && loop (j + 1))
  in
  loop 0

let disjoint a b =
  same_cap a b;
  let rec loop j =
    j >= Bytes.length a.bits
    || (Char.code (Bytes.get a.bits j) land Char.code (Bytes.get b.bits j) = 0
        && loop (j + 1))
  in
  loop 0

let iter f t =
  for i = 0 to t.cap - 1 do
    if Char.code (Bytes.unsafe_get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0
    then f i
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list n xs =
  let t = create n in
  List.iter (add t) xs;
  t

exception Found

let for_all p t =
  try
    iter (fun i -> if not (p i) then raise Found) t;
    true
  with Found -> false

let exists p t = not (for_all (fun i -> not (p i)) t)

let choose t =
  let result = ref None in
  (try iter (fun i -> result := Some i; raise Found) t with Found -> ());
  !result

let hash t = Hashtbl.hash (t.cap, Bytes.to_string t.bits)

let compare a b =
  match Int.compare a.cap b.cap with
  | 0 -> Bytes.compare a.bits b.bits
  | c -> c

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       Format.pp_print_int)
    (elements t)
