type t = { n : int; below : Bitset.t array (* below.(v) = strict predecessors of v *) }

let of_digraph g =
  if Digraph.has_cycle g then None
  else begin
    let closure = Digraph.transitive_closure g in
    let n = Digraph.size g in
    let below = Array.init n (fun _ -> Bitset.create n) in
    for u = 0 to n - 1 do
      List.iter (fun v -> Bitset.add below.(v) u) (Digraph.succs closure u)
    done;
    Some { n; below }
  end

let of_digraph_exn g =
  match of_digraph g with
  | Some p -> p
  | None -> invalid_arg "Poset.of_digraph_exn: cyclic graph"

let size p = p.n

let check p v = if v < 0 || v >= p.n then invalid_arg "Poset: node out of range"

let lt p a b =
  check p a;
  check p b;
  Bitset.mem p.below.(b) a

let leq p a b = a = b || lt p a b

let comparable p a b = lt p a b || lt p b a

let concurrent p a b = a <> b && not (comparable p a b)

let down_set p v =
  check p v;
  Bitset.copy p.below.(v)

let up_set p v =
  check p v;
  let s = Bitset.create p.n in
  for u = 0 to p.n - 1 do
    if Bitset.mem p.below.(u) v then Bitset.add s u
  done;
  s

let down_closure p s =
  let out = Bitset.copy s in
  Bitset.iter (fun v -> Bitset.union_into out p.below.(v)) s;
  out

let is_down_closed p s = Bitset.for_all (fun v -> Bitset.subset p.below.(v) s) s

let minimal_of p s =
  let out = Bitset.create p.n in
  Bitset.iter (fun v -> if Bitset.disjoint p.below.(v) s then Bitset.add out v) s;
  out

let maximal_of p s =
  let out = Bitset.create p.n in
  Bitset.iter
    (fun v ->
      let dominated = Bitset.exists (fun u -> Bitset.mem p.below.(u) v) s in
      if not dominated then Bitset.add out v)
    s;
  out

let is_antichain p s =
  Bitset.for_all (fun v -> Bitset.disjoint p.below.(v) s) s

let is_chain p s =
  Bitset.for_all (fun a -> Bitset.for_all (fun b -> a = b || comparable p a b) s) s

let to_digraph p =
  let g = Digraph.create p.n in
  for v = 0 to p.n - 1 do
    Bitset.iter (fun u -> Digraph.add_edge g u v) p.below.(v)
  done;
  g

let covers p = Digraph.edges (Digraph.transitive_reduction (to_digraph p))

let height p =
  (* Longest chain via DP in a topological order of the cover graph. *)
  if p.n = 0 then 0
  else begin
    let g = to_digraph p in
    match Digraph.topological_sort g with
    | None -> assert false
    | Some order ->
        let len = Array.make p.n 1 in
        List.iter
          (fun v ->
            Bitset.iter (fun u -> if len.(u) + 1 > len.(v) then len.(v) <- len.(u) + 1) p.below.(v))
          order;
        Array.fold_left max 0 len
  end

let width_lower_bound p =
  if p.n = 0 then 0
  else begin
    (* Layer nodes by height-rank; the largest layer is an antichain. *)
    let g = to_digraph p in
    match Digraph.topological_sort g with
    | None -> assert false
    | Some order ->
        let rank = Array.make p.n 0 in
        List.iter
          (fun v ->
            Bitset.iter
              (fun u -> if rank.(u) + 1 > rank.(v) then rank.(v) <- rank.(u) + 1)
              p.below.(v))
          order;
        let counts = Hashtbl.create 8 in
        Array.iter
          (fun r ->
            Hashtbl.replace counts r (1 + Option.value ~default:0 (Hashtbl.find_opt counts r)))
          rank;
        Hashtbl.fold (fun _ c best -> max c best) counts 0
  end

exception Limit_reached

let linear_extensions ?limit p =
  let results = ref [] in
  let count = ref 0 in
  let taken = Bitset.create p.n in
  let rec extend acc k =
    if k = p.n then begin
      results := List.rev acc :: !results;
      incr count;
      match limit with
      | Some l when !count >= l -> raise Limit_reached
      | _ -> ()
    end
    else
      for v = 0 to p.n - 1 do
        if (not (Bitset.mem taken v)) && Bitset.subset p.below.(v) taken then begin
          Bitset.add taken v;
          extend (v :: acc) (k + 1);
          Bitset.remove taken v
        end
      done
  in
  (try extend [] 0 with Limit_reached -> ());
  List.rev !results

let count_linear_extensions ?(cap = max_int) p =
  (* DP over down-closed subsets, memoized by bitset. *)
  let module H = Hashtbl.Make (struct
    type t = Bitset.t

    let equal = Bitset.equal
    let hash = Bitset.hash
  end) in
  let memo = H.create 256 in
  let full = Bitset.create p.n in
  for v = 0 to p.n - 1 do
    Bitset.add full v
  done;
  let rec ways taken =
    if Bitset.cardinal taken = p.n then 1
    else
      match H.find_opt memo taken with
      | Some w -> w
      | None ->
          let total = ref 0 in
          for v = 0 to p.n - 1 do
            if
              !total < cap
              && (not (Bitset.mem taken v))
              && Bitset.subset p.below.(v) taken
            then begin
              let taken' = Bitset.copy taken in
              Bitset.add taken' v;
              total := min cap (!total + ways taken')
            end
          done;
          H.add memo taken !total;
          !total
  in
  ways (Bitset.create p.n)

(* Dilworth via bipartite matching: split each node v into left v and
   right v'; edge (u, v') iff u < v. A maximum matching M yields a minimum
   chain cover of size n - |M|, which equals the maximum antichain size. *)
let maximum_matching p =
  let n = p.n in
  let match_l = Array.make n (-1) in
  (* left -> right *)
  let match_r = Array.make n (-1) in
  (* right -> left *)
  let rec augment visited u =
    let found = ref false in
    let v = ref 0 in
    while (not !found) && !v < n do
      if Bitset.mem p.below.(!v) u && not (Bitset.mem visited !v) then begin
        Bitset.add visited !v;
        if match_r.(!v) = -1 || augment visited match_r.(!v) then begin
          match_l.(u) <- !v;
          match_r.(!v) <- u;
          found := true
        end
      end;
      incr v
    done;
    !found
  in
  let size = ref 0 in
  for u = 0 to n - 1 do
    if augment (Bitset.create n) u then incr size
  done;
  (!size, match_l, match_r)

let width p =
  if p.n = 0 then 0
  else
    let m, _, _ = maximum_matching p in
    p.n - m

(* Koenig-style recovery of a maximum antichain from the matching: build
   the minimum chain cover, then take, from each chain, an element not
   comparable to the chosen elements of other chains. Simpler and correct:
   compute a minimum vertex cover of the bipartite graph via alternating
   reachability from unmatched left vertices; the maximum antichain is the
   set of nodes that are neither "covered on the left" nor "covered on the
   right": v is in the antichain iff left v is NOT in the cover and right v
   is NOT in the cover. *)
let max_antichain p =
  let n = p.n in
  if n = 0 then []
  else begin
    let _, match_l, match_r = maximum_matching p in
    (* Alternating BFS from unmatched left vertices. *)
    let seen_l = Bitset.create n and seen_r = Bitset.create n in
    let queue = Queue.create () in
    for u = 0 to n - 1 do
      if match_l.(u) = -1 then begin
        Bitset.add seen_l u;
        Queue.add u queue
      end
    done;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      for v = 0 to n - 1 do
        (* edge u -> v' iff u < v *)
        if Bitset.mem p.below.(v) u && (not (Bitset.mem seen_r v)) && match_l.(u) <> v
        then begin
          Bitset.add seen_r v;
          let u' = match_r.(v) in
          if u' <> -1 && not (Bitset.mem seen_l u') then begin
            Bitset.add seen_l u';
            Queue.add u' queue
          end
        end
      done
    done;
    (* Koenig cover: left vertices NOT seen, right vertices seen. The
       maximum independent set is the complement; a node is in the
       antichain iff left v independent (seen_l v) and right v independent
       (not seen_r v). *)
    let acc = ref [] in
    for v = n - 1 downto 0 do
      if Bitset.mem seen_l v && not (Bitset.mem seen_r v) then acc := v :: !acc
    done;
    !acc
  end

let equal a b = a.n = b.n && Array.for_all2 Bitset.equal a.below b.below

let pp ppf p =
  Format.fprintf ppf "@[<v>poset(%d)" p.n;
  List.iter (fun (u, v) -> Format.fprintf ppf "@,%d < %d" u v) (covers p);
  Format.fprintf ppf "@]"
