(** 126-bit state fingerprints for exploration memo tables.

    Two 63-bit native-int lanes with a splitmix64-style finalizer: wide
    enough that distinct interpreter states collide with negligible
    probability, cheap enough (no allocation beyond the two-field record,
    no marshalling) to extend incrementally on every interpreter step.
    Fingerprints replace the exact marshal-string canonical keys in the
    exploration seen tables; the exact keys remain available as a
    fallback and as the collision audit oracle (see
    [Gem_lang.Explore]). *)

type t = { hi : int; lo : int }

val zero : t

val of_int : int -> t
(** Well-mixed fingerprint of an integer (both lanes salted
    differently). *)

val of_string : string -> t
(** Content hash of a string (FNV-1a per lane, then finalized). *)

val of_struct : 'a -> t
(** Structural hash of an immutable OCaml value via two independently
    seeded polymorphic hashes. The value must not contain functions and
    must not rely on physical identity; traversal is bounded (4096
    meaningful / 65536 total nodes per lane), so astronomically large
    values hash by prefix — a documented collision source that the
    exploration audit counter detects. *)

val combine : t -> t -> t
(** Ordered (non-commutative) combination — sequence hashing. *)

val cadd : t -> t -> t
(** Commutative combination (per-lane wrapping sum) — multiset hashing of
    already-mixed contributions. [cadd] of raw unmixed values is weak;
    always build contributions with {!of_int}/{!of_string}/{!of_struct}/
    {!combine} first. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val hash : t -> int
(** Already-mixed low lane, non-negative — suitable for [Hashtbl]. *)

val to_int : t -> int
(** Raw low lane; the parallel explorer takes shard indices from its low
    bits. *)

val to_hex : t -> string
(** 32 hex digits (both lanes, high lane first). *)

module Table : Hashtbl.S with type key = t
