(** Dense directed graphs over the node universe [0 .. size-1].

    This is the workhorse behind GEM's three event relations: the enable
    relation and element order are stored as edge lists, and the temporal
    order is their transitive closure. The graph is mutable during
    construction and then queried functionally. *)

type t

val create : int -> t
(** [create n] is the edgeless graph on [n] nodes. *)

val size : t -> int

val add_edge : t -> int -> int -> unit
(** Idempotent; self-loops are allowed here and rejected by {!Poset}. *)

val mem_edge : t -> int -> int -> bool

val succs : t -> int -> int list
(** Successors in increasing order. *)

val preds : t -> int -> int list

val edges : t -> (int * int) list
(** All edges, lexicographically ordered. *)

val nb_edges : t -> int

val of_edges : int -> (int * int) list -> t

val copy : t -> t

val union : t -> t -> t
(** Graphs must have the same size. *)

val transpose : t -> t

val has_cycle : t -> bool
(** True iff the graph has a directed cycle (including self-loops). *)

val topological_sort : t -> int list option
(** A topological order of all nodes, or [None] if the graph is cyclic.
    Deterministic: among ready nodes, smallest index first. *)

val transitive_closure : ?reflexive:bool -> t -> t
(** Reachability closure. With [reflexive:true] every node reaches itself. *)

val reachable : t -> int -> Bitset.t
(** [reachable g v] is the set of nodes reachable from [v] by a non-empty
    path, plus [v] itself iff [v] lies on a cycle... — precisely: nodes [u]
    such that there is a path of length >= 1 from [v] to [u]. *)

val transitive_reduction : t -> t
(** On a DAG, the unique minimal relation with the same closure. Raises
    [Invalid_argument] if the graph is cyclic. *)

val sources : t -> int list
(** Nodes with no incoming edge, increasing order. *)

val sinks : t -> int list

val induced : t -> Bitset.t -> t
(** [induced g s] keeps only edges between members of [s]; the node universe
    is unchanged (non-members become isolated). *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
