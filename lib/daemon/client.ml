type response = {
  header : string;
  body : string list;
  code : int;
  error : string option;
}

(* The daemon writes headers itself (Handler), so a targeted scan for
   ["name":value] is enough — no JSON parser needed, and the body (which
   may embed arbitrary report text) is never scanned. *)
let field_start header name =
  let pat = Printf.sprintf "\"%s\":" name in
  let n = String.length header and m = String.length pat in
  let rec scan i =
    if i + m > n then None
    else if String.sub header i m = pat then Some (i + m)
    else scan (i + 1)
  in
  scan 0

let field_int header name =
  match field_start header name with
  | None -> None
  | Some i ->
      let n = String.length header in
      let j = ref i in
      while
        !j < n && (match header.[!j] with '0' .. '9' | '-' -> true | _ -> false)
      do
        incr j
      done;
      int_of_string_opt (String.sub header i (!j - i))

let field_string header name =
  match field_start header name with
  | None -> None
  | Some i when i >= String.length header || header.[i] <> '"' -> None
  | Some i ->
      let n = String.length header in
      let b = Buffer.create 32 in
      let rec go j =
        if j >= n then None
        else
          match header.[j] with
          | '"' -> Some (Buffer.contents b)
          | '\\' when j + 1 < n ->
              (match header.[j + 1] with
              | 'n' -> Buffer.add_char b '\n'
              | 'r' -> Buffer.add_char b '\r'
              | 't' -> Buffer.add_char b '\t'
              | c -> Buffer.add_char b c);
              go (j + 2)
          | c ->
              Buffer.add_char b c;
              go (j + 1)
      in
      go (i + 1)

let request ~socket line =
  let fd =
    try Ok (Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0)
    with Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  in
  match fd with
  | Error _ as e -> e
  | Ok fd -> (
      let fail fmt =
        Printf.ksprintf
          (fun m ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            Error m)
          fmt
      in
      match Unix.connect fd (Unix.ADDR_UNIX socket) with
      | exception Unix.Unix_error (e, _, _) ->
          fail "cannot connect to %s: %s" socket (Unix.error_message e)
      | () -> (
          let msg = line ^ "\n" in
          match
            let n = String.length msg in
            let sent = ref 0 in
            while !sent < n do
              sent := !sent + Unix.write_substring fd msg !sent (n - !sent)
            done
          with
          | exception Unix.Unix_error (e, _, _) ->
              fail "cannot send request: %s" (Unix.error_message e)
          | () -> (
              let ic = Unix.in_channel_of_descr fd in
              let read_line () =
                match input_line ic with
                | l -> Ok l
                | exception End_of_file -> Error "daemon closed the connection"
                | exception Sys_error m -> Error m
              in
              match read_line () with
              | Error m ->
                  close_in_noerr ic;
                  Error m
              | Ok header -> (
                  let n_body = Option.value ~default:0 (field_int header "body") in
                  let rec read_body acc k =
                    if k = 0 then Ok (List.rev acc)
                    else
                      match read_line () with
                      | Ok l -> read_body (l :: acc) (k - 1)
                      | Error m -> Error m
                  in
                  let body = read_body [] n_body in
                  close_in_noerr ic;
                  match body with
                  | Error m -> Error ("truncated response: " ^ m)
                  | Ok body -> (
                      match field_int header "code" with
                      | None -> Error ("malformed header: " ^ header)
                      | Some code ->
                          Ok
                            {
                              header;
                              body;
                              code;
                              error = field_string header "error";
                            })))))
