module R = Gem_syntax.Request
module Budget = Gem_check.Budget
module Strategy = Gem_check.Strategy
module Verdict = Gem_check.Verdict
module Check = Gem_check.Check
module Refine = Gem_check.Refine
module Bitstate = Gem_check.Bitstate
module Explore = Gem_lang.Explore
module Monitor = Gem_lang.Monitor
module Csp = Gem_lang.Csp
module Ada = Gem_lang.Ada
module Fingerprint = Gem_order.Fingerprint
module Formula = Gem_logic.Formula
module Spec = Gem_spec.Spec
module Computation = Gem_model.Computation
module Readers_writers = Gem_problems.Readers_writers
module Buffer_problem = Gem_problems.Buffer
module Rw_distributed = Gem_problems.Rw_distributed
module Db_update = Gem_problems.Db_update
module Life = Gem_problems.Life

type load =
  | Rw of {
      monitor : string;
      version : Readers_writers.version;
      readers : int;
      writers : int;
    }
  | Buffer of {
      lang : [ `Monitor | `Csp | `Ada ];
      capacity : int;
      producers : int;
      consumers : int;
      items : int;
    }
  | Rwd of { lang : [ `Csp | `Ada ]; readers : int; writers : int; broken : bool }
  | Db of { sites : int }
  | Life of { width : int; height : int; generations : int }

let command_name = function
  | Rw _ -> "rw"
  | Buffer _ -> "buffer"
  | Rwd _ -> "rwd"
  | Db _ -> "db"
  | Life _ -> "life"

let buffer_lang_name = function
  | `Monitor -> "monitor"
  | `Csp -> "csp"
  | `Ada -> "ada"

let rwd_lang_name = function `Csp -> "csp" | `Ada -> "ada"

(* These strings are the workload half of the checkpoint stamp; they must
   stay char-for-char what the CLI has always written, or existing
   checkpoints stop resuming. Note rw's stamp predates --monitor entering
   the cache key and does not include it — the cache keys below do. *)
let params_string = function
  | Rw { readers; writers; _ } ->
      Printf.sprintf "readers=%d writers=%d" readers writers
  | Buffer { lang; capacity; producers; consumers; items } ->
      Printf.sprintf "lang=%s capacity=%d producers=%d consumers=%d items=%d"
        (buffer_lang_name lang) capacity producers consumers items
  | Rwd { lang; readers; writers; broken } ->
      Printf.sprintf "lang=%s readers=%d writers=%d broken=%b"
        (rwd_lang_name lang) readers writers broken
  | Db { sites } -> Printf.sprintf "sites=%d" sites
  | Life { width; height; generations } ->
      Printf.sprintf "width=%d height=%d generations=%d" width height
        generations

let monitor_of_name = function
  | "paper" -> Ok Readers_writers.paper_monitor
  | "writers-priority" -> Ok Readers_writers.writers_priority_monitor
  | "buggy" -> Ok Readers_writers.buggy_monitor
  | "no-exclusion" -> Ok Readers_writers.no_exclusion_monitor
  | s -> Error (Printf.sprintf "unknown monitor %S" s)

let version_of_name s =
  match
    List.find_opt
      (fun v -> String.equal (Readers_writers.version_name v) s)
      Readers_writers.all_versions
  with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "unknown problem version %S" s)

(* The game-of-life CLI checks one fixed blinker; the daemon checks the
   same one so the two reports stay comparable. *)
let life_alive = [ (1, 0); (1, 1); (1, 2) ]

(* --- request interpretation ----------------------------------------- *)

let lookup params key default parse =
  match List.assoc_opt key params with
  | None -> Ok default
  | Some v -> parse v

let int_param key v =
  match int_of_string_opt v with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "%s expects an integer, got %S" key v)

let bool_param key v =
  match v with
  | "true" -> Ok true
  | "false" -> Ok false
  | _ -> Error (Printf.sprintf "%s expects true|false, got %S" key v)

let check_keys ~allowed params k =
  match
    List.find_opt (fun (key, _) -> not (List.mem key allowed)) params
  with
  | Some (key, _) ->
      Error
        (Printf.sprintf "unknown key %s (expected one of: %s)" key
           (String.concat ", " allowed))
  | None -> k ()

let ( let* ) = Result.bind

let of_request (c : R.check) =
  let p = c.R.params in
  let int key default = lookup p key default (int_param key) in
  match c.R.cmd with
  | "rw" ->
      check_keys ~allowed:[ "monitor"; "version"; "readers"; "writers" ] p
        (fun () ->
          let* monitor =
            lookup p "monitor" "paper" (fun v ->
                Result.map (fun _ -> v) (monitor_of_name v))
          in
          let* version =
            lookup p "version" Readers_writers.Readers_priority version_of_name
          in
          let* readers = int "readers" 2 in
          let* writers = int "writers" 1 in
          Ok (Rw { monitor; version; readers; writers }))
  | "buffer" ->
      check_keys
        ~allowed:[ "lang"; "capacity"; "producers"; "consumers"; "items" ] p
        (fun () ->
          let* lang =
            lookup p "lang" `Monitor (function
              | "monitor" -> Ok `Monitor
              | "csp" -> Ok `Csp
              | "ada" -> Ok `Ada
              | v -> Error (Printf.sprintf "lang expects monitor|csp|ada, got %S" v))
          in
          let* capacity = int "capacity" 1 in
          let* producers = int "producers" 1 in
          let* consumers = int "consumers" 1 in
          let* items = int "items" 2 in
          Ok (Buffer { lang; capacity; producers; consumers; items }))
  | "rwd" ->
      check_keys ~allowed:[ "lang"; "readers"; "writers"; "broken" ] p
        (fun () ->
          let* lang =
            lookup p "lang" `Csp (function
              | "csp" -> Ok `Csp
              | "ada" -> Ok `Ada
              | v -> Error (Printf.sprintf "lang expects csp|ada, got %S" v))
          in
          let* readers = int "readers" 1 in
          let* writers = int "writers" 1 in
          let* broken = lookup p "broken" false (bool_param "broken") in
          Ok (Rwd { lang; readers; writers; broken }))
  | "db" ->
      check_keys ~allowed:[ "sites" ] p (fun () ->
          let* sites = int "sites" 3 in
          Ok (Db { sites }))
  | "life" ->
      check_keys ~allowed:[ "width"; "height"; "generations" ] p (fun () ->
          let* width = int "width" 4 in
          let* height = int "height" 4 in
          let* generations = int "generations" 2 in
          Ok (Life { width; height; generations }))
  | cmd ->
      Error
        (Printf.sprintf
           "unknown command %S (expected rw, buffer, rwd, db or life)" cmd)

let supports_restrict = function
  | Rw _ | Buffer _ | Rwd _ -> true
  | Db _ | Life _ -> false

let has_exploration = function
  | Rw _ | Buffer _ | Rwd _ -> true
  | Db _ | Life _ -> false

(* --- cache keying --------------------------------------------------- *)

(* A monitor value cannot be constructed from a bad name once a load
   exists; [of_request] already vetted it. *)
let rw_monitor name =
  match monitor_of_name name with
  | Ok m -> m
  | Error e -> invalid_arg ("Runner: " ^ e)

let program_fp load =
  match load with
  | Rw { monitor; readers; writers; _ } ->
      let program =
        Readers_writers.program ~monitor:(rw_monitor monitor) ~readers ~writers
      in
      Monitor.config_fp program (Monitor.initial_config program)
  | Buffer { lang; capacity; producers; consumers; items } -> (
      match lang with
      | `Monitor ->
          let program =
            Buffer_problem.monitor_solution ~capacity ~producers ~consumers
              ~items_each:items
          in
          Monitor.config_fp program (Monitor.initial_config program)
      | `Csp ->
          let program =
            Buffer_problem.csp_solution ~capacity ~producers ~consumers
              ~items_each:items
          in
          Csp.config_fp program (Csp.initial_config program)
      | `Ada ->
          let program =
            Buffer_problem.ada_solution ~capacity ~producers ~consumers
              ~items_each:items
          in
          Ada.config_fp program (Ada.initial_config program))
  | Rwd { lang; readers; writers; broken } -> (
      match lang with
      | `Csp ->
          let program =
            if broken then Rw_distributed.csp_program_no_priority ~readers ~writers
            else Rw_distributed.csp_program ~readers ~writers
          in
          Csp.config_fp program (Csp.initial_config program)
      | `Ada ->
          let program =
            if broken then Rw_distributed.ada_program_no_priority ~readers ~writers
            else Rw_distributed.ada_program ~readers ~writers
          in
          Ada.config_fp program (Ada.initial_config program))
  | Db { sites } ->
      (* sites < 2 is rejected by Db_update.program; key on the
         parameter alone so a bad request still gets a (failing) key. *)
      Fingerprint.of_string (Printf.sprintf "db-update sites=%d" sites)
  | Life { width; height; generations } ->
      Fingerprint.of_string
        (Printf.sprintf "life %dx%d g=%d alive=%s" width height generations
           (String.concat ","
              (List.map (fun (x, y) -> Printf.sprintf "%d:%d" x y) life_alive)))

let problem_spec load =
  match load with
  | Rw { version; readers; writers; _ } ->
      Some
        (Readers_writers.spec version
           ~users:(Readers_writers.user_names ~readers ~writers))
  | Buffer { capacity; _ } -> Some (Buffer_problem.spec ~capacity)
  | Rwd { readers; writers; _ } ->
      let rnames, wnames = Rw_distributed.user_names ~readers ~writers in
      Some (Rw_distributed.spec ~readers:rnames ~writers:wnames)
  | Db _ -> None
  | Life { width; height; _ } -> Some (Life.spec ~width ~height)

let restriction_fp load restrict =
  let base =
    match problem_spec load with
    | Some s ->
        s.Spec.spec_name
        :: List.map
             (fun (n, f) -> n ^ "=" ^ Formula.to_string f)
             s.Spec.restrictions
    | None ->
        (* db's two properties are baked into Db_update.check. *)
        [ "db-update:convergence+deadlock-freedom" ]
  in
  let client =
    match restrict with
    | Some f -> [ "+" ^ R.restriction_name ^ "=" ^ Formula.to_string f ]
    | None -> []
  in
  Fingerprint.of_string (String.concat "\n" (base @ client))

(* The program-determining workload parameters — unlike the checkpoint
   stamp, the cache key must see every one of them (e.g. rw's monitor).
   rw's version is deliberately absent: it picks the problem spec's
   scheduling restriction and nothing about the explored program, so two
   versions of the same program share an exploration-cache line (the
   verdict key separates them through the restriction component). *)
let key_params_string load =
  match load with
  | Rw { monitor; readers; writers; _ } ->
      Printf.sprintf "rw monitor=%s readers=%d writers=%d" monitor readers
        writers
  | Buffer _ | Rwd _ | Db _ | Life _ ->
      command_name load ^ " " ^ params_string load

(* The engine's effective reduction with defaults resolved: an explicit
   [reduction=] key wins, else the legacy [por=] key, else the
   environment default. *)
let engine_reduction (e : R.engine) =
  let reduction =
    Option.map
      (function
        | R.Reduction_none -> Explore.No_reduction
        | R.Reduction_sleep -> Explore.Sleep_sets
        | R.Reduction_source -> Explore.Source_sets)
      e.R.reduction
  in
  Explore.resolve_reduction ?reduction ?por:e.R.por ()

(* Engine identity with the environment defaults resolved: two requests
   that spell the default differently (por absent vs por=on under an
   unset GEM_NO_POR, or por=off vs reduction=none) behave identically
   and may share a cache line. The timeout is deliberately absent —
   timeout-bearing requests bypass the caches (their verdicts are
   wall-clock-dependent). *)
let engine_string (e : R.engine) =
  let reduction = engine_reduction e in
  let por = reduction <> Explore.No_reduction in
  let exact =
    match e.R.exact_keys with
    | Some b -> b
    | None -> Explore.exact_keys_default ()
  in
  let opt_int = function Some n -> string_of_int n | None -> "none" in
  Printf.sprintf
    "por=%b exact=%b jobs=%d batch=%d bitstate=%s maxc=%s maxr=%s reduction=%s"
    por exact e.R.jobs e.R.batch
    (match e.R.bitstate_bits with Some b -> string_of_int b | None -> "off")
    (opt_int e.R.max_configs) (opt_int e.R.max_runs)
    (Explore.reduction_name reduction)

let explore_key load engine =
  Fingerprint.to_hex
    (Fingerprint.combine (program_fp load)
       (Fingerprint.combine
          (Fingerprint.of_string (key_params_string load))
          (Fingerprint.of_string (engine_string engine))))

let verdict_key load ~restrict engine =
  Fingerprint.to_hex
    (Fingerprint.combine
       (Fingerprint.combine (program_fp load) (restriction_fp load restrict))
       (Fingerprint.combine
          (Fingerprint.of_string (key_params_string load))
          (Fingerprint.of_string (engine_string engine))))

(* --- running -------------------------------------------------------- *)

type opts = {
  reduction : Explore.reduction option;
  por : bool option;
  exact_keys : bool option;
  audit_keys : bool option;
  jobs : int;
  batch : int;
  resilience : Explore.resilience;
}

let opts_of_engine load (e : R.engine) =
  let reduction = engine_reduction e in
  let por = reduction <> Explore.No_reduction in
  let exact =
    match e.R.exact_keys with
    | Some b -> b
    | None -> Explore.exact_keys_default ()
  in
  let stamp =
    Printf.sprintf "gemcheck/1 %s %s por=%b exact=%b bitstate=%s"
      (command_name load) (params_string load) por exact
      (match e.R.bitstate_bits with Some b -> string_of_int b | None -> "off")
  in
  {
    reduction = Some reduction;
    por = e.R.por;
    exact_keys = e.R.exact_keys;
    audit_keys = None;
    jobs = e.R.jobs;
    batch = e.R.batch;
    resilience =
      {
        Explore.no_resilience with
        Explore.bitstate =
          Option.map (fun bits -> Bitstate.create ~bits ()) e.R.bitstate_bits;
        stamp;
        degrade_crashes = e.R.bitstate_bits <> None;
      };
  }

type exploration = {
  x_computations : Computation.t list;
  x_deadlocks : int;
  x_explored : int;
  x_reduced : int;
  x_truncated : int;
  x_exhausted : Budget.reason option;
  x_configs_used : int;
}

let explore load o ~budget =
  let { reduction; por; exact_keys; audit_keys; jobs; batch; resilience } = o in
  let of_monitor (x : Monitor.outcome) =
    {
      x_computations = x.Monitor.computations;
      x_deadlocks = List.length x.Monitor.deadlocks;
      x_explored = x.Monitor.explored;
      x_reduced = x.Monitor.reduced;
      x_truncated = x.Monitor.truncated;
      x_exhausted = x.Monitor.exhausted;
      x_configs_used = Budget.configs_used budget;
    }
  in
  let of_csp (x : Csp.outcome) =
    {
      x_computations = x.Csp.computations;
      x_deadlocks = List.length x.Csp.deadlocks;
      x_explored = x.Csp.explored;
      x_reduced = x.Csp.reduced;
      x_truncated = x.Csp.truncated;
      x_exhausted = x.Csp.exhausted;
      x_configs_used = Budget.configs_used budget;
    }
  in
  let of_ada (x : Ada.outcome) =
    {
      x_computations = x.Ada.computations;
      x_deadlocks = List.length x.Ada.deadlocks;
      x_explored = x.Ada.explored;
      x_reduced = x.Ada.reduced;
      x_truncated = x.Ada.truncated;
      x_exhausted = x.Ada.exhausted;
      x_configs_used = Budget.configs_used budget;
    }
  in
  match load with
  | Rw { monitor; readers; writers; _ } ->
      Some
        (of_monitor
           (Monitor.explore ?reduction ?por ?exact_keys ?audit_keys ~budget ~jobs ~batch
              ~resilience
              (Readers_writers.program ~monitor:(rw_monitor monitor) ~readers
                 ~writers)))
  | Buffer { lang; capacity; producers; consumers; items } ->
      Some
        (match lang with
        | `Monitor ->
            of_monitor
              (Monitor.explore ?reduction ?por ?exact_keys ?audit_keys ~budget ~jobs
                 ~batch ~resilience
                 (Buffer_problem.monitor_solution ~capacity ~producers
                    ~consumers ~items_each:items))
        | `Csp ->
            of_csp
              (Csp.explore ?reduction ?por ?exact_keys ?audit_keys ~budget ~jobs ~batch
                 ~resilience
                 (Buffer_problem.csp_solution ~capacity ~producers ~consumers
                    ~items_each:items))
        | `Ada ->
            of_ada
              (Ada.explore ?reduction ?por ?exact_keys ?audit_keys ~budget ~jobs ~batch
                 ~resilience
                 (Buffer_problem.ada_solution ~capacity ~producers ~consumers
                    ~items_each:items)))
  | Rwd { lang; readers; writers; broken } ->
      Some
        (match lang with
        | `Csp ->
            let program =
              if broken then
                Rw_distributed.csp_program_no_priority ~readers ~writers
              else Rw_distributed.csp_program ~readers ~writers
            in
            of_csp
              (Csp.explore ?reduction ?por ?exact_keys ?audit_keys
                 ~max_configs:20_000_000 ~budget ~jobs ~batch ~resilience
                 program)
        | `Ada ->
            let program =
              if broken then
                Rw_distributed.ada_program_no_priority ~readers ~writers
              else Rw_distributed.ada_program ~readers ~writers
            in
            of_ada
              (Ada.explore ?reduction ?por ?exact_keys ?audit_keys
                 ~max_configs:20_000_000 ~budget ~jobs ~batch ~resilience
                 program))
  | Db _ | Life _ -> None

(* --- verdict combination (hoisted verbatim from the CLI) ------------ *)

(* A falsifying witness is sound even under truncated exploration, so
   Falsified wins; otherwise any exploration cut makes the whole claim
   inconclusive. *)
let combined_status ~explore_exhausted verdicts =
  match (Verdict.overall verdicts, explore_exhausted) with
  | Verdict.Falsified, _ -> Verdict.Falsified
  | _, Some r -> Verdict.Inconclusive r
  | s, None -> s

let coverage ~explored ~reduced ~truncated verdicts =
  {
    Budget.configs_explored = explored;
    configs_reduced = reduced;
    branches_truncated = truncated;
    runs_enumerated =
      List.fold_left (fun n v -> n + v.Verdict.runs_checked) 0 verdicts;
    runs_complete = List.for_all (fun v -> v.Verdict.complete) verdicts;
  }

let deadlock_verdict ~spec_name n =
  (* Deadlocked schedules falsify a solution outright; report them through
     the same three-valued channel as restriction failures. *)
  if n = 0 then None
  else
    Some
      {
        Verdict.spec_name;
        legality = [];
        failures =
          [
            {
              Verdict.restriction =
                Printf.sprintf "deadlock-freedom (%d deadlocked schedule(s))"
                  n;
              formula = Formula.False;
              witness = None;
            };
          ];
        runs_checked = 0;
        complete = true;
        exhaustion = None;
        coverage = Budget.full_coverage;
      }

type result = {
  status : Verdict.status;
  detail : string;
  coverage : Budget.coverage;
  failures : (int * Verdict.t) list;
  exit_code : int;
}

let with_restrict problem = function
  | None -> problem
  | Some f ->
      {
        problem with
        Spec.restrictions =
          problem.Spec.restrictions @ [ (R.restriction_name, f) ];
      }

let finish status detail cov failures =
  { status; detail; coverage = cov; failures; exit_code = Verdict.exit_code status }

let conclude load o ~budget ~restrict exploration =
  let strategy = Strategy.of_budget budget in
  match (load, exploration) with
  | (Rw _ | Buffer _ | Rwd _), None ->
      invalid_arg "Runner.conclude: missing exploration"
  | (Db _ | Life _), Some _ ->
      invalid_arg "Runner.conclude: unexpected exploration"
  | Rw { version; readers; writers; _ }, Some x ->
      let problem =
        with_restrict
          (Readers_writers.spec version
             ~users:(Readers_writers.user_names ~readers ~writers))
          restrict
      in
      let results =
        Refine.sat ~strategy ~budget ~jobs:o.jobs ~edges:Refine.Actor_paths
          ~problem ~map:Readers_writers.correspondence x.x_computations
      in
      let verdicts = List.map snd results in
      let status = combined_status ~explore_exhausted:x.x_exhausted verdicts in
      let failures = List.filter (fun (_, v) -> not (Verdict.ok v)) results in
      let detail =
        Printf.sprintf "%d distinct computations, %d deadlocks vs %s: %s"
          (List.length x.x_computations)
          x.x_deadlocks
          (Readers_writers.version_name version)
          (match failures with
          | [] -> "no violation found"
          | (i, _) :: _ ->
              Printf.sprintf "violated on computation %d (of %d failing)" i
                (List.length failures))
      in
      finish status detail
        (coverage ~explored:x.x_explored ~reduced:x.x_reduced
           ~truncated:x.x_truncated verdicts)
        failures
  | Buffer { lang; capacity; _ }, Some x ->
      let problem = with_restrict (Buffer_problem.spec ~capacity) restrict in
      let map =
        match lang with
        | `Monitor -> Buffer_problem.monitor_correspondence
        | `Csp -> Buffer_problem.csp_correspondence
        | `Ada -> Buffer_problem.ada_correspondence
      in
      let results =
        Refine.sat ~strategy ~budget ~jobs:o.jobs ~problem ~map
          x.x_computations
      in
      let verdicts =
        List.map snd results
        @ Option.to_list (deadlock_verdict ~spec_name:"buffer" x.x_deadlocks)
      in
      let status = combined_status ~explore_exhausted:x.x_exhausted verdicts in
      let detail =
        Printf.sprintf "%d computations, %d deadlocks"
          (List.length x.x_computations)
          x.x_deadlocks
      in
      finish status detail
        (coverage ~explored:x.x_explored ~reduced:x.x_reduced
           ~truncated:x.x_truncated verdicts)
        (List.filter (fun (_, v) -> not (Verdict.ok v)) results)
  | Rwd { lang; readers; writers; _ }, Some x ->
      let rnames, wnames = Rw_distributed.user_names ~readers ~writers in
      let problem =
        with_restrict
          (Rw_distributed.spec ~readers:rnames ~writers:wnames)
          restrict
      in
      let map =
        match lang with
        | `Csp -> Rw_distributed.csp_correspondence
        | `Ada -> Rw_distributed.ada_correspondence
      in
      let results =
        Refine.sat ~strategy ~budget ~jobs:o.jobs ~problem ~map
          x.x_computations
      in
      let verdicts =
        List.map snd results
        @ Option.to_list (deadlock_verdict ~spec_name:"rwd" x.x_deadlocks)
      in
      let status = combined_status ~explore_exhausted:x.x_exhausted verdicts in
      let detail =
        Printf.sprintf "%d computations, %d deadlocks"
          (List.length x.x_computations)
          x.x_deadlocks
      in
      finish status detail
        (coverage ~explored:x.x_explored ~reduced:x.x_reduced
           ~truncated:x.x_truncated verdicts)
        (List.filter (fun (_, v) -> not (Verdict.ok v)) results)
  | Db { sites }, None ->
      let { reduction; por; exact_keys; audit_keys; jobs; batch; resilience } =
        o
      in
      let r =
        Db_update.check ?reduction ?por ?exact_keys ?audit_keys ~budget ~jobs
          ~batch
          ~resilience ~sites ()
      in
      let status =
        if (not r.Db_update.converges) || r.deadlocks > 0 then Verdict.Falsified
        else
          match r.exhausted with
          | Some reason -> Verdict.Inconclusive reason
          | None -> Verdict.Verified
      in
      let detail =
        Printf.sprintf "%d computations, %d deadlocks, convergence: %b"
          r.Db_update.computations r.deadlocks r.converges
      in
      finish status detail
        {
          Budget.full_coverage with
          Budget.configs_explored = r.explored;
          configs_reduced = r.reduced;
          runs_complete = r.exhausted = None;
        }
        []
  | Life { width; height; generations }, None ->
      let comp = Life.build ~width ~height ~generations ~alive:life_alive in
      let spec = Life.spec ~width ~height in
      let v =
        Check.check_formula ~budget spec comp ~name:"matches-reference"
          (Life.matches_reference ~width ~height ~generations ~alive:life_alive)
      in
      let status = Verdict.status v in
      let detail =
        Printf.sprintf "%d events, correct: %b, asynchrony witness: %b"
          (Computation.n_events comp)
          (Verdict.ok v)
          (Life.asynchrony_witness comp <> None)
      in
      finish status detail v.Verdict.coverage
        (if Verdict.ok v then [] else [ (0, v) ])

let run load o ~budget ~restrict =
  conclude load o ~budget ~restrict (explore load o ~budget)

(* --- reporting ------------------------------------------------------ *)

let render_json ~command r =
  Printf.sprintf
    {|{"command":"%s","status":"%s","reason":%s,"detail":"%s","coverage":%s}|}
    command
    (Verdict.status_keyword r.status)
    (match r.status with
    | Verdict.Inconclusive reason -> Budget.reason_json reason
    | _ -> "null")
    r.detail
    (Budget.coverage_json r.coverage)

let print_report ~json ~command r =
  if json then print_string (render_json ~command r)
  else begin
    Printf.printf "%s\n" r.detail;
    Format.printf "%a@." Verdict.pp_status r.status;
    match r.status with
    | Verdict.Inconclusive _ ->
        Format.printf "  %a@." Budget.pp_coverage r.coverage
    | _ -> ()
  end;
  r.exit_code
