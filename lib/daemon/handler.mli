(** The [gemcheck serve] request handler: {!Gem_syntax.Request} in,
    header + verdict lines out, with a verdict cache and an exploration
    cache in between.

    Response shape (one JSON object per line):
    - every response starts with a {e header} line
      [{"serve":1,...,"body":N,"code":C}]; [N] more lines follow.
      [C] is the exit code the equivalent one-shot run would have
      returned (0 verified / 1 falsified / 2 inconclusive / 3 error).
    - a [check] response's header carries provenance — [who] computed
      the verdict ([{"cache":"hit|miss|coalesced|uncached"}]), the cache
      [key], and [elapsed_ms] — and its single body line is byte-for-byte
      the [--json] report of the equivalent one-shot run.
    - errors (parse errors, unknown commands, handler-level crashes,
      injected faults) are a header with an ["error"] field and no body.

    Caching:
    - the {e verdict cache} maps {!Runner.verdict_key} to the rendered
      report, with single-flight coalescing ({!Gem_check.Cache});
    - the {e exploration cache} maps {!Runner.explore_key} to the
      exploration phase's outcome, so requests that differ only in their
      restriction re-check computations without re-exploring (counted
      under the [Explorations_shared] telemetry counter);
    - requests with a [timeout] bypass both caches ([cache]:
      ["uncached"]) — their verdicts depend on wall-clock time, and the
      byte-identity guarantee is only meaningful for deterministic
      requests. *)

type t

val create : cache_size:int -> unit -> t
(** [cache_size] bounds each cache's completed-entry count. *)

val handle : t -> string -> string list
(** Thread-safe; pass as the {!Gem_check.Server.run} handler. Never
    raises: anything thrown by the engines (including
    {!Gem_check.Faults.Injected}) becomes an error header. *)

val stats_body : t -> string
(** The [stats] verb's body line: both caches' counters. *)
