(** A one-shot client for the [gemcheck serve] protocol: connect, send
    one request line, read the header and its announced body lines,
    disconnect. Used by [gemcheck client], the serve benchmarks and the
    end-to-end tests. *)

type response = {
  header : string;  (** The raw header line. *)
  body : string list;  (** Exactly the [body]-count lines that followed. *)
  code : int;  (** The header's ["code"] field. *)
  error : string option;  (** The header's ["error"] field, if any. *)
}

val request : socket:string -> string -> (response, string) result
(** [request ~socket line] performs one round trip. [Error] covers
    transport problems (no daemon at [socket], disconnect mid-response)
    and malformed headers — protocol-level errors from a healthy daemon
    come back as [Ok] with [error = Some _]. *)

val field_int : string -> string -> int option
(** [field_int header name] extracts an integer field from a header line
    this module's daemon wrote ([..."name":42...]). Exposed for tests. *)

val field_string : string -> string -> string option
(** Same for string fields; undoes JSON escaping. *)
