module R = Gem_syntax.Request
module Cache = Gem_check.Cache
module Server = Gem_check.Server
module Faults = Gem_check.Faults
module Budget = Gem_check.Budget
module T = Gem_obs.Telemetry

type t = {
  verdicts : (int * string) Cache.t;  (* exit code, rendered report *)
  explorations : Runner.exploration Cache.t;
}

let create ~cache_size () =
  {
    verdicts = Cache.create ~capacity:cache_size ();
    (* telemetry:false — the global cache counters describe the verdict
       cache; exploration sharing has its own counter below. *)
    explorations = Cache.create ~telemetry:false ~capacity:cache_size ();
  }

let error_line ?(code = 3) msg =
  Printf.sprintf {|{"serve":1,"error":"%s","body":0,"code":%d}|}
    (Server.json_escape msg) code

let cache_stats_json (s : Cache.stats) =
  Printf.sprintf
    {|{"entries":%d,"capacity":%d,"hits":%d,"misses":%d,"coalesced":%d,"evictions":%d}|}
    s.Cache.entries s.capacity s.hits s.misses s.coalesced s.evictions

let stats_body t =
  Printf.sprintf {|{"verdicts":%s,"explorations":%s}|}
    (cache_stats_json (Cache.stats t.verdicts))
    (cache_stats_json (Cache.stats t.explorations))

(* Build the verdict for a cache miss: share the exploration if an
   equivalent one is cached (or in flight), then conclude on a second
   budget restored to the exploration's end state — the protocol
   documented in {!Runner}. *)
let compute_body t load (c : R.check) =
  let e = c.R.engine in
  let opts = Runner.opts_of_engine load e in
  let mk_budget () =
    Budget.make ?max_configs:e.R.max_configs ?max_runs:e.R.max_runs ()
  in
  let exploration =
    if not (Runner.has_exploration load) then None
    else begin
      let xkey = Runner.explore_key load e in
      let x, prov =
        Cache.find_or_compute t.explorations xkey (fun () ->
            let budget = mk_budget () in
            match Runner.explore load opts ~budget with
            | Some x -> x
            | None -> assert false)
      in
      (match prov with
      | Cache.Hit | Cache.Coalesced -> T.hit T.Explorations_shared
      | Cache.Miss -> ());
      Some x
    end
  in
  let budget = mk_budget () in
  Option.iter
    (fun x ->
      Budget.restore budget ~configs:x.Runner.x_configs_used ~runs:0;
      Option.iter (Budget.note budget) x.Runner.x_exhausted)
    exploration;
  let r = Runner.conclude load opts ~budget ~restrict:c.R.restrict exploration in
  (r.Runner.exit_code, Runner.render_json ~command:(Runner.command_name load) r)

let check_response t (c : R.check) =
  match Runner.of_request c with
  | Error e -> [ error_line e ]
  | Ok load when c.R.restrict <> None && not (Runner.supports_restrict load) ->
      [
        error_line
          (Printf.sprintf "%s does not take a restrict= formula"
             (Runner.command_name load));
      ]
  | Ok load -> (
      let started = Unix.gettimeofday () in
      let key = Runner.verdict_key load ~restrict:c.R.restrict c.R.engine in
      let respond provenance (code, body) =
        let header =
          Printf.sprintf
            {|{"serve":1,"command":"%s","cache":"%s","key":"%s","elapsed_ms":%.3f,"body":1,"code":%d}|}
            (Runner.command_name load) provenance key
            ((Unix.gettimeofday () -. started) *. 1000.)
            code
        in
        [ header; body ]
      in
      match
        if c.R.engine.R.timeout <> None then
          (* Wall-clock-bounded verdicts are not reproducible; compute
             fresh on the single-budget path and keep them out of the
             caches. *)
          let e = c.R.engine in
          let budget =
            Budget.make ?timeout:e.R.timeout ?max_configs:e.R.max_configs
              ?max_runs:e.R.max_runs ()
          in
          let opts = Runner.opts_of_engine load e in
          let r = Runner.run load opts ~budget ~restrict:c.R.restrict in
          ( ( r.Runner.exit_code,
              Runner.render_json ~command:(Runner.command_name load) r ),
            "uncached" )
        else
          let v, prov =
            Cache.find_or_compute t.verdicts key (fun () ->
                compute_body t load c)
          in
          (v, Cache.provenance_name prov)
      with
      | v, prov -> respond prov v
      | exception Faults.Injected point ->
          Faults.survived ();
          [
            error_line
              (Printf.sprintf
                 "fault injected at %s; verdict unavailable, retry or check \
                  without GEM_FAULT"
                 (Faults.point_name point));
          ]
      | exception e ->
          [ error_line ("internal: " ^ Printexc.to_string e) ])

let handle t line =
  match R.parse line with
  | Error e -> [ error_line ("parse: " ^ e) ]
  | Ok R.Ping -> [ {|{"serve":1,"pong":true,"body":0,"code":0}|} ]
  | Ok R.Stats ->
      [ {|{"serve":1,"body":1,"code":0}|}; stats_body t ]
  | Ok (R.Check c) -> check_response t c
