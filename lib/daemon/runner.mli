(** One verification request, end to end — the engine shared by the
    one-shot CLI subcommands ([gemcheck rw] and friends) and the
    [gemcheck serve] daemon.

    Byte-identity is the point: a daemon response must be byte-identical
    to the [--json] report of the equivalent one-shot run, whether it was
    computed fresh, answered from the verdict cache, or assembled from a
    shared exploration. That only holds if there is exactly one code path
    from workload to report, so the CLI's per-command pipelines (build
    program, explore, refine against the problem spec, combine verdicts,
    render) live here and both front ends call them.

    {b Two-phase budgets.} [explore] and [conclude] split a run at the
    exploration/checking boundary so the daemon can reuse an exploration
    across requests that differ only in their restriction. The protocol:
    run [explore] on a fresh budget, capture {!exploration} (which
    records the configurations charged and any exhaustion reason), then
    for each consumer build a second budget with the same limits,
    [Budget.restore] the charge, re-[Budget.note] the reason, and call
    [conclude]. Because the checking phase reads only the budget's
    charge counters, its sticky first-reason-wins exhaustion cell and
    its run cap, the restored budget is observationally identical to the
    one that did the exploring — {!run} (the single-budget one-shot
    path) and the two-phase path produce the same bytes, which
    [test/test_serve.ml] checks across the whole parameter grid. *)

type load =
  | Rw of {
      monitor : string;  (** paper | writers-priority | buggy | no-exclusion *)
      version : Gem_problems.Readers_writers.version;
      readers : int;
      writers : int;
    }
  | Buffer of {
      lang : [ `Monitor | `Csp | `Ada ];
      capacity : int;
      producers : int;
      consumers : int;
      items : int;
    }
  | Rwd of {
      lang : [ `Csp | `Ada ];
      readers : int;
      writers : int;
      broken : bool;
    }
  | Db of { sites : int }
  | Life of { width : int; height : int; generations : int }

val command_name : load -> string

val params_string : load -> string
(** The workload-parameter half of the resilience/checkpoint stamp —
    char-for-char the strings the CLI has always written, so existing
    checkpoints keep resuming. *)

val of_request : Gem_syntax.Request.check -> (load, string) result
(** Interpret a wire request's workload parameters. Unknown commands,
    unknown keys and malformed values are one-line errors. *)

val monitor_of_name :
  string -> (Gem_lang.Monitor.monitor, string) result

val supports_restrict : load -> bool
(** Whether the command checks computations against a problem spec a
    client restriction can be appended to ([rw], [buffer], [rwd]). *)

val has_exploration : load -> bool
(** Whether the command has a separable exploration phase whose result
    can be shared across restrictions ([rw], [buffer], [rwd]). *)

(** {1 Cache keying} *)

val verdict_key :
  load -> restrict:Gem_logic.Formula.t option -> Gem_syntax.Request.engine -> string
(** Hex of a fingerprint over every verdict-relevant input: the
    program's initial-configuration fingerprint (where the command
    builds a program), the full workload parameters, the problem spec's
    restriction set plus the client restriction, and the engine
    configuration with environment defaults resolved. *)

val explore_key : load -> Gem_syntax.Request.engine -> string
(** {!verdict_key} minus the restriction component — requests that agree
    on it can share one exploration. *)

(** {1 Running} *)

type opts = {
  reduction : Gem_lang.Explore.reduction option;
      (** [None] defers to {!Gem_lang.Explore.resolve_reduction} inside
          the interpreter; {!opts_of_engine} always resolves it. *)
  por : bool option;
  exact_keys : bool option;
  audit_keys : bool option;
  jobs : int;
  batch : int;
  resilience : Gem_lang.Explore.resilience;
}

val opts_of_engine : load -> Gem_syntax.Request.engine -> opts
(** The daemon's options: bitstate per the engine record, no spill or
    checkpointing, stamp built from {!params_string}. *)

type exploration = {
  x_computations : Gem_model.Computation.t list;
  x_deadlocks : int;
  x_explored : int;
  x_reduced : int;
  x_truncated : int;
  x_exhausted : Gem_check.Budget.reason option;
  x_configs_used : int;  (** [Budget.configs_used] after exploring. *)
}

val explore :
  load -> opts -> budget:Gem_check.Budget.t -> exploration option
(** The exploration phase; [None] when {!has_exploration} is false. *)

type result = {
  status : Gem_check.Verdict.status;
  detail : string;
  coverage : Gem_check.Budget.coverage;
  failures : (int * Gem_check.Verdict.t) list;
      (** Failing (computation index, verdict) pairs, for the CLI's
          human-readable witness printing. *)
  exit_code : int;
}

val conclude :
  load ->
  opts ->
  budget:Gem_check.Budget.t ->
  restrict:Gem_logic.Formula.t option ->
  exploration option ->
  result
(** The checking phase. Requires an exploration iff {!has_exploration};
    raises [Invalid_argument] on a mismatch. *)

val run :
  load ->
  opts ->
  budget:Gem_check.Budget.t ->
  restrict:Gem_logic.Formula.t option ->
  result
(** [explore] then [conclude] on the one given budget — the one-shot
    path. *)

(** {1 Reporting} *)

val render_json : command:string -> result -> string
(** The exact [--json] report object (no trailing newline). *)

val print_report : json:bool -> command:string -> result -> int
(** Print the report to stdout ([--json] or human form) and return the
    exit code. *)
