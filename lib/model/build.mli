(** Imperative builder for {!Computation}s.

    Typical use: declare elements and groups, emit events (each gets the
    next occurrence index at its element), draw enable edges between the
    returned handles, and [finish]. Emission order at an element {e is} the
    element order — mirroring how an execution unfolds. *)

type t

val create : unit -> t

val declare_element : t -> string -> unit
(** Idempotent. Elements may also be declared implicitly by emitting. *)

val declare_group : t -> Group.t -> unit
(** Raises [Invalid_argument] on a duplicate group name. *)

val emit :
  t -> element:string -> klass:string -> ?params:(string * Value.t) list -> unit -> int
(** Creates the next event at [element], returning its handle. *)

val enable : t -> int -> int -> unit
(** Records [a |> b]. Self-enables are rejected ([Invalid_argument]): the
    enable relation is irreflexive by definition. *)

val emit_enabled_by : t -> by:int -> element:string -> klass:string ->
  ?params:(string * Value.t) list -> unit -> int
(** [emit] followed by [enable ~by handle] — the common "this action
    enables that one" chaining. *)

val event_count : t -> int

val finish : t -> Computation.t
(** The builder remains usable after [finish]; subsequent emissions extend
    a fresh snapshot (histories of a growing run can be snapshotted). *)
