type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Pair of t * t
  | List of t list

let rec compare a b =
  match a, b with
  | Unit, Unit -> 0
  | Unit, _ -> -1
  | _, Unit -> 1
  | Bool x, Bool y -> Bool.compare x y
  | Bool _, _ -> -1
  | _, Bool _ -> 1
  | Int x, Int y -> Int.compare x y
  | Int _, _ -> -1
  | _, Int _ -> 1
  | Str x, Str y -> String.compare x y
  | Str _, _ -> -1
  | _, Str _ -> 1
  | Pair (x1, y1), Pair (x2, y2) ->
      (match compare x1 x2 with 0 -> compare y1 y2 | c -> c)
  | Pair _, _ -> -1
  | _, Pair _ -> 1
  | List xs, List ys -> List.compare compare xs ys

let equal a b = compare a b = 0

let rec pp ppf = function
  | Unit -> Format.fprintf ppf "()"
  | Bool b -> Format.fprintf ppf "%b" b
  | Int n -> Format.fprintf ppf "%d" n
  | Str s -> Format.fprintf ppf "%S" s
  | Pair (a, b) -> Format.fprintf ppf "(%a, %a)" pp a pp b
  | List xs ->
      Format.fprintf ppf "[%a]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp)
        xs

let to_string v = Format.asprintf "%a" pp v

let as_int = function Int n -> n | v -> invalid_arg ("Value.as_int: " ^ to_string v)
let as_bool = function Bool b -> b | v -> invalid_arg ("Value.as_bool: " ^ to_string v)
let as_string = function Str s -> s | v -> invalid_arg ("Value.as_string: " ^ to_string v)
