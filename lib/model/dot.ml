let sanitize s =
  String.map (fun c -> if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') then c else '_') s

let computation ppf c =
  Format.fprintf ppf "@[<v 2>digraph gem {@,rankdir=TB;@,node [shape=box, fontsize=10];";
  List.iteri
    (fun i el ->
      Format.fprintf ppf "@,@[<v 2>subgraph cluster_%d {@,label=\"%s\";@,style=dashed;" i el;
      List.iter
        (fun h ->
          let e = Computation.event c h in
          Format.fprintf ppf "@,n%d [label=\"%s\"];" h
            (String.concat ""
               [ sanitize el; "^"; string_of_int e.Event.id.index; "\\n"; e.Event.klass ]))
        (Computation.events_at c el);
      Format.fprintf ppf "@]@,}")
    (Computation.elements c);
  (* Element-successor edges (dashed). *)
  List.iter
    (fun el ->
      let rec link = function
        | a :: (b :: _ as rest) ->
            Format.fprintf ppf "@,n%d -> n%d [style=dashed, color=gray];" a b;
            link rest
        | [ _ ] | [] -> ()
      in
      link (Computation.events_at c el))
    (Computation.elements c);
  (* Enable edges (solid). *)
  List.iter
    (fun h ->
      List.iter
        (fun h' -> Format.fprintf ppf "@,n%d -> n%d;" h h')
        (Computation.enable_succs c h))
    (Computation.all_events c);
  Format.fprintf ppf "@]@,}@."

let to_string c = Format.asprintf "%a" computation c

let save path c =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string c))
