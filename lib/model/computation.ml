module Digraph = Gem_order.Digraph
module Poset = Gem_order.Poset

module Id_map = Map.Make (struct
  type t = Event.id

  let compare = Event.id_compare
end)

type t = {
  elements : string list;
  groups : Group.t list;
  events : Event.t array;
  enable : Digraph.t;
  by_id : int Id_map.t;
  at_element : (string, int list) Hashtbl.t;  (* element -> handles in order *)
  causal : Digraph.t;
  temporal : Poset.t option;
}

let elements t = t.elements
let groups t = t.groups
let group t name = List.find_opt (fun (g : Group.t) -> String.equal g.name name) t.groups
let has_element t name = List.exists (String.equal name) t.elements
let n_events t = Array.length t.events

let event t h =
  if h < 0 || h >= Array.length t.events then invalid_arg "Computation.event";
  t.events.(h)

let find t id = Id_map.find_opt id t.by_id

let find_exn t id =
  match find t id with
  | Some h -> h
  | None -> invalid_arg (Format.asprintf "Computation.find_exn: no event %a" Event.pp_id id)

let handle_of t ~element ~index = find t { Event.element; index }

let all_events t = List.init (Array.length t.events) Fun.id

let events_at t el = Option.value ~default:[] (Hashtbl.find_opt t.at_element el)

let events_of_class t klass =
  let acc = ref [] in
  Array.iteri (fun h e -> if Event.has_class e klass then acc := h :: !acc) t.events;
  List.rev !acc

let events_of_class_at t ~element ~klass =
  List.filter (fun h -> Event.has_class t.events.(h) klass) (events_at t element)

let enables t a b = Digraph.mem_edge t.enable a b
let enable_succs t a = Digraph.succs t.enable a
let enable_preds t a = Digraph.preds t.enable a
let enable_graph t = t.enable

let elem_lt t a b =
  let ea = (event t a).Event.id and eb = (event t b).Event.id in
  String.equal ea.element eb.element && ea.index < eb.index

let causal_graph t = t.causal
let temporal t = t.temporal

let temporal_exn t =
  match t.temporal with
  | Some p -> p
  | None -> invalid_arg "Computation: causal graph is cyclic, no temporal order"

let temp_lt t a b = Poset.lt (temporal_exn t) a b
let concurrent t a b = a <> b && not (temp_lt t a b) && not (temp_lt t b a)

let build_tables events enable elements groups =
  let n = Array.length events in
  let by_id =
    Array.to_seq events
    |> Seq.mapi (fun h (e : Event.t) -> (e.id, h))
    |> Id_map.of_seq
  in
  let at_element = Hashtbl.create 16 in
  Array.iteri
    (fun h (e : Event.t) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt at_element e.id.element) in
      Hashtbl.replace at_element e.id.element (h :: prev))
    events;
  (* Reverse and sort each list by occurrence index. *)
  Hashtbl.filter_map_inplace
    (fun _ hs ->
      Some
        (List.sort
           (fun a b -> Int.compare events.(a).Event.id.index events.(b).Event.id.index)
           hs))
    at_element;
  let causal = Digraph.copy enable in
  Hashtbl.iter
    (fun _ hs ->
      let rec link = function
        | a :: (b :: _ as rest) ->
            Digraph.add_edge causal a b;
            link rest
        | [ _ ] | [] -> ()
      in
      link hs)
    at_element;
  let temporal = Poset.of_digraph causal in
  ignore n;
  { elements; groups; events; enable; by_id; at_element; causal; temporal }

let unsafe_make ~elements ~groups ~events ~enable =
  build_tables events enable elements groups

let map_events f t =
  let events =
    Array.mapi
      (fun h e ->
        let e' = f h e in
        if not (Event.id_equal e'.Event.id e.Event.id) then
          invalid_arg "Computation.map_events: event identity changed";
        e')
      t.events
  in
  { t with events }

let pp ppf t =
  Format.fprintf ppf "@[<v>computation: %d elements, %d groups, %d events"
    (List.length t.elements) (List.length t.groups) (Array.length t.events);
  Array.iteri
    (fun h e ->
      Format.fprintf ppf "@,%3d  %a" h Event.pp e;
      match Digraph.succs t.enable h with
      | [] -> ()
      | ss ->
          Format.fprintf ppf "  |> %a"
            (Format.pp_print_list
               ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
               Format.pp_print_int)
            ss)
    t.events;
  Format.fprintf ppf "@]"
