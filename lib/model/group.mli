(** GEM groups: named clusters of elements and/or other groups (paper §4).

    Groups model scope: an event may enable an event of another element only
    if the group structure grants access (see {!Gem_spec.Access}). Certain
    events are designated {e port events} — "access holes" into a group —
    identified by (element, event class) pairs, as in
    [PORTS(Oper1.Start, ...)]. Groups may be disjoint, hierarchical or
    overlapping. *)

type member = Elem of string | Grp of string

type port = { port_element : string; port_class : string }

type t = { name : string; members : member list; ports : port list }

val make : ?ports:port list -> string -> member list -> t

val member_equal : member -> member -> bool

val contains_element : t -> string -> bool
(** Direct membership of an element (not recursive). *)

val contains_group : t -> string -> bool

val is_port : t -> element:string -> klass:string -> bool

val pp : Format.formatter -> t -> unit
