(** Data values carried by GEM events.

    The paper attaches data parameters to events (e.g. [Assign(newval:
    INTEGER)]) and lets restrictions compare them ([send.par1 =
    receive.par2]). This small dynamic value universe is what event
    parameters range over. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Pair of t * t
  | List of t list

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** Conveniences for the common cases, raising [Invalid_argument] on a
    type mismatch — parameter schemas are checked when specs are applied,
    so a mismatch here is a programming error. *)

val as_int : t -> int

val as_bool : t -> bool

val as_string : t -> string
