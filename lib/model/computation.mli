(** GEM computations: finite sets of events with the three relations
    (paper §3, §5).

    A computation holds
    - its declared elements and groups,
    - its events, densely numbered [0 .. n_events-1] (the {e handle}),
    - the enable relation [e1 |> e2] as an explicit edge set,
    - the element order [e1 =>el e2], which is structural: [e1] precedes
      [e2] in the element order iff they occur at the same element and
      [e1]'s occurrence index is smaller,
    - the temporal order [e1 => e2]: transitive closure of the union of the
      enable relation and the element order, minus identity. It exists (is
      a strict partial order) iff that union is acyclic; an acyclic-ness
      failure makes the computation illegal (checked by
      {!Gem_spec.Legality}).

    Computations are immutable; use {!Build} to construct them. *)

type t

(** {1 Structure} *)

val elements : t -> string list
(** Declared element names in declaration order. *)

val groups : t -> Group.t list

val group : t -> string -> Group.t option

val has_element : t -> string -> bool

(** {1 Events} *)

val n_events : t -> int

val event : t -> int -> Event.t
(** Raises [Invalid_argument] on an out-of-range handle. *)

val find : t -> Event.id -> int option
(** Handle of the event with the given identity. *)

val find_exn : t -> Event.id -> int

val handle_of : t -> element:string -> index:int -> int option

val all_events : t -> int list

val events_at : t -> string -> int list
(** Handles of the events at an element, in element order. *)

val events_of_class : t -> string -> int list
(** Handles of all events of a class, ascending handle order. *)

val events_of_class_at : t -> element:string -> klass:string -> int list

(** {1 Relations} *)

val enables : t -> int -> int -> bool
(** The enable relation [|>] on handles. *)

val enable_succs : t -> int -> int list

val enable_preds : t -> int -> int list

val enable_graph : t -> Gem_order.Digraph.t

val elem_lt : t -> int -> int -> bool
(** The element order: same element, strictly smaller occurrence index. *)

val causal_graph : t -> Gem_order.Digraph.t
(** Enable edges plus element-successor edges — the generator whose
    transitive closure is the temporal order. *)

val temporal : t -> Gem_order.Poset.t option
(** The temporal order, or [None] when the causal graph is cyclic
    (computed once at construction). *)

val temporal_exn : t -> Gem_order.Poset.t

val temp_lt : t -> int -> int -> bool
(** [e1 => e2]. Raises [Invalid_argument] if the computation is cyclic. *)

val concurrent : t -> int -> int -> bool
(** Potentially concurrent: distinct and temporally unordered. *)

(** {1 Transformation} *)

val map_events : (int -> Event.t -> Event.t) -> t -> t
(** Rebuild with transformed events (identities must be preserved); used by
    the thread-labelling engine. Raises [Invalid_argument] if a transformed
    event changes its [id]. *)

val pp : Format.formatter -> t -> unit

(** {1 Construction (used by {!Build})} *)

val unsafe_make :
  elements:string list ->
  groups:Group.t list ->
  events:Event.t array ->
  enable:Gem_order.Digraph.t ->
  t
(** Trusts that event identities are consistent with array positions
    grouped per element in index order; {!Build.finish} guarantees this. *)
