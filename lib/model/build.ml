type t = {
  mutable element_order : string list;  (* reversed declaration order *)
  element_counts : (string, int) Hashtbl.t;
  mutable groups : Group.t list;  (* reversed *)
  mutable events : Event.t list;  (* reversed *)
  mutable n : int;
  mutable enable_edges : (int * int) list;
}

let create () =
  {
    element_order = [];
    element_counts = Hashtbl.create 16;
    groups = [];
    events = [];
    n = 0;
    enable_edges = [];
  }

let declare_element t name =
  if not (Hashtbl.mem t.element_counts name) then begin
    Hashtbl.add t.element_counts name 0;
    t.element_order <- name :: t.element_order
  end

let declare_group t (g : Group.t) =
  if List.exists (fun (g' : Group.t) -> String.equal g'.name g.name) t.groups then
    invalid_arg ("Build.declare_group: duplicate group " ^ g.name);
  t.groups <- g :: t.groups

let emit t ~element ~klass ?(params = []) () =
  declare_element t element;
  let index = Hashtbl.find t.element_counts element in
  Hashtbl.replace t.element_counts element (index + 1);
  let e = Event.make ~element ~index ~klass params in
  t.events <- e :: t.events;
  let handle = t.n in
  t.n <- t.n + 1;
  handle

let enable t a b =
  if a = b then invalid_arg "Build.enable: the enable relation is irreflexive";
  if a < 0 || a >= t.n || b < 0 || b >= t.n then invalid_arg "Build.enable: bad handle";
  t.enable_edges <- (a, b) :: t.enable_edges

let emit_enabled_by t ~by ~element ~klass ?params () =
  let h = emit t ~element ~klass ?params () in
  enable t by h;
  h

let event_count t = t.n

let finish t =
  let events = Array.of_list (List.rev t.events) in
  let enable = Gem_order.Digraph.of_edges t.n (List.rev t.enable_edges) in
  Computation.unsafe_make
    ~elements:(List.rev t.element_order)
    ~groups:(List.rev t.groups)
    ~events ~enable
