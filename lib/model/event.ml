type id = { element : string; index : int }

type t = {
  id : id;
  klass : string;
  params : (string * Value.t) list;
  threads : (string * int) list;
  actor : string option;
}

let id_compare a b =
  match String.compare a.element b.element with
  | 0 -> Int.compare a.index b.index
  | c -> c

let id_equal a b = id_compare a b = 0

let pp_id ppf { element; index } = Format.fprintf ppf "%s^%d" element index

let make ?actor ~element ~index ~klass params =
  { id = { element; index }; klass; params; threads = []; actor }

let param e name = List.assoc name e.params
let param_opt e name = List.assoc_opt name e.params
let has_class e klass = String.equal e.klass klass
let with_thread e pi inst = { e with threads = (pi, inst) :: e.threads }
let thread_instance e pi = List.assoc_opt pi e.threads

let pp ppf e =
  Format.fprintf ppf "%a:%s" pp_id e.id e.klass;
  if e.params <> [] then
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         (fun ppf (k, v) -> Format.fprintf ppf "%s=%a" k Value.pp v))
      e.params;
  List.iter (fun (pi, i) -> Format.fprintf ppf "[%s-%d]" pi i) e.threads
