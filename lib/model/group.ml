type member = Elem of string | Grp of string

type port = { port_element : string; port_class : string }

type t = { name : string; members : member list; ports : port list }

let make ?(ports = []) name members = { name; members; ports }

let member_equal a b =
  match a, b with
  | Elem x, Elem y | Grp x, Grp y -> String.equal x y
  | Elem _, Grp _ | Grp _, Elem _ -> false

let contains_element g el =
  List.exists (function Elem e -> String.equal e el | Grp _ -> false) g.members

let contains_group g name =
  List.exists (function Grp n -> String.equal n name | Elem _ -> false) g.members

let is_port g ~element ~klass =
  List.exists
    (fun p -> String.equal p.port_element element && String.equal p.port_class klass)
    g.ports

let pp_member ppf = function
  | Elem e -> Format.fprintf ppf "%s" e
  | Grp g -> Format.fprintf ppf "GROUP %s" g

let pp ppf g =
  Format.fprintf ppf "@[<hov 2>%s = GROUP(%a)" g.name
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp_member)
    g.members;
  if g.ports <> [] then
    Format.fprintf ppf "@ PORTS(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
         (fun ppf p -> Format.fprintf ppf "%s.%s" p.port_element p.port_class))
      g.ports;
  Format.fprintf ppf "@]"
