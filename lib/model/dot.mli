(** Graphviz export of computations: enable edges solid, element-successor
    edges dashed, events clustered by element. Handy for inspecting
    counterexamples. *)

val computation : Format.formatter -> Computation.t -> unit

val to_string : Computation.t -> string

val save : string -> Computation.t -> unit
(** [save path c] writes DOT text to [path]. *)
