(** GEM events.

    An event is a unique atomic occurrence within a computation (paper §4).
    Its identity is the element it occurs at plus its occurrence number
    there — the paper's [Var.assign_i] / [Var^i] notation — so two events
    are the same iff they are the same occurrence at the same element.

    Events carry a {e class} name (the paper's eventclass, e.g. [Assign]),
    named data parameters, and thread labels attached after the fact by the
    thread-labelling engine ({!Gem_spec.Thread}). *)

type id = { element : string; index : int }
(** [index] is the 0-based occurrence number at [element]. *)

type t = {
  id : id;
  klass : string;  (** Event class name, capitalized by convention. *)
  params : (string * Value.t) list;  (** Named data parameters, in order. *)
  threads : (string * int) list;
      (** Thread labels: (thread type name, instance number). Empty until
          labelling runs. *)
  actor : string option;
      (** The sequential activity (process, task) on whose behalf the event
          occurred, when known — part of the paper's "thread identifier"
          event information, used by the actor-path refinement rule. *)
}

val id_compare : id -> id -> int

val id_equal : id -> id -> bool

val pp_id : Format.formatter -> id -> unit
(** Prints [element^index], the paper's superscript notation. *)

val make :
  ?actor:string -> element:string -> index:int -> klass:string -> (string * Value.t) list -> t

val param : t -> string -> Value.t
(** Raises [Not_found] if the event has no such parameter. *)

val param_opt : t -> string -> Value.t option

val has_class : t -> string -> bool

val with_thread : t -> string -> int -> t
(** Functional update adding a thread label. *)

val thread_instance : t -> string -> int option
(** [thread_instance e pi] is the instance number of thread type [pi] on
    [e], if labelled. *)

val pp : Format.formatter -> t -> unit
