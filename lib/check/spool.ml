(* Disk-spilled LIFO frontier. The resilient engine keeps its frontier
   here unconditionally (with [no_spill] the disk path is dead code), so
   spilling is a policy change, not an engine change, and checkpointing
   can snapshot the frontier through one [elements] call.

   Layout: [hot] is the in-memory stack (head = newest). Under memory
   pressure the *oldest* [chunk] tasks are marshalled as one segment and
   appended to a lazily-created temp file; [chunks] records each
   segment's (offset, length), newest segment last. [pop] serves from
   [hot] and, when it empties, reloads the most recent segment — which
   restores exactly the LIFO order an all-in-memory run would have had.

   I/O failures (real or injected via [Faults.Spill_io]) never raise out
   of [push]/[pop]: the spool goes sticky-[error], keeps what it still
   holds in memory, and the engine downgrades the verdict to
   Inconclusive with [Spill_io_error]. *)

module T = Gem_obs.Telemetry

(* ------------------------------------------------------------------ *)
(* Temp-file registry: every temp file the resilience layer creates is
   registered here and removed by one [at_exit] sweep, so no exit path
   (normal, budget stop, signal handler that re-raises, injected fault)
   leaves gem-spool-* / checkpoint .tmp litter behind. *)
(* ------------------------------------------------------------------ *)

let temp_mutex = Mutex.create ()
let temp_files : (string, unit) Hashtbl.t = Hashtbl.create 8

let sweep_temps () =
  Mutex.protect temp_mutex (fun () ->
      Hashtbl.iter
        (fun f () -> try Sys.remove f with Sys_error _ -> ())
        temp_files;
      Hashtbl.reset temp_files)

let sweep_installed = lazy (at_exit sweep_temps)

let register_temp f =
  Lazy.force sweep_installed;
  Mutex.protect temp_mutex (fun () -> Hashtbl.replace temp_files f ())

let release_temp f =
  Mutex.protect temp_mutex (fun () -> Hashtbl.remove temp_files f)

(* ------------------------------------------------------------------ *)
(* Spool proper                                                        *)
(* ------------------------------------------------------------------ *)

type policy = { dir : string option; chunk : int; watermark_mb : int }

let policy ?dir ?(chunk = 4096) ~watermark_mb () =
  if chunk < 1 then invalid_arg "Spool.policy: chunk must be positive";
  { dir; chunk; watermark_mb }

let no_spill = { dir = None; chunk = 4096; watermark_mb = max_int }

type 'a t = {
  pol : policy;
  mutable hot : 'a list;  (* head = newest *)
  mutable hot_n : int;
  mutable chunks : (int * int) list;  (* newest segment first *)
  mutable file : (string * out_channel) option;
  mutable file_len : int;
  mutable err : bool;
  mutable since_check : int;
}

let create pol =
  {
    pol;
    hot = [];
    hot_n = 0;
    chunks = [];
    file = None;
    file_len = 0;
    err = false;
    since_check = 0;
  }

let size t = t.hot_n + List.fold_left (fun n (_, len) -> n + len) 0 t.chunks
let error t = t.err
let spilled t = t.chunks <> [] || t.file <> None

let words_per_mb = 1024 * 1024 / (Sys.word_size / 8)

let over_watermark t =
  t.pol.watermark_mb <> max_int
  && (Gc.quick_stat ()).Gc.heap_words > t.pol.watermark_mb * words_per_mb

let channel t =
  match t.file with
  | Some (_, oc) -> oc
  | None ->
      let path = Filename.temp_file ?temp_dir:t.pol.dir "gem-spool-" ".bin" in
      register_temp path;
      let oc = open_out_bin path in
      t.file <- Some (path, oc);
      oc

(* Split [l] keeping the first [n] elements in order; returns the
   remainder (the oldest tail segment, still newest-first). *)
let split_at n l =
  let rec go n acc = function
    | rest when n = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> go (n - 1) (x :: acc) rest
  in
  go n [] l

let spill_oldest t =
  let keep = t.hot_n - t.pol.chunk in
  let hot', seg = split_at keep t.hot in
  try
    if Faults.fire Faults.Spill_io then raise (Faults.Injected Faults.Spill_io);
    let oc = channel t in
    let bytes = Marshal.to_bytes seg [] in
    let off = t.file_len in
    output_bytes oc bytes;
    flush oc;
    t.file_len <- off + Bytes.length bytes;
    t.chunks <- (off, t.pol.chunk) :: t.chunks;
    t.hot <- hot';
    t.hot_n <- keep;
    T.add T.Spill_bytes (Bytes.length bytes);
    T.hit T.Spill_chunks
  with
  | Faults.Injected _ ->
      Faults.survived ();
      t.err <- true
  | Sys_error _ | Out_of_memory -> t.err <- true

let push t x =
  t.hot <- x :: t.hot;
  t.hot_n <- t.hot_n + 1;
  t.since_check <- t.since_check + 1;
  if
    (not t.err)
    && t.since_check >= 64
    && t.hot_n > 2 * t.pol.chunk
  then begin
    t.since_check <- 0;
    if over_watermark t then spill_oldest t
  end

let read_segment t (off, _len) =
  match t.file with
  | None ->
      t.err <- true;
      []
  | Some (path, oc) -> (
      try
        if Faults.fire Faults.Spill_io then
          raise (Faults.Injected Faults.Spill_io);
        flush oc;
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            seek_in ic off;
            (Marshal.from_channel ic : 'a list))
      with
      | Faults.Injected _ ->
          Faults.survived ();
          t.err <- true;
          []
      | Sys_error _ | End_of_file | Failure _ ->
          t.err <- true;
          [])

let rec pop t =
  match t.hot with
  | x :: rest ->
      t.hot <- rest;
      t.hot_n <- t.hot_n - 1;
      Some x
  | [] -> (
      match t.chunks with
      | [] -> None
      | seg :: older ->
          t.chunks <- older;
          let items = read_segment t seg in
          t.hot <- items;
          t.hot_n <- List.length items;
          pop t)

let elements t =
  (* Newest-first overall: hot, then segments newest-first. A read error
     marks [err]; the partial snapshot is still returned so a checkpoint
     written after an I/O failure preserves what is preservable. *)
  let spilled =
    List.concat_map (fun seg -> read_segment t seg) t.chunks
  in
  t.hot @ spilled

let close t =
  (match t.file with
  | None -> ()
  | Some (path, oc) ->
      close_out_noerr oc;
      (try Sys.remove path with Sys_error _ -> ());
      release_temp path;
      t.file <- None);
  t.hot <- [];
  t.hot_n <- 0;
  t.chunks <- []
