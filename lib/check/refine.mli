(** The paper's [sat] relation (§9): a program specification satisfies a
    problem specification when every legal computation of the program,
    restricted to its {e significant objects}, behaves like a legal
    computation of the problem.

    A {!correspondence} maps each significant program event to its problem
    counterpart (problem element, event class, parameters). {!project}
    erases everything else:

    - significant events are renumbered per problem element, ordered by the
      program computation's temporal order — if two significant events
      mapped to the same problem element are potentially concurrent, the
      element order required by the problem does not exist and projection
      fails ({!Unserializable});
    - the projected enable relation has an edge [a' |> b'] iff the program
      has an enable path from [a] to [b] through non-significant events
      only — intermediate machinery (lock acquisitions, queue hops) is
      erased while direct causality is kept. *)

type mapping = {
  to_element : string;
  to_class : string;
  to_params : (string * Gem_model.Value.t) list;
}

type correspondence = Gem_model.Computation.t -> int -> mapping option
(** [None] = not a significant event. *)

(* How projected enable edges are derived from program enable paths. *)
type edge_rule =
  | Causal_paths
      (** [a' |> b'] iff the program has an enable path from [a] to [b]
          through non-significant events only — full causality, including
          scheduler artifacts such as lock handovers. Right when the
          problem's restrictions are purely temporal/data (the buffer
          problems). *)
  | Actor_paths
      (** Additionally, every event on the path (including [a] and [b])
          must carry the same actor — the projected enable relation is the
          per-activity control flow, which is what transaction-chain
          prerequisites mean (Readers/Writers). Cross-activity ordering is
          still captured by the problem's element orders. *)

type projection_error =
  | Unserializable of int * int
      (** Two significant program events (handles in the program
          computation) map to the same problem element but are potentially
          concurrent. *)
  | Cyclic_program
      (** The program computation has no temporal order. *)

val project :
  ?edges:edge_rule ->
  correspondence ->
  Gem_model.Computation.t ->
  elements:(string * Gem_spec.Etype.t) list ->
  groups:Gem_model.Group.t list ->
  (Gem_model.Computation.t, projection_error) result
(** [edges] defaults to [Causal_paths]; [elements]/[groups] give the
    projected computation the problem spec's declared structure. *)

val sat :
  ?strategy:Strategy.t ->
  ?budget:Budget.t ->
  ?jobs:int ->
  ?edges:edge_rule ->
  problem:Gem_spec.Spec.t ->
  map:correspondence ->
  Gem_model.Computation.t list ->
  (int * Verdict.t) list
(** Check every program computation's projection against the problem spec;
    returns the index of each computation with its verdict. A projection
    error is reported as a legality-style failed verdict. Budget
    exhaustion surfaces as [Inconclusive] verdicts, never an exception.
    [jobs] (default 1) projects and checks computations on that many
    domains via {!Par.map}; indices and order are preserved regardless. *)

val sat_ok :
  ?strategy:Strategy.t ->
  ?budget:Budget.t ->
  ?jobs:int ->
  ?edges:edge_rule ->
  problem:Gem_spec.Spec.t ->
  map:correspondence ->
  Gem_model.Computation.t list ->
  bool

val sat_status :
  ?strategy:Strategy.t ->
  ?budget:Budget.t ->
  ?jobs:int ->
  ?edges:edge_rule ->
  problem:Gem_spec.Spec.t ->
  map:correspondence ->
  Gem_model.Computation.t list ->
  Verdict.status
(** Three-valued aggregate over all computations ({!Verdict.overall}). *)

val pp_projection_error : Format.formatter -> projection_error -> unit
