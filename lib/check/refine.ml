module Computation = Gem_model.Computation
module Event = Gem_model.Event
module Poset = Gem_order.Poset
module Digraph = Gem_order.Digraph

type mapping = {
  to_element : string;
  to_class : string;
  to_params : (string * Gem_model.Value.t) list;
}

type correspondence = Computation.t -> int -> mapping option

type edge_rule = Causal_paths | Actor_paths

type projection_error =
  | Unserializable of int * int
  | Cyclic_program

let pp_projection_error ppf = function
  | Unserializable (a, b) ->
      Format.fprintf ppf
        "projection: events %d and %d map to the same problem element but are concurrent"
        a b
  | Cyclic_program -> Format.fprintf ppf "projection: program computation is cyclic"

let project ?(edges = Causal_paths) corr comp ~elements ~groups =
  Gem_obs.Telemetry.(time Project) @@ fun () ->
  match Computation.temporal comp with
  | None -> Error Cyclic_program
  | Some poset -> (
      let significant =
        List.filter_map
          (fun h -> Option.map (fun m -> (h, m)) (corr comp h))
          (Computation.all_events comp)
      in
      (* Group significant events by target element, verify totality of the
         induced element order, and assign occurrence indices. *)
      let by_element = Hashtbl.create 8 in
      List.iter
        (fun (h, m) ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt by_element m.to_element) in
          Hashtbl.replace by_element m.to_element (h :: prev))
        significant;
      let clash = ref None in
      let index_of = Hashtbl.create 16 in
      Hashtbl.iter
        (fun _el hs ->
          let hs = List.rev hs in
          List.iter
            (fun a ->
              List.iter
                (fun b ->
                  if a <> b && Poset.concurrent poset a b && !clash = None then
                    clash := Some (a, b))
                hs)
            hs;
          (* Occurrence index = number of set members strictly below. *)
          List.iter
            (fun a ->
              let idx = List.length (List.filter (fun b -> Poset.lt poset b a) hs) in
              Hashtbl.replace index_of a idx)
            hs)
        by_element;
      match !clash with
      | Some (a, b) -> Error (Unserializable (a, b))
      | None ->
          (* Array order: original topological position (handle order is
             already consistent per element; use causal topological order
             for global determinism). *)
          let topo =
            match Digraph.topological_sort (Computation.causal_graph comp) with
            | Some o -> o
            | None -> assert false
          in
          let ordered =
            List.filter_map
              (fun h ->
                Option.map (fun m -> (h, m)) (List.assoc_opt h significant))
              topo
          in
          let new_handle = Hashtbl.create 16 in
          List.iteri (fun i (h, _) -> Hashtbl.replace new_handle h i) ordered;
          let events =
            Array.of_list
              (List.map
                 (fun (h, m) ->
                   Event.make ~element:m.to_element
                     ~index:(Hashtbl.find index_of h)
                     ~klass:m.to_class m.to_params)
                 ordered)
          in
          (* Projected enable: paths through non-significant events only;
             under Actor_paths the whole path must stay within one actor's
             activity. *)
          let enable = Digraph.create (Array.length events) in
          let is_significant h = Hashtbl.mem new_handle h in
          let actor_of h = (Computation.event comp h).Event.actor in
          List.iter
            (fun (a, _) ->
              let source_actor = actor_of a in
              let admissible h =
                match edges with
                | Causal_paths -> true
                | Actor_paths -> source_actor <> None && actor_of h = source_actor
              in
              let seen = Hashtbl.create 8 in
              let rec reach h =
                List.iter
                  (fun s ->
                    if not (Hashtbl.mem seen s) then begin
                      Hashtbl.add seen s ();
                      if admissible s then
                        if is_significant s then
                          Digraph.add_edge enable
                            (Hashtbl.find new_handle a)
                            (Hashtbl.find new_handle s)
                        else reach s
                    end)
                  (Computation.enable_succs comp h)
              in
              reach a)
            ordered;
          (* Transport the program's element order: significant events at
             the same program element are observably sequential (forced by
             their shared locus), so consecutive ones are linked even when
             they map to different problem elements — otherwise that order
             would be lost, since problem element order only covers events
             mapped to the same problem element. *)
          let by_prog_element = Hashtbl.create 8 in
          List.iter
            (fun (h, m) ->
              let el = (Computation.event comp h).Event.id.element in
              let prev = Option.value ~default:[] (Hashtbl.find_opt by_prog_element el) in
              Hashtbl.replace by_prog_element el ((h, m) :: prev))
            ordered;
          Hashtbl.iter
            (fun _el hs ->
              let sorted =
                List.sort
                  (fun (a, _) (b, _) ->
                    Int.compare (Computation.event comp a).Event.id.index
                      (Computation.event comp b).Event.id.index)
                  hs
              in
              let rec link = function
                | (a, ma) :: ((b, mb) :: _ as rest) ->
                    if not (String.equal ma.to_element mb.to_element) then
                      Digraph.add_edge enable (Hashtbl.find new_handle a)
                        (Hashtbl.find new_handle b);
                    link rest
                | [ _ ] | [] -> ()
              in
              link sorted)
            by_prog_element;
          let element_names = List.map fst elements in
          Ok
            (Computation.unsafe_make ~elements:element_names ~groups ~events ~enable))

let failed_projection ~spec_name err =
  {
    Verdict.spec_name;
    legality = [];
    failures =
      [
        {
          Verdict.restriction = Format.asprintf "%a" pp_projection_error err;
          formula = Gem_logic.Formula.False;
          witness = None;
        };
      ];
    runs_checked = 0;
    complete = true;
    exhaustion = None;
    coverage = Budget.full_coverage;
  }

let sat ?strategy ?budget ?jobs ?edges ~problem ~map comps =
  let verdicts =
    Par.map ?jobs
      (fun comp ->
        match
          project ?edges map comp ~elements:problem.Gem_spec.Spec.elements
            ~groups:problem.Gem_spec.Spec.groups
        with
        | Error err ->
            failed_projection ~spec_name:problem.Gem_spec.Spec.spec_name err
        | Ok projected -> Check.check ?strategy ?budget problem projected)
      comps
  in
  List.mapi (fun i verdict -> (i, verdict)) verdicts

let sat_ok ?strategy ?budget ?jobs ?edges ~problem ~map comps =
  List.for_all
    (fun (_, v) -> Verdict.ok v)
    (sat ?strategy ?budget ?jobs ?edges ~problem ~map comps)

let sat_status ?strategy ?budget ?jobs ?edges ~problem ~map comps =
  Verdict.overall (List.map snd (sat ?strategy ?budget ?jobs ?edges ~problem ~map comps))
