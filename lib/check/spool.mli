(** Disk-spilled LIFO frontier, and the resilience layer's temp-file
    registry.

    The frontier of a DFS over an exploding state space can itself
    outgrow RAM. A spool keeps a hot in-memory stack and, under a
    configurable major-heap watermark, pages the {e oldest} tasks out to
    a temp file in marshalled chunks; they page back in exactly when an
    all-in-memory run would have reached them, so spilling is invisible
    to the exploration order.

    {b Failure contract}: no [push]/[pop]/[elements] call ever raises on
    I/O failure (real, or injected at {!Faults.Spill_io}). The spool
    turns sticky-{!error}, stops touching the disk, serves what it still
    holds in memory, and the engine reports
    {!Budget.reason}[.Spill_io_error] Inconclusive — spilled tasks may
    be lost, so coverage can no longer be claimed complete.

    Not domain-safe: each spool belongs to one (sequential) engine. *)

type policy

val policy : ?dir:string -> ?chunk:int -> watermark_mb:int -> unit -> policy
(** [chunk] (default 4096) tasks are written per spill; spilling engages
    only while the major heap exceeds [watermark_mb]. [dir] overrides
    the temp directory. *)

val no_spill : policy
(** Infinite watermark — a plain in-memory stack; the disk path is
    never touched. The resilient engine always fronts its frontier with
    a spool so the two configurations share one code path. *)

type 'a t

val create : policy -> 'a t

val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a option

val size : 'a t -> int
val error : 'a t -> bool
(** An I/O failure occurred; tasks may have been lost. Sticky. *)

val spilled : 'a t -> bool
(** The disk was engaged at least once. *)

val elements : 'a t -> 'a list
(** Non-destructive snapshot in pop order (newest first) — the frontier
    component of a checkpoint. Reads spilled chunks back; a read failure
    marks {!error} and the partial snapshot is returned. *)

val close : 'a t -> unit
(** Drop all tasks and remove the temp file. Idempotent. *)

(** {1 Temp-file registry}

    Every temp file the resilience layer creates ([gem-spool-*] chunks,
    [*.tmp] checkpoint staging) is registered here; one [at_exit] sweep
    (installed on first registration) removes whatever is still
    registered, so no exit path — normal, budget stop, signal, injected
    fault — leaves litter behind. *)

val register_temp : string -> unit
val release_temp : string -> unit
