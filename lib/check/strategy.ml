module Vhs = Gem_logic.Vhs

type t =
  | Exhaustive_vhs of int option
  | Linearizations of int option
  | Sampled of { seed : int; count : int }

let default = Exhaustive_vhs (Some 20_000)

let runs t comp =
  match t with
  | Exhaustive_vhs limit -> Vhs.all ?limit comp
  | Linearizations limit -> Vhs.all_linearizations ?limit comp
  | Sampled { seed; count } ->
      let rng = Random.State.make [| seed |] in
      List.init count (fun _ -> Vhs.sample rng comp)

let is_complete t comp =
  match t with
  | Exhaustive_vhs None -> true
  | Exhaustive_vhs (Some cap) -> Vhs.count ~cap comp < cap
  | Linearizations _ | Sampled _ -> false

let pp ppf = function
  | Exhaustive_vhs None -> Format.fprintf ppf "exhaustive-vhs"
  | Exhaustive_vhs (Some n) -> Format.fprintf ppf "exhaustive-vhs(<=%d)" n
  | Linearizations None -> Format.fprintf ppf "linearizations"
  | Linearizations (Some n) -> Format.fprintf ppf "linearizations(<=%d)" n
  | Sampled { seed; count } -> Format.fprintf ppf "sampled(seed=%d,n=%d)" seed count
