module Vhs = Gem_logic.Vhs

type t =
  | Exhaustive_vhs of int option
  | Linearizations of int option
  | Sampled of { seed : int; count : int }

let default = Exhaustive_vhs (Some 20_000)
let default_run_cap = 400

let of_budget budget =
  Linearizations (Some (Option.value ~default:default_run_cap (Budget.max_runs budget)))

type enumeration = {
  runs : Vhs.t list;
  truncated_at : int option;
  complete : bool;
}

let min_opt a b =
  match (a, b) with
  | None, c | c, None -> c
  | Some a, Some b -> Some (min a b)

(* Enumerate one run past the cap: getting cap+1 runs proves truncation,
   getting <= cap proves the cap did not drop anything. The enumerators
   stop lazily at their limit, so the probe costs one extra run. *)
let capped enum cap comp =
  match cap with
  | None -> (enum ?limit:None comp, None)
  | Some cap -> (
      match enum ?limit:(Some (cap + 1)) comp with
      | runs when List.length runs > cap ->
          (List.filteri (fun i _ -> i < cap) runs, Some cap)
      | runs -> (runs, None))

let enumerate ?budget t comp =
  let tighten cap = min_opt cap (Option.bind budget Budget.max_runs) in
  match t with
  | Exhaustive_vhs limit ->
      let runs, truncated_at = capped Vhs.all (tighten limit) comp in
      { runs; truncated_at; complete = truncated_at = None }
  | Linearizations limit ->
      let runs, truncated_at = capped Vhs.all_linearizations (tighten limit) comp in
      { runs; truncated_at; complete = false }
  | Sampled { seed; count } ->
      let rng = Random.State.make [| seed |] in
      let count =
        match Option.bind budget Budget.max_runs with
        | Some cap -> min count cap
        | None -> count
      in
      { runs = List.init count (fun _ -> Vhs.sample rng comp); truncated_at = None;
        complete = false }

let runs t comp = (enumerate t comp).runs

let is_complete t comp =
  match t with
  | Exhaustive_vhs None -> true
  | Exhaustive_vhs (Some cap) -> Vhs.count ~cap:(cap + 1) comp <= cap
  | Linearizations _ | Sampled _ -> false

let pp ppf = function
  | Exhaustive_vhs None -> Format.fprintf ppf "exhaustive-vhs"
  | Exhaustive_vhs (Some n) -> Format.fprintf ppf "exhaustive-vhs(<=%d)" n
  | Linearizations None -> Format.fprintf ppf "linearizations"
  | Linearizations (Some n) -> Format.fprintf ppf "linearizations(<=%d)" n
  | Sampled { seed; count } -> Format.fprintf ppf "sampled(seed=%d,n=%d)" seed count
