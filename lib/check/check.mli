(** The GEM checker: does a computation satisfy a specification?

    [legal(C, sigma)] per the paper: the built-in legality restrictions
    ({!Gem_spec.Legality}) plus every explicit and element-type restriction
    of the specification. Immediate restrictions are evaluated once on the
    full history; temporal restrictions are evaluated over the runs
    produced by a {!Strategy}. Thread labels are attached before any
    restriction is evaluated.

    All entry points accept an optional {!Budget.t}. Budget exhaustion
    never raises: it surfaces as an [Inconclusive] {!Verdict.status} with
    a machine-readable reason and coverage statistics. *)

val check :
  ?strategy:Strategy.t ->
  ?budget:Budget.t ->
  Gem_spec.Spec.t ->
  Gem_model.Computation.t ->
  Verdict.t
(** Stops collecting witnesses at the first failing run per restriction
    (all restrictions are always reported). If legality fails, restriction
    checking is skipped — the orders the formulas quantify over may not
    exist. *)

val check_all :
  ?strategy:Strategy.t ->
  ?budget:Budget.t ->
  ?jobs:int ->
  Gem_spec.Spec.t ->
  Gem_model.Computation.t list ->
  Verdict.t list
(** {!check} over a batch of computations, order-preserving. [jobs]
    (default 1) checks computations on that many domains via {!Par.map};
    a shared [budget]'s counters are atomic, so exhaustion observed by
    one domain stops the others. *)

val check_formula :
  ?strategy:Strategy.t ->
  ?budget:Budget.t ->
  Gem_spec.Spec.t ->
  Gem_model.Computation.t ->
  name:string ->
  Gem_logic.Formula.t ->
  Verdict.t
(** Check a single extra restriction (e.g. a problem property) against a
    computation, with the spec supplying threads and legality context. *)

val holds :
  ?strategy:Strategy.t ->
  ?budget:Budget.t ->
  Gem_spec.Spec.t ->
  Gem_model.Computation.t ->
  Gem_logic.Formula.t ->
  bool
(** [ok (check_formula ...)] without the verdict plumbing. *)
