(** Bounded LRU cache with single-flight request coalescing — the verdict
    cache behind [gemcheck serve].

    A long-running checking service sees two access patterns a one-shot
    CLI never does: {e repeats} (the same spec re-checked on every push)
    and {e stampedes} (many clients asking the same question at once,
    e.g. a CI fan-out). The cache answers repeats in O(1); single-flight
    coalescing makes a stampede cost one exploration — every concurrent
    duplicate blocks on the first request's in-flight slot and receives
    the {e same} value, so a cached verdict is byte-identical to the one
    the computing request saw.

    Keys are opaque strings (the daemon uses the hex of a composite
    {!Gem_order.Fingerprint}); values are arbitrary. Capacity bounds the
    number of {e completed} entries: eviction is strict LRU over
    completed entries, and in-flight slots are never evicted (they are
    not results yet, and waiters hold references to them).

    Thread-safety: every operation may be called from any thread or
    domain. Internally one mutex guards the table; the compute function
    runs {e outside} the lock, so unrelated keys never serialize behind
    a slow computation.

    Failure: if the compute function raises, the exception propagates to
    the computing caller {e and} to every coalesced waiter, and the slot
    is removed — a later request retries instead of caching the failure
    (transient faults, e.g. {!Faults} injection, must not poison the
    cache). *)

type 'v t

val create : ?telemetry:bool -> capacity:int -> unit -> 'v t
(** [capacity] must be at least 1 (raises [Invalid_argument] otherwise).
    At most [capacity] completed entries are retained. [telemetry]
    (default [true]) counts operations under the global [Cache_hits] /
    [Cache_misses] / [Requests_coalesced] counters; secondary caches
    (e.g. the daemon's exploration cache) pass [false] so the [--stats]
    counters describe the verdict cache alone. *)

type provenance =
  | Hit  (** Answered from a completed entry; nothing recomputed. *)
  | Miss  (** This request computed the value (and cached it). *)
  | Coalesced
      (** An identical request was already in flight; this one waited
          for — and shares — its result. *)

val provenance_name : provenance -> string
(** ["hit"], ["miss"] or ["coalesced"]. *)

val find_or_compute : 'v t -> string -> (unit -> 'v) -> 'v * provenance
(** [find_or_compute t key f] returns the cached value for [key], or
    computes it with [f] exactly once per concurrent burst. Also counts
    the outcome under the [Cache_hits] / [Cache_misses] /
    [Requests_coalesced] telemetry counters and the cache's own
    {!stats}. *)

val find : 'v t -> string -> 'v option
(** Peek without computing; bumps recency on hit but counts nothing. *)

val remove : 'v t -> string -> unit
(** Drop a completed entry if present. In-flight slots are untouched. *)

val clear : 'v t -> unit
(** Drop every completed entry. In-flight slots are untouched. *)

type stats = {
  entries : int;  (** Completed entries currently resident. *)
  capacity : int;
  hits : int;
  misses : int;
  coalesced : int;
  evictions : int;
}

val stats : 'v t -> stats
