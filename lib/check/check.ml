module F = Gem_logic.Formula
module Eval = Gem_logic.Eval
module Spec = Gem_spec.Spec
module Legality = Gem_spec.Legality

let check_restrictions ?budget ~strategy ~spec_name comp restrictions =
  let immediate, temporal = List.partition (fun (_, f) -> F.is_immediate f) restrictions in
  let failures = ref [] in
  List.iter
    (fun (name, f) ->
      if not (Eval.eval_computation comp f) then
        failures := { Verdict.restriction = name; formula = f; witness = None } :: !failures)
    immediate;
  let runs_checked = ref 0 in
  let exhaustion = ref None in
  let complete = ref true in
  if temporal <> [] then begin
    let enum = Strategy.enumerate ?budget strategy comp in
    complete := enum.Strategy.complete;
    (match enum.Strategy.truncated_at with
    | Some cap -> exhaustion := Some (Budget.Run_cap cap)
    | None -> ());
    let pending = ref temporal in
    (try
       List.iter
         (fun run ->
           (match budget with
           | Some b when not (Budget.charge_run b) ->
               exhaustion := Budget.exhausted b;
               raise Exit
           | _ -> ());
           incr runs_checked;
           Gem_obs.Telemetry.(hit Runs_enumerated);
           pending :=
             List.filter
               (fun (name, f) ->
                 if Eval.eval_run run f then true
                 else begin
                   failures :=
                     { Verdict.restriction = name; formula = f; witness = Some run }
                     :: !failures;
                   false
                 end)
               !pending;
           if !pending = [] then raise Exit)
         enum.Strategy.runs
     with Exit -> ())
  end;
  {
    Verdict.spec_name;
    legality = [];
    failures = List.rev !failures;
    runs_checked = !runs_checked;
    complete = !complete;
    exhaustion = !exhaustion;
    coverage =
      {
        Budget.full_coverage with
        Budget.runs_enumerated = !runs_checked;
        runs_complete = !complete;
      };
  }

let check ?(strategy = Strategy.default) ?budget spec comp =
  let legality = Legality.check spec comp in
  if legality <> [] then Verdict.legal_verdict ~spec_name:spec.Spec.spec_name legality
  else begin
    let comp = Spec.label_threads spec comp in
    check_restrictions ?budget ~strategy ~spec_name:spec.Spec.spec_name comp
      (Spec.all_restrictions spec)
  end

let check_all ?strategy ?budget ?jobs spec comps =
  Par.map ?jobs (fun comp -> check ?strategy ?budget spec comp) comps

let check_formula ?(strategy = Strategy.default) ?budget spec comp ~name f =
  let legality = Legality.check spec comp in
  if legality <> [] then Verdict.legal_verdict ~spec_name:spec.Spec.spec_name legality
  else begin
    let comp = Spec.label_threads spec comp in
    check_restrictions ?budget ~strategy ~spec_name:spec.Spec.spec_name comp [ (name, f) ]
  end

let holds ?strategy ?budget spec comp f =
  Verdict.ok (check_formula ?strategy ?budget spec comp ~name:"property" f)
