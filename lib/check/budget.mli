(** Resource budgets and graceful degradation.

    The checker's work is worst-case explosive: the set of valid history
    sequences grows combinatorially with concurrency (paper §6), and the
    language interpreters explore exponentially many schedules. A budget
    carries the resources a caller is willing to spend — a wall-clock
    deadline, configuration/run counters, and an optional heap
    watermark — and is threaded through the whole pipeline
    ({!Gem_lang.Explore}, {!Strategy}, {!Check}, {!Refine}).

    Exhaustion never raises and never truncates silently: every entry
    point degrades to a three-valued outcome ({!Verdict.status}) whose
    [Inconclusive] state carries a machine-readable {!reason} plus
    {!coverage} statistics, so "verified" is only ever claimed when
    coverage was complete for the requested enumeration. *)

type reason =
  | Deadline_exceeded  (** The wall-clock deadline passed. *)
  | Config_budget  (** The configuration-visit budget ran out. *)
  | Run_cap of int  (** Run enumeration was cut at this cap. *)
  | Memory_watermark  (** The major-heap watermark was crossed. *)
  | Interrupted
      (** SIGINT/SIGTERM arrived; the run stopped at the next poll and
          reported partial coverage instead of dying. *)
  | Bitstate_collision_risk
      (** The seen set ran in bitstate (fingerprint-only, bounded-RAM)
          mode: an unseen state may have hashed onto a seen slot, so a
          clean sweep cannot claim Verified. Falsified stays sound —
          every reported counterexample was actually executed. *)
  | Spill_io_error
      (** The disk-spilled frontier hit an I/O error; spilled tasks may
          be unreachable, so coverage is partial. *)
  | Worker_crashed of string
      (** An exception escaped a worker domain (printed form carried);
          its in-flight subtree was abandoned. Only reported when the
          caller opted into degradation — the default contract still
          re-raises. *)

type coverage = {
  configs_explored : int;  (** Interpreter configurations visited. *)
  configs_reduced : int;
      (** Configurations pruned by partial-order reduction (sleep sets
          and canonical-key memoization). *)
  branches_truncated : int;  (** Exploration branches cut short. *)
  runs_enumerated : int;  (** Runs the temporal check consumed. *)
  runs_complete : bool;
      (** The run enumeration covered every complete run. *)
}

type t
(** Mutable: counters accumulate across every phase the budget is
    threaded through, so one budget bounds an entire pipeline.

    Domain-safe: all mutable cells are atomics, so one budget may be
    shared by every domain of a parallel exploration
    ({!Gem_lang.Explore} with [jobs > 1]). Counters use fetch-and-add;
    the exhaustion verdict is set with a first-reason-wins
    compare-and-set, so concurrent observers agree on a single
    {!reason} and cancellation propagates to all domains through the
    shared cell. *)

val make :
  ?timeout:float ->
  ?max_configs:int ->
  ?max_runs:int ->
  ?max_heap_mb:int ->
  unit ->
  t
(** [timeout] is seconds of wall-clock from now; [max_configs] bounds
    interpreter configuration visits (cumulative); [max_runs] caps run
    enumeration {e per temporal check} (it tightens strategy caps —
    checking many computations does not exhaust it); [max_heap_mb] is a
    major-heap watermark. Omitted dimensions are unlimited. *)

val unlimited : unit -> t
(** No limits; counters still accumulate (useful for coverage stats). *)

val is_limited : t -> bool

val max_configs : t -> int option
val max_runs : t -> int option
val configs_used : t -> int
val runs_used : t -> int

val restore : t -> configs:int -> runs:int -> unit
(** Overwrite the cumulative counters — used by [--resume] so a resumed
    run continues charging from the interrupted run's totals (and a
    [max_configs] cap keeps its end-to-end meaning). *)

val exhausted : t -> reason option
(** Probe: also (re)checks the deadline and the heap watermark. Once a
    budget is exhausted the verdict is sticky. *)

val charge_config : t -> bool
(** Count one configuration visit; [false] once the budget is exhausted
    (the deadline and watermark are polled every few dozen charges). *)

val charge_run : t -> bool
(** Count one enumerated run; [false] once the budget is exhausted. *)

val note : t -> reason -> unit
(** Record an exhaustion observed outside the budget's own counters
    (e.g. a strategy's run cap firing). First reason wins. *)

val full_coverage : coverage
(** Complete coverage with zeroed counters — the starting point for
    callers that fill counters in as they learn them. *)

val pp_reason : Format.formatter -> reason -> unit
val reason_keyword : reason -> string
(** Stable machine-readable keyword: ["deadline-exceeded"],
    ["config-budget"], ["run-cap"], ["memory-watermark"],
    ["interrupted"], ["bitstate-collision-risk"], ["spill-io-error"],
    ["worker-crashed"]. *)

val reason_json : reason -> string
val pp_coverage : Format.formatter -> coverage -> unit
val coverage_json : coverage -> string
