(* Deterministic fault injection. A single global arming keeps the call
   sites trivial (`if Faults.fire Spill_io then ...`): the harness is a
   test/CI instrument, not a per-run configuration, and arming happens
   once at process start before any domain is spawned. The draw counter
   is atomic so concurrent domains consume distinct draws; determinism
   is per-seed across the whole process, not per call site. *)

type point = Alloc | Spill_io | Checkpoint_io | Domain_start

exception Injected of point

let point_name = function
  | Alloc -> "alloc"
  | Spill_io -> "spill-io"
  | Checkpoint_io -> "checkpoint-io"
  | Domain_start -> "domain-start"

let all_points = [ Alloc; Spill_io; Checkpoint_io; Domain_start ]

type armed = { seed : int64; period : int; points : point list }

let state : armed option ref = ref None
let draws = Atomic.make 0

(* splitmix64: full 64-bit avalanche, so consecutive draw indices under
   one seed produce independent-looking residues mod the period. *)
let splitmix64 x =
  let open Int64 in
  let z = add x 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let default_period = 101

let parse_points s =
  let name_to_point = function
    | "alloc" -> Some Alloc
    | "spill-io" | "spill" -> Some Spill_io
    | "checkpoint-io" | "checkpoint" -> Some Checkpoint_io
    | "domain-start" | "domain" -> Some Domain_start
    | _ -> None
  in
  let names = String.split_on_char ',' s in
  let pts = List.filter_map name_to_point names in
  if List.length pts = List.length names && pts <> [] then Some pts else None

(* "SEED[:PERIOD[:POINTS]]" — e.g. "42", "42:17", "42:17:spill,checkpoint".
   Malformed specs are a caller error, reported as [Error] so the CLI can
   exit 3 rather than silently running unfaulted. *)
let parse spec =
  match String.split_on_char ':' (String.trim spec) with
  | [] | [ "" ] -> Error "empty GEM_FAULT spec"
  | seed :: rest -> (
      match int_of_string_opt seed with
      | None -> Error (Printf.sprintf "GEM_FAULT: bad seed %S" seed)
      | Some seed -> (
          let seed = Int64.of_int seed in
          match rest with
          | [] -> Ok { seed; period = default_period; points = all_points }
          | [ period ] -> (
              match int_of_string_opt period with
              | Some p when p > 0 -> Ok { seed; period = p; points = all_points }
              | _ -> Error (Printf.sprintf "GEM_FAULT: bad period %S" period))
          | [ period; points ] -> (
              match (int_of_string_opt period, parse_points points) with
              | Some p, Some pts when p > 0 ->
                  Ok { seed; period = p; points = pts }
              | None, _ | Some _, _ ->
                  Error
                    (Printf.sprintf "GEM_FAULT: bad period/points %S:%S" period
                       points))
          | _ -> Error "GEM_FAULT: too many fields"))

let arm spec =
  match parse spec with
  | Ok a ->
      Atomic.set draws 0;
      state := Some a;
      Ok ()
  | Error _ as e -> e

let arm_from_env () =
  match Sys.getenv_opt "GEM_FAULT" with
  | None | Some "" -> Ok false
  | Some spec -> Result.map (fun () -> true) (arm spec)

let disarm () =
  state := None;
  Atomic.set draws 0

let armed () = !state <> None

let fire point =
  match !state with
  | None -> false
  | Some a ->
      if List.memq point a.points then begin
        let n = Atomic.fetch_and_add draws 1 in
        let r =
          Int64.rem (splitmix64 (Int64.add a.seed (Int64.of_int n)))
            (Int64.of_int a.period)
        in
        if r = 0L then begin
          Gem_obs.Telemetry.hit Gem_obs.Telemetry.Faults_injected;
          true
        end
        else false
      end
      else false

let survived () = Gem_obs.Telemetry.hit Gem_obs.Telemetry.Faults_survived
