type reason =
  | Deadline_exceeded
  | Config_budget
  | Run_cap of int
  | Memory_watermark
  | Interrupted
  | Bitstate_collision_risk
  | Spill_io_error
  | Worker_crashed of string

type coverage = {
  configs_explored : int;
  configs_reduced : int;
  branches_truncated : int;
  runs_enumerated : int;
  runs_complete : bool;
}

(* All mutable cells are atomics: one budget is shared by every domain of
   a parallel exploration, so charges race. Counters tolerate the benign
   interleaving (fetch-and-add); [stopped] is first-reason-wins via
   compare-and-set, so the merged result carries exactly one reason no
   matter how many domains observe exhaustion simultaneously. *)
type t = {
  deadline : float option;  (* absolute, Unix.gettimeofday *)
  max_configs : int option;
  max_runs : int option;
  max_heap_words : int option;
  configs_used : int Atomic.t;
  runs_used : int Atomic.t;
  stopped : reason option Atomic.t;
  until_poll : int Atomic.t;
}

(* Deadline/watermark probes cost a syscall (or a Gc stat); amortize them
   over counter charges. Small enough that tiny timeouts still bite. *)
let poll_interval = 64

let words_per_mb = 1024 * 1024 / (Sys.word_size / 8)

let make ?timeout ?max_configs ?max_runs ?max_heap_mb () =
  {
    deadline = Option.map (fun s -> Unix.gettimeofday () +. s) timeout;
    max_configs;
    max_runs;
    max_heap_words = Option.map (fun mb -> mb * words_per_mb) max_heap_mb;
    configs_used = Atomic.make 0;
    runs_used = Atomic.make 0;
    stopped = Atomic.make None;
    until_poll = Atomic.make poll_interval;
  }

let unlimited () = make ()

let is_limited t =
  t.deadline <> None || t.max_configs <> None || t.max_runs <> None
  || t.max_heap_words <> None

let max_configs t = t.max_configs
let max_runs t = t.max_runs
let configs_used t = Atomic.get t.configs_used
let runs_used t = Atomic.get t.runs_used

let restore t ~configs ~runs =
  Atomic.set t.configs_used configs;
  Atomic.set t.runs_used runs

(* The stop counter records only the winning CAS, so "budget stops by
   reason" counts decisions, not the many racing observers of one. *)
let stop_counter = function
  | Deadline_exceeded -> Some Gem_obs.Telemetry.Budget_stop_deadline
  | Config_budget -> Some Gem_obs.Telemetry.Budget_stop_configs
  | Run_cap _ -> Some Gem_obs.Telemetry.Budget_stop_runs
  | Memory_watermark -> Some Gem_obs.Telemetry.Budget_stop_memory
  (* Resilience reasons are counted at their own injection/degradation
     sites (spill, bitstate, fault counters) — no budget-stop counter. *)
  | Interrupted | Bitstate_collision_risk | Spill_io_error | Worker_crashed _ ->
      None

let note t reason =
  if Atomic.compare_and_set t.stopped None (Some reason) then
    Option.iter Gem_obs.Telemetry.hit (stop_counter reason)

let poll t =
  (match t.deadline with
  | Some d when Atomic.get t.stopped = None && Unix.gettimeofday () > d ->
      note t Deadline_exceeded
  | _ -> ());
  match t.max_heap_words with
  | Some w
    when Atomic.get t.stopped = None && (Gc.quick_stat ()).Gc.heap_words > w ->
      note t Memory_watermark
  | _ -> ()

let exhausted t =
  if Atomic.get t.stopped = None then poll t;
  Atomic.get t.stopped

let charge t counter limit_reason =
  (match Atomic.get t.stopped with
  | Some _ -> ()
  | None ->
      let remaining = Atomic.fetch_and_add t.until_poll (-1) - 1 in
      if remaining <= 0 then begin
        Atomic.set t.until_poll poll_interval;
        poll t
      end;
      if Atomic.get t.stopped = None then
        match counter () with
        | used, Some cap when used > cap -> note t limit_reason
        | _ -> ());
  Atomic.get t.stopped = None

let charge_config t =
  charge t
    (fun () -> (Atomic.fetch_and_add t.configs_used 1 + 1, t.max_configs))
    Config_budget

(* [max_runs] is a per-enumeration cap (it tightens strategy caps in
   {!Strategy.enumerate}), not a cumulative counter — checking many
   computations under one budget must not exhaust it. Charging a run
   still polls the deadline/watermark and feeds coverage stats. *)
let charge_run t =
  charge t
    (fun () -> (Atomic.fetch_and_add t.runs_used 1 + 1, None))
    Config_budget

let full_coverage =
  {
    configs_explored = 0;
    configs_reduced = 0;
    branches_truncated = 0;
    runs_enumerated = 0;
    runs_complete = true;
  }

let reason_keyword = function
  | Deadline_exceeded -> "deadline-exceeded"
  | Config_budget -> "config-budget"
  | Run_cap _ -> "run-cap"
  | Memory_watermark -> "memory-watermark"
  | Interrupted -> "interrupted"
  | Bitstate_collision_risk -> "bitstate-collision-risk"
  | Spill_io_error -> "spill-io-error"
  | Worker_crashed _ -> "worker-crashed"

let pp_reason ppf = function
  | Deadline_exceeded -> Format.fprintf ppf "wall-clock deadline exceeded"
  | Config_budget -> Format.fprintf ppf "configuration budget exhausted"
  | Run_cap n -> Format.fprintf ppf "run enumeration capped at %d" n
  | Memory_watermark -> Format.fprintf ppf "memory watermark crossed"
  | Interrupted -> Format.fprintf ppf "interrupted by signal"
  | Bitstate_collision_risk ->
      Format.fprintf ppf
        "bitstate mode: unseen states may have hashed onto seen ones"
  | Spill_io_error -> Format.fprintf ppf "frontier spill I/O failed"
  | Worker_crashed exn ->
      Format.fprintf ppf "worker domain crashed: %s" exn

(* Worker_crashed carries an arbitrary exception rendering; escape the
   few JSON metacharacters so the verdict line stays parseable. *)
let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let reason_json r =
  match r with
  | Run_cap n -> Printf.sprintf {|{"kind":"%s","cap":%d}|} (reason_keyword r) n
  | Worker_crashed exn ->
      Printf.sprintf {|{"kind":"%s","exn":"%s"}|} (reason_keyword r)
        (json_escape exn)
  | _ -> Printf.sprintf {|{"kind":"%s"}|} (reason_keyword r)

let pp_coverage ppf c =
  Format.fprintf ppf
    "@[<h>configs explored: %d; configs reduced: %d; branches truncated: %d; \
     runs enumerated: %d; run coverage: %s@]"
    c.configs_explored c.configs_reduced c.branches_truncated c.runs_enumerated
    (if c.runs_complete then "complete" else "partial")

let coverage_json c =
  Printf.sprintf
    {|{"configs_explored":%d,"configs_reduced":%d,"branches_truncated":%d,"runs_enumerated":%d,"runs_complete":%b}|}
    c.configs_explored c.configs_reduced c.branches_truncated c.runs_enumerated
    c.runs_complete
