(** A line-framed Unix-domain-socket server — the transport under
    [gemcheck serve].

    The protocol is deliberately primitive: a client sends one request
    per line ([\n]-terminated); the server answers with one or more
    complete lines and keeps the connection open for further requests.
    What the lines {e mean} is the caller's business — the server is
    generic over a [handler : string -> string list] so the checking
    daemon, the bench harness and the tests can all drive it with their
    own vocabularies.

    Robustness contract (exercised by [test/test_serve.ml] and the CI
    serve smoke leg):
    - a handler exception answers that request with a one-line JSON
      error and leaves the connection (and the server) alive;
    - a client disconnecting mid-response kills only that connection;
    - {!request_stop} (wired to SIGINT/SIGTERM by the CLI) stops
      accepting, {e drains} in-flight requests — each connection thread
      finishes its current handler call and flushes the response before
      closing — and removes the socket file on the way out.

    Each accepted connection is served by its own [Thread]; handler
    calls for different connections therefore overlap, which is what
    lets {!Cache.find_or_compute} coalesce concurrent duplicates. *)

type handler = string -> string list
(** Maps one request line (without the terminating newline) to response
    lines (each sent with a terminating newline). Must be thread-safe. *)

type t

val create : socket:string -> unit -> t
(** Bind and listen on a Unix-domain socket at [socket], replacing any
    stale socket file left by a previous process. Raises [Unix_error]
    when binding fails (e.g. the directory does not exist). *)

val socket_path : t -> string

val run : t -> handler:handler -> unit
(** Accept and serve connections until {!request_stop}. Blocks the
    calling thread; the CLI calls it from the main thread so a signal
    interrupts the accept wait immediately. Returns only after every
    connection thread has been joined, the listening socket closed and
    the socket file unlinked. Ignores [SIGPIPE] process-wide (a
    disconnecting client must surface as [EPIPE], not kill the
    daemon). *)

val request_stop : t -> unit
(** Async-signal-safe: flips an atomic flag the accept loop polls.
    Idempotent. *)

val stopping : t -> bool

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal — exposed for
    handlers composing error replies out of exception messages. *)
