(* SPIN-style bounded-RAM seen set: open addressing over the two
   126-bit fingerprint lanes, no keys, no values, no resizing. Memory is
   fixed at creation (2 native ints = 16 bytes per slot), which is the
   whole point — exploration degrades (saturation prunes + the
   Bitstate_collision_risk verdict downgrade) instead of the process
   dying when the state space outgrows RAM.

   Sharding mirrors the parallel explorer's seen table: the shard index
   comes from the fingerprint's low lane, the probe sequence from the
   high lane, so the two never correlate. Per-shard mutexes are plenty —
   the critical section is a handful of array reads. *)

module Fp = Gem_order.Fingerprint

type shard = {
  lock : Mutex.t;
  hi : int array;
  lo : int array;
  mutable used : int;
}

type t = {
  bits : int;
  mask : int;  (* slots-per-shard - 1 *)
  cap : int;  (* per-shard load cap (7/8 of slots) *)
  shards : shard array;
  shard_mask : int;
  saturated : bool Atomic.t;
}

(* Both lanes zero marks an empty slot. A real all-zero fingerprint is
   remapped to (1,1); conflating it with a (1,1) fingerprint is one
   extra collision pair out of 2^126 — noise next to the table's own
   collision rate. *)
let norm fp =
  if fp.Fp.hi = 0 && fp.Fp.lo = 0 then { Fp.hi = 1; lo = 1 } else fp

let create ?(shards = 64) ~bits () =
  if bits < 8 || bits > 30 then invalid_arg "Bitstate.create: bits in 8..30";
  let shards =
    let rec pow2 n = if n >= shards then n else pow2 (n * 2) in
    min (pow2 1) (1 lsl (bits - 3))
  in
  let per = (1 lsl bits) / shards in
  {
    bits;
    mask = per - 1;
    cap = per * 7 / 8;
    shards =
      Array.init shards (fun _ ->
          {
            lock = Mutex.create ();
            hi = Array.make per 0;
            lo = Array.make per 0;
            used = 0;
          });
    shard_mask = shards - 1;
    saturated = Atomic.make false;
  }

let bits t = t.bits
let capacity t = Array.length t.shards * (t.mask + 1)
let occupancy t = Array.fold_left (fun n s -> n + s.used) 0 t.shards
let saturated t = Atomic.get t.saturated

(* Probe/insert with the shard lock already held — shared by the
   single-fingerprint [add] and the batched [add_batch]. *)
let add_locked t s fp =
  let i0 = (fp.Fp.hi land max_int) land t.mask in
  let rec probe i n =
    if s.hi.(i) = 0 && s.lo.(i) = 0 then
      if s.used >= t.cap then begin
        Atomic.set t.saturated true;
        `Full
      end
      else begin
        s.hi.(i) <- fp.Fp.hi;
        s.lo.(i) <- fp.Fp.lo;
        s.used <- s.used + 1;
        `New
      end
    else if s.hi.(i) = fp.Fp.hi && s.lo.(i) = fp.Fp.lo then `Seen
    else if n > t.mask then begin
      (* Every slot probed and occupied: the load cap normally fires
         first; this is the pathological fully-dense shard. *)
      Atomic.set t.saturated true;
      `Full
    end
    else probe ((i + 1) land t.mask) (n + 1)
  in
  probe i0 0

let add t fp =
  let fp = norm fp in
  let s = t.shards.(Fp.to_int fp land t.shard_mask) in
  Mutex.protect s.lock (fun () -> add_locked t s fp)

(* Batched probe: group the fingerprints by shard, take each shard lock
   once, and answer every query against that shard under the single
   acquisition. Results land at the query's original index, and within a
   shard queries are answered in submission order, so a duplicate pair
   inside one batch behaves exactly like two sequential [add]s ([`New]
   then [`Seen]). *)
let add_batch t fps =
  let n = Array.length fps in
  let out = Array.make n `Full in
  let buckets = Array.make (Array.length t.shards) [] in
  for i = n - 1 downto 0 do
    let fp = norm fps.(i) in
    buckets.(Fp.to_int fp land t.shard_mask) <-
      (i, fp) :: buckets.(Fp.to_int fp land t.shard_mask)
  done;
  Array.iteri
    (fun si bucket ->
      match bucket with
      | [] -> ()
      | bucket ->
          let s = t.shards.(si) in
          Mutex.protect s.lock (fun () ->
              List.iter (fun (i, fp) -> out.(i) <- add_locked t s fp) bucket))
    buckets;
  out

(* Checkpoint form: plain arrays only (Mutex.t does not marshal). *)
type snapshot = {
  snap_bits : int;
  snap_hi : int array array;
  snap_lo : int array array;
  snap_used : int array;
  snap_saturated : bool;
}

let snapshot t =
  {
    snap_bits = t.bits;
    snap_hi = Array.map (fun s -> Array.copy s.hi) t.shards;
    snap_lo = Array.map (fun s -> Array.copy s.lo) t.shards;
    snap_used = Array.map (fun s -> s.used) t.shards;
    snap_saturated = Atomic.get t.saturated;
  }

let restore snap =
  let t = create ~shards:(Array.length snap.snap_hi) ~bits:snap.snap_bits () in
  if Array.length t.shards <> Array.length snap.snap_hi then
    invalid_arg "Bitstate.restore: shard count mismatch";
  Array.iteri
    (fun i s ->
      Array.blit snap.snap_hi.(i) 0 s.hi 0 (Array.length s.hi);
      Array.blit snap.snap_lo.(i) 0 s.lo 0 (Array.length s.lo);
      s.used <- snap.snap_used.(i))
    t.shards;
  Atomic.set t.saturated snap.snap_saturated;
  t
