(** Deterministic fault injection for the resilience ladder.

    The degradation machinery (bitstate seen sets, frontier spilling,
    checkpointing, parallel teardown) exists precisely for the paths
    that are hardest to reach in tests: allocation pressure, failing
    disks, interrupted writes, domains that refuse to start. This
    harness makes those paths reachable {e deterministically}: armed
    from the [GEM_FAULT] environment variable (or {!arm} in tests), a
    seeded splitmix64 stream decides at each registered injection point
    whether the operation "fails". The soundness suite
    ([test/test_resilience.ml]) then asserts the only observable
    outcomes are correct verdicts or reasoned Inconclusive — never a
    wrong Verified/Falsified.

    Spec grammar: ["SEED[:PERIOD[:POINTS]]"], e.g. ["42"],
    ["42:17"], ["42:17:spill-io,checkpoint-io"]. [PERIOD] (default 101)
    makes roughly one draw in [PERIOD] fire; [POINTS] restricts which
    sites are eligible (default all).

    Draws are consumed from one atomic process-wide counter, so a given
    seed produces a deterministic fault stream for a deterministic
    (sequential) run, and a fixed fault {e rate} for parallel ones. *)

type point =
  | Alloc  (** Frontier-growth allocation (simulated [Out_of_memory]). *)
  | Spill_io  (** Spool chunk write/read. *)
  | Checkpoint_io  (** Checkpoint snapshot write. *)
  | Domain_start  (** Worker domain spawn. *)

exception Injected of point
(** Raised {e by call sites} (never by {!fire} itself) when simulating a
    failure that the real operation would signal by exception. *)

val point_name : point -> string
val all_points : point list

val arm : string -> (unit, string) result
(** Arm from a spec string; resets the draw counter. [Error] describes
    the parse failure. *)

val arm_from_env : unit -> (bool, string) result
(** Arm from [GEM_FAULT] if set. [Ok true] if armed, [Ok false] if the
    variable is unset/empty, [Error] if set but malformed (the CLI turns
    that into a usage error rather than running unfaulted). *)

val disarm : unit -> unit
val armed : unit -> bool

val fire : point -> bool
(** Consume one draw; [true] iff the harness is armed, the point is
    eligible and the draw fires. Counts [Faults_injected]. Always
    [false] when disarmed — call sites pay one ref-read on the hot
    path. *)

val survived : unit -> unit
(** Record that an injected fault was handled gracefully (operation
    degraded, run continued or stopped with a reasoned verdict). The
    soundness suite checks [Faults_survived = Faults_injected] at exit
    on crash-free runs. *)
