(** Run-enumeration strategies for temporal restriction checking.

    The set of valid history sequences grows explosively with the number of
    concurrent events; this module packages the three ways we cope (the E14
    ablation compares them):

    - exhaustively enumerate all complete runs (sound and complete, small
      computations only);
    - enumerate only maximal runs — linear extensions, one event per step
      (complete for properties insensitive to simultaneous occurrence;
      every vhs's history set is a subset of the union of linearization
      history sets... not in general — see EXPERIMENTS.md E14 discussion);
    - sample random runs (sound for falsification only).

    {b Domain safety.} Enumeration is pure per call: [Sampled] draws from
    a [Random.State] seeded inside the call (no global generator), and no
    strategy touches module-level mutable state, so concurrent
    {!enumerate} calls from different domains (e.g. under
    {!Check.check_all} or {!Refine.sat} with [~jobs]) never interfere and
    stay per-call deterministic. *)

type t =
  | Exhaustive_vhs of int option  (** Optional cap on the number of runs. *)
  | Linearizations of int option
  | Sampled of { seed : int; count : int }

val default : t
(** [Exhaustive_vhs (Some 20_000)]. *)

val default_run_cap : int
(** The run cap {!of_budget} falls back to when the budget carries no
    [max_runs] (400 — the cap the CLI and experiments historically
    hard-coded). *)

val of_budget : Budget.t -> t
(** [Linearizations (Some cap)] with the cap taken from the budget's
    [max_runs] (default {!default_run_cap}) — the one knob the CLI,
    benches and experiments share. *)

type enumeration = {
  runs : Gem_logic.Vhs.t list;
  truncated_at : int option;
      (** [Some cap] iff the computation has strictly more runs than the
          effective cap — the enumeration was cut, never silently. *)
  complete : bool;
      (** [runs] is every complete run of the computation (exhaustive
          strategy, cap did not fire). *)
}

val enumerate : ?budget:Budget.t -> t -> Gem_model.Computation.t -> enumeration
(** Enumerate under the strategy's own cap tightened by the budget's
    [max_runs]. Truncation detection is exact: one extra run is probed
    past the cap, so [truncated_at = None] means nothing was dropped. *)

val runs : t -> Gem_model.Computation.t -> Gem_logic.Vhs.t list
(** [(enumerate t comp).runs] — kept for callers that don't need
    truncation provenance. *)

val is_complete : t -> Gem_model.Computation.t -> bool
(** Whether [runs] covered every complete run of this computation (i.e.
    exhaustive and the cap did not truncate). *)

val pp : Format.formatter -> t -> unit
