(** Run-enumeration strategies for temporal restriction checking.

    The set of valid history sequences grows explosively with the number of
    concurrent events; this module packages the three ways we cope (the E14
    ablation compares them):

    - exhaustively enumerate all complete runs (sound and complete, small
      computations only);
    - enumerate only maximal runs — linear extensions, one event per step
      (complete for properties insensitive to simultaneous occurrence;
      every vhs's history set is a subset of the union of linearization
      history sets... not in general — see EXPERIMENTS.md E14 discussion);
    - sample random runs (sound for falsification only). *)

type t =
  | Exhaustive_vhs of int option  (** Optional cap on the number of runs. *)
  | Linearizations of int option
  | Sampled of { seed : int; count : int }

val default : t
(** [Exhaustive_vhs (Some 20_000)]. *)

val runs : t -> Gem_model.Computation.t -> Gem_logic.Vhs.t list

val is_complete : t -> Gem_model.Computation.t -> bool
(** Whether [runs] covered every complete run of this computation (i.e.
    exhaustive and the cap did not truncate). *)

val pp : Format.formatter -> t -> unit
