(** Bounded-RAM fingerprint-only seen set (SPIN-style bitstate hashing).

    Exact exploration stores a canonical key (or at least a memo entry)
    per visited configuration, so RAM caps the reachable state count.
    Bitstate mode stores only the 126-bit fingerprint in a fixed
    open-addressed table — 16 bytes per slot, allocated once — trading
    certainty for capacity: a lookup answering "seen" may be a hash
    collision with a genuinely different state, silently pruning it.

    The trade is made sound through the verdict layer: any run using
    this table has its Verified downgraded to Inconclusive with
    {!Budget.reason}[.Bitstate_collision_risk], while Falsified remains
    trustworthy (counterexamples are executed, not inferred). The
    [--audit-keys] oracle composes with bitstate mode to {e measure} the
    realized collision rate on workloads that still fit exactly.

    Domain-safe: sharded with per-shard mutexes (shard from the low
    fingerprint lane, probe sequence from the high lane), shared by all
    domains of a parallel exploration. *)

type t

val create : ?shards:int -> bits:int -> unit -> t
(** [create ~bits ()] allocates [2^bits] slots split over [shards]
    (default 64, rounded to a power of two, clamped so each shard keeps
    ≥ 8 slots). [bits] must lie in 8..30 — 2^30 slots is 16 GiB, past
    any sensible single-table budget. *)

val add : t -> Gem_order.Fingerprint.t -> [ `New | `Seen | `Full ]
(** Insert-or-lookup: [`New] recorded (first sight), [`Seen] already
    present {e or colliding}, [`Full] the shard is at its 7/8 load cap
    and the fingerprint was {b not} recorded. Callers must treat [`Full]
    as "seen" (prune) and count it ([Bitstate_saturated_prunes]) —
    admitting inserts past the cap would degenerate probe chains and
    effectively hang the exploration. *)

val add_batch :
  t -> Gem_order.Fingerprint.t array -> [ `New | `Seen | `Full ] array
(** Batched {!add}: [add_batch t fps] answers [fps.(i)] at result index
    [i], grouping queries by shard and taking each shard lock exactly
    once for the whole batch — the lock-amortization primitive behind
    the batched parallel explorer. Within a shard, queries are answered
    in submission order, so duplicates inside one batch read [`New] then
    [`Seen], exactly as sequential [add]s would. *)

val bits : t -> int
val capacity : t -> int
val occupancy : t -> int

val saturated : t -> bool
(** Some [add] returned [`Full] — coverage was definitely, not just
    probabilistically, lost. *)

type snapshot
(** Marshal-safe image of the table (plain arrays, no mutexes) for
    checkpoint/resume. *)

val snapshot : t -> snapshot
val restore : snapshot -> t
