type failure = {
  restriction : string;
  formula : Gem_logic.Formula.t;
  witness : Gem_logic.Vhs.t option;
}

type t = {
  spec_name : string;
  legality : Gem_spec.Legality.violation list;
  failures : failure list;
  runs_checked : int;
  complete : bool;
}

let ok t = t.legality = [] && t.failures = []

let legal_verdict ~spec_name legality =
  { spec_name; legality; failures = []; runs_checked = 0; complete = true }

let pp comp ppf t =
  if ok t then
    Format.fprintf ppf "@[<v>%s: OK (%d run(s) checked%s)@]" t.spec_name t.runs_checked
      (if t.complete then ", complete" else ", bounded")
  else begin
    Format.fprintf ppf "@[<v>%s: FAILED" t.spec_name;
    List.iter
      (fun v ->
        match comp with
        | Some c ->
            Format.fprintf ppf "@,  legality: %a" (Gem_spec.Legality.pp_violation c) v
        | None -> Format.fprintf ppf "@,  legality violation")
      t.legality;
    List.iter
      (fun f ->
        Format.fprintf ppf "@,  @[<hov 2>restriction %s:@ %a@]" f.restriction
          Gem_logic.Formula.pp f.formula;
        match f.witness with
        | Some run -> Format.fprintf ppf "@,    on run %a" Gem_logic.Vhs.pp run
        | None -> ())
      t.failures;
    Format.fprintf ppf "@]"
  end
