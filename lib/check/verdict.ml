type failure = {
  restriction : string;
  formula : Gem_logic.Formula.t;
  witness : Gem_logic.Vhs.t option;
}

type t = {
  spec_name : string;
  legality : Gem_spec.Legality.violation list;
  failures : failure list;
  runs_checked : int;
  complete : bool;
  exhaustion : Budget.reason option;
  coverage : Budget.coverage;
}

type status = Verified | Falsified | Inconclusive of Budget.reason

let ok t = t.legality = [] && t.failures = []

let status t =
  if not (ok t) then Falsified
  else match t.exhaustion with Some r -> Inconclusive r | None -> Verified

let overall verdicts =
  if List.exists (fun v -> not (ok v)) verdicts then Falsified
  else
    match List.find_map (fun v -> v.exhaustion) verdicts with
    | Some r -> Inconclusive r
    | None -> Verified

let legal_verdict ~spec_name legality =
  {
    spec_name;
    legality;
    failures = [];
    runs_checked = 0;
    complete = true;
    exhaustion = None;
    coverage = Budget.full_coverage;
  }

let with_exploration ?(reduced = 0) ~explored ~truncated t =
  {
    t with
    coverage =
      {
        t.coverage with
        Budget.configs_explored = t.coverage.Budget.configs_explored + explored;
        configs_reduced = t.coverage.Budget.configs_reduced + reduced;
        branches_truncated = t.coverage.Budget.branches_truncated + truncated;
      };
  }

let exit_code = function Verified -> 0 | Falsified -> 1 | Inconclusive _ -> 2

let status_keyword = function
  | Verified -> "verified"
  | Falsified -> "falsified"
  | Inconclusive _ -> "inconclusive"

let pp_status ppf = function
  | Verified -> Format.fprintf ppf "VERIFIED"
  | Falsified -> Format.fprintf ppf "FALSIFIED"
  | Inconclusive r -> Format.fprintf ppf "INCONCLUSIVE (%a)" Budget.pp_reason r

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_json t =
  Printf.sprintf
    {|{"spec":%s,"status":%s,"reason":%s,"legality_violations":%d,"failed_restrictions":[%s],"runs_checked":%d,"complete":%b,"coverage":%s}|}
    (json_string t.spec_name)
    (json_string (status_keyword (status t)))
    (match t.exhaustion with Some r -> Budget.reason_json r | None -> "null")
    (List.length t.legality)
    (String.concat "," (List.map (fun f -> json_string f.restriction) t.failures))
    t.runs_checked t.complete
    (Budget.coverage_json t.coverage)

let pp comp ppf t =
  match status t with
  | Verified | Inconclusive _ when ok t ->
      Format.fprintf ppf "@[<v>%s: %s (%d run(s) checked%s)" t.spec_name
        (match status t with Verified -> "OK" | _ -> "OK so far")
        t.runs_checked
        (if t.complete then ", complete" else ", bounded");
      (match t.exhaustion with
      | Some r -> Format.fprintf ppf "@,  inconclusive: %a@,  %a" Budget.pp_reason r
            Budget.pp_coverage t.coverage
      | None -> ());
      Format.fprintf ppf "@]"
  | _ ->
      Format.fprintf ppf "@[<v>%s: FAILED" t.spec_name;
      List.iter
        (fun v ->
          match comp with
          | Some c ->
              Format.fprintf ppf "@,  legality: %a" (Gem_spec.Legality.pp_violation c) v
          | None -> Format.fprintf ppf "@,  legality violation")
        t.legality;
      List.iter
        (fun f ->
          Format.fprintf ppf "@,  @[<hov 2>restriction %s:@ %a@]" f.restriction
            Gem_logic.Formula.pp f.formula;
          match f.witness with
          | Some run -> Format.fprintf ppf "@,    on run %a" Gem_logic.Vhs.pp run
          | None -> ())
        t.failures;
      Format.fprintf ppf "@]"
