(* Transport only: newline-framed requests over a Unix-domain socket,
   one thread per connection. Checking semantics (parsing, caching,
   verdicts) live behind the [handler]; this module owns the sockets,
   the framing, the drain-on-stop choreography and nothing else. *)

type handler = string -> string list

type conn = {
  c_fd : Unix.file_descr;
  mutable c_thread : Thread.t option;
  mutable c_closed : bool;
      (* Guarded by [s_lock]: once true, [c_fd] may be reused by the OS,
         so the drain path must not touch it. *)
}

type t = {
  s_path : string;
  s_listen : Unix.file_descr;
  s_stop : bool Atomic.t;
  s_lock : Mutex.t;
  mutable s_conns : conn list;
}

let create ~socket () =
  (* A stale socket file from a crashed daemon would make bind fail with
     EADDRINUSE even though nobody is listening; removing a regular file
     at the path would destroy user data, so only socket files are swept. *)
  (match Unix.lstat socket with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> (try Unix.unlink socket with Unix.Unix_error _ -> ())
  | _ -> ()
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.set_close_on_exec fd with Invalid_argument _ -> ());
  (try Unix.bind fd (Unix.ADDR_UNIX socket)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen fd 64;
  {
    s_path = socket;
    s_listen = fd;
    s_stop = Atomic.make false;
    s_lock = Mutex.create ();
    s_conns = [];
  }

let socket_path t = t.s_path
let request_stop t = Atomic.set t.s_stop true
let stopping t = Atomic.get t.s_stop

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Writes may be split by the kernel; loop until done. EPIPE/ECONNRESET
   mean the client went away mid-response — the caller closes the
   connection, the daemon keeps serving everyone else. *)
let write_all fd s =
  let n = String.length s in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write_substring fd s !sent (n - !sent)
  done

let serve_conn t ~handler conn =
  let ic = Unix.in_channel_of_descr conn.c_fd in
  let close () =
    Mutex.protect t.s_lock (fun () ->
        if not conn.c_closed then begin
          conn.c_closed <- true;
          (* close_in closes the underlying descriptor too. *)
          close_in_noerr ic
        end)
  in
  (try
     let continue = ref true in
     while !continue do
       match input_line ic with
       | exception End_of_file -> continue := false
       | exception Sys_error _ -> continue := false
       | line ->
           let replies =
             match handler line with
             | replies -> replies
             | exception e ->
                 [
                   Printf.sprintf {|{"serve":1,"error":"internal: %s","code":3}|}
                     (json_escape (Printexc.to_string e));
                 ]
           in
           let buf = Buffer.create 256 in
           List.iter
             (fun r ->
               Buffer.add_string buf r;
               Buffer.add_char buf '\n')
             replies;
           (try write_all conn.c_fd (Buffer.contents buf)
            with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _)
            | Sys_error _ ->
              continue := false);
           (* A drain request closes the connection once the in-flight
              response is out; clients reconnect to a restarted daemon. *)
           if Atomic.get t.s_stop then continue := false
     done
   with e ->
     (* Nothing may escape a connection thread — a lost connection must
        never take the daemon down. *)
     ignore e);
  close ()

let run t ~handler =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  while not (Atomic.get t.s_stop) do
    match Unix.select [ t.s_listen ] [] [] 0.25 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
        match Unix.accept t.s_listen with
        | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
        | fd, _ ->
            let conn = { c_fd = fd; c_thread = None; c_closed = false } in
            Mutex.protect t.s_lock (fun () -> t.s_conns <- conn :: t.s_conns);
            conn.c_thread <- Some (Thread.create (serve_conn t ~handler) conn))
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  (try Unix.close t.s_listen with Unix.Unix_error _ -> ());
  (* Drain: shut the read side of every connection so idle readers see
     EOF, while a thread inside [handler] finishes and flushes its
     response first; then wait for them all. *)
  let conns =
    Mutex.protect t.s_lock (fun () ->
        List.iter
          (fun c ->
            if not c.c_closed then
              try Unix.shutdown c.c_fd Unix.SHUTDOWN_RECEIVE
              with Unix.Unix_error _ | Invalid_argument _ -> ())
          t.s_conns;
        t.s_conns)
  in
  List.iter (fun c -> match c.c_thread with Some th -> Thread.join th | None -> ()) conns;
  try Unix.unlink t.s_path with Unix.Unix_error _ | Sys_error _ -> ()
