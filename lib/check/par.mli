(** Domain-parallelism substrate for the exploration and checking layers.

    Built on the stdlib's [Domain] and [Atomic] only. Parallelism is
    always opt-in: every entry point that accepts a [jobs] count defaults
    it to {!jobs_default}, which is [1] unless the [GEM_JOBS] environment
    variable says otherwise — so sequential behavior is the default and
    one environment switch turns the whole pipeline parallel. *)

val jobs_default : unit -> int
(** The worker-count default: the [GEM_JOBS] environment variable when it
    parses as an integer [>= 1], else [1]. Mirrors
    {!Gem_lang.Explore.por_default}'s treatment of [GEM_NO_POR]: library
    entry points consult it when the caller passes no explicit [jobs], so
    the CLI flag and the environment variable compose. Invalid values are
    ignored (the strict rejection lives in the CLI, which refuses them
    with a usage error). *)

val batch_default : unit -> int
(** The work-distribution chunk size default: the [GEM_BATCH] environment
    variable when it parses as an integer [>= 1], else [64]. The batched
    parallel explorer moves frontier tasks between domains in chunks of
    at most this many; [1] degrades to per-task stealing. Same lenient
    treatment as {!jobs_default} — strict rejection lives in the CLI. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map over [jobs] domains (the caller's domain
    included). [jobs <= 1] — or a list too short to split — degrades to
    [List.map]. Work is dealt by an atomic cursor, so uneven item costs
    balance automatically. A worker exception aborts the remaining work
    and is re-raised (with its backtrace) in the calling domain; when
    several workers fail concurrently the first failure wins. [f] must be
    safe to call from multiple domains: pure, or confined to domain-safe
    shared state such as {!Budget.t}. *)

val mapi : ?jobs:int -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** [map] with the element index, same ordering and failure contract. *)
