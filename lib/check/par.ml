(* Small domain-parallelism substrate shared by the exploration and
   checking layers. Kept deliberately tiny: the stdlib's [Domain] and
   [Atomic] are the only primitives, so the library builds with no
   dependencies beyond the OCaml 5 runtime. *)

let jobs_default () =
  match Sys.getenv_opt "GEM_JOBS" with
  | None | Some "" -> 1
  | Some s -> ( match int_of_string_opt s with Some n when n >= 1 -> n | _ -> 1)

(* Chunk size for the batched parallel explorer. 64 tasks per chunk is
   the measured sweet spot: large enough to amortize deque locking and
   per-shard probe batching, small enough that tiny frontiers still
   spread across domains (partial chunks are flushed eagerly, so the
   value is a ceiling, not a quantum of latency). *)
let batch_default () =
  match Sys.getenv_opt "GEM_BATCH" with
  | None | Some "" -> 64
  | Some s -> ( match int_of_string_opt s with Some n when n >= 1 -> n | _ -> 64)

(* Re-raise a worker exception in the spawning domain. The first failure
   wins; the others are dropped — by then the pipeline is aborting. *)
let reraise_first failure =
  match Atomic.get failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let map ?(jobs = jobs_default ()) f xs =
  let n = List.length xs in
  if jobs <= 1 || n <= 1 then List.map f xs
  else begin
    let inputs = Array.of_list xs in
    let outputs = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let rec loop () =
        if Atomic.get failure = None then begin
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            (try outputs.(i) <- Some (f inputs.(i))
             with e ->
               let bt = Printexc.get_raw_backtrace () in
               ignore (Atomic.compare_and_set failure None (Some (e, bt))));
            loop ()
          end
        end
      in
      loop ()
    in
    let domains =
      List.init (min (jobs - 1) (n - 1)) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join domains;
    reraise_first failure;
    Array.to_list
      (Array.map
         (function Some y -> y | None -> assert false (* failure re-raised *))
         outputs)
  end

let mapi ?jobs f xs =
  map ?jobs (fun (i, x) -> f i x) (List.mapi (fun i x -> (i, x)) xs)
