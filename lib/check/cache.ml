(* One mutex + one condition variable for the whole cache. Verdict
   computations run for milliseconds to minutes, so per-entry locking
   would buy nothing: the critical sections here are a hashtable probe
   and an LRU bump, and the compute function always runs unlocked.
   Waiters of *any* in-flight key share the condition and re-check their
   own slot on wakeup — a broadcast per completion is cheap at daemon
   request rates. *)

module T = Gem_obs.Telemetry

(* [stamp] is the LRU clock value at last touch. Eviction scans for the
   minimum — O(n), but n is the (small, bounded) capacity and eviction
   happens at most once per insert. *)
type 'v ready = { value : 'v; mutable stamp : int }
type 'v outcome = Value of 'v | Raised of exn * Printexc.raw_backtrace
type 'v flight = { mutable outcome : 'v outcome option; mutable waiters : int }
type 'v slot = Ready of 'v ready | In_flight of 'v flight

type 'v t = {
  lock : Mutex.t;
  done_cond : Condition.t;
  table : (string, 'v slot) Hashtbl.t;
  cap : int;
  counted : bool;
  mutable clock : int;
  mutable n_ready : int;
  mutable hits : int;
  mutable misses : int;
  mutable coalesced : int;
  mutable evictions : int;
}

let create ?(telemetry = true) ~capacity () =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  {
    lock = Mutex.create ();
    done_cond = Condition.create ();
    table = Hashtbl.create (2 * capacity);
    cap = capacity;
    counted = telemetry;
    clock = 0;
    n_ready = 0;
    hits = 0;
    misses = 0;
    coalesced = 0;
    evictions = 0;
  }

type provenance = Hit | Miss | Coalesced

let provenance_name = function
  | Hit -> "hit"
  | Miss -> "miss"
  | Coalesced -> "coalesced"

let touch t r =
  t.clock <- t.clock + 1;
  r.stamp <- t.clock

(* Evict the least recently used Ready entry. Called with the lock held,
   only when [n_ready > cap] — an In_flight slot never counts against
   the capacity and is never evicted. *)
let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun k -> function
      | Ready r -> (
          match !victim with
          | Some (_, s) when s <= r.stamp -> ()
          | _ -> victim := Some (k, r.stamp))
      | In_flight _ -> ())
    t.table;
  match !victim with
  | Some (k, _) ->
      Hashtbl.remove t.table k;
      t.n_ready <- t.n_ready - 1;
      t.evictions <- t.evictions + 1
  | None -> ()

let find_or_compute t key f =
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.table key with
  | Some (Ready r) ->
      touch t r;
      t.hits <- t.hits + 1;
      Mutex.unlock t.lock;
      if t.counted then T.hit T.Cache_hits;
      (r.value, Hit)
  | Some (In_flight fl) ->
      fl.waiters <- fl.waiters + 1;
      t.coalesced <- t.coalesced + 1;
      while fl.outcome = None do
        Condition.wait t.done_cond t.lock
      done;
      fl.waiters <- fl.waiters - 1;
      let outcome = Option.get fl.outcome in
      (* The computing request swaps the slot for Ready (or removes it on
         failure); the last waiter of a failed flight need not clean up —
         the slot is already gone. *)
      Mutex.unlock t.lock;
      if t.counted then T.hit T.Requests_coalesced;
      (match outcome with
      | Value v -> (v, Coalesced)
      | Raised (e, bt) -> Printexc.raise_with_backtrace e bt)
  | None ->
      let fl = { outcome = None; waiters = 0 } in
      Hashtbl.replace t.table key (In_flight fl);
      Mutex.unlock t.lock;
      let result =
        match f () with
        | v -> Value v
        | exception e -> Raised (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock t.lock;
      fl.outcome <- Some result;
      (match result with
      | Value v ->
          t.clock <- t.clock + 1;
          Hashtbl.replace t.table key (Ready { value = v; stamp = t.clock });
          t.n_ready <- t.n_ready + 1;
          if t.n_ready > t.cap then evict_lru t
      | Raised _ -> Hashtbl.remove t.table key);
      t.misses <- t.misses + 1;
      Condition.broadcast t.done_cond;
      Mutex.unlock t.lock;
      if t.counted then T.hit T.Cache_misses;
      (match result with
      | Value v -> (v, Miss)
      | Raised (e, bt) -> Printexc.raise_with_backtrace e bt)

let find t key =
  Mutex.lock t.lock;
  let r =
    match Hashtbl.find_opt t.table key with
    | Some (Ready r) ->
        touch t r;
        Some r.value
    | Some (In_flight _) | None -> None
  in
  Mutex.unlock t.lock;
  r

let remove t key =
  Mutex.lock t.lock;
  (match Hashtbl.find_opt t.table key with
  | Some (Ready _) ->
      Hashtbl.remove t.table key;
      t.n_ready <- t.n_ready - 1
  | Some (In_flight _) | None -> ());
  Mutex.unlock t.lock

let clear t =
  Mutex.lock t.lock;
  let keys =
    Hashtbl.fold
      (fun k s acc -> match s with Ready _ -> k :: acc | In_flight _ -> acc)
      t.table []
  in
  List.iter (Hashtbl.remove t.table) keys;
  t.n_ready <- 0;
  Mutex.unlock t.lock

type stats = {
  entries : int;
  capacity : int;
  hits : int;
  misses : int;
  coalesced : int;
  evictions : int;
}

let stats t =
  Mutex.lock t.lock;
  let s =
    {
      entries = t.n_ready;
      capacity = t.cap;
      hits = t.hits;
      misses = t.misses;
      coalesced = t.coalesced;
      evictions = t.evictions;
    }
  in
  Mutex.unlock t.lock;
  s
