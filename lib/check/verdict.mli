(** Outcome of checking a computation against a specification.

    Verdicts are three-valued ({!status}): [Verified] (all restrictions
    hold and the requested run enumeration was not cut), [Falsified] (a
    legality violation or a failing restriction — sound even under a
    truncated enumeration), or [Inconclusive] (no violation found but a
    resource budget or run cap fired before coverage finished, with a
    machine-readable {!Budget.reason} and {!Budget.coverage} stats). *)

type failure = {
  restriction : string;
  formula : Gem_logic.Formula.t;
  witness : Gem_logic.Vhs.t option;
      (** A run on which the restriction fails; [None] for immediate
          restrictions (which fail on the computation itself). *)
}

type t = {
  spec_name : string;
  legality : Gem_spec.Legality.violation list;
  failures : failure list;
  runs_checked : int;
  complete : bool;
      (** True when the temporal check covered every complete run. *)
  exhaustion : Budget.reason option;
      (** A budget dimension or run cap fired before the requested
          coverage finished. *)
  coverage : Budget.coverage;
}

type status = Verified | Falsified | Inconclusive of Budget.reason

val ok : t -> bool
(** Legal and no restriction failed — the two-valued view (an
    [Inconclusive] verdict with no failure found counts as ok). *)

val status : t -> status
(** [Falsified] wins over exhaustion: a witness found under a truncated
    enumeration still refutes. *)

val overall : t list -> status
(** Aggregate: [Falsified] if any verdict falsifies, else [Inconclusive]
    (first reason) if any is inconclusive, else [Verified]. Empty list is
    [Verified]. *)

val legal_verdict : spec_name:string -> Gem_spec.Legality.violation list -> t
(** A verdict that records only legality violations (no runs checked). *)

val with_exploration : ?reduced:int -> explored:int -> truncated:int -> t -> t
(** Fold interpreter exploration statistics into the coverage stats;
    [reduced] counts configurations pruned by partial-order reduction. *)

val exit_code : status -> int
(** 0 verified, 1 falsified, 2 inconclusive — the [gemcheck] exit-code
    contract (3 is reserved for usage/internal errors). *)

val status_keyword : status -> string
(** ["verified"], ["falsified"] or ["inconclusive"]. *)

val pp_status : Format.formatter -> status -> unit

val to_json : t -> string
(** Machine-readable degradation report: status, exhaustion reason,
    coverage, failing restriction names. *)

val pp : Gem_model.Computation.t option -> Format.formatter -> t -> unit
(** Pass the computation to print legality violations with event detail. *)
