(** Outcome of checking a computation against a specification. *)

type failure = {
  restriction : string;
  formula : Gem_logic.Formula.t;
  witness : Gem_logic.Vhs.t option;
      (** A run on which the restriction fails; [None] for immediate
          restrictions (which fail on the computation itself). *)
}

type t = {
  spec_name : string;
  legality : Gem_spec.Legality.violation list;
  failures : failure list;
  runs_checked : int;
  complete : bool;
      (** True when the temporal check covered every complete run. *)
}

val ok : t -> bool
(** Legal and no restriction failed. *)

val legal_verdict : spec_name:string -> Gem_spec.Legality.violation list -> t
(** A verdict that records only legality violations (no runs checked). *)

val pp : Gem_model.Computation.t option -> Format.formatter -> t -> unit
(** Pass the computation to print legality violations with event detail. *)
