(* Crash-safe periodic snapshots. The format is deliberately dumb:
     "GEMCKPT1" | Marshal(stamp : string) | Marshal(payload)
   written to FILE.tmp and atomically renamed over FILE, so a crash
   mid-write leaves either the previous complete checkpoint or none —
   never a torn one. The stamp is the caller's full run identity
   (command, workload parameters, engine configuration, binary
   revision); [read] refuses a stamp mismatch because resuming a
   frontier into a different exploration would corrupt the verdict
   silently. *)

module T = Gem_obs.Telemetry

type ctl = { file : string; every : int }

let ctl ?(every = 50_000) file =
  if every < 1 then invalid_arg "Checkpoint.ctl: every must be positive";
  { file; every }

let file t = t.file
let every t = t.every

let magic = "GEMCKPT1"

let write t ~stamp payload =
  let tmp = t.file ^ ".tmp" in
  try
    if Faults.fire Faults.Checkpoint_io then
      raise (Faults.Injected Faults.Checkpoint_io);
    Spool.register_temp tmp;
    let oc = open_out_bin tmp in
    (try
       output_string oc magic;
       Marshal.to_channel oc (stamp : string) [];
       Marshal.to_channel oc payload [];
       close_out oc
     with e ->
       close_out_noerr oc;
       raise e);
    Sys.rename tmp t.file;
    Spool.release_temp tmp;
    T.hit T.Checkpoint_writes;
    Ok ()
  with
  | Faults.Injected _ ->
      Faults.survived ();
      Error "injected checkpoint fault"
  | Sys_error msg ->
      (try Sys.remove tmp with Sys_error _ -> ());
      Spool.release_temp tmp;
      Error msg

let read ~stamp path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let m = really_input_string ic (String.length magic) in
        if m <> magic then Error (path ^ ": not a gemcheck checkpoint")
        else
          let written : string = Marshal.from_channel ic in
          if written <> stamp then
            Error
              (Printf.sprintf
                 "%s: checkpoint stamp mismatch (written for %S, resuming \
                  %S) — refusing to resume a different run"
                 path written stamp)
          else Ok (Marshal.from_channel ic))
  with
  | Sys_error msg -> Error msg
  | End_of_file | Failure _ -> Error (path ^ ": truncated or corrupt checkpoint")
