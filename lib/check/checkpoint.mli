(** Crash-safe periodic run snapshots ([--checkpoint]/[--resume]).

    A long exploration should survive its process: every [every] visited
    configurations the engine marshals its complete resumable state —
    seen set, frontier, accumulated leaves and counters, budget usage,
    telemetry totals — to a file, atomically (write to [FILE.tmp], then
    rename), so the file always holds either the previous complete
    snapshot or the new one, never a torn write. A killed run resumed
    from the snapshot replays to a {e byte-identical} verdict, because
    the resilient engine is sequential-deterministic and the canonical
    merge anchors the output.

    {b Format}: ["GEMCKPT1"] magic, then the marshalled [stamp] string,
    then the marshalled payload. The stamp encodes the full run identity
    (command, workload parameters, engine configuration); {!read}
    refuses a mismatch — resuming into a different run would silently
    corrupt the verdict, the one thing this subsystem exists to
    protect.

    Write failures (real, or injected at {!Faults.Checkpoint_io})
    return [Error] and the run continues without that snapshot; a
    checkpoint is an opportunity, not an obligation. *)

type ctl

val ctl : ?every:int -> string -> ctl
(** [ctl file] snapshots to [file] every [every] (default 50_000)
    visited configurations. *)

val file : ctl -> string
val every : ctl -> int

val write : ctl -> stamp:string -> 'a -> (unit, string) result
(** Atomic snapshot write; counts [Checkpoint_writes] on success. The
    payload must be marshal-safe (interpreter configurations are pure
    data — no closures, no custom blocks). *)

val read : stamp:string -> string -> ('a, string) result
(** Load and validate a snapshot. [Error] on missing/corrupt file or
    stamp mismatch. The caller asserts the payload type — safe only
    because the stamp pins the producing run configuration. *)
