module Computation = Gem_model.Computation
module Event = Gem_model.Event
module Value = Gem_model.Value
open Formula

exception Error of string

type env = (string * int) list

let lookup env x =
  match List.assoc_opt x env with
  | Some h -> h
  | None -> raise (Error ("unbound event variable " ^ x))

let rec matches_domain comp h = function
  | Any -> true
  | Cls c -> Event.has_class (Computation.event comp h) c
  | At_elem el -> String.equal (Computation.event comp h).Event.id.element el
  | Cls_at (el, c) ->
      let e = Computation.event comp h in
      String.equal e.Event.id.element el && Event.has_class e c
  | Union ds -> List.exists (matches_domain comp h) ds

let domain_events comp d =
  List.filter (fun h -> matches_domain comp h d) (Computation.all_events comp)

let rec eval_texp comp env = function
  | Const v -> v
  | Param (x, p) -> (
      let e = Computation.event comp (lookup env x) in
      match Event.param_opt e p with
      | Some v -> v
      | None ->
          raise
            (Error
               (Format.asprintf "event %a has no parameter %s" Event.pp e p)))
  | Index x -> Value.Int (Computation.event comp (lookup env x)).Event.id.index
  | Plus (t, n) -> (
      match eval_texp comp env t with
      | Value.Int k -> Value.Int (k + n)
      | v -> raise (Error ("Plus over non-integer " ^ Value.to_string v)))

let eval_cmp c v1 v2 =
  let n = Value.compare v1 v2 in
  match c with
  | Eq -> n = 0
  | Ne -> n <> 0
  | Lt -> n < 0
  | Le -> n <= 0
  | Gt -> n > 0
  | Ge -> n >= 0

let thread_pair comp env pi x y =
  let ex = Computation.event comp (lookup env x) in
  let ey = Computation.event comp (lookup env y) in
  (Event.thread_instance ex pi, Event.thread_instance ey pi)

let eval_atom hist env a =
  let comp = History.computation hist in
  let in_h x = History.mem hist (lookup env x) in
  match a with
  | Occurred x -> in_h x
  | Enables (x, y) -> in_h x && in_h y && Computation.enables comp (lookup env x) (lookup env y)
  | Elem_lt (x, y) -> in_h x && in_h y && Computation.elem_lt comp (lookup env x) (lookup env y)
  | Temp_lt (x, y) -> in_h x && in_h y && Computation.temp_lt comp (lookup env x) (lookup env y)
  | Same_event (x, y) -> lookup env x = lookup env y
  | Same_element (x, y) ->
      String.equal
        (Computation.event comp (lookup env x)).Event.id.element
        (Computation.event comp (lookup env y)).Event.id.element
  | In_class (x, d) -> matches_domain comp (lookup env x) d
  | Cmp (c, t1, t2) -> eval_cmp c (eval_texp comp env t1) (eval_texp comp env t2)
  | At_class (x, d) ->
      History.at hist (lookup env x) (fun e2 -> matches_domain comp e2 d)
  | New x -> History.is_new hist (lookup env x)
  | Potential x -> History.potential hist (lookup env x)
  | Same_thread (pi, x, y) -> (
      match thread_pair comp env pi x y with
      | Some i, Some j -> i = j
      | _ -> false)
  | Distinct_thread (pi, x, y) -> (
      match thread_pair comp env pi x y with
      | Some i, Some j -> i <> j
      | _ -> false)
  | In_thread (pi, x) ->
      Event.thread_instance (Computation.event comp (lookup env x)) pi <> None
  | Sem (_, xs, fn) -> fn comp (History.members hist) (List.map (lookup env) xs)

let count_until_two comp d env x pred =
  (* 0, 1 or 2 (meaning >= 2) witnesses; short-circuits. *)
  let rec loop n = function
    | [] -> n
    | h :: rest ->
        if pred ((x, h) :: env) then if n = 1 then 2 else loop 1 rest else loop n rest
  in
  loop 0 (domain_events comp d)

let rec eval_history hist env f =
  let comp = History.computation hist in
  match f with
  | True -> true
  | False -> false
  | Atom a -> eval_atom hist env a
  | Not f -> not (eval_history hist env f)
  | And fs -> List.for_all (eval_history hist env) fs
  | Or fs -> List.exists (eval_history hist env) fs
  | Implies (a, b) -> (not (eval_history hist env a)) || eval_history hist env b
  | Iff (a, b) -> eval_history hist env a = eval_history hist env b
  | Forall (x, d, body) ->
      List.for_all (fun h -> eval_history hist ((x, h) :: env) body) (domain_events comp d)
  | Exists (x, d, body) ->
      List.exists (fun h -> eval_history hist ((x, h) :: env) body) (domain_events comp d)
  | Exists_unique (x, d, body) ->
      count_until_two comp d env x (fun env -> eval_history hist env body) = 1
  | At_most_one (x, d, body) ->
      count_until_two comp d env x (fun env -> eval_history hist env body) <= 1
  | Henceforth _ | Eventually _ ->
      raise (Error "temporal operator in immediate context")

let eval_computation ?(env = []) comp f =
  Gem_obs.Telemetry.(hit Formula_evals);
  let span = Gem_obs.Telemetry.(span_begin Formula_eval) in
  let v = eval_history (History.full comp) env f in
  Gem_obs.Telemetry.(span_end Formula_eval) span;
  v

let eval_run ?(env = []) run f =
  Gem_obs.Telemetry.(hit Formula_evals);
  let span = Gem_obs.Telemetry.(span_begin Formula_eval) in
  let len = Vhs.length run in
  let comp = Vhs.computation run in
  let rec at i env f =
    match f with
    | True -> true
    | False -> false
    | Atom a -> eval_atom (Vhs.nth_history run i) env a
    | Not f -> not (at i env f)
    | And fs -> List.for_all (at i env) fs
    | Or fs -> List.exists (at i env) fs
    | Implies (a, b) -> (not (at i env a)) || at i env b
    | Iff (a, b) -> at i env a = at i env b
    | Forall (x, d, body) ->
        List.for_all (fun h -> at i ((x, h) :: env) body) (domain_events comp d)
    | Exists (x, d, body) ->
        List.exists (fun h -> at i ((x, h) :: env) body) (domain_events comp d)
    | Exists_unique (x, d, body) ->
        count_until_two comp d env x (fun env -> at i env body) = 1
    | At_most_one (x, d, body) ->
        count_until_two comp d env x (fun env -> at i env body) <= 1
    | Henceforth body ->
        let rec all j = j >= len || (at j env body && all (j + 1)) in
        all i
    | Eventually body ->
        let rec some j = j < len && (at j env body || some (j + 1)) in
        some i
  in
  let v = at 0 env f in
  Gem_obs.Telemetry.(span_end Formula_eval) span;
  v
