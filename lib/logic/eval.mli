(** Evaluation of restriction formulae.

    Three entry points matching the paper's three uses of restrictions:
    on a history (immediate assertion at a point of progress), on a whole
    computation (immediate assertion about the complete execution — the
    full history), and on a valid history sequence (temporal assertion,
    §7). *)

exception Error of string
(** Raised on unbound variables, missing event parameters, or a temporal
    operator reaching immediate evaluation. *)

type env = (string * int) list
(** Variable bindings to event handles. *)

val matches_domain : Gem_model.Computation.t -> int -> Formula.domain -> bool

val domain_events : Gem_model.Computation.t -> Formula.domain -> int list

val eval_history : History.t -> env -> Formula.t -> bool
(** Quantifiers range over the computation's events; atoms are relative to
    the history. Raises {!Error} on temporal operators. *)

val eval_computation : ?env:env -> Gem_model.Computation.t -> Formula.t -> bool
(** [eval_history] on the full history. *)

val eval_run : ?env:env -> Vhs.t -> Formula.t -> bool
(** Temporal semantics over the (finite) sequence: [[]p] holds at position
    [i] iff [p] holds at every [j >= i]; [<>p] iff at some [j >= i]. A run's
    final history is the complete computation, so this is the standard
    finite-trace reading with terminal stuttering. The formula is evaluated
    at position 0. *)
