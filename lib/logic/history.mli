(** Histories: downward-closed prefixes of a computation (paper §7).

    A history describes "what has happened so far": a subset of the
    computation's events that contains every temporal predecessor of each of
    its members, together with the (restriction of the) relations between
    them. We represent a history as the computation plus a member bitset,
    so event handles remain stable across prefixes. *)

type t

val computation : t -> Gem_model.Computation.t

val members : t -> Gem_order.Bitset.t
(** The member set (a copy; histories are immutable). *)

val empty : Gem_model.Computation.t -> t

val full : Gem_model.Computation.t -> t

val of_set : Gem_model.Computation.t -> Gem_order.Bitset.t -> t option
(** [None] unless the set is downward closed under the temporal order.
    Requires the computation to be acyclic. *)

val down_closure : Gem_model.Computation.t -> Gem_order.Bitset.t -> t
(** Smallest history containing the given events. *)

val mem : t -> int -> bool
(** The paper's [occurred(e)] relative to this history. *)

val cardinal : t -> int

val is_full : t -> bool

val prefix : t -> t -> bool
(** [prefix a b]: [a] is a prefix of (subset of) [b]. *)

val equal : t -> t -> bool

val add_step : t -> int list -> t option
(** Extend by one vhs step: all step events fresh, pairwise potentially
    concurrent, and with all temporal predecessors already in the history
    (equivalently, the result is again a history and the step is an
    antichain). [None] if any condition fails. *)

val frontier : t -> int list
(** Events not in the history whose temporal predecessors are all in it —
    exactly the events [potential] in this history (paper §9 footnote). *)

val potential : t -> int -> bool
(** [potential h e]: [e] has not occurred and all its prerequisites have. *)

val is_new : t -> int -> bool
(** The paper's [new(e)]: [e] occurred and no event observably follows it
    within the history. *)

val at : t -> int -> (int -> bool) -> bool
(** [at h e1 is_e2]: the paper's [e1 at E2] — [e1] occurred and has not
    enabled any event satisfying [is_e2] within the history. *)

val all : Gem_model.Computation.t -> t list
(** Every history of the computation (the prefix lattice); exponential —
    intended for small computations and tests. *)

val count : ?cap:int -> Gem_model.Computation.t -> int
(** Number of histories (down-sets), capped. *)

val pp : Format.formatter -> t -> unit
