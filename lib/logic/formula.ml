type cmp = Eq | Ne | Lt | Le | Gt | Ge

type texp =
  | Const of Gem_model.Value.t
  | Param of string * string
  | Index of string
  | Plus of texp * int

type domain =
  | Any
  | Cls of string
  | At_elem of string
  | Cls_at of string * string
  | Union of domain list

type sem_fn = Gem_model.Computation.t -> Gem_order.Bitset.t -> int list -> bool

type atom =
  | Occurred of string
  | Enables of string * string
  | Elem_lt of string * string
  | Temp_lt of string * string
  | Same_event of string * string
  | Same_element of string * string
  | In_class of string * domain
  | Cmp of cmp * texp * texp
  | At_class of string * domain
  | New of string
  | Potential of string
  | Same_thread of string * string * string
  | Distinct_thread of string * string * string
  | In_thread of string * string
  | Sem of string * string list * sem_fn

type t =
  | True
  | False
  | Atom of atom
  | Not of t
  | And of t list
  | Or of t list
  | Implies of t * t
  | Iff of t * t
  | Forall of string * domain * t
  | Exists of string * domain * t
  | Exists_unique of string * domain * t
  | At_most_one of string * domain * t
  | Henceforth of t
  | Eventually of t

let rec is_immediate = function
  | True | False | Atom _ -> true
  | Not f -> is_immediate f
  | And fs | Or fs -> List.for_all is_immediate fs
  | Implies (a, b) | Iff (a, b) -> is_immediate a && is_immediate b
  | Forall (_, _, f) | Exists (_, _, f) | Exists_unique (_, _, f) | At_most_one (_, _, f)
    ->
      is_immediate f
  | Henceforth _ | Eventually _ -> false

module Sset = Set.Make (String)

let free_vars f =
  let rec go bound = function
    | True | False -> Sset.empty
    | Atom a -> atom_vars bound a
    | Not f -> go bound f
    | And fs | Or fs ->
        List.fold_left (fun acc f -> Sset.union acc (go bound f)) Sset.empty fs
    | Implies (a, b) | Iff (a, b) -> Sset.union (go bound a) (go bound b)
    | Forall (x, _, f) | Exists (x, _, f) | Exists_unique (x, _, f) | At_most_one (x, _, f)
      ->
        go (Sset.add x bound) f
    | Henceforth f | Eventually f -> go bound f
  and atom_vars bound a =
    let add x acc = if Sset.mem x bound then acc else Sset.add x acc in
    let rec texp_vars t acc =
      match t with
      | Const _ -> acc
      | Param (x, _) | Index x -> add x acc
      | Plus (t, _) -> texp_vars t acc
    in
    match a with
    | Occurred x | New x | Potential x -> add x Sset.empty
    | Enables (x, y)
    | Elem_lt (x, y)
    | Temp_lt (x, y)
    | Same_event (x, y)
    | Same_element (x, y) ->
        add x (add y Sset.empty)
    | In_class (x, _) | At_class (x, _) | In_thread (_, x) -> add x Sset.empty
    | Cmp (_, t1, t2) -> texp_vars t1 (texp_vars t2 Sset.empty)
    | Same_thread (_, x, y) | Distinct_thread (_, x, y) -> add x (add y Sset.empty)
    | Sem (_, xs, _) -> List.fold_left (fun acc x -> add x acc) Sset.empty xs
  in
  Sset.elements (go Sset.empty f)

let pp_cmp ppf = function
  | Eq -> Format.fprintf ppf "="
  | Ne -> Format.fprintf ppf "!="
  | Lt -> Format.fprintf ppf "<"
  | Le -> Format.fprintf ppf "<="
  | Gt -> Format.fprintf ppf ">"
  | Ge -> Format.fprintf ppf ">="

let rec pp_texp ppf = function
  | Const v -> Gem_model.Value.pp ppf v
  | Param (x, p) -> Format.fprintf ppf "%s.%s" x p
  | Index x -> Format.fprintf ppf "index(%s)" x
  | Plus (t, n) -> Format.fprintf ppf "%a + %d" pp_texp t n

let rec pp_domain ppf = function
  | Any -> Format.fprintf ppf "*"
  | Cls c -> Format.fprintf ppf "%s" c
  | At_elem e -> Format.fprintf ppf "%s.*" e
  | Cls_at (e, c) -> Format.fprintf ppf "%s.%s" e c
  | Union ds ->
      Format.fprintf ppf "{%a}"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "|") pp_domain)
        ds

let pp_atom ppf = function
  | Occurred x -> Format.fprintf ppf "occurred(%s)" x
  | Enables (x, y) -> Format.fprintf ppf "%s |> %s" x y
  | Elem_lt (x, y) -> Format.fprintf ppf "%s =>el %s" x y
  | Temp_lt (x, y) -> Format.fprintf ppf "%s => %s" x y
  | Same_event (x, y) -> Format.fprintf ppf "%s = %s" x y
  | Same_element (x, y) -> Format.fprintf ppf "elem(%s) = elem(%s)" x y
  | In_class (x, d) -> Format.fprintf ppf "%s : %a" x pp_domain d
  | Cmp (c, t1, t2) -> Format.fprintf ppf "%a %a %a" pp_texp t1 pp_cmp c pp_texp t2
  | At_class (x, d) -> Format.fprintf ppf "%s at %a" x pp_domain d
  | New x -> Format.fprintf ppf "new(%s)" x
  | Potential x -> Format.fprintf ppf "potential(%s)" x
  | Same_thread (pi, x, y) -> Format.fprintf ppf "%s ~%s~ %s" x pi y
  | Distinct_thread (pi, x, y) -> Format.fprintf ppf "%s !~%s~ %s" x pi y
  | In_thread (pi, x) -> Format.fprintf ppf "%s in %s" x pi
  | Sem (name, xs, _) ->
      Format.fprintf ppf "%s(%a)" name
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") Format.pp_print_string)
        xs

let rec pp ppf = function
  | True -> Format.fprintf ppf "true"
  | False -> Format.fprintf ppf "false"
  | Atom a -> pp_atom ppf a
  | Not f -> Format.fprintf ppf "~(%a)" pp f
  | And fs ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ /\\ ") pp)
        fs
  | Or fs ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ \\/ ") pp)
        fs
  | Implies (a, b) -> Format.fprintf ppf "(%a ->@ %a)" pp a pp b
  | Iff (a, b) -> Format.fprintf ppf "(%a <->@ %a)" pp a pp b
  | Forall (x, d, f) -> Format.fprintf ppf "@[(ALL %s:%a)@ %a@]" x pp_domain d pp f
  | Exists (x, d, f) -> Format.fprintf ppf "@[(EX %s:%a)@ %a@]" x pp_domain d pp f
  | Exists_unique (x, d, f) ->
      Format.fprintf ppf "@[(EX! %s:%a)@ %a@]" x pp_domain d pp f
  | At_most_one (x, d, f) ->
      Format.fprintf ppf "@[(EX<=1 %s:%a)@ %a@]" x pp_domain d pp f
  | Henceforth f -> Format.fprintf ppf "[](%a)" pp f
  | Eventually f -> Format.fprintf ppf "<>(%a)" pp f

let to_string f = Format.asprintf "%a" pp f

(* Constructors *)

let ( &&& ) a b = And [ a; b ]
let ( ||| ) a b = Or [ a; b ]
let ( ==> ) a b = Implies (a, b)
let ( <=> ) a b = Iff (a, b)
let neg f = Not f
let conj fs = And fs
let disj fs = Or fs
let forall binders body = List.fold_right (fun (x, d) f -> Forall (x, d, f)) binders body
let exists binders body = List.fold_right (fun (x, d) f -> Exists (x, d, f)) binders body
let exists1 x d body = Exists_unique (x, d, body)
let at_most_one x d body = At_most_one (x, d, body)
let occurred x = Atom (Occurred x)
let enables x y = Atom (Enables (x, y))
let elem_lt x y = Atom (Elem_lt (x, y))
let temp_lt x y = Atom (Temp_lt (x, y))
let same x y = Atom (Same_event (x, y))
let same_element x y = Atom (Same_element (x, y))
let distinct x y = Not (Atom (Same_event (x, y)))
let in_class x d = Atom (In_class (x, d))
let at_cls x d = Atom (At_class (x, d))
let fresh x = Atom (New x)
let potential x = Atom (Potential x)
let same_thread pi x y = Atom (Same_thread (pi, x, y))
let distinct_thread pi x y = Atom (Distinct_thread (pi, x, y))
let in_thread pi x = Atom (In_thread (pi, x))
let param x p = Param (x, p)
let const_int n = Const (Gem_model.Value.Int n)
let const_str s = Const (Gem_model.Value.Str s)
let ( =. ) a b = Atom (Cmp (Eq, a, b))
let ( <. ) a b = Atom (Cmp (Lt, a, b))
let ( <=. ) a b = Atom (Cmp (Le, a, b))
let henceforth f = Henceforth f
let eventually f = Eventually f
let sem name xs fn = Atom (Sem (name, xs, fn))
