module Bitset = Gem_order.Bitset
module Poset = Gem_order.Poset
module Computation = Gem_model.Computation

type t = { comp : Computation.t; set : Bitset.t }

let computation h = h.comp
let members h = Bitset.copy h.set

let empty comp = { comp; set = Bitset.create (Computation.n_events comp) }

let full comp =
  let set = Bitset.create (Computation.n_events comp) in
  for i = 0 to Computation.n_events comp - 1 do
    Bitset.add set i
  done;
  { comp; set }

let of_set comp set =
  let poset = Computation.temporal_exn comp in
  if Poset.is_down_closed poset set then Some { comp; set = Bitset.copy set } else None

let down_closure comp set =
  let poset = Computation.temporal_exn comp in
  { comp; set = Poset.down_closure poset set }

let mem h e = Bitset.mem h.set e
let cardinal h = Bitset.cardinal h.set
let is_full h = cardinal h = Computation.n_events h.comp
let prefix a b = Bitset.subset a.set b.set
let equal a b = Bitset.equal a.set b.set

let potential h e =
  (not (mem h e))
  && Bitset.subset (Poset.down_set (Computation.temporal_exn h.comp) e) h.set

let add_step h step =
  let poset = Computation.temporal_exn h.comp in
  let fresh = List.for_all (fun e -> not (mem h e)) step in
  let antichain =
    List.for_all
      (fun a -> List.for_all (fun b -> a = b || Poset.concurrent poset a b) step)
      step
  in
  let ready = List.for_all (potential h) step in
  if step <> [] && fresh && antichain && ready then begin
    let set = Bitset.copy h.set in
    List.iter (Bitset.add set) step;
    Some { h with set }
  end
  else None

let frontier h =
  let n = Computation.n_events h.comp in
  let acc = ref [] in
  for e = n - 1 downto 0 do
    if potential h e then acc := e :: !acc
  done;
  !acc

let is_new h e =
  mem h e
  && not
       (Bitset.exists
          (fun e' -> Poset.lt (Computation.temporal_exn h.comp) e e')
          h.set)

let at h e1 is_e2 =
  mem h e1
  && not
       (List.exists
          (fun e2 -> mem h e2 && is_e2 e2)
          (Computation.enable_succs h.comp e1))

(* BFS over the prefix lattice with set-keyed dedup: adding independent
   events in either order yields the same down-set, so generation by ordered
   insertion alone would duplicate. *)
let all comp =
  let module H = Hashtbl.Make (struct
    type t = Bitset.t

    let equal = Bitset.equal
    let hash = Bitset.hash
  end) in
  let seen = H.create 64 in
  let queue = Queue.create () in
  let start = empty comp in
  H.add seen start.set ();
  Queue.add start queue;
  let out = ref [] in
  while not (Queue.is_empty queue) do
    let h = Queue.pop queue in
    out := h :: !out;
    List.iter
      (fun e ->
        match add_step h [ e ] with
        | Some h' -> if not (H.mem seen h'.set) then begin
            H.add seen h'.set ();
            Queue.add h' queue
          end
        | None -> ())
      (frontier h)
  done;
  List.rev !out

let count ?(cap = max_int) comp =
  let module H = Hashtbl.Make (struct
    type t = Bitset.t

    let equal = Bitset.equal
    let hash = Bitset.hash
  end) in
  let seen = H.create 64 in
  let queue = Queue.create () in
  let start = empty comp in
  H.add seen start.set ();
  Queue.add start queue;
  let n = ref 0 in
  while (not (Queue.is_empty queue)) && !n < cap do
    let h = Queue.pop queue in
    incr n;
    List.iter
      (fun e ->
        match add_step h [ e ] with
        | Some h' -> if not (H.mem seen h'.set) then begin
            H.add seen h'.set ();
            Queue.add h' queue
          end
        | None -> ())
      (frontier h)
  done;
  min !n cap

let pp ppf h =
  Format.fprintf ppf "@[<hov 2>history{%a}@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (fun ppf e -> Gem_model.Event.pp ppf (Computation.event h.comp e)))
    (Bitset.elements h.set)
