(** The GEM restriction language (paper §8).

    Restrictions are first-order formulae over the events of a computation,
    built from GEM predicates ([occurred], [@], [|>], [=>el], [=>]), data
    comparisons, the history-relative control predicates ([at], [new],
    [potential]), thread predicates, and the temporal operators [[]]
    (henceforth) and [<>] (eventually).

    {b Semantics.} Quantifiers range rigidly over the events of the whole
    computation, filtered by a {!domain}; atoms are evaluated relative to a
    history (a prefix), with relations restricted to events in that history
    — so [Enables (x, y)] is false until both ends have occurred, which is
    what makes [e1 at E2] ("e1 has not {e yet} enabled an E2") expressible.
    Temporal operators are evaluated over a valid history sequence, per §7.
    Immediate (temporal-operator-free) restrictions on the computation
    itself are evaluated on the full history. *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

(** Terms denoting data, usable in comparisons. *)
type texp =
  | Const of Gem_model.Value.t
  | Param of string * string  (** [Param (x, p)] is [x.p]. *)
  | Index of string  (** Occurrence index of the event bound to the variable. *)
  | Plus of texp * int  (** Integer offset, e.g. [Plus (Index "r", n)]. *)

(** Quantifier domains — eventclass descriptions. *)
type domain =
  | Any  (** All events of the computation. *)
  | Cls of string  (** All events of a class, wherever they occur. *)
  | At_elem of string  (** All events at an element. *)
  | Cls_at of string * string  (** [Cls_at (element, class)]. *)
  | Union of domain list

type sem_fn = Gem_model.Computation.t -> Gem_order.Bitset.t -> int list -> bool
(** Escape hatch for semantic predicates: receives the computation, the
    current history's member set, and the handles bound to the listed
    variables. *)

type atom =
  | Occurred of string  (** [occurred(x)]: x is in the current history. *)
  | Enables of string * string  (** [x |> y], both in history. *)
  | Elem_lt of string * string  (** [x =>el y], both in history. *)
  | Temp_lt of string * string  (** [x => y], both in history. *)
  | Same_event of string * string  (** [x = y]. *)
  | Same_element of string * string  (** x and y occur at the same element. *)
  | In_class of string * domain  (** The event bound to [x] matches the domain. *)
  | Cmp of cmp * texp * texp  (** Data comparison (history-independent). *)
  | At_class of string * domain
      (** [x at D]: x occurred and has not (yet) enabled any D-event (§8.2.4). *)
  | New of string  (** [new(x)]: x occurred, nothing observably follows it. *)
  | Potential of string
      (** [potential(x)]: x not occurred, all its temporal predecessors have. *)
  | Same_thread of string * string * string
      (** [Same_thread (pi, x, y)]: x and y carry the same instance of
          thread type pi. *)
  | Distinct_thread of string * string * string
      (** Both labelled with pi, different instances. *)
  | In_thread of string * string  (** [In_thread (pi, x)]: x carries a pi label. *)
  | Sem of string * string list * sem_fn
      (** Named semantic predicate over bound variables. *)

type t =
  | True
  | False
  | Atom of atom
  | Not of t
  | And of t list
  | Or of t list
  | Implies of t * t
  | Iff of t * t
  | Forall of string * domain * t
  | Exists of string * domain * t
  | Exists_unique of string * domain * t
  | At_most_one of string * domain * t
  | Henceforth of t  (** [[]p] over history sequences. *)
  | Eventually of t  (** [<>p]. *)

val is_immediate : t -> bool
(** No temporal operator anywhere. *)

val free_vars : t -> string list

val pp : Format.formatter -> t -> unit
(** Prints in the concrete syntax accepted by [Gem_syntax.Parser]
    (implication [->], iff [<->]; the temporal order atom is [=>], the
    element order [=>el], the enable relation [|>]); the round trip
    [parse (to_string f) = f] holds for [Sem]-free formulae. *)

val to_string : t -> string

(** {1 Concise constructors}

    A small DSL so specifications read close to the paper's notation. *)

val ( &&& ) : t -> t -> t

val ( ||| ) : t -> t -> t

val ( ==> ) : t -> t -> t

val ( <=> ) : t -> t -> t

val neg : t -> t

val conj : t list -> t

val disj : t list -> t

val forall : (string * domain) list -> t -> t
(** [forall ["x", Cls "A"; "y", Cls "B"] body]. *)

val exists : (string * domain) list -> t -> t

val exists1 : string -> domain -> t -> t

val at_most_one : string -> domain -> t -> t

val occurred : string -> t

val enables : string -> string -> t

val elem_lt : string -> string -> t

val temp_lt : string -> string -> t

val same : string -> string -> t

val same_element : string -> string -> t

val distinct : string -> string -> t

val in_class : string -> domain -> t

val at_cls : string -> domain -> t

val fresh : string -> t
(** [new(x)] — named [fresh] because [new] is unavailable. *)

val potential : string -> t

val same_thread : string -> string -> string -> t

val distinct_thread : string -> string -> string -> t

val in_thread : string -> string -> t

val param : string -> string -> texp

val const_int : int -> texp

val const_str : string -> texp

val ( =. ) : texp -> texp -> t

val ( <. ) : texp -> texp -> t

val ( <=. ) : texp -> texp -> t

val henceforth : t -> t

val eventually : t -> t

val sem : string -> string list -> sem_fn -> t
