module Linext = Gem_order.Linext
module Computation = Gem_model.Computation

type t = {
  comp : Computation.t;
  steps : int list list;
  histories : History.t array;  (* length = steps + 1 *)
}

let computation s = s.comp
let steps s = s.steps
let histories s = Array.to_list s.histories
let length s = Array.length s.histories

let nth_history s i =
  if i < 0 || i >= Array.length s.histories then invalid_arg "Vhs.nth_history";
  s.histories.(i)

let of_steps comp step_list =
  let rec build acc h = function
    | [] -> if History.is_full h then Some (List.rev acc) else None
    | step :: rest -> (
        match History.add_step h step with
        | Some h' -> build (h' :: acc) h' rest
        | None -> None)
  in
  let h0 = History.empty comp in
  match build [ h0 ] h0 step_list with
  | Some hist -> Some { comp; steps = step_list; histories = Array.of_list hist }
  | None -> None

let of_steps_trusted comp step_list =
  (* Steps produced by Linext on the temporal order are valid by
     construction; skip re-validation (it is O(n^2) per step). *)
  let n = Computation.n_events comp in
  let cur = Gem_order.Bitset.create n in
  let hist = ref [] in
  let snapshot () =
    match History.of_set comp cur with Some h -> hist := h :: !hist | None -> assert false
  in
  snapshot ();
  List.iter
    (fun step ->
      List.iter (Gem_order.Bitset.add cur) step;
      snapshot ())
    step_list;
  { comp; steps = step_list; histories = Array.of_list (List.rev !hist) }

let of_linearization comp ext = of_steps comp (Linext.singleton_steps ext)

let poset comp = Computation.temporal_exn comp

(* Enumeration entry points carry the [Run_enum] telemetry span and the
   materialized-history counter: every vhs handed to a temporal check is
   accounted here, whichever enumerator produced it. *)
let counted runs =
  Gem_obs.Telemetry.(add Vhs_histories) (List.length runs);
  runs

let all ?limit comp =
  Gem_obs.Telemetry.(time Run_enum) @@ fun () ->
  counted (List.map (of_steps_trusted comp) (Linext.step_sequences ?limit (poset comp)))

let all_linearizations ?limit comp =
  Gem_obs.Telemetry.(time Run_enum) @@ fun () ->
  counted
    (List.map
       (fun ext -> of_steps_trusted comp (Linext.singleton_steps ext))
       (Gem_order.Poset.linear_extensions ?limit (poset comp)))

let greedy comp = of_steps_trusted comp (Linext.greedy_levels (poset comp))

let sample rng comp =
  Gem_obs.Telemetry.(time Run_enum) @@ fun () ->
  Gem_obs.Telemetry.(hit Vhs_histories);
  of_steps_trusted comp (Linext.sample_step_sequence rng (poset comp))

let count ?cap comp =
  Gem_obs.Telemetry.(time Run_enum) @@ fun () ->
  Linext.count_step_sequences ?cap (poset comp)

let pp ppf s =
  Format.fprintf ppf "@[<hov 2>vhs:";
  List.iter
    (fun step ->
      Format.fprintf ppf "@ {%a}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
           (fun ppf e -> Gem_model.Event.pp_id ppf (Computation.event s.comp e).Gem_model.Event.id))
        step)
    s.steps;
  Format.fprintf ppf "@]"
