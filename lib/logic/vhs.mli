(** Valid history sequences (paper §7).

    A vhs is a monotonically increasing sequence of histories in which the
    events appearing for the first time in the same history are pairwise
    potentially concurrent. We work with {e complete runs}: sequences that
    start at the empty history and end at the full computation, represented
    by their step decomposition (each step the set of newly-occurring
    events). Complete runs are exactly the step sequences of the temporal
    order ({!Gem_order.Linext.step_sequences}); the paper's more liberal
    sequences (arbitrary starting history, repeated histories) add nothing
    when checking restrictions, since [] and <> quantify over tails.

    Sequences are exposed as history lists including the initial empty
    history, so a run over [k] steps has [k + 1] histories. *)

type t

val computation : t -> Gem_model.Computation.t

val steps : t -> int list list

val histories : t -> History.t list
(** [k + 1] histories for [k] steps; first is empty, last is full. *)

val length : t -> int
(** Number of histories. *)

val nth_history : t -> int -> History.t

val of_steps : Gem_model.Computation.t -> int list list -> t option
(** Validates the step conditions; [None] if violated or if the steps do
    not cover the whole computation. *)

val of_linearization : Gem_model.Computation.t -> int list -> t option
(** Singleton steps. *)

val all : ?limit:int -> Gem_model.Computation.t -> t list
(** Every complete run (up to [limit] if given). Exponential; bound your
    computations. *)

val all_linearizations : ?limit:int -> Gem_model.Computation.t -> t list
(** Only the maximal (one-event-per-step) runs — the linear extensions of
    the temporal order. A strictly smaller set than [all] on which
    immediate+[]/<> properties coincide for most practical restrictions;
    the E14 ablation quantifies the difference. *)

val greedy : Gem_model.Computation.t -> t
(** The unique maximally-parallel run. *)

val sample : Random.State.t -> Gem_model.Computation.t -> t
(** A random complete run. *)

val count : ?cap:int -> Gem_model.Computation.t -> int

val pp : Format.formatter -> t -> unit
(** Prints the step decomposition. Tail sequences (the paper's tail-closure
    property) need no representation of their own: temporal evaluation
    indexes into {!histories} directly. *)
