(** Communicating Sequential Processes (Hoare's CSP) as described by the
    paper (§8.2): processes communicating only by synchronous, named
    input/output commands, with guarded alternation and repetition.

    {b Event emission.} Each process is one GEM element (its actions are
    sequential). A communication [P!v || Q?x] emits four events, following
    the paper's CSP model:
    - [ReqOut(to, value)] at the sender, [ReqIn(from)] at the receiver;
    - [EndOut(value)] at the sender, enabled by the receiver's [ReqIn];
    - [EndIn(value)] at the receiver, enabled by the sender's [ReqOut].
    The cross enables encode the paper's simultaneity restriction
    ([inp.req |> out.end <=> out.req |> inp.end]); the received value
    equals the sent value (message-passing restriction, §5).

    {b Semantics of guards.} An alternative ([CIf]) or repetition ([CDo])
    branch is ready when its boolean guard holds and, if it carries an I/O
    guard, the named partner is ready to co-execute the matching
    communication. A repetition terminates when no boolean-only guard
    holds and every I/O-guarded partner has terminated (CSP's distributed
    termination convention). An alternative with no ready branch blocks;
    if it can never unblock the execution deadlocks — Dijkstra's abort is
    reported as a deadlock leaf. *)

type comm =
  | Send of { to_ : string; value : Expr.t }  (** [to_!value] *)
  | Recv of { from_ : string; bind : string }  (** [from_?bind] *)

type guarded = { guard : Expr.t; comm : comm option; body : stmt list }

and stmt =
  | CLocal of string * Expr.t
  | CIfb of Expr.t * stmt list * stmt list  (** Plain boolean conditional. *)
  | CWhile of Expr.t * stmt list  (** Plain boolean loop. *)
  | CComm of comm
  | CIf of guarded list  (** Alternative command. *)
  | CDo of guarded list  (** Repetitive command. *)
  | CMark of { klass : string; params : Expr.t list }

type process = {
  proc_name : string;
  locals : (string * Gem_model.Value.t) list;
  code : stmt list;
}

type program = process list

type outcome = {
  computations : Gem_model.Computation.t list;
  deadlocks : Gem_model.Computation.t list;
  explored : int;
  truncated : int;  (** Branches cut by [max_steps]. *)
  reduced : int;  (** Configurations pruned by partial-order reduction. *)
  exhausted : Gem_check.Budget.reason option;
      (** [Some _] iff exploration was cut short — the computation set is
          then a sound but incomplete sample. *)
}

val explore :
  ?reduction:Explore.reduction ->
  ?por:bool ->
  ?exact_keys:bool ->
  ?audit_keys:bool ->
  ?max_steps:int ->
  ?max_configs:int ->
  ?budget:Gem_check.Budget.t ->
  ?jobs:int ->
  ?batch:int ->
  ?resilience:Explore.resilience ->
  program ->
  outcome
(** Resource exhaustion never raises; it is reported in [exhausted].
    [por] (default {!Explore.por_default}) switches between the sleep-set
    + canonical-key reduced search and a plain exhaustive DFS.
    [exact_keys] (default {!Explore.exact_keys_default}) keys the reduced
    search on exact canonical strings instead of incremental
    fingerprints; [audit_keys] (default {!Explore.audit_keys_default})
    runs fingerprint keys with the exact key as a collision oracle. [jobs]
    (default {!Gem_check.Par.jobs_default}) spreads the walk over that
    many domains; the canonically ordered [computations]/[deadlocks] are
    identical for every job count and either key mode. *)

val run_one : ?seed:int -> program -> Gem_model.Computation.t

(** {1 Small-step interface}

    Exposed for the POR differential harness. *)

type config

val initial_config : program -> config

val config_moves : config -> (Explore.move * config) list
(** Every scheduler choice, labeled (acting process, branch/offer
    indices) and carrying its element footprint. *)

val config_key : program -> config -> string
(** Canonical state key: byte-equal for configurations reached by
    different interleavings of commuting moves. *)

val config_fp : program -> config -> Gem_order.Fingerprint.t
(** Incremental fingerprint of the configuration — equal whenever
    {!config_key} is byte-equal; distinct keys collide with negligible
    probability. *)

val config_terminated : config -> bool

val language_spec : ?name:string -> program -> Gem_spec.Spec.t
(** The GEM description of CSP applied to this program: one typed element
    per process and the CSP restrictions —
    - ["io-simultaneity"]: [ReqIn |> EndOut] at a pair of elements iff
      [ReqOut |> EndIn] between the same two elements;
    - ["io-matching"]: every [EndIn] is enabled by exactly one [ReqOut]
      and vice versa for [EndOut]/[ReqIn];
    - ["io-value"]: an enabling [ReqOut]'s value equals the [EndIn]'s;
    - ["io-addressing"]: communications connect the processes they name. *)

val element_of_process : string -> string
