module Value = Gem_model.Value
module F = Gem_logic.Formula
module Fp = Gem_order.Fingerprint

type stmt =
  | ALocal of string * Expr.t
  | AIf of Expr.t * stmt list * stmt list
  | AWhile of Expr.t * stmt list
  | AMark of { klass : string; params : Expr.t list }
  | ACall of { task : string; entry : string; args : Expr.t list; bind : string option }
  | AAccept of accept
  | ASelect of branch list

and accept = {
  acc_entry : string;
  acc_formals : string list;
  acc_body : stmt list;
  acc_result : Expr.t option;
}

and branch = { when_ : Expr.t; accept : accept }

type task = {
  task_name : string;
  locals : (string * Value.t) list;
  code : stmt list;
}

type program = task list

let element_of_task t = t
let main_element = "main"

(* ------------------------------------------------------------------ *)
(* Runtime                                                             *)
(* ------------------------------------------------------------------ *)

(* Control items: source statements plus the internal marker that closes a
   rendezvous on the acceptor's side; it carries what is needed to resume
   the caller, including the caller's parked continuation. *)
type item =
  | S of stmt
  | End_rv of {
      caller : string;
      bind : string option;
      entry : string;
      result : Expr.t option;
      caller_cont : item list;
    }

type pending = {
  q_caller : string;
  q_args : Value.t list;
  q_bind : string option;
  q_cont : item list;  (* caller's continuation *)
  q_call_event : int;
  q_enqueue_event : int;
}

type tstate =
  | Active of item list
  | Blocked_call
  | Blocked_accept of accept * item list
  | Blocked_select of branch list * item list
  | Tdone

type task_rt = { t_def : task; t_locals : Expr.store; t_state : tstate; t_last : int }

type config = {
  trace : Trace.t;
  tasks : (string * task_rt) list;
  queues : ((string * string) * pending list) list;  (* (callee, entry) -> FIFO *)
}

let task_rt cfg t = List.assoc t cfg.tasks

let set_task cfg name rt =
  { cfg with tasks = List.map (fun (n, r) -> if String.equal n name then (n, rt) else (n, r)) cfg.tasks }

let queue cfg callee entry =
  Option.value ~default:[] (List.assoc_opt (callee, entry) cfg.queues)

let set_queue cfg callee entry q =
  { cfg with queues = ((callee, entry), q) :: List.remove_assoc (callee, entry) cfg.queues }

let chain cfg ~task ~klass ?(params = []) () =
  let rt = task_rt cfg task in
  let h, trace =
    Trace.emit_after cfg.trace ~actor:task ~after:(Some rt.t_last)
      ~element:(element_of_task task) ~klass ~params ()
  in
  let cfg = { cfg with trace } in
  (h, set_task cfg task { rt with t_last = h })

let items_of stmts = List.map (fun s -> S s) stmts

(* Begin a rendezvous: acceptor [a] accepts [acc] for queued call [p]. *)
let begin_rendezvous cfg a (acc : accept) (p : pending) rest =
  let ab, cfg =
    chain cfg ~task:a ~klass:"AcceptBegin"
      ~params:
        [
          ("entry", Value.Str acc.acc_entry);
          ("caller", Value.Str p.q_caller);
          ("args", Value.List p.q_args);
        ]
      ()
  in
  let cfg = { cfg with trace = Trace.enable cfg.trace p.q_call_event ab } in
  (* The accept consumes the queue entry: a join of the server's readiness
     and the enqueued call. *)
  let cfg = { cfg with trace = Trace.enable cfg.trace p.q_enqueue_event ab } in
  let rt = task_rt cfg a in
  if List.length acc.acc_formals <> List.length p.q_args then
    raise (Expr.Eval_error ("arity mismatch accepting " ^ acc.acc_entry));
  let locals =
    List.fold_left2
      (fun st f v -> Expr.update st f v)
      rt.t_locals acc.acc_formals p.q_args
  in
  let cont =
    items_of acc.acc_body
    @ (End_rv
         {
           caller = p.q_caller;
           bind = p.q_bind;
           entry = acc.acc_entry;
           result = acc.acc_result;
           caller_cont = p.q_cont;
         }
      :: rest)
  in
  set_task cfg a { rt with t_locals = locals; t_state = Active cont }

(* Run one task until (and including) its next global action. *)
let step_task cfg tname =
  let rec go cfg items =
    let rt = task_rt cfg tname in
    match items with
    | [] -> set_task cfg tname { rt with t_state = Tdone }
    | S (ALocal (x, e)) :: rest ->
        let v = Expr.eval rt.t_locals e in
        let cfg = set_task cfg tname { rt with t_locals = Expr.update rt.t_locals x v } in
        go cfg rest
    | S (AIf (g, a, b)) :: rest ->
        go cfg (items_of (if Expr.eval_bool rt.t_locals g then a else b) @ rest)
    | S (AWhile (g, body)) :: rest ->
        if Expr.eval_bool rt.t_locals g then go cfg (items_of body @ (S (AWhile (g, body)) :: rest))
        else go cfg rest
    | S (AMark { klass; params }) :: rest ->
        let vals = List.mapi (fun i e -> ("p" ^ string_of_int i, Expr.eval rt.t_locals e)) params in
        let _, cfg = chain cfg ~task:tname ~klass ~params:vals () in
        go cfg rest
    | S (ACall { task; entry; args; bind }) :: rest ->
        let argvals = List.map (Expr.eval rt.t_locals) args in
        let call, cfg =
          chain cfg ~task:tname ~klass:"Call"
            ~params:
              [
                ("task", Value.Str task);
                ("entry", Value.Str entry);
                ("args", Value.List argvals);
              ]
            ()
        in
        (* Queue insertion is a callee-side state change (the basis of
           ADA's 'Count): an Enqueue event at the callee's element, enabled
           by the Call, serialized with the callee's own events. *)
        let enq, trace =
          Trace.emit_after cfg.trace ~actor:tname ~after:(Some call)
            ~element:(element_of_task task) ~klass:"Enqueue"
            ~params:[ ("entry", Value.Str entry); ("caller", Value.Str tname) ]
            ()
        in
        let cfg = { cfg with trace } in
        let cfg = set_task cfg tname { (task_rt cfg tname) with t_state = Blocked_call } in
        set_queue cfg task entry
          (queue cfg task entry
           @ [
               {
                 q_caller = tname;
                 q_args = argvals;
                 q_bind = bind;
                 q_cont = rest;
                 q_call_event = call;
                 q_enqueue_event = enq;
               };
             ])
    | S (AAccept acc) :: rest -> (
        match queue cfg tname acc.acc_entry with
        | p :: q ->
            let cfg = set_queue cfg tname acc.acc_entry q in
            begin_rendezvous cfg tname acc p rest
        | [] -> set_task cfg tname { rt with t_state = Blocked_accept (acc, rest) })
    | S (ASelect branches) :: rest ->
        set_task cfg tname { rt with t_state = Blocked_select (branches, rest) }
    | End_rv { caller; bind; entry; result; caller_cont } :: rest ->
        let v =
          match result with Some e -> Expr.eval rt.t_locals e | None -> Value.Unit
        in
        let ae, cfg =
          chain cfg ~task:tname ~klass:"AcceptEnd"
            ~params:[ ("entry", Value.Str entry); ("value", v) ]
            ()
        in
        (* Resume the caller: its Return is enabled by the AcceptEnd. *)
        let crt = task_rt cfg caller in
        let ret, trace =
          Trace.emit_after cfg.trace ~actor:caller ~after:(Some ae)
            ~element:(element_of_task caller) ~klass:"Return" ~params:[ ("value", v) ] ()
        in
        let cfg = { cfg with trace } in
        let locals =
          match bind with Some x -> Expr.update crt.t_locals x v | None -> crt.t_locals
        in
        let cfg =
          set_task cfg caller
            { crt with t_locals = locals; t_last = ret; t_state = Active caller_cont }
        in
        set_task cfg tname { (task_rt cfg tname) with t_state = Active rest }
  in
  match (task_rt cfg tname).t_state with
  | Active items -> Some (go cfg items)
  | Blocked_call | Blocked_accept _ | Blocked_select _ | Tdone -> None

(* ------------------------------------------------------------------ *)
(* Moves and exploration                                               *)
(* ------------------------------------------------------------------ *)

(* Element footprint of the step from [before] to [after]: elements of
   the emitted events, the element of every task whose runtime changed
   ([set_task] keeps unchanged runtimes physically identical), and the
   callee's element for every entry queue that changed — queues are
   callee-side state (select guards read only the selecting task's own
   queues via ['Count]), so the callee element is their representative. *)
let footprint before after =
  let touches = Trace.touched_elements ~before:before.trace after.trace in
  let touches =
    List.fold_left2
      (fun acc (n, r) (_, r') -> if r == r' then acc else element_of_task n :: acc)
      touches before.tasks after.tasks
  in
  let touches =
    if before.queues == after.queues then touches
    else
      List.fold_left
        (fun acc ((callee, entry), q) ->
          if queue before callee entry = q then acc
          else element_of_task callee :: acc)
        (List.fold_left
           (fun acc ((callee, entry), q) ->
             if queue after callee entry = q then acc
             else element_of_task callee :: acc)
           touches before.queues)
        after.queues
  in
  List.sort_uniq String.compare touches

let moves_fp cfg =
  let ms = ref [] in
  let push label cfg' =
    ms := ({ Explore.label; touches = footprint cfg cfg' }, cfg') :: !ms
  in
  List.iter
    (fun (tname, rt) ->
      match rt.t_state with
      | Active _ -> (
          match step_task cfg tname with Some cfg' -> push tname cfg' | None -> ())
      | Blocked_accept (acc, rest) -> (
          match queue cfg tname acc.acc_entry with
          | p :: q ->
              let cfg' = set_queue cfg tname acc.acc_entry q in
              push (tname ^ "?" ^ acc.acc_entry) (begin_rendezvous cfg' tname acc p rest)
          | [] -> ())
      | Blocked_select (branches, rest) ->
          let queue_len entry = List.length (queue cfg tname entry) in
          let queue_test entry = queue cfg tname entry <> [] in
          List.iteri
            (fun i b ->
              if Expr.eval_bool ~queue_test ~queue_len rt.t_locals b.when_ then
                match queue cfg tname b.accept.acc_entry with
                | p :: q ->
                    let cfg' = set_queue cfg tname b.accept.acc_entry q in
                    push
                      (Printf.sprintf "%s?%s#%d" tname b.accept.acc_entry i)
                      (begin_rendezvous cfg' tname b.accept p rest)
                | [] -> ())
            branches
      | Blocked_call | Tdone -> ())
    cfg.tasks;
  List.rev !ms

let moves cfg = List.map snd (moves_fp cfg)

let terminated cfg =
  List.for_all
    (fun (_, rt) ->
      match rt.t_state with
      | Tdone -> true
      | Active _ | Blocked_call | Blocked_accept _ | Blocked_select _ -> false)
    cfg.tasks

let initial (program : program) =
  let trace = Trace.empty in
  let start, trace = Trace.emit trace ~element:main_element ~klass:"Start" () in
  let trace, tasks =
    List.fold_left
      (fun (trace, tasks) t ->
        let h, trace =
          Trace.emit_after trace ~actor:t.task_name ~after:(Some start)
            ~element:(element_of_task t.task_name) ~klass:"Start" ()
        in
        ( trace,
          (t.task_name,
           { t_def = t; t_locals = t.locals; t_state = Active (items_of t.code); t_last = h })
          :: tasks ))
      (trace, []) program
  in
  { trace; tasks = List.rev tasks; queues = [] }

type outcome = {
  computations : Gem_model.Computation.t list;
  deadlocks : Gem_model.Computation.t list;
  explored : int;
  truncated : int;
  reduced : int;
  exhausted : Gem_check.Budget.reason option;
}

let all_elements (program : program) =
  main_element :: List.map (fun t -> element_of_task t.task_name) program

let seal program cfg = Trace.to_computation ~extra_elements:(all_elements program) cfg.trace

(* Canonical state key for partial-order reduction (see Explore.run).
   Local stores are sorted ([Expr.update] prepends), queues are listed in
   key order with empty queues elided, and marshalling disables sharing —
   so interleavings of commuting moves that converge on structurally
   equal states yield byte-equal keys. *)
let sorted_store (s : Expr.store) =
  List.sort (fun (a, _) (b, _) -> String.compare a b) s

let canon x = Marshal.to_string x [ Marshal.No_sharing ]

let state_key program cfg =
  let span = Gem_obs.Telemetry.(span_begin Canon_key) in
  let comp = seal program cfg in
  let buf = Buffer.create 1024 in
  let id h =
    Explore.add_id buf (Gem_model.Computation.event comp h).Gem_model.Event.id
  in
  Explore.fingerprint_into buf comp;
  List.iter
    (fun (n, rt) ->
      Buffer.add_string buf n;
      id rt.t_last;
      (match rt.t_state with
      | Active items ->
          Buffer.add_char buf 'A';
          Buffer.add_string buf (canon items)
      | Blocked_call -> Buffer.add_char buf 'B'
      | Blocked_accept (acc, rest) ->
          Buffer.add_char buf 'W';
          Buffer.add_string buf (canon (acc, rest))
      | Blocked_select (branches, rest) ->
          Buffer.add_char buf 'S';
          Buffer.add_string buf (canon (branches, rest))
      | Tdone -> Buffer.add_char buf 'D');
      Buffer.add_string buf (canon (sorted_store rt.t_locals)))
    cfg.tasks;
  List.iter
    (fun (qkey, pendings) ->
      if pendings <> [] then begin
        Buffer.add_string buf (canon qkey);
        List.iter
          (fun p ->
            Buffer.add_string buf
              (canon (p.q_caller, p.q_args, p.q_bind, p.q_cont));
            id p.q_call_event;
            id p.q_enqueue_event)
          pendings
      end)
    (List.sort (fun (a, _) (b, _) -> compare a b) cfg.queues);
  let key = Buffer.contents buf in
  Gem_obs.Telemetry.(span_end Canon_key) span;
  key

(* Incremental fingerprint mirroring [state_key] — see Monitor.fp_key for
   the construction rationale. Local stores and the queue association
   list are folded commutatively (their insertion orders vary across
   interleavings; variable names and (callee, entry) keys are unique, and
   empty queues contribute nothing — matching the exact key's sorted
   rendering with empty queues elided); each queue's pendings are FIFO
   and hashed in order. Event handles are replaced by their stable
   identity fingerprints. *)
let store_fp s =
  List.fold_left
    (fun acc (x, v) -> Fp.cadd acc (Fp.combine (Fp.of_string x) (Fp.of_struct v)))
    (Fp.of_int 0x57) s

let fp_key cfg =
  let span = Gem_obs.Telemetry.(span_begin Canon_key) in
  let idf = Trace.id_fp cfg.trace in
  let acc = ref (Trace.fp cfg.trace) in
  let mix x = acc := Fp.combine !acc x in
  List.iter
    (fun (n, rt) ->
      mix (Fp.of_string n);
      mix (idf rt.t_last);
      (match rt.t_state with
      | Active items -> mix (Fp.combine (Fp.of_int 1) (Fp.of_struct items))
      | Blocked_call -> mix (Fp.of_int 2)
      | Blocked_accept (a, rest) ->
          mix (Fp.combine (Fp.of_int 3) (Fp.of_struct (a, rest)))
      | Blocked_select (branches, rest) ->
          mix (Fp.combine (Fp.of_int 4) (Fp.of_struct (branches, rest)))
      | Tdone -> mix (Fp.of_int 5));
      mix (store_fp rt.t_locals))
    cfg.tasks;
  mix
    (List.fold_left
       (fun a (qkey, pendings) ->
         if pendings = [] then a
         else
           Fp.cadd a
             (List.fold_left
                (fun q p ->
                  Fp.combine q
                    (Fp.combine
                       (Fp.of_struct (p.q_caller, p.q_args, p.q_bind, p.q_cont))
                       (Fp.combine (idf p.q_call_event) (idf p.q_enqueue_event))))
                (Fp.of_struct qkey) pendings))
       (Fp.of_int 0x9e) cfg.queues);
  Gem_obs.Telemetry.(span_end Canon_key) span;
  !acc

let explore ?reduction ?por ?exact_keys ?audit_keys ?max_steps ?max_configs
    ?budget ?jobs ?batch ?(resilience = Explore.no_resilience) program =
  let reduction = Explore.resolve_reduction ?reduction ?por () in
  let exact =
    match exact_keys with Some b -> b | None -> Explore.exact_keys_default ()
  in
  let auditing =
    match audit_keys with Some b -> b | None -> Explore.audit_keys_default ()
  in
  let jobs =
    match jobs with Some j -> j | None -> Gem_check.Par.jobs_default ()
  in
  let result =
    let key c =
      if exact then Explore.Exact (state_key program c)
      else Explore.Fp (fp_key c)
    in
    let audit = if auditing && not exact then Some (state_key program) else None in
    if reduction <> Explore.No_reduction then
      Explore.run ?max_steps ?max_configs ?budget ~key ?audit ~footprint:moves_fp
        ~reduction ~jobs ?batch ~resilience ~moves ~terminated (initial program)
    else
      (* Keyless plain walk, except bitstate mode needs a state key to
         memoize on (see {!Monitor.explore}). *)
      let key = if resilience.Explore.bitstate = None then None else Some key in
      let audit = if key = None then None else audit in
      Explore.run ?max_steps ?max_configs ?budget ?key ?audit ~jobs ?batch
        ~resilience
        ~moves ~terminated (initial program)
  in
  {
    computations = Explore.dedup_computations (seal program) result.completed;
    deadlocks = Explore.dedup_computations (seal program) result.deadlocked;
    explored = result.explored;
    truncated = result.truncated;
    reduced = result.reduced;
    exhausted = result.exhausted;
  }

(* Small-step interface for the POR differential harness. *)
let initial_config program = initial program
let config_moves cfg = moves_fp cfg
let config_key = state_key
let config_fp _program cfg = fp_key cfg
let config_terminated = terminated

let run_one ?(seed = 42) program =
  let rng = Random.State.make [| seed |] in
  let rec loop cfg =
    match moves cfg with
    | [] -> cfg
    | ms -> loop (List.nth ms (Random.State.int rng (List.length ms)))
  in
  seal program (loop (initial program))

(* ------------------------------------------------------------------ *)
(* GEM description of ADA tasking                                      *)
(* ------------------------------------------------------------------ *)

let rec marker_decls acc = function
  | [] -> acc
  | AMark { klass; params } :: rest ->
      let decl =
        {
          Gem_spec.Etype.klass;
          schema = List.mapi (fun i _ -> ("p" ^ string_of_int i, Gem_spec.Etype.P_any)) params;
        }
      in
      let acc =
        if List.exists (fun (d : Gem_spec.Etype.event_decl) -> String.equal d.klass klass) acc
        then acc
        else decl :: acc
      in
      marker_decls acc rest
  | AIf (_, a, b) :: rest -> marker_decls (marker_decls (marker_decls acc a) b) rest
  | AWhile (_, a) :: rest -> marker_decls (marker_decls acc a) rest
  | AAccept a :: rest -> marker_decls (marker_decls acc a.acc_body) rest
  | ASelect bs :: rest ->
      marker_decls (List.fold_left (fun acc b -> marker_decls acc b.accept.acc_body) acc bs) rest
  | (ALocal _ | ACall _) :: rest -> marker_decls acc rest

let task_etype (t : task) =
  Gem_spec.Etype.make ("AdaTask:" ^ t.task_name)
    ~events:
      ([
         { Gem_spec.Etype.klass = "Start"; schema = [] };
         {
           klass = "Call";
           schema =
             [
               ("task", Gem_spec.Etype.P_str);
               ("entry", Gem_spec.Etype.P_str);
               ("args", Gem_spec.Etype.P_any);
             ];
         };
         { klass = "Return"; schema = [ ("value", Gem_spec.Etype.P_any) ] };
         {
           klass = "AcceptBegin";
           schema =
             [
               ("entry", Gem_spec.Etype.P_str);
               ("caller", Gem_spec.Etype.P_str);
               ("args", Gem_spec.Etype.P_any);
             ];
         };
         {
           klass = "Enqueue";
           schema = [ ("entry", Gem_spec.Etype.P_str); ("caller", Gem_spec.Etype.P_str) ];
         };
         {
           klass = "AcceptEnd";
           schema = [ ("entry", Gem_spec.Etype.P_str); ("value", Gem_spec.Etype.P_any) ];
         };
       ]
       @ List.rev (marker_decls [] t.code))
    ()

let main_etype =
  Gem_spec.Etype.make "Main" ~events:[ { Gem_spec.Etype.klass = "Start"; schema = [] } ] ()

let rendezvous_matching =
  F.conj
    [
      Gem_spec.Abbrev.prerequisite (F.Cls "Call") (F.Cls "AcceptBegin");
      Gem_spec.Abbrev.prerequisite (F.Cls "AcceptEnd") (F.Cls "Return");
    ]

let rendezvous_entry =
  let open F in
  forall
    [ ("c", Cls "Call"); ("ab", Cls "AcceptBegin") ]
    (enables "c" "ab"
     ==> ((param "c" "entry" =. param "ab" "entry")
          &&& sem "addressed-task" [ "c"; "ab" ]
                (fun comp _hist handles ->
                  match handles with
                  | [ c; ab ] ->
                      let e_c = Gem_model.Computation.event comp c in
                      let e_ab = Gem_model.Computation.event comp ab in
                      Value.equal
                        (Gem_model.Event.param e_c "task")
                        (Value.Str e_ab.Gem_model.Event.id.element)
                  | _ -> false)))

(* While a task is engaged in a rendezvous it is suspended: nothing happens
   at the caller's element between a Call and the Return that answers it.
   The Return answering a Call is the first Return element-after it. *)
let caller_suspended =
  let open F in
  forall
    [ ("c", Cls "Call"); ("r", Cls "Return"); ("x", Any) ]
    (same_element "c" "r" &&& same_element "c" "x" &&& elem_lt "c" "x" &&& elem_lt "x" "r"
     ==> exists
           [ ("r'", Cls "Return") ]
           (same_element "c" "r'" &&& elem_lt "c" "r'" &&& elem_lt "r'" "r"))

let language_spec ?name (program : program) =
  let spec_name = Option.value ~default:"ada-program" name in
  let elements =
    (main_element, main_etype)
    :: List.map (fun t -> (element_of_task t.task_name, task_etype t)) program
  in
  Gem_spec.Spec.make spec_name ~elements
    ~restrictions:
      [
        ("rendezvous-matching", rendezvous_matching);
        ("rendezvous-entry", rendezvous_entry);
        ("caller-suspended", caller_suspended);
      ]
    ()
