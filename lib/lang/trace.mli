(** Persistent (purely functional) event-trace builder.

    Language interpreters thread a trace through their configurations;
    because it is persistent, the scheduler can branch without copying.
    Handles issued by {!emit} are stable across branches that share a
    prefix. [to_computation] seals a branch's trace into a
    {!Gem_model.Computation.t}. *)

type t

val empty : t

val emit :
  t ->
  ?actor:string ->
  element:string ->
  klass:string ->
  ?params:(string * Gem_model.Value.t) list ->
  unit ->
  int * t
(** New event at the element (next occurrence index there); returns its
    handle. *)

val enable : t -> int -> int -> t
(** Raises [Invalid_argument] on a self-enable or unknown handle. *)

val emit_after :
  t ->
  ?actor:string ->
  after:int option ->
  element:string ->
  klass:string ->
  ?params:(string * Gem_model.Value.t) list ->
  unit ->
  int * t
(** [emit], plus an enable edge from [after] when given — the common
    "sequential control passes" shape. *)

val n_events : t -> int

val fp : t -> Gem_order.Fingerprint.t
(** Running history fingerprint: a commutative (emission-order
    independent) hash of the event multiset — identity, class, params;
    actors/threads excluded, mirroring [Explore.fingerprint] — and the
    enable-edge multiset over event identities. Maintained incrementally
    by {!emit}/{!enable}, so reading it is O(1); two traces sealing to
    the same canonical computation have equal fingerprints, and distinct
    computations collide with negligible probability. *)

val id_fp : t -> int -> Gem_order.Fingerprint.t
(** Fingerprint of a handle's stable event identity (element +
    occurrence index) — what interpreters hash instead of the raw handle,
    which is an emission-order-dependent global index. Raises [Not_found]
    on an unknown handle. *)

val touched_elements : before:t -> t -> string list
(** Elements that gained at least one event between [before] and the
    (extended) trace — the event-footprint of the step that produced it.
    Only meaningful when the second trace extends [before]. *)

val to_computation :
  ?extra_elements:string list ->
  ?groups:Gem_model.Group.t list ->
  t ->
  Gem_model.Computation.t
(** Elements are those events occurred at (in first-occurrence order) plus
    [extra_elements] (declared even if eventless). *)
