(** ADA tasking: tasks communicating by rendezvous (entry call / accept /
    select), the third language primitive the paper describes.

    {b Event emission.} One GEM element per task:
    - [Call(entry, args)] at the caller, which then blocks;
    - [AcceptBegin(entry, args)] at the acceptor, enabled by the [Call] —
      the rendezvous;
    - [AcceptEnd(entry, value)] at the acceptor when the accept body
      finishes;
    - [Return(value)] at the caller, enabled by the [AcceptEnd] — the
      caller resumes.

    Entry queues are FIFO per (task, entry). A [Select] chooses among its
    open (guard-true) branches with a queued caller; the choice is a
    scheduler branch, so exploration covers every selection order. Accept
    bodies execute as ordinary task code and may themselves call or
    accept (nested rendezvous). *)

type stmt =
  | ALocal of string * Expr.t
  | AIf of Expr.t * stmt list * stmt list
  | AWhile of Expr.t * stmt list
  | AMark of { klass : string; params : Expr.t list }
  | ACall of { task : string; entry : string; args : Expr.t list; bind : string option }
  | AAccept of accept
  | ASelect of branch list

and accept = {
  acc_entry : string;
  acc_formals : string list;
  acc_body : stmt list;
  acc_result : Expr.t option;
      (** Evaluated (over the acceptor's locals) when the body ends; the
          caller's bound result. *)
}

and branch = { when_ : Expr.t; accept : accept }

type task = {
  task_name : string;
  locals : (string * Gem_model.Value.t) list;
  code : stmt list;
}

type program = task list

type outcome = {
  computations : Gem_model.Computation.t list;
  deadlocks : Gem_model.Computation.t list;
  explored : int;
  truncated : int;  (** Branches cut by [max_steps]. *)
  reduced : int;  (** Configurations pruned by partial-order reduction. *)
  exhausted : Gem_check.Budget.reason option;
      (** [Some _] iff exploration was cut short — the computation set is
          then a sound but incomplete sample. *)
}

val explore :
  ?reduction:Explore.reduction ->
  ?por:bool ->
  ?exact_keys:bool ->
  ?audit_keys:bool ->
  ?max_steps:int ->
  ?max_configs:int ->
  ?budget:Gem_check.Budget.t ->
  ?jobs:int ->
  ?batch:int ->
  ?resilience:Explore.resilience ->
  program ->
  outcome
(** Resource exhaustion never raises; it is reported in [exhausted].
    [por] (default {!Explore.por_default}) switches between the sleep-set
    + canonical-key reduced search and a plain exhaustive DFS.
    [exact_keys] (default {!Explore.exact_keys_default}) keys the reduced
    search on exact canonical strings instead of incremental
    fingerprints; [audit_keys] (default {!Explore.audit_keys_default})
    runs fingerprint keys with the exact key as a collision oracle. [jobs]
    (default {!Gem_check.Par.jobs_default}) spreads the walk over that
    many domains; the canonically ordered [computations]/[deadlocks] are
    identical for every job count and either key mode. *)

val run_one : ?seed:int -> program -> Gem_model.Computation.t

(** {1 Small-step interface}

    Exposed for the POR differential harness. *)

type config

val initial_config : program -> config

val config_moves : config -> (Explore.move * config) list
(** Every scheduler choice, labeled (acting task, entry, branch index)
    and carrying its element footprint. *)

val config_key : program -> config -> string
(** Canonical state key: byte-equal for configurations reached by
    different interleavings of commuting moves. *)

val config_fp : program -> config -> Gem_order.Fingerprint.t
(** Incremental fingerprint of the configuration — equal whenever
    {!config_key} is byte-equal; distinct keys collide with negligible
    probability. *)

val config_terminated : config -> bool

val language_spec : ?name:string -> program -> Gem_spec.Spec.t
(** The GEM description of ADA tasking applied to this program:
    - ["rendezvous-matching"]: every [AcceptBegin] is enabled by exactly
      one [Call] and vice-versa at most once; every [Return] by exactly
      one [AcceptEnd];
    - ["rendezvous-entry"]: an enabling [Call] names the entry its
      [AcceptBegin] accepts, and is addressed to the acceptor's task;
    - ["caller-suspended"]: no event occurs at the caller's element between
      a [Call] and the [Return] it leads to. *)

val element_of_task : string -> string
