(** Generic exhaustive scheduler exploration.

    Language interpreters expose their operational semantics as a [moves]
    function (all configurations reachable in one scheduler choice); this
    module walks the choice tree depth-first, within bounds, and classifies
    the leaves. Configurations carry their own traces, so a completed leaf
    can be sealed into a computation by the caller.

    Exploration never raises on resource exhaustion: exceeding
    [max_configs], a budget deadline, or a memory watermark stops the walk
    and is reported as structured truncation provenance in the result, so
    callers can degrade to an [Inconclusive] verdict instead of crashing
    or silently under-reporting. *)

type move = { label : string; touches : string list }
(** A scheduler choice as the independence oracle sees it: [label] names
    the choice stably across configurations (e.g. the acting process, or
    process plus branch index), and [touches] lists every element the move
    reads or writes — the elements of the events it emits plus a
    representative element for each runtime component it changes or whose
    state its enabledness depends on. [touches] {b must be sorted
    (ascending [String.compare]) and duplicate-free} — the interpreters
    build it with [List.sort_uniq] — so {!independent} can intersect
    footprints in one linear merge walk. Two moves with disjoint
    [touches] commute and can neither enable nor disable one another. *)

val independent : move -> move -> bool
(** Element-footprint disjointness — the independence relation used by the
    sleep-set search. O(|touches|) over the pre-sorted footprints; each
    call is counted under the [Footprint_checks] telemetry counter. *)

(** {1 Search keys}

    The memoizing searches key their seen tables on one of two key
    spaces: [Fp], a 126-bit incremental state fingerprint (the default —
    O(1) to extend per interpreter step, collisions possible but
    negligibly likely and detectable), or [Exact], the exact
    marshal-string canonical key (the [--exact-keys]/[GEM_EXACT_KEYS]
    fallback, byte-equal iff the states are structurally equal). Verdict
    ordering and deduplication always use exact computation fingerprints
    ({!dedup_computations}), so the key-space choice can never change a
    rendered verdict — only, on a fingerprint collision, silently prune a
    distinct state, which the [audit] oracle detects. *)

type skey = Fp of Gem_order.Fingerprint.t | Exact of string

val skey_equal : skey -> skey -> bool
val skey_compare : skey -> skey -> int
val skey_hash : skey -> int

val exact_keys_default : unit -> bool
(** [true] iff the [GEM_EXACT_KEYS] environment variable is [1], [true]
    or [yes]: interpreters then key exploration on exact canonical
    strings instead of fingerprints when the caller passes no explicit
    argument. *)

val audit_keys_default : unit -> bool
(** Same reading of [GEM_AUDIT_KEYS]: run fingerprint-keyed exploration
    with the exact key recorded at first insert and compared on every
    hit, counting mismatches under [Fingerprint_collisions]. *)

type 'c result = {
  completed : 'c list;  (** Leaves with no moves that satisfy [terminated]. *)
  deadlocked : 'c list;  (** Leaves with no moves that do not. *)
  truncated : int;  (** Branches cut by [max_steps]. *)
  explored : int;  (** Configurations visited. *)
  reduced : int;
      (** Configurations pruned as redundant — already-seen keys, and
          successors skipped by the sleep-set rule because an equivalent
          interleaving was already explored. *)
  exhausted : Gem_check.Budget.reason option;
      (** [Some _] iff the walk stopped early — the completed/deadlocked
          sets are then a sound but incomplete sample. [Config_budget]
          covers both the [max_configs] argument and a budget's own
          configuration counter. *)
}

val por_default : unit -> bool
(** Whether partial-order reduction should be on by default: [true] unless
    the [GEM_NO_POR] environment variable is set to [1], [true] or [yes].
    Interpreters consult this when the caller passes no explicit [~por]
    argument, so one environment switch flips every test and tool. *)

(** {1 Reduction engines}

    Three ways to walk the scheduler tree, ordered by how much of it
    they visit: [No_reduction] (plain memoized DFS, every interleaving),
    [Sleep_sets] (PR 2: prune arrivals whose move slept — the default),
    and [Source_sets] (source-DPOR: schedule a sibling only when a
    detected race demands it — never more states than sleep sets on the
    shipped workloads, asymptotically fewer on rendezvous families).
    Every engine feeds the same {!dedup_computations} canonicalization,
    so rendered verdicts are byte-identical across the three. *)

type reduction = No_reduction | Sleep_sets | Source_sets

val reduction_name : reduction -> string
(** ["none"], ["sleep"] or ["source"] — the CLI / wire spellings. *)

val reduction_of_string : string -> reduction option
(** Inverse of {!reduction_name}; [None] on any other string. *)

val reduction_default : unit -> reduction
(** The engine used when the caller passes neither [~reduction] nor
    [~por]: a valid [GEM_REDUCTION] value wins, else [GEM_NO_POR] (via
    {!por_default}) selects [No_reduction]/[Sleep_sets]. *)

val resolve_reduction :
  ?reduction:reduction -> ?por:bool -> unit -> reduction
(** One resolver shared by the interpreters, the CLI and the daemon so
    every layer agrees on precedence: an explicit [reduction] wins, then
    an explicit [por] ([true] = [Sleep_sets], [false] = [No_reduction],
    the pre-PR-10 switch), then {!reduction_default}. *)

(** {1 Resilience}

    The degradation ladder: when a resource wall would otherwise kill
    the run (seen set outgrowing RAM, frontier outgrowing RAM, the
    process itself being killed), exploration degrades to a sound
    partial result instead — Inconclusive with a machine-readable
    reason, never a wrong Verified/Falsified. *)

type resilience = {
  bitstate : Gem_check.Bitstate.t option;
      (** Replace the exact seen table with a bounded fingerprint-only
          one. Requires a [key] (ignored without one); the final verdict
          is downgraded to Inconclusive
          ({!Gem_check.Budget.reason}[.Bitstate_collision_risk]) because
          collisions can silently prune unseen states. Under POR the
          bitstate key covers the (state, sleep set) pair, a strict
          refinement of the subset rule — more exploration, never an
          unsound prune. *)
  spool : Gem_check.Spool.policy option;
      (** Page the frontier to disk under a heap watermark. Forces the
          sequential resilient engine. I/O failure degrades to
          [Spill_io_error]. *)
  checkpoint : Gem_check.Checkpoint.ctl option;
      (** Periodically snapshot the complete walk state. Forces the
          sequential resilient engine. *)
  resume : string option;
      (** Start from this checkpoint file instead of the initial
          configuration; the resumed run finishes with a verdict
          byte-identical to an uninterrupted one. Raises
          {!Resume_error} on a missing/corrupt file or a stamp
          mismatch. *)
  stamp : string;
      (** Run identity written into (and checked against) checkpoints —
          callers encode the command, workload parameters and engine
          configuration. *)
  degrade_crashes : bool;
      (** Parallel runs: record an exception escaping a worker domain
          as a first-wins [Worker_crashed] Inconclusive instead of
          re-raising after join (the default, which preserves the
          historical contract). *)
}

val no_resilience : resilience
(** All off — [run] behaves exactly as before the resilience layer. *)

exception Resume_error of string

val run :
  ?max_steps:int ->
  ?max_configs:int ->
  ?budget:Gem_check.Budget.t ->
  ?key:('c -> skey) ->
  ?audit:('c -> string) ->
  ?footprint:('c -> (move * 'c) list) ->
  ?reduction:reduction ->
  ?jobs:int ->
  ?batch:int ->
  ?resilience:resilience ->
  moves:('c -> 'c list) ->
  terminated:('c -> bool) ->
  'c ->
  'c result
(** [max_steps] bounds each branch's depth (default 10_000);
    [max_configs] bounds the total visit budget (default 1_000_000) —
    exceeding it stops the walk with [exhausted = Some Config_budget]
    rather than raising, since an incomplete computation set makes
    "verified" claims unsound but is still a sound falsifier. [budget]
    adds a wall-clock deadline, a cumulative configuration counter and a
    heap watermark, polled as the walk proceeds.

    [key], when given, enables partial-order reduction by memoization: two
    configurations with equal keys generate the same set of future
    computations (up to emission order), so the second subtree is skipped.
    Language interpreters build the key from the runtime state with event
    handles replaced by stable event identities — interleavings of
    commuting moves then converge to one key. Each admitted
    configuration's key is computed exactly once: it is reused for the
    seen-table check, carried to the leaf, and reused again by the
    canonical leaf sort.

    [audit], when given alongside a [key], supplies the exact structural
    key as a collision oracle: it is computed per visited configuration
    (forfeiting the fingerprint speedup — a diagnostic mode), stored at
    first insert, and compared on every seen-table arrival; mismatches
    are counted under the [Fingerprint_collisions] telemetry counter.

    [footprint], when given, supersedes [moves] (which is ignored) and
    switches the walk to a sleep-set DFS: after a branch explores move
    [m] from a state, sibling branches put [m] to sleep and prune any
    successor reached by a sleeping move, since the interleaving that
    fires the sleeping move first was already covered; a move wakes when
    a dependent move (per {!independent}) fires. With [key] also given,
    a state is skipped only when it was previously visited under a sleep
    set no larger than the current one, which keeps the combination
    sound. The successor configurations of [footprint] must enumerate
    exactly [moves config], in the same order.

    [reduction] picks the reduction engine used over [footprint]
    (default [Sleep_sets]; ignored without a [footprint], where every
    walk is plain). [No_reduction] ignores the footprint and runs the
    plain walk. [Source_sets] runs the sequential source-DPOR engine:
    per-execution happens-before is derived from footprints, reversible
    races on the DFS stack schedule backtrack points, and successors no
    race demands are never visited ([Source_prunes] telemetry) — the
    computation/deadlock sets still cover one representative per
    Mazurkiewicz trace, so verdicts are byte-identical to the other
    engines. Because race detection needs the in-order execution stack,
    [Source_sets] forces a sequential walk even under [jobs > 1] and
    degrades to sleep sets under [bitstate] or the resilient engine
    (spool/checkpoint/resume); see DESIGN.md for the decision record.

    [jobs], when [> 1], runs the walk across that many domains with
    per-domain work-stealing deques, a sharded seen table and the same
    sleep-set/memoization discipline; [moves], [footprint], [key] and
    [terminated] must then be safe to call from multiple domains (the
    interpreters' are: configurations are immutable and flow to exactly
    one domain at a time). Counters ([explored]/[reduced]) may differ
    from a sequential walk's — racing traversals prune differently — but
    the completed/deadlocked leaves cover the same computations, and with
    [key] given they are returned sorted by key, so results are
    deterministic. A shared [budget] cancels all domains: its cells are
    atomic, the first exhaustion reason wins, and the merged result
    carries exactly that reason. Defaults to [1] (the sequential walks,
    byte-for-byte unchanged).

    [batch] (default {!Gem_check.Par.batch_default}, i.e. [GEM_BATCH] or
    64) sets the parallel engine's work-distribution chunk size: deques
    move chunks of up to [batch] tasks per lock acquisition, seen-table
    probes for a chunk's children are grouped per shard and issued under
    one lock each, each domain keeps a bounded local fingerprint cache
    in front of the shared shards, and termination bookkeeping is
    amortized per chunk. Partial chunks are flushed at the end of every
    chunk, so a frontier smaller than [batch] (even a single
    configuration at [jobs 8]) still spreads across domains. Verdicts
    are byte-identical for every (jobs, batch) pair; [batch] only moves
    coordination cost. Ignored when [jobs <= 1].

    [resilience] (default {!no_resilience}) selects the degradation
    ladder. [spool]/[checkpoint]/[resume] force the deterministic
    sequential resilient engine even when [jobs > 1]; [bitstate] alone
    composes with parallel runs (the table is sharded). Any run through
    a bitstate seen set finishes Inconclusive
    ([Bitstate_collision_risk]) unless a counterexample or an earlier
    stop reason takes priority. *)

val fingerprint : Gem_model.Computation.t -> string
(** Canonical string of a computation's events (identity, class, params)
    and enable edges — emission-order independent. *)

val fingerprint_into : Buffer.t -> Gem_model.Computation.t -> unit
(** {!fingerprint}, appended to an existing buffer — the exact-key
    builders use this to avoid an intermediate string. *)

val add_id : Buffer.t -> Gem_model.Event.id -> unit
(** Append an event identity in its canonical [element^index] rendering
    (byte-identical to {!Gem_model.Event.pp_id}) without going through a
    formatter. *)

val dedup_computations :
  ('c -> Gem_model.Computation.t) -> 'c list -> Gem_model.Computation.t list
(** Seal each leaf and drop partial-order duplicates: different
    interleavings of commuting steps produce the same computation (same
    event identities, parameters and enable edges), and are collapsed by a
    canonical fingerprint. The survivors are returned sorted by
    fingerprint, so the list is identical however the leaves were
    discovered — the anchor for byte-identical verdicts across POR
    on/off, re-runs, and parallel schedules. *)
