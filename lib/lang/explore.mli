(** Generic exhaustive scheduler exploration.

    Language interpreters expose their operational semantics as a [moves]
    function (all configurations reachable in one scheduler choice); this
    module walks the choice tree depth-first, within bounds, and classifies
    the leaves. Configurations carry their own traces, so a completed leaf
    can be sealed into a computation by the caller.

    Exploration never raises on resource exhaustion: exceeding
    [max_configs], a budget deadline, or a memory watermark stops the walk
    and is reported as structured truncation provenance in the result, so
    callers can degrade to an [Inconclusive] verdict instead of crashing
    or silently under-reporting. *)

type 'c result = {
  completed : 'c list;  (** Leaves with no moves that satisfy [terminated]. *)
  deadlocked : 'c list;  (** Leaves with no moves that do not. *)
  truncated : int;  (** Branches cut by [max_steps]. *)
  explored : int;  (** Configurations visited. *)
  exhausted : Gem_check.Budget.reason option;
      (** [Some _] iff the walk stopped early — the completed/deadlocked
          sets are then a sound but incomplete sample. [Config_budget]
          covers both the [max_configs] argument and a budget's own
          configuration counter. *)
}

val run :
  ?max_steps:int ->
  ?max_configs:int ->
  ?budget:Gem_check.Budget.t ->
  ?key:('c -> string) ->
  moves:('c -> 'c list) ->
  terminated:('c -> bool) ->
  'c ->
  'c result
(** [max_steps] bounds each branch's depth (default 10_000);
    [max_configs] bounds the total visit budget (default 1_000_000) —
    exceeding it stops the walk with [exhausted = Some Config_budget]
    rather than raising, since an incomplete computation set makes
    "verified" claims unsound but is still a sound falsifier. [budget]
    adds a wall-clock deadline, a cumulative configuration counter and a
    heap watermark, polled as the walk proceeds.

    [key], when given, enables partial-order reduction by memoization: two
    configurations with equal keys generate the same set of future
    computations (up to emission order), so the second subtree is skipped.
    Language interpreters build the key from the trace's canonical
    fingerprint plus the runtime state with event handles replaced by
    stable event identities — interleavings of commuting moves then
    converge to one key. *)

val fingerprint : Gem_model.Computation.t -> string
(** Canonical string of a computation's events (identity, class, params)
    and enable edges — emission-order independent. *)

val dedup_computations :
  ('c -> Gem_model.Computation.t) -> 'c list -> Gem_model.Computation.t list
(** Seal each leaf and drop partial-order duplicates: different
    interleavings of commuting steps produce the same computation (same
    event identities, parameters and enable edges), and are collapsed by a
    canonical fingerprint. *)
