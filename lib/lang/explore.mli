(** Generic exhaustive scheduler exploration.

    Language interpreters expose their operational semantics as a [moves]
    function (all configurations reachable in one scheduler choice); this
    module walks the choice tree depth-first, within bounds, and classifies
    the leaves. Configurations carry their own traces, so a completed leaf
    can be sealed into a computation by the caller.

    Exploration never raises on resource exhaustion: exceeding
    [max_configs], a budget deadline, or a memory watermark stops the walk
    and is reported as structured truncation provenance in the result, so
    callers can degrade to an [Inconclusive] verdict instead of crashing
    or silently under-reporting. *)

type move = { label : string; touches : string list }
(** A scheduler choice as the independence oracle sees it: [label] names
    the choice stably across configurations (e.g. the acting process, or
    process plus branch index), and [touches] lists every element the move
    reads or writes — the elements of the events it emits plus a
    representative element for each runtime component it changes or whose
    state its enabledness depends on. Two moves with disjoint [touches]
    commute and can neither enable nor disable one another. *)

val independent : move -> move -> bool
(** Element-footprint disjointness — the independence relation used by the
    sleep-set search. *)

type 'c result = {
  completed : 'c list;  (** Leaves with no moves that satisfy [terminated]. *)
  deadlocked : 'c list;  (** Leaves with no moves that do not. *)
  truncated : int;  (** Branches cut by [max_steps]. *)
  explored : int;  (** Configurations visited. *)
  reduced : int;
      (** Configurations pruned as redundant — already-seen keys, and
          successors skipped by the sleep-set rule because an equivalent
          interleaving was already explored. *)
  exhausted : Gem_check.Budget.reason option;
      (** [Some _] iff the walk stopped early — the completed/deadlocked
          sets are then a sound but incomplete sample. [Config_budget]
          covers both the [max_configs] argument and a budget's own
          configuration counter. *)
}

val por_default : unit -> bool
(** Whether partial-order reduction should be on by default: [true] unless
    the [GEM_NO_POR] environment variable is set to [1], [true] or [yes].
    Interpreters consult this when the caller passes no explicit [~por]
    argument, so one environment switch flips every test and tool. *)

val run :
  ?max_steps:int ->
  ?max_configs:int ->
  ?budget:Gem_check.Budget.t ->
  ?key:('c -> 'k) ->
  ?footprint:('c -> (move * 'c) list) ->
  ?jobs:int ->
  moves:('c -> 'c list) ->
  terminated:('c -> bool) ->
  'c ->
  'c result
(** [max_steps] bounds each branch's depth (default 10_000);
    [max_configs] bounds the total visit budget (default 1_000_000) —
    exceeding it stops the walk with [exhausted = Some Config_budget]
    rather than raising, since an incomplete computation set makes
    "verified" claims unsound but is still a sound falsifier. [budget]
    adds a wall-clock deadline, a cumulative configuration counter and a
    heap watermark, polled as the walk proceeds.

    [key], when given, enables partial-order reduction by memoization: two
    configurations with equal keys generate the same set of future
    computations (up to emission order), so the second subtree is skipped.
    Language interpreters build a canonical structural key from the
    runtime state with event handles replaced by stable event identities —
    interleavings of commuting moves then converge to one key.

    [footprint], when given, supersedes [moves] (which is ignored) and
    switches the walk to a sleep-set DFS: after a branch explores move
    [m] from a state, sibling branches put [m] to sleep and prune any
    successor reached by a sleeping move, since the interleaving that
    fires the sleeping move first was already covered; a move wakes when
    a dependent move (per {!independent}) fires. With [key] also given,
    a state is skipped only when it was previously visited under a sleep
    set no larger than the current one, which keeps the combination
    sound. The successor configurations of [footprint] must enumerate
    exactly [moves config], in the same order.

    [jobs], when [> 1], runs the walk across that many domains with
    per-domain work-stealing deques, a sharded seen table and the same
    sleep-set/memoization discipline; [moves], [footprint], [key] and
    [terminated] must then be safe to call from multiple domains (the
    interpreters' are: configurations are immutable and flow to exactly
    one domain at a time). Counters ([explored]/[reduced]) may differ
    from a sequential walk's — racing traversals prune differently — but
    the completed/deadlocked leaves cover the same computations, and with
    [key] given they are returned sorted by key, so results are
    deterministic. A shared [budget] cancels all domains: its cells are
    atomic, the first exhaustion reason wins, and the merged result
    carries exactly that reason. Defaults to [1] (the sequential walks,
    byte-for-byte unchanged). *)

val fingerprint : Gem_model.Computation.t -> string
(** Canonical string of a computation's events (identity, class, params)
    and enable edges — emission-order independent. *)

val dedup_computations :
  ('c -> Gem_model.Computation.t) -> 'c list -> Gem_model.Computation.t list
(** Seal each leaf and drop partial-order duplicates: different
    interleavings of commuting steps produce the same computation (same
    event identities, parameters and enable edges), and are collapsed by a
    canonical fingerprint. The survivors are returned sorted by
    fingerprint, so the list is identical however the leaves were
    discovered — the anchor for byte-identical verdicts across POR
    on/off, re-runs, and parallel schedules. *)
