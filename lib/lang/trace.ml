module Smap = Map.Make (String)
module Imap = Map.Make (Int)
module Event = Gem_model.Event
module Fp = Gem_order.Fingerprint

(* The running fingerprint hashes the same information the canonical
   computation rendering ([Explore.fingerprint]) exposes — event identity
   (element + occurrence index), class, params, and enable edges between
   identities — as a commutative multiset, so it is emission-order
   independent without ever walking the history. Actors and threads are
   deliberately excluded, exactly as the rendering excludes them: the
   fingerprint partitions configurations into the same classes as the
   exact key (up to hash collisions), which keeps memo hit counts
   identical between the two key modes. *)
let event_tag = Fp.of_int 0x3e7
let edge_tag = Fp.of_int 0xed6e

type t = {
  rev_events : Event.t list;
  counts : int Smap.t;
  rev_edges : (int * int) list;
  n : int;
  fp : Fp.t;  (** Commutative hash of the event and edge multisets. *)
  id_fps : Fp.t Imap.t;  (** Handle -> fingerprint of its stable identity. *)
}

let empty =
  {
    rev_events = [];
    counts = Smap.empty;
    rev_edges = [];
    n = 0;
    fp = Fp.zero;
    id_fps = Imap.empty;
  }

let fp t = t.fp
let id_fp t h = Imap.find h t.id_fps

let emit t ?actor ~element ~klass ?(params = []) () =
  let index = Option.value ~default:0 (Smap.find_opt element t.counts) in
  let e = Event.make ?actor ~element ~index ~klass params in
  let idf = Fp.combine (Fp.of_string element) (Fp.of_int index) in
  let contrib =
    Fp.combine event_tag
      (Fp.combine idf (Fp.combine (Fp.of_string klass) (Fp.of_struct params)))
  in
  ( t.n,
    {
      rev_events = e :: t.rev_events;
      counts = Smap.add element (index + 1) t.counts;
      rev_edges = t.rev_edges;
      n = t.n + 1;
      fp = Fp.cadd t.fp contrib;
      id_fps = Imap.add t.n idf t.id_fps;
    } )

let enable t a b =
  if a = b then invalid_arg "Trace.enable: self-enable";
  if a < 0 || a >= t.n || b < 0 || b >= t.n then invalid_arg "Trace.enable: bad handle";
  let contrib =
    Fp.combine edge_tag (Fp.combine (Imap.find a t.id_fps) (Imap.find b t.id_fps))
  in
  { t with rev_edges = (a, b) :: t.rev_edges; fp = Fp.cadd t.fp contrib }

let emit_after t ?actor ~after ~element ~klass ?params () =
  let h, t = emit t ?actor ~element ~klass ?params () in
  let t = match after with Some a -> enable t a h | None -> t in
  (h, t)

let n_events t = t.n

let touched_elements ~before after =
  (* Traces are persistent and only ever extended, so the elements touched
     by a step are exactly those whose occurrence count grew. *)
  Smap.fold
    (fun element count acc ->
      match Smap.find_opt element before.counts with
      | Some c when c = count -> acc
      | _ -> element :: acc)
    after.counts []

let to_computation ?(extra_elements = []) ?(groups = []) t =
  let events = Array.of_list (List.rev t.rev_events) in
  let enable = Gem_order.Digraph.of_edges t.n (List.rev t.rev_edges) in
  let seen = Hashtbl.create 16 in
  let elements_in_order =
    Array.to_list events
    |> List.filter_map (fun (e : Event.t) ->
           if Hashtbl.mem seen e.id.element then None
           else begin
             Hashtbl.add seen e.id.element ();
             Some e.id.element
           end)
  in
  let extras = List.filter (fun el -> not (Hashtbl.mem seen el)) extra_elements in
  Gem_model.Computation.unsafe_make
    ~elements:(elements_in_order @ extras)
    ~groups ~events ~enable
