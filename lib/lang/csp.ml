module Value = Gem_model.Value
module F = Gem_logic.Formula
module Fp = Gem_order.Fingerprint

type comm =
  | Send of { to_ : string; value : Expr.t }
  | Recv of { from_ : string; bind : string }

type guarded = { guard : Expr.t; comm : comm option; body : stmt list }

and stmt =
  | CLocal of string * Expr.t
  | CIfb of Expr.t * stmt list * stmt list
  | CWhile of Expr.t * stmt list
  | CComm of comm
  | CIf of guarded list
  | CDo of guarded list
  | CMark of { klass : string; params : Expr.t list }

type process = {
  proc_name : string;
  locals : (string * Value.t) list;
  code : stmt list;
}

type program = process list

let element_of_process p = p
let main_element = "main"

(* ------------------------------------------------------------------ *)
(* Runtime                                                             *)
(* ------------------------------------------------------------------ *)

type pstate =
  | Active of stmt list
  (* Parked at a plain communication; the Req event was emitted on arrival
     (the paper's CSP model: a blocked process IS a pending request). *)
  | At_comm of { comm : comm; cont : stmt list; req : int }
  | At_choice of { branches : guarded list; cont : stmt list; loop : bool }
  | Cdone

type proc_rt = { p_def : process; p_locals : Expr.store; p_state : pstate; p_last : int }

type config = { trace : Trace.t; procs : (string * proc_rt) list }

let proc_rt cfg p = List.assoc p cfg.procs

let set_proc cfg name rt =
  { cfg with procs = List.map (fun (n, r) -> if String.equal n name then (n, rt) else (n, r)) cfg.procs }

let chain cfg ~proc ~klass ?(params = []) () =
  let rt = proc_rt cfg proc in
  let h, trace =
    Trace.emit_after cfg.trace ~actor:proc ~after:(Some rt.p_last)
      ~element:(element_of_process proc) ~klass ~params ()
  in
  let cfg = { cfg with trace } in
  (h, set_proc cfg proc { rt with p_last = h })

(* Advance every process through its local (commuting) statements until it
   parks at a communication point, a choice, or termination. Deterministic,
   so it is not a scheduler choice. *)
let rec advance cfg pname stmts =
  let rt = proc_rt cfg pname in
  match stmts with
  | [] -> set_proc cfg pname { rt with p_state = Cdone }
  | CLocal (x, e) :: rest ->
      let v = Expr.eval rt.p_locals e in
      let cfg = set_proc cfg pname { rt with p_locals = Expr.update rt.p_locals x v } in
      advance cfg pname rest
  | CIfb (g, a, b) :: rest ->
      advance cfg pname ((if Expr.eval_bool rt.p_locals g then a else b) @ rest)
  | CWhile (g, body) :: rest ->
      if Expr.eval_bool rt.p_locals g then advance cfg pname (body @ (CWhile (g, body) :: rest))
      else advance cfg pname rest
  | CMark { klass; params } :: rest ->
      let vals = List.mapi (fun i e -> ("p" ^ string_of_int i, Expr.eval rt.p_locals e)) params in
      let _, cfg = chain cfg ~proc:pname ~klass ~params:vals () in
      advance cfg pname rest
  | CComm c :: rest ->
      (* Arrival: emit the request event now. Values are evaluated here;
         the process is blocked until the rendezvous, so nothing can
         change them. *)
      let req, cfg =
        match c with
        | Send { to_; value } ->
            let v = Expr.eval rt.p_locals value in
            chain cfg ~proc:pname ~klass:"ReqOut"
              ~params:[ ("to", Value.Str to_); ("value", v) ] ()
        | Recv { from_; _ } ->
            chain cfg ~proc:pname ~klass:"ReqIn" ~params:[ ("from", Value.Str from_) ] ()
      in
      let rt = proc_rt cfg pname in
      set_proc cfg pname { rt with p_state = At_comm { comm = c; cont = rest; req } }
  | CIf branches :: rest ->
      set_proc cfg pname { rt with p_state = At_choice { branches; cont = rest; loop = false } }
  | CDo branches :: rest ->
      set_proc cfg pname { rt with p_state = At_choice { branches; cont = rest; loop = true } }

let normalize cfg =
  List.fold_left
    (fun cfg (pname, _) ->
      match (proc_rt cfg pname).p_state with
      | Active stmts -> advance cfg pname stmts
      | At_comm _ | At_choice _ | Cdone -> cfg)
    cfg cfg.procs

(* Ready send/receive offers of a parked process, with the continuation to
   run after the communication; [o_req] is the arrival-time request event
   when one was emitted (plain communications only — choice branches emit
   their request at rendezvous, since offering is not committing). *)
type offer = { o_comm : comm; o_next : stmt list; o_req : int option }

let offers cfg pname =
  let rt = proc_rt cfg pname in
  match rt.p_state with
  | At_comm { comm; cont; req } -> [ { o_comm = comm; o_next = cont; o_req = Some req } ]
  | At_choice { branches; cont; loop } ->
      List.filter_map
        (fun b ->
          match b.comm with
          | Some c when Expr.eval_bool rt.p_locals b.guard ->
              let back = if loop then [ CDo branches ] @ cont else cont in
              Some { o_comm = c; o_next = b.body @ back; o_req = None }
          | Some _ | None -> None)
        branches
  | Active _ | Cdone -> []

(* Execute one matched communication. Request events that were not already
   emitted on arrival are emitted now. *)
let communicate cfg ~sender ~value ~s_req ~s_next ~receiver ~bind ~r_req ~r_next =
  let v = Expr.eval (proc_rt cfg sender).p_locals value in
  let reqout, cfg =
    match s_req with
    | Some h -> (h, cfg)
    | None ->
        chain cfg ~proc:sender ~klass:"ReqOut"
          ~params:[ ("to", Value.Str receiver); ("value", v) ]
          ()
  in
  let reqin, cfg =
    match r_req with
    | Some h -> (h, cfg)
    | None ->
        chain cfg ~proc:receiver ~klass:"ReqIn" ~params:[ ("from", Value.Str sender) ] ()
  in
  let endout, cfg = chain cfg ~proc:sender ~klass:"EndOut" ~params:[ ("value", v) ] () in
  let cfg = { cfg with trace = Trace.enable cfg.trace reqin endout } in
  let endin, cfg = chain cfg ~proc:receiver ~klass:"EndIn" ~params:[ ("value", v) ] () in
  let cfg = { cfg with trace = Trace.enable cfg.trace reqout endin } in
  ignore endout;
  ignore endin;
  let srt = proc_rt cfg sender in
  let cfg = set_proc cfg sender { srt with p_state = Active s_next } in
  let rrt = proc_rt cfg receiver in
  let cfg =
    set_proc cfg receiver
      {
        rrt with
        p_locals = Expr.update rrt.p_locals bind v;
        p_state = Active r_next;
      }
  in
  normalize cfg

(* Element footprint of the step from [before] to [after]: elements of
   the emitted events plus the element of every process whose runtime
   changed ([set_proc] keeps unchanged runtimes physically identical).
   Choice guards read only the choosing process's locals, and a partner's
   transition to [Cdone] (the one remote input to distributed
   termination) can enable a termination move but never disable it, so
   disjoint footprints guarantee commutation. *)
let footprint before after =
  let touches = Trace.touched_elements ~before:before.trace after.trace in
  let touches =
    List.fold_left2
      (fun acc (n, r) (_, r') -> if r == r' then acc else element_of_process n :: acc)
      touches before.procs after.procs
  in
  List.sort_uniq String.compare touches

let moves_fp cfg =
  let procs = List.map fst cfg.procs in
  let ms = ref [] in
  let push label cfg' =
    ms := ({ Explore.label; touches = footprint cfg cfg' }, cfg') :: !ms
  in
  (* Boolean-only choice branches. Labels index the source branch list, so
     they are stable for as long as the process stays parked here. *)
  List.iter
    (fun pname ->
      match (proc_rt cfg pname).p_state with
      | At_choice { branches; cont; loop } ->
          let rt = proc_rt cfg pname in
          List.iteri
            (fun i b ->
              match b.comm with
              | None when Expr.eval_bool rt.p_locals b.guard ->
                  let back = if loop then [ CDo branches ] @ cont else cont in
                  let cfg' = set_proc cfg pname { rt with p_state = Active (b.body @ back) } in
                  push (pname ^ "#" ^ string_of_int i) (normalize cfg')
              | None | Some _ -> ())
            branches
      | Active _ | At_comm _ | Cdone -> ())
    procs;
  (* Matched communications, labeled by the pair of offer indices — stable
     while both parties stay parked, since offers only depend on their own
     states. *)
  List.iter
    (fun sender ->
      List.iter
        (fun receiver ->
          if not (String.equal sender receiver) then
            List.iteri
              (fun i so ->
                match so.o_comm with
                | Send { to_; value } when String.equal to_ receiver ->
                    List.iteri
                      (fun j ro ->
                        match ro.o_comm with
                        | Recv { from_; bind } when String.equal from_ sender ->
                            push
                              (Printf.sprintf "%s>%s#%d#%d" sender receiver i j)
                              (communicate cfg ~sender ~value ~s_req:so.o_req
                                 ~s_next:so.o_next ~receiver ~bind ~r_req:ro.o_req
                                 ~r_next:ro.o_next)
                        | Recv _ | Send _ -> ())
                      (offers cfg receiver)
                | Send _ | Recv _ -> ())
              (offers cfg sender))
        procs)
    procs;
  (* Distributed termination of repetitions: every I/O partner is done and
     no boolean-only guard holds. *)
  List.iter
    (fun pname ->
      match (proc_rt cfg pname).p_state with
      | At_choice { branches; cont; loop = true } ->
          let rt = proc_rt cfg pname in
          let bool_live =
            List.exists
              (fun b -> b.comm = None && Expr.eval_bool rt.p_locals b.guard)
              branches
          in
          let io_live =
            List.exists
              (fun b ->
                match b.comm with
                | Some (Send { to_ = partner; _ }) | Some (Recv { from_ = partner; _ }) ->
                    Expr.eval_bool rt.p_locals b.guard
                    && (match (proc_rt cfg partner).p_state with
                       | Cdone -> false
                       | Active _ | At_comm _ | At_choice _ -> true)
                | None -> false)
              branches
          in
          if (not bool_live) && not io_live then begin
            let cfg' = set_proc cfg pname { rt with p_state = Active cont } in
            push (pname ^ "!done") (normalize cfg')
          end
      | Active _ | At_comm _ | At_choice _ | Cdone -> ())
    procs;
  List.rev !ms

let moves cfg = List.map snd (moves_fp cfg)

let terminated cfg =
  List.for_all
    (fun (_, rt) ->
      match rt.p_state with Cdone -> true | Active _ | At_comm _ | At_choice _ -> false)
    cfg.procs

let initial (program : program) =
  let trace = Trace.empty in
  let start, trace = Trace.emit trace ~element:main_element ~klass:"Start" () in
  let trace, procs =
    List.fold_left
      (fun (trace, procs) p ->
        let h, trace =
          Trace.emit_after trace ~actor:p.proc_name ~after:(Some start)
            ~element:(element_of_process p.proc_name) ~klass:"Start" ()
        in
        (trace, (p.proc_name, { p_def = p; p_locals = p.locals; p_state = Active p.code; p_last = h }) :: procs))
      (trace, []) program
  in
  normalize { trace; procs = List.rev procs }

(* ------------------------------------------------------------------ *)
(* Exploration                                                         *)
(* ------------------------------------------------------------------ *)

type outcome = {
  computations : Gem_model.Computation.t list;
  deadlocks : Gem_model.Computation.t list;
  explored : int;
  truncated : int;
  reduced : int;
  exhausted : Gem_check.Budget.reason option;
}

let all_elements (program : program) =
  main_element :: List.map (fun p -> element_of_process p.proc_name) program

let seal program cfg = Trace.to_computation ~extra_elements:(all_elements program) cfg.trace

(* Canonical state key for partial-order reduction (see Explore.run).
   Local stores are sorted ([Expr.update] prepends) and marshalling
   disables sharing, so interleavings of commuting moves that converge on
   structurally equal states yield byte-equal keys. *)
let sorted_store (s : Expr.store) =
  List.sort (fun (a, _) (b, _) -> String.compare a b) s

let canon x = Marshal.to_string x [ Marshal.No_sharing ]

let state_key program cfg =
  let span = Gem_obs.Telemetry.(span_begin Canon_key) in
  let comp = seal program cfg in
  let buf = Buffer.create 1024 in
  let id h =
    Explore.add_id buf (Gem_model.Computation.event comp h).Gem_model.Event.id
  in
  Explore.fingerprint_into buf comp;
  List.iter
    (fun (n, rt) ->
      Buffer.add_string buf n;
      id rt.p_last;
      (match rt.p_state with
      | Active stmts ->
          Buffer.add_char buf 'A';
          Buffer.add_string buf (canon stmts)
      | At_comm { comm; cont; req } ->
          Buffer.add_char buf 'P';
          Buffer.add_string buf (canon (comm, cont));
          id req
      | At_choice { branches; cont; loop } ->
          Buffer.add_char buf 'C';
          Buffer.add_string buf (canon (branches, cont, loop))
      | Cdone -> Buffer.add_char buf 'D');
      Buffer.add_string buf (canon (sorted_store rt.p_locals)))
    cfg.procs;
  let key = Buffer.contents buf in
  Gem_obs.Telemetry.(span_end Canon_key) span;
  key

(* Incremental fingerprint mirroring [state_key] — see Monitor.fp_key for
   the construction rationale. Local stores are folded commutatively
   (insertion order varies across interleavings; names are unique);
   everything else is order-stable and hashed structurally, with event
   handles replaced by their stable identity fingerprints. *)
let store_fp s =
  List.fold_left
    (fun acc (x, v) -> Fp.cadd acc (Fp.combine (Fp.of_string x) (Fp.of_struct v)))
    (Fp.of_int 0x57) s

let fp_key cfg =
  let span = Gem_obs.Telemetry.(span_begin Canon_key) in
  let idf = Trace.id_fp cfg.trace in
  let acc = ref (Trace.fp cfg.trace) in
  let mix x = acc := Fp.combine !acc x in
  List.iter
    (fun (n, rt) ->
      mix (Fp.of_string n);
      mix (idf rt.p_last);
      (match rt.p_state with
      | Active stmts -> mix (Fp.combine (Fp.of_int 1) (Fp.of_struct stmts))
      | At_comm { comm; cont; req } ->
          mix (Fp.combine (Fp.of_int 2) (Fp.of_struct (comm, cont)));
          mix (idf req)
      | At_choice { branches; cont; loop } ->
          mix (Fp.combine (Fp.of_int 3) (Fp.of_struct (branches, cont, loop)))
      | Cdone -> mix (Fp.of_int 4));
      mix (store_fp rt.p_locals))
    cfg.procs;
  Gem_obs.Telemetry.(span_end Canon_key) span;
  !acc

let explore ?reduction ?por ?exact_keys ?audit_keys ?max_steps ?max_configs
    ?budget ?jobs ?batch ?(resilience = Explore.no_resilience) program =
  let reduction = Explore.resolve_reduction ?reduction ?por () in
  let exact =
    match exact_keys with Some b -> b | None -> Explore.exact_keys_default ()
  in
  let auditing =
    match audit_keys with Some b -> b | None -> Explore.audit_keys_default ()
  in
  let jobs =
    match jobs with Some j -> j | None -> Gem_check.Par.jobs_default ()
  in
  let result =
    let key c =
      if exact then Explore.Exact (state_key program c)
      else Explore.Fp (fp_key c)
    in
    let audit = if auditing && not exact then Some (state_key program) else None in
    if reduction <> Explore.No_reduction then
      Explore.run ?max_steps ?max_configs ?budget ~key ?audit ~footprint:moves_fp
        ~reduction ~jobs ?batch ~resilience ~moves ~terminated (initial program)
    else
      (* Keyless plain walk, except bitstate mode needs a state key to
         memoize on (see {!Monitor.explore}). *)
      let key = if resilience.Explore.bitstate = None then None else Some key in
      let audit = if key = None then None else audit in
      Explore.run ?max_steps ?max_configs ?budget ?key ?audit ~jobs ?batch
        ~resilience
        ~moves ~terminated (initial program)
  in
  {
    computations = Explore.dedup_computations (seal program) result.completed;
    deadlocks = Explore.dedup_computations (seal program) result.deadlocked;
    explored = result.explored;
    truncated = result.truncated;
    reduced = result.reduced;
    exhausted = result.exhausted;
  }

(* Small-step interface for the POR differential harness. *)
let initial_config program = initial program
let config_moves cfg = moves_fp cfg
let config_key = state_key
let config_fp _program cfg = fp_key cfg
let config_terminated = terminated

let run_one ?(seed = 42) program =
  let rng = Random.State.make [| seed |] in
  let rec loop cfg =
    match moves cfg with
    | [] -> cfg
    | ms -> loop (List.nth ms (Random.State.int rng (List.length ms)))
  in
  seal program (loop (initial program))

(* ------------------------------------------------------------------ *)
(* GEM description of CSP                                              *)
(* ------------------------------------------------------------------ *)

let rec marker_decls acc = function
  | [] -> acc
  | CMark { klass; params } :: rest ->
      let decl =
        {
          Gem_spec.Etype.klass;
          schema = List.mapi (fun i _ -> ("p" ^ string_of_int i, Gem_spec.Etype.P_any)) params;
        }
      in
      let acc =
        if List.exists (fun (d : Gem_spec.Etype.event_decl) -> String.equal d.klass klass) acc
        then acc
        else decl :: acc
      in
      marker_decls acc rest
  | CIfb (_, a, b) :: rest -> marker_decls (marker_decls (marker_decls acc a) b) rest
  | CWhile (_, a) :: rest -> marker_decls (marker_decls acc a) rest
  | (CIf gs | CDo gs) :: rest ->
      marker_decls (List.fold_left (fun acc g -> marker_decls acc g.body) acc gs) rest
  | (CLocal _ | CComm _) :: rest -> marker_decls acc rest

let process_etype (p : process) =
  Gem_spec.Etype.make ("CspProcess:" ^ p.proc_name)
    ~events:
      ([
         { Gem_spec.Etype.klass = "Start"; schema = [] };
         {
           klass = "ReqOut";
           schema = [ ("to", Gem_spec.Etype.P_str); ("value", Gem_spec.Etype.P_any) ];
         };
         { klass = "ReqIn"; schema = [ ("from", Gem_spec.Etype.P_str) ] };
         { klass = "EndOut"; schema = [ ("value", Gem_spec.Etype.P_any) ] };
         { klass = "EndIn"; schema = [ ("value", Gem_spec.Etype.P_any) ] };
       ]
       @ List.rev (marker_decls [] p.code))
    ()

let main_etype =
  Gem_spec.Etype.make "Main" ~events:[ { Gem_spec.Etype.klass = "Start"; schema = [] } ] ()

(* [e] is the element-successor of [r]: same element, r before e, nothing
   of that element strictly between. *)
let matched r e =
  let open F in
  elem_lt r e
  &&& neg
        (exists
           [ ("_m", Any) ]
           (same_element "_m" r &&& elem_lt r "_m" &&& elem_lt "_m" e))

let io_simultaneity =
  let open F in
  forall
    [ ("ro", Cls "ReqOut"); ("eo", Cls "EndOut"); ("ri", Cls "ReqIn"); ("ei", Cls "EndIn") ]
    (matched "ro" "eo" &&& matched "ri" "ei" &&& same_element "ro" "eo"
     &&& same_element "ri" "ei"
    ==> (enables "ri" "eo" <=> enables "ro" "ei"))

let io_matching =
  F.conj
    [
      Gem_spec.Abbrev.prerequisite (F.Cls "ReqOut") (F.Cls "EndIn");
      Gem_spec.Abbrev.prerequisite (F.Cls "ReqIn") (F.Cls "EndOut");
    ]

let io_value =
  Gem_spec.Abbrev.message_passing ~send:(F.Cls "ReqOut") ~receive:(F.Cls "EndIn")
    ~send_param:"value" ~receive_param:"value"

let io_addressing =
  let open F in
  conj
    [
      forall
        [ ("ro", Cls "ReqOut"); ("ei", Cls "EndIn") ]
        (enables "ro" "ei"
         ==> sem "addressed-to" [ "ro"; "ei" ]
               (fun comp _hist handles ->
                 match handles with
                 | [ ro; ei ] ->
                     let e_ro = Gem_model.Computation.event comp ro in
                     let e_ei = Gem_model.Computation.event comp ei in
                     Value.equal
                       (Gem_model.Event.param e_ro "to")
                       (Value.Str e_ei.Gem_model.Event.id.element)
                 | _ -> false));
      forall
        [ ("ri", Cls "ReqIn"); ("eo", Cls "EndOut") ]
        (enables "ri" "eo"
         ==> sem "addressed-from" [ "ri"; "eo" ]
               (fun comp _hist handles ->
                 match handles with
                 | [ ri; eo ] ->
                     let e_ri = Gem_model.Computation.event comp ri in
                     let e_eo = Gem_model.Computation.event comp eo in
                     Value.equal
                       (Gem_model.Event.param e_ri "from")
                       (Value.Str e_eo.Gem_model.Event.id.element)
                 | _ -> false));
    ]

let language_spec ?name (program : program) =
  let spec_name = Option.value ~default:"csp-program" name in
  let elements =
    (main_element, main_etype)
    :: List.map (fun p -> (element_of_process p.proc_name, process_etype p)) program
  in
  Gem_spec.Spec.make spec_name ~elements
    ~restrictions:
      [
        ("io-simultaneity", io_simultaneity);
        ("io-matching", io_matching);
        ("io-value", io_value);
        ("io-addressing", io_addressing);
      ]
    ()
