(** Expressions and stores shared by the three embedded languages
    (Monitor, CSP, ADA). Programs are OCaml values — the paper's examples
    are transcribed into these ASTs; no parser is needed or provided. *)

type t =
  | Int of int
  | Bool of bool
  | Str of string
  | Var of string
  | Neg of t
  | Not of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Mod of t * t
  | Eq of t * t
  | Ne of t * t
  | Lt of t * t
  | Le of t * t
  | Gt of t * t
  | Ge of t * t
  | And of t * t
  | Or of t * t
  | Queue_non_empty of string
      (** The paper's [queue(cond)] monitor primitive; evaluates via the
          [queue_test] callback, invalid elsewhere. *)
  | Queue_length of string
      (** Number of waiters on a queue: a monitor condition's queue, or an
          ADA entry's caller queue (the ADA ['Count] attribute); evaluates
          via the [queue_len] callback. *)
  | Nil  (** The empty list value. *)
  | Append of t * t  (** [Append (list, x)] appends [x] at the tail. *)
  | Head of t
  | Tail of t
  | Len of t

type store = (string * Gem_model.Value.t) list
(** Later bindings shadow earlier ones. *)

exception Eval_error of string

val lookup : store -> string -> Gem_model.Value.t
(** Raises {!Eval_error} on unbound variables. *)

val update : store -> string -> Gem_model.Value.t -> store

val eval :
  ?queue_test:(string -> bool) ->
  ?queue_len:(string -> int) ->
  store ->
  t ->
  Gem_model.Value.t
(** Raises {!Eval_error} on type errors, unbound variables, or a queue
    primitive without its callback. *)

val eval_bool :
  ?queue_test:(string -> bool) -> ?queue_len:(string -> int) -> store -> t -> bool

val eval_int :
  ?queue_test:(string -> bool) -> ?queue_len:(string -> int) -> store -> t -> int

val reads : t -> string list
(** Variable names read by the expression, each listed once, in first-use
    order — drives Getval event emission. *)

val pp : Format.formatter -> t -> unit
