module Value = Gem_model.Value
module F = Gem_logic.Formula
module Fp = Gem_order.Fingerprint

type mstmt =
  | MAssign of { var : string; value : Expr.t; site : string option }
  | MIf of Expr.t * mstmt list * mstmt list
  | MWhile of Expr.t * mstmt list
  | MWait of string
  | MSignal of string
  | MReturn of Expr.t
  | MSkip

type pstmt =
  | PLocal of string * Expr.t
  | PIf of Expr.t * pstmt list * pstmt list
  | PWhile of Expr.t * pstmt list
  | PCall of { monitor : string; entry : string; args : Expr.t list; bind : string option }
  | PRead of { var : string; bind : string }
  | PWrite of { var : string; value : Expr.t }
  | PMark of { klass : string; params : Expr.t list }

type entry = { entry_name : string; formals : string list; body : mstmt list }

type monitor = {
  mon_name : string;
  vars : (string * Value.t) list;
  conditions : string list;
  entries : entry list;
}

type process = {
  proc_name : string;
  locals : (string * Value.t) list;
  code : pstmt list;
}

type program = {
  monitors : monitor list;
  shared : (string * Value.t) list;
  processes : process list;
}

(* Element naming scheme. *)
let element_of_process p = p
let element_of_lock m = m ^ ".lock"
let element_of_entry m e = m ^ "." ^ e
let element_of_var m v = m ^ "." ^ v
let element_of_cond m c = m ^ "." ^ c
let element_of_init m = m ^ ".init"
let main_element = "main"

(* ------------------------------------------------------------------ *)
(* Runtime configurations                                              *)
(* ------------------------------------------------------------------ *)

type tenure = {
  t_mon : string;
  t_entry : string;
  t_proc : string;
  t_env : Expr.store;  (* formal parameters *)
  t_cont : mstmt list;
  t_bind : string option;
  t_pcont : pstmt list;
}

type mon_rt = {
  m_def : monitor;
  m_store : Expr.store;
  m_conds : (string * tenure list) list;  (* FIFO queues *)
  m_urgent : tenure list;  (* LIFO stack *)
  m_entryq : tenure list;  (* FIFO *)
  m_busy : bool;
  m_last_rel : int option;
}

type pstate = Active of pstmt list | In_monitor | Proc_done

type proc_rt = { p_def : process; p_locals : Expr.store; p_state : pstate; p_last : int }

type config = {
  trace : Trace.t;
  procs : (string * proc_rt) list;
  mons : (string * mon_rt) list;
  shared_store : Expr.store;
}

type ctx = { program : program; emit_getvals : bool }

let proc_rt cfg p = List.assoc p cfg.procs
let mon_rt cfg m = List.assoc m cfg.mons

let set_proc cfg name rt =
  { cfg with procs = List.map (fun (n, r) -> if String.equal n name then (n, rt) else (n, r)) cfg.procs }

let set_mon cfg name rt =
  { cfg with mons = List.map (fun (n, r) -> if String.equal n name then (n, rt) else (n, r)) cfg.mons }

(* Emit an event on behalf of process [proc], enabled by its previous
   event; updates the process's control-chain tip. *)
let chain cfg ~proc ~element ~klass ?(params = []) () =
  let rt = proc_rt cfg proc in
  let h, trace =
    Trace.emit_after cfg.trace ~actor:proc ~after:(Some rt.p_last) ~element ~klass ~params ()
  in
  let cfg = { cfg with trace } in
  (h, set_proc cfg proc { rt with p_last = h })

let entry_def (m : monitor) name =
  match List.find_opt (fun e -> String.equal e.entry_name name) m.entries with
  | Some e -> e
  | None -> raise (Expr.Eval_error ("monitor " ^ m.mon_name ^ " has no entry " ^ name))

(* Evaluation inside a monitor body: formals shadow monitor variables.
   Emits Getval events for monitor-variable reads when requested. *)
let eval_in_monitor ctx cfg (t : tenure) e =
  let mon = mon_rt cfg t.t_mon in
  let store = t.t_env @ mon.m_store in
  let queue_test c =
    match List.assoc_opt c mon.m_conds with
    | Some q -> q <> []
    | None -> raise (Expr.Eval_error ("unknown condition " ^ c))
  in
  let queue_len c =
    match List.assoc_opt c mon.m_conds with
    | Some q -> List.length q
    | None -> raise (Expr.Eval_error ("unknown condition " ^ c))
  in
  let v = Expr.eval ~queue_test ~queue_len store e in
  let cfg =
    if not ctx.emit_getvals then cfg
    else
      List.fold_left
        (fun cfg x ->
          if List.mem_assoc x t.t_env then cfg
          else
            match List.assoc_opt x mon.m_store with
            | None -> cfg
            | Some oldval ->
                let _, cfg =
                  chain cfg ~proc:t.t_proc
                    ~element:(element_of_var t.t_mon x)
                    ~klass:"Getval"
                    ~params:[ ("oldval", oldval) ]
                    ()
                in
                cfg)
        cfg (Expr.reads e)
  in
  (v, cfg)

let cond_queue mon c = Option.value ~default:[] (List.assoc_opt c mon.m_conds)

let set_cond_queue mon c q =
  { mon with m_conds = (c, q) :: List.remove_assoc c mon.m_conds }

(* ------------------------------------------------------------------ *)
(* Monitor engine: executes under the lock until it quiesces.          *)
(* ------------------------------------------------------------------ *)

let rec exec_body ctx cfg (t : tenure) =
  match t.t_cont with
  | [] -> finish_entry ctx cfg t Value.Unit
  | MSkip :: rest -> exec_body ctx cfg { t with t_cont = rest }
  | MAssign { var; value; site } :: rest ->
      let v, cfg = eval_in_monitor ctx cfg t value in
      let mon = mon_rt cfg t.t_mon in
      if not (List.mem_assoc var mon.m_store) then
        raise (Expr.Eval_error ("assignment to non-monitor variable " ^ var));
      (* Monitor-variable Assigns uniformly carry a site tag (possibly "")
         so the element's event schema is a single shape. *)
      let params = [ ("newval", v); ("site", Value.Str (Option.value ~default:"" site)) ] in
      let _, cfg =
        chain cfg ~proc:t.t_proc ~element:(element_of_var t.t_mon var) ~klass:"Assign"
          ~params ()
      in
      let cfg =
        set_mon cfg t.t_mon
          { (mon_rt cfg t.t_mon) with m_store = Expr.update mon.m_store var v }
      in
      exec_body ctx cfg { t with t_cont = rest }
  | MIf (g, thens, elses) :: rest ->
      let v, cfg = eval_in_monitor ctx cfg t g in
      let branch = if Value.as_bool v then thens else elses in
      exec_body ctx cfg { t with t_cont = branch @ rest }
  | MWhile (g, body) :: rest ->
      let v, cfg = eval_in_monitor ctx cfg t g in
      if Value.as_bool v then
        exec_body ctx cfg { t with t_cont = body @ (MWhile (g, body) :: rest) }
      else exec_body ctx cfg { t with t_cont = rest }
  | MReturn e :: _ ->
      let v, cfg = eval_in_monitor ctx cfg t e in
      finish_entry ctx cfg t v
  | MWait c :: rest ->
      let _, cfg =
        chain cfg ~proc:t.t_proc ~element:(element_of_cond t.t_mon c) ~klass:"Wait" ()
      in
      let rel, cfg =
        chain cfg ~proc:t.t_proc ~element:(element_of_lock t.t_mon) ~klass:"Rel"
          ~params:[ ("holder", Value.Str t.t_proc) ]
          ()
      in
      let mon = mon_rt cfg t.t_mon in
      let waiter = { t with t_cont = rest } in
      let mon = set_cond_queue mon c (cond_queue mon c @ [ waiter ]) in
      let cfg = set_mon cfg t.t_mon { mon with m_last_rel = Some rel } in
      handover ctx cfg t.t_mon
  | MSignal c :: rest -> (
      let sig_h, cfg =
        chain cfg ~proc:t.t_proc ~element:(element_of_cond t.t_mon c) ~klass:"Signal" ()
      in
      let mon = mon_rt cfg t.t_mon in
      match cond_queue mon c with
      | [] -> exec_body ctx cfg { t with t_cont = rest }
      | waiter :: others ->
          (* Signal-and-urgent-wait: the signaller releases and parks on the
             urgent stack; the first waiter resumes immediately. *)
          let rel, cfg =
            chain cfg ~proc:t.t_proc ~element:(element_of_lock t.t_mon) ~klass:"Rel"
              ~params:[ ("holder", Value.Str t.t_proc) ]
              ()
          in
          let mon = mon_rt cfg t.t_mon in
          let mon = set_cond_queue mon c others in
          let mon =
            { mon with m_urgent = { t with t_cont = rest } :: mon.m_urgent; m_last_rel = Some rel }
          in
          let cfg = set_mon cfg t.t_mon mon in
          (* The waiter's Release is a join: enabled by the Signal (paper
             §8.2: by exactly one Signal — the uniqueness quantifies over
             Signals only) and by the waiter's own chain, preserving the
             waiting transaction's control continuity. *)
          let release, trace =
            Trace.emit_after cfg.trace ~actor:waiter.t_proc ~after:(Some sig_h)
              ~element:(element_of_cond t.t_mon c) ~klass:"Release" ()
          in
          let cfg = { cfg with trace } in
          let wrt = proc_rt cfg waiter.t_proc in
          let cfg = { cfg with trace = Trace.enable cfg.trace wrt.p_last release } in
          let cfg = set_proc cfg waiter.t_proc { wrt with p_last = release } in
          let acq, cfg =
            chain cfg ~proc:waiter.t_proc ~element:(element_of_lock t.t_mon)
              ~klass:"Acq"
              ~params:[ ("holder", Value.Str waiter.t_proc) ]
              ()
          in
          let cfg = { cfg with trace = Trace.enable cfg.trace rel acq } in
          exec_body ctx cfg waiter)

and finish_entry ctx cfg (t : tenure) retv =
  let end_h, cfg =
    chain cfg ~proc:t.t_proc ~element:(element_of_entry t.t_mon t.t_entry) ~klass:"End"
      ~params:[ ("value", retv) ]
      ()
  in
  let rel, cfg =
    chain cfg ~proc:t.t_proc ~element:(element_of_lock t.t_mon) ~klass:"Rel"
      ~params:[ ("holder", Value.Str t.t_proc) ]
      ()
  in
  (* The caller resumes: its Return is enabled by the entry's End. *)
  let ret, trace =
    Trace.emit_after cfg.trace ~actor:t.t_proc ~after:(Some end_h)
      ~element:(element_of_process t.t_proc) ~klass:"Return"
      ~params:[ ("value", retv) ]
      ()
  in
  let cfg = { cfg with trace } in
  let prt = proc_rt cfg t.t_proc in
  let locals =
    match t.t_bind with
    | Some x -> Expr.update prt.p_locals x retv
    | None -> prt.p_locals
  in
  let cfg =
    set_proc cfg t.t_proc
      { prt with p_locals = locals; p_state = Active t.t_pcont; p_last = ret }
  in
  let mon = mon_rt cfg t.t_mon in
  let cfg = set_mon cfg t.t_mon { mon with m_last_rel = Some rel } in
  handover ctx cfg t.t_mon

(* The lock has just been released; pick the next holder: urgent stack
   first (LIFO), then the entry queue (FIFO), else the lock goes free. *)
and handover ctx cfg mname =
  let mon = mon_rt cfg mname in
  match mon.m_urgent with
  | u :: rest ->
      let cfg = set_mon cfg mname { mon with m_urgent = rest } in
      let acq, cfg =
        chain cfg ~proc:u.t_proc ~element:(element_of_lock mname) ~klass:"Acq"
          ~params:[ ("holder", Value.Str u.t_proc) ]
          ()
      in
      let cfg =
        match (mon_rt cfg mname).m_last_rel with
        | Some rel when rel <> acq -> { cfg with trace = Trace.enable cfg.trace rel acq }
        | _ -> cfg
      in
      exec_body ctx cfg u
  | [] -> (
      match mon.m_entryq with
      | t :: rest ->
          let cfg = set_mon cfg mname { mon with m_entryq = rest } in
          let cfg = begin_tenure ctx cfg t in
          cfg
      | [] -> set_mon cfg mname { mon with m_busy = false })

(* Acquire the lock and start executing an entry body. The Acq is enabled
   by whatever last surrendered the monitor (the previous Rel, or the tail
   of initialization) — the lock token's causal chain keeps every monitor
   event temporally ordered. *)
and begin_tenure ctx cfg (t : tenure) =
  let acq, cfg =
    chain cfg ~proc:t.t_proc ~element:(element_of_lock t.t_mon) ~klass:"Acq"
      ~params:[ ("holder", Value.Str t.t_proc) ]
      ()
  in
  let cfg =
    match (mon_rt cfg t.t_mon).m_last_rel with
    | Some rel -> { cfg with trace = Trace.enable cfg.trace rel acq }
    | None -> cfg
  in
  let cfg = set_mon cfg t.t_mon { (mon_rt cfg t.t_mon) with m_busy = true } in
  let _, cfg =
    chain cfg ~proc:t.t_proc ~element:(element_of_entry t.t_mon t.t_entry) ~klass:"Begin"
      ~params:(List.map (fun (x, v) -> ("arg_" ^ x, v)) t.t_env)
      ()
  in
  exec_body ctx cfg t

(* ------------------------------------------------------------------ *)
(* Process macro-steps                                                 *)
(* ------------------------------------------------------------------ *)

(* Run one process until (and including) its next global action. Local
   statements commute with every other process and are bundled in. *)
let step_proc ctx cfg pname =
  let rec go cfg stmts =
    let rt = proc_rt cfg pname in
    match stmts with
    | [] -> set_proc cfg pname { rt with p_state = Proc_done }
    | PLocal (x, e) :: rest ->
        let v = Expr.eval rt.p_locals e in
        let cfg = set_proc cfg pname { rt with p_locals = Expr.update rt.p_locals x v } in
        go cfg rest
    | PIf (g, thens, elses) :: rest ->
        let branch = if Expr.eval_bool rt.p_locals g then thens else elses in
        go cfg (branch @ rest)
    | PWhile (g, body) :: rest ->
        if Expr.eval_bool rt.p_locals g then go cfg (body @ (PWhile (g, body) :: rest))
        else go cfg rest
    | PMark { klass; params } :: rest ->
        let vals = List.mapi (fun i e -> ("p" ^ string_of_int i, Expr.eval rt.p_locals e)) params in
        let _, cfg =
          chain cfg ~proc:pname ~element:(element_of_process pname) ~klass ~params:vals ()
        in
        go cfg rest
    | PRead { var; bind } :: rest ->
        let v =
          match List.assoc_opt var cfg.shared_store with
          | Some v -> v
          | None -> raise (Expr.Eval_error ("unknown shared variable " ^ var))
        in
        let _, cfg =
          chain cfg ~proc:pname ~element:var ~klass:"Getval" ~params:[ ("oldval", v) ] ()
        in
        let rt = proc_rt cfg pname in
        let cfg =
          set_proc cfg pname
            { rt with p_locals = Expr.update rt.p_locals bind v; p_state = Active rest }
        in
        cfg
    | PWrite { var; value } :: rest ->
        if not (List.mem_assoc var cfg.shared_store) then
          raise (Expr.Eval_error ("unknown shared variable " ^ var));
        let v = Expr.eval rt.p_locals value in
        let _, cfg =
          chain cfg ~proc:pname ~element:var ~klass:"Assign" ~params:[ ("newval", v) ] ()
        in
        let cfg = { cfg with shared_store = Expr.update cfg.shared_store var v } in
        let rt = proc_rt cfg pname in
        let cfg = set_proc cfg pname { rt with p_state = Active rest } in
        cfg
    | PCall { monitor; entry; args; bind } :: rest ->
        let mdef =
          match List.find_opt (fun m -> String.equal m.mon_name monitor) ctx.program.monitors with
          | Some m -> m
          | None -> raise (Expr.Eval_error ("unknown monitor " ^ monitor))
        in
        let edef = entry_def mdef entry in
        let argvals = List.map (Expr.eval rt.p_locals) args in
        if List.length argvals <> List.length edef.formals then
          raise (Expr.Eval_error ("arity mismatch calling " ^ monitor ^ "." ^ entry));
        let _, cfg =
          chain cfg ~proc:pname ~element:(element_of_process pname) ~klass:"Call"
            ~params:
              [ ("entry", Value.Str (monitor ^ "." ^ entry)); ("args", Value.List argvals) ]
            ()
        in
        let t =
          {
            t_mon = monitor;
            t_entry = entry;
            t_proc = pname;
            t_env = List.combine edef.formals argvals;
            t_cont = edef.body;
            t_bind = bind;
            t_pcont = rest;
          }
        in
        let cfg = set_proc cfg pname { (proc_rt cfg pname) with p_state = In_monitor } in
        let mon = mon_rt cfg monitor in
        if mon.m_busy then
          set_mon cfg monitor { mon with m_entryq = mon.m_entryq @ [ t ] }
        else begin_tenure ctx cfg t
  in
  match (proc_rt cfg pname).p_state with
  | Active stmts -> Some (go cfg stmts)
  | In_monitor | Proc_done -> None

(* Element footprint of the step that took [before] to [after]: elements
   of the events emitted, plus a representative element for every runtime
   component that changed — the process element for a process runtime, the
   monitor's lock element for a monitor runtime (queue membership, busy
   flag and store all live under the lock), and the variable's own element
   for the shared store. [set_proc]/[set_mon] keep unchanged runtimes
   physically identical, so a pointer comparison detects the changes. *)
let footprint before after =
  let touches = Trace.touched_elements ~before:before.trace after.trace in
  let touches =
    List.fold_left2
      (fun acc (n, r) (_, r') -> if r == r' then acc else element_of_process n :: acc)
      touches before.procs after.procs
  in
  let touches =
    List.fold_left2
      (fun acc (n, m) (_, m') -> if m == m' then acc else element_of_lock n :: acc)
      touches before.mons after.mons
  in
  let touches =
    if before.shared_store == after.shared_store then touches
    else
      List.fold_left
        (fun acc (v, value) ->
          match List.assoc_opt v before.shared_store with
          | Some old when old == value -> acc
          | _ -> v :: acc)
        touches after.shared_store
  in
  List.sort_uniq String.compare touches

let moves_fp ctx cfg =
  List.filter_map
    (fun (pname, rt) ->
      match rt.p_state with
      | Active _ ->
          Option.map
            (fun cfg' ->
              ({ Explore.label = pname; touches = footprint cfg cfg' }, cfg'))
            (step_proc ctx cfg pname)
      | In_monitor | Proc_done -> None)
    cfg.procs

let moves ctx cfg = List.map snd (moves_fp ctx cfg)

let terminated cfg =
  List.for_all
    (fun (_, rt) -> match rt.p_state with Proc_done -> true | Active _ | In_monitor -> false)
    cfg.procs

(* ------------------------------------------------------------------ *)
(* Initial configuration                                               *)
(* ------------------------------------------------------------------ *)

let initial ctx =
  let program = ctx.program in
  let trace = Trace.empty in
  let start, trace = Trace.emit trace ~element:main_element ~klass:"Start" () in
  (* Monitor initialization: Init event then initial Assigns, chained. *)
  let trace, mons =
    List.fold_left
      (fun (trace, mons) m ->
        let init_h, trace =
          Trace.emit_after trace ~after:(Some start) ~element:(element_of_init m.mon_name)
            ~klass:"Init" ()
        in
        let trace, init_tail =
          List.fold_left
            (fun (trace, prev) (v, value) ->
              let h, trace =
                Trace.emit_after trace ~after:(Some prev)
                  ~element:(element_of_var m.mon_name v) ~klass:"Assign"
                  ~params:[ ("newval", value); ("site", Value.Str "init") ]
                  ()
              in
              (trace, h))
            (trace, init_h) m.vars
        in
        let rt =
          {
            m_def = m;
            m_store = m.vars;
            m_conds = List.map (fun c -> (c, [])) m.conditions;
            m_urgent = [];
            m_entryq = [];
            m_busy = false;
            (* Initialization "releases" the monitor: the first Acq chains
               off the init tail, ordering init before every entry. *)
            m_last_rel = Some init_tail;
          }
        in
        (trace, (m.mon_name, rt) :: mons))
      (trace, []) program.monitors
  in
  (* Shared variables: initial Assigns chained off Start. *)
  let trace, _ =
    List.fold_left
      (fun (trace, prev) (v, value) ->
        let h, trace =
          Trace.emit_after trace ~after:(Some prev) ~element:v ~klass:"Assign"
            ~params:[ ("newval", value) ]
            ()
        in
        (trace, h))
      (trace, start) program.shared
  in
  let trace, procs =
    List.fold_left
      (fun (trace, procs) p ->
        let h, trace =
          Trace.emit_after trace ~actor:p.proc_name ~after:(Some start)
            ~element:(element_of_process p.proc_name) ~klass:"Start" ()
        in
        let rt =
          { p_def = p; p_locals = p.locals; p_state = Active p.code; p_last = h }
        in
        (trace, (p.proc_name, rt) :: procs))
      (trace, []) program.processes
  in
  {
    trace;
    procs = List.rev procs;
    mons = List.rev mons;
    shared_store = program.shared;
  }

(* ------------------------------------------------------------------ *)
(* Exploration                                                         *)
(* ------------------------------------------------------------------ *)

type outcome = {
  computations : Gem_model.Computation.t list;
  deadlocks : Gem_model.Computation.t list;
  explored : int;
  truncated : int;
  reduced : int;
  exhausted : Gem_check.Budget.reason option;
}

let groups_of_program program =
  List.map
    (fun m ->
      let members =
        Gem_model.Group.Elem (element_of_lock m.mon_name)
        :: Gem_model.Group.Elem (element_of_init m.mon_name)
        :: List.map (fun e -> Gem_model.Group.Elem (element_of_entry m.mon_name e.entry_name)) m.entries
        @ List.map (fun (v, _) -> Gem_model.Group.Elem (element_of_var m.mon_name v)) m.vars
        @ List.map (fun c -> Gem_model.Group.Elem (element_of_cond m.mon_name c)) m.conditions
      in
      Gem_model.Group.make m.mon_name members
        ~ports:
          [
            { Gem_model.Group.port_element = element_of_lock m.mon_name; port_class = "Acq" };
            { port_element = element_of_init m.mon_name; port_class = "Init" };
          ])
    program.monitors

let all_elements program =
  (main_element
   :: List.map (fun p -> element_of_process p.proc_name) program.processes)
  @ List.map fst program.shared
  @ List.concat_map
      (fun m ->
        element_of_lock m.mon_name :: element_of_init m.mon_name
        :: List.map (fun e -> element_of_entry m.mon_name e.entry_name) m.entries
        @ List.map (fun (v, _) -> element_of_var m.mon_name v) m.vars
        @ List.map (fun c -> element_of_cond m.mon_name c) m.conditions)
      program.monitors

let seal program cfg =
  Trace.to_computation ~extra_elements:(all_elements program)
    ~groups:(groups_of_program program) cfg.trace

(* Canonical state key for partial-order reduction: the trace's
   emission-order-independent fingerprint plus the runtime state with
   event handles replaced by stable event identities. Association lists
   whose insertion order varies across interleavings ([Expr.update]
   prepends, [set_cond_queue] reorders) are sorted by name, and
   marshalling disables sharing, so structurally equal states — in
   particular those reached by different interleavings of commuting moves
   — serialize to byte-equal keys. *)
let sorted_store (s : Expr.store) =
  List.sort (fun (a, _) (b, _) -> String.compare a b) s

let canon x = Marshal.to_string x [ Marshal.No_sharing ]

(* Exact canonical keys seal and marshal the whole configuration — the
   [--exact-keys] fallback path and the collision-audit oracle; the hot
   default is the incremental [fp_key] below. Both constructions share
   the Canon_key telemetry span. *)
let state_key program cfg =
  let span = Gem_obs.Telemetry.(span_begin Canon_key) in
  let comp = seal program cfg in
  let buf = Buffer.create 1024 in
  let id h =
    Explore.add_id buf (Gem_model.Computation.event comp h).Gem_model.Event.id
  in
  Explore.fingerprint_into buf comp;
  List.iter
    (fun (n, rt) ->
      Buffer.add_string buf n;
      id rt.p_last;
      (match rt.p_state with
      | Active stmts ->
          Buffer.add_char buf 'A';
          Buffer.add_string buf (canon stmts)
      | In_monitor -> Buffer.add_char buf 'M'
      | Proc_done -> Buffer.add_char buf 'D');
      Buffer.add_string buf (canon (sorted_store rt.p_locals)))
    cfg.procs;
  List.iter
    (fun (n, m) ->
      Buffer.add_string buf n;
      let conds = List.sort (fun (a, _) (b, _) -> String.compare a b) m.m_conds in
      Buffer.add_string buf
        (canon (sorted_store m.m_store, conds, m.m_urgent, m.m_entryq, m.m_busy));
      match m.m_last_rel with Some h -> id h | None -> Buffer.add_char buf '-')
    cfg.mons;
  Buffer.add_string buf (canon (sorted_store cfg.shared_store));
  let key = Buffer.contents buf in
  Gem_obs.Telemetry.(span_end Canon_key) span;
  key

(* Incremental 126-bit state fingerprint — same equivalence classes as
   [state_key] up to hash collisions, built without sealing or
   marshalling: the trace contributes its running history fingerprint
   (O(1) to read), event handles contribute their stable identity
   fingerprints, and runtime components are hashed structurally. Stores
   and condition-queue lists, whose insertion order varies across
   interleavings, are folded commutatively ([Fp.cadd]); binding and
   condition names are unique within one store/monitor, so multiset
   equality coincides with sorted-list equality. *)
let store_fp s =
  List.fold_left
    (fun acc (x, v) -> Fp.cadd acc (Fp.combine (Fp.of_string x) (Fp.of_struct v)))
    (Fp.of_int 0x57) s

let fp_key cfg =
  let span = Gem_obs.Telemetry.(span_begin Canon_key) in
  let idf = Trace.id_fp cfg.trace in
  let acc = ref (Trace.fp cfg.trace) in
  let mix x = acc := Fp.combine !acc x in
  List.iter
    (fun (n, rt) ->
      mix (Fp.of_string n);
      mix (idf rt.p_last);
      (match rt.p_state with
      | Active stmts -> mix (Fp.combine (Fp.of_int 1) (Fp.of_struct stmts))
      | In_monitor -> mix (Fp.of_int 2)
      | Proc_done -> mix (Fp.of_int 3));
      mix (store_fp rt.p_locals))
    cfg.procs;
  List.iter
    (fun (n, m) ->
      mix (Fp.of_string n);
      mix
        (List.fold_left
           (fun a (c, q) -> Fp.cadd a (Fp.combine (Fp.of_string c) (Fp.of_struct q)))
           (Fp.of_int 0xc0) m.m_conds);
      mix (Fp.of_struct (m.m_urgent, m.m_entryq, m.m_busy));
      mix (match m.m_last_rel with Some h -> idf h | None -> Fp.of_int 0x4e);
      mix (store_fp m.m_store))
    cfg.mons;
  mix (store_fp cfg.shared_store);
  Gem_obs.Telemetry.(span_end Canon_key) span;
  !acc

let explore ?(emit_getvals = false) ?reduction ?por ?exact_keys ?audit_keys
    ?max_steps ?max_configs ?budget ?jobs ?batch
    ?(resilience = Explore.no_resilience) program =
  let reduction = Explore.resolve_reduction ?reduction ?por () in
  let exact =
    match exact_keys with Some b -> b | None -> Explore.exact_keys_default ()
  in
  let auditing =
    match audit_keys with Some b -> b | None -> Explore.audit_keys_default ()
  in
  let jobs =
    match jobs with Some j -> j | None -> Gem_check.Par.jobs_default ()
  in
  let ctx = { program; emit_getvals } in
  let result =
    let key c =
      if exact then Explore.Exact (state_key program c)
      else Explore.Fp (fp_key c)
    in
    let audit = if auditing && not exact then Some (state_key program) else None in
    if reduction <> Explore.No_reduction then
      Explore.run ?max_steps ?max_configs ?budget ~key ?audit
        ~footprint:(moves_fp ctx) ~reduction ~jobs ?batch ~resilience
        ~moves:(moves ctx) ~terminated (initial ctx)
    else
      (* Without POR the plain walk is keyless — except in bitstate mode,
         where the bounded seen set needs a state key to memoize on (state
         keys identify computation-prefix classes, so the pruning stays
         sound; dedup collapses the interleavings either way). *)
      let key = if resilience.Explore.bitstate = None then None else Some key in
      let audit = if key = None then None else audit in
      Explore.run ?max_steps ?max_configs ?budget ?key ?audit ~jobs ?batch
        ~resilience
        ~moves:(moves ctx) ~terminated (initial ctx)
  in
  {
    computations = Explore.dedup_computations (seal program) result.completed;
    deadlocks = Explore.dedup_computations (seal program) result.deadlocked;
    explored = result.explored;
    truncated = result.truncated;
    reduced = result.reduced;
    exhausted = result.exhausted;
  }

(* Small-step interface for the POR differential harness. *)
let initial_config ?(emit_getvals = false) program =
  initial { program; emit_getvals }

let config_moves ?(emit_getvals = false) program cfg =
  moves_fp { program; emit_getvals } cfg

let config_key = state_key
let config_fp _program cfg = fp_key cfg
let config_terminated = terminated

let run_one ?(emit_getvals = false) ?(seed = 42) program =
  let ctx = { program; emit_getvals } in
  let rng = Random.State.make [| seed |] in
  let rec loop cfg =
    match moves ctx cfg with
    | [] -> cfg
    | ms -> loop (List.nth ms (Random.State.int rng (List.length ms)))
  in
  seal program (loop (initial ctx))

(* ------------------------------------------------------------------ *)
(* Mechanical translation to a GEM program specification               *)
(* ------------------------------------------------------------------ *)

let rec marker_decls_of_pstmts acc = function
  | [] -> acc
  | PMark { klass; params } :: rest ->
      let decl =
        {
          Gem_spec.Etype.klass;
          schema = List.mapi (fun i _ -> ("p" ^ string_of_int i, Gem_spec.Etype.P_any)) params;
        }
      in
      let acc =
        if List.exists (fun (d : Gem_spec.Etype.event_decl) -> String.equal d.klass klass) acc
        then acc
        else decl :: acc
      in
      marker_decls_of_pstmts acc rest
  | (PIf (_, a, b)) :: rest -> marker_decls_of_pstmts (marker_decls_of_pstmts (marker_decls_of_pstmts acc a) b) rest
  | (PWhile (_, a)) :: rest -> marker_decls_of_pstmts (marker_decls_of_pstmts acc a) rest
  | (PLocal _ | PCall _ | PRead _ | PWrite _) :: rest -> marker_decls_of_pstmts acc rest

(* Process element types vary per process (marker classes differ):
   generate one Etype per process. *)
let process_etype (p : process) =
  let markers = marker_decls_of_pstmts [] p.code in
  Gem_spec.Etype.make ("Process:" ^ p.proc_name)
    ~events:
      ([
         { Gem_spec.Etype.klass = "Start"; schema = [] };
         {
           klass = "Call";
           schema = [ ("entry", Gem_spec.Etype.P_str); ("args", Gem_spec.Etype.P_any) ];
         };
         { klass = "Return"; schema = [ ("value", Gem_spec.Etype.P_any) ] };
       ]
       @ List.rev markers)
    ()

(* Monitor-variable Assigns always carry the site tag. *)
let sited_variable_etype =
  Gem_spec.Etype.make "MonitorVariable"
    ~events:
      [
        {
          Gem_spec.Etype.klass = "Assign";
          schema = [ ("newval", Gem_spec.Etype.P_any); ("site", Gem_spec.Etype.P_str) ];
        };
        { klass = "Getval"; schema = [ ("oldval", Gem_spec.Etype.P_any) ] };
      ]
    ~restrictions:Gem_spec.Etype.variable.Gem_spec.Etype.restrictions
    ()

let lock_etype =
  Gem_spec.Etype.make "MonitorLock"
    ~events:
      [
        { Gem_spec.Etype.klass = "Acq"; schema = [ ("holder", Gem_spec.Etype.P_str) ] };
        { klass = "Rel"; schema = [ ("holder", Gem_spec.Etype.P_str) ] };
      ]
    ()

let entry_etype (e : entry) =
  Gem_spec.Etype.make "MonitorEntry"
    ~events:
      [
        {
          Gem_spec.Etype.klass = "Begin";
          schema = List.map (fun f -> ("arg_" ^ f, Gem_spec.Etype.P_any)) e.formals;
        };
        { klass = "End"; schema = [ ("value", Gem_spec.Etype.P_any) ] };
      ]
    ()

let condition_etype =
  Gem_spec.Etype.make "Condition"
    ~events:
      [
        { Gem_spec.Etype.klass = "Wait"; schema = [] };
        { klass = "Signal"; schema = [] };
        { klass = "Release"; schema = [] };
      ]
    ()

let init_etype =
  Gem_spec.Etype.make "Initialization"
    ~events:[ { Gem_spec.Etype.klass = "Init"; schema = [] } ]
    ()

let main_etype =
  Gem_spec.Etype.make "Main"
    ~events:[ { Gem_spec.Etype.klass = "Start"; schema = [] } ]
    ()

let lock_alternation m =
  let lock = element_of_lock m.mon_name in
  let open F in
  conj
    [
      forall
        [ ("a1", Cls_at (lock, "Acq")); ("a2", Cls_at (lock, "Acq")) ]
        (elem_lt "a1" "a2"
         ==> exists
               [ ("r", Cls_at (lock, "Rel")) ]
               (elem_lt "a1" "r" &&& elem_lt "r" "a2"));
      forall
        [ ("r1", Cls_at (lock, "Rel")); ("r2", Cls_at (lock, "Rel")) ]
        (elem_lt "r1" "r2"
         ==> exists
               [ ("a", Cls_at (lock, "Acq")) ]
               (elem_lt "r1" "a" &&& elem_lt "a" "r2"));
    ]

let release_needs_signal m c =
  let cond = element_of_cond m.mon_name c in
  Gem_spec.Abbrev.prerequisite (F.Cls_at (cond, "Signal")) (F.Cls_at (cond, "Release"))

(* The paper's §9 lemma: "all events occurring in monitor entries or
   initialization code are totally ordered by the temporal order". The
   domain covers entry, variable, condition and initialization elements —
   not the lock element, whose Rel is concurrent with the Release it hands
   over to (both follow the same Signal). *)
let entries_sequential m =
  let open F in
  let domain =
    Union
      (At_elem (element_of_init m.mon_name)
       :: List.map (fun e -> At_elem (element_of_entry m.mon_name e.entry_name)) m.entries
       @ List.map (fun (v, _) -> At_elem (element_of_var m.mon_name v)) m.vars
       @ List.map (fun c -> At_elem (element_of_cond m.mon_name c)) m.conditions)
  in
  forall
    [ ("x", domain); ("y", domain) ]
    (same "x" "y" ||| temp_lt "x" "y" ||| temp_lt "y" "x")

let language_spec ?name program =
  let spec_name = Option.value ~default:"monitor-program" name in
  let elements =
    [ (main_element, main_etype) ]
    @ List.map (fun p -> (element_of_process p.proc_name, process_etype p)) program.processes
    @ List.map (fun (v, _) -> (v, Gem_spec.Etype.variable)) program.shared
    @ List.concat_map
        (fun m ->
          [
            (element_of_lock m.mon_name, lock_etype);
            (element_of_init m.mon_name, init_etype);
          ]
          @ List.map (fun e -> (element_of_entry m.mon_name e.entry_name, entry_etype e)) m.entries
          @ List.map
              (fun (v, _) -> (element_of_var m.mon_name v, sited_variable_etype))
              m.vars
          @ List.map (fun c -> (element_of_cond m.mon_name c, condition_etype)) m.conditions)
        program.monitors
  in
  let restrictions =
    List.concat_map
      (fun m ->
        (m.mon_name ^ ".lock-alternation", lock_alternation m)
        :: (m.mon_name ^ ".entries-sequential", entries_sequential m)
        :: List.map
             (fun c -> (m.mon_name ^ "." ^ c ^ ".release-needs-signal", release_needs_signal m c))
             m.conditions)
      program.monitors
  in
  Gem_spec.Spec.make spec_name ~elements ~groups:(groups_of_program program)
    ~restrictions ()
