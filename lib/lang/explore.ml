module Budget = Gem_check.Budget
module Bitstate = Gem_check.Bitstate
module Spool = Gem_check.Spool
module Checkpoint = Gem_check.Checkpoint
module Faults = Gem_check.Faults
module T = Gem_obs.Telemetry
module Fp = Gem_order.Fingerprint
module Smap = Map.Make (String)

type move = { label : string; touches : string list }

(* [touches] lists are sorted and duplicate-free (the interpreters build
   them with [List.sort_uniq]), so disjointness is one merge walk — the
   sleep-set filter calls this for every (sleeping, fired) move pair, and
   the old nested [List.mem] scan was quadratic in footprint size. *)
let independent m1 m2 =
  T.hit T.Footprint_checks;
  let rec disjoint xs ys =
    match (xs, ys) with
    | [], _ | _, [] -> true
    | x :: xs', y :: ys' ->
        let c = String.compare x y in
        if c = 0 then false else if c < 0 then disjoint xs' ys else disjoint xs ys'
  in
  disjoint m1.touches m2.touches

(* ------------------------------------------------------------------ *)
(* Search keys                                                         *)
(* ------------------------------------------------------------------ *)

(* The seen tables are keyed either by a 126-bit state fingerprint
   (default: O(1) to extend per step, collision-bounded) or by the exact
   marshal-string canonical key (the [--exact-keys] fallback, and the
   audit oracle). The constructors are kept distinct so a single run can
   never confuse the two key spaces. *)
type skey = Fp of Fp.t | Exact of string

let skey_equal a b =
  match (a, b) with
  | Fp x, Fp y -> Fp.equal x y
  | Exact x, Exact y -> String.equal x y
  | Fp _, Exact _ | Exact _, Fp _ -> false

let skey_compare a b =
  match (a, b) with
  | Fp x, Fp y -> Fp.compare x y
  | Exact x, Exact y -> String.compare x y
  | Fp _, Exact _ -> -1
  | Exact _, Fp _ -> 1

let skey_hash = function Fp x -> Fp.hash x | Exact s -> Hashtbl.hash s

module Ktbl = Hashtbl.Make (struct
  type t = skey

  let equal = skey_equal
  let hash = skey_hash
end)

let exact_keys_default () =
  match Sys.getenv_opt "GEM_EXACT_KEYS" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

let audit_keys_default () =
  match Sys.getenv_opt "GEM_AUDIT_KEYS" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

type 'c result = {
  completed : 'c list;
  deadlocked : 'c list;
  truncated : int;
  explored : int;
  reduced : int;
  exhausted : Budget.reason option;
}

(* ------------------------------------------------------------------ *)
(* Resilience configuration                                            *)
(* ------------------------------------------------------------------ *)

type resilience = {
  bitstate : Bitstate.t option;
  spool : Spool.policy option;
  checkpoint : Checkpoint.ctl option;
  resume : string option;
  stamp : string;
  degrade_crashes : bool;
}

let no_resilience =
  {
    bitstate = None;
    spool = None;
    checkpoint = None;
    resume = None;
    stamp = "";
    degrade_crashes = false;
  }

exception Resume_error of string

(* Bitstate key of a (state, sleep set) pair. The sleep set must be part
   of the key: bitstate tables cannot store the per-key sleep-set lists
   the subset rule needs, so they fall back to pruning only exact
   (state, sleep) repeats — a strict refinement of the subset rule
   (fewer prunes, never an unsound one). The sleep contribution is a
   commutative sum of per-label hashes, so the key is independent of
   Smap iteration internals; with an empty sleep set the key is the bare
   state fingerprint, which makes plain-mode bitstate exactly a
   fixed-RAM version of the [run_plain] memo. *)
let bitstate_key k sleep =
  let base = match k with Fp f -> f | Exact s -> Fp.of_string s in
  if Smap.is_empty sleep then base
  else
    Fp.combine base
      (Smap.fold (fun l _ acc -> Fp.cadd acc (Fp.of_string l)) sleep Fp.zero)

let por_default () =
  match Sys.getenv_opt "GEM_NO_POR" with
  | Some ("1" | "true" | "yes") -> false
  | Some _ | None -> true

(* ------------------------------------------------------------------ *)
(* Reduction engine selection                                          *)
(* ------------------------------------------------------------------ *)

type reduction = No_reduction | Sleep_sets | Source_sets

let reduction_name = function
  | No_reduction -> "none"
  | Sleep_sets -> "sleep"
  | Source_sets -> "source"

let reduction_of_string = function
  | "none" -> Some No_reduction
  | "sleep" -> Some Sleep_sets
  | "source" -> Some Source_sets
  | _ -> None

(* GEM_REDUCTION names an engine directly; the older GEM_NO_POR switch
   (kept for compatibility with every script written against PR 2) is
   the fallback. The CLI validates both spellings strictly — an invalid
   GEM_REDUCTION there is a usage error, not a silent default. *)
let reduction_default () =
  match Option.bind (Sys.getenv_opt "GEM_REDUCTION") reduction_of_string with
  | Some r -> r
  | None -> if por_default () then Sleep_sets else No_reduction

let resolve_reduction ?reduction ?por () =
  match reduction with
  | Some r -> r
  | None -> (
      match por with
      | Some true -> Sleep_sets
      | Some false -> No_reduction
      | None -> reduction_default ())

(* Mutable walk state shared by both search strategies. Leaves are kept
   decorated with the search key computed when the configuration was
   admitted, so the canonical sort never recomputes a key. *)
type 'c walk = {
  mutable w_completed : (skey option * 'c) list;
  mutable w_deadlocked : (skey option * 'c) list;
  mutable w_truncated : int;
  mutable w_explored : int;
  mutable w_reduced : int;
  mutable w_exhausted : Budget.reason option;
}

let new_walk () =
  {
    w_completed = [];
    w_deadlocked = [];
    w_truncated = 0;
    w_explored = 0;
    w_reduced = 0;
    w_exhausted = None;
  }

(* Sticky stop: once any dimension is exhausted the walk unwinds without
   visiting further configurations, keeping the leaves found so far. *)
let stop w ~max_configs ~budget () =
  w.w_exhausted <> None
  ||
  if w.w_explored >= max_configs then begin
    w.w_exhausted <- Some Budget.Config_budget;
    true
  end
  else
    match budget with
    | None -> false
    | Some b ->
        if Budget.charge_config b then false
        else begin
          w.w_exhausted <- Budget.exhausted b;
          true
        end

(* Audit support: when an exact-key oracle is given, the seen tables store
   the oracle key recorded at first insert next to each entry; a hit whose
   oracle key differs is a fingerprint collision — a lossy merge that
   would silently prune a distinct state — and is counted. *)
let audit_mismatch prior exact =
  match (prior, exact) with
  | Some p, Some e when not (String.equal p e) -> T.hit T.Fingerprint_collisions
  | _ -> ()

(* Canonical leaf order: sort by the (already computed) search key so the
   result never depends on traversal order — sequential DFS, re-runs, and
   parallel schedules all assemble the same list. Without a key function
   the discovery order is kept (sequential runs are deterministic;
   parallel plain runs are canonicalized downstream by
   {!dedup_computations}). *)
let canonical_leaves ~keyed leaves =
  if not keyed then List.map snd leaves
  else begin
    let t = T.span_begin T.Merge in
    let cmp (a, _) (b, _) =
      match (a, b) with
      | Some a, Some b -> skey_compare a b
      | Some _, None -> -1
      | None, Some _ -> 1
      | None, None -> 0
    in
    let sorted = List.map snd (List.sort cmp leaves) in
    T.span_end T.Merge t;
    sorted
  end

let finish ~keyed w =
  {
    completed = canonical_leaves ~keyed (List.rev w.w_completed);
    deadlocked = canonical_leaves ~keyed (List.rev w.w_deadlocked);
    truncated = w.w_truncated;
    explored = w.w_explored;
    reduced = w.w_reduced;
    exhausted = w.w_exhausted;
  }

(* ------------------------------------------------------------------ *)
(* Plain bounded DFS (no reduction beyond optional key memoization)     *)
(* ------------------------------------------------------------------ *)

let run_plain ~max_steps ~max_configs ~budget ~key ~audit ~moves ~terminated init =
  let w = new_walk () in
  let seen : string option Ktbl.t = Ktbl.create 1024 in
  let exact_of c = match audit with None -> None | Some a -> Some (a c) in
  (* Returns the admitted configuration's key so the visit (and a leaf
     classification) can reuse it instead of keying again. *)
  let fresh d exact =
    let t = T.span_begin T.Seen_table in
    let novel =
      match Ktbl.find_opt seen d with
      | Some prior ->
          audit_mismatch prior exact;
          T.hit T.Memo_hits;
          false
      | None ->
          Ktbl.add seen d exact;
          T.hit T.Memo_misses;
          true
    in
    T.span_end T.Seen_table t;
    novel
  in
  let stop = stop w ~max_configs ~budget in
  let rec dfs depth kc config =
    if not (stop ()) then begin
      w.w_explored <- w.w_explored + 1;
      T.hit T.Configs_explored;
      if depth > max_steps then w.w_truncated <- w.w_truncated + 1
      else begin
        let t = T.span_begin T.Interp_step in
        let ms = moves config in
        T.span_end T.Interp_step t;
        match ms with
        | [] ->
            if terminated config then w.w_completed <- (kc, config) :: w.w_completed
            else w.w_deadlocked <- (kc, config) :: w.w_deadlocked
        | ms ->
            List.iter
              (fun c ->
                match key with
                | None -> dfs (depth + 1) None c
                | Some k ->
                    let d = k c in
                    if fresh d (exact_of c) then dfs (depth + 1) (Some d) c
                    else begin
                      w.w_reduced <- w.w_reduced + 1;
                      T.hit T.Configs_reduced
                    end)
              ms
      end
    end
  in
  (* The initial configuration belongs in the seen table too: a cycle back
     to the root must not re-explore it. *)
  let k0 =
    match key with
    | None -> None
    | Some k ->
        let d = k init in
        ignore (fresh d (exact_of init));
        Some d
  in
  dfs 0 k0 init;
  finish ~keyed:(key <> None) w

(* ------------------------------------------------------------------ *)
(* Sleep-set DFS over footprinted moves                                 *)
(* ------------------------------------------------------------------ *)

(* A sleeping move is kept with the footprint it had when put to sleep;
   by independence it stays enabled (same label, same footprint) until a
   dependent move fires and wakes it. *)

let subset z1 z2 = Smap.for_all (fun l _ -> Smap.mem l z2) z1

(* Has this state already been explored under a sleep set at least as
   permissive (i.e. a subset of [sleep])? If so, every continuation awake
   now was awake then, and the subtree is covered. Otherwise record
   [sleep] (dropping any recorded supersets it refines). The exact-key
   audit oracle, when present, rides along: recorded at first insert,
   compared on every arrival. *)
let covered seen k exact sleep =
  let t = T.span_begin T.Seen_table in
  let prior, olds =
    match Ktbl.find_opt seen k with
    | Some (prior, olds) -> (prior, olds)
    | None -> (None, [])
  in
  audit_mismatch prior exact;
  let hit =
    if List.exists (fun z -> subset z sleep) olds then begin
      T.hit T.Memo_hits;
      true
    end
    else begin
      let olds = List.filter (fun z -> not (subset sleep z)) olds in
      let prior = if olds = [] && prior = None then exact else prior in
      Ktbl.replace seen k (prior, sleep :: olds);
      T.hit T.Memo_misses;
      false
    end
  in
  T.span_end T.Seen_table t;
  hit

let run_sleep ~max_steps ~max_configs ~budget ~key ~audit ~footprint ~terminated
    init =
  let w = new_walk () in
  let seen : (string option * move Smap.t list) Ktbl.t = Ktbl.create 1024 in
  let exact_of c = match audit with None -> None | Some a -> Some (a c) in
  let stop = stop w ~max_configs ~budget in
  let rec dfs depth kc config sleep =
    if not (stop ()) then begin
      w.w_explored <- w.w_explored + 1;
      T.hit T.Configs_explored;
      if depth > max_steps then w.w_truncated <- w.w_truncated + 1
      else begin
        let t = T.span_begin T.Interp_step in
        let succs = footprint config in
        T.span_end T.Interp_step t;
        match succs with
        | [] ->
            if terminated config then w.w_completed <- (kc, config) :: w.w_completed
            else w.w_deadlocked <- (kc, config) :: w.w_deadlocked
        | succs ->
            let awake, asleep =
              List.partition (fun (m, _) -> not (Smap.mem m.label sleep)) succs
            in
            (* Sleeping successors are covered by an earlier sibling branch
               that fired the same move before this configuration's
               distinguishing step. *)
            w.w_reduced <- w.w_reduced + List.length asleep;
            T.add T.Sleep_prunes (List.length asleep);
            T.add T.Configs_reduced (List.length asleep);
            ignore
              (List.fold_left
                 (fun sleep (m, c') ->
                   (* The child may keep sleeping only the moves that
                      commute with [m]; a dependent move wakes up. *)
                   let child_sleep =
                     Smap.filter (fun _ z -> independent z m) sleep
                   in
                   visit depth c' child_sleep;
                   Smap.add m.label m sleep)
                 sleep awake)
      end
    end
  and visit depth c' child_sleep =
    match key with
    | None -> dfs (depth + 1) None c' child_sleep
    | Some k ->
        let d = k c' in
        if covered seen d (exact_of c') child_sleep then begin
          w.w_reduced <- w.w_reduced + 1;
          T.hit T.Configs_reduced
        end
        else dfs (depth + 1) (Some d) c' child_sleep
  in
  let k0 =
    match key with
    | None -> None
    | Some k ->
        let d = k init in
        ignore (covered seen d (exact_of init) Smap.empty);
        Some d
  in
  dfs 0 k0 init Smap.empty;
  finish ~keyed:(key <> None) w

(* ------------------------------------------------------------------ *)
(* Source-DPOR DFS (race-driven wakeups, no wakeup trees)              *)
(* ------------------------------------------------------------------ *)

(* Source-DPOR (Abdulla, Aronis, Jonsson, Sagonas 2014, wakeup-tree-free
   variant) inverts the sleep-set discipline: instead of expanding every
   awake successor and pruning arrivals after the fact, a frame starts
   with a single scheduled move and grows its backtrack set only when a
   *race* demands it. A race is a pair of dependent events on the DFS
   stack with no intermediate happens-before chain; reversing it may
   expose a new Mazurkiewicz trace, so an initial of the reversing
   sequence is scheduled at the earlier state. Awake successors that no
   race ever schedules are the engine's saving over sleep sets
   ([Source_prunes]).

   Happens-before is derived from the same pre-sorted move footprints
   the sleep engine uses: two moves with intersecting footprints are
   dependent, and every move of a process touches that process's
   element, so program order is contained in the relation.

   Statefulness. The engine reuses the sleep-set [covered] subset rule,
   which creates the classic stateful-DPOR hazard: pruning at a covered
   state discards the backtrack points the pruned subtree would have
   contributed to the *current* stack. Two mechanisms restore them:
   - every completed state records a summary of the distinct moves
     executed anywhere below it; a covered hit replays each summary
     move as a virtual next step through the ordinary race detector;
   - a hit on a state still open on the stack (a cycle) cannot know its
     summary, so every frame on the cycle segment is conservatively
     saturated (all awake successors scheduled — exactly the sleep-set
     expansion) and its summary poisoned to [Sat], which makes later
     consumers of the poisoned summaries saturate in turn. Cyclic
     regions thus degrade to sleep-set behavior; acyclic regions keep
     the full reduction. *)

module Iset = Set.Make (Int)

(* One executed step on the stack: the move and its transitive
   happens-before clock (indices of earlier entries ordered before it). *)
type sentry = { en_move : move; en_hb : Iset.t }

type summary = Sat | Moves of move list

let sum_add m = function
  | Sat -> Sat
  | Moves ms ->
      if
        List.exists
          (fun m' -> String.equal m'.label m.label && m'.touches = m.touches)
          ms
      then Moves ms
      else Moves (m :: ms)

let sum_merge a b =
  match (a, b) with
  | Sat, _ | _, Sat -> Sat
  | Moves xs, Moves b -> List.fold_left (fun acc m -> sum_add m acc) (Moves b) xs

(* A frame is one open state on the DFS stack: frame [d] is the state
   entry [d] was fired from. Backtrack/executed/skipped are keyed by
   move label, matching the sleep map; a label shared by several
   successors (a process at a choice point) schedules all of them. *)
type 'c sframe = {
  fr_succs : (move * 'c) list;
  fr_awake : (move * 'c) list;
  fr_backtrack : (string, unit) Hashtbl.t;
  fr_executed : (string, unit) Hashtbl.t;
  fr_skipped : (string, unit) Hashtbl.t;
  mutable fr_sleep : move Smap.t;
  mutable fr_sum : summary;
}

let run_source ~max_steps ~max_configs ~budget ~key ~audit ~footprint
    ~terminated init =
  let w = new_walk () in
  let seen : (string option * move Smap.t list) Ktbl.t = Ktbl.create 1024 in
  let sums : summary Ktbl.t = Ktbl.create 1024 in
  (* Depths of frames currently open under each key, deepest first —
     a hit on one of these is a cycle, not a completed-subtree prune. *)
  let open_depths : int list Ktbl.t = Ktbl.create 64 in
  let exact_of c = match audit with None -> None | Some a -> Some (a c) in
  let stop = stop w ~max_configs ~budget in
  let entries : sentry option array ref = ref (Array.make 64 None) in
  let frames = ref (Array.make 64 None) in
  let grow r d =
    let a = !r in
    let n = Array.length a in
    if d >= n then begin
      let a' = Array.make (max (2 * n) (d + 1)) None in
      Array.blit a 0 a' 0 n;
      r := a'
    end
  in
  let entry j =
    match (!entries).(j) with Some e -> e | None -> assert false
  in
  let frame j = match (!frames).(j) with Some f -> f | None -> assert false in
  let hb_of depth m =
    let hb = ref Iset.empty in
    for j = 0 to depth - 1 do
      let e = entry j in
      if not (independent e.en_move m) then
        hb := Iset.add j (Iset.union !hb e.en_hb)
    done;
    !hb
  in
  let backtrack_add fr l =
    if not (Hashtbl.mem fr.fr_backtrack l) then begin
      Hashtbl.replace fr.fr_backtrack l ();
      T.hit T.Backtrack_points
    end
  in
  let saturate_frame fr =
    List.iter (fun (m, _) -> backtrack_add fr m.label) fr.fr_awake
  in
  (* Saturate every frame on [dlo..dhi] and poison their summaries:
     the subtree that should have refined their backtrack sets was
     pruned with unknown contents. *)
  let saturate_range dlo dhi =
    for p = dlo to dhi do
      let fr = frame p in
      saturate_frame fr;
      fr.fr_sum <- Sat
    done
  in
  (* Race detection for an event at stack position [pos] (executed
     entries occupy [0 .. pos-1]) with move [m] and clock [hb]. For
     every earlier event [j] directly dependent on [m] with no
     intermediate happens-before chain, compute the reversing sequence
     v = notdep(j) . m and schedule one of its initials at frame [j];
     when no initial is enabled there, fall back to the classic DPOR
     full fill. An initial asleep at frame [j] means the reversal is
     already covered by an earlier sibling branch — no point needed. *)
  let race_detect pos m hb =
    for j = pos - 1 downto 0 do
      let ej = entry j in
      if not (independent ej.en_move m) then begin
        let immediate = ref true in
        for k = j + 1 to pos - 1 do
          if
            !immediate
            && Iset.mem k hb
            && Iset.mem j (entry k).en_hb
          then immediate := false
        done;
        if !immediate then begin
          T.hit T.Races_detected;
          let frj = frame j in
          let vs = ref [] in
          for k = pos - 1 downto j + 1 do
            if not (Iset.mem j (entry k).en_hb) then vs := k :: !vs
          done;
          let vs = !vs in
          let minimal_in_v p php =
            List.for_all (fun q -> q = p || not (Iset.mem q php)) vs
          in
          let inits =
            List.filter_map
              (fun p ->
                if minimal_in_v p (entry p).en_hb then
                  Some (entry p).en_move.label
                else None)
              vs
          in
          let inits =
            inits @ (if minimal_in_v pos hb then [ m.label ] else [])
          in
          let enabled_inits =
            List.sort_uniq String.compare
              (List.filter
                 (fun l ->
                   List.exists
                     (fun (mm, _) -> String.equal mm.label l)
                     frj.fr_succs)
                 inits)
          in
          if
            not
              (List.exists
                 (fun l -> Hashtbl.mem frj.fr_backtrack l)
                 enabled_inits)
          then begin
            match
              List.filter
                (fun l -> not (Smap.mem l frj.fr_sleep))
                enabled_inits
            with
            | l :: _ -> backtrack_add frj l
            | [] -> if enabled_inits = [] then saturate_frame frj
          end
        end
      end
    done
  in
  let next_pick fr =
    List.find_opt
      (fun (m, _) ->
        Hashtbl.mem fr.fr_backtrack m.label
        && (not (Hashtbl.mem fr.fr_executed m.label))
        && not (Hashtbl.mem fr.fr_skipped m.label))
      fr.fr_awake
  in
  (* [dfs] returns the subtree summary for the parent to absorb. *)
  let rec dfs depth kc config sleep =
    if stop () then Moves []
    else begin
      w.w_explored <- w.w_explored + 1;
      T.hit T.Configs_explored;
      if depth > max_steps then begin
        w.w_truncated <- w.w_truncated + 1;
        Moves []
      end
      else begin
        let t = T.span_begin T.Interp_step in
        let succs = footprint config in
        T.span_end T.Interp_step t;
        match succs with
        | [] ->
            if terminated config then
              w.w_completed <- (kc, config) :: w.w_completed
            else w.w_deadlocked <- (kc, config) :: w.w_deadlocked;
            Moves []
        | succs -> (
            let awake, asleep =
              List.partition (fun (m, _) -> not (Smap.mem m.label sleep)) succs
            in
            w.w_reduced <- w.w_reduced + List.length asleep;
            T.add T.Sleep_prunes (List.length asleep);
            T.add T.Configs_reduced (List.length asleep);
            match awake with
            | [] -> Moves []
            | (m0, _) :: _ ->
                grow frames depth;
                let fr =
                  {
                    fr_succs = succs;
                    fr_awake = awake;
                    fr_backtrack = Hashtbl.create 8;
                    fr_executed = Hashtbl.create 8;
                    fr_skipped = Hashtbl.create 8;
                    fr_sleep = sleep;
                    fr_sum = Moves [];
                  }
                in
                (!frames).(depth) <- Some fr;
                (match kc with
                | Some k ->
                    let ds =
                      match Ktbl.find_opt open_depths k with
                      | Some l -> l
                      | None -> []
                    in
                    Ktbl.replace open_depths k (depth :: ds)
                | None -> ());
                backtrack_add fr m0.label;
                let rec loop () =
                  if not (stop ()) then
                    match next_pick fr with
                    | None -> ()
                    | Some (m, _) ->
                        let l = m.label in
                        if Smap.mem l fr.fr_sleep then begin
                          Hashtbl.replace fr.fr_skipped l ();
                          loop ()
                        end
                        else begin
                          Hashtbl.replace fr.fr_executed l ();
                          (* All successors sharing the scheduled label
                             fire, mirroring the sleep engine's fold. *)
                          List.iter
                            (fun (m, c') ->
                              if
                                String.equal m.label l && not (stop ())
                              then begin
                                grow entries depth;
                                (!entries).(depth) <-
                                  Some
                                    { en_move = m; en_hb = hb_of depth m };
                                race_detect depth m (entry depth).en_hb;
                                let child_sleep =
                                  Smap.filter
                                    (fun _ z -> independent z m)
                                    fr.fr_sleep
                                in
                                visit depth fr m c' child_sleep;
                                (!entries).(depth) <- None;
                                fr.fr_sleep <- Smap.add l m fr.fr_sleep
                              end)
                            fr.fr_awake;
                          loop ()
                        end
                in
                loop ();
                (* Completion accounting: every awake successor is
                   executed, skipped asleep (covered by the sibling that
                   put it to sleep), or never scheduled by any race —
                   the source prune. Unexecuted leftovers of a stopped
                   frame are budget cuts, not prunes. *)
                let n_skip =
                  List.length
                    (List.filter
                       (fun (m, _) -> Hashtbl.mem fr.fr_skipped m.label)
                       fr.fr_awake)
                in
                if n_skip > 0 then begin
                  w.w_reduced <- w.w_reduced + n_skip;
                  T.add T.Sleep_prunes n_skip;
                  T.add T.Configs_reduced n_skip
                end;
                if w.w_exhausted = None then begin
                  let n_src =
                    List.length
                      (List.filter
                         (fun (m, _) ->
                           (not (Hashtbl.mem fr.fr_executed m.label))
                           && not (Hashtbl.mem fr.fr_skipped m.label))
                         fr.fr_awake)
                  in
                  if n_src > 0 then begin
                    w.w_reduced <- w.w_reduced + n_src;
                    T.add T.Source_prunes n_src;
                    T.add T.Configs_reduced n_src
                  end
                end;
                (match kc with
                | Some k ->
                    (match Ktbl.find_opt open_depths k with
                    | Some (d :: ds) ->
                        assert (d = depth);
                        if ds = [] then Ktbl.remove open_depths k
                        else Ktbl.replace open_depths k ds
                    | _ -> ());
                    let merged =
                      match Ktbl.find_opt sums k with
                      | Some s -> sum_merge s fr.fr_sum
                      | None -> fr.fr_sum
                    in
                    Ktbl.replace sums k merged
                | None -> ());
                (!frames).(depth) <- None;
                fr.fr_sum)
      end
    end
  (* The edge entry for [m] is already on the stack at [depth] when
     [visit] runs, so virtual summary events sit at [depth + 1]. *)
  and visit depth fr m c' child_sleep =
    match key with
    | None ->
        let s = dfs (depth + 1) None c' child_sleep in
        fr.fr_sum <- sum_add m (sum_merge fr.fr_sum s)
    | Some k ->
        let d = k c' in
        if covered seen d (exact_of c') child_sleep then begin
          w.w_reduced <- w.w_reduced + 1;
          T.hit T.Configs_reduced;
          match Ktbl.find_opt open_depths d with
          | Some (_ :: _ as ds) ->
              (* Cycle: the pruned continuation is the open frame's
                 still-unknown subtree. Frames on the cycle segment
                 lose its race contributions — saturate them. *)
              let dx = List.fold_left min depth ds in
              saturate_range dx depth;
              fr.fr_sum <- Sat
          | Some [] | None -> (
              match Ktbl.find_opt sums d with
              | Some (Moves ms) ->
                  List.iter
                    (fun sm ->
                      race_detect (depth + 1) sm (hb_of (depth + 1) sm))
                    ms;
                  fr.fr_sum <-
                    sum_add m (sum_merge fr.fr_sum (Moves ms))
              | Some Sat | None ->
                  (* Unknown subtree contents: conservatively saturate
                     the whole open stack. *)
                  saturate_range 0 depth;
                  fr.fr_sum <- Sat)
        end
        else begin
          let s = dfs (depth + 1) (Some d) c' child_sleep in
          fr.fr_sum <- sum_add m (sum_merge fr.fr_sum s)
        end
  in
  let k0 =
    match key with
    | None -> None
    | Some k ->
        let d = k init in
        ignore (covered seen d (exact_of init) Smap.empty);
        Some d
  in
  ignore (dfs 0 k0 init Smap.empty);
  finish ~keyed:(key <> None) w

(* ------------------------------------------------------------------ *)
(* Domain-parallel work-stealing exploration                            *)
(* ------------------------------------------------------------------ *)

(* The parallel walk reuses the sequential semantics wholesale: a task is
   a (depth, configuration, key, sleep set) tuple, expanding a task
   applies exactly the sequential successor/sleep-set computation, and
   the seen-table discipline is the same subset rule — only behind a
   sharded lock, since domains race to record coverage. The subset rule's
   soundness argument is order-free (a pruned visit is covered by
   whichever visit recorded the smaller sleep set, and every recorded
   visit is fully expanded), so racing traversals can change how much is
   explored but never which computations exist; downstream deduplication
   and the canonical leaf order make the rendered results byte-identical
   to a sequential run's. *)

type 'c ptask = {
  pt_depth : int;
  pt_config : 'c;
  pt_key : skey option;
  pt_sleep : move Smap.t;
}

type 'c par_mode =
  | Par_plain of ('c -> 'c list)
  | Par_sleep of ('c -> (move * 'c) list)

(* One deque per domain, carrying *chunks* of tasks (at most [batch]
   each): the owner pushes and pops at the head (keeping the walk
   depth-first-ish, which bounds frontier memory); an idle domain steals
   a whole chunk from the head of a victim's deque. Moving dozens of
   tasks per lock acquisition is what makes the queue traffic negligible
   — the old per-task discipline spent more time on deque mutexes than
   on interpreter steps for small-state workloads. *)
type 'c deque = { mutable dq_chunks : 'c ptask list list; dq_lock : Mutex.t }

let deque_push dq chunk =
  Mutex.protect dq.dq_lock (fun () -> dq.dq_chunks <- chunk :: dq.dq_chunks)

let deque_pop dq =
  Mutex.protect dq.dq_lock (fun () ->
      match dq.dq_chunks with
      | [] -> None
      | c :: rest ->
          dq.dq_chunks <- rest;
          Some c)

(* Sharded seen table. Both search modes use the sleep-set [covered]
   subset rule: the plain search passes empty sleep sets, for which the
   rule degenerates to exactly the add-if-absent memoization of
   [run_plain]. Shard count is a power of two well above any sane domain
   count, so two domains rarely contend on one lock. *)
let n_shards = 64

type shards = {
  sh_tables : ((string option * move Smap.t list) Ktbl.t * Mutex.t) array;
}

let make_shards () =
  { sh_tables = Array.init n_shards (fun _ -> (Ktbl.create 256, Mutex.create ())) }

(* Shard index straight from the fingerprint's (already well-mixed) low
   bits — no rehash of the key on this path. *)
let shard_index = function
  | Fp f -> Fp.to_int f land (n_shards - 1)
  | Exact s -> Hashtbl.hash s land (n_shards - 1)

(* [try_lock]-then-[lock] rather than [Mutex.protect]: a failed try is a
   real contention event worth counting (two domains racing for one
   shard), and [covered] cannot raise, so manual unlock is safe. *)
let shard_covered sh k exact sleep =
  let table, lock = sh.sh_tables.(shard_index k) in
  if not (Mutex.try_lock lock) then begin
    T.hit T.Shard_collisions;
    Mutex.lock lock
  end;
  let hit = covered table k exact sleep in
  Mutex.unlock lock;
  hit

(* Seen-table lookup shared by the bitstate-capable engines: [`Full]
   (table at its load cap) is treated as a hit — the arrival is pruned,
   coverage is lost, and the dedicated counter records it; counting it
   as a memo hit too preserves the conservation invariant
   [Configs_reduced = Sleep_prunes + Memo_hits]. The optional audit
   table rides along exactly like the exact-key oracle of the table
   engines: exact key recorded at first insert, compared on every hit. *)
let bitstate_covered b audit_tbl k exact sleep =
  let t = T.span_begin T.Seen_table in
  let f = bitstate_key k sleep in
  let hit =
    match Bitstate.add b f with
    | `New ->
        (match audit_tbl with
        | Some (tbl, m) -> Mutex.protect m (fun () -> Ktbl.replace tbl (Fp f) exact)
        | None -> ());
        T.hit T.Memo_misses;
        false
    | `Seen ->
        (match audit_tbl with
        | Some (tbl, m) ->
            Mutex.protect m (fun () ->
                audit_mismatch (Option.join (Ktbl.find_opt tbl (Fp f))) exact)
        | None -> ());
        T.hit T.Memo_hits;
        true
    | `Full ->
        T.hit T.Bitstate_saturated_prunes;
        T.hit T.Memo_hits;
        true
  in
  T.span_end T.Seen_table t;
  hit

(* Domain-local seen cache: a direct-mapped fingerprint table (two int
   lanes per slot, no locks, no sharing) consulted before the shared
   shards. Soundness rests on what is allowed in: a fingerprint enters
   the cache only after a *shared* probe made with the empty sleep set,
   which guarantees the shared table holds (or the frontier holds, for a
   fresh miss) a record of that state explored under sleep = {}. An
   empty-sleep record covers any later arrival under the subset rule
   ({} is a subset of every sleep set), so a cache hit may prune
   unconditionally. Eviction (a new fingerprint landing on the same
   slot) merely loses the shortcut — the arrival falls through to the
   shared probe — so a stale or clobbered cache can only cause
   re-probing, never a missed state. Exact-key runs and audit runs skip
   the cache entirely: exact keys have no compact fingerprint form, and
   the audit oracle must observe every arrival. *)
let lc_bits = 13

let lc_size = 1 lsl lc_bits

type local_cache = { lc_hi : int array; lc_lo : int array }

let make_local_cache () =
  { lc_hi = Array.make lc_size 0; lc_lo = Array.make lc_size 0 }

let lc_slot f = Fp.to_int f land (lc_size - 1)

let lc_mem lc (f : Fp.t) =
  let i = lc_slot f in
  lc.lc_hi.(i) = f.Fp.hi && lc.lc_lo.(i) = f.Fp.lo

let lc_add lc (f : Fp.t) =
  if not (f.Fp.hi = 0 && f.Fp.lo = 0) then begin
    let i = lc_slot f in
    lc.lc_hi.(i) <- f.Fp.hi;
    lc.lc_lo.(i) <- f.Fp.lo
  end

(* Per-worker mutable state: the local cache plus the pending buffer
   where surviving children accumulate until they form a full chunk.
   Both are owned by exactly one domain — no locks. *)
type 'c wstate = {
  ws_lc : local_cache;
  mutable ws_pending : 'c ptask list;
  mutable ws_pending_n : int;
}

let run_par ~jobs ~batch ~max_steps ~max_configs ~budget ~key ~audit ~mode ~bits
    ~crash ~terminated init =
  let explored = Atomic.make 0
  and truncated = Atomic.make 0
  and reduced = Atomic.make 0
  and exhausted = Atomic.make None
  and in_flight = Atomic.make 0
  and failure = Atomic.make None in
  let add counter n = ignore (Atomic.fetch_and_add counter n) in
  let stop reason = ignore (Atomic.compare_and_set exhausted None (Some reason)) in
  let seen_shards, bit_audit =
    match bits with
    | Some _ ->
        ( None,
          if audit = None then None else Some (Ktbl.create 1024, Mutex.create ())
        )
    | None -> (Some (make_shards ()), None)
  in
  let probe_one k exact sleep =
    match (bits, seen_shards) with
    | Some b, _ -> bitstate_covered b bit_audit k exact sleep
    | None, Some sh -> shard_covered sh k exact sleep
    | None, None -> assert false
  in
  let exact_of c = match audit with None -> None | Some a -> Some (a c) in
  (* Audit runs must present every arrival to the exact-key oracle, so
     the domain-local cache (which short-circuits arrivals) is off. *)
  let use_cache = audit = None in
  let deques =
    Array.init jobs (fun _ -> { dq_chunks = []; dq_lock = Mutex.create () })
  in
  (* The root frontier is dealt round-robin across the per-domain queues
     until every domain has had a few chunks; after that each domain
     feeds itself and imbalance is corrected by chunk stealing.
     [in_flight] counts *chunks* (queued or being processed), one
     amortized increment/decrement per [batch] tasks instead of one per
     task; a worker flushes its partial pending chunk before
     decrementing the chunk it processed, so [in_flight = 0] still
     implies global quiescence. *)
  let rr = Atomic.make 0 in
  let push_chunk owner chunk =
    Atomic.incr in_flight;
    let target =
      let n = Atomic.get rr in
      if n < 4 * jobs then Atomic.fetch_and_add rr 1 mod jobs else owner
    in
    deque_push deques.(target) chunk
  in
  (* Survivors buffer into the worker's pending list; full chunks are
     handed off immediately, and the partial remainder is flushed at the
     end of every chunk — so a tiny frontier (fewer configurations than
     [batch]) still reaches the deques instead of parking in a buffer
     that never fills. *)
  let flush owner st =
    if st.ws_pending_n > 0 then begin
      let chunk = List.rev st.ws_pending in
      st.ws_pending <- [];
      st.ws_pending_n <- 0;
      push_chunk owner chunk
    end
  in
  let enqueue owner st task =
    st.ws_pending <- task :: st.ws_pending;
    st.ws_pending_n <- st.ws_pending_n + 1;
    if st.ws_pending_n >= batch then flush owner st
  in
  (* Mirrors the sequential [stop]: claim the visit before doing it, and
     surrender the claim (so [explored <= max_configs] holds in the final
     tally) when a cap or the budget refuses it. *)
  let claim_visit () =
    Atomic.get exhausted = None
    &&
    let n = Atomic.fetch_and_add explored 1 in
    if n >= max_configs then begin
      Atomic.decr explored;
      stop Budget.Config_budget;
      false
    end
    else
      match budget with
      | None ->
          T.hit T.Configs_explored;
          true
      | Some b ->
          if Budget.charge_config b then begin
            T.hit T.Configs_explored;
            true
          end
          else begin
            Atomic.decr explored;
            (match Budget.exhausted b with
            | Some r -> stop r
            | None -> stop Budget.Config_budget);
            false
          end
  in
  let completed = Array.init jobs (fun _ -> ref [])
  and deadlocked = Array.init jobs (fun _ -> ref []) in
  let classify owner task =
    if terminated task.pt_config then
      completed.(owner) := (task.pt_key, task.pt_config) :: !(completed.(owner))
    else deadlocked.(owner) := (task.pt_key, task.pt_config) :: !(deadlocked.(owner))
  in
  (* Phase 1 of a chunk: expand one task, prepending its raw children
     (depth, configuration, child sleep set) to the accumulator in
     reverse — the chunk processor reverses once at the end, so children
     keep the deterministic task-order-then-successor-order sequence the
     sequential engines produce. *)
  let expand owner task acc =
    if not (claim_visit ()) then acc
    else if task.pt_depth > max_steps then begin
      Atomic.incr truncated;
      acc
    end
    else
      match mode with
      | Par_plain moves -> (
          let t = T.span_begin T.Interp_step in
          let cs = moves task.pt_config in
          T.span_end T.Interp_step t;
          match cs with
          | [] ->
              classify owner task;
              acc
          | cs ->
              List.fold_left
                (fun acc c -> (task.pt_depth + 1, c, Smap.empty) :: acc)
                acc cs)
      | Par_sleep footprint -> (
          let t = T.span_begin T.Interp_step in
          let succs = footprint task.pt_config in
          T.span_end T.Interp_step t;
          match succs with
          | [] ->
              classify owner task;
              acc
          | succs ->
              let awake, asleep =
                List.partition
                  (fun (m, _) -> not (Smap.mem m.label task.pt_sleep))
                  succs
              in
              add reduced (List.length asleep);
              T.add T.Sleep_prunes (List.length asleep);
              T.add T.Configs_reduced (List.length asleep);
              let _, acc =
                List.fold_left
                  (fun (sleep, acc) (m, c') ->
                    let child_sleep =
                      Smap.filter (fun _ z -> independent z m) sleep
                    in
                    ( Smap.add m.label m sleep,
                      (task.pt_depth + 1, c', child_sleep) :: acc ))
                  (task.pt_sleep, acc) awake
              in
              acc)
  in
  (* Phase 2 of a chunk: seen-filter the whole chunk's children at once.
     Keys are computed up front; the domain-local cache is consulted
     first (no synchronization); the remaining probes are grouped by
     shard and issued under one lock acquisition per shard per chunk.
     Like the old per-task push filter, a child's key is recorded before
     the task is queued, so a racing domain that arrives at the same
     state prunes and relies on this task being processed. Survivors are
     enqueued in their original deterministic order, with their keys
     attached for the canonical leaf sort. *)
  let probe_chunk owner st children =
    match key with
    | None ->
        List.iter
          (fun (depth, c, sleep) ->
            enqueue owner st
              { pt_depth = depth; pt_config = c; pt_key = None; pt_sleep = sleep })
          children
    | Some k ->
        let arr = Array.of_list children in
        let n = Array.length arr in
        if n > 0 then begin
          let keys = Array.map (fun (_, c, _) -> k c) arr in
          let exacts =
            match audit with
            | None -> None
            | Some _ -> Some (Array.map (fun (_, c, _) -> exact_of c) arr)
          in
          let ex i = match exacts with None -> None | Some a -> a.(i) in
          (* 0 = live, 1 = pruned by local cache, 2 = pruned by shared *)
          let pruned = Array.make n 0 in
          if use_cache then
            Array.iteri
              (fun i ks ->
                match ks with
                | Fp f when lc_mem st.ws_lc f -> pruned.(i) <- 1
                | Fp _ | Exact _ -> ())
              keys;
          let cacheable i sleep =
            if use_cache && Smap.is_empty sleep then
              match keys.(i) with Fp f -> lc_add st.ws_lc f | Exact _ -> ()
          in
          (match (bits, seen_shards) with
          | Some b, _ ->
              let idxs = ref [] in
              for i = n - 1 downto 0 do
                if pruned.(i) = 0 then idxs := i :: !idxs
              done;
              let idxs = Array.of_list !idxs in
              let fps =
                Array.map
                  (fun i ->
                    let _, _, sleep = arr.(i) in
                    bitstate_key keys.(i) sleep)
                  idxs
              in
              let t = T.span_begin T.Seen_table in
              let res = Bitstate.add_batch b fps in
              Array.iteri
                (fun j i ->
                  let _, _, sleep = arr.(i) in
                  match res.(j) with
                  | `New ->
                      (match bit_audit with
                      | Some (tbl, m) ->
                          Mutex.protect m (fun () ->
                              Ktbl.replace tbl (Fp fps.(j)) (ex i))
                      | None -> ());
                      T.hit T.Memo_misses;
                      cacheable i sleep
                  | `Seen ->
                      (match bit_audit with
                      | Some (tbl, m) ->
                          Mutex.protect m (fun () ->
                              audit_mismatch
                                (Option.join (Ktbl.find_opt tbl (Fp fps.(j))))
                                (ex i))
                      | None -> ());
                      T.hit T.Memo_hits;
                      T.hit T.Batch_probe_hits;
                      cacheable i sleep;
                      pruned.(i) <- 2
                  | `Full ->
                      T.hit T.Bitstate_saturated_prunes;
                      T.hit T.Memo_hits;
                      T.hit T.Batch_probe_hits;
                      pruned.(i) <- 2)
                idxs;
              T.span_end T.Seen_table t
          | None, Some sh ->
              let buckets = Array.make n_shards [] in
              for i = n - 1 downto 0 do
                if pruned.(i) = 0 then begin
                  let si = shard_index keys.(i) in
                  buckets.(si) <- i :: buckets.(si)
                end
              done;
              Array.iteri
                (fun si bucket ->
                  match bucket with
                  | [] -> ()
                  | bucket ->
                      let table, lock = sh.sh_tables.(si) in
                      if not (Mutex.try_lock lock) then begin
                        T.hit T.Shard_collisions;
                        Mutex.lock lock
                      end;
                      List.iter
                        (fun i ->
                          let _, _, sleep = arr.(i) in
                          if covered table keys.(i) (ex i) sleep then begin
                            T.hit T.Batch_probe_hits;
                            pruned.(i) <- 2
                          end;
                          cacheable i sleep)
                        bucket;
                      Mutex.unlock lock)
                buckets
          | None, None -> assert false);
          for i = 0 to n - 1 do
            match pruned.(i) with
            | 1 ->
                Atomic.incr reduced;
                T.hit T.Configs_reduced;
                T.hit T.Local_cache_hits
            | 2 ->
                Atomic.incr reduced;
                T.hit T.Configs_reduced
            | _ ->
                let depth, c, sleep = arr.(i) in
                enqueue owner st
                  {
                    pt_depth = depth;
                    pt_config = c;
                    pt_key = Some keys.(i);
                    pt_sleep = sleep;
                  }
          done
        end
  in
  let take i =
    match deque_pop deques.(i) with
    | Some _ as c -> c
    | None ->
        let rec steal d =
          if d >= jobs then None
          else
            match deque_pop deques.((i + d) mod jobs) with
            | Some chunk ->
                T.hit T.Batches_stolen;
                T.add T.Deque_steals (List.length chunk);
                Some chunk
            | None -> steal (d + 1)
        in
        steal 1
  in
  let worker i =
    let st =
      { ws_lc = make_local_cache (); ws_pending = []; ws_pending_n = 0 }
    in
    let rec loop () =
      if Atomic.get exhausted = None && Atomic.get failure = None then
        match take i with
        | Some chunk ->
            (try
               let children =
                 List.fold_left (fun acc t -> expand i t acc) [] chunk
               in
               probe_chunk i st (List.rev children);
               (* Flush the partial pending chunk *before* giving up this
                  chunk's in-flight unit: [in_flight = 0] must imply no
                  task exists anywhere, queued or buffered. *)
               flush i st
             with e ->
               let bt = Printexc.get_raw_backtrace () in
               ignore (Atomic.compare_and_set failure None (Some (e, bt))));
            Atomic.decr in_flight;
            loop ()
        | None ->
            if Atomic.get in_flight > 0 then begin
              Domain.cpu_relax ();
              loop ()
            end
    in
    loop ()
  in
  let k0 =
    match key with
    | None -> None
    | Some k ->
        let d = k init in
        ignore (probe_one d (exact_of init) Smap.empty);
        Some d
  in
  push_chunk 0
    [ { pt_depth = 0; pt_config = init; pt_key = k0; pt_sleep = Smap.empty } ];
  (* Satellite fix (domain teardown): nothing may escape a worker domain
     un-recorded. [process] exceptions are caught per task, but an
     exception anywhere else in the loop (the deques, telemetry, a stack
     overflow) used to kill the domain silently — its claimed task never
     left [in_flight], and every other domain spun forever on
     [in_flight > 0]. The blanket wrap records such a failure in the
     same first-failure-wins cell, which every worker polls, so the
     protocol terminates cleanly instead of wedging. *)
  let safe_worker i () =
    try worker i
    with e ->
      let bt = Printexc.get_raw_backtrace () in
      ignore (Atomic.compare_and_set failure None (Some (e, bt)))
  in
  (* A domain that fails to start (injected [Domain_start] fault, or a
     real resource limit) degrades to fewer workers: work-stealing makes
     any worker count correct, just slower. *)
  let domains =
    List.filter_map
      (fun d ->
        if Faults.fire Faults.Domain_start then begin
          Faults.survived ();
          None
        end
        else
          match Domain.spawn (safe_worker d) with
          | dom -> Some dom
          | exception _ -> None)
      (List.init (jobs - 1) (fun d -> d + 1))
  in
  safe_worker 0 ();
  List.iter Domain.join domains;
  (match Atomic.get failure with
  | Some (e, bt) -> (
      match crash with
      | `Raise -> Printexc.raise_with_backtrace e bt
      | `Degrade -> stop (Budget.Worker_crashed (Printexc.to_string e)))
  | None -> ());
  (* Bitstate downgrade: a clean sweep through a lossy seen set is not a
     proof — any would-be Verified becomes reasoned Inconclusive, while
     Falsified stays sound (counterexamples were executed). *)
  let exhausted =
    match Atomic.get exhausted with
    | Some _ as r -> r
    | None -> if bits <> None then Some Budget.Bitstate_collision_risk else None
  in
  let merged arr = List.concat_map (fun r -> List.rev !r) (Array.to_list arr) in
  {
    completed = canonical_leaves ~keyed:(key <> None) (merged completed);
    deadlocked = canonical_leaves ~keyed:(key <> None) (merged deadlocked);
    truncated = Atomic.get truncated;
    explored = Atomic.get explored;
    reduced = Atomic.get reduced;
    exhausted;
  }

(* ------------------------------------------------------------------ *)
(* Resilient sequential engine (spool / checkpoint / resume / bitstate) *)
(* ------------------------------------------------------------------ *)

(* Complete resumable state. Everything in it is pure data (interpreter
   configurations are closure-free records, [skey]/[move]/[Smap] are
   plain structures, [Ktbl] marshals as an ordinary hashtable), so one
   [Marshal] round trip through {!Checkpoint} reconstructs the walk
   exactly. *)
type 'c rsnapshot = {
  sn_completed : (skey option * 'c) list;
  sn_deadlocked : (skey option * 'c) list;
  sn_truncated : int;
  sn_explored : int;
  sn_reduced : int;
  sn_frontier : 'c ptask list;  (* pop order (newest first) *)
  sn_seen : (string option * move Smap.t list) Ktbl.t option;
  sn_bits : Bitstate.snapshot option;
  sn_budget : int * int;  (* configs_used, runs_used *)
  sn_counters : (string * int) list;
}

(* One engine serves every resilience combination: the frontier is
   always a {!Spool} (a plain in-memory stack under [no_spill]) so
   spilling and checkpointing see a single code path, and the seen set
   is either the exact subset-rule table or a bounded {!Bitstate}. The
   walk is the same push-time-filtered task expansion as [run_par]'s,
   run on one domain — sequential determinism is what makes a resumed
   run byte-identical to an uninterrupted one. *)
let run_resilient ~max_steps ~max_configs ~budget ~key ~audit ~mode ~terminated
    ~res init =
  let w = new_walk () in
  let exact_of c = match audit with None -> None | Some a -> Some (a c) in
  let bits = ref (if key = None then None else res.bitstate) in
  let table = ref (if !bits = None then Some (Ktbl.create 1024) else None) in
  let bit_audit =
    if !bits <> None && audit <> None then Some (Ktbl.create 1024, Mutex.create ())
    else None
  in
  let covered_check k exact sleep =
    match (!bits, !table) with
    | Some b, _ -> bitstate_covered b bit_audit k exact sleep
    | None, Some tbl -> covered tbl k exact sleep
    | None, None -> false
  in
  let pol = match res.spool with Some p -> p | None -> Spool.no_spill in
  let frontier = Spool.create pol in
  (* An injected allocation fault is a simulated [Out_of_memory] at
     frontier growth: the task is dropped and the walk stops with the
     memory reason — coverage lost, verdict degraded, process alive. *)
  let push_task task =
    if Faults.fire Faults.Alloc then begin
      Faults.survived ();
      if w.w_exhausted = None then w.w_exhausted <- Some Budget.Memory_watermark
    end
    else Spool.push frontier task
  in
  let push_child depth (config, sleep) =
    match key with
    | Some k ->
        let d = k config in
        if covered_check d (exact_of config) sleep then begin
          w.w_reduced <- w.w_reduced + 1;
          T.hit T.Configs_reduced
        end
        else
          push_task
            { pt_depth = depth; pt_config = config; pt_key = Some d; pt_sleep = sleep }
    | None ->
        push_task
          { pt_depth = depth; pt_config = config; pt_key = None; pt_sleep = sleep }
  in
  let classify task =
    if terminated task.pt_config then
      w.w_completed <- (task.pt_key, task.pt_config) :: w.w_completed
    else w.w_deadlocked <- (task.pt_key, task.pt_config) :: w.w_deadlocked
  in
  let process task =
    if task.pt_depth > max_steps then w.w_truncated <- w.w_truncated + 1
    else
      match mode with
      | Par_plain moves -> (
          let t = T.span_begin T.Interp_step in
          let cs = moves task.pt_config in
          T.span_end T.Interp_step t;
          match cs with
          | [] -> classify task
          | cs ->
              List.iter
                (fun c -> push_child (task.pt_depth + 1) (c, Smap.empty))
                cs)
      | Par_sleep footprint -> (
          let t = T.span_begin T.Interp_step in
          let succs = footprint task.pt_config in
          T.span_end T.Interp_step t;
          match succs with
          | [] -> classify task
          | succs ->
              let awake, asleep =
                List.partition
                  (fun (m, _) -> not (Smap.mem m.label task.pt_sleep))
                  succs
              in
              w.w_reduced <- w.w_reduced + List.length asleep;
              T.add T.Sleep_prunes (List.length asleep);
              T.add T.Configs_reduced (List.length asleep);
              let _, rev_children =
                List.fold_left
                  (fun (sleep, acc) (m, c') ->
                    let child_sleep =
                      Smap.filter (fun _ z -> independent z m) sleep
                    in
                    (Smap.add m.label m sleep, (c', child_sleep) :: acc))
                  (task.pt_sleep, []) awake
              in
              List.iter (push_child (task.pt_depth + 1)) (List.rev rev_children))
  in
  let since_ckpt = ref 0 in
  let snapshot () =
    {
      sn_completed = w.w_completed;
      sn_deadlocked = w.w_deadlocked;
      sn_truncated = w.w_truncated;
      sn_explored = w.w_explored;
      sn_reduced = w.w_reduced;
      sn_frontier = Spool.elements frontier;
      sn_seen = !table;
      sn_bits = Option.map Bitstate.snapshot !bits;
      sn_budget =
        (match budget with
        | Some b -> (Budget.configs_used b, Budget.runs_used b)
        | None -> (0, 0));
      sn_counters = T.snapshot_counters ();
    }
  in
  let maybe_checkpoint () =
    match res.checkpoint with
    | None -> ()
    | Some ctl ->
        incr since_ckpt;
        if !since_ckpt >= Checkpoint.every ctl then begin
          since_ckpt := 0;
          (* A failed snapshot (injected fault or real I/O error) costs
             resumability from this point, nothing else: the run itself
             is unaffected, so the error is deliberately dropped. *)
          match Checkpoint.write ctl ~stamp:res.stamp (snapshot ()) with
          | Ok () | Error _ -> ()
        end
  in
  (match res.resume with
  | Some path -> (
      match Checkpoint.read ~stamp:res.stamp path with
      | Error msg -> raise (Resume_error msg)
      | Ok (s : 'c rsnapshot) ->
          w.w_completed <- s.sn_completed;
          w.w_deadlocked <- s.sn_deadlocked;
          w.w_truncated <- s.sn_truncated;
          w.w_explored <- s.sn_explored;
          w.w_reduced <- s.sn_reduced;
          (match s.sn_seen with
          | Some tbl -> table := Some tbl
          | None -> ());
          (match s.sn_bits with
          | Some bsnap -> bits := Some (Bitstate.restore bsnap)
          | None -> ());
          List.iter (Spool.push frontier) (List.rev s.sn_frontier);
          (match budget with
          | Some b ->
              Budget.restore b ~configs:(fst s.sn_budget) ~runs:(snd s.sn_budget)
          | None -> ());
          T.restore_counters s.sn_counters)
  | None ->
      let k0 =
        match key with
        | None -> None
        | Some k ->
            let d = k init in
            ignore (covered_check d (exact_of init) Smap.empty);
            Some d
      in
      push_task { pt_depth = 0; pt_config = init; pt_key = k0; pt_sleep = Smap.empty });
  let stop = stop w ~max_configs ~budget in
  let rec loop () =
    if not (stop ()) then
      match Spool.pop frontier with
      | None -> ()
      | Some task ->
          w.w_explored <- w.w_explored + 1;
          T.hit T.Configs_explored;
          process task;
          maybe_checkpoint ();
          loop ()
  in
  loop ();
  (* Degradation ladder, most severe first: a recorded stop reason keeps
     priority; then lost spilled tasks; then the blanket bitstate
     downgrade — never Verified through a lossy seen set. *)
  if Spool.error frontier && w.w_exhausted = None then
    w.w_exhausted <- Some Budget.Spill_io_error;
  if !bits <> None && w.w_exhausted = None then
    w.w_exhausted <- Some Budget.Bitstate_collision_risk;
  Spool.close frontier;
  finish ~keyed:(key <> None) w

let run ?(max_steps = 10_000) ?(max_configs = 1_000_000) ?budget ?key ?audit
    ?footprint ?reduction ?(jobs = 1) ?(batch = Gem_check.Par.batch_default ())
    ?(resilience = no_resilience) ~moves ~terminated init =
  let jobs = max 1 jobs in
  let batch = max 1 batch in
  (* Reduction is meaningful only when the caller supplies footprints;
     without them every engine degenerates to the plain walk. An explicit
     [No_reduction] with a footprint ignores the footprint entirely. *)
  let reduction =
    match (footprint, reduction) with
    | None, _ -> No_reduction
    | Some _, Some r -> r
    | Some _, None -> Sleep_sets
  in
  let mode =
    match footprint with
    | Some footprint when reduction <> No_reduction -> Par_sleep footprint
    | Some _ | None -> Par_plain moves
  in
  let bits = if key = None then None else resilience.bitstate in
  let needs_resilient =
    resilience.spool <> None
    || resilience.checkpoint <> None
    || resilience.resume <> None
  in
  if needs_resilient || (bits <> None && jobs = 1) then
    (* Spool/checkpoint/resume force the deterministic sequential engine
       even under [jobs > 1]: resumability and spill ordering need one
       totally ordered walk. Bitstate alone stays parallel. Source-DPOR
       needs the in-order DFS stack and a faithful seen table, neither of
       which the spooled frontier or a lossy bitstate provides, so it
       degrades to sleep sets here (documented in DESIGN.md). *)
    run_resilient ~max_steps ~max_configs ~budget ~key ~audit ~mode ~terminated
      ~res:{ resilience with bitstate = bits }
      init
  else if reduction = Source_sets && bits = None then
    (* Race detection reads the DFS stack in execution order, so the
       source engine is sequential even under [--jobs]: verdict-side
       refinement still parallelizes, and [run_par] keeps sleep sets as
       its default reduction. *)
    (match footprint with
    | Some footprint ->
        run_source ~max_steps ~max_configs ~budget ~key ~audit ~footprint
          ~terminated init
    | None -> assert false)
  else if jobs > 1 then
    run_par ~jobs ~batch ~max_steps ~max_configs ~budget ~key ~audit ~mode ~bits
      ~crash:(if resilience.degrade_crashes then `Degrade else `Raise)
      ~terminated init
  else
    match mode with
    | Par_sleep footprint ->
        run_sleep ~max_steps ~max_configs ~budget ~key ~audit ~footprint
          ~terminated init
    | Par_plain _ ->
        run_plain ~max_steps ~max_configs ~budget ~key ~audit ~moves ~terminated
          init

(* ------------------------------------------------------------------ *)
(* Canonical computation fingerprints                                   *)
(* ------------------------------------------------------------------ *)

(* Byte-identical to rendering each event with [Event.pp] (threads
   stripped) and each id with [Event.pp_id], but writing straight into
   the buffer: the [Format.asprintf] per event/per id dominated the
   dedup and exact-key hot paths. *)

let add_value buf v =
  let module V = Gem_model.Value in
  let rec go = function
    | V.Unit -> Buffer.add_string buf "()"
    | V.Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | V.Int n -> Buffer.add_string buf (string_of_int n)
    | V.Str s -> Buffer.add_string buf (Printf.sprintf "%S" s)
    | V.Pair (a, b) ->
        Buffer.add_char buf '(';
        go a;
        Buffer.add_string buf ", ";
        go b;
        Buffer.add_char buf ')'
    | V.List xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_string buf "; ";
            go x)
          xs;
        Buffer.add_char buf ']'
  in
  go v

let add_id buf (id : Gem_model.Event.id) =
  Buffer.add_string buf id.element;
  Buffer.add_char buf '^';
  Buffer.add_string buf (string_of_int id.index)

let add_event buf (e : Gem_model.Event.t) =
  add_id buf e.id;
  Buffer.add_char buf ':';
  Buffer.add_string buf e.klass;
  if e.params <> [] then begin
    Buffer.add_char buf '(';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf k;
        Buffer.add_char buf '=';
        add_value buf v)
      e.params;
    Buffer.add_char buf ')'
  end

let fingerprint_into buf comp =
  let module C = Gem_model.Computation in
  let module E = Gem_model.Event in
  let evs =
    List.sort
      (fun a b -> E.id_compare (C.event comp a).E.id (C.event comp b).E.id)
      (C.all_events comp)
  in
  List.iter
    (fun h ->
      add_event buf (C.event comp h);
      Buffer.add_char buf ';';
      let succs =
        List.sort E.id_compare
          (List.map (fun s -> (C.event comp s).E.id) (C.enable_succs comp h))
      in
      List.iter
        (fun id ->
          Buffer.add_char buf '>';
          add_id buf id)
        succs;
      Buffer.add_char buf '|')
    evs

let fingerprint comp =
  let buf = Buffer.create 256 in
  fingerprint_into buf comp;
  Buffer.contents buf

let dedup_computations seal leaves =
  let span = T.span_begin T.Merge in
  let seen = Hashtbl.create 64 in
  let distinct =
    List.filter_map
      (fun leaf ->
        let comp = seal leaf in
        let key = fingerprint comp in
        if Hashtbl.mem seen key then None
        else begin
          Hashtbl.add seen key ();
          Some (key, comp)
        end)
      leaves
  in
  (* Canonical order: interpreters hand these straight to verdict
     rendering, so the fingerprint sort is what makes reports independent
     of traversal order — sequential, re-run, or parallel. *)
  let sorted =
    List.map snd
      (List.sort (fun (a, _) (b, _) -> String.compare a b) distinct)
  in
  T.span_end T.Merge span;
  sorted
