module Budget = Gem_check.Budget

type 'c result = {
  completed : 'c list;
  deadlocked : 'c list;
  truncated : int;
  explored : int;
  exhausted : Budget.reason option;
}

let run ?(max_steps = 10_000) ?(max_configs = 1_000_000) ?budget ?key ~moves ~terminated
    init =
  let completed = ref [] in
  let deadlocked = ref [] in
  let truncated = ref 0 in
  let explored = ref 0 in
  let exhausted = ref None in
  let seen = Hashtbl.create 1024 in
  let fresh config =
    match key with
    | None -> true
    | Some k ->
        let d = Digest.string (k config) in
        if Hashtbl.mem seen d then false
        else begin
          Hashtbl.add seen d ();
          true
        end
  in
  (* Sticky stop: once any dimension is exhausted the walk unwinds without
     visiting further configurations, keeping the leaves found so far. *)
  let stop () =
    !exhausted <> None
    ||
    if !explored >= max_configs then begin
      exhausted := Some Budget.Config_budget;
      true
    end
    else
      match budget with
      | None -> false
      | Some b ->
          if Budget.charge_config b then false
          else begin
            exhausted := Budget.exhausted b;
            true
          end
  in
  let rec dfs depth config =
    if not (stop ()) then begin
      incr explored;
      if depth > max_steps then incr truncated
      else
        match moves config with
        | [] ->
            if terminated config then completed := config :: !completed
            else deadlocked := config :: !deadlocked
        | ms -> List.iter (fun c -> if fresh c then dfs (depth + 1) c) ms
    end
  in
  dfs 0 init;
  {
    completed = List.rev !completed;
    deadlocked = List.rev !deadlocked;
    truncated = !truncated;
    explored = !explored;
    exhausted = !exhausted;
  }

let fingerprint comp =
  let module C = Gem_model.Computation in
  let module E = Gem_model.Event in
  let buf = Buffer.create 256 in
  let evs =
    List.sort
      (fun a b -> E.id_compare (C.event comp a).E.id (C.event comp b).E.id)
      (C.all_events comp)
  in
  List.iter
    (fun h ->
      let e = C.event comp h in
      Buffer.add_string buf (Format.asprintf "%a;" E.pp { e with E.threads = [] });
      let succs =
        List.sort E.id_compare
          (List.map (fun s -> (C.event comp s).E.id) (C.enable_succs comp h))
      in
      List.iter
        (fun id -> Buffer.add_string buf (Format.asprintf ">%a" E.pp_id id))
        succs;
      Buffer.add_char buf '|')
    evs;
  Buffer.contents buf

let dedup_computations seal leaves =
  let seen = Hashtbl.create 64 in
  List.filter_map
    (fun leaf ->
      let comp = seal leaf in
      let key = fingerprint comp in
      if Hashtbl.mem seen key then None
      else begin
        Hashtbl.add seen key ();
        Some comp
      end)
    leaves
