module Budget = Gem_check.Budget
module T = Gem_obs.Telemetry
module Fp = Gem_order.Fingerprint
module Smap = Map.Make (String)

type move = { label : string; touches : string list }

(* [touches] lists are sorted and duplicate-free (the interpreters build
   them with [List.sort_uniq]), so disjointness is one merge walk — the
   sleep-set filter calls this for every (sleeping, fired) move pair, and
   the old nested [List.mem] scan was quadratic in footprint size. *)
let independent m1 m2 =
  T.hit T.Footprint_checks;
  let rec disjoint xs ys =
    match (xs, ys) with
    | [], _ | _, [] -> true
    | x :: xs', y :: ys' ->
        let c = String.compare x y in
        if c = 0 then false else if c < 0 then disjoint xs' ys else disjoint xs ys'
  in
  disjoint m1.touches m2.touches

(* ------------------------------------------------------------------ *)
(* Search keys                                                         *)
(* ------------------------------------------------------------------ *)

(* The seen tables are keyed either by a 126-bit state fingerprint
   (default: O(1) to extend per step, collision-bounded) or by the exact
   marshal-string canonical key (the [--exact-keys] fallback, and the
   audit oracle). The constructors are kept distinct so a single run can
   never confuse the two key spaces. *)
type skey = Fp of Fp.t | Exact of string

let skey_equal a b =
  match (a, b) with
  | Fp x, Fp y -> Fp.equal x y
  | Exact x, Exact y -> String.equal x y
  | Fp _, Exact _ | Exact _, Fp _ -> false

let skey_compare a b =
  match (a, b) with
  | Fp x, Fp y -> Fp.compare x y
  | Exact x, Exact y -> String.compare x y
  | Fp _, Exact _ -> -1
  | Exact _, Fp _ -> 1

let skey_hash = function Fp x -> Fp.hash x | Exact s -> Hashtbl.hash s

module Ktbl = Hashtbl.Make (struct
  type t = skey

  let equal = skey_equal
  let hash = skey_hash
end)

let exact_keys_default () =
  match Sys.getenv_opt "GEM_EXACT_KEYS" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

let audit_keys_default () =
  match Sys.getenv_opt "GEM_AUDIT_KEYS" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

type 'c result = {
  completed : 'c list;
  deadlocked : 'c list;
  truncated : int;
  explored : int;
  reduced : int;
  exhausted : Budget.reason option;
}

let por_default () =
  match Sys.getenv_opt "GEM_NO_POR" with
  | Some ("1" | "true" | "yes") -> false
  | Some _ | None -> true

(* Mutable walk state shared by both search strategies. Leaves are kept
   decorated with the search key computed when the configuration was
   admitted, so the canonical sort never recomputes a key. *)
type 'c walk = {
  mutable w_completed : (skey option * 'c) list;
  mutable w_deadlocked : (skey option * 'c) list;
  mutable w_truncated : int;
  mutable w_explored : int;
  mutable w_reduced : int;
  mutable w_exhausted : Budget.reason option;
}

let new_walk () =
  {
    w_completed = [];
    w_deadlocked = [];
    w_truncated = 0;
    w_explored = 0;
    w_reduced = 0;
    w_exhausted = None;
  }

(* Sticky stop: once any dimension is exhausted the walk unwinds without
   visiting further configurations, keeping the leaves found so far. *)
let stop w ~max_configs ~budget () =
  w.w_exhausted <> None
  ||
  if w.w_explored >= max_configs then begin
    w.w_exhausted <- Some Budget.Config_budget;
    true
  end
  else
    match budget with
    | None -> false
    | Some b ->
        if Budget.charge_config b then false
        else begin
          w.w_exhausted <- Budget.exhausted b;
          true
        end

(* Audit support: when an exact-key oracle is given, the seen tables store
   the oracle key recorded at first insert next to each entry; a hit whose
   oracle key differs is a fingerprint collision — a lossy merge that
   would silently prune a distinct state — and is counted. *)
let audit_mismatch prior exact =
  match (prior, exact) with
  | Some p, Some e when not (String.equal p e) -> T.hit T.Fingerprint_collisions
  | _ -> ()

(* Canonical leaf order: sort by the (already computed) search key so the
   result never depends on traversal order — sequential DFS, re-runs, and
   parallel schedules all assemble the same list. Without a key function
   the discovery order is kept (sequential runs are deterministic;
   parallel plain runs are canonicalized downstream by
   {!dedup_computations}). *)
let canonical_leaves ~keyed leaves =
  if not keyed then List.map snd leaves
  else begin
    let t = T.span_begin T.Merge in
    let cmp (a, _) (b, _) =
      match (a, b) with
      | Some a, Some b -> skey_compare a b
      | Some _, None -> -1
      | None, Some _ -> 1
      | None, None -> 0
    in
    let sorted = List.map snd (List.sort cmp leaves) in
    T.span_end T.Merge t;
    sorted
  end

let finish ~keyed w =
  {
    completed = canonical_leaves ~keyed (List.rev w.w_completed);
    deadlocked = canonical_leaves ~keyed (List.rev w.w_deadlocked);
    truncated = w.w_truncated;
    explored = w.w_explored;
    reduced = w.w_reduced;
    exhausted = w.w_exhausted;
  }

(* ------------------------------------------------------------------ *)
(* Plain bounded DFS (no reduction beyond optional key memoization)     *)
(* ------------------------------------------------------------------ *)

let run_plain ~max_steps ~max_configs ~budget ~key ~audit ~moves ~terminated init =
  let w = new_walk () in
  let seen : string option Ktbl.t = Ktbl.create 1024 in
  let exact_of c = match audit with None -> None | Some a -> Some (a c) in
  (* Returns the admitted configuration's key so the visit (and a leaf
     classification) can reuse it instead of keying again. *)
  let fresh d exact =
    let t = T.span_begin T.Seen_table in
    let novel =
      match Ktbl.find_opt seen d with
      | Some prior ->
          audit_mismatch prior exact;
          T.hit T.Memo_hits;
          false
      | None ->
          Ktbl.add seen d exact;
          T.hit T.Memo_misses;
          true
    in
    T.span_end T.Seen_table t;
    novel
  in
  let stop = stop w ~max_configs ~budget in
  let rec dfs depth kc config =
    if not (stop ()) then begin
      w.w_explored <- w.w_explored + 1;
      T.hit T.Configs_explored;
      if depth > max_steps then w.w_truncated <- w.w_truncated + 1
      else begin
        let t = T.span_begin T.Interp_step in
        let ms = moves config in
        T.span_end T.Interp_step t;
        match ms with
        | [] ->
            if terminated config then w.w_completed <- (kc, config) :: w.w_completed
            else w.w_deadlocked <- (kc, config) :: w.w_deadlocked
        | ms ->
            List.iter
              (fun c ->
                match key with
                | None -> dfs (depth + 1) None c
                | Some k ->
                    let d = k c in
                    if fresh d (exact_of c) then dfs (depth + 1) (Some d) c
                    else begin
                      w.w_reduced <- w.w_reduced + 1;
                      T.hit T.Configs_reduced
                    end)
              ms
      end
    end
  in
  (* The initial configuration belongs in the seen table too: a cycle back
     to the root must not re-explore it. *)
  let k0 =
    match key with
    | None -> None
    | Some k ->
        let d = k init in
        ignore (fresh d (exact_of init));
        Some d
  in
  dfs 0 k0 init;
  finish ~keyed:(key <> None) w

(* ------------------------------------------------------------------ *)
(* Sleep-set DFS over footprinted moves                                 *)
(* ------------------------------------------------------------------ *)

(* A sleeping move is kept with the footprint it had when put to sleep;
   by independence it stays enabled (same label, same footprint) until a
   dependent move fires and wakes it. *)

let subset z1 z2 = Smap.for_all (fun l _ -> Smap.mem l z2) z1

(* Has this state already been explored under a sleep set at least as
   permissive (i.e. a subset of [sleep])? If so, every continuation awake
   now was awake then, and the subtree is covered. Otherwise record
   [sleep] (dropping any recorded supersets it refines). The exact-key
   audit oracle, when present, rides along: recorded at first insert,
   compared on every arrival. *)
let covered seen k exact sleep =
  let t = T.span_begin T.Seen_table in
  let prior, olds =
    match Ktbl.find_opt seen k with
    | Some (prior, olds) -> (prior, olds)
    | None -> (None, [])
  in
  audit_mismatch prior exact;
  let hit =
    if List.exists (fun z -> subset z sleep) olds then begin
      T.hit T.Memo_hits;
      true
    end
    else begin
      let olds = List.filter (fun z -> not (subset sleep z)) olds in
      let prior = if olds = [] && prior = None then exact else prior in
      Ktbl.replace seen k (prior, sleep :: olds);
      T.hit T.Memo_misses;
      false
    end
  in
  T.span_end T.Seen_table t;
  hit

let run_sleep ~max_steps ~max_configs ~budget ~key ~audit ~footprint ~terminated
    init =
  let w = new_walk () in
  let seen : (string option * move Smap.t list) Ktbl.t = Ktbl.create 1024 in
  let exact_of c = match audit with None -> None | Some a -> Some (a c) in
  let stop = stop w ~max_configs ~budget in
  let rec dfs depth kc config sleep =
    if not (stop ()) then begin
      w.w_explored <- w.w_explored + 1;
      T.hit T.Configs_explored;
      if depth > max_steps then w.w_truncated <- w.w_truncated + 1
      else begin
        let t = T.span_begin T.Interp_step in
        let succs = footprint config in
        T.span_end T.Interp_step t;
        match succs with
        | [] ->
            if terminated config then w.w_completed <- (kc, config) :: w.w_completed
            else w.w_deadlocked <- (kc, config) :: w.w_deadlocked
        | succs ->
            let awake, asleep =
              List.partition (fun (m, _) -> not (Smap.mem m.label sleep)) succs
            in
            (* Sleeping successors are covered by an earlier sibling branch
               that fired the same move before this configuration's
               distinguishing step. *)
            w.w_reduced <- w.w_reduced + List.length asleep;
            T.add T.Sleep_prunes (List.length asleep);
            T.add T.Configs_reduced (List.length asleep);
            ignore
              (List.fold_left
                 (fun sleep (m, c') ->
                   (* The child may keep sleeping only the moves that
                      commute with [m]; a dependent move wakes up. *)
                   let child_sleep =
                     Smap.filter (fun _ z -> independent z m) sleep
                   in
                   visit depth c' child_sleep;
                   Smap.add m.label m sleep)
                 sleep awake)
      end
    end
  and visit depth c' child_sleep =
    match key with
    | None -> dfs (depth + 1) None c' child_sleep
    | Some k ->
        let d = k c' in
        if covered seen d (exact_of c') child_sleep then begin
          w.w_reduced <- w.w_reduced + 1;
          T.hit T.Configs_reduced
        end
        else dfs (depth + 1) (Some d) c' child_sleep
  in
  let k0 =
    match key with
    | None -> None
    | Some k ->
        let d = k init in
        ignore (covered seen d (exact_of init) Smap.empty);
        Some d
  in
  dfs 0 k0 init Smap.empty;
  finish ~keyed:(key <> None) w

(* ------------------------------------------------------------------ *)
(* Domain-parallel work-stealing exploration                            *)
(* ------------------------------------------------------------------ *)

(* The parallel walk reuses the sequential semantics wholesale: a task is
   a (depth, configuration, key, sleep set) tuple, expanding a task
   applies exactly the sequential successor/sleep-set computation, and
   the seen-table discipline is the same subset rule — only behind a
   sharded lock, since domains race to record coverage. The subset rule's
   soundness argument is order-free (a pruned visit is covered by
   whichever visit recorded the smaller sleep set, and every recorded
   visit is fully expanded), so racing traversals can change how much is
   explored but never which computations exist; downstream deduplication
   and the canonical leaf order make the rendered results byte-identical
   to a sequential run's. *)

type 'c ptask = {
  pt_depth : int;
  pt_config : 'c;
  pt_key : skey option;
  pt_sleep : move Smap.t;
}

type 'c par_mode =
  | Par_plain of ('c -> 'c list)
  | Par_sleep of ('c -> (move * 'c) list)

(* One deque per domain: the owner pushes and pops at the head (keeping
   the walk depth-first-ish, which bounds frontier memory); an idle
   domain steals from the head of a victim's deque. A plain mutex per
   deque is plenty — each task does a macro-step plus a canonical-key
   construction, so queue traffic is far from the bottleneck. *)
type 'c deque = { mutable dq_items : 'c ptask list; dq_lock : Mutex.t }

let deque_push dq t =
  Mutex.protect dq.dq_lock (fun () -> dq.dq_items <- t :: dq.dq_items)

let deque_pop dq =
  Mutex.protect dq.dq_lock (fun () ->
      match dq.dq_items with
      | [] -> None
      | t :: rest ->
          dq.dq_items <- rest;
          Some t)

(* Sharded seen table. Both search modes use the sleep-set [covered]
   subset rule: the plain search passes empty sleep sets, for which the
   rule degenerates to exactly the add-if-absent memoization of
   [run_plain]. Shard count is a power of two well above any sane domain
   count, so two domains rarely contend on one lock. *)
let n_shards = 64

type shards = {
  sh_tables : ((string option * move Smap.t list) Ktbl.t * Mutex.t) array;
}

let make_shards () =
  { sh_tables = Array.init n_shards (fun _ -> (Ktbl.create 256, Mutex.create ())) }

(* Shard index straight from the fingerprint's (already well-mixed) low
   bits — no rehash of the key on this path. *)
let shard_index = function
  | Fp f -> Fp.to_int f land (n_shards - 1)
  | Exact s -> Hashtbl.hash s land (n_shards - 1)

(* [try_lock]-then-[lock] rather than [Mutex.protect]: a failed try is a
   real contention event worth counting (two domains racing for one
   shard), and [covered] cannot raise, so manual unlock is safe. *)
let shard_covered sh k exact sleep =
  let table, lock = sh.sh_tables.(shard_index k) in
  if not (Mutex.try_lock lock) then begin
    T.hit T.Shard_collisions;
    Mutex.lock lock
  end;
  let hit = covered table k exact sleep in
  Mutex.unlock lock;
  hit

let run_par ~jobs ~max_steps ~max_configs ~budget ~key ~audit ~mode ~terminated
    init =
  let explored = Atomic.make 0
  and truncated = Atomic.make 0
  and reduced = Atomic.make 0
  and exhausted = Atomic.make None
  and in_flight = Atomic.make 0
  and failure = Atomic.make None in
  let add counter n = ignore (Atomic.fetch_and_add counter n) in
  let stop reason = ignore (Atomic.compare_and_set exhausted None (Some reason)) in
  let seen = make_shards () in
  let exact_of c = match audit with None -> None | Some a -> Some (a c) in
  let deques =
    Array.init jobs (fun _ -> { dq_items = []; dq_lock = Mutex.create () })
  in
  (* The root frontier is dealt round-robin across the per-domain queues
     until every domain has had a few tasks; after that each domain feeds
     itself and imbalance is corrected by stealing. *)
  let rr = Atomic.make 0 in
  let push owner task =
    Atomic.incr in_flight;
    let target =
      let n = Atomic.get rr in
      if n < 4 * jobs then Atomic.fetch_and_add rr 1 mod jobs else owner
    in
    deque_push deques.(target) task
  in
  (* Mirrors the sequential [stop]: claim the visit before doing it, and
     surrender the claim (so [explored <= max_configs] holds in the final
     tally) when a cap or the budget refuses it. *)
  let claim_visit () =
    Atomic.get exhausted = None
    &&
    let n = Atomic.fetch_and_add explored 1 in
    if n >= max_configs then begin
      Atomic.decr explored;
      stop Budget.Config_budget;
      false
    end
    else
      match budget with
      | None ->
          T.hit T.Configs_explored;
          true
      | Some b ->
          if Budget.charge_config b then begin
            T.hit T.Configs_explored;
            true
          end
          else begin
            Atomic.decr explored;
            (match Budget.exhausted b with
            | Some r -> stop r
            | None -> stop Budget.Config_budget);
            false
          end
  in
  (* Seen-filtering happens at push time (the sequential searches check a
     child's key just before descending into it): the key is recorded
     before the task is queued, so a racing domain that arrives at the
     same state prunes and relies on this task, which is guaranteed to be
     processed unless the whole walk degrades to Inconclusive. The key
     travels with the task, so the leaf sort reuses it. *)
  let push_child owner depth (config, sleep) =
    match key with
    | Some k ->
        let d = k config in
        if shard_covered seen d (exact_of config) sleep then begin
          Atomic.incr reduced;
          T.hit T.Configs_reduced
        end
        else
          push owner
            { pt_depth = depth; pt_config = config; pt_key = Some d; pt_sleep = sleep }
    | None ->
        push owner
          { pt_depth = depth; pt_config = config; pt_key = None; pt_sleep = sleep }
  in
  let completed = Array.init jobs (fun _ -> ref [])
  and deadlocked = Array.init jobs (fun _ -> ref []) in
  let classify owner task =
    if terminated task.pt_config then
      completed.(owner) := (task.pt_key, task.pt_config) :: !(completed.(owner))
    else deadlocked.(owner) := (task.pt_key, task.pt_config) :: !(deadlocked.(owner))
  in
  let process owner task =
    if claim_visit () then
      if task.pt_depth > max_steps then Atomic.incr truncated
      else
        match mode with
        | Par_plain moves -> (
            let t = T.span_begin T.Interp_step in
            let cs = moves task.pt_config in
            T.span_end T.Interp_step t;
            match cs with
            | [] -> classify owner task
            | cs ->
                List.iter
                  (fun c -> push_child owner (task.pt_depth + 1) (c, Smap.empty))
                  cs)
        | Par_sleep footprint -> (
            let t = T.span_begin T.Interp_step in
            let succs = footprint task.pt_config in
            T.span_end T.Interp_step t;
            match succs with
            | [] -> classify owner task
            | succs ->
                let awake, asleep =
                  List.partition
                    (fun (m, _) -> not (Smap.mem m.label task.pt_sleep))
                    succs
                in
                add reduced (List.length asleep);
                T.add T.Sleep_prunes (List.length asleep);
                T.add T.Configs_reduced (List.length asleep);
                let _, rev_children =
                  List.fold_left
                    (fun (sleep, acc) (m, c') ->
                      let child_sleep =
                        Smap.filter (fun _ z -> independent z m) sleep
                      in
                      (Smap.add m.label m sleep, (c', child_sleep) :: acc))
                    (task.pt_sleep, []) awake
                in
                List.iter
                  (push_child owner (task.pt_depth + 1))
                  (List.rev rev_children))
  in
  let rec worker i =
    if Atomic.get exhausted = None && Atomic.get failure = None then
      match take i with
      | Some task ->
          (try process i task
           with e ->
             let bt = Printexc.get_raw_backtrace () in
             ignore (Atomic.compare_and_set failure None (Some (e, bt))));
          Atomic.decr in_flight;
          worker i
      | None ->
          if Atomic.get in_flight > 0 then begin
            Domain.cpu_relax ();
            worker i
          end
  and take i =
    match deque_pop deques.(i) with
    | Some _ as t -> t
    | None ->
        let rec steal d =
          if d >= jobs then None
          else
            match deque_pop deques.((i + d) mod jobs) with
            | Some _ as t ->
                T.hit T.Deque_steals;
                t
            | None -> steal (d + 1)
        in
        steal 1
  in
  let k0 =
    match key with
    | None -> None
    | Some k ->
        let d = k init in
        ignore (shard_covered seen d (exact_of init) Smap.empty);
        Some d
  in
  push 0 { pt_depth = 0; pt_config = init; pt_key = k0; pt_sleep = Smap.empty };
  let domains = List.init (jobs - 1) (fun d -> Domain.spawn (fun () -> worker (d + 1))) in
  worker 0;
  List.iter Domain.join domains;
  (match Atomic.get failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ());
  let merged arr = List.concat_map (fun r -> List.rev !r) (Array.to_list arr) in
  {
    completed = canonical_leaves ~keyed:(key <> None) (merged completed);
    deadlocked = canonical_leaves ~keyed:(key <> None) (merged deadlocked);
    truncated = Atomic.get truncated;
    explored = Atomic.get explored;
    reduced = Atomic.get reduced;
    exhausted = Atomic.get exhausted;
  }

let run ?(max_steps = 10_000) ?(max_configs = 1_000_000) ?budget ?key ?audit
    ?footprint ?(jobs = 1) ~moves ~terminated init =
  let jobs = max 1 jobs in
  match footprint with
  | Some footprint ->
      ignore moves;
      if jobs = 1 then
        run_sleep ~max_steps ~max_configs ~budget ~key ~audit ~footprint
          ~terminated init
      else
        run_par ~jobs ~max_steps ~max_configs ~budget ~key ~audit
          ~mode:(Par_sleep footprint) ~terminated init
  | None ->
      if jobs = 1 then
        run_plain ~max_steps ~max_configs ~budget ~key ~audit ~moves ~terminated
          init
      else
        run_par ~jobs ~max_steps ~max_configs ~budget ~key ~audit
          ~mode:(Par_plain moves) ~terminated init

(* ------------------------------------------------------------------ *)
(* Canonical computation fingerprints                                   *)
(* ------------------------------------------------------------------ *)

(* Byte-identical to rendering each event with [Event.pp] (threads
   stripped) and each id with [Event.pp_id], but writing straight into
   the buffer: the [Format.asprintf] per event/per id dominated the
   dedup and exact-key hot paths. *)

let add_value buf v =
  let module V = Gem_model.Value in
  let rec go = function
    | V.Unit -> Buffer.add_string buf "()"
    | V.Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | V.Int n -> Buffer.add_string buf (string_of_int n)
    | V.Str s -> Buffer.add_string buf (Printf.sprintf "%S" s)
    | V.Pair (a, b) ->
        Buffer.add_char buf '(';
        go a;
        Buffer.add_string buf ", ";
        go b;
        Buffer.add_char buf ')'
    | V.List xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_string buf "; ";
            go x)
          xs;
        Buffer.add_char buf ']'
  in
  go v

let add_id buf (id : Gem_model.Event.id) =
  Buffer.add_string buf id.element;
  Buffer.add_char buf '^';
  Buffer.add_string buf (string_of_int id.index)

let add_event buf (e : Gem_model.Event.t) =
  add_id buf e.id;
  Buffer.add_char buf ':';
  Buffer.add_string buf e.klass;
  if e.params <> [] then begin
    Buffer.add_char buf '(';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf k;
        Buffer.add_char buf '=';
        add_value buf v)
      e.params;
    Buffer.add_char buf ')'
  end

let fingerprint_into buf comp =
  let module C = Gem_model.Computation in
  let module E = Gem_model.Event in
  let evs =
    List.sort
      (fun a b -> E.id_compare (C.event comp a).E.id (C.event comp b).E.id)
      (C.all_events comp)
  in
  List.iter
    (fun h ->
      add_event buf (C.event comp h);
      Buffer.add_char buf ';';
      let succs =
        List.sort E.id_compare
          (List.map (fun s -> (C.event comp s).E.id) (C.enable_succs comp h))
      in
      List.iter
        (fun id ->
          Buffer.add_char buf '>';
          add_id buf id)
        succs;
      Buffer.add_char buf '|')
    evs

let fingerprint comp =
  let buf = Buffer.create 256 in
  fingerprint_into buf comp;
  Buffer.contents buf

let dedup_computations seal leaves =
  let span = T.span_begin T.Merge in
  let seen = Hashtbl.create 64 in
  let distinct =
    List.filter_map
      (fun leaf ->
        let comp = seal leaf in
        let key = fingerprint comp in
        if Hashtbl.mem seen key then None
        else begin
          Hashtbl.add seen key ();
          Some (key, comp)
        end)
      leaves
  in
  (* Canonical order: interpreters hand these straight to verdict
     rendering, so the fingerprint sort is what makes reports independent
     of traversal order — sequential, re-run, or parallel. *)
  let sorted =
    List.map snd
      (List.sort (fun (a, _) (b, _) -> String.compare a b) distinct)
  in
  T.span_end T.Merge span;
  sorted
