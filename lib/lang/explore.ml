module Budget = Gem_check.Budget
module Smap = Map.Make (String)

type move = { label : string; touches : string list }

let independent m1 m2 =
  not (List.exists (fun e -> List.mem e m2.touches) m1.touches)

type 'c result = {
  completed : 'c list;
  deadlocked : 'c list;
  truncated : int;
  explored : int;
  reduced : int;
  exhausted : Budget.reason option;
}

let por_default () =
  match Sys.getenv_opt "GEM_NO_POR" with
  | Some ("1" | "true" | "yes") -> false
  | Some _ | None -> true

(* Mutable walk state shared by both search strategies. *)
type 'c walk = {
  mutable w_completed : 'c list;
  mutable w_deadlocked : 'c list;
  mutable w_truncated : int;
  mutable w_explored : int;
  mutable w_reduced : int;
  mutable w_exhausted : Budget.reason option;
}

let new_walk () =
  {
    w_completed = [];
    w_deadlocked = [];
    w_truncated = 0;
    w_explored = 0;
    w_reduced = 0;
    w_exhausted = None;
  }

(* Sticky stop: once any dimension is exhausted the walk unwinds without
   visiting further configurations, keeping the leaves found so far. *)
let stop w ~max_configs ~budget () =
  w.w_exhausted <> None
  ||
  if w.w_explored >= max_configs then begin
    w.w_exhausted <- Some Budget.Config_budget;
    true
  end
  else
    match budget with
    | None -> false
    | Some b ->
        if Budget.charge_config b then false
        else begin
          w.w_exhausted <- Budget.exhausted b;
          true
        end

let finish w =
  {
    completed = List.rev w.w_completed;
    deadlocked = List.rev w.w_deadlocked;
    truncated = w.w_truncated;
    explored = w.w_explored;
    reduced = w.w_reduced;
    exhausted = w.w_exhausted;
  }

(* ------------------------------------------------------------------ *)
(* Plain bounded DFS (no reduction beyond optional key memoization)     *)
(* ------------------------------------------------------------------ *)

let run_plain ~max_steps ~max_configs ~budget ~key ~moves ~terminated init =
  let w = new_walk () in
  let seen = Hashtbl.create 1024 in
  let fresh config =
    match key with
    | None -> true
    | Some k ->
        let d = k config in
        if Hashtbl.mem seen d then false
        else begin
          Hashtbl.add seen d ();
          true
        end
  in
  let stop = stop w ~max_configs ~budget in
  let rec dfs depth config =
    if not (stop ()) then begin
      w.w_explored <- w.w_explored + 1;
      if depth > max_steps then w.w_truncated <- w.w_truncated + 1
      else
        match moves config with
        | [] ->
            if terminated config then w.w_completed <- config :: w.w_completed
            else w.w_deadlocked <- config :: w.w_deadlocked
        | ms ->
            List.iter
              (fun c ->
                if fresh c then dfs (depth + 1) c
                else w.w_reduced <- w.w_reduced + 1)
              ms
    end
  in
  (* The initial configuration belongs in the seen table too: a cycle back
     to the root must not re-explore it. *)
  ignore (fresh init);
  dfs 0 init;
  finish w

(* ------------------------------------------------------------------ *)
(* Sleep-set DFS over footprinted moves                                 *)
(* ------------------------------------------------------------------ *)

(* A sleeping move is kept with the footprint it had when put to sleep;
   by independence it stays enabled (same label, same footprint) until a
   dependent move fires and wakes it. *)

let subset z1 z2 = Smap.for_all (fun l _ -> Smap.mem l z2) z1

(* Has this state already been explored under a sleep set at least as
   permissive (i.e. a subset of [sleep])? If so, every continuation awake
   now was awake then, and the subtree is covered. Otherwise record
   [sleep] (dropping any recorded supersets it refines). *)
let covered seen k sleep =
  let olds = Option.value ~default:[] (Hashtbl.find_opt seen k) in
  if List.exists (fun z -> subset z sleep) olds then true
  else begin
    let olds = List.filter (fun z -> not (subset sleep z)) olds in
    Hashtbl.replace seen k (sleep :: olds);
    false
  end

let run_sleep ~max_steps ~max_configs ~budget ~key ~footprint ~terminated init =
  let w = new_walk () in
  let seen = Hashtbl.create 1024 in
  let stop = stop w ~max_configs ~budget in
  let rec dfs depth config sleep =
    if not (stop ()) then begin
      w.w_explored <- w.w_explored + 1;
      if depth > max_steps then w.w_truncated <- w.w_truncated + 1
      else
        match footprint config with
        | [] ->
            if terminated config then w.w_completed <- config :: w.w_completed
            else w.w_deadlocked <- config :: w.w_deadlocked
        | succs ->
            let awake, asleep =
              List.partition (fun (m, _) -> not (Smap.mem m.label sleep)) succs
            in
            (* Sleeping successors are covered by an earlier sibling branch
               that fired the same move before this configuration's
               distinguishing step. *)
            w.w_reduced <- w.w_reduced + List.length asleep;
            ignore
              (List.fold_left
                 (fun sleep (m, c') ->
                   (* The child may keep sleeping only the moves that
                      commute with [m]; a dependent move wakes up. *)
                   let child_sleep =
                     Smap.filter (fun _ z -> independent z m) sleep
                   in
                   visit depth c' child_sleep;
                   Smap.add m.label m sleep)
                 sleep awake)
    end
  and visit depth c' child_sleep =
    match key with
    | None -> dfs (depth + 1) c' child_sleep
    | Some k ->
        if covered seen (k c') child_sleep then w.w_reduced <- w.w_reduced + 1
        else dfs (depth + 1) c' child_sleep
  in
  (match key with
  | Some k -> ignore (covered seen (k init) Smap.empty)
  | None -> ());
  dfs 0 init Smap.empty;
  finish w

let run ?(max_steps = 10_000) ?(max_configs = 1_000_000) ?budget ?key ?footprint
    ~moves ~terminated init =
  match footprint with
  | Some footprint ->
      ignore moves;
      run_sleep ~max_steps ~max_configs ~budget ~key ~footprint ~terminated init
  | None -> run_plain ~max_steps ~max_configs ~budget ~key ~moves ~terminated init

(* ------------------------------------------------------------------ *)
(* Canonical computation fingerprints                                   *)
(* ------------------------------------------------------------------ *)

let fingerprint comp =
  let module C = Gem_model.Computation in
  let module E = Gem_model.Event in
  let buf = Buffer.create 256 in
  let evs =
    List.sort
      (fun a b -> E.id_compare (C.event comp a).E.id (C.event comp b).E.id)
      (C.all_events comp)
  in
  List.iter
    (fun h ->
      let e = C.event comp h in
      Buffer.add_string buf (Format.asprintf "%a;" E.pp { e with E.threads = [] });
      let succs =
        List.sort E.id_compare
          (List.map (fun s -> (C.event comp s).E.id) (C.enable_succs comp h))
      in
      List.iter
        (fun id -> Buffer.add_string buf (Format.asprintf ">%a" E.pp_id id))
        succs;
      Buffer.add_char buf '|')
    evs;
  Buffer.contents buf

let dedup_computations seal leaves =
  let seen = Hashtbl.create 64 in
  List.filter_map
    (fun leaf ->
      let comp = seal leaf in
      let key = fingerprint comp in
      if Hashtbl.mem seen key then None
      else begin
        Hashtbl.add seen key ();
        Some comp
      end)
    leaves
