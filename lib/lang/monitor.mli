(** The Monitor language primitive (paper §9), as an embedded language with
    Hoare (signal-and-urgent-wait) semantics, an exhaustive scheduler, and
    mechanical translation of runs into GEM computations.

    {b Event emission} (one GEM element per sequential locus, as in §2):
    - element ["<P>"] per process: [Start], [Mark] classes (user-defined
      marker events such as the paper's [u.Read]), [Call], [Return];
    - element ["<M>.lock"]: [Acq]/[Rel] pairs bracketing every tenure of
      the monitor lock — their total element order {e is} the monitor's
      serialization;
    - element ["<M>.<entry>"]: [Begin]/[End] per entry execution;
    - element ["<M>.<var>"]: [Assign] (and, with [~emit_getvals:true],
      [Getval]) events, Variable-typed;
    - element ["<M>.<cond>"]: [Wait], [Signal], [Release] — a [Release] is
      enabled by exactly one [Signal], per the paper's prerequisite
      example;
    - element ["<M>.init"]: [Init], enabling the initial [Assign]s;
    - element ["main"]: a single [Start] event enabling every process and
      monitor initialization.

    Control is chained through the enable relation: each event of a
    process's activity is enabled by that activity's previous event; lock
    handovers add [Rel |> Acq] edges; waking from a condition adds the
    [Signal |> Release] edge ({e not} [Wait |> Release] — the waiter's
    resumption is caused by the signal).

    {b Scheduling.} The explorer branches only on conflicting actions
    (entry calls and shared-variable accesses); process-local statements
    commute with everything and are bundled into the following global
    action, so the set of {e computations} (partial orders) is complete
    even though the set of interleavings is reduced. Lock handover chains
    (signal cascades, urgent resumptions, FIFO entry admission) are
    deterministic and run to quiescence within the move that triggers
    them. *)

(** {1 Syntax} *)

type mstmt =
  | MAssign of { var : string; value : Expr.t; site : string option }
      (** Monitor-variable assignment; [site] tags the emitted [Assign]
          event with a [site] parameter so correspondences can tell
          occurrences apart (e.g. the [readernum := 0] of [StartWrite]
          vs that of [EndWrite]). *)
  | MIf of Expr.t * mstmt list * mstmt list
  | MWhile of Expr.t * mstmt list
  | MWait of string
  | MSignal of string
  | MReturn of Expr.t
  | MSkip

type pstmt =
  | PLocal of string * Expr.t  (** Process-local assignment; no event. *)
  | PIf of Expr.t * pstmt list * pstmt list
  | PWhile of Expr.t * pstmt list
  | PCall of { monitor : string; entry : string; args : Expr.t list; bind : string option }
  | PRead of { var : string; bind : string }
      (** Shared (non-monitor) variable read: a [Getval] event. *)
  | PWrite of { var : string; value : Expr.t }  (** [Assign] event. *)
  | PMark of { klass : string; params : Expr.t list }
      (** Marker event at the process element (e.g. [Read], [FinishRead]). *)

type entry = { entry_name : string; formals : string list; body : mstmt list }

type monitor = {
  mon_name : string;
  vars : (string * Gem_model.Value.t) list;  (** With initial values. *)
  conditions : string list;
  entries : entry list;
}

type process = {
  proc_name : string;
  locals : (string * Gem_model.Value.t) list;
  code : pstmt list;
}

type program = {
  monitors : monitor list;
  shared : (string * Gem_model.Value.t) list;
      (** Shared variables outside any monitor (e.g. the database the
          paper requires to live outside the ReadersWriters monitor). *)
  processes : process list;
}

(** {1 Exploration} *)

type outcome = {
  computations : Gem_model.Computation.t list;
      (** Distinct partial orders of completed executions. *)
  deadlocks : Gem_model.Computation.t list;
      (** Traces of executions that got stuck. *)
  explored : int;
  truncated : int;  (** Branches cut by [max_steps]. *)
  reduced : int;  (** Configurations pruned by partial-order reduction. *)
  exhausted : Gem_check.Budget.reason option;
      (** [Some _] iff exploration was cut short — the computation set is
          then a sound but incomplete sample. *)
}

val explore :
  ?emit_getvals:bool ->
  ?reduction:Explore.reduction ->
  ?por:bool ->
  ?exact_keys:bool ->
  ?audit_keys:bool ->
  ?max_steps:int ->
  ?max_configs:int ->
  ?budget:Gem_check.Budget.t ->
  ?jobs:int ->
  ?batch:int ->
  ?resilience:Explore.resilience ->
  program ->
  outcome
(** Exhaustively explore all schedules. Resource exhaustion (config
    budget, deadline, memory watermark) never raises: it is reported in
    [exhausted]. [Expr.Eval_error] still raises on runtime type errors.
    [por] (default {!Explore.por_default}) switches between the sleep-set
    + canonical-key reduced search and a plain exhaustive DFS; both reach
    the same completed/deadlocked computation sets. [exact_keys] (default
    {!Explore.exact_keys_default}) keys the reduced search on exact
    marshal-string canonical keys instead of incremental 126-bit
    fingerprints; [audit_keys] (default {!Explore.audit_keys_default})
    keeps fingerprint keys but computes the exact key alongside as a
    collision oracle, counting mismatches under the
    [Fingerprint_collisions] telemetry counter. [jobs] (default
    {!Gem_check.Par.jobs_default}) spreads the walk over that many
    domains; [computations]/[deadlocks] are canonically ordered, so the
    outcome's verdict-relevant content is identical for every job count
    and either key mode. *)

val run_one : ?emit_getvals:bool -> ?seed:int -> program -> Gem_model.Computation.t
(** One (pseudo-randomly scheduled) complete or stuck run — handy for
    examples and smoke tests. *)

(** {1 Small-step interface}

    Exposed for the POR differential harness: single configurations,
    labeled moves with element footprints, and the canonical state key. *)

type config

val initial_config : ?emit_getvals:bool -> program -> config

val config_moves :
  ?emit_getvals:bool -> program -> config -> (Explore.move * config) list
(** Every scheduler choice from [config], labeled by the acting process
    and carrying its element footprint. *)

val config_key : program -> config -> string
(** Canonical state key: byte-equal for configurations reached by
    different interleavings of commuting moves. *)

val config_fp : program -> config -> Gem_order.Fingerprint.t
(** Incremental fingerprint of the configuration — equal whenever
    {!config_key} is byte-equal; distinct keys collide with negligible
    probability. This is what the default (fingerprint-keyed) search keys
    its seen tables on. *)

val config_terminated : config -> bool

(** {1 Mechanical GEM translation (paper §9: "simple and mechanical enough
    to lend itself to automation")} *)

val language_spec : ?name:string -> program -> Gem_spec.Spec.t
(** The GEM program specification of this program under the Monitor
    primitive's GEM description: typed elements for every process,
    monitor component and shared variable; one group per monitor (with the
    lock-acquire port) enforcing the paper's scope rules; and the Monitor
    semantics restrictions:
    - ["<M>.release-needs-signal"]: Release of a wait is enabled by exactly
      one Signal, and each Signal enables at most one Release;
    - ["<M>.lock-alternation"]: between any two Acq events there is a Rel;
    - ["<M>.entries-sequential"]: entry bodies are mutually exclusive —
      between a Begin/End pair, no other Begin intervenes;
    plus the Variable restrictions on every variable element. *)

val element_of_process : string -> string

val element_of_lock : string -> string

val element_of_entry : string -> string -> string

val element_of_var : string -> string -> string

val element_of_cond : string -> string -> string
