module Value = Gem_model.Value

type t =
  | Int of int
  | Bool of bool
  | Str of string
  | Var of string
  | Neg of t
  | Not of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Mod of t * t
  | Eq of t * t
  | Ne of t * t
  | Lt of t * t
  | Le of t * t
  | Gt of t * t
  | Ge of t * t
  | And of t * t
  | Or of t * t
  | Queue_non_empty of string
  | Queue_length of string
  | Nil
  | Append of t * t
  | Head of t
  | Tail of t
  | Len of t

type store = (string * Value.t) list

exception Eval_error of string

let lookup store x =
  match List.assoc_opt x store with
  | Some v -> v
  | None -> raise (Eval_error ("unbound variable " ^ x))

let update store x v = (x, v) :: List.remove_assoc x store

let rec eval ?queue_test ?queue_len store e =
  let eval' e = eval ?queue_test ?queue_len store e in
  let int e = match eval' e with
    | Value.Int n -> n
    | v -> raise (Eval_error ("expected integer, got " ^ Value.to_string v))
  in
  let bool e = match eval' e with
    | Value.Bool b -> b
    | v -> raise (Eval_error ("expected boolean, got " ^ Value.to_string v))
  in
  match e with
  | Int n -> Value.Int n
  | Bool b -> Value.Bool b
  | Str s -> Value.Str s
  | Var x -> lookup store x
  | Neg e -> Value.Int (-int e)
  | Not e -> Value.Bool (not (bool e))
  | Add (a, b) -> Value.Int (int a + int b)
  | Sub (a, b) -> Value.Int (int a - int b)
  | Mul (a, b) -> Value.Int (int a * int b)
  | Div (a, b) ->
      let d = int b in
      if d = 0 then raise (Eval_error "division by zero");
      Value.Int (int a / d)
  | Mod (a, b) ->
      let d = int b in
      if d = 0 then raise (Eval_error "modulo by zero");
      Value.Int (int a mod d)
  | Eq (a, b) -> Value.Bool (Value.equal (eval' a) (eval' b))
  | Ne (a, b) -> Value.Bool (not (Value.equal (eval' a) (eval' b)))
  | Lt (a, b) -> Value.Bool (int a < int b)
  | Le (a, b) -> Value.Bool (int a <= int b)
  | Gt (a, b) -> Value.Bool (int a > int b)
  | Ge (a, b) -> Value.Bool (int a >= int b)
  | And (a, b) -> Value.Bool (bool a && bool b)
  | Or (a, b) -> Value.Bool (bool a || bool b)
  | Queue_non_empty c -> (
      match queue_test with
      | Some f -> Value.Bool (f c)
      | None -> raise (Eval_error "queue() outside a monitor"))
  | Queue_length c -> (
      match queue_len with
      | Some f -> Value.Int (f c)
      | None -> raise (Eval_error "queue_length() outside a monitor or task"))
  | Nil -> Value.List []
  | Append (l, x) -> (
      match eval' l with
      | Value.List xs -> Value.List (xs @ [ eval' x ])
      | v -> raise (Eval_error ("append to non-list " ^ Value.to_string v)))
  | Head l -> (
      match eval' l with
      | Value.List (x :: _) -> x
      | Value.List [] -> raise (Eval_error "head of empty list")
      | v -> raise (Eval_error ("head of non-list " ^ Value.to_string v)))
  | Tail l -> (
      match eval' l with
      | Value.List (_ :: xs) -> Value.List xs
      | Value.List [] -> raise (Eval_error "tail of empty list")
      | v -> raise (Eval_error ("tail of non-list " ^ Value.to_string v)))
  | Len l -> (
      match eval' l with
      | Value.List xs -> Value.Int (List.length xs)
      | v -> raise (Eval_error ("length of non-list " ^ Value.to_string v)))

let eval_bool ?queue_test ?queue_len store e =
  match eval ?queue_test ?queue_len store e with
  | Value.Bool b -> b
  | v -> raise (Eval_error ("expected boolean, got " ^ Value.to_string v))

let eval_int ?queue_test ?queue_len store e =
  match eval ?queue_test ?queue_len store e with
  | Value.Int n -> n
  | v -> raise (Eval_error ("expected integer, got " ^ Value.to_string v))

let reads e =
  let rec go acc = function
    | Int _ | Bool _ | Str _ | Queue_non_empty _ | Queue_length _ | Nil -> acc
    | Var x -> if List.mem x acc then acc else x :: acc
    | Neg e | Not e | Head e | Tail e | Len e -> go acc e
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Mod (a, b)
    | Eq (a, b) | Ne (a, b) | Lt (a, b) | Le (a, b) | Gt (a, b) | Ge (a, b)
    | And (a, b) | Or (a, b) | Append (a, b) ->
        go (go acc a) b
  in
  List.rev (go [] e)

let rec pp ppf = function
  | Int n -> Format.fprintf ppf "%d" n
  | Bool b -> Format.fprintf ppf "%b" b
  | Str s -> Format.fprintf ppf "%S" s
  | Var x -> Format.fprintf ppf "%s" x
  | Neg e -> Format.fprintf ppf "-(%a)" pp e
  | Not e -> Format.fprintf ppf "not(%a)" pp e
  | Add (a, b) -> Format.fprintf ppf "(%a + %a)" pp a pp b
  | Sub (a, b) -> Format.fprintf ppf "(%a - %a)" pp a pp b
  | Mul (a, b) -> Format.fprintf ppf "(%a * %a)" pp a pp b
  | Div (a, b) -> Format.fprintf ppf "(%a / %a)" pp a pp b
  | Mod (a, b) -> Format.fprintf ppf "(%a mod %a)" pp a pp b
  | Eq (a, b) -> Format.fprintf ppf "(%a = %a)" pp a pp b
  | Ne (a, b) -> Format.fprintf ppf "(%a <> %a)" pp a pp b
  | Lt (a, b) -> Format.fprintf ppf "(%a < %a)" pp a pp b
  | Le (a, b) -> Format.fprintf ppf "(%a <= %a)" pp a pp b
  | Gt (a, b) -> Format.fprintf ppf "(%a > %a)" pp a pp b
  | Ge (a, b) -> Format.fprintf ppf "(%a >= %a)" pp a pp b
  | And (a, b) -> Format.fprintf ppf "(%a and %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a or %a)" pp a pp b
  | Queue_non_empty c -> Format.fprintf ppf "queue(%s)" c
  | Queue_length c -> Format.fprintf ppf "queue_length(%s)" c
  | Nil -> Format.fprintf ppf "[]"
  | Append (l, x) -> Format.fprintf ppf "append(%a, %a)" pp l pp x
  | Head l -> Format.fprintf ppf "head(%a)" pp l
  | Tail l -> Format.fprintf ppf "tail(%a)" pp l
  | Len l -> Format.fprintf ppf "len(%a)" pp l
