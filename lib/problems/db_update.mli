(** The distributed database update application (paper §1, §11 —
    "an algorithm for performing updates to a distributed database").

    Each of [sites] sites holds a replica of one register and originates
    one timestamped update; updates propagate over synchronous CSP
    channels in a full mesh, and each site applies the Thomas write rule
    (keep the update with the highest timestamp). Every site runs a single
    guarded loop offering its unsent updates and accepting any incoming
    one, so the symmetric protocol cannot deadlock.

    The paper's claims, checked mechanically:
    - {e lack of deadlock}: the exhaustive exploration reports no
      deadlocked leaf;
    - {e functional correctness}: in every computation, all sites finish
      with the same value — the maximum timestamp ({!convergence},
      {!converges_to}). *)

val program : sites:int -> Gem_lang.Csp.program
(** Site [i] (1-based) originates update value [100 + i] with timestamp
    [i]. Requires [sites >= 2]. *)

val site_name : int -> string

val convergence : Gem_logic.Formula.t
(** All [Final] marker events carry equal values. *)

val converges_to : sites:int -> Gem_logic.Formula.t
(** Every [Final] value is the maximum update ([100 + sites]). *)

type report = {
  computations : int;
  deadlocks : int;
  converges : bool;  (** Every computation's runs converge. *)
  explored : int;  (** Interpreter configurations visited. *)
  reduced : int;  (** Configurations pruned by partial-order reduction. *)
  exhausted : Gem_check.Budget.reason option;
      (** Exploration or checking was cut short; [converges] then covers
          only the sample actually examined. *)
}

val check :
  ?reduction:Gem_lang.Explore.reduction ->
  ?por:bool ->
  ?exact_keys:bool ->
  ?audit_keys:bool ->
  ?max_configs:int ->
  ?budget:Gem_check.Budget.t ->
  ?jobs:int ->
  ?batch:int ->
  ?resilience:Gem_lang.Explore.resilience ->
  sites:int ->
  unit ->
  report
(** Explore every schedule and check convergence on each computation,
    within the given budget. Never raises on exhaustion. [reduction]
    selects the reduction engine (and wins over [por]); [por] selects
    the reduced search (default {!Gem_lang.Explore.por_default});
    [exact_keys]/[audit_keys] select the search-key mode (defaults
    {!Gem_lang.Explore.exact_keys_default} /
    {!Gem_lang.Explore.audit_keys_default}). [jobs]
    parallelizes both exploration and per-computation checking over that
    many domains (default {!Gem_check.Par.jobs_default} for exploration);
    the report is identical for every job count unless the budget bites,
    in which case only the counters may differ. *)
