(** CSP and ADA solutions to the Reader's-Priority Readers/Writers problem
    (the paper's §11: "Monitor, CSP, and ADA solutions to the … Reader's
    Priority Readers/Writers problem have been verified").

    {b The distributed problem specification.} The centralized spec
    ({!Readers_writers.spec}) puts all control events on one element —
    natural for a monitor, where the lock serializes them. A message-
    passing realization has no such locus: each user's transaction events
    happen at the user. The distributed variant therefore hosts each
    user's [ReqRead]/[StartRead]/[EndRead] (or write counterparts) on a
    per-user control element [ctl_<user>], keeps a single [data] element
    (the data server process/task is sequential), and states the paper's
    safety restrictions in a correspondence-robust form:
    - {e mutual exclusion}: no history has both a read and a write (or two
      writes) in progress, where "s is in progress" means the first
      matching end after [s] at its element has not occurred;
    - {e reader's priority}: if a registered read request and a registered
      write request are both pending, the write's start does not occur
      before the read's;
    - the {e Variable restriction} on [data].

    The centralized spec's transaction-chain prerequisites are an idiom of
    the one-element structure: under causal projection of a message-passing
    program, scheduler causality (a controller's receive enabling a later
    grant) merges with transaction causality, so chains are not checked
    here — the ordering content they carry is captured by the temporal
    restrictions above. DESIGN.md discusses the trade-off.

    {b Event correspondences} (registration semantics): a request is
    pending from the moment the controller {e learns} of it — the
    requester's [EndOut] of the request message (CSP; the rendezvous makes
    sender- and receiver-side simultaneous) or the [Call] event (ADA; the
    call is queued at the server from that moment, and the server's select
    guards read the queue). Relinquishment ([EndRead]/[EndWrite]) maps to
    the {e arrival} of the done message ([ReqOut]/[Call]) so that the
    causal path to the next grant starts at the significant event. *)

val spec :
  readers:string list -> writers:string list -> Gem_spec.Spec.t
(** The distributed reader's-priority problem over the given user names. *)

val mutual_exclusion : readers:string list -> writers:string list -> Gem_logic.Formula.t

val readers_priority : readers:string list -> writers:string list -> Gem_logic.Formula.t

val ctl : string -> string
(** [ctl u] is user [u]'s control element name. *)

(** {1 CSP solution} *)

val csp_program : readers:int -> writers:int -> Gem_lang.Csp.program
(** Users, a controller process [C] (grant logic: readers whenever no
    writer is active; writers only when nothing is active {e and no read
    request is registered}), and a data server [D]. Reader [i] reads the
    value; writer [j] writes [100 + j]. *)

val csp_correspondence : Gem_check.Refine.correspondence

(** {1 ADA solution} *)

val ada_program : readers:int -> writers:int -> Gem_lang.Ada.program
(** Users, a server task [S] whose select guards implement reader's
    priority using the entry-queue length (ADA's ['Count]), and a data
    task [D] with [Get]/[Put] entries. *)

val ada_correspondence : Gem_check.Refine.correspondence

(** {1 Broken variants (failure injection)} *)

val csp_program_no_priority : readers:int -> writers:int -> Gem_lang.Csp.program
(** The controller grants writers even while read requests are registered
    — must violate {!readers_priority} (but not mutual exclusion). *)

val ada_program_no_priority : readers:int -> writers:int -> Gem_lang.Ada.program
(** The server's StartWrite guard ignores the StartRead queue. *)

val user_names : readers:int -> writers:int -> string list * string list
(** (reader names, writer names). *)
