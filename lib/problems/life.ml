module F = Gem_logic.Formula
module V = Gem_model.Value
module Computation = Gem_model.Computation
module Event = Gem_model.Event

type cell = int * int

let element_of_cell (x, y) = Printf.sprintf "cell_%d_%d" x y

let neighbours ~width ~height (x, y) =
  let wrap v m = ((v mod m) + m) mod m in
  List.filter_map
    (fun (dx, dy) ->
      if dx = 0 && dy = 0 then None
      else Some (wrap (x + dx) width, wrap (y + dy) height))
    [ (-1, -1); (0, -1); (1, -1); (-1, 0); (1, 0); (-1, 1); (0, 1); (1, 1) ]

let reference ~width ~height ~generations ~alive =
  let initial = Array.init height (fun y -> Array.init width (fun x -> List.mem (x, y) alive)) in
  let step grid =
    Array.init height (fun y ->
        Array.init width (fun x ->
            let live_neighbours =
              List.length
                (List.filter (fun (nx, ny) -> grid.(ny).(nx)) (neighbours ~width ~height (x, y)))
            in
            if grid.(y).(x) then live_neighbours = 2 || live_neighbours = 3
            else live_neighbours = 3))
  in
  let rec gens acc grid g =
    if g = generations then List.rev (grid :: acc) else gens (grid :: acc) (step grid) (g + 1)
  in
  gens [] initial 0

let cells ~width ~height =
  List.concat (List.init height (fun y -> List.init width (fun x -> (x, y))))

let build ~width ~height ~generations ~alive =
  let grids = Array.of_list (reference ~width ~height ~generations ~alive) in
  let b = Gem_model.Build.create () in
  let start = Gem_model.Build.emit b ~element:"main" ~klass:"Start" () in
  let all = cells ~width ~height in
  (* handle of each cell's latest state event *)
  let last = Hashtbl.create 64 in
  List.iter
    (fun c ->
      let x, y = c in
      let h =
        Gem_model.Build.emit b ~element:(element_of_cell c) ~klass:"State"
          ~params:[ ("gen", V.Int 0); ("alive", V.Bool grids.(0).(y).(x)) ]
          ()
      in
      Gem_model.Build.enable b start h;
      Hashtbl.replace last c h)
    all;
  for g = 1 to generations do
    let prev = Hashtbl.copy last in
    List.iter
      (fun c ->
        let x, y = c in
        let h =
          Gem_model.Build.emit b ~element:(element_of_cell c) ~klass:"State"
            ~params:[ ("gen", V.Int g); ("alive", V.Bool grids.(g).(y).(x)) ]
            ()
        in
        (* The cell's next state is enabled by its own and its neighbours'
           previous states — these joins are the state messages. *)
        Gem_model.Build.enable b (Hashtbl.find prev c) h;
        List.iter
          (fun n -> Gem_model.Build.enable b (Hashtbl.find prev n) h)
          (neighbours ~width ~height c);
        Hashtbl.replace last c h)
      all
  done;
  Gem_model.Build.finish b

let cell_etype =
  Gem_spec.Etype.make "LifeCell"
    ~events:
      [
        {
          Gem_spec.Etype.klass = "State";
          schema = [ ("gen", Gem_spec.Etype.P_int); ("alive", Gem_spec.Etype.P_bool) ];
        };
      ]
    ()

let main_etype =
  Gem_spec.Etype.make "Main" ~events:[ { Gem_spec.Etype.klass = "Start"; schema = [] } ] ()

let spec ~width ~height =
  Gem_spec.Spec.make "async-life"
    ~elements:
      (("main", main_etype)
      :: List.map (fun c -> (element_of_cell c, cell_etype)) (cells ~width ~height))
    ()

let matches_reference ~width ~height ~generations ~alive =
  let grids = Array.of_list (reference ~width ~height ~generations ~alive) in
  F.forall
    [ ("s", F.Cls "State") ]
    (F.sem "matches-reference" [ "s" ] (fun comp _hist handles ->
         match handles with
         | [ h ] -> (
             let e = Computation.event comp h in
             let g = V.as_int (Event.param e "gen") in
             let a = V.as_bool (Event.param e "alive") in
             match String.split_on_char '_' e.Event.id.element with
             | [ _; xs; ys ] ->
                 let x = int_of_string xs and y = int_of_string ys in
                 g <= generations && Bool.equal grids.(g).(y).(x) a
             | _ -> false)
         | _ -> false))

let progress ~generations =
  F.forall
    [ ("s", F.Cls "State") ]
    (F.Implies
       (F.Atom (F.Cmp (F.Eq, F.Param ("s", "gen"), F.Const (V.Int generations))),
        F.eventually (F.occurred "s")))

let asynchrony_witness comp =
  let states = Computation.events_of_class comp "State" in
  let gen h = V.as_int (Event.param (Computation.event comp h) "gen") in
  let rec find = function
    | [] -> None
    | h :: rest -> (
        match
          List.find_opt (fun h' -> gen h' <> gen h && Computation.concurrent comp h h') rest
        with
        | Some h' ->
            Some ((Computation.event comp h).Event.id, (Computation.event comp h').Event.id)
        | None -> find rest)
  in
  find states
