(** The asynchronous, distributed Game of Life (paper §1, §11).

    Each cell of a [width] x [height] torus is its own GEM element (its
    own locus of activity). The cell's generation-[g] state event is
    enabled by its own and its eight neighbours' generation-[g-1] events —
    the enable edges {e are} the state messages of the distributed
    implementation. No global clock exists: the temporal order is genuinely
    partial, and distant cells can be generations apart in a single
    history, which is what "asynchronous" means here (checked by
    {!asynchrony_witness}).

    The paper's claims, checked mechanically:
    - {e functional correctness}: every state event carries exactly the
      value the synchronous reference computes ({!matches_reference});
    - {e progress}: every cell eventually reaches the final generation
      ({!progress} over runs — and structurally, the events exist). *)

type cell = int * int

val build :
  width:int -> height:int -> generations:int -> alive:cell list -> Gem_model.Computation.t
(** The computation of the distributed execution: one [State(gen, alive)]
    event per cell per generation [0..generations], plus the [main] start
    event. *)

val reference :
  width:int -> height:int -> generations:int -> alive:cell list -> bool array array list
(** Synchronous reference: the grid at each generation [0..generations];
    [(grid).(y).(x)]. *)

val spec : width:int -> height:int -> Gem_spec.Spec.t
(** Cell elements with their [State] event class. *)

val matches_reference :
  width:int -> height:int -> generations:int -> alive:cell list -> Gem_logic.Formula.t
(** Every State event's [alive] parameter equals the reference value for
    its cell and generation (a [Sem] restriction). *)

val progress : generations:int -> Gem_logic.Formula.t
(** [<> occurred] for every final-generation state event. *)

val asynchrony_witness :
  Gem_model.Computation.t -> (Gem_model.Event.id * Gem_model.Event.id) option
(** Two state events of {e different} generations that are potentially
    concurrent — impossible in a synchronous (barrier-stepped) execution. *)

val element_of_cell : cell -> string
