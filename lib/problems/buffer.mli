(** The One-Slot Buffer and Bounded Buffer problems (paper §1, §11), as GEM
    problem specifications, with verified Monitor, CSP and ADA solutions.

    {b Problem specification.} Two control elements: ["buffer.in"] hosting
    [Dep(item)] events and ["buffer.out"] hosting [Rem(item)] events (one
    class per element, so an event's occurrence index is its per-class
    sequence number). Restrictions, for capacity [n]:
    - [value-fifo]: the k-th removal yields the k-th deposited item, and
      the deposit temporally precedes it;
    - [capacity]: the (k+n)-th deposit temporally follows the k-th removal
      (at most [n] items are ever buffered).
    The One-Slot Buffer is the [n = 1] instance, where deposits and
    removals strictly alternate. *)

val spec : capacity:int -> Gem_spec.Spec.t

val value_fifo : Gem_logic.Formula.t

val capacity_bound : int -> Gem_logic.Formula.t

(** {1 Solutions}

    Each generator produces a program in which [producers] producer
    processes each deposit [items_each] distinct items and [consumers]
    consumer processes remove them (the total count divides evenly), plus
    the correspondence mapping its events onto the problem spec. *)

val monitor_solution :
  capacity:int -> producers:int -> consumers:int -> items_each:int -> Gem_lang.Monitor.program
(** The classic bounded-buffer monitor: entries [deposit]/[fetch], a list-
    valued buffer variable, conditions [notfull]/[notempty]. *)

val monitor_correspondence : Gem_check.Refine.correspondence
(** [Begin] of the deposit entry ↦ [Dep]; [End] of the fetch entry ↦
    [Rem]. *)

val csp_solution :
  capacity:int -> producers:int -> consumers:int -> items_each:int -> Gem_lang.Csp.program
(** A buffer process holding a local list, alternating over guarded
    receive (when not full) and guarded sends to consumers (when not
    empty), CSP-style. *)

val csp_correspondence : Gem_check.Refine.correspondence
(** Buffer-process [EndIn] ↦ [Dep]; buffer-process [EndOut] ↦ [Rem]. *)

val ada_solution :
  capacity:int -> producers:int -> consumers:int -> items_each:int -> Gem_lang.Ada.program
(** A buffer task with a [Select] over guarded [Deposit] and [Fetch]
    entries. *)

val ada_correspondence : Gem_check.Refine.correspondence
(** [AcceptBegin(Deposit)] ↦ [Dep]; [AcceptEnd(Fetch)] ↦ [Rem]. *)

(** {1 A knowingly broken solution (failure injection)} *)

val buggy_monitor_solution :
  capacity:int -> producers:int -> consumers:int -> items_each:int -> Gem_lang.Monitor.program
(** Like {!monitor_solution} but the deposit entry omits the full-buffer
    wait — its computations must violate [capacity]. *)
