module F = Gem_logic.Formula
module V = Gem_model.Value
module E = Gem_lang.Expr
module Csp = Gem_lang.Csp

let site_name i = Printf.sprintf "S%d" i

(* One site: a guarded loop that offers its own stamped update to every
   peer not yet served, and accepts any incoming update, applying the
   Thomas write rule (newest timestamp wins). The stamped update is a
   single integer [100 + i]; timestamps are the site index, so "newest"
   is simply the larger value — all replicas must converge to the maximum. *)
let site ~sites i =
  let peers = List.filter (fun j -> j <> i) (List.init sites (fun j -> j + 1)) in
  let sent_flag j = Printf.sprintf "sent%d" j in
  {
    Csp.proc_name = site_name i;
    locals =
      [ ("cur", V.Int (100 + i)); ("m", V.Int 0); ("recvd", V.Int 0) ]
      @ List.map (fun j -> (sent_flag j, V.Int 0)) peers;
    code =
      [
        Csp.CDo
          (List.map
             (fun j ->
               {
                 Csp.guard = E.Eq (E.Var (sent_flag j), E.Int 0);
                 comm = Some (Csp.Send { to_ = site_name j; value = E.Int (100 + i) });
                 body = [ Csp.CLocal (sent_flag j, E.Int 1) ];
               })
             peers
           @ List.map
               (fun j ->
                 {
                   Csp.guard = E.Lt (E.Var "recvd", E.Int (sites - 1));
                   comm = Some (Csp.Recv { from_ = site_name j; bind = "m" });
                   body =
                     [
                       Csp.CIfb
                         (E.Gt (E.Var "m", E.Var "cur"),
                          [ Csp.CLocal ("cur", E.Var "m") ],
                          []);
                       Csp.CLocal ("recvd", E.Add (E.Var "recvd", E.Int 1));
                     ];
                 })
               peers);
        Csp.CMark { klass = "Final"; params = [ E.Var "cur" ] };
      ];
  }

let program ~sites =
  if sites < 2 then invalid_arg "Db_update.program: need at least 2 sites";
  List.init sites (fun i -> site ~sites (i + 1))

let convergence =
  let open F in
  forall
    [ ("f1", Cls "Final"); ("f2", Cls "Final") ]
    (param "f1" "p0" =. param "f2" "p0")

let converges_to ~sites =
  let open F in
  forall [ ("f", Cls "Final") ] (param "f" "p0" =. const_int (100 + sites))

type report = {
  computations : int;
  deadlocks : int;
  converges : bool;
  explored : int;
  reduced : int;
  exhausted : Gem_check.Budget.reason option;
}

let check ?reduction ?por ?exact_keys ?audit_keys ?max_configs ?budget ?jobs
    ?batch ?resilience ~sites () =
  let o =
    Csp.explore ?reduction ?por ?exact_keys ?audit_keys ?max_configs ?budget
      ?jobs ?batch ?resilience (program ~sites)
  in
  let spec = Csp.language_spec ~name:"db-update" (program ~sites) in
  let prop = F.conj [ convergence; converges_to ~sites ] in
  let verdicts =
    Gem_check.Par.map ?jobs
      (fun comp -> Gem_check.Check.check_formula ?budget spec comp ~name:"convergence" prop)
      o.computations
  in
  let exhausted =
    match o.exhausted with
    | Some r -> Some r
    | None -> List.find_map (fun v -> v.Gem_check.Verdict.exhaustion) verdicts
  in
  {
    computations = List.length o.computations;
    deadlocks = List.length o.deadlocks;
    converges = List.for_all Gem_check.Verdict.ok verdicts;
    explored = o.explored;
    reduced = o.reduced;
    exhausted;
  }
