module F = Gem_logic.Formula
module V = Gem_model.Value
module E = Gem_lang.Expr
module Etype = Gem_spec.Etype
module Computation = Gem_model.Computation
module Event = Gem_model.Event
module Csp = Gem_lang.Csp
module Ada = Gem_lang.Ada

let ctl u = "ctl_" ^ u
let data = "data"

let user_names ~readers ~writers =
  ( List.init readers (fun i -> Printf.sprintf "R%d" (i + 1)),
    List.init writers (fun i -> Printf.sprintf "W%d" (i + 1)) )

(* ------------------------------------------------------------------ *)
(* The distributed problem specification                               *)
(* ------------------------------------------------------------------ *)

let reader_ctl_etype =
  Etype.make "ReaderControl"
    ~events:
      [
        { Etype.klass = "ReqRead"; schema = [] };
        { klass = "StartRead"; schema = [] };
        { klass = "EndRead"; schema = [] };
      ]
    ()

let writer_ctl_etype =
  Etype.make "WriterControl"
    ~events:
      [
        { Etype.klass = "ReqWrite"; schema = [] };
        { klass = "StartWrite"; schema = [] };
        { klass = "EndWrite"; schema = [] };
      ]
    ()

let user_etype =
  Etype.make "User"
    ~events:
      [
        { Etype.klass = "Read"; schema = [] };
        { klass = "FinishRead"; schema = [ ("info", Etype.P_any) ] };
        { klass = "Write"; schema = [ ("info", Etype.P_any) ] };
        { klass = "FinishWrite"; schema = [] };
      ]
    ()

(* "s is in progress": s occurred and the first matching end after it (at
   the same control element, before any next start) has not occurred. *)
let in_progress ~el ~start_cls ~end_cls s =
  let open F in
  occurred s
  &&& neg
        (exists
           [ ("_e", Cls_at (el, end_cls)) ]
           (elem_lt s "_e" &&& occurred "_e"
            &&& neg
                  (exists
                     [ ("_s'", Cls_at (el, start_cls)) ]
                     (elem_lt s "_s'" &&& elem_lt "_s'" "_e"))))

let mutual_exclusion ~readers ~writers =
  let open F in
  let read_write =
    List.concat_map
      (fun r ->
        List.map
          (fun w ->
            forall
              [ ("_sr", Cls_at (ctl r, "StartRead")); ("_sw", Cls_at (ctl w, "StartWrite")) ]
              (neg
                 (in_progress ~el:(ctl r) ~start_cls:"StartRead" ~end_cls:"EndRead" "_sr"
                  &&& in_progress ~el:(ctl w) ~start_cls:"StartWrite" ~end_cls:"EndWrite"
                        "_sw")))
          writers)
      readers
  in
  let write_write =
    List.concat_map
      (fun w1 ->
        List.filter_map
          (fun w2 ->
            if String.compare w1 w2 < 0 then
              Some
                (forall
                   [
                     ("_s1", Cls_at (ctl w1, "StartWrite"));
                     ("_s2", Cls_at (ctl w2, "StartWrite"));
                   ]
                   (neg
                      (in_progress ~el:(ctl w1) ~start_cls:"StartWrite" ~end_cls:"EndWrite"
                         "_s1"
                       &&& in_progress ~el:(ctl w2) ~start_cls:"StartWrite"
                             ~end_cls:"EndWrite" "_s2")))
            else None)
          writers)
      writers
  in
  henceforth (conj (read_write @ write_write))

(* The start matching request [q]: the first start after [q] at its control
   element with no intervening request (requests and starts alternate
   there). *)
let matched_start ~el ~req_cls ~start_var q =
  let open F in
  elem_lt q start_var
  &&& neg
        (exists
           [ ("_q'", Cls_at (el, req_cls)) ]
           (elem_lt q "_q'" &&& elem_lt "_q'" start_var))

let granted ~el ~req_cls ~start_cls q =
  let open F in
  exists
    [ ("_s", Cls_at (el, start_cls)) ]
    (matched_start ~el ~req_cls ~start_var:"_s" q &&& occurred "_s")

let readers_priority ~readers ~writers =
  let open F in
  henceforth
    (conj
       (List.concat_map
          (fun r ->
            List.map
              (fun w ->
                let pending_r =
                  occurred "_r" &&& neg (granted ~el:(ctl r) ~req_cls:"ReqRead" ~start_cls:"StartRead" "_r")
                in
                let pending_q =
                  occurred "_q" &&& neg (granted ~el:(ctl w) ~req_cls:"ReqWrite" ~start_cls:"StartWrite" "_q")
                in
                forall
                  [ ("_r", Cls_at (ctl r, "ReqRead")); ("_q", Cls_at (ctl w, "ReqWrite")) ]
                  (pending_r &&& pending_q
                   ==> henceforth
                         (granted ~el:(ctl w) ~req_cls:"ReqWrite" ~start_cls:"StartWrite" "_q"
                          ==> granted ~el:(ctl r) ~req_cls:"ReqRead" ~start_cls:"StartRead" "_r")))
              writers)
          readers))

let spec ~readers ~writers =
  Gem_spec.Spec.make "readers-writers-distributed"
    ~elements:
      (((data, Etype.variable)
        :: List.map (fun r -> (r, user_etype)) readers)
      @ List.map (fun w -> (w, user_etype)) writers
      @ List.map (fun r -> (ctl r, reader_ctl_etype)) readers
      @ List.map (fun w -> (ctl w, writer_ctl_etype)) writers)
    ~restrictions:
      [
        ("mutual-exclusion", mutual_exclusion ~readers ~writers);
        ("readers-priority", readers_priority ~readers ~writers);
      ]
    ()

(* ------------------------------------------------------------------ *)
(* CSP solution                                                        *)
(* ------------------------------------------------------------------ *)

(* Message tags on user->controller channels. *)
let tag_req = 1
let tag_done = 2
let tag_grant = 0
let tag_read_data = -1

let csp_reader name =
  {
    Csp.proc_name = name;
    locals = [ ("g", V.Int 0); ("x", V.Int 0) ];
    code =
      [
        Csp.CMark { klass = "Read"; params = [] };
        Csp.CComm (Csp.Send { to_ = "C"; value = E.Int tag_req });
        Csp.CComm (Csp.Recv { from_ = "C"; bind = "g" });
        Csp.CComm (Csp.Send { to_ = "D"; value = E.Int tag_read_data });
        Csp.CComm (Csp.Recv { from_ = "D"; bind = "x" });
        Csp.CComm (Csp.Send { to_ = "C"; value = E.Int tag_done });
        Csp.CMark { klass = "FinishRead"; params = [ E.Var "x" ] };
      ];
  }

let csp_writer name value =
  {
    Csp.proc_name = name;
    locals = [ ("g", V.Int 0) ];
    code =
      [
        Csp.CMark { klass = "Write"; params = [ E.Int value ] };
        Csp.CComm (Csp.Send { to_ = "C"; value = E.Int tag_req });
        Csp.CComm (Csp.Recv { from_ = "C"; bind = "g" });
        Csp.CComm (Csp.Send { to_ = "D"; value = E.Int value });
        Csp.CComm (Csp.Send { to_ = "C"; value = E.Int tag_done });
        Csp.CMark { klass = "FinishWrite"; params = [] };
      ];
  }

let pend r = "pend_" ^ r

let csp_controller ~rnames ~wnames ~priority =
  let no_pending_reads =
    List.fold_left
      (fun acc r -> E.And (acc, E.Eq (E.Var (pend r), E.Int 0)))
      (E.Bool true) rnames
  in
  let reader_branches =
    List.concat_map
      (fun r ->
        [
          {
            Csp.guard = E.Bool true;
            comm = Some (Csp.Recv { from_ = r; bind = "m" });
            body =
              [
                Csp.CIfb
                  ( E.Eq (E.Var "m", E.Int tag_req),
                    [ Csp.CLocal (pend r, E.Int 1) ],
                    [ Csp.CLocal ("activeR", E.Sub (E.Var "activeR", E.Int 1)) ] );
              ];
          };
          {
            Csp.guard = E.And (E.Eq (E.Var (pend r), E.Int 1), E.Eq (E.Var "activeW", E.Int 0));
            comm = Some (Csp.Send { to_ = r; value = E.Int tag_grant });
            body =
              [
                Csp.CLocal (pend r, E.Int 0);
                Csp.CLocal ("activeR", E.Add (E.Var "activeR", E.Int 1));
              ];
          };
        ])
      rnames
  in
  let writer_branches =
    List.concat_map
      (fun w ->
        let base_guard =
          E.And
            ( E.Eq (E.Var (pend w), E.Int 1),
              E.And (E.Eq (E.Var "activeW", E.Int 0), E.Eq (E.Var "activeR", E.Int 0)) )
        in
        let guard = if priority then E.And (base_guard, no_pending_reads) else base_guard in
        [
          {
            Csp.guard = E.Bool true;
            comm = Some (Csp.Recv { from_ = w; bind = "m" });
            body =
              [
                Csp.CIfb
                  ( E.Eq (E.Var "m", E.Int tag_req),
                    [ Csp.CLocal (pend w, E.Int 1) ],
                    [ Csp.CLocal ("activeW", E.Int 0) ] );
              ];
          };
          {
            Csp.guard;
            comm = Some (Csp.Send { to_ = w; value = E.Int tag_grant });
            body = [ Csp.CLocal (pend w, E.Int 0); Csp.CLocal ("activeW", E.Int 1) ];
          };
        ])
      wnames
  in
  {
    Csp.proc_name = "C";
    locals =
      [ ("m", V.Int 0); ("activeR", V.Int 0); ("activeW", V.Int 0) ]
      @ List.map (fun u -> (pend u, V.Int 0)) (rnames @ wnames);
    code = [ Csp.CDo (reader_branches @ writer_branches) ];
  }

let csp_data ~users =
  {
    Csp.proc_name = "D";
    locals = [ ("val", V.Int 0); ("m", V.Int 0) ];
    code =
      [
        Csp.CDo
          (List.map
             (fun u ->
               {
                 Csp.guard = E.Bool true;
                 comm = Some (Csp.Recv { from_ = u; bind = "m" });
                 body =
                   [
                     Csp.CIfb
                       ( E.Ge (E.Var "m", E.Int 0),
                         [ Csp.CLocal ("val", E.Var "m") ],
                         [ Csp.CComm (Csp.Send { to_ = u; value = E.Var "val" }) ] );
                   ];
               })
             users);
      ];
  }

let csp_program_gen ~readers ~writers ~priority =
  let rnames, wnames = user_names ~readers ~writers in
  (csp_controller ~rnames ~wnames ~priority :: csp_data ~users:(rnames @ wnames)
  :: List.map csp_reader rnames)
  @ List.mapi (fun i w -> csp_writer w (100 + i + 1)) wnames

let csp_program ~readers ~writers = csp_program_gen ~readers ~writers ~priority:true

let csp_program_no_priority ~readers ~writers =
  csp_program_gen ~readers ~writers ~priority:false

(* Role of an element in the generated programs. *)
let role el =
  if String.equal el "C" then `Controller
  else if String.equal el "D" then `Data
  else if String.length el > 0 && el.[0] = 'R' then `Reader
  else if String.length el > 0 && el.[0] = 'W' then `Writer
  else `Other

(* The element-order predecessor of [h] (same element, previous index). *)
let elem_pred comp h =
  let e = Computation.event comp h in
  if e.Event.id.index = 0 then None
  else Computation.handle_of comp ~element:e.Event.id.element ~index:(e.Event.id.index - 1)

(* The partner-side Req event that enables [h] (for EndIn/EndOut). *)
let enabling_partner comp h klass =
  List.find_opt
    (fun p -> Event.has_class (Computation.event comp p) klass)
    (Computation.enable_preds comp h)

let mk to_element to_class to_params =
  Some { Gem_check.Refine.to_element; to_class; to_params }

(* Control events live at the controller — RWControl is the control locus,
   and C's element order totally orders registrations and grants, so the
   projection carries the full decision order (per-user significant C
   events are chained through the non-significant C events between them).

   - ReqRead/ReqWrite:  C's EndIn of a tag_req message (registration);
   - StartRead/StartWrite: C's EndOut of the grant;
   - EndRead/EndWrite:  C's EndIn of the tag_done message. *)
let csp_correspondence : Gem_check.Refine.correspondence =
 fun comp h ->
  let e = Computation.event comp h in
  let el = e.Event.id.element in
  match role el, e.Event.klass with
  (* User markers. *)
  | (`Reader | `Writer), "Read" -> mk el "Read" []
  | (`Reader | `Writer), "FinishRead" -> mk el "FinishRead" [ ("info", Event.param e "p0") ]
  | (`Reader | `Writer), "Write" -> mk el "Write" [ ("info", Event.param e "p0") ]
  | (`Reader | `Writer), "FinishWrite" -> mk el "FinishWrite" []
  (* Controller-side registration / relinquish: C's EndIn, partner found
     via the enabling ReqOut. *)
  | `Controller, "EndIn" -> (
      match enabling_partner comp h "ReqOut" with
      | Some p -> (
          let user = (Computation.event comp p).Event.id.element in
          let tag = Event.param e "value" in
          match role user, tag with
          | `Reader, V.Int 1 -> mk (ctl user) "ReqRead" []
          | `Reader, V.Int 2 -> mk (ctl user) "EndRead" []
          | `Writer, V.Int 1 -> mk (ctl user) "ReqWrite" []
          | `Writer, V.Int 2 -> mk (ctl user) "EndWrite" []
          | _ -> None)
      | None -> None)
  (* Controller-side grant: C's EndOut; the recipient is the "to" of the
     element-adjacent ReqOut. *)
  | `Controller, "EndOut" -> (
      match elem_pred comp h with
      | Some p
        when Event.has_class (Computation.event comp p) "ReqOut" -> (
          let user = V.as_string (Event.param (Computation.event comp p) "to") in
          match role user with
          | `Reader -> mk (ctl user) "StartRead" []
          | `Writer -> mk (ctl user) "StartWrite" []
          | _ -> None)
      | _ -> None)
  (* Data server events. *)
  | `Data, "EndOut" -> mk data "Getval" [ ("oldval", Event.param e "value") ]
  | `Data, "EndIn" -> (
      match enabling_partner comp h "ReqOut" with
      | Some p
        when role (Computation.event comp p).Event.id.element = `Writer ->
          mk data "Assign" [ ("newval", Event.param e "value") ]
      | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* ADA solution                                                        *)
(* ------------------------------------------------------------------ *)

let ada_reader name =
  {
    Ada.task_name = name;
    locals = [ ("x", V.Int 0) ];
    code =
      [
        Ada.AMark { klass = "Read"; params = [] };
        Ada.ACall { task = "S"; entry = "StartRead"; args = []; bind = None };
        Ada.ACall { task = "D"; entry = "Get"; args = []; bind = Some "x" };
        Ada.ACall { task = "S"; entry = "EndRead"; args = []; bind = None };
        Ada.AMark { klass = "FinishRead"; params = [ E.Var "x" ] };
      ];
  }

let ada_writer name value =
  {
    Ada.task_name = name;
    locals = [];
    code =
      [
        Ada.AMark { klass = "Write"; params = [ E.Int value ] };
        Ada.ACall { task = "S"; entry = "StartWrite"; args = []; bind = None };
        Ada.ACall { task = "D"; entry = "Put"; args = [ E.Int value ]; bind = None };
        Ada.ACall { task = "S"; entry = "EndWrite"; args = []; bind = None };
        Ada.AMark { klass = "FinishWrite"; params = [] };
      ];
  }

let ada_server ~readers ~writers ~priority =
  let services = 2 * (readers + writers) in
  let accept entry formals body =
    { Ada.acc_entry = entry; acc_formals = formals; acc_body = body; acc_result = None }
  in
  let start_write_guard =
    let base = E.And (E.Eq (E.Var "writing", E.Int 0), E.Eq (E.Var "readers", E.Int 0)) in
    if priority then E.And (base, E.Eq (E.Queue_length "StartRead", E.Int 0)) else base
  in
  {
    Ada.task_name = "S";
    locals = [ ("readers", V.Int 0); ("writing", V.Int 0); ("served", V.Int 0) ];
    code =
      [
        Ada.AWhile
          ( E.Lt (E.Var "served", E.Int services),
            [
              Ada.ASelect
                [
                  {
                    Ada.when_ = E.Eq (E.Var "writing", E.Int 0);
                    accept =
                      accept "StartRead" []
                        [ Ada.ALocal ("readers", E.Add (E.Var "readers", E.Int 1)) ];
                  };
                  {
                    Ada.when_ = start_write_guard;
                    accept = accept "StartWrite" [] [ Ada.ALocal ("writing", E.Int 1) ];
                  };
                  {
                    Ada.when_ = E.Bool true;
                    accept =
                      accept "EndRead" []
                        [ Ada.ALocal ("readers", E.Sub (E.Var "readers", E.Int 1)) ];
                  };
                  {
                    Ada.when_ = E.Bool true;
                    accept = accept "EndWrite" [] [ Ada.ALocal ("writing", E.Int 0) ];
                  };
                ];
              Ada.ALocal ("served", E.Add (E.Var "served", E.Int 1));
            ] );
      ];
  }

let ada_data ~accesses =
  {
    Ada.task_name = "D";
    locals = [ ("val", V.Int 0); ("served", V.Int 0) ];
    code =
      [
        Ada.AWhile
          ( E.Lt (E.Var "served", E.Int accesses),
            [
              Ada.ASelect
                [
                  {
                    Ada.when_ = E.Bool true;
                    accept =
                      {
                        Ada.acc_entry = "Get";
                        acc_formals = [];
                        acc_body = [];
                        acc_result = Some (E.Var "val");
                      };
                  };
                  {
                    Ada.when_ = E.Bool true;
                    accept =
                      {
                        Ada.acc_entry = "Put";
                        acc_formals = [ "x" ];
                        acc_body = [ Ada.ALocal ("val", E.Var "x") ];
                        acc_result = None;
                      };
                  };
                ];
              Ada.ALocal ("served", E.Add (E.Var "served", E.Int 1));
            ] );
      ];
  }

let ada_program_gen ~readers ~writers ~priority =
  let rnames, wnames = user_names ~readers ~writers in
  (ada_server ~readers ~writers ~priority
  :: ada_data ~accesses:(readers + writers)
  :: List.map ada_reader rnames)
  @ List.mapi (fun i w -> ada_writer w (100 + i + 1)) wnames

let ada_program ~readers ~writers = ada_program_gen ~readers ~writers ~priority:true

let ada_program_no_priority ~readers ~writers =
  ada_program_gen ~readers ~writers ~priority:false

let entry_of e = V.as_string (Event.param e "entry")

let server_role name =
  if String.equal name "S" then `Server else role name

(* Control events live at the server: the Enqueue event (queue insertion —
   the basis of ADA's 'Count, atomic with the call) registers a request or
   a relinquish; the AcceptBegin of a Start entry is the grant. All are at
   the server element, hence totally ordered. *)
let ada_correspondence : Gem_check.Refine.correspondence =
 fun comp h ->
  let e = Computation.event comp h in
  let el = e.Event.id.element in
  match server_role el, e.Event.klass with
  | (`Reader | `Writer), "Read" -> mk el "Read" []
  | (`Reader | `Writer), "FinishRead" -> mk el "FinishRead" [ ("info", Event.param e "p0") ]
  | (`Reader | `Writer), "Write" -> mk el "Write" [ ("info", Event.param e "p0") ]
  | (`Reader | `Writer), "FinishWrite" -> mk el "FinishWrite" []
  | `Server, "Enqueue" -> (
      let user = V.as_string (Event.param e "caller") in
      match entry_of e with
      | "StartRead" -> mk (ctl user) "ReqRead" []
      | "StartWrite" -> mk (ctl user) "ReqWrite" []
      | "EndRead" -> mk (ctl user) "EndRead" []
      | "EndWrite" -> mk (ctl user) "EndWrite" []
      | _ -> None)
  | `Server, "AcceptBegin" -> (
      let user = V.as_string (Event.param e "caller") in
      match entry_of e with
      | "StartRead" -> mk (ctl user) "StartRead" []
      | "StartWrite" -> mk (ctl user) "StartWrite" []
      | _ -> None)
  | `Data, "AcceptEnd" when String.equal (entry_of e) "Get" ->
      mk data "Getval" [ ("oldval", Event.param e "value") ]
  | `Data, "AcceptBegin" when String.equal (entry_of e) "Put" ->
      let newval =
        match Event.param e "args" with V.List [ v ] -> v | v -> v
      in
      mk data "Assign" [ ("newval", newval) ]
  | _ -> None
