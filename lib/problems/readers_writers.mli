(** The Readers/Writers problem (paper §8.3, §9): the GEM problem
    specification, its five priority variants, the paper's monitor program
    verbatim, and mutated programs for failure injection.

    {b Problem structure} (following the paper's [RWProblem]): one control
    element ["control"] hosting [ReqRead], [StartRead], [EndRead],
    [ReqWrite], [StartWrite] and [EndWrite] events; one user element per
    user hosting [Read]/[FinishRead]/[Write]/[FinishWrite] markers; data
    elements for the database. The thread type [piRW] labels each
    transaction's control chain
    ([Read :: ReqRead :: StartRead :: EndRead :: FinishRead] or the write
    counterpart), exactly the paper's path-expression notation.

    {b The five versions} (paper §11 mentions five) differ only in the
    added scheduling restriction:
    - {e free-for-all}: mutual exclusion only ("writers exclude others");
    - {e reader's priority}: a pending read is serviced before a pending
      write (the paper's worked example);
    - {e writer's priority}: symmetric;
    - {e arrival order (FIFO)}: of two pending requests, the one requested
      first starts first;
    - {e no-starved-writers}: once a write is pending, reads that are
      requested afterwards do not start before it (weak writer priority —
      readers already pending may still go first). *)

type version =
  | Free_for_all
  | Readers_priority
  | Writers_priority
  | Arrival_order
  | No_starved_writers

val all_versions : version list

val version_name : version -> string

val control : string
(** The control element name. *)

val thread_name : string
(** ["piRW"]. *)

val spec : version -> users:string list -> Gem_spec.Spec.t
(** The problem specification: control + user elements, the [piRW] thread,
    transaction-chain prerequisites, mutual exclusion, and the version's
    scheduling restriction. *)

val mutual_exclusion : Gem_logic.Formula.t

val transaction_chains : users:string list -> Gem_logic.Formula.t

val version_restriction : version -> Gem_logic.Formula.t option

(** {1 Programs} *)

val paper_monitor : Gem_lang.Monitor.monitor
(** The ReadersWriters monitor of §9, transcribed statement for statement
    (site tags [startread]/[endread]/[startwrite]/[endwrite] mark the
    significant assignments, as in the paper's event correspondence). *)

val writers_priority_monitor : Gem_lang.Monitor.monitor
(** A Courtois-style writer-priority variant: readers wait while a writer
    is waiting. *)

val buggy_monitor : Gem_lang.Monitor.monitor
(** The paper's monitor with EndWrite's wakeup preference inverted
    (writers first even when readers wait) — this must violate
    {!Readers_priority} but still satisfy mutual exclusion. *)

val no_exclusion_monitor : Gem_lang.Monitor.monitor
(** StartWrite does not wait for readers to drain — violates
    {!mutual_exclusion}. *)

val program :
  monitor:Gem_lang.Monitor.monitor ->
  readers:int ->
  writers:int ->
  Gem_lang.Monitor.program
(** [readers] reader processes and [writers] writer processes around the
    given monitor, each performing one transaction on a shared [data]
    variable, emitting the user marker events. Reader names are
    [R1, R2, ...]; writer names [W1, ...] writing value [100 + i]. *)

val user_names : readers:int -> writers:int -> string list

val correspondence : Gem_check.Refine.correspondence
(** The paper's §9 event correspondence: [ReqRead] ↦ BEGIN of entry
    StartRead, [StartRead] ↦ the [readernum := readernum + 1] assignment,
    [EndRead] ↦ the [readernum := readernum - 1] assignment, and the write
    counterparts; user markers and data accesses map to themselves. *)
