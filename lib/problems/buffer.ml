module F = Gem_logic.Formula
module V = Gem_model.Value
module E = Gem_lang.Expr
module Etype = Gem_spec.Etype

let in_element = "buffer.in"
let out_element = "buffer.out"

let in_etype =
  Etype.make "BufferIn"
    ~events:[ { Etype.klass = "Dep"; schema = [ ("item", Etype.P_any) ] } ]
    ()

let out_etype =
  Etype.make "BufferOut"
    ~events:[ { Etype.klass = "Rem"; schema = [ ("item", Etype.P_any) ] } ]
    ()

let value_fifo =
  let open F in
  forall
    [ ("d", Cls "Dep"); ("r", Cls "Rem") ]
    (Atom (Cmp (Eq, Index "r", Index "d"))
     ==> ((param "d" "item" =. param "r" "item") &&& temp_lt "d" "r"))

let capacity_bound n =
  let open F in
  forall
    [ ("d", Cls "Dep"); ("r", Cls "Rem") ]
    (Atom (Cmp (Eq, Index "d", Plus (Index "r", n))) ==> temp_lt "r" "d")

let spec ~capacity =
  Gem_spec.Spec.make
    (Printf.sprintf "bounded-buffer-%d" capacity)
    ~elements:[ (in_element, in_etype); (out_element, out_etype) ]
    ~restrictions:[ ("value-fifo", value_fifo); ("capacity", capacity_bound capacity) ]
    ()

(* ------------------------------------------------------------------ *)
(* Monitor solution                                                    *)
(* ------------------------------------------------------------------ *)

open Gem_lang.Monitor

let buffer_monitor ~capacity ~check_full =
  {
    mon_name = "BB";
    vars = [ ("buf", V.List []); ("out", V.Int 0) ];
    conditions = [ "notfull"; "notempty" ];
    entries =
      [
        {
          entry_name = "deposit";
          formals = [ "item" ];
          body =
            (if check_full then
               [ MIf (E.Ge (E.Len (E.Var "buf"), E.Int capacity), [ MWait "notfull" ], []) ]
             else [])
            @ [
                MAssign { var = "buf"; value = E.Append (E.Var "buf", E.Var "item"); site = Some "dep" };
                MSignal "notempty";
              ];
        };
        {
          entry_name = "fetch";
          formals = [];
          body =
            [
              MIf (E.Eq (E.Len (E.Var "buf"), E.Int 0), [ MWait "notempty" ], []);
              MAssign { var = "out"; value = E.Head (E.Var "buf"); site = Some "rem" };
              MAssign { var = "buf"; value = E.Tail (E.Var "buf"); site = Some "rem" };
              MSignal "notfull";
              MReturn (E.Var "out");
            ];
        };
      ];
  }

let check_counts ~producers ~consumers ~items_each =
  let total = producers * items_each in
  if consumers <= 0 || producers <= 0 || total mod consumers <> 0 then
    invalid_arg "Buffer: total items must divide evenly among consumers";
  total / consumers

let monitor_producer i items_each =
  {
    proc_name = Printf.sprintf "Prod%d" i;
    locals = [ ("k", V.Int 0) ];
    code =
      [
        PWhile
          ( E.Lt (E.Var "k", E.Int items_each),
            [
              PCall
                {
                  monitor = "BB";
                  entry = "deposit";
                  args = [ E.Add (E.Mul (E.Int (1000 * i), E.Int 1), E.Var "k") ];
                  bind = None;
                };
              PLocal ("k", E.Add (E.Var "k", E.Int 1));
            ] );
      ];
  }

let monitor_consumer j quota =
  {
    proc_name = Printf.sprintf "Cons%d" j;
    locals = [ ("k", V.Int 0); ("x", V.Int 0) ];
    code =
      [
        PWhile
          ( E.Lt (E.Var "k", E.Int quota),
            [
              PCall { monitor = "BB"; entry = "fetch"; args = []; bind = Some "x" };
              PLocal ("k", E.Add (E.Var "k", E.Int 1));
            ] );
      ];
  }

let monitor_solution_gen ~capacity ~producers ~consumers ~items_each ~check_full =
  let quota = check_counts ~producers ~consumers ~items_each in
  {
    monitors = [ buffer_monitor ~capacity ~check_full ];
    shared = [];
    processes =
      List.init producers (fun i -> monitor_producer (i + 1) items_each)
      @ List.init consumers (fun j -> monitor_consumer (j + 1) quota);
  }

let monitor_solution ~capacity ~producers ~consumers ~items_each =
  monitor_solution_gen ~capacity ~producers ~consumers ~items_each ~check_full:true

let buggy_monitor_solution ~capacity ~producers ~consumers ~items_each =
  monitor_solution_gen ~capacity ~producers ~consumers ~items_each ~check_full:false

(* In the paper's style (§9 maps StartRead to the readernum assignment,
   not to the entry's BEGIN), the significant deposit event is the moment
   the item enters the buffer — the [buf] assignment tagged "dep" — and the
   significant removal is the [out := head(buf)] assignment tagged "rem".
   Mapping BEGIN(deposit) instead would be wrong: a deposit that waits on
   [notfull] has entered the entry long before its item is buffered. *)
let monitor_correspondence : Gem_check.Refine.correspondence =
 fun comp h ->
  let e = Gem_model.Computation.event comp h in
  let el = e.Gem_model.Event.id.element in
  let site = Gem_model.Event.param_opt e "site" in
  if String.equal el "BB.buf" && site = Some (V.Str "dep") then
    let item =
      match Gem_model.Event.param e "newval" with
      | V.List items when items <> [] -> List.nth items (List.length items - 1)
      | v -> v
    in
    Some { Gem_check.Refine.to_element = in_element; to_class = "Dep"; to_params = [ ("item", item) ] }
  else if String.equal el "BB.out" && site = Some (V.Str "rem") then
    Some
      {
        Gem_check.Refine.to_element = out_element;
        to_class = "Rem";
        to_params = [ ("item", Gem_model.Event.param e "newval") ];
      }
  else None

(* ------------------------------------------------------------------ *)
(* CSP solution                                                        *)
(* ------------------------------------------------------------------ *)

module Csp = Gem_lang.Csp

let csp_solution ~capacity ~producers ~consumers ~items_each =
  let quota = check_counts ~producers ~consumers ~items_each in
  let producer i =
    {
      Csp.proc_name = Printf.sprintf "Prod%d" i;
      locals = [ ("k", V.Int 0) ];
      code =
        [
          Csp.CWhile
            ( E.Lt (E.Var "k", E.Int items_each),
              [
                Csp.CComm
                  (Csp.Send { to_ = "Buf"; value = E.Add (E.Int (1000 * i), E.Var "k") });
                Csp.CLocal ("k", E.Add (E.Var "k", E.Int 1));
              ] );
        ];
    }
  in
  let consumer j =
    {
      Csp.proc_name = Printf.sprintf "Cons%d" j;
      locals = [ ("k", V.Int 0); ("x", V.Int 0) ];
      code =
        [
          Csp.CWhile
            ( E.Lt (E.Var "k", E.Int quota),
              [
                Csp.CComm (Csp.Recv { from_ = "Buf"; bind = "x" });
                Csp.CLocal ("k", E.Add (E.Var "k", E.Int 1));
              ] );
        ];
    }
  in
  let buffer =
    {
      Csp.proc_name = "Buf";
      locals = [ ("buf", V.List []); ("x", V.Int 0) ];
      code =
        [
          Csp.CDo
            (List.init producers (fun i ->
                 {
                   Csp.guard = E.Lt (E.Len (E.Var "buf"), E.Int capacity);
                   comm = Some (Csp.Recv { from_ = Printf.sprintf "Prod%d" (i + 1); bind = "x" });
                   body = [ Csp.CLocal ("buf", E.Append (E.Var "buf", E.Var "x")) ];
                 })
             @ List.init consumers (fun j ->
                   {
                     Csp.guard = E.Gt (E.Len (E.Var "buf"), E.Int 0);
                     comm =
                       Some
                         (Csp.Send
                            { to_ = Printf.sprintf "Cons%d" (j + 1); value = E.Head (E.Var "buf") });
                     body = [ Csp.CLocal ("buf", E.Tail (E.Var "buf")) ];
                   }));
        ];
    }
  in
  (buffer :: List.init producers (fun i -> producer (i + 1)))
  @ List.init consumers (fun j -> consumer (j + 1))

let csp_correspondence : Gem_check.Refine.correspondence =
 fun comp h ->
  let e = Gem_model.Computation.event comp h in
  if String.equal e.Gem_model.Event.id.element "Buf" then
    if Gem_model.Event.has_class e "EndIn" then
      Some
        {
          Gem_check.Refine.to_element = in_element;
          to_class = "Dep";
          to_params = [ ("item", Gem_model.Event.param e "value") ];
        }
    else if Gem_model.Event.has_class e "EndOut" then
      Some
        {
          Gem_check.Refine.to_element = out_element;
          to_class = "Rem";
          to_params = [ ("item", Gem_model.Event.param e "value") ];
        }
    else None
  else None

(* ------------------------------------------------------------------ *)
(* ADA solution                                                        *)
(* ------------------------------------------------------------------ *)

module Ada = Gem_lang.Ada

let ada_solution ~capacity ~producers ~consumers ~items_each =
  let quota = check_counts ~producers ~consumers ~items_each in
  let total = producers * items_each in
  let producer i =
    {
      Ada.task_name = Printf.sprintf "Prod%d" i;
      locals = [ ("k", V.Int 0) ];
      code =
        [
          Ada.AWhile
            ( E.Lt (E.Var "k", E.Int items_each),
              [
                Ada.ACall
                  {
                    task = "Buffer";
                    entry = "Deposit";
                    args = [ E.Add (E.Int (1000 * i), E.Var "k") ];
                    bind = None;
                  };
                Ada.ALocal ("k", E.Add (E.Var "k", E.Int 1));
              ] );
        ];
    }
  in
  let consumer j =
    {
      Ada.task_name = Printf.sprintf "Cons%d" j;
      locals = [ ("k", V.Int 0); ("x", V.Int 0) ];
      code =
        [
          Ada.AWhile
            ( E.Lt (E.Var "k", E.Int quota),
              [
                Ada.ACall { task = "Buffer"; entry = "Fetch"; args = []; bind = Some "x" };
                Ada.ALocal ("k", E.Add (E.Var "k", E.Int 1));
              ] );
        ];
    }
  in
  let buffer =
    {
      Ada.task_name = "Buffer";
      locals = [ ("buf", V.List []); ("out", V.Int 0); ("served", V.Int 0) ];
      code =
        [
          Ada.AWhile
            ( E.Lt (E.Var "served", E.Int (2 * total)),
              [
                Ada.ASelect
                  [
                    {
                      Ada.when_ = E.Lt (E.Len (E.Var "buf"), E.Int capacity);
                      accept =
                        {
                          Ada.acc_entry = "Deposit";
                          acc_formals = [ "item" ];
                          acc_body =
                            [ Ada.ALocal ("buf", E.Append (E.Var "buf", E.Var "item")) ];
                          acc_result = None;
                        };
                    };
                    {
                      Ada.when_ = E.Gt (E.Len (E.Var "buf"), E.Int 0);
                      accept =
                        {
                          Ada.acc_entry = "Fetch";
                          acc_formals = [];
                          acc_body =
                            [
                              Ada.ALocal ("out", E.Head (E.Var "buf"));
                              Ada.ALocal ("buf", E.Tail (E.Var "buf"));
                            ];
                          acc_result = Some (E.Var "out");
                        };
                    };
                  ];
                Ada.ALocal ("served", E.Add (E.Var "served", E.Int 1));
              ] );
        ];
    }
  in
  (buffer :: List.init producers (fun i -> producer (i + 1)))
  @ List.init consumers (fun j -> consumer (j + 1))

let ada_correspondence : Gem_check.Refine.correspondence =
 fun comp h ->
  let e = Gem_model.Computation.event comp h in
  if String.equal e.Gem_model.Event.id.element "Buffer" then
    if
      Gem_model.Event.has_class e "AcceptBegin"
      && V.equal (Gem_model.Event.param e "entry") (V.Str "Deposit")
    then
      let item =
        match Gem_model.Event.param e "args" with
        | V.List [ v ] -> v
        | v -> v
      in
      Some { Gem_check.Refine.to_element = in_element; to_class = "Dep"; to_params = [ ("item", item) ] }
    else if
      Gem_model.Event.has_class e "AcceptEnd"
      && V.equal (Gem_model.Event.param e "entry") (V.Str "Fetch")
    then
      Some
        {
          Gem_check.Refine.to_element = out_element;
          to_class = "Rem";
          to_params = [ ("item", Gem_model.Event.param e "value") ];
        }
    else None
  else None
