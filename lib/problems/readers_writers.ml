module F = Gem_logic.Formula
module V = Gem_model.Value
module E = Gem_lang.Expr
module Etype = Gem_spec.Etype
module Abbrev = Gem_spec.Abbrev
module Thread = Gem_spec.Thread
open Gem_lang.Monitor

type version =
  | Free_for_all
  | Readers_priority
  | Writers_priority
  | Arrival_order
  | No_starved_writers

let all_versions =
  [ Free_for_all; Readers_priority; Writers_priority; Arrival_order; No_starved_writers ]

let version_name = function
  | Free_for_all -> "free-for-all"
  | Readers_priority -> "readers-priority"
  | Writers_priority -> "writers-priority"
  | Arrival_order -> "arrival-order"
  | No_starved_writers -> "no-starved-writers"

let control = "control"
let data = "data"
let thread_name = "piRW"

(* ------------------------------------------------------------------ *)
(* Problem specification                                               *)
(* ------------------------------------------------------------------ *)

let control_etype =
  Etype.make "RWControl"
    ~events:
      [
        { Etype.klass = "ReqRead"; schema = [] };
        { klass = "StartRead"; schema = [] };
        { klass = "EndRead"; schema = [] };
        { klass = "ReqWrite"; schema = [] };
        { klass = "StartWrite"; schema = [] };
        { klass = "EndWrite"; schema = [] };
      ]
    ()

let user_etype =
  Etype.make "User"
    ~events:
      [
        { Etype.klass = "Read"; schema = [] };
        { klass = "FinishRead"; schema = [ ("info", Etype.P_any) ] };
        { klass = "Write"; schema = [ ("info", Etype.P_any) ] };
        { klass = "FinishWrite"; schema = [] };
      ]
    ()

let rw_thread =
  Thread.def thread_name
    (Thread.Alt
       [
         Thread.seq_of_domains
           [
             F.Cls "Read";
             F.Cls_at (control, "ReqRead");
             F.Cls_at (control, "StartRead");
             F.Cls_at (data, "Getval");
             F.Cls_at (control, "EndRead");
             F.Cls "FinishRead";
           ];
         Thread.seq_of_domains
           [
             F.Cls "Write";
             F.Cls_at (control, "ReqWrite");
             F.Cls_at (control, "StartWrite");
             F.Cls_at (data, "Assign");
             F.Cls_at (control, "EndWrite");
             F.Cls "FinishWrite";
           ];
       ])

(* The paper's RWProblem restrictions 1 and 2: each user call flows
   request -> start -> data access -> end -> return. *)
let transaction_chains ~users =
  ignore users;
  F.conj
    [
      Abbrev.chain
        [
          F.Cls "Read";
          F.Cls_at (control, "ReqRead");
          F.Cls_at (control, "StartRead");
          F.Cls_at (data, "Getval");
          F.Cls_at (control, "EndRead");
          F.Cls "FinishRead";
        ];
      Abbrev.chain
        [
          F.Cls "Write";
          F.Cls_at (control, "ReqWrite");
          F.Cls_at (control, "StartWrite");
          F.Cls_at (data, "Assign");
          F.Cls_at (control, "EndWrite");
          F.Cls "FinishWrite";
        ];
    ]

(* The paper's Mutual Exclusion Restriction (§8.3): writers exclude
   readers, and writers exclude other writers. *)
let mutual_exclusion =
  F.conj
    [
      Abbrev.mutex ~thread:thread_name
        ~start1:(F.Cls_at (control, "StartRead"))
        ~finish1:(F.Cls_at (control, "EndRead"))
        ~start2:(F.Cls_at (control, "StartWrite"))
        ~finish2:(F.Cls_at (control, "EndWrite"));
      Abbrev.mutex ~thread:thread_name
        ~start1:(F.Cls_at (control, "StartWrite"))
        ~finish1:(F.Cls_at (control, "EndWrite"))
        ~start2:(F.Cls_at (control, "StartWrite"))
        ~finish2:(F.Cls_at (control, "EndWrite"));
    ]

(* If requests of classes A then B are simultaneously pending and A's
   request observably preceded (condition [before]), then B does not start
   before A. *)
let pending_precedence ~req_a ~start_a ~req_b ~start_b ~before =
  let open F in
  henceforth
    (forall
       [ ("_ra", req_a); ("_rb", req_b) ]
       (at_cls "_ra" start_a &&& at_cls "_rb" start_b
        &&& distinct_thread thread_name "_ra" "_rb"
        &&& before "_ra" "_rb"
        ==> henceforth
              (forall
                 [ ("_sb", start_b) ]
                 (same_thread thread_name "_rb" "_sb" &&& occurred "_sb"
                  ==> exists
                        [ ("_sa", start_a) ]
                        (same_thread thread_name "_ra" "_sa" &&& occurred "_sa")))))

let readers_priority_restriction =
  Abbrev.priority ~thread:thread_name
    ~req_hi:(F.Cls_at (control, "ReqRead"))
    ~start_hi:(F.Cls_at (control, "StartRead"))
    ~req_lo:(F.Cls_at (control, "ReqWrite"))
    ~start_lo:(F.Cls_at (control, "StartWrite"))

let writers_priority_restriction =
  Abbrev.priority ~thread:thread_name
    ~req_hi:(F.Cls_at (control, "ReqWrite"))
    ~start_hi:(F.Cls_at (control, "StartWrite"))
    ~req_lo:(F.Cls_at (control, "ReqRead"))
    ~start_lo:(F.Cls_at (control, "StartRead"))

let arrival_order_restriction =
  let earlier a b = F.temp_lt a b in
  F.conj
    [
      pending_precedence
        ~req_a:(F.Cls_at (control, "ReqRead"))
        ~start_a:(F.Cls_at (control, "StartRead"))
        ~req_b:(F.Cls_at (control, "ReqWrite"))
        ~start_b:(F.Cls_at (control, "StartWrite"))
        ~before:earlier;
      pending_precedence
        ~req_a:(F.Cls_at (control, "ReqWrite"))
        ~start_a:(F.Cls_at (control, "StartWrite"))
        ~req_b:(F.Cls_at (control, "ReqRead"))
        ~start_b:(F.Cls_at (control, "StartRead"))
        ~before:earlier;
    ]

(* Weak writer priority: reads requested after a pending write do not
   start before it. *)
let no_starved_writers_restriction =
  pending_precedence
    ~req_a:(F.Cls_at (control, "ReqWrite"))
    ~start_a:(F.Cls_at (control, "StartWrite"))
    ~req_b:(F.Cls_at (control, "ReqRead"))
    ~start_b:(F.Cls_at (control, "StartRead"))
    ~before:(fun a b -> F.temp_lt a b)

let version_restriction = function
  | Free_for_all -> None
  | Readers_priority -> Some readers_priority_restriction
  | Writers_priority -> Some writers_priority_restriction
  | Arrival_order -> Some arrival_order_restriction
  | No_starved_writers -> Some no_starved_writers_restriction

let spec version ~users =
  let restrictions =
    [
      ("transaction-chains", transaction_chains ~users);
      ("mutual-exclusion", mutual_exclusion);
    ]
    @
    match version_restriction version with
    | Some f -> [ (version_name version, f) ]
    | None -> []
  in
  Gem_spec.Spec.make
    ("readers-writers-" ^ version_name version)
    ~elements:
      ((control, control_etype) :: (data, Etype.variable)
      :: List.map (fun u -> (u, user_etype)) users)
    ~restrictions ~threads:[ rw_thread ] ()

(* ------------------------------------------------------------------ *)
(* Monitor programs                                                    *)
(* ------------------------------------------------------------------ *)

(* The paper's §9 monitor, transcribed statement for statement. *)
let paper_monitor =
  {
    mon_name = "RW";
    vars = [ ("readernum", V.Int 0) ];
    conditions = [ "readqueue"; "writequeue" ];
    entries =
      [
        {
          entry_name = "StartRead";
          formals = [];
          body =
            [
              MIf (E.Lt (E.Var "readernum", E.Int 0), [ MWait "readqueue" ], []);
              MAssign
                {
                  var = "readernum";
                  value = E.Add (E.Var "readernum", E.Int 1);
                  site = Some "startread";
                };
              MSignal "readqueue";
            ];
        };
        {
          entry_name = "EndRead";
          formals = [];
          body =
            [
              MAssign
                {
                  var = "readernum";
                  value = E.Sub (E.Var "readernum", E.Int 1);
                  site = Some "endread";
                };
              MIf (E.Eq (E.Var "readernum", E.Int 0), [ MSignal "writequeue" ], []);
            ];
        };
        {
          entry_name = "StartWrite";
          formals = [];
          body =
            [
              MIf (E.Ne (E.Var "readernum", E.Int 0), [ MWait "writequeue" ], []);
              MAssign { var = "readernum"; value = E.Int (-1); site = Some "startwrite" };
            ];
        };
        {
          entry_name = "EndWrite";
          formals = [];
          body =
            [
              MAssign { var = "readernum"; value = E.Int 0; site = Some "endwrite" };
              MIf
                ( E.Queue_non_empty "readqueue",
                  [ MSignal "readqueue" ],
                  [ MSignal "writequeue" ] );
            ];
        };
      ];
  }

(* Courtois-style writer priority: arriving readers also defer to waiting
   writers, and EndWrite prefers the write queue. *)
let writers_priority_monitor =
  {
    mon_name = "RW";
    vars = [ ("readernum", V.Int 0); ("writing", V.Int 0); ("waitingw", V.Int 0) ];
    conditions = [ "readqueue"; "writequeue" ];
    entries =
      [
        {
          entry_name = "StartRead";
          formals = [];
          body =
            [
              MIf
                ( E.Or (E.Gt (E.Var "waitingw", E.Int 0), E.Ne (E.Var "writing", E.Int 0)),
                  [ MWait "readqueue" ],
                  [] );
              MAssign
                {
                  var = "readernum";
                  value = E.Add (E.Var "readernum", E.Int 1);
                  site = Some "startread";
                };
              MIf (E.Eq (E.Var "waitingw", E.Int 0), [ MSignal "readqueue" ], []);
            ];
        };
        {
          entry_name = "EndRead";
          formals = [];
          body =
            [
              MAssign
                {
                  var = "readernum";
                  value = E.Sub (E.Var "readernum", E.Int 1);
                  site = Some "endread";
                };
              MIf (E.Eq (E.Var "readernum", E.Int 0), [ MSignal "writequeue" ], []);
            ];
        };
        {
          entry_name = "StartWrite";
          formals = [];
          body =
            [
              MAssign { var = "waitingw"; value = E.Add (E.Var "waitingw", E.Int 1); site = None };
              MIf
                ( E.Or (E.Ne (E.Var "readernum", E.Int 0), E.Ne (E.Var "writing", E.Int 0)),
                  [ MWait "writequeue" ],
                  [] );
              MAssign { var = "waitingw"; value = E.Sub (E.Var "waitingw", E.Int 1); site = None };
              MAssign { var = "writing"; value = E.Int 1; site = Some "startwrite" };
            ];
        };
        {
          entry_name = "EndWrite";
          formals = [];
          body =
            [
              MAssign { var = "writing"; value = E.Int 0; site = Some "endwrite" };
              MIf
                ( E.Queue_non_empty "writequeue",
                  [ MSignal "writequeue" ],
                  [ MSignal "readqueue" ] );
            ];
        };
      ];
  }

(* The paper's monitor with EndWrite's wakeup preference inverted: after a
   write, a waiting writer beats waiting readers. *)
let buggy_monitor =
  let invert = function
    | {
        entry_name = "EndWrite";
        formals;
        body = [ assign; MIf (_, [ sig_read ], [ sig_write ]) ];
      } ->
        {
          entry_name = "EndWrite";
          formals;
          body = [ assign; MIf (E.Queue_non_empty "writequeue", [ sig_write ], [ sig_read ]) ];
        }
    | e -> e
  in
  { paper_monitor with entries = List.map invert paper_monitor.entries }

(* StartWrite ignores active readers entirely. *)
let no_exclusion_monitor =
  let break = function
    | { entry_name = "StartWrite"; formals; body = [ MIf _; assign ] } ->
        { entry_name = "StartWrite"; formals; body = [ assign ] }
    | e -> e
  in
  { paper_monitor with entries = List.map break paper_monitor.entries }

(* ------------------------------------------------------------------ *)
(* Processes                                                           *)
(* ------------------------------------------------------------------ *)

let reader name =
  {
    proc_name = name;
    locals = [ ("x", V.Int 0) ];
    code =
      [
        PMark { klass = "Read"; params = [] };
        PCall { monitor = "RW"; entry = "StartRead"; args = []; bind = None };
        PRead { var = data; bind = "x" };
        PCall { monitor = "RW"; entry = "EndRead"; args = []; bind = None };
        PMark { klass = "FinishRead"; params = [ E.Var "x" ] };
      ];
  }

let writer name value =
  {
    proc_name = name;
    locals = [];
    code =
      [
        PMark { klass = "Write"; params = [ E.Int value ] };
        PCall { monitor = "RW"; entry = "StartWrite"; args = []; bind = None };
        PWrite { var = data; value = E.Int value };
        PCall { monitor = "RW"; entry = "EndWrite"; args = []; bind = None };
        PMark { klass = "FinishWrite"; params = [] };
      ];
  }

let user_names ~readers ~writers =
  List.init readers (fun i -> Printf.sprintf "R%d" (i + 1))
  @ List.init writers (fun i -> Printf.sprintf "W%d" (i + 1))

let program ~monitor ~readers ~writers =
  {
    monitors = [ monitor ];
    shared = [ (data, V.Int 0) ];
    processes =
      List.init readers (fun i -> reader (Printf.sprintf "R%d" (i + 1)))
      @ List.init writers (fun i -> writer (Printf.sprintf "W%d" (i + 1)) (100 + i + 1));
  }

(* ------------------------------------------------------------------ *)
(* The paper's event correspondence (§9)                               *)
(* ------------------------------------------------------------------ *)

let site_map =
  [
    ("startread", "StartRead");
    ("endread", "EndRead");
    ("startwrite", "StartWrite");
    ("endwrite", "EndWrite");
  ]

let correspondence : Gem_check.Refine.correspondence =
 fun comp h ->
  let e = Gem_model.Computation.event comp h in
  let el = e.Gem_model.Event.id.element in
  let mk to_element to_class to_params =
    Some { Gem_check.Refine.to_element; to_class; to_params }
  in
  match e.Gem_model.Event.klass with
  (* User markers map to themselves (renaming positional params). *)
  | "Read" -> mk el "Read" []
  | "FinishRead" -> mk el "FinishRead" [ ("info", Gem_model.Event.param e "p0") ]
  | "Write" -> mk el "Write" [ ("info", Gem_model.Event.param e "p0") ]
  | "FinishWrite" -> mk el "FinishWrite" []
  (* ReqRead / ReqWrite are the entry BEGINs. *)
  | "Begin" when String.equal el "RW.StartRead" -> mk control "ReqRead" []
  | "Begin" when String.equal el "RW.StartWrite" -> mk control "ReqWrite" []
  (* Start/End events are the significant assignments, per their site tag. *)
  | "Assign" when String.length el > 3 && String.equal (String.sub el 0 3) "RW." -> (
      match Gem_model.Event.param_opt e "site" with
      | Some (V.Str s) -> (
          match List.assoc_opt s site_map with
          | Some klass -> mk control klass []
          | None -> None)
      | Some _ | None -> None)
  (* Database accesses map to the problem's data element, except the
     initialization write (its only enabler chain starts at main). *)
  | "Getval" when String.equal el data ->
      mk data "Getval" [ ("oldval", Gem_model.Event.param e "oldval") ]
  | "Assign" when String.equal el data ->
      let from_process =
        List.exists
          (fun p ->
            not
              (String.equal (Gem_model.Computation.event comp p).Gem_model.Event.id.element
                 "main"))
          (Gem_model.Computation.enable_preds comp h)
      in
      if from_process then mk data "Assign" [ ("newval", Gem_model.Event.param e "newval") ]
      else None
  | _ -> None
