(** GEM — the Group Element Model of concurrent computation
    (Lansky & Owicki, 1983), as an executable specification and
    verification toolkit.

    This umbrella module re-exports the layers under one roof:

    {ul
    {- order substrate: {!Bitset}, {!Digraph}, {!Poset}, {!Linext},
       {!Relation}, {!Fingerprint};}
    {- the model of execution: {!Value}, {!Event}, {!Group},
       {!Computation}, {!Build}, {!Dot};}
    {- the restriction logic: {!Formula}, {!History}, {!Vhs}, {!Eval};}
    {- the specification layer: {!Etype}, {!Access}, {!Abbrev}, {!Thread},
       {!Spec}, {!Legality};}
    {- checking: {!Budget}, {!Strategy}, {!Verdict}, {!Check}, {!Refine};}
    {- the checking service: {!Cache} (LRU + single-flight), {!Server}
       (Unix-socket transport), {!Request} (wire requests), {!Runner}
       (the shared verification pipeline), {!Handler}, {!Client};}
    {- resilience: {!Bitstate}, {!Spool}, {!Checkpoint}, {!Faults};}
    {- observability: {!Telemetry} (counters, spans, trace export);}
    {- the concrete syntax: {!Lexer}, {!Parser};}
    {- language substrates: {!Expr}, {!Trace}, {!Explore}, {!Monitor},
       {!Csp}, {!Ada};}
    {- case studies: {!Buffer_problem}, {!Readers_writers},
       {!Rw_distributed}, {!Db_update}, {!Life};}
    {- differential fuzzing: {!Fuzz} (generators, oracle, shrinker,
       corpus, workload matrix);}
    {- dynamic group structures: {!Dyngroup}.}}

    Quick start: build a computation with {!Build}, describe a
    specification with {!Spec} (formulas via {!Formula}'s constructors),
    and check with {!Check.check}; or transcribe a Monitor/CSP/ADA
    program, explore its schedules, and verify it against a problem spec
    with {!Refine.sat}. See [examples/]. *)

module Bitset = Gem_order.Bitset
module Digraph = Gem_order.Digraph
module Poset = Gem_order.Poset
module Linext = Gem_order.Linext
module Relation = Gem_order.Relation
module Fingerprint = Gem_order.Fingerprint
module Value = Gem_model.Value
module Event = Gem_model.Event
module Group = Gem_model.Group
module Computation = Gem_model.Computation
module Build = Gem_model.Build
module Dot = Gem_model.Dot
module Formula = Gem_logic.Formula
module History = Gem_logic.History
module Vhs = Gem_logic.Vhs
module Eval = Gem_logic.Eval
module Etype = Gem_spec.Etype
module Access = Gem_spec.Access
module Abbrev = Gem_spec.Abbrev
module Thread = Gem_spec.Thread
module Spec = Gem_spec.Spec
module Legality = Gem_spec.Legality
module Dyngroup = Gem_spec.Dyngroup
module Telemetry = Gem_obs.Telemetry
module Budget = Gem_check.Budget
module Bitstate = Gem_check.Bitstate
module Spool = Gem_check.Spool
module Checkpoint = Gem_check.Checkpoint
module Faults = Gem_check.Faults
module Strategy = Gem_check.Strategy
module Verdict = Gem_check.Verdict
module Check = Gem_check.Check
module Refine = Gem_check.Refine
module Cache = Gem_check.Cache
module Server = Gem_check.Server
module Lexer = Gem_syntax.Lexer
module Parser = Gem_syntax.Parser
module Request = Gem_syntax.Request
module Runner = Gem_daemon.Runner
module Handler = Gem_daemon.Handler
module Client = Gem_daemon.Client
module Expr = Gem_lang.Expr
module Trace = Gem_lang.Trace
module Explore = Gem_lang.Explore
module Monitor = Gem_lang.Monitor
module Csp = Gem_lang.Csp
module Ada = Gem_lang.Ada
module Buffer_problem = Gem_problems.Buffer
module Readers_writers = Gem_problems.Readers_writers
module Rw_distributed = Gem_problems.Rw_distributed
module Db_update = Gem_problems.Db_update
module Life = Gem_problems.Life
module Fuzz = Gem_fuzz

(** [check_spec spec comp] — is the computation legal for the spec and do
    all its restrictions hold (default strategy)? *)
let check_spec spec comp = Verdict.ok (Check.check spec comp)

(** [verify_monitor_program ?strategy ?edges ~problem ~map program] —
    explore every schedule of a Monitor program and check every resulting
    computation's projection against the problem specification. Returns
    [(n_computations, n_deadlocks, all_satisfied)]. *)
let verify_monitor_program ?strategy ?budget ?edges ~problem ~map program =
  let outcome = Monitor.explore ?budget program in
  ( List.length outcome.Monitor.computations,
    List.length outcome.Monitor.deadlocks,
    Refine.sat_ok ?strategy ?budget ?edges ~problem ~map outcome.Monitor.computations )
