(* The resilience ladder: bitstate degradation, disk-spilled frontiers,
   checkpoint/resume and the deterministic fault-injection harness.

   The contract under test is soundness under degradation — every rung
   may lose coverage, none may fabricate it:

   - bitstate runs must find exactly the computations of an exact run
     on workloads that fit exactly (parity matrix: jobs in {1,2,8},
     POR on and off), and must always finish Inconclusive
     (Bitstate_collision_risk) rather than Verified;
   - spilling must be invisible to the exploration order (LIFO parity),
     and a spill I/O failure must degrade to Spill_io_error, never a
     wrong verdict or a crash;
   - a run killed by budget and resumed from its checkpoint must end
     with the same leaves, counters and verdict as an uninterrupted
     run; a stamp mismatch must be refused;
   - under injected faults (qcheck over random CSP programs), the
     computations found are always a subset of the clean run's, any
     strict loss is reported as exhaustion, and every injected fault is
     survived;
   - a worker domain crash under [degrade_crashes] cancels the run with
     Worker_crashed instead of wedging the termination protocol, and a
     domain that fails to start is absorbed by the remaining workers. *)

module Explore = Gem_lang.Explore
module Csp = Gem_lang.Csp
module Db = Gem_problems.Db_update
module Rwd = Gem_problems.Rw_distributed
module Budget = Gem_check.Budget
module Bitstate = Gem_check.Bitstate
module Spool = Gem_check.Spool
module Checkpoint = Gem_check.Checkpoint
module Faults = Gem_check.Faults
module Fp = Gem_order.Fingerprint
module T = Gem_obs.Telemetry
module Gen_csp = Gem_fuzz.Gen

let check = Alcotest.check
let reason_opt = Option.map Budget.reason_keyword

(* Sorted fingerprint set (not multiset): the POR-off exact walk keeps
   duplicate leaves that any keyed walk collapses, so set equality is
   the mode-independent statement of "same computations". *)
let fpset comps = List.sort_uniq compare (List.map Explore.fingerprint comps)

let with_disarmed f = Fun.protect ~finally:Faults.disarm f

let arm_exn spec =
  match Faults.arm spec with
  | Ok () -> ()
  | Error e -> Alcotest.failf "Faults.arm %S: %s" spec e

let no_stray_spools () =
  let dir = Filename.get_temp_dir_name () in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> String.length f >= 10 && String.sub f 0 10 = "gem-spool-")

(* ------------------------------------------------------------------ *)
(* Bitstate table                                                      *)
(* ------------------------------------------------------------------ *)

let fp_of_int i = Fp.of_string (string_of_int i)

let test_bitstate_membership () =
  let t = Bitstate.create ~bits:12 () in
  check Alcotest.int "capacity" 4096 (Bitstate.capacity t);
  check Alcotest.int "bits" 12 (Bitstate.bits t);
  let fp = fp_of_int 1 in
  check Alcotest.bool "first sight is `New" true (Bitstate.add t fp = `New);
  check Alcotest.bool "second sight is `Seen" true (Bitstate.add t fp = `Seen);
  check Alcotest.int "occupancy" 1 (Bitstate.occupancy t);
  for i = 2 to 100 do
    check Alcotest.bool
      (Printf.sprintf "distinct fp %d is `New" i)
      true
      (Bitstate.add t (fp_of_int i) = `New)
  done;
  check Alcotest.int "occupancy after 100" 100 (Bitstate.occupancy t);
  check Alcotest.bool "not saturated" false (Bitstate.saturated t)

let test_bitstate_saturation () =
  (* Overfill a minimal table: every add past the 7/8 load cap must
     answer `Full (never loop, never record), and the saturation flag
     must latch. *)
  let t = Bitstate.create ~shards:1 ~bits:8 () in
  let cap = Bitstate.capacity t in
  let full = ref 0 in
  for i = 1 to 2 * cap do
    match Bitstate.add t (fp_of_int i) with
    | `Full -> incr full
    | `New | `Seen -> ()
  done;
  check Alcotest.bool "saturated" true (Bitstate.saturated t);
  check Alcotest.bool "saw `Full answers" true (!full > 0);
  check Alcotest.bool "occupancy held at the load cap" true
    (Bitstate.occupancy t <= cap * 7 / 8 + 1);
  check Alcotest.bool "later adds still answer `Full" true
    (Bitstate.add t (fp_of_int (4 * cap)) = `Full)

let test_bitstate_snapshot_roundtrip () =
  let t = Bitstate.create ~bits:10 () in
  for i = 1 to 200 do
    ignore (Bitstate.add t (fp_of_int i))
  done;
  let t' = Bitstate.restore (Bitstate.snapshot t) in
  check Alcotest.int "occupancy preserved" (Bitstate.occupancy t)
    (Bitstate.occupancy t');
  for i = 1 to 200 do
    check Alcotest.bool
      (Printf.sprintf "fp %d still `Seen after restore" i)
      true
      (Bitstate.add t' (fp_of_int i) = `Seen)
  done

let test_bitstate_bits_validated () =
  List.iter
    (fun bits ->
      check Alcotest.bool
        (Printf.sprintf "bits=%d rejected" bits)
        true
        (try
           ignore (Bitstate.create ~bits ());
           false
         with Invalid_argument _ -> true))
    [ 0; 7; 31; -1 ]

(* ------------------------------------------------------------------ *)
(* Spool                                                               *)
(* ------------------------------------------------------------------ *)

let aggressive = Spool.policy ~chunk:4 ~watermark_mb:0 ()

let test_spool_lifo_parity () =
  let s = Spool.create aggressive in
  for i = 0 to 999 do
    Spool.push s i
  done;
  check Alcotest.bool "spilled" true (Spool.spilled s);
  check Alcotest.bool "no error" false (Spool.error s);
  check Alcotest.int "size" 1000 (Spool.size s);
  let popped = List.init 1000 (fun _ -> Option.get (Spool.pop s)) in
  check
    Alcotest.(list int)
    "pop order identical to an in-memory stack"
    (List.rev (List.init 1000 Fun.id))
    popped;
  check Alcotest.bool "drained" true (Spool.pop s = None);
  Spool.close s;
  check Alcotest.(list string) "no stray spool files" [] (no_stray_spools ())

let test_spool_elements_nondestructive () =
  let s = Spool.create aggressive in
  for i = 0 to 499 do
    Spool.push s i
  done;
  let snap = Spool.elements s in
  check Alcotest.(list int) "elements in pop order"
    (List.rev (List.init 500 Fun.id))
    snap;
  let popped = List.init 500 (fun _ -> Option.get (Spool.pop s)) in
  check Alcotest.(list int) "pops unaffected by the snapshot" snap popped;
  Spool.close s

let test_spool_no_spill_policy () =
  let s = Spool.create Spool.no_spill in
  for i = 0 to 999 do
    Spool.push s i
  done;
  check Alcotest.bool "never touches the disk" false (Spool.spilled s);
  let popped = List.init 1000 (fun _ -> Option.get (Spool.pop s)) in
  check Alcotest.(list int) "plain stack order"
    (List.rev (List.init 1000 Fun.id))
    popped;
  Spool.close s

let test_spool_fault_degrades () =
  with_disarmed (fun () ->
      T.reset ();
      arm_exn "11:1:spill-io";
      let s = Spool.create aggressive in
      for i = 0 to 999 do
        Spool.push s i
      done;
      check Alcotest.bool "sticky error" true (Spool.error s);
      (* Everything still in memory is served; nothing raises. *)
      let rec drain n = match Spool.pop s with None -> n | Some _ -> drain (n + 1) in
      let served = drain 0 in
      check Alcotest.bool "serves the in-memory remainder" true (served > 0);
      check Alcotest.bool "tasks may be lost, never duplicated" true (served <= 1000);
      Spool.close s;
      check Alcotest.(list string) "no stray spool files" [] (no_stray_spools ());
      check Alcotest.int "every injected fault was survived"
        (T.read T.Faults_injected) (T.read T.Faults_survived);
      check Alcotest.bool "at least one fault fired" true (T.read T.Faults_injected > 0))

(* ------------------------------------------------------------------ *)
(* Faults                                                              *)
(* ------------------------------------------------------------------ *)

let test_faults_parse () =
  let bad spec =
    check Alcotest.bool (Printf.sprintf "%S rejected" spec) true
      (match Faults.arm spec with Error _ -> true | Ok () -> Faults.disarm (); false)
  in
  bad "banana";
  bad "42:0";
  bad "42:-3";
  bad "42:17:bogus-point";
  bad "42:17:";
  bad "";
  with_disarmed (fun () ->
      arm_exn "42";
      check Alcotest.bool "armed" true (Faults.armed ());
      arm_exn "42:17";
      arm_exn "42:17:spill-io,checkpoint-io");
  check Alcotest.bool "disarmed after protect" false (Faults.armed ())

let test_faults_deterministic_stream () =
  let stream () =
    with_disarmed (fun () ->
        arm_exn "42:7";
        List.init 500 (fun _ -> Faults.fire Faults.Alloc))
  in
  let a = stream () in
  check Alcotest.(list bool) "same seed, same stream" a (stream ());
  check Alcotest.bool "roughly one in PERIOD fires" true
    (let fired = List.length (List.filter Fun.id a) in
     fired > 20 && fired < 200);
  let b =
    with_disarmed (fun () ->
        arm_exn "43:7";
        List.init 500 (fun _ -> Faults.fire Faults.Alloc))
  in
  check Alcotest.bool "different seed, different stream" true (a <> b)

let test_faults_point_filter () =
  with_disarmed (fun () ->
      arm_exn "42:1:spill-io";
      check Alcotest.bool "eligible point fires at period 1" true
        (Faults.fire Faults.Spill_io);
      check Alcotest.bool "ineligible point never fires" false
        (List.exists Fun.id (List.init 100 (fun _ -> Faults.fire Faults.Alloc))));
  check Alcotest.bool "fire is false when disarmed" false (Faults.fire Faults.Spill_io)

(* ------------------------------------------------------------------ *)
(* Checkpoint                                                          *)
(* ------------------------------------------------------------------ *)

let temp_ckpt () = Filename.temp_file "gem-test-ckpt" ".bin"

let test_checkpoint_roundtrip () =
  let file = temp_ckpt () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
    (fun () ->
      let ctl = Checkpoint.ctl ~every:10 file in
      check Alcotest.int "every" 10 (Checkpoint.every ctl);
      let payload = ([ 1; 2; 3 ], "leaves", [| 4.0; 5.0 |]) in
      (match Checkpoint.write ctl ~stamp:"run/a" payload with
      | Ok () -> ()
      | Error e -> Alcotest.failf "write: %s" e);
      (match Checkpoint.read ~stamp:"run/a" file with
      | Ok p ->
          check Alcotest.bool "payload round-trips" true (p = payload)
      | Error e -> Alcotest.failf "read: %s" e);
      check Alcotest.bool "stamp mismatch refused" true
        (match (Checkpoint.read ~stamp:"run/b" file : (unit, string) result) with
        | Error _ -> true
        | Ok () -> false);
      check Alcotest.bool "no staging litter" false (Sys.file_exists (file ^ ".tmp")))

let test_checkpoint_corrupt_and_missing () =
  let file = temp_ckpt () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
    (fun () ->
      let oc = open_out_bin file in
      output_string oc "not a checkpoint at all";
      close_out oc;
      check Alcotest.bool "corrupt file is an Error, not an exception" true
        (match (Checkpoint.read ~stamp:"x" file : (unit, string) result) with
        | Error _ -> true
        | Ok () -> false));
  check Alcotest.bool "missing file is an Error" true
    (match
       (Checkpoint.read ~stamp:"x" "/nonexistent/gem-ckpt" : (unit, string) result)
     with
    | Error _ -> true
    | Ok () -> false)

let test_checkpoint_fault_preserves_previous () =
  let file = temp_ckpt () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
    (fun () ->
      let ctl = Checkpoint.ctl file in
      (match Checkpoint.write ctl ~stamp:"run/a" [ 1 ] with
      | Ok () -> ()
      | Error e -> Alcotest.failf "first write: %s" e);
      with_disarmed (fun () ->
          T.reset ();
          arm_exn "5:1:checkpoint-io";
          check Alcotest.bool "faulted write reports Error" true
            (match Checkpoint.write ctl ~stamp:"run/a" [ 2 ] with
            | Error _ -> true
            | Ok () -> false);
          check Alcotest.int "fault survived" (T.read T.Faults_injected)
            (T.read T.Faults_survived));
      match Checkpoint.read ~stamp:"run/a" file with
      | Ok p -> check Alcotest.(list int) "previous snapshot intact" [ 1 ] p
      | Error e -> Alcotest.failf "read after faulted write: %s" e)

(* ------------------------------------------------------------------ *)
(* Bitstate engine parity matrix                                       *)
(* ------------------------------------------------------------------ *)

let bitstate_res () =
  { Explore.no_resilience with bitstate = Some (Bitstate.create ~bits:16 ()) }

let bitstate_parity name prog =
  List.iter
    (fun por ->
      let base = Csp.explore ~por ~jobs:1 prog in
      check Alcotest.(option string)
        (Printf.sprintf "%s por=%b: exact baseline is clean" name por)
        None (reason_opt base.Csp.exhausted);
      List.iter
        (fun jobs ->
          let o = Csp.explore ~por ~jobs ~resilience:(bitstate_res ()) prog in
          let tag = Printf.sprintf "%s por=%b jobs=%d bitstate" name por jobs in
          check
            Alcotest.(list string)
            (tag ^ ": computation set")
            (fpset base.Csp.computations)
            (fpset o.Csp.computations);
          check
            Alcotest.(list string)
            (tag ^ ": deadlock set")
            (fpset base.Csp.deadlocks)
            (fpset o.Csp.deadlocks);
          check
            Alcotest.(option string)
            (tag ^ ": Verified downgraded")
            (Some "bitstate-collision-risk")
            (reason_opt o.Csp.exhausted))
        [ 1; 2; 8 ])
    [ true; false ]

let test_bitstate_parity_matrix () =
  bitstate_parity "db-update-2" (Db.program ~sites:2);
  bitstate_parity "rwd-1r1w" (Rwd.csp_program ~readers:1 ~writers:1)

let test_bitstate_saturated_run_is_inconclusive () =
  (* A table far too small for the workload: the run must terminate (the
     `Full answer prunes instead of looping) and must not claim
     completeness. *)
  let res =
    { Explore.no_resilience with
      bitstate = Some (Bitstate.create ~shards:1 ~bits:8 ())
    }
  in
  let o = Csp.explore ~jobs:1 ~resilience:res (Db.program ~sites:3) in
  check Alcotest.(option string) "inconclusive"
    (Some "bitstate-collision-risk")
    (reason_opt o.Csp.exhausted);
  check Alcotest.bool "found a subset of the real computations" true
    (List.length o.Csp.computations <= 720);
  check Alcotest.bool "saturation counted" true (T.read T.Bitstate_saturated_prunes > 0)

(* ------------------------------------------------------------------ *)
(* Spilled-frontier engine parity                                      *)
(* ------------------------------------------------------------------ *)

let test_spool_engine_parity () =
  (* Engine pinned to sleep: a spooled run degrades source -> sleep by
     design, so under GEM_REDUCTION=source an unpinned baseline would
     count source configurations against a sleep spool run. *)
  let prog = Db.program ~sites:3 in
  let base = Csp.explore ~reduction:Explore.Sleep_sets ~jobs:1 prog in
  let res = { Explore.no_resilience with spool = Some aggressive } in
  let o = Csp.explore ~reduction:Explore.Sleep_sets ~jobs:1 ~resilience:res prog in
  check Alcotest.(list string) "computations" (fpset base.Csp.computations)
    (fpset o.Csp.computations);
  check Alcotest.(list string) "deadlocks" (fpset base.Csp.deadlocks)
    (fpset o.Csp.deadlocks);
  check Alcotest.(option string) "still a complete, clean run" None
    (reason_opt o.Csp.exhausted);
  check Alcotest.int "explored identical to the in-memory engine"
    base.Csp.explored o.Csp.explored;
  check Alcotest.(list string) "no stray spool files" [] (no_stray_spools ())

let test_spool_engine_fault_is_inconclusive () =
  with_disarmed (fun () ->
      T.reset ();
      arm_exn "3:1:spill-io";
      let res = { Explore.no_resilience with spool = Some aggressive } in
      let o = Csp.explore ~jobs:1 ~resilience:res (Db.program ~sites:3) in
      check Alcotest.(option string) "degrades to spill-io-error"
        (Some "spill-io-error")
        (reason_opt o.Csp.exhausted);
      check Alcotest.bool "found only real computations" true
        (let clean = fpset (Csp.explore ~jobs:1 (Db.program ~sites:3)).Csp.computations in
         List.for_all (fun fp -> List.mem fp clean) (fpset o.Csp.computations));
      check Alcotest.int "every injected fault survived" (T.read T.Faults_injected)
        (T.read T.Faults_survived);
      check Alcotest.(list string) "no stray spool files" [] (no_stray_spools ()))

(* ------------------------------------------------------------------ *)
(* Checkpoint/resume at the engine level                               *)
(* ------------------------------------------------------------------ *)

let test_resume_reaches_identical_verdict () =
  let prog = Db.program ~sites:3 in
  let stamp_res file =
    { Explore.no_resilience with checkpoint = Some (Checkpoint.ctl ~every:500 file) }
  in
  let ck_a = temp_ckpt () and ck_b = temp_ckpt () in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun f -> if Sys.file_exists f then Sys.remove f) [ ck_a; ck_b ])
    (fun () ->
      (* Uninterrupted run through the same (checkpointing) engine. *)
      let full = Csp.explore ~jobs:1 ~resilience:(stamp_res ck_a) prog in
      check Alcotest.(option string) "uninterrupted run is clean" None
        (reason_opt full.Csp.exhausted);
      (* Interrupted: stop on a config budget aligned with [every]. *)
      let cut =
        Csp.explore ~jobs:1 ~max_configs:2000 ~resilience:(stamp_res ck_b) prog
      in
      check Alcotest.(option string) "interrupted run reports the budget"
        (Some "config-budget")
        (reason_opt cut.Csp.exhausted);
      check Alcotest.bool "checkpoint file exists" true (Sys.file_exists ck_b);
      (* Resumed: must reproduce the uninterrupted run exactly. *)
      let resumed =
        Csp.explore ~jobs:1
          ~resilience:{ (stamp_res ck_b) with resume = Some ck_b }
          prog
      in
      check Alcotest.(option string) "resumed run is clean" None
        (reason_opt resumed.Csp.exhausted);
      check
        Alcotest.(list string)
        "identical computation multiset"
        (List.sort compare (List.map Explore.fingerprint full.Csp.computations))
        (List.sort compare (List.map Explore.fingerprint resumed.Csp.computations));
      check
        Alcotest.(list string)
        "identical deadlock multiset"
        (List.sort compare (List.map Explore.fingerprint full.Csp.deadlocks))
        (List.sort compare (List.map Explore.fingerprint resumed.Csp.deadlocks));
      check Alcotest.int "identical explored counter" full.Csp.explored
        resumed.Csp.explored;
      check Alcotest.int "identical reduced counter" full.Csp.reduced
        resumed.Csp.reduced;
      check Alcotest.bool "no staging litter" false (Sys.file_exists (ck_b ^ ".tmp")))

let test_resume_refuses_foreign_stamp () =
  (* A checkpoint carries the caller-supplied run-identity stamp (the
     CLI derives it from the resolved command line); resuming under a
     different stamp must raise Resume_error rather than silently
     splicing one run's state into another's verdict. *)
  let ck = temp_ckpt () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists ck then Sys.remove ck)
    (fun () ->
      let res stamp =
        { Explore.no_resilience with
          checkpoint = Some (Checkpoint.ctl ~every:500 ck);
          stamp
        }
      in
      ignore
        (Csp.explore ~jobs:1 ~max_configs:2000 ~resilience:(res "run/db3")
           (Db.program ~sites:3));
      check Alcotest.bool "checkpoint written" true (Sys.file_exists ck);
      check Alcotest.bool "foreign stamp refused" true
        (try
           ignore
             (Csp.explore ~jobs:1
                ~resilience:{ (res "run/db4") with resume = Some ck }
                (Db.program ~sites:4));
           false
         with Explore.Resume_error _ -> true))

(* ------------------------------------------------------------------ *)
(* Parallel teardown under crashes                                     *)
(* ------------------------------------------------------------------ *)

exception Boom

(* A synthetic 512-leaf binary tree with one poisoned interior node:
   moves from node 37 raise. Reachable from the root, deep enough that
   all workers are busy when the crash lands. *)
let tree_moves c = if c = 37 then raise Boom else if c >= 512 then [] else [ (2 * c); (2 * c) + 1 ]
let tree_done c = c >= 512

let test_worker_crash_degrades () =
  let res = { Explore.no_resilience with degrade_crashes = true } in
  let r =
    Explore.run ~jobs:8 ~resilience:res ~moves:tree_moves ~terminated:tree_done 1
  in
  match r.Explore.exhausted with
  | Some (Budget.Worker_crashed msg) ->
      check Alcotest.bool "crash message names the exception" true
        (String.length msg > 0)
  | other ->
      Alcotest.failf "expected Worker_crashed, got %s"
        (Option.value ~default:"clean" (reason_opt other))

let test_worker_crash_reraises_by_default () =
  check Alcotest.bool "default propagates the worker exception" true
    (try
       ignore (Explore.run ~jobs:8 ~moves:tree_moves ~terminated:tree_done 1);
       false
     with Boom -> true)

let test_domain_start_fault_absorbed () =
  with_disarmed (fun () ->
      T.reset ();
      arm_exn "9:1:domain-start";
      (* Engine pinned to sleep: the source engine is sequential, so
         under GEM_REDUCTION=source --jobs would never start a domain
         and the domain-start fault point could not fire. *)
      let prog = Db.program ~sites:2 in
      let base = Csp.explore ~reduction:Explore.Sleep_sets ~jobs:1 prog in
      let o = Csp.explore ~reduction:Explore.Sleep_sets ~jobs:8 prog in
      check Alcotest.(list string) "main worker absorbs the whole walk"
        (fpset base.Csp.computations) (fpset o.Csp.computations);
      check Alcotest.(option string) "run is clean" None (reason_opt o.Csp.exhausted);
      check Alcotest.bool "spawn faults fired" true (T.read T.Faults_injected > 0);
      check Alcotest.int "all survived" (T.read T.Faults_injected)
        (T.read T.Faults_survived))

(* ------------------------------------------------------------------ *)
(* Random CSP programs under injected faults (qcheck)                  *)
(* ------------------------------------------------------------------ *)

let prop_faulted_runs_sound =
  QCheck.Test.make
    ~name:"random CSP under GEM_FAULT: subset of clean, loss reported, faults survived"
    ~count:30 Gen_csp.prog_arb (fun prog ->
      let clean = Csp.explore ~jobs:1 prog in
      QCheck.assume (clean.Csp.exhausted = None);
      let clean_comps = fpset clean.Csp.computations in
      let clean_dead = fpset clean.Csp.deadlocks in
      List.for_all
        (fun (seed, period) ->
          with_disarmed (fun () ->
              T.reset ();
              arm_exn (Printf.sprintf "%d:%d:alloc,spill-io" seed period);
              let res =
                { Explore.no_resilience with
                  bitstate = Some (Bitstate.create ~bits:14 ());
                  spool = Some (Spool.policy ~chunk:4 ~watermark_mb:0 ())
                }
              in
              let o = Csp.explore ~jobs:1 ~resilience:res prog in
              let comps = fpset o.Csp.computations in
              let dead = fpset o.Csp.deadlocks in
              let subset xs ys = List.for_all (fun x -> List.mem x ys) xs in
              (* Never fabricate: every leaf found is a real one. *)
              subset comps clean_comps && subset dead clean_dead
              (* Never overclaim: bitstate alone forces Inconclusive, so a
                 clean exhaustion here would be an unsound Verified. *)
              && o.Csp.exhausted <> None
              (* Every injected fault was handled. *)
              && T.read T.Faults_injected = T.read T.Faults_survived))
        [ (1, 3); (2, 25); (3, 101) ])

let () =
  (* Counters are collected only while telemetry is enabled; the
     fault-survival and saturation assertions read them. *)
  T.enable ();
  let to_alc = QCheck_alcotest.to_alcotest in
  Alcotest.run "gem_resilience"
    [
      ( "bitstate-table",
        [
          Alcotest.test_case "membership" `Quick test_bitstate_membership;
          Alcotest.test_case "saturation" `Quick test_bitstate_saturation;
          Alcotest.test_case "snapshot round-trip" `Quick test_bitstate_snapshot_roundtrip;
          Alcotest.test_case "bits validated" `Quick test_bitstate_bits_validated;
        ] );
      ( "spool",
        [
          Alcotest.test_case "LIFO parity across spills" `Quick test_spool_lifo_parity;
          Alcotest.test_case "elements non-destructive" `Quick
            test_spool_elements_nondestructive;
          Alcotest.test_case "no-spill policy" `Quick test_spool_no_spill_policy;
          Alcotest.test_case "I/O fault degrades" `Quick test_spool_fault_degrades;
        ] );
      ( "faults",
        [
          Alcotest.test_case "spec parsing" `Quick test_faults_parse;
          Alcotest.test_case "deterministic stream" `Quick
            test_faults_deterministic_stream;
          Alcotest.test_case "point filter" `Quick test_faults_point_filter;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "round-trip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "corrupt and missing" `Quick
            test_checkpoint_corrupt_and_missing;
          Alcotest.test_case "faulted write keeps previous" `Quick
            test_checkpoint_fault_preserves_previous;
        ] );
      ( "bitstate-engine",
        [
          Alcotest.test_case "parity matrix" `Quick test_bitstate_parity_matrix;
          Alcotest.test_case "saturated run inconclusive" `Quick
            test_bitstate_saturated_run_is_inconclusive;
        ] );
      ( "spool-engine",
        [
          Alcotest.test_case "parity" `Quick test_spool_engine_parity;
          Alcotest.test_case "fault inconclusive" `Quick
            test_spool_engine_fault_is_inconclusive;
        ] );
      ( "checkpoint-engine",
        [
          Alcotest.test_case "resume identical verdict" `Quick
            test_resume_reaches_identical_verdict;
          Alcotest.test_case "foreign stamp refused" `Quick
            test_resume_refuses_foreign_stamp;
        ] );
      ( "par-teardown",
        [
          Alcotest.test_case "crash degrades" `Quick test_worker_crash_degrades;
          Alcotest.test_case "crash re-raises by default" `Quick
            test_worker_crash_reraises_by_default;
          Alcotest.test_case "domain-start fault absorbed" `Quick
            test_domain_start_fault_absorbed;
        ] );
      ("random-faulted", [ to_alc prop_faulted_runs_sound ]);
    ]
