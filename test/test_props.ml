(* Property-based tests (qcheck) for the core invariants: closure algebra,
   extension enumeration, history lattices, evaluator dualities, and
   bitsets against a reference model. *)

module Bitset = Gem_order.Bitset
module Digraph = Gem_order.Digraph
module Poset = Gem_order.Poset
module Linext = Gem_order.Linext
module Build = Gem_model.Build
module C = Gem_model.Computation
module History = Gem_logic.History
module Vhs = Gem_logic.Vhs
module F = Gem_logic.Formula
module Eval = Gem_logic.Eval

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

(* A random DAG on [n] nodes: edges only from lower to higher index. *)
let dag_gen =
  QCheck.Gen.(
    sized_size (int_range 1 7) (fun n ->
        let pairs =
          List.concat
            (List.init n (fun i -> List.init (n - i - 1) (fun d -> (i, i + d + 1))))
        in
        let* picks = flatten_l (List.map (fun e -> pair (return e) bool) pairs) in
        let edges = List.filter_map (fun (e, keep) -> if keep then Some e else None) picks in
        return (n, edges)))

let dag_arb =
  QCheck.make dag_gen ~print:(fun (n, es) ->
      Printf.sprintf "n=%d edges=[%s]" n
        (String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) es)))

(* A random legal computation: events assigned round-robin-randomly to a
   few elements, enable edges only from earlier-emitted to later-emitted
   events (so the causal graph is acyclic by construction). *)
let comp_gen =
  QCheck.Gen.(
    sized_size (int_range 1 8) (fun n ->
        let* n_elements = int_range 1 3 in
        let* assignment = flatten_l (List.init n (fun _ -> int_range 0 (n_elements - 1))) in
        let pairs =
          List.concat
            (List.init n (fun i -> List.init (n - i - 1) (fun d -> (i, i + d + 1))))
        in
        let* picks = flatten_l (List.map (fun e -> pair (return e) (int_range 0 3)) pairs) in
        let edges = List.filter_map (fun (e, k) -> if k = 0 then Some e else None) picks in
        return (n, assignment, edges)))

let build_comp (n, assignment, edges) =
  let b = Build.create () in
  let handles =
    List.map
      (fun el -> Build.emit b ~element:(Printf.sprintf "el%d" el) ~klass:"E" ())
      assignment
  in
  let arr = Array.of_list handles in
  List.iter (fun (i, j) -> Build.enable b arr.(i) arr.(j)) edges;
  ignore n;
  Build.finish b

let comp_arb =
  QCheck.make comp_gen ~print:(fun (n, a, es) ->
      Printf.sprintf "n=%d elems=[%s] edges=%d" n
        (String.concat ";" (List.map string_of_int a))
        (List.length es))

(* ------------------------------------------------------------------ *)
(* Closure algebra                                                     *)
(* ------------------------------------------------------------------ *)

let prop_closure_contains_base =
  QCheck.Test.make ~name:"closure contains base" ~count:200 dag_arb (fun (n, edges) ->
      let g = Digraph.of_edges n edges in
      let c = Digraph.transitive_closure g in
      List.for_all (fun (a, b) -> Digraph.mem_edge c a b) edges)

let prop_closure_idempotent =
  QCheck.Test.make ~name:"closure idempotent" ~count:200 dag_arb (fun (n, edges) ->
      let g = Digraph.of_edges n edges in
      let c = Digraph.transitive_closure g in
      Digraph.equal c (Digraph.transitive_closure c))

let prop_closure_transitive =
  QCheck.Test.make ~name:"closure transitive" ~count:200 dag_arb (fun (n, edges) ->
      let g = Digraph.of_edges n edges in
      let c = Digraph.transitive_closure g in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              List.for_all
                (fun d ->
                  not (Digraph.mem_edge c a b && Digraph.mem_edge c b d)
                  || Digraph.mem_edge c a d)
                (List.init n Fun.id))
            (List.init n Fun.id))
        (List.init n Fun.id))

let prop_reduction_preserves_closure =
  QCheck.Test.make ~name:"reduction preserves closure" ~count:200 dag_arb
    (fun (n, edges) ->
      let g = Digraph.of_edges n edges in
      let r = Digraph.transitive_reduction g in
      Digraph.equal (Digraph.transitive_closure g) (Digraph.transitive_closure r))

let prop_reduction_minimal =
  QCheck.Test.make ~name:"reduction edges are covers" ~count:100 dag_arb
    (fun (n, edges) ->
      let g = Digraph.of_edges n edges in
      let r = Digraph.transitive_reduction g in
      let c = Digraph.transitive_closure g in
      (* No reduction edge is implied by a two-step path in the closure. *)
      List.for_all
        (fun (a, b) ->
          not
            (List.exists
               (fun m -> m <> a && m <> b && Digraph.mem_edge c a m && Digraph.mem_edge c m b)
               (List.init n Fun.id)))
        (Digraph.edges r))

(* ------------------------------------------------------------------ *)
(* Extensions and step sequences                                       *)
(* ------------------------------------------------------------------ *)

let is_topological_sort g order =
  let pos = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.replace pos v i) order;
  List.length order = Digraph.size g
  && List.for_all (fun (a, b) -> Hashtbl.find pos a < Hashtbl.find pos b) (Digraph.edges g)

let prop_extensions_are_topo_sorts =
  QCheck.Test.make ~name:"linear extensions are topological sorts" ~count:100 dag_arb
    (fun (n, edges) ->
      let g = Digraph.of_edges n edges in
      let p = Poset.of_digraph_exn g in
      let exts = Poset.linear_extensions p in
      List.for_all (is_topological_sort g) exts
      && List.length (List.sort_uniq compare exts) = List.length exts
      && List.length exts = Poset.count_linear_extensions p)

let prop_step_sequences_at_least_extensions =
  QCheck.Test.make ~name:"#step sequences >= #linear extensions" ~count:100 dag_arb
    (fun (n, edges) ->
      let p = Poset.of_digraph_exn (Digraph.of_edges n edges) in
      Linext.count_step_sequences p >= Poset.count_linear_extensions p)

let prop_step_sequences_valid =
  QCheck.Test.make ~name:"enumerated step sequences validate" ~count:60 dag_arb
    (fun (n, edges) ->
      let p = Poset.of_digraph_exn (Digraph.of_edges n edges) in
      List.for_all (Linext.is_step_sequence p) (Linext.step_sequences ~limit:200 p))

(* ------------------------------------------------------------------ *)
(* Computations and histories                                          *)
(* ------------------------------------------------------------------ *)

let prop_temporal_is_strict_order =
  QCheck.Test.make ~name:"temporal order strict" ~count:200 comp_arb (fun spec ->
      let comp = build_comp spec in
      match C.temporal comp with
      | None -> false
      | Some p ->
          let n = C.n_events comp in
          List.for_all
            (fun a ->
              (not (Poset.lt p a a))
              && List.for_all
                   (fun b ->
                     List.for_all
                       (fun c ->
                         (not (Poset.lt p a b && Poset.lt p b c)) || Poset.lt p a c)
                       (List.init n Fun.id))
                   (List.init n Fun.id))
            (List.init n Fun.id))

let prop_elem_lt_within_temporal =
  QCheck.Test.make ~name:"element order within temporal order" ~count:200 comp_arb
    (fun spec ->
      let comp = build_comp spec in
      let n = C.n_events comp in
      List.for_all
        (fun a ->
          List.for_all
            (fun b -> (not (C.elem_lt comp a b)) || C.temp_lt comp a b)
            (List.init n Fun.id))
        (List.init n Fun.id))

let prop_histories_down_closed =
  QCheck.Test.make ~name:"histories are down-closed and distinct" ~count:60 comp_arb
    (fun spec ->
      let comp = build_comp spec in
      let poset = C.temporal_exn comp in
      let hs = History.all comp in
      List.for_all (fun h -> Poset.is_down_closed poset (History.members h)) hs
      &&
      let keys = List.map (fun h -> Bitset.elements (History.members h)) hs in
      List.length (List.sort_uniq compare keys) = List.length keys
      && History.count comp = List.length hs)

let prop_vhs_runs_complete =
  QCheck.Test.make ~name:"complete runs start empty and end full" ~count:40 comp_arb
    (fun spec ->
      let comp = build_comp spec in
      let runs = Vhs.all ~limit:100 comp in
      runs <> []
      && List.for_all
           (fun run ->
             History.cardinal (Vhs.nth_history run 0) = 0
             && History.is_full (Vhs.nth_history run (Vhs.length run - 1)))
           runs)

let prop_frontier_matches_potential =
  QCheck.Test.make ~name:"frontier = potential events" ~count:100 comp_arb (fun spec ->
      let comp = build_comp spec in
      let hs = History.all comp in
      List.for_all
        (fun h ->
          let f = History.frontier h in
          List.for_all (History.potential h) f
          && List.for_all
               (fun e -> List.mem e f || not (History.potential h e))
               (C.all_events comp))
        (List.filteri (fun i _ -> i < 10) hs))

let prop_width_exact =
  QCheck.Test.make ~name:"width = brute-force max antichain" ~count:100 dag_arb
    (fun (n, edges) ->
      let p = Poset.of_digraph_exn (Digraph.of_edges n edges) in
      (* Brute force over all subsets (n <= 7). *)
      let best = ref 0 in
      for mask = 0 to (1 lsl n) - 1 do
        let members = List.filter (fun v -> mask land (1 lsl v) <> 0) (List.init n Fun.id) in
        if Poset.is_antichain p (Bitset.of_list n members) then
          best := max !best (List.length members)
      done;
      let w = Poset.width p in
      let witness = Poset.max_antichain p in
      w = !best
      && List.length witness = w
      && Poset.is_antichain p (Bitset.of_list n witness)
      && Poset.width_lower_bound p <= w)

(* ------------------------------------------------------------------ *)
(* Evaluator dualities                                                 *)
(* ------------------------------------------------------------------ *)

let prop_quantifier_duality =
  QCheck.Test.make ~name:"forall/exists duality" ~count:100 comp_arb (fun spec ->
      let comp = build_comp spec in
      let inner x = F.exists [ ("y", F.Any) ] (F.temp_lt x "y") in
      let all_form = F.forall [ ("x", F.Any) ] (inner "x") in
      let dual = F.neg (F.exists [ ("x", F.Any) ] (F.neg (inner "x"))) in
      Eval.eval_computation comp all_form = Eval.eval_computation comp dual)

let prop_temporal_duality =
  QCheck.Test.make ~name:"henceforth/eventually duality on runs" ~count:40 comp_arb
    (fun spec ->
      let comp = build_comp spec in
      let p = F.exists [ ("x", F.Any) ] (F.fresh "x") in
      List.for_all
        (fun run ->
          Eval.eval_run run (F.henceforth p)
          = not (Eval.eval_run run (F.eventually (F.neg p))))
        (Vhs.all ~limit:20 comp))

let prop_occurred_monotone =
  QCheck.Test.make ~name:"occurred is monotone along runs" ~count:40 comp_arb
    (fun spec ->
      let comp = build_comp spec in
      List.for_all
        (fun run ->
          List.for_all
            (fun e ->
              let env = [ ("e", e) ] in
              (* once occurred, henceforth occurred *)
              Eval.eval_run ~env run
                F.(henceforth (occurred "e" ==> henceforth (occurred "e"))))
            (C.all_events comp))
        (Vhs.all ~limit:10 comp))

(* ------------------------------------------------------------------ *)
(* Bitsets against a set model                                         *)
(* ------------------------------------------------------------------ *)

module Iset = Set.Make (Int)

let ops_gen =
  QCheck.Gen.(list_size (int_range 0 40) (pair (int_range 0 2) (int_range 0 15)))

let prop_bitset_model =
  QCheck.Test.make ~name:"bitset matches set model" ~count:300
    (QCheck.make ops_gen) (fun ops ->
      let bs = Bitset.create 16 in
      let model = ref Iset.empty in
      List.iter
        (fun (op, x) ->
          match op with
          | 0 ->
              Bitset.add bs x;
              model := Iset.add x !model
          | 1 ->
              Bitset.remove bs x;
              model := Iset.remove x !model
          | _ -> ignore (Bitset.mem bs x))
        ops;
      Bitset.elements bs = Iset.elements !model
      && Bitset.cardinal bs = Iset.cardinal !model)

(* ------------------------------------------------------------------ *)
(* Thread labelling on random chains                                   *)
(* ------------------------------------------------------------------ *)

let prop_thread_chains =
  QCheck.Test.make ~name:"thread labels follow chains" ~count:60
    (QCheck.make QCheck.Gen.(int_range 1 5)) (fun k ->
      (* k disjoint A->B chains; labelling must find k instances with 2
         events each. *)
      let b = Build.create () in
      for i = 0 to k - 1 do
        let a = Build.emit b ~element:(Printf.sprintf "P%d" i) ~klass:"A" () in
        ignore (Build.emit_enabled_by b ~by:a ~element:(Printf.sprintf "P%d" i) ~klass:"B" ())
      done;
      let def = Gem_spec.Thread.def "t" (Gem_spec.Thread.seq_of_domains [ F.Cls "A"; F.Cls "B" ]) in
      let comp = Gem_spec.Thread.label (Build.finish b) [ def ] in
      let instances = Gem_spec.Thread.instances comp "t" in
      List.length instances = k
      && List.for_all
           (fun i -> List.length (Gem_spec.Thread.events_of_instance comp "t" i) = 2)
           instances)

let () =
  let to_alc = QCheck_alcotest.to_alcotest in
  Alcotest.run "gem_properties"
    [
      ( "closure",
        [
          to_alc prop_closure_contains_base;
          to_alc prop_closure_idempotent;
          to_alc prop_closure_transitive;
          to_alc prop_reduction_preserves_closure;
          to_alc prop_reduction_minimal;
        ] );
      ( "extensions",
        [
          to_alc prop_extensions_are_topo_sorts;
          to_alc prop_step_sequences_at_least_extensions;
          to_alc prop_step_sequences_valid;
          to_alc prop_width_exact;
        ] );
      ( "computations",
        [
          to_alc prop_temporal_is_strict_order;
          to_alc prop_elem_lt_within_temporal;
          to_alc prop_histories_down_closed;
          to_alc prop_vhs_runs_complete;
          to_alc prop_frontier_matches_potential;
        ] );
      ( "evaluator",
        [
          to_alc prop_quantifier_duality;
          to_alc prop_temporal_duality;
          to_alc prop_occurred_monotone;
        ] );
      ("bitset", [ to_alc prop_bitset_model ]);
      ("threads", [ to_alc prop_thread_chains ]);
    ]
