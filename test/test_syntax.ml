(* Tests for the GEM concrete syntax: lexer, formula parser (with a
   print/parse round-trip property), thread patterns, and whole
   specifications — including a transcription of the paper's Variable
   element type. *)

module F = Gem_logic.Formula
module Parser = Gem_syntax.Parser
module Lexer = Gem_syntax.Lexer
module V = Gem_model.Value
module Build = Gem_model.Build
module Etype = Gem_spec.Etype
module Spec = Gem_spec.Spec

let check = Alcotest.check

let parse_ok src =
  match Parser.parse_formula src with
  | Ok f -> f
  | Error m -> Alcotest.failf "parse error on %S: %s" src m

let roundtrip f =
  let printed = F.to_string f in
  match Parser.parse_formula printed with
  | Ok f' -> if f' = f then true else Alcotest.failf "roundtrip changed: %s" printed
  | Error m -> Alcotest.failf "roundtrip parse failed on %s: %s" printed m

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let test_lexer_operators () =
  match Lexer.tokenize "a -> b =>el c => d |> e /\\ ~f" with
  | Ok
      [ IDENT "a"; IMPLIES; IDENT "b"; ELEM_LT; IDENT "c"; TEMP_LT; IDENT "d";
        ENABLES; IDENT "e"; AND; NOT; IDENT "f"; EOF ] ->
      ()
  | Ok _ -> Alcotest.fail "wrong tokens"
  | Error e -> Alcotest.failf "lex error: %s" e.Lexer.message

let test_lexer_comments_strings () =
  match Lexer.tokenize "x -- a comment\n\"hi\\n\" -3" with
  | Ok [ IDENT "x"; STRING "hi\n"; INT (-3); EOF ] -> ()
  | Ok _ -> Alcotest.fail "wrong tokens"
  | Error e -> Alcotest.failf "lex error: %s" e.Lexer.message

let test_lexer_dashed_idents () =
  match Lexer.tokenize "readers-priority a->b" with
  | Ok [ IDENT "readers-priority"; IDENT "a"; IMPLIES; IDENT "b"; EOF ] -> ()
  | Ok _ -> Alcotest.fail "wrong tokens"
  | Error e -> Alcotest.failf "lex error: %s" e.Lexer.message

let test_lexer_errors () =
  (match Lexer.tokenize "\"unterminated" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected lex error");
  match Lexer.tokenize "a $ b" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected lex error"

(* ------------------------------------------------------------------ *)
(* Formula parsing                                                     *)
(* ------------------------------------------------------------------ *)

let test_parse_paper_variable_restriction () =
  (* The paper's Variable restriction (§8.2), in concrete syntax. *)
  let f =
    parse_ok
      "(ALL a: Var.Assign, g: Var.Getval)\n\
      \  ((a =>el g /\\ ~((EX a2: Var.Assign) (a =>el a2 /\\ a2 =>el g)))\n\
      \    -> a.newval = g.oldval)"
  in
  (* Spot-check the shape. *)
  (match f with
  | F.Forall ("a", F.Cls_at ("Var", "Assign"), F.Forall ("g", F.Cls_at ("Var", "Getval"), _))
    -> ()
  | _ -> Alcotest.fail "unexpected shape");
  check Alcotest.(list string) "no free vars" [] (F.free_vars f)

let test_parse_priority_shape () =
  let f =
    parse_ok
      "[]((ALL r: control.ReqRead, w: control.ReqWrite)\n\
      \   (r at control.StartRead /\\ w at control.StartWrite)\n\
      \   -> []((ALL sw: control.StartWrite) (occurred(sw) -> (EX sr: control.StartRead) occurred(sr))))"
  in
  check Alcotest.bool "temporal" true (not (F.is_immediate f))

let test_parse_operators_precedence () =
  (* -> binds weaker than /\ and \/; ~ binds tightest. *)
  let f = parse_ok "occurred(a) /\\ occurred(b) -> occurred(c) \\/ ~occurred(d)" in
  match f with
  | F.Implies (F.And [ _; _ ], F.Or [ _; F.Not _ ]) -> ()
  | _ -> Alcotest.failf "wrong precedence: %s" (F.to_string f)

let test_parse_quantifier_kinds () =
  (match parse_ok "(EX! x: A) occurred(x)" with
  | F.Exists_unique _ -> ()
  | _ -> Alcotest.fail "EX!");
  (match parse_ok "(EX<=1 x: A) occurred(x)" with
  | F.At_most_one _ -> ()
  | _ -> Alcotest.fail "EX<=1");
  match parse_ok "(EX x: A) occurred(x)" with
  | F.Exists _ -> ()
  | _ -> Alcotest.fail "EX"

let test_parse_domains () =
  (match parse_ok "(ALL x: *) occurred(x)" with
  | F.Forall (_, F.Any, _) -> ()
  | _ -> Alcotest.fail "any");
  (match parse_ok "(ALL x: RW.lock.Acq) occurred(x)" with
  | F.Forall (_, F.Cls_at ("RW.lock", "Acq"), _) -> ()
  | _ -> Alcotest.fail "dotted element");
  (match parse_ok "(ALL x: RW.lock.*) occurred(x)" with
  | F.Forall (_, F.At_elem "RW.lock", _) -> ()
  | _ -> Alcotest.fail "at-elem");
  match parse_ok "(ALL x: {A|b.C}) occurred(x)" with
  | F.Forall (_, F.Union [ F.Cls "A"; F.Cls_at ("b", "C") ], _) -> ()
  | _ -> Alcotest.fail "union"

let test_parse_thread_atoms () =
  (match parse_ok "x ~pi~ y" with
  | F.Atom (F.Same_thread ("pi", "x", "y")) -> ()
  | _ -> Alcotest.fail "same thread");
  (match parse_ok "x !~pi~ y" with
  | F.Atom (F.Distinct_thread ("pi", "x", "y")) -> ()
  | _ -> Alcotest.fail "distinct thread");
  match parse_ok "x in pi" with
  | F.Atom (F.In_thread ("pi", "x")) -> ()
  | _ -> Alcotest.fail "in thread"

let test_parse_terms () =
  (match parse_ok "index(a) + 1 = index(b)" with
  | F.Atom (F.Cmp (F.Eq, F.Plus (F.Index "a", 1), F.Index "b")) -> ()
  | _ -> Alcotest.fail "index arithmetic");
  (match parse_ok "a.value != \"x\"" with
  | F.Atom (F.Cmp (F.Ne, F.Param ("a", "value"), F.Const (V.Str "x"))) -> ()
  | _ -> Alcotest.fail "string const");
  match parse_ok "a.flag = true" with
  | F.Atom (F.Cmp (F.Eq, _, F.Const (V.Bool true))) -> ()
  | _ -> Alcotest.fail "bool const"

let test_parse_errors () =
  List.iter
    (fun src ->
      match Parser.parse_formula src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse error on %S" src)
    [ "occurred(x"; "x |>"; "(ALL x) occurred(x)"; "x => => y"; "occurred(x) extra" ]

(* ------------------------------------------------------------------ *)
(* Round-trip property                                                 *)
(* ------------------------------------------------------------------ *)

let formula_gen =
  let open QCheck.Gen in
  let var = oneofl [ "x"; "y"; "z" ] in
  let dom =
    oneof
      [
        return F.Any;
        map (fun c -> F.Cls c) (oneofl [ "A"; "B" ]);
        return (F.Cls_at ("El.sub", "K"));
        return (F.At_elem "El");
        return (F.Union [ F.Cls "A"; F.Cls "B" ]);
      ]
  in
  let texp =
    oneof
      [
        map (fun n -> F.Const (V.Int n)) (int_range (-5) 5);
        return (F.Const (V.Str "s"));
        return (F.Const (V.Bool true));
        return (F.Const V.Unit);
        map (fun x -> F.Param (x, "p")) var;
        map (fun x -> F.Index x) var;
        map2 (fun x n -> F.Plus (F.Index x, n)) var (int_range 1 3);
      ]
  in
  let atom =
    oneof
      [
        map (fun x -> F.Occurred x) var;
        map2 (fun x y -> F.Enables (x, y)) var var;
        map2 (fun x y -> F.Elem_lt (x, y)) var var;
        map2 (fun x y -> F.Temp_lt (x, y)) var var;
        map2 (fun x y -> F.Same_event (x, y)) var var;
        map2 (fun x y -> F.Same_element (x, y)) var var;
        (let* c = oneofl [ F.Eq; F.Ne; F.Lt; F.Le; F.Gt; F.Ge ] in
         let* t1 = texp in
         let* t2 = texp in
         return (F.Cmp (c, t1, t2)));
        map2 (fun x d -> F.At_class (x, d)) var dom;
        map (fun x -> F.New x) var;
        map (fun x -> F.Potential x) var;
        map2 (fun x y -> F.Same_thread ("pi", x, y)) var var;
        map2 (fun x y -> F.Distinct_thread ("pi", x, y)) var var;
        map (fun x -> F.In_thread ("pi", x)) var;
      ]
  in
  fix
    (fun self depth ->
      if depth = 0 then oneof [ map (fun a -> F.Atom a) atom; return F.True; return F.False ]
      else
        let sub = self (depth - 1) in
        oneof
          [
            map (fun a -> F.Atom a) atom;
            map (fun f -> F.Not f) sub;
            map2 (fun a b -> F.And [ a; b ]) sub sub;
            map2 (fun a b -> F.Or [ a; b ]) sub sub;
            map2 (fun a b -> F.Implies (a, b)) sub sub;
            map2 (fun a b -> F.Iff (a, b)) sub sub;
            (let* x = var in
             let* d = dom in
             map (fun f -> F.Forall (x, d, f)) sub);
            (let* x = var in
             let* d = dom in
             map (fun f -> F.Exists (x, d, f)) sub);
            (let* x = var in
             let* d = dom in
             map (fun f -> F.Exists_unique (x, d, f)) sub);
            (let* x = var in
             let* d = dom in
             map (fun f -> F.At_most_one (x, d, f)) sub);
            map (fun f -> F.Henceforth f) sub;
            map (fun f -> F.Eventually f) sub;
          ])
    3

let prop_roundtrip =
  QCheck.Test.make ~name:"parse (print f) = f" ~count:500
    (QCheck.make formula_gen ~print:F.to_string)
    roundtrip

(* ------------------------------------------------------------------ *)
(* Thread patterns and specifications                                  *)
(* ------------------------------------------------------------------ *)

let test_parse_thread_pattern () =
  match Parser.parse_thread_pattern "(A :: b.B :: C* | D? :: E)" with
  | Ok
      (Gem_spec.Thread.Alt
        [
          Gem_spec.Thread.Seq
            [ Gem_spec.Thread.Step (F.Cls "A"); Step (F.Cls_at ("b", "B"));
              Star (Step (F.Cls "C")) ];
          Seq [ Opt (Step (F.Cls "D")); Step (F.Cls "E") ];
        ]) ->
      ()
  | Ok _ -> Alcotest.fail "wrong pattern"
  | Error m -> Alcotest.failf "parse error: %s" m

let paper_spec_text =
  {|
SPECIFICATION quickstart
  -- the paper's sec. 6 IntegerVariable, spelled out
  ELEMENT TYPE MyVariable
    EVENTS
      Assign(newval: INTEGER)
      Getval(oldval: INTEGER)
    RESTRICTIONS
      getval-yields-last-assigned:
        (ALL a: self.Assign, g: self.Getval)
          ((a =>el g /\ ~((EX a2: self.Assign) (a =>el a2 /\ a2 =>el g)))
            -> a.newval = g.oldval)
  END
  ELEMENT TYPE Stepper
    EVENTS
      Step
  END
  ELEMENT Var : MyVariable
  ELEMENT Proc : Stepper
  GROUP Cell (Var) PORTS (Var.Assign, Var.Getval)
  RESTRICTION reads-follow-writes:
    (ALL g: Var.Getval) (EX a: Var.Assign) a => g
  THREAD step = (Step :: Assign :: Getval)
END
|}

let test_parse_spec () =
  match Parser.parse_spec paper_spec_text with
  | Error m -> Alcotest.failf "spec parse error: %s" m
  | Ok spec ->
      check Alcotest.string "name" "quickstart" spec.Spec.spec_name;
      check Alcotest.(list string) "elements" [ "Var"; "Proc" ] (Spec.declared_elements spec);
      check Alcotest.int "groups" 1 (List.length spec.Spec.groups);
      check Alcotest.int "explicit restrictions" 1 (List.length spec.Spec.restrictions);
      check Alcotest.int "threads" 1 (List.length spec.Spec.threads);
      (* the element-type restriction instantiates with 'self' = Var *)
      check Alcotest.bool "type restriction instantiated" true
        (List.mem_assoc "Var.getval-yields-last-assigned" (Spec.type_restrictions spec))

let test_parsed_spec_checks_computations () =
  match Parser.parse_spec paper_spec_text with
  | Error m -> Alcotest.failf "spec parse error: %s" m
  | Ok spec ->
      let good =
        let b = Build.create () in
        let s = Build.emit b ~element:"Proc" ~klass:"Step" () in
        let a = Build.emit_enabled_by b ~by:s ~element:"Var" ~klass:"Assign"
            ~params:[ ("newval", V.Int 7) ] () in
        let _ = Build.emit_enabled_by b ~by:a ~element:"Var" ~klass:"Getval"
            ~params:[ ("oldval", V.Int 7) ] () in
        Build.finish b
      in
      check Alcotest.bool "good accepted" true
        (Gem_check.Verdict.ok (Gem_check.Check.check spec good));
      let stale =
        let b = Build.create () in
        let a = Build.emit b ~element:"Var" ~klass:"Assign" ~params:[ ("newval", V.Int 7) ] () in
        let _ = Build.emit_enabled_by b ~by:a ~element:"Var" ~klass:"Getval"
            ~params:[ ("oldval", V.Int 8) ] () in
        Build.finish b
      in
      check Alcotest.bool "stale read rejected" false
        (Gem_check.Verdict.ok (Gem_check.Check.check spec stale));
      let wrong_type =
        let b = Build.create () in
        let _ = Build.emit b ~element:"Var" ~klass:"Assign" ~params:[ ("newval", V.Str "x") ] () in
        Build.finish b
      in
      check Alcotest.bool "schema enforced" false
        (Gem_check.Verdict.ok (Gem_check.Check.check spec wrong_type))

let test_parse_spec_errors () =
  List.iter
    (fun src ->
      match Parser.parse_spec src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected error on %S" src)
    [
      "ELEMENT Var : Variable";  (* missing SPECIFICATION *)
      "SPECIFICATION s ELEMENT Var : Nope END";  (* unknown type *)
      "SPECIFICATION s ELEMENT TYPE T EVENTS A(x: FLOAT) END END";  (* bad ptype *)
    ]

(* The paper's §6 parameterized type: TypedVariable(t: TYPE). *)
let test_parameterized_etype () =
  let src =
    {|
SPECIFICATION s
  ELEMENT TYPE TypedVariable(t: TYPE)
    EVENTS
      Assign(newval: t)
      Getval(oldval: t)
    RESTRICTIONS
      last-assigned:
        (ALL a: self.Assign, g: self.Getval)
          ((a =>el g /\ ~((EX a2: self.Assign) (a =>el a2 /\ a2 =>el g)))
             -> a.newval = g.oldval)
  END
  ELEMENT Vi : TypedVariable(INTEGER)
  ELEMENT Vs : TypedVariable(STRING)
END
|}
  in
  match Parser.parse_spec src with
  | Error m -> Alcotest.failf "parameterized parse error: %s" m
  | Ok spec ->
      let vi = Option.get (Spec.element_type spec "Vi") in
      let vs = Option.get (Spec.element_type spec "Vs") in
      let decl ty = Option.get (Etype.event_decl ty "Assign") in
      check Alcotest.bool "int instance accepts int" true
        (Etype.schema_ok (decl vi) [ ("newval", V.Int 1) ]);
      check Alcotest.bool "int instance rejects string" false
        (Etype.schema_ok (decl vi) [ ("newval", V.Str "x") ]);
      check Alcotest.bool "string instance accepts string" true
        (Etype.schema_ok (decl vs) [ ("newval", V.Str "x") ]);
      (* The shared restriction instantiates per element. *)
      check Alcotest.bool "restriction per instance" true
        (List.mem_assoc "Vi.last-assigned" (Spec.type_restrictions spec)
        && List.mem_assoc "Vs.last-assigned" (Spec.type_restrictions spec))

let test_parameterized_arity_error () =
  match
    Parser.parse_spec
      "SPECIFICATION s ELEMENT TYPE P(t: TYPE) EVENTS A(x: t) END ELEMENT V : P END"
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected arity error"

let test_builtin_types_available () =
  match Parser.parse_spec "SPECIFICATION s ELEMENT V : Variable ELEMENT W : IntegerVariable END" with
  | Ok spec -> check Alcotest.int "two elements" 2 (List.length spec.Spec.elements)
  | Error m -> Alcotest.failf "builtin types: %s" m

(* The shipped .gem transcription of the paper's sec. 8.3 spec parses and
   verifies the paper's monitor, end to end. *)
let test_gem_file_verifies_monitor () =
  let path =
    if Sys.file_exists "../examples/readers_writers.gem" then
      "../examples/readers_writers.gem"
    else "examples/readers_writers.gem"
  in
  let src =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Parser.parse_spec src with
  | Error m -> Alcotest.failf "readers_writers.gem: %s" m
  | Ok problem ->
      check Alcotest.int "threads" 1 (List.length problem.Spec.threads);
      let program =
        Gem_problems.Readers_writers.program
          ~monitor:Gem_problems.Readers_writers.paper_monitor ~readers:2 ~writers:1
      in
      let o = Gem_lang.Monitor.explore program in
      check Alcotest.bool "paper monitor satisfies the .gem spec" true
        (Gem_check.Refine.sat_ok
           ~strategy:(Gem_check.Strategy.Linearizations (Some 400))
           ~edges:Gem_check.Refine.Actor_paths ~problem
           ~map:Gem_problems.Readers_writers.correspondence o.Gem_lang.Monitor.computations);
      (* The mutant must be refuted at the same 2R+1W population the .gem
         file declares (a different population would fail trivially on
         legality). *)
      let buggy =
        Gem_problems.Readers_writers.program
          ~monitor:Gem_problems.Readers_writers.no_exclusion_monitor ~readers:2 ~writers:1
      in
      let ob = Gem_lang.Monitor.explore buggy in
      check Alcotest.bool "no-exclusion monitor violates the .gem spec" false
        (Gem_check.Refine.sat_ok
           ~strategy:(Gem_check.Strategy.Linearizations (Some 400))
           ~edges:Gem_check.Refine.Actor_paths ~problem
           ~map:Gem_problems.Readers_writers.correspondence ob.Gem_lang.Monitor.computations)

let () =
  Alcotest.run "gem_syntax"
    [
      ( "lexer",
        [
          Alcotest.test_case "operators" `Quick test_lexer_operators;
          Alcotest.test_case "comments-strings" `Quick test_lexer_comments_strings;
          Alcotest.test_case "dashed-idents" `Quick test_lexer_dashed_idents;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "formula",
        [
          Alcotest.test_case "paper-variable" `Quick test_parse_paper_variable_restriction;
          Alcotest.test_case "priority-shape" `Quick test_parse_priority_shape;
          Alcotest.test_case "precedence" `Quick test_parse_operators_precedence;
          Alcotest.test_case "quantifiers" `Quick test_parse_quantifier_kinds;
          Alcotest.test_case "domains" `Quick test_parse_domains;
          Alcotest.test_case "thread-atoms" `Quick test_parse_thread_atoms;
          Alcotest.test_case "terms" `Quick test_parse_terms;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          QCheck_alcotest.to_alcotest prop_roundtrip;
        ] );
      ( "spec",
        [
          Alcotest.test_case "thread-pattern" `Quick test_parse_thread_pattern;
          Alcotest.test_case "parse-spec" `Quick test_parse_spec;
          Alcotest.test_case "checks-computations" `Quick test_parsed_spec_checks_computations;
          Alcotest.test_case "errors" `Quick test_parse_spec_errors;
          Alcotest.test_case "builtins" `Quick test_builtin_types_available;
          Alcotest.test_case "parameterized-types" `Quick test_parameterized_etype;
          Alcotest.test_case "parameterized-arity" `Quick test_parameterized_arity_error;
          Alcotest.test_case "gem-file-verifies-monitor" `Slow test_gem_file_verifies_monitor;
        ] );
    ]
