(* Unit tests for histories, valid history sequences, and the restriction
   language evaluator — anchored on the paper's §7 example. *)

module V = Gem_model.Value
module Build = Gem_model.Build
module C = Gem_model.Computation
module History = Gem_logic.History
module Vhs = Gem_logic.Vhs
module F = Gem_logic.Formula
module Eval = Gem_logic.Eval
module Bitset = Gem_order.Bitset

let check = Alcotest.check

(* The paper's §7 computation: e1 |> e2, e1 |> e3, e2 |> e4, e3 |> e4,
   each event at its own element (pure enable structure). *)
let paper_example () =
  let b = Build.create () in
  let e1 = Build.emit b ~element:"E1" ~klass:"A" () in
  let e2 = Build.emit_enabled_by b ~by:e1 ~element:"E2" ~klass:"B" () in
  let e3 = Build.emit_enabled_by b ~by:e1 ~element:"E3" ~klass:"C" () in
  let e4 = Build.emit_enabled_by b ~by:e2 ~element:"E4" ~klass:"D" () in
  Build.enable b e3 e4;
  (Build.finish b, e1, e2, e3, e4)

(* ------------------------------------------------------------------ *)
(* Histories                                                           *)
(* ------------------------------------------------------------------ *)

let test_history_count_cap () =
  let comp, _, _, _, _ = paper_example () in
  check Alcotest.int "cap respected" 3 (History.count ~cap:3 comp);
  check Alcotest.int "cap above" 6 (History.count ~cap:100 comp)

let test_history_lattice () =
  let comp, _, _, _, _ = paper_example () in
  (* empty, {e1}, {e1,e2}, {e1,e3}, {e1,e2,e3}, full — the paper's five
     plus the empty history. *)
  check Alcotest.int "6 histories" 6 (List.length (History.all comp));
  check Alcotest.int "count agrees" 6 (History.count comp)

let test_history_of_set () =
  let comp, e1, e2, _, e4 = paper_example () in
  let n = C.n_events comp in
  check Alcotest.bool "down-closed ok" true
    (History.of_set comp (Bitset.of_list n [ e1; e2 ]) <> None);
  check Alcotest.bool "not down-closed" true
    (History.of_set comp (Bitset.of_list n [ e2 ]) = None);
  let h = History.down_closure comp (Bitset.of_list n [ e4 ]) in
  check Alcotest.int "closure is everything" 4 (History.cardinal h)

let test_history_prefix_mem () =
  let comp, e1, e2, e3, _ = paper_example () in
  let n = C.n_events comp in
  let h1 = Option.get (History.of_set comp (Bitset.of_list n [ e1 ])) in
  let h2 = Option.get (History.of_set comp (Bitset.of_list n [ e1; e2 ])) in
  check Alcotest.bool "prefix" true (History.prefix h1 h2);
  check Alcotest.bool "not prefix" false (History.prefix h2 h1);
  check Alcotest.bool "mem" true (History.mem h2 e2);
  check Alcotest.bool "not mem" false (History.mem h2 e3);
  check Alcotest.bool "full is full" true (History.is_full (History.full comp))

let test_history_frontier_potential () =
  let comp, e1, e2, e3, e4 = paper_example () in
  let h0 = History.empty comp in
  check Alcotest.(list int) "frontier of empty" [ e1 ] (History.frontier h0);
  check Alcotest.bool "e1 potential" true (History.potential h0 e1);
  check Alcotest.bool "e4 not potential" false (History.potential h0 e4);
  let n = C.n_events comp in
  let h = Option.get (History.of_set comp (Bitset.of_list n [ e1; e2; e3 ])) in
  check Alcotest.(list int) "frontier" [ e4 ] (History.frontier h);
  check Alcotest.bool "e2 not potential (occurred)" false (History.potential h e2)

let test_history_add_step () =
  let comp, e1, e2, e3, e4 = paper_example () in
  let h0 = History.empty comp in
  let h1 = Option.get (History.add_step h0 [ e1 ]) in
  (* e2 and e3 are concurrent: a joint step is allowed. *)
  check Alcotest.bool "joint step" true (History.add_step h1 [ e2; e3 ] <> None);
  (* e1 and e2 are ordered: never a joint step. *)
  check Alcotest.bool "ordered step rejected" true (History.add_step h0 [ e1; e2 ] = None);
  check Alcotest.bool "premature" true (History.add_step h1 [ e4 ] = None);
  check Alcotest.bool "stale" true (History.add_step h1 [ e1 ] = None);
  check Alcotest.bool "empty step" true (History.add_step h1 [] = None)

let test_history_new_at () =
  let comp, e1, e2, e3, _ = paper_example () in
  let n = C.n_events comp in
  let h = Option.get (History.of_set comp (Bitset.of_list n [ e1; e2 ])) in
  check Alcotest.bool "e2 new" true (History.is_new h e2);
  check Alcotest.bool "e1 not new" false (History.is_new h e1);
  (* e1 at {e3}: e1 has not yet enabled e3 within this history. *)
  check Alcotest.bool "at pending" true (History.at h e1 (fun e -> e = e3));
  check Alcotest.bool "at done" false (History.at h e1 (fun e -> e = e2))

(* ------------------------------------------------------------------ *)
(* Valid history sequences                                             *)
(* ------------------------------------------------------------------ *)

let test_vhs_counts () =
  let comp, _, _, _, _ = paper_example () in
  check Alcotest.int "3 complete runs" 3 (List.length (Vhs.all comp));
  check Alcotest.int "count agrees" 3 (Vhs.count comp);
  check Alcotest.int "2 linearizations" 2 (List.length (Vhs.all_linearizations comp))

let test_vhs_structure () =
  let comp, e1, e2, e3, e4 = paper_example () in
  let run = Option.get (Vhs.of_steps comp [ [ e1 ]; [ e2; e3 ]; [ e4 ] ]) in
  check Alcotest.int "4 histories" 4 (Vhs.length run);
  check Alcotest.int "starts empty" 0 (History.cardinal (Vhs.nth_history run 0));
  check Alcotest.bool "ends full" true (History.is_full (Vhs.nth_history run 3));
  check Alcotest.bool "invalid steps" true (Vhs.of_steps comp [ [ e1 ]; [ e4 ] ] = None);
  check Alcotest.bool "incomplete" true (Vhs.of_steps comp [ [ e1 ] ] = None)

let test_vhs_greedy_and_linearization () =
  let comp, e1, e2, e3, e4 = paper_example () in
  let g = Vhs.greedy comp in
  check Alcotest.int "greedy length" 4 (Vhs.length g);
  check Alcotest.bool "linearization ok" true
    (Vhs.of_linearization comp [ e1; e3; e2; e4 ] <> None);
  check Alcotest.bool "bad linearization" true
    (Vhs.of_linearization comp [ e2; e1; e3; e4 ] = None)

let test_vhs_limit_and_sample () =
  let comp, _, _, _, _ = paper_example () in
  check Alcotest.int "limit" 2 (List.length (Vhs.all ~limit:2 comp));
  let rng = Random.State.make [| 3 |] in
  let s = Vhs.sample rng comp in
  check Alcotest.bool "sample ends full" true
    (History.is_full (Vhs.nth_history s (Vhs.length s - 1)))

(* ------------------------------------------------------------------ *)
(* Formula evaluation                                                  *)
(* ------------------------------------------------------------------ *)

(* Var := 1; Var := 2; read 2 — plus an independent element. *)
let var_comp () =
  let b = Build.create () in
  let a0 = Build.emit b ~element:"Var" ~klass:"Assign" ~params:[ ("newval", V.Int 1) ] () in
  let a1 = Build.emit_enabled_by b ~by:a0 ~element:"Var" ~klass:"Assign"
      ~params:[ ("newval", V.Int 2) ] () in
  let g = Build.emit_enabled_by b ~by:a1 ~element:"Var" ~klass:"Getval"
      ~params:[ ("oldval", V.Int 2) ] () in
  let other = Build.emit b ~element:"Other" ~klass:"Tick" () in
  (Build.finish b, a0, a1, g, other)

let test_eval_quantifiers () =
  let comp, _, _, _, _ = var_comp () in
  let open F in
  check Alcotest.bool "forall assigns" true
    (Eval.eval_computation comp
       (forall [ ("a", Cls "Assign") ] (exists [ ("g", Cls "Getval") ] (temp_lt "a" "g"))));
  check Alcotest.bool "exists unique getval" true
    (Eval.eval_computation comp (exists1 "g" (Cls "Getval") (occurred "g")));
  check Alcotest.bool "not unique assign" false
    (Eval.eval_computation comp (exists1 "a" (Cls "Assign") (occurred "a")));
  check Alcotest.bool "at most one getval" true
    (Eval.eval_computation comp (at_most_one "g" (Cls "Getval") (occurred "g")))

let test_eval_domains () =
  let comp, _, _, _, _ = var_comp () in
  let open F in
  check Alcotest.int "Any domain" 4 (List.length (Eval.domain_events comp Any));
  check Alcotest.int "class" 2 (List.length (Eval.domain_events comp (Cls "Assign")));
  check Alcotest.int "at element" 3 (List.length (Eval.domain_events comp (At_elem "Var")));
  check Alcotest.int "class at" 1
    (List.length (Eval.domain_events comp (Cls_at ("Var", "Getval"))));
  check Alcotest.int "union" 3
    (List.length (Eval.domain_events comp (Union [ Cls "Assign"; Cls "Tick" ])))

let test_eval_params () =
  let comp, _, _, _, _ = var_comp () in
  let open F in
  (* The paper's Variable restriction: last assignment's value is read. *)
  let last_assigned =
    forall
      [ ("a", Cls "Assign"); ("g", Cls "Getval") ]
      (elem_lt "a" "g"
       &&& neg (exists [ ("a'", Cls "Assign") ] (elem_lt "a" "a'" &&& elem_lt "a'" "g"))
      ==> (param "a" "newval" =. param "g" "oldval"))
  in
  check Alcotest.bool "variable restriction" true (Eval.eval_computation comp last_assigned);
  check Alcotest.bool "index term" true
    (Eval.eval_computation comp
       (forall [ ("g", Cls "Getval") ] (Atom (Cmp (Eq, Index "g", Const (V.Int 2))))));
  check Alcotest.bool "plus term" true
    (Eval.eval_computation comp
       (forall [ ("g", Cls "Getval") ] (Atom (Cmp (Eq, Index "g", Plus (Const (V.Int 1), 1))))))

let test_eval_same_element () =
  let comp, _, _, _, _ = var_comp () in
  let open F in
  check Alcotest.bool "same element" true
    (Eval.eval_computation comp
       (forall [ ("a", Cls "Assign"); ("g", Cls "Getval") ] (same_element "a" "g")));
  check Alcotest.bool "different" false
    (Eval.eval_computation comp
       (forall [ ("a", Cls "Assign"); ("t", Cls "Tick") ] (same_element "a" "t")))

let test_eval_history_relative () =
  let comp, a0, a1, _, _ = var_comp () in
  let n = C.n_events comp in
  let h = Option.get (History.of_set comp (Bitset.of_list n [ a0 ])) in
  let open F in
  let env = [ ("a0", a0); ("a1", a1) ] in
  check Alcotest.bool "occurred in history" true (Eval.eval_history h env (occurred "a0"));
  check Alcotest.bool "not yet occurred" false (Eval.eval_history h env (occurred "a1"));
  (* Relations are restricted to the history. *)
  check Alcotest.bool "enable not visible yet" false
    (Eval.eval_history h env (enables "a0" "a1"));
  check Alcotest.bool "potential" true (Eval.eval_history h env (potential "a1"));
  check Alcotest.bool "new" true (Eval.eval_history h env (fresh "a0"))

let test_eval_errors () =
  let comp, _, _, _, _ = var_comp () in
  let open F in
  (try
     ignore (Eval.eval_computation comp (occurred "zzz"));
     Alcotest.fail "expected unbound error"
   with Eval.Error _ -> ());
  (try
     ignore (Eval.eval_computation comp (henceforth True));
     Alcotest.fail "expected temporal-in-immediate error"
   with Eval.Error _ -> ());
  try
    ignore
      (Eval.eval_computation comp
         (forall [ ("a", Cls "Assign") ] (param "a" "nope" =. const_int 0)));
    Alcotest.fail "expected missing-param error"
  with Eval.Error _ -> ()

let test_eval_temporal () =
  let comp, e1, e2, e3, e4 = paper_example () in
  let open F in
  let run = Option.get (Vhs.of_steps comp [ [ e1 ]; [ e2 ]; [ e3 ]; [ e4 ] ]) in
  let env = [ ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4) ] in
  check Alcotest.bool "eventually e4" true (Eval.eval_run ~env run (eventually (occurred "e4")));
  check Alcotest.bool "not henceforth e1" false
    (Eval.eval_run ~env run (henceforth (occurred "e1")));
  check Alcotest.bool "henceforth (e1 -> eventually e4)" true
    (Eval.eval_run ~env run (henceforth (occurred "e1" ==> eventually (occurred "e4"))));
  (* e2 at {D-class} holds until e4 occurs, then fails henceforth. *)
  check Alcotest.bool "at eventually violated" true
    (Eval.eval_run ~env run (eventually (neg (at_cls "e2" (Cls "D") ||| neg (occurred "e2")))));
  (* potential then occurred: standard response pattern. *)
  check Alcotest.bool "potential leads to occurred" true
    (Eval.eval_run ~env run
       (henceforth (potential "e4" ==> eventually (occurred "e4"))))

let test_eval_run_order_sensitivity () =
  let comp, e1, e2, e3, e4 = paper_example () in
  let open F in
  let env = [ ("e2", e2); ("e3", e3) ] in
  let run23 = Option.get (Vhs.of_steps comp [ [ e1 ]; [ e2 ]; [ e3 ]; [ e4 ] ]) in
  let run32 = Option.get (Vhs.of_steps comp [ [ e1 ]; [ e3 ]; [ e2 ]; [ e4 ] ]) in
  let e2_first = eventually (occurred "e2" &&& neg (occurred "e3")) in
  check Alcotest.bool "run23 sees e2 first" true (Eval.eval_run ~env run23 e2_first);
  check Alcotest.bool "run32 does not" false (Eval.eval_run ~env run32 e2_first)

let test_formula_utilities () =
  let open F in
  let f = forall [ ("x", Any) ] (enables "x" "y" &&& occurred "z") in
  check Alcotest.(list string) "free vars" [ "y"; "z" ] (free_vars f);
  check Alcotest.bool "immediate" true (is_immediate f);
  check Alcotest.bool "temporal" false (is_immediate (henceforth f));
  check Alcotest.bool "prints" true (String.length (to_string f) > 0)

let () =
  Alcotest.run "gem_logic"
    [
      ( "history",
        [
          Alcotest.test_case "lattice" `Quick test_history_lattice;
          Alcotest.test_case "count-cap" `Quick test_history_count_cap;
          Alcotest.test_case "of-set" `Quick test_history_of_set;
          Alcotest.test_case "prefix-mem" `Quick test_history_prefix_mem;
          Alcotest.test_case "frontier-potential" `Quick test_history_frontier_potential;
          Alcotest.test_case "add-step" `Quick test_history_add_step;
          Alcotest.test_case "new-at" `Quick test_history_new_at;
        ] );
      ( "vhs",
        [
          Alcotest.test_case "counts" `Quick test_vhs_counts;
          Alcotest.test_case "structure" `Quick test_vhs_structure;
          Alcotest.test_case "greedy-linearization" `Quick test_vhs_greedy_and_linearization;
          Alcotest.test_case "limit-sample" `Quick test_vhs_limit_and_sample;
        ] );
      ( "eval",
        [
          Alcotest.test_case "quantifiers" `Quick test_eval_quantifiers;
          Alcotest.test_case "domains" `Quick test_eval_domains;
          Alcotest.test_case "params" `Quick test_eval_params;
          Alcotest.test_case "same-element" `Quick test_eval_same_element;
          Alcotest.test_case "history-relative" `Quick test_eval_history_relative;
          Alcotest.test_case "errors" `Quick test_eval_errors;
          Alcotest.test_case "temporal" `Quick test_eval_temporal;
          Alcotest.test_case "order-sensitivity" `Quick test_eval_run_order_sensitivity;
          Alcotest.test_case "utilities" `Quick test_formula_utilities;
        ] );
    ]
