(* Tests for the Monitor language: semantics, event emission, the GEM
   description of the Monitor primitive, and failure modes. *)

module V = Gem_model.Value
module C = Gem_model.Computation
module Event = Gem_model.Event
module E = Gem_lang.Expr
open Gem_lang.Monitor

let check = Alcotest.check

(* A counter monitor: inc(k) adds k, get returns the count. *)
let counter_monitor =
  {
    mon_name = "M";
    vars = [ ("count", V.Int 0) ];
    conditions = [];
    entries =
      [
        {
          entry_name = "inc";
          formals = [ "k" ];
          body = [ MAssign { var = "count"; value = E.Add (E.Var "count", E.Var "k"); site = None } ];
        };
        { entry_name = "get"; formals = []; body = [ MReturn (E.Var "count") ] };
      ];
  }

let incrementer name k =
  {
    proc_name = name;
    locals = [];
    code = [ PCall { monitor = "M"; entry = "inc"; args = [ E.Int k ]; bind = None } ];
  }

let getter name =
  {
    proc_name = name;
    locals = [ ("r", V.Int 0) ];
    code =
      [
        PCall { monitor = "M"; entry = "get"; args = []; bind = Some "r" };
        PMark { klass = "Got"; params = [ E.Var "r" ] };
      ];
  }

let test_counter_final_values () =
  let program =
    { monitors = [ counter_monitor ]; shared = [];
      processes = [ incrementer "P1" 2; incrementer "P2" 3 ] }
  in
  let o = explore program in
  check Alcotest.bool "no deadlocks" true (o.deadlocks = []);
  (* Both interleavings produce the same set of assignments {2,5} or {3,5}. *)
  List.iter
    (fun comp ->
      let finals =
        List.filter_map
          (fun h ->
            let e = C.event comp h in
            if Event.has_class e "Assign" then Some (V.as_int (Event.param e "newval"))
            else None)
          (C.events_at comp "M.count")
      in
      match finals with
      | [ 0; a; 5 ] -> Alcotest.(check bool) "intermediate" true (a = 2 || a = 3)
      | _ -> Alcotest.fail "unexpected assignment history")
    o.computations

let test_get_returns_count () =
  let program =
    { monitors = [ counter_monitor ]; shared = [];
      processes = [ incrementer "P1" 2; getter "G" ] }
  in
  let o = explore program in
  let results =
    List.map
      (fun comp ->
        match C.events_of_class comp "Got" with
        | [ h ] -> V.as_int (Event.param (C.event comp h) "p0")
        | _ -> Alcotest.fail "expected one Got")
      o.computations
  in
  check Alcotest.bool "0 or 2" true
    (List.for_all (fun r -> r = 0 || r = 2) results
    && List.exists (fun r -> r = 0) results
    && List.exists (fun r -> r = 2) results)

let test_lock_serialization_events () =
  let program =
    { monitors = [ counter_monitor ]; shared = [];
      processes = [ incrementer "P1" 1; incrementer "P2" 1 ] }
  in
  let o = explore program in
  List.iter
    (fun comp ->
      let lock = C.events_at comp "M.lock" in
      check Alcotest.int "acq/rel pairs" 4 (List.length lock);
      (* Strict alternation Acq/Rel at the lock element. *)
      List.iteri
        (fun i h ->
          let e = C.event comp h in
          let expected = if i mod 2 = 0 then "Acq" else "Rel" in
          check Alcotest.string "alternates" expected e.Event.klass)
        lock)
    o.computations

let test_language_spec_accepts () =
  let program =
    { monitors = [ counter_monitor ]; shared = [];
      processes = [ incrementer "P1" 2; getter "G" ] }
  in
  let spec = language_spec program in
  let o = explore program in
  List.iter
    (fun comp ->
      let v = Gem_check.Check.check spec comp in
      if not (Gem_check.Verdict.ok v) then
        Alcotest.failf "language spec rejected: %s"
          (Format.asprintf "%a" (Gem_check.Verdict.pp (Some comp)) v))
    o.computations

let test_language_spec_rejects_foreign () =
  let program =
    { monitors = [ counter_monitor ]; shared = []; processes = [ incrementer "P1" 1 ] }
  in
  let spec = language_spec program in
  let b = Gem_model.Build.create () in
  let _ = Gem_model.Build.emit b ~element:"Rogue" ~klass:"X" () in
  check Alcotest.bool "foreign rejected" false
    (Gem_check.Verdict.ok (Gem_check.Check.check spec (Gem_model.Build.finish b)))

let test_wait_signal_release () =
  (* One-slot handoff: consumer waits until producer signals. *)
  let handoff =
    {
      mon_name = "M";
      vars = [ ("full", V.Int 0); ("slot", V.Int 0) ];
      conditions = [ "nonempty" ];
      entries =
        [
          {
            entry_name = "put";
            formals = [ "x" ];
            body =
              [
                MAssign { var = "slot"; value = E.Var "x"; site = None };
                MAssign { var = "full"; value = E.Int 1; site = None };
                MSignal "nonempty";
              ];
          };
          {
            entry_name = "take";
            formals = [];
            body =
              [
                MIf (E.Eq (E.Var "full", E.Int 0), [ MWait "nonempty" ], []);
                MReturn (E.Var "slot");
              ];
          };
        ];
    }
  in
  let program =
    {
      monitors = [ handoff ];
      shared = [];
      processes =
        [
          { proc_name = "Prod"; locals = [];
            code = [ PCall { monitor = "M"; entry = "put"; args = [ E.Int 9 ]; bind = None } ] };
          { proc_name = "Cons"; locals = [ ("x", V.Int 0) ];
            code =
              [ PCall { monitor = "M"; entry = "take"; args = []; bind = Some "x" };
                PMark { klass = "Took"; params = [ E.Var "x" ] } ] };
        ];
    }
  in
  let o = explore program in
  check Alcotest.bool "no deadlock" true (o.deadlocks = []);
  List.iter
    (fun comp ->
      (match C.events_of_class comp "Took" with
      | [ h ] -> check Alcotest.int "value 9" 9 (V.as_int (Event.param (C.event comp h) "p0"))
      | _ -> Alcotest.fail "one Took expected");
      (* If the consumer waited, Release must be enabled by exactly the
         Signal (plus the waiter chain). *)
      match C.events_of_class comp "Release" with
      | [] -> ()
      | [ r ] ->
          let signal_preds =
            List.filter
              (fun p -> Event.has_class (C.event comp p) "Signal")
              (C.enable_preds comp r)
          in
          check Alcotest.int "one signal enabler" 1 (List.length signal_preds)
      | _ -> Alcotest.fail "at most one Release here")
    o.computations

let test_deadlock_detected () =
  (* A process waits on a condition nobody signals. *)
  let stuck =
    {
      mon_name = "M";
      vars = [];
      conditions = [ "never" ];
      entries = [ { entry_name = "block"; formals = []; body = [ MWait "never" ] } ];
    }
  in
  let program =
    { monitors = [ stuck ]; shared = [];
      processes =
        [ { proc_name = "P"; locals = [];
            code = [ PCall { monitor = "M"; entry = "block"; args = []; bind = None } ] } ] }
  in
  let o = explore program in
  check Alcotest.int "no completion" 0 (List.length o.computations);
  check Alcotest.int "one deadlock" 1 (List.length o.deadlocks)

let test_getvals_emitted () =
  let program =
    { monitors = [ counter_monitor ]; shared = []; processes = [ incrementer "P1" 2 ] }
  in
  let with_g = explore ~emit_getvals:true program in
  let without = explore program in
  let count_getvals o =
    List.fold_left
      (fun acc comp -> acc + List.length (C.events_of_class comp "Getval"))
      0 o.computations
  in
  check Alcotest.bool "getvals present" true (count_getvals with_g > 0);
  check Alcotest.int "getvals absent" 0 (count_getvals without);
  (* With getvals on, the Variable restriction is exercised and holds. *)
  let spec = language_spec program in
  List.iter
    (fun comp ->
      Alcotest.(check bool) "variable restriction holds" true
        (Gem_check.Verdict.ok (Gem_check.Check.check spec comp)))
    with_g.computations

let test_shared_variable_events () =
  let program =
    { monitors = []; shared = [ ("x", V.Int 5) ];
      processes =
        [ { proc_name = "W"; locals = [];
            code = [ PWrite { var = "x"; value = E.Int 6 } ] };
          { proc_name = "R"; locals = [ ("v", V.Int 0) ];
            code = [ PRead { var = "x"; bind = "v" };
                     PMark { klass = "Saw"; params = [ E.Var "v" ] } ] } ] }
  in
  let o = explore program in
  (* Both orders of the race are distinct computations. *)
  check Alcotest.int "two computations" 2 (List.length o.computations);
  let seen =
    List.map
      (fun comp ->
        match C.events_of_class comp "Saw" with
        | [ h ] -> V.as_int (Event.param (C.event comp h) "p0")
        | _ -> Alcotest.fail "one Saw")
      o.computations
  in
  check Alcotest.bool "5 and 6 observed" true (List.mem 5 seen && List.mem 6 seen)

let test_run_one_smoke () =
  let program =
    { monitors = [ counter_monitor ]; shared = [];
      processes = [ incrementer "P1" 1; getter "G" ] }
  in
  let comp = run_one ~seed:3 program in
  check Alcotest.bool "nonempty" true (C.n_events comp > 0);
  check Alcotest.bool "acyclic" true (C.temporal comp <> None)

let test_mwhile_and_mskip () =
  (* An entry that sums 1..n with a monitor-body loop. *)
  let summer =
    { mon_name = "M";
      vars = [ ("total", V.Int 0); ("i", V.Int 0) ];
      conditions = [];
      entries =
        [ { entry_name = "sum"; formals = [ "n" ];
            body =
              [ MSkip;
                MAssign { var = "i"; value = E.Int 1; site = None };
                MWhile
                  ( E.Le (E.Var "i", E.Var "n"),
                    [ MAssign { var = "total"; value = E.Add (E.Var "total", E.Var "i"); site = None };
                      MAssign { var = "i"; value = E.Add (E.Var "i", E.Int 1); site = None } ] );
                MReturn (E.Var "total") ] } ] }
  in
  let program =
    { monitors = [ summer ]; shared = [];
      processes =
        [ { proc_name = "P"; locals = [ ("r", V.Int 0) ];
            code =
              [ PCall { monitor = "M"; entry = "sum"; args = [ E.Int 4 ]; bind = Some "r" };
                PMark { klass = "Sum"; params = [ E.Var "r" ] } ] } ] }
  in
  let o = explore program in
  let comp = List.hd o.computations in
  match C.events_of_class comp "Sum" with
  | [ h ] -> check Alcotest.int "1+2+3+4" 10 (V.as_int (Event.param (C.event comp h) "p0"))
  | _ -> Alcotest.fail "one Sum"

let test_process_control_flow () =
  (* PIf and PWhile in process code. *)
  let program =
    { monitors = [ counter_monitor ]; shared = [];
      processes =
        [ { proc_name = "P"; locals = [ ("k", V.Int 0) ];
            code =
              [ PWhile
                  ( E.Lt (E.Var "k", E.Int 3),
                    [ PIf
                        ( E.Eq (E.Mod (E.Var "k", E.Int 2), E.Int 0),
                          [ PCall { monitor = "M"; entry = "inc"; args = [ E.Int 10 ]; bind = None } ],
                          [ PCall { monitor = "M"; entry = "inc"; args = [ E.Int 1 ]; bind = None } ] );
                      PLocal ("k", E.Add (E.Var "k", E.Int 1)) ] ) ] } ] }
  in
  let o = explore program in
  let comp = List.hd o.computations in
  (* inc(10), inc(1), inc(10): final count = 21. *)
  let finals =
    List.filter_map
      (fun h ->
        let e = C.event comp h in
        if Event.has_class e "Assign" then Some (V.as_int (Event.param e "newval")) else None)
      (C.events_at comp "M.count")
  in
  check Alcotest.int "final count" 21 (List.fold_left max 0 finals)

let test_multiple_monitors () =
  (* A process moving data between two monitors. *)
  let cell name init =
    { mon_name = name;
      vars = [ ("v", V.Int init) ];
      conditions = [];
      entries =
        [ { entry_name = "get"; formals = []; body = [ MReturn (E.Var "v") ] };
          { entry_name = "set"; formals = [ "x" ];
            body = [ MAssign { var = "v"; value = E.Var "x"; site = None } ] } ] }
  in
  let mover =
    { proc_name = "P"; locals = [ ("t", V.Int 0) ];
      code =
        [ PCall { monitor = "A"; entry = "get"; args = []; bind = Some "t" };
          PCall { monitor = "B"; entry = "set"; args = [ E.Var "t" ]; bind = None };
          PMark { klass = "Done"; params = [ E.Var "t" ] } ] }
  in
  let program = { monitors = [ cell "A" 42; cell "B" 0 ]; shared = []; processes = [ mover ] } in
  let o = explore program in
  check Alcotest.int "one computation" 1 (List.length o.computations);
  let comp = List.hd o.computations in
  (match C.events_of_class comp "Done" with
  | [ h ] -> check Alcotest.int "moved" 42 (V.as_int (Event.param (C.event comp h) "p0"))
  | _ -> Alcotest.fail "one Done");
  (* Both monitors' language restrictions hold. *)
  check Alcotest.bool "spec ok" true
    (Gem_check.Verdict.ok (Gem_check.Check.check (language_spec program) comp))

let test_umbrella_helpers () =
  let program =
    Gem_problems.Buffer.monitor_solution ~capacity:1 ~producers:1 ~consumers:1 ~items_each:1
  in
  let comps, deadlocks, ok =
    Gem.verify_monitor_program
      ~strategy:(Gem_check.Strategy.Linearizations (Some 50))
      ~problem:(Gem_problems.Buffer.spec ~capacity:1)
      ~map:Gem_problems.Buffer.monitor_correspondence program
  in
  check Alcotest.bool "computations" true (comps > 0);
  check Alcotest.int "no deadlock" 0 deadlocks;
  check Alcotest.bool "sat" true ok;
  let comp = run_one program in
  check Alcotest.bool "check_spec" true (Gem.check_spec (language_spec program) comp)

let test_runtime_errors () =
  let program =
    { monitors = [ counter_monitor ]; shared = [];
      processes =
        [ { proc_name = "P"; locals = [];
            code = [ PCall { monitor = "M"; entry = "nope"; args = []; bind = None } ] } ] }
  in
  (try
     ignore (explore program);
     Alcotest.fail "expected unknown-entry error"
   with E.Eval_error _ -> ());
  let bad_arity =
    { monitors = [ counter_monitor ]; shared = [];
      processes =
        [ { proc_name = "P"; locals = [];
            code = [ PCall { monitor = "M"; entry = "inc"; args = []; bind = None } ] } ] }
  in
  try
    ignore (explore bad_arity);
    Alcotest.fail "expected arity error"
  with E.Eval_error _ -> ()

let () =
  Alcotest.run "gem_monitor"
    [
      ( "monitor",
        [
          Alcotest.test_case "counter-values" `Quick test_counter_final_values;
          Alcotest.test_case "get-returns" `Quick test_get_returns_count;
          Alcotest.test_case "lock-serialization" `Quick test_lock_serialization_events;
          Alcotest.test_case "language-spec-accepts" `Quick test_language_spec_accepts;
          Alcotest.test_case "language-spec-rejects" `Quick test_language_spec_rejects_foreign;
          Alcotest.test_case "wait-signal-release" `Quick test_wait_signal_release;
          Alcotest.test_case "deadlock" `Quick test_deadlock_detected;
          Alcotest.test_case "getvals" `Quick test_getvals_emitted;
          Alcotest.test_case "shared-variables" `Quick test_shared_variable_events;
          Alcotest.test_case "run-one" `Quick test_run_one_smoke;
          Alcotest.test_case "runtime-errors" `Quick test_runtime_errors;
          Alcotest.test_case "multiple-monitors" `Quick test_multiple_monitors;
          Alcotest.test_case "mwhile-mskip" `Quick test_mwhile_and_mskip;
          Alcotest.test_case "process-control-flow" `Quick test_process_control_flow;
          Alcotest.test_case "umbrella-helpers" `Quick test_umbrella_helpers;
        ] );
    ]
