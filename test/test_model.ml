(* Unit tests for the GEM model of execution: values, events, groups,
   computations, the builder and DOT export. *)

module V = Gem_model.Value
module Event = Gem_model.Event
module Group = Gem_model.Group
module C = Gem_model.Computation
module Build = Gem_model.Build

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Values                                                              *)
(* ------------------------------------------------------------------ *)

let test_value_compare_total () =
  let vs =
    [
      V.Unit; V.Bool false; V.Bool true; V.Int (-1); V.Int 3; V.Str "a"; V.Str "b";
      V.Pair (V.Int 1, V.Int 2); V.List [ V.Int 1 ]; V.List [];
    ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let ab = V.compare a b and ba = V.compare b a in
          Alcotest.(check bool) "antisymmetric" true (compare ab 0 = compare 0 ba))
        vs)
    vs;
  check Alcotest.bool "equal refl" true (V.equal (V.Pair (V.Int 1, V.Str "x")) (V.Pair (V.Int 1, V.Str "x")))

let test_value_pp () =
  check Alcotest.string "pair" "(1, true)" (V.to_string (V.Pair (V.Int 1, V.Bool true)));
  check Alcotest.string "list" "[1; 2]" (V.to_string (V.List [ V.Int 1; V.Int 2 ]));
  check Alcotest.string "unit" "()" (V.to_string V.Unit)

let test_value_coercions () =
  check Alcotest.int "as_int" 5 (V.as_int (V.Int 5));
  check Alcotest.bool "as_bool" true (V.as_bool (V.Bool true));
  check Alcotest.string "as_string" "s" (V.as_string (V.Str "s"));
  Alcotest.check_raises "bad as_int" (Invalid_argument "Value.as_int: true") (fun () ->
      ignore (V.as_int (V.Bool true)))

(* ------------------------------------------------------------------ *)
(* Events                                                              *)
(* ------------------------------------------------------------------ *)

let test_event_identity () =
  let a = { Event.element = "Var"; index = 2 } in
  let b = { Event.element = "Var"; index = 2 } in
  let c = { Event.element = "Var"; index = 3 } in
  check Alcotest.bool "equal" true (Event.id_equal a b);
  check Alcotest.bool "ordered by index" true (Event.id_compare a c < 0);
  check Alcotest.string "paper notation" "Var^2" (Format.asprintf "%a" Event.pp_id a)

let test_event_params_threads () =
  let e = Event.make ~element:"Var" ~index:0 ~klass:"Assign" [ ("newval", V.Int 7) ] in
  check Alcotest.bool "param" true (V.equal (Event.param e "newval") (V.Int 7));
  check Alcotest.bool "param_opt none" true (Event.param_opt e "missing" = None);
  check Alcotest.bool "class" true (Event.has_class e "Assign");
  let e' = Event.with_thread e "pi" 4 in
  check Alcotest.(option int) "thread" (Some 4) (Event.thread_instance e' "pi");
  check Alcotest.(option int) "no thread" None (Event.thread_instance e "pi")

let test_event_actor () =
  let e = Event.make ~actor:"P1" ~element:"x" ~index:0 ~klass:"K" [] in
  check Alcotest.(option string) "actor" (Some "P1") e.Event.actor

(* ------------------------------------------------------------------ *)
(* Groups                                                              *)
(* ------------------------------------------------------------------ *)

let test_group_membership () =
  let g = Group.make "G" [ Group.Elem "a"; Group.Grp "H" ]
      ~ports:[ { Group.port_element = "a"; port_class = "Start" } ]
  in
  check Alcotest.bool "elem" true (Group.contains_element g "a");
  check Alcotest.bool "not elem" false (Group.contains_element g "H");
  check Alcotest.bool "group" true (Group.contains_group g "H");
  check Alcotest.bool "port" true (Group.is_port g ~element:"a" ~klass:"Start");
  check Alcotest.bool "not port" false (Group.is_port g ~element:"a" ~klass:"End")

(* ------------------------------------------------------------------ *)
(* Builder and computations                                            *)
(* ------------------------------------------------------------------ *)

(* Var with two assignments and a read; a process element driving them. *)
let sample () =
  let b = Build.create () in
  let p0 = Build.emit b ~element:"P" ~klass:"Step" () in
  let a0 = Build.emit_enabled_by b ~by:p0 ~element:"Var" ~klass:"Assign"
      ~params:[ ("newval", V.Int 1) ] () in
  let p1 = Build.emit_enabled_by b ~by:a0 ~element:"P" ~klass:"Step" () in
  let a1 = Build.emit_enabled_by b ~by:p1 ~element:"Var" ~klass:"Assign"
      ~params:[ ("newval", V.Int 2) ] () in
  let g = Build.emit_enabled_by b ~by:a1 ~element:"Var" ~klass:"Getval"
      ~params:[ ("oldval", V.Int 2) ] () in
  (Build.finish b, p0, a0, p1, a1, g)

let test_build_indices () =
  let comp, p0, a0, p1, a1, g = sample () in
  check Alcotest.int "n_events" 5 (C.n_events comp);
  check Alcotest.int "Var^0" 0 (C.event comp a0).Event.id.index;
  check Alcotest.int "Var^1" 1 (C.event comp a1).Event.id.index;
  check Alcotest.int "Var^2" 2 (C.event comp g).Event.id.index;
  check Alcotest.int "P^0" 0 (C.event comp p0).Event.id.index;
  check Alcotest.int "P^1" 1 (C.event comp p1).Event.id.index

let test_computation_lookup () =
  let comp, _, a0, _, _, _ = sample () in
  check Alcotest.(option int) "find" (Some a0) (C.find comp { Event.element = "Var"; index = 0 });
  check Alcotest.(option int) "find missing" None (C.find comp { Event.element = "Var"; index = 9 });
  check Alcotest.(list int) "events_at Var" [ 1; 3; 4 ] (C.events_at comp "Var");
  check Alcotest.(list int) "by class" [ 1; 3 ] (C.events_of_class comp "Assign");
  check Alcotest.(list int) "class at" [ 4 ]
    (C.events_of_class_at comp ~element:"Var" ~klass:"Getval");
  check Alcotest.(list string) "elements in order" [ "P"; "Var" ] (C.elements comp)

let test_computation_orders () =
  let comp, p0, a0, _, a1, g = sample () in
  check Alcotest.bool "enable" true (C.enables comp p0 a0);
  check Alcotest.bool "elem order a0 < a1" true (C.elem_lt comp a0 a1);
  check Alcotest.bool "elem order transitive" true (C.elem_lt comp a0 g);
  check Alcotest.bool "not cross element" false (C.elem_lt comp p0 a0);
  check Alcotest.bool "temporal" true (C.temp_lt comp p0 g);
  check Alcotest.bool "not concurrent" false (C.concurrent comp p0 g)

let test_computation_concurrency () =
  let b = Build.create () in
  let x = Build.emit b ~element:"X" ~klass:"E" () in
  let y = Build.emit b ~element:"Y" ~klass:"E" () in
  let comp = Build.finish b in
  check Alcotest.bool "independent events concurrent" true (C.concurrent comp x y)

let test_cyclic_computation () =
  let b = Build.create () in
  let x = Build.emit b ~element:"X" ~klass:"E" () in
  let y = Build.emit b ~element:"Y" ~klass:"E" () in
  Build.enable b x y;
  Build.enable b y x;
  let comp = Build.finish b in
  check Alcotest.bool "no temporal order" true (C.temporal comp = None);
  Alcotest.check_raises "temporal_exn"
    (Invalid_argument "Computation: causal graph is cyclic, no temporal order") (fun () ->
      ignore (C.temporal_exn comp))

(* The element order participates in the causal graph: an enable edge
   against the element order is a cycle. *)
let test_element_order_cycles () =
  let b = Build.create () in
  let e0 = Build.emit b ~element:"X" ~klass:"E" () in
  let e1 = Build.emit b ~element:"X" ~klass:"E" () in
  Build.enable b e1 e0;
  let comp = Build.finish b in
  check Alcotest.bool "cyclic" true (C.temporal comp = None)

let test_build_rejects_self_enable () =
  let b = Build.create () in
  let x = Build.emit b ~element:"X" ~klass:"E" () in
  Alcotest.check_raises "self enable"
    (Invalid_argument "Build.enable: the enable relation is irreflexive") (fun () ->
      Build.enable b x x)

let test_build_snapshots () =
  let b = Build.create () in
  let _ = Build.emit b ~element:"X" ~klass:"E" () in
  let c1 = Build.finish b in
  let _ = Build.emit b ~element:"X" ~klass:"E" () in
  let c2 = Build.finish b in
  check Alcotest.int "snapshot 1" 1 (C.n_events c1);
  check Alcotest.int "snapshot 2" 2 (C.n_events c2)

let test_map_events () =
  let comp, _, a0, _, _, _ = sample () in
  let comp' = C.map_events (fun _ e -> Event.with_thread e "pi" 0) comp in
  check Alcotest.(option int) "thread added" (Some 0)
    (Event.thread_instance (C.event comp' a0) "pi");
  Alcotest.check_raises "identity change"
    (Invalid_argument "Computation.map_events: event identity changed") (fun () ->
      ignore
        (C.map_events
           (fun _ e -> { e with Event.id = { e.Event.id with Event.index = 99 } })
           comp))

let test_declared_but_empty_element () =
  let b = Build.create () in
  Build.declare_element b "Idle";
  let _ = Build.emit b ~element:"X" ~klass:"E" () in
  let comp = Build.finish b in
  check Alcotest.bool "declared" true (C.has_element comp "Idle");
  check Alcotest.(list int) "no events" [] (C.events_at comp "Idle")

let test_groups_in_computation () =
  let b = Build.create () in
  Build.declare_group b (Group.make "G" [ Group.Elem "X" ]);
  let _ = Build.emit b ~element:"X" ~klass:"E" () in
  let comp = Build.finish b in
  check Alcotest.bool "group present" true (C.group comp "G" <> None);
  check Alcotest.bool "group absent" true (C.group comp "H" = None);
  Alcotest.check_raises "duplicate group"
    (Invalid_argument "Build.declare_group: duplicate group G") (fun () ->
      Build.declare_group b (Group.make "G" []))

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec loop i = i + n <= m && (String.equal (String.sub s i n) sub || loop (i + 1)) in
  n = 0 || loop 0

let test_dot_export () =
  let comp, _, _, _, _, _ = sample () in
  let dot = Gem_model.Dot.to_string comp in
  check Alcotest.bool "digraph" true (contains ~sub:"digraph" dot);
  check Alcotest.bool "clusters per element" true (contains ~sub:"cluster" dot);
  check Alcotest.bool "solid enable edge" true (contains ~sub:"n0 -> n1" dot)

let () =
  Alcotest.run "gem_model"
    [
      ( "value",
        [
          Alcotest.test_case "compare-total" `Quick test_value_compare_total;
          Alcotest.test_case "pp" `Quick test_value_pp;
          Alcotest.test_case "coercions" `Quick test_value_coercions;
        ] );
      ( "event",
        [
          Alcotest.test_case "identity" `Quick test_event_identity;
          Alcotest.test_case "params-threads" `Quick test_event_params_threads;
          Alcotest.test_case "actor" `Quick test_event_actor;
        ] );
      ("group", [ Alcotest.test_case "membership" `Quick test_group_membership ]);
      ( "computation",
        [
          Alcotest.test_case "build-indices" `Quick test_build_indices;
          Alcotest.test_case "lookup" `Quick test_computation_lookup;
          Alcotest.test_case "orders" `Quick test_computation_orders;
          Alcotest.test_case "concurrency" `Quick test_computation_concurrency;
          Alcotest.test_case "cyclic" `Quick test_cyclic_computation;
          Alcotest.test_case "element-order-cycle" `Quick test_element_order_cycles;
          Alcotest.test_case "self-enable" `Quick test_build_rejects_self_enable;
          Alcotest.test_case "snapshots" `Quick test_build_snapshots;
          Alcotest.test_case "map-events" `Quick test_map_events;
          Alcotest.test_case "empty-element" `Quick test_declared_but_empty_element;
          Alcotest.test_case "groups" `Quick test_groups_in_computation;
          Alcotest.test_case "dot" `Quick test_dot_export;
        ] );
    ]
