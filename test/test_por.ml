(* Differential harness proving the sleep-set partial-order reduction
   sound. Every lib/problems workload is explored with POR on and off and
   must produce identical completed/deadlocked computation multisets up to
   commuting-step equivalence (equal partial-order fingerprints — two
   interleavings that differ only in the order of independent steps yield
   the same computation, hence the same fingerprint) and byte-identical
   verdicts. qcheck properties extend the evidence to random loop-free CSP
   programs, and check the commutation fact the reduction rests on: firing
   two footprint-disjoint moves in either order reaches configurations
   with equal canonical keys.

   The one workload excluded from the uncapped differential is rwd-ada:
   its state space is cyclic, and without POR (no memoization) the plain
   DFS enumerates paths, which is intractable; it is compared under a
   shared configuration cap instead. *)

module Explore = Gem_lang.Explore
module Monitor = Gem_lang.Monitor
module Csp = Gem_lang.Csp
module Ada = Gem_lang.Ada
module E = Gem_lang.Expr
module V = Gem_model.Value
module RW = Gem_problems.Readers_writers
module Buffer = Gem_problems.Buffer
module Rwd = Gem_problems.Rw_distributed
module Db = Gem_problems.Db_update
module Budget = Gem_check.Budget
module Refine = Gem_check.Refine
module Verdict = Gem_check.Verdict
module Strategy = Gem_check.Strategy
module Gen_csp = Gem_fuzz.Gen

let check = Alcotest.check
let strategy = Strategy.Linearizations (Some 200)

(* Sorted fingerprint multiset of a list of computations. *)
let fps comps = List.sort compare (List.map Explore.fingerprint comps)

let reason_opt = Option.map Budget.reason_keyword

(* ------------------------------------------------------------------ *)
(* Workload differentials: POR on vs off                               *)
(* ------------------------------------------------------------------ *)

let assert_same_outcomes name (c1, d1, x1) (c2, d2, x2) =
  check Alcotest.(list string) (name ^ ": completed multiset") (fps c1) (fps c2);
  check Alcotest.(list string) (name ^ ": deadlock multiset") (fps d1) (fps d2);
  check
    Alcotest.(option string)
    (name ^ ": exhaustion") (reason_opt x1) (reason_opt x2)

let mon_diff name prog =
  let run por =
    let o = Monitor.explore ~por prog in
    (o.Monitor.computations, o.Monitor.deadlocks, o.Monitor.exhausted)
  in
  assert_same_outcomes name (run true) (run false)

let csp_diff name prog =
  let run por =
    let o = Csp.explore ~por prog in
    (o.Csp.computations, o.Csp.deadlocks, o.Csp.exhausted)
  in
  assert_same_outcomes name (run true) (run false)

let ada_diff name prog =
  let run por =
    let o = Ada.explore ~por prog in
    (o.Ada.computations, o.Ada.deadlocks, o.Ada.exhausted)
  in
  assert_same_outcomes name (run true) (run false)

let test_rw_monitor_workloads () =
  mon_diff "rw-paper-1r1w" (RW.program ~monitor:RW.paper_monitor ~readers:1 ~writers:1);
  mon_diff "rw-paper-2r1w" (RW.program ~monitor:RW.paper_monitor ~readers:2 ~writers:1);
  mon_diff "rw-no-exclusion-2r1w"
    (RW.program ~monitor:RW.no_exclusion_monitor ~readers:2 ~writers:1);
  mon_diff "rw-buggy-1r2w" (RW.program ~monitor:RW.buggy_monitor ~readers:1 ~writers:2)

let test_buffer_workloads () =
  mon_diff "buffer-monitor-1p1c2i"
    (Buffer.monitor_solution ~capacity:1 ~producers:1 ~consumers:1 ~items_each:2);
  mon_diff "buffer-buggy-monitor-1p1c2i"
    (Buffer.buggy_monitor_solution ~capacity:1 ~producers:1 ~consumers:1 ~items_each:2);
  csp_diff "buffer-csp-1p1c2i"
    (Buffer.csp_solution ~capacity:1 ~producers:1 ~consumers:1 ~items_each:2);
  ada_diff "buffer-ada-1p1c2i"
    (Buffer.ada_solution ~capacity:1 ~producers:1 ~consumers:1 ~items_each:2)

let test_distributed_workloads () =
  csp_diff "rwd-csp-1r1w" (Rwd.csp_program ~readers:1 ~writers:1);
  csp_diff "rwd-csp-no-priority-1r1w" (Rwd.csp_program_no_priority ~readers:1 ~writers:1);
  csp_diff "db-update-2-sites" (Db.program ~sites:2)

let test_db_report_agrees () =
  let on = Db.check ~por:true ~sites:2 ()
  and off = Db.check ~por:false ~sites:2 () in
  check Alcotest.int "computations" on.Db.computations off.Db.computations;
  check Alcotest.int "deadlocks" on.Db.deadlocks off.Db.deadlocks;
  check Alcotest.bool "converges" on.Db.converges off.Db.converges;
  check Alcotest.bool "both complete" true
    (on.Db.exhausted = None && off.Db.exhausted = None)

(* rwd-ada's cyclic state space is only tractable with POR; compare the
   two modes under a shared cap: both must degrade to the same reason. *)
let test_rwd_ada_capped () =
  let prog = Rwd.ada_program ~readers:1 ~writers:1 in
  let run por = (Ada.explore ~por ~max_configs:500 prog).Ada.exhausted in
  check
    Alcotest.(option string)
    "both report config-budget" (Some "config-budget") (reason_opt (run true));
  check
    Alcotest.(option string)
    "POR off agrees" (reason_opt (run true)) (reason_opt (run false))

(* A cap too small for either mode: the degradation status must be the
   same three-valued outcome POR on and off. *)
let test_budget_truncation_agrees () =
  let prog = RW.program ~monitor:RW.paper_monitor ~readers:1 ~writers:1 in
  let run por = (Monitor.explore ~por ~max_configs:30 prog).Monitor.exhausted in
  check
    Alcotest.(option string)
    "POR on truncates" (Some "config-budget") (reason_opt (run true));
  check
    Alcotest.(option string)
    "POR off matches" (reason_opt (run true)) (reason_opt (run false))

(* ------------------------------------------------------------------ *)
(* Byte-identical verdicts                                             *)
(* ------------------------------------------------------------------ *)

(* Render the whole verdict list against the problem spec, computations
   sorted canonically so discovery order cannot leak into the text. *)
let render_sat ?edges ~problem ~map comps =
  let sorted =
    List.sort
      (fun a b -> compare (Explore.fingerprint a) (Explore.fingerprint b))
      comps
  in
  let verdicts = Refine.sat ~strategy ?edges ~problem ~map sorted in
  String.concat "\n"
    (List.map
       (fun (i, v) ->
         Printf.sprintf "%d %s %s" i
           (Verdict.status_keyword (Verdict.status v))
           (Format.asprintf "%a" (Verdict.pp None) v))
       verdicts)

let test_verdicts_byte_identical () =
  let rw_case name monitor version ~readers ~writers =
    let prog = RW.program ~monitor ~readers ~writers in
    let problem = RW.spec version ~users:(RW.user_names ~readers ~writers) in
    let render por =
      let o = Monitor.explore ~por prog in
      render_sat ~edges:Refine.Actor_paths ~problem ~map:RW.correspondence
        o.Monitor.computations
    in
    check Alcotest.string (name ^ ": verdicts byte-identical") (render true)
      (render false)
  in
  rw_case "rw-paper-verified" RW.paper_monitor RW.Readers_priority ~readers:1
    ~writers:1;
  rw_case "rw-no-exclusion-falsified" RW.no_exclusion_monitor RW.Free_for_all
    ~readers:2 ~writers:1;
  let buffer_render por =
    let o =
      Csp.explore ~por
        (Buffer.csp_solution ~capacity:1 ~producers:1 ~consumers:1 ~items_each:2)
    in
    render_sat ~problem:(Buffer.spec ~capacity:1) ~map:Buffer.csp_correspondence
      o.Csp.computations
  in
  check Alcotest.string "buffer-csp: verdicts byte-identical" (buffer_render true)
    (buffer_render false)

(* ------------------------------------------------------------------ *)
(* Reduction factor: the optimisation must actually optimise           *)
(* ------------------------------------------------------------------ *)

let test_reduction_at_least_2x () =
  let p = RW.program ~monitor:RW.paper_monitor ~readers:2 ~writers:1 in
  let on = Monitor.explore ~por:true p and off = Monitor.explore ~por:false p in
  check Alcotest.bool "rw-2r1w reduced >= 2x" true
    (off.Monitor.explored >= 2 * on.Monitor.explored);
  check Alcotest.bool "rw-2r1w reports pruning" true (on.Monitor.reduced > 0);
  let b = Buffer.ada_solution ~capacity:1 ~producers:1 ~consumers:1 ~items_each:2 in
  let on = Ada.explore ~por:true b and off = Ada.explore ~por:false b in
  check Alcotest.bool "buffer-ada reduced >= 2x" true
    (off.Ada.explored >= 2 * on.Ada.explored);
  check Alcotest.bool "buffer-ada reports pruning" true (on.Ada.reduced > 0)

(* ------------------------------------------------------------------ *)
(* Random loop-free CSP programs (qcheck)                              *)
(* ------------------------------------------------------------------ *)

(* Generators live in Gem_fuzz.Gen, shared with test_parallel.ml and the
   gemcheck fuzz differential oracle; csp_arb carries the structural
   shrinker, so qcheck failures arrive minimized. *)
let prog_arb = Gen_csp.prog_arb

let prop_csp_random_differential =
  QCheck.Test.make ~name:"random CSP: POR on/off agree" ~count:60 prog_arb
    (fun prog ->
      let on = Csp.explore ~por:true prog and off = Csp.explore ~por:false prog in
      fps on.Csp.computations = fps off.Csp.computations
      && fps on.Csp.deadlocks = fps off.Csp.deadlocks
      && on.Csp.exhausted = None
      && off.Csp.exhausted = None)

(* ------------------------------------------------------------------ *)
(* Commutation of independent moves (qcheck)                           *)
(* ------------------------------------------------------------------ *)

(* Random walk; at every visited configuration, any two enabled moves with
   disjoint footprints must (a) stay enabled after the other fires and
   (b) commute: firing them in either order reaches configurations with
   equal canonical keys. This is exactly the soundness obligation of the
   independence oracle the sleep sets consume. *)
let check_swaps ~name ~moves ~key ~max_steps rng init =
  let find_label l c lost =
    match List.find_opt (fun (m, _) -> String.equal m.Explore.label l) (moves c) with
    | Some (_, c') -> c'
    | None -> Alcotest.failf "%s: move %s disabled by an independent move" name lost
  in
  let rec go c steps =
    if steps > 0 then
      match moves c with
      | [] -> ()
      | succs ->
          List.iteri
            (fun i (mi, ci) ->
              List.iteri
                (fun j (mj, cj) ->
                  if j > i && Explore.independent mi mj then begin
                    let cij = find_label mj.Explore.label ci mj.Explore.label in
                    let cji = find_label mi.Explore.label cj mi.Explore.label in
                    if not (String.equal (key cij) (key cji)) then
                      Alcotest.failf "%s: swapping %s and %s changes the state" name
                        mi.Explore.label mj.Explore.label
                  end)
                succs)
            succs;
          let _, c' = List.nth succs (Random.State.int rng (List.length succs)) in
          go c' (steps - 1)
  in
  go init max_steps

let seed_arb = QCheck.make QCheck.Gen.(int_range 0 99_999) ~print:string_of_int

let prop_monitor_swap =
  let prog = RW.program ~monitor:RW.paper_monitor ~readers:1 ~writers:1 in
  QCheck.Test.make ~name:"monitor: independent moves commute" ~count:50 seed_arb
    (fun seed ->
      check_swaps ~name:"monitor"
        ~moves:(Monitor.config_moves prog)
        ~key:(Monitor.config_key prog) ~max_steps:40
        (Random.State.make [| seed |])
        (Monitor.initial_config prog);
      true)

let prop_ada_swap =
  let prog = Buffer.ada_solution ~capacity:1 ~producers:1 ~consumers:1 ~items_each:2 in
  QCheck.Test.make ~name:"ada: independent moves commute" ~count:50 seed_arb
    (fun seed ->
      check_swaps ~name:"ada" ~moves:Ada.config_moves ~key:(Ada.config_key prog)
        ~max_steps:40
        (Random.State.make [| seed |])
        (Ada.initial_config prog);
      true)

let prop_csp_random_swap =
  QCheck.Test.make ~name:"random CSP: independent moves commute" ~count:60
    (QCheck.pair prog_arb seed_arb) (fun (prog, seed) ->
      check_swaps ~name:"csp" ~moves:Csp.config_moves ~key:(Csp.config_key prog)
        ~max_steps:25
        (Random.State.make [| seed |])
        (Csp.initial_config prog);
      true)

let () =
  let to_alc = QCheck_alcotest.to_alcotest in
  Alcotest.run "gem_por"
    [
      ( "differential",
        [
          Alcotest.test_case "rw-monitor workloads" `Quick test_rw_monitor_workloads;
          Alcotest.test_case "buffer workloads" `Quick test_buffer_workloads;
          Alcotest.test_case "distributed workloads" `Quick test_distributed_workloads;
          Alcotest.test_case "db-update report" `Quick test_db_report_agrees;
          Alcotest.test_case "rwd-ada capped" `Quick test_rwd_ada_capped;
          Alcotest.test_case "budget truncation" `Quick test_budget_truncation_agrees;
          Alcotest.test_case "verdicts byte-identical" `Quick test_verdicts_byte_identical;
          Alcotest.test_case "reduction >= 2x" `Quick test_reduction_at_least_2x;
        ] );
      ( "random-programs",
        [ to_alc prop_csp_random_differential; to_alc prop_csp_random_swap ] );
      ( "commutation", [ to_alc prop_monitor_swap; to_alc prop_ada_swap ] );
    ]
