(* The fuzzing subsystem under test: deterministic instance streams, the
   loop-free termination guarantee, lossless corpus round-trips, the
   committed reproducer corpus replayed across the full engine lattice,
   1-minimality of the greedy shrinker, and a bounded driver run that
   must find zero disagreements.

   The corpus replay is the regression ratchet: every shrunk reproducer
   a past fuzz run wrote (plus the hand-seeded edge cases) re-runs
   through Oracle.check on every dune runtest, so a disagreement fixed
   once can never silently come back. *)

module Fuzz = Gem.Fuzz
module Case = Fuzz.Case
module Gen = Fuzz.Gen
module Oracle = Fuzz.Oracle
module Shrink = Fuzz.Shrink
module Corpus = Fuzz.Corpus
module Driver = Fuzz.Driver

let check = Alcotest.check

(* Tests run from _build/default/test; the committed corpus lives at the
   workspace root (same resolution dance as test_syntax.ml). *)
let corpus_dir =
  if Sys.file_exists "../../../fuzz/corpus" then "../../../fuzz/corpus"
  else "fuzz/corpus"

(* ---- determinism ---- *)

let test_instance_deterministic () =
  for index = 0 to 8 do
    let a = Gen.instance ~seed:7 ~index and b = Gen.instance ~seed:7 ~index in
    check Alcotest.string "same (seed, index) -> same program" (Case.to_string a)
      (Case.to_string b);
    let f1 = Gen.formula_for ~seed:7 ~index and f2 = Gen.formula_for ~seed:7 ~index in
    check Alcotest.string "same (seed, index) -> same formula"
      (Format.asprintf "%a" Gem.Formula.pp f1)
      (Format.asprintf "%a" Gem.Formula.pp f2)
  done

let test_instance_seed_sensitive () =
  (* Not every index need differ, but across a handful of indices two
     seeds must diverge somewhere. *)
  let render seed =
    String.concat "\n"
      (List.init 9 (fun index -> Case.to_string (Gen.instance ~seed ~index)))
  in
  check Alcotest.bool "different seeds -> different stream" true
    (render 1 <> render 2)

let test_instance_language_rotation () =
  List.iter
    (fun (index, lang) ->
      let c = Gen.instance ~seed:3 ~index in
      check Alcotest.string
        (Printf.sprintf "index %d language" index)
        lang (Case.lang c.Case.prog))
    [ (0, "csp"); (1, "monitor"); (2, "ada"); (3, "csp"); (4, "monitor"); (5, "ada") ]

let test_generated_loop_free () =
  for index = 0 to 29 do
    let c = Gen.instance ~seed:11 ~index in
    check Alcotest.bool
      (Printf.sprintf "instance %d loop-free" index)
      true
      (Case.loop_free c.Case.prog)
  done

let test_formulas_immediate () =
  for index = 0 to 29 do
    let f = Gen.formula_for ~seed:11 ~index in
    check Alcotest.bool
      (Printf.sprintf "formula %d immediate" index)
      true (Gem.Formula.is_immediate f)
  done

(* ---- corpus codec ---- *)

let test_roundtrip_generated () =
  for index = 0 to 17 do
    let c = Gen.instance ~seed:23 ~index in
    match Corpus.decode (Corpus.encode c) with
    | Error m -> Alcotest.failf "instance %d did not round-trip: %s" index m
    | Ok c' ->
        check Alcotest.bool
          (Printf.sprintf "instance %d round-trips losslessly" index)
          true
          (c'.Case.name = c.Case.name && c'.Case.prog = c.Case.prog)
  done

let test_decode_rejects_garbage () =
  let reject what s =
    match Corpus.decode s with
    | Ok _ -> Alcotest.failf "decoder accepted %s" what
    | Error _ -> ()
  in
  reject "empty input" "";
  reject "bad version" "(gemfuzz 99 (case x (csp)))";
  reject "unknown node" "(gemfuzz 1 (case x (csp (process P0 (locals) (seq (zap))))))";
  reject "trailing input" "(gemfuzz 1 (case x (csp))) extra"

(* ---- committed corpus replay: the whole lattice must agree ---- *)

let test_corpus_replay () =
  let entries = Corpus.load_dir corpus_dir in
  check Alcotest.bool
    (Printf.sprintf "corpus present under %s" corpus_dir)
    true
    (List.length entries >= 4);
  List.iter
    (fun (path, parsed) ->
      match parsed with
      | Error m -> Alcotest.failf "%s does not parse: %s" path m
      | Ok case -> (
          match Oracle.check case.Case.prog with
          | Ok _ -> ()
          | Error d ->
              Alcotest.failf "%s disagrees: %a" path Oracle.pp_disagreement d))
    entries

let find_case name entries =
  match
    List.find_opt
      (fun (_, parsed) ->
        match parsed with Ok c -> c.Case.name = name | Error _ -> false)
      entries
  with
  | Some (_, Ok c) -> c
  | _ -> Alcotest.failf "corpus case %s missing" name

let test_corpus_deadlock_leaf () =
  let case = find_case "csp-deadlock-leaf" (Corpus.load_dir corpus_dir) in
  let _, deadlocks = Oracle.skeys case.Case.prog Oracle.baseline in
  check Alcotest.bool "mutual send deadlocks" true (deadlocks <> [])

let test_corpus_bitstate_downgrade () =
  let case = find_case "csp-bitstate-downgrade" (Corpus.load_dir corpus_dir) in
  match Case.(case.prog) with
  | Case.P_csp program ->
      let bitstate =
        { Gem.Explore.no_resilience with
          bitstate = Some (Gem.Bitstate.create ~bits:16 ())
        }
      in
      let o = Gem.Csp.explore ~resilience:bitstate program in
      check
        Alcotest.(option string)
        "bitstate run downgrades"
        (Some "bitstate-collision-risk")
        (Option.map Gem.Budget.reason_keyword o.Gem.Csp.exhausted)
  | _ -> Alcotest.fail "csp-bitstate-downgrade is not a CSP case"

(* The hand-seeded source-DPOR case: rendezvous chains racing against
   independent processes, the shape the source engine reduces hardest.
   Both source cells must reproduce the baseline's completed/deadlocked
   fingerprint multisets exactly. *)
let test_corpus_source_dpor () =
  let case = find_case "csp-source-dpor" (Corpus.load_dir corpus_dir) in
  let base_comps, base_deads = Oracle.skeys case.Case.prog Oracle.baseline in
  check Alcotest.bool "the seed explores to completion" true (base_comps <> []);
  let source_cells =
    List.filter (fun c -> c.Oracle.source) Oracle.lattice
  in
  check Alcotest.int "two source-DPOR cells in the lattice" 2
    (List.length source_cells);
  List.iter
    (fun cell ->
      let comps, deads = Oracle.skeys case.Case.prog cell in
      let name = Oracle.cell_name cell in
      check
        Alcotest.(list string)
        (name ^ ": completed multiset matches baseline")
        base_comps comps;
      check
        Alcotest.(list string)
        (name ^ ": deadlock multiset matches baseline")
        base_deads deads)
    source_cells

(* ---- shrinker ---- *)

let test_shrink_candidates_well_formed () =
  for index = 0 to 11 do
    let c = Gen.instance ~seed:31 ~index in
    List.iter
      (fun cand ->
        check Alcotest.bool "candidate stays loop-free" true (Case.loop_free cand);
        check Alcotest.bool "candidate explores without raising" true
          (let _ = Oracle.skeys cand Oracle.baseline in
           true))
      (Shrink.candidates c.Case.prog)
  done

(* Minimize under a synthetic predicate; the result must satisfy it and
   be 1-minimal (no candidate of the result still satisfies it). *)
let test_shrink_minimal () =
  let has_mark prog =
    (* cheap syntactic predicate: the rendered program mentions a marker *)
    let s = Case.prog_to_string prog in
    let contains hay needle =
      let lh = String.length hay and ln = String.length needle in
      let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
      ln = 0 || go 0
    in
    contains s "mark"
  in
  let tried = ref 0 in
  let minimized = ref 0 in
  for index = 0 to 11 do
    let c = Gen.instance ~seed:37 ~index in
    if has_mark c.Case.prog then begin
      incr tried;
      let small, steps = Shrink.minimize has_mark c.Case.prog in
      check Alcotest.bool "result satisfies the predicate" true (has_mark small);
      check Alcotest.bool "no candidate still satisfies it" true
        (not (List.exists has_mark (Shrink.candidates small)));
      if steps > 0 then incr minimized;
      check Alcotest.bool "size never grows" true
        (Case.size small <= Case.size c.Case.prog)
    end
  done;
  check Alcotest.bool "predicate exercised" true (!tried > 0);
  check Alcotest.bool "shrinking actually shrank something" true (!minimized > 0)

(* ---- driver smoke ---- *)

let test_driver_agrees () =
  let o = Driver.run ~seed:5 ~iters:9 () in
  check Alcotest.int "all instances ran" 9 o.Driver.o_ran;
  check Alcotest.bool "no disagreement" true (o.Driver.o_failure = None);
  check Alcotest.int "lattice size" 28 o.Driver.o_cells;
  check Alcotest.bool "explored counted" true (o.Driver.o_explored > 0)

let test_driver_time_budget () =
  let o = Driver.run ~time_budget:0. ~seed:5 ~iters:1000 () in
  check Alcotest.int "zero budget runs zero instances" 0 o.Driver.o_ran;
  check Alcotest.bool "and agrees vacuously" true (o.Driver.o_failure = None)

let () =
  Alcotest.run "fuzz"
    [
      ( "determinism",
        [
          Alcotest.test_case "same seed, same instance" `Quick
            test_instance_deterministic;
          Alcotest.test_case "different seeds diverge" `Quick
            test_instance_seed_sensitive;
          Alcotest.test_case "language rotation" `Quick test_instance_language_rotation;
        ] );
      ( "generators",
        [
          Alcotest.test_case "loop-free guarantee" `Quick test_generated_loop_free;
          Alcotest.test_case "formulas immediate" `Quick test_formulas_immediate;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "round-trip generated cases" `Quick test_roundtrip_generated;
          Alcotest.test_case "decoder rejects garbage" `Quick test_decode_rejects_garbage;
          Alcotest.test_case "replay across the lattice" `Slow test_corpus_replay;
          Alcotest.test_case "deadlock leaf deadlocks" `Quick test_corpus_deadlock_leaf;
          Alcotest.test_case "bitstate downgrade" `Quick test_corpus_bitstate_downgrade;
          Alcotest.test_case "source-dpor seed" `Quick test_corpus_source_dpor;
        ] );
      ( "shrinker",
        [
          Alcotest.test_case "candidates well-formed" `Quick
            test_shrink_candidates_well_formed;
          Alcotest.test_case "greedy 1-minimality" `Quick test_shrink_minimal;
        ] );
      ( "driver",
        [
          Alcotest.test_case "bounded run agrees" `Slow test_driver_agrees;
          Alcotest.test_case "zero time budget" `Quick test_driver_time_budget;
        ] );
    ]
