(* Tests for ADA tasking: rendezvous, select, FIFO entry queues, nesting,
   deadlock, and the GEM description. *)

module V = Gem_model.Value
module C = Gem_model.Computation
module Event = Gem_model.Event
module E = Gem_lang.Expr
open Gem_lang.Ada

let check = Alcotest.check

let echo_server =
  { task_name = "S"; locals = [];
    code =
      [ AAccept { acc_entry = "Echo"; acc_formals = [ "x" ]; acc_body = [];
                  acc_result = Some (E.Var "x") } ] }

let caller name v =
  { task_name = name; locals = [ ("r", V.Int 0) ];
    code =
      [ ACall { task = "S"; entry = "Echo"; args = [ E.Int v ]; bind = Some "r" };
        AMark { klass = "Got"; params = [ E.Var "r" ] } ] }

let test_rendezvous () =
  let o = explore [ echo_server; caller "C" 42 ] in
  check Alcotest.int "one computation" 1 (List.length o.computations);
  check Alcotest.int "no deadlock" 0 (List.length o.deadlocks);
  let comp = List.hd o.computations in
  (match C.events_of_class comp "Got" with
  | [ h ] -> check Alcotest.int "echoed" 42 (V.as_int (Event.param (C.event comp h) "p0"))
  | _ -> Alcotest.fail "one Got");
  let call = List.hd (C.events_of_class comp "Call") in
  let ab = List.hd (C.events_of_class comp "AcceptBegin") in
  let ae = List.hd (C.events_of_class comp "AcceptEnd") in
  let ret = List.hd (C.events_of_class comp "Return") in
  check Alcotest.bool "call enables accept" true (C.enables comp call ab);
  check Alcotest.bool "end enables return" true (C.enables comp ae ret)

let test_caller_blocked_during_rendezvous () =
  (* The accept body emits a marker; the caller cannot act before Return. *)
  let server =
    { task_name = "S"; locals = [];
      code =
        [ AAccept { acc_entry = "E"; acc_formals = []; acc_body = [ AMark { klass = "Mid"; params = [] } ];
                    acc_result = None } ] }
  in
  let c = { task_name = "C"; locals = [];
            code = [ ACall { task = "S"; entry = "E"; args = []; bind = None };
                     AMark { klass = "After"; params = [] } ] } in
  let o = explore [ server; c ] in
  let comp = List.hd o.computations in
  let mid = List.hd (C.events_of_class comp "Mid") in
  let after = List.hd (C.events_of_class comp "After") in
  check Alcotest.bool "body precedes caller resume" true (C.temp_lt comp mid after)

let test_select_explores_choices () =
  let server =
    { task_name = "S"; locals = [ ("k", V.Int 0) ];
      code =
        [ AWhile (E.Lt (E.Var "k", E.Int 2),
            [ ASelect
                [ { when_ = E.Bool true;
                    accept = { acc_entry = "A"; acc_formals = []; acc_body = []; acc_result = None } };
                  { when_ = E.Bool true;
                    accept = { acc_entry = "B"; acc_formals = []; acc_body = []; acc_result = None } } ];
              ALocal ("k", E.Add (E.Var "k", E.Int 1)) ]) ] }
  in
  let ca = { task_name = "CA"; locals = [];
             code = [ ACall { task = "S"; entry = "A"; args = []; bind = None };
                      AMark { klass = "DoneA"; params = [] } ] } in
  let cb = { task_name = "CB"; locals = [];
             code = [ ACall { task = "S"; entry = "B"; args = []; bind = None };
                      AMark { klass = "DoneB"; params = [] } ] } in
  let o = explore [ server; ca; cb ] in
  check Alcotest.int "no deadlock" 0 (List.length o.deadlocks);
  (* Both acceptance orders are explored; the partial orders differ by the
     order of AcceptBegins at S. *)
  check Alcotest.bool "at least 2 computations" true (List.length o.computations >= 2)

let test_select_guard_closed () =
  let server =
    { task_name = "S"; locals = [];
      code =
        [ ASelect
            [ { when_ = E.Bool false;
                accept = { acc_entry = "A"; acc_formals = []; acc_body = []; acc_result = None } } ] ] }
  in
  let c = { task_name = "C"; locals = [];
            code = [ ACall { task = "S"; entry = "A"; args = []; bind = None } ] } in
  let o = explore [ server; c ] in
  check Alcotest.int "deadlock (closed guard)" 1 (List.length o.deadlocks)

let test_entry_queue_fifo () =
  (* Two callers to one entry: whoever calls first is served first; both
     call orders appear across computations, but within each computation
     Call order at the queue = AcceptBegin arg order. *)
  let server =
    { task_name = "S"; locals = [ ("k", V.Int 0) ];
      code =
        [ AWhile (E.Lt (E.Var "k", E.Int 2),
            [ AAccept { acc_entry = "E"; acc_formals = [ "x" ]; acc_body = []; acc_result = None };
              ALocal ("k", E.Add (E.Var "k", E.Int 1)) ]) ] }
  in
  let c name v = { task_name = name; locals = [];
                   code = [ ACall { task = "S"; entry = "E"; args = [ E.Int v ]; bind = None } ] } in
  let o = explore [ server; c "C1" 1; c "C2" 2 ] in
  check Alcotest.int "no deadlock" 0 (List.length o.deadlocks);
  List.iter
    (fun comp ->
      let abs = C.events_of_class comp "AcceptBegin" in
      let calls = C.events_of_class comp "Call" in
      check Alcotest.int "two rendezvous" 2 (List.length abs);
      (* FIFO: the first accept is enabled by the temporally-first call. *)
      let first_ab = List.hd abs in
      let enabler =
        List.find (fun c -> List.mem c calls) (C.enable_preds comp first_ab)
      in
      List.iter
        (fun other -> if other <> enabler then
            check Alcotest.bool "enabler not after other call" false
              (C.temp_lt comp other enabler))
        calls)
    o.computations

let test_nested_rendezvous () =
  (* S's accept body calls T. *)
  let t = { task_name = "T"; locals = [];
            code = [ AAccept { acc_entry = "Inner"; acc_formals = []; acc_body = [];
                               acc_result = Some (E.Int 5) } ] } in
  let s =
    { task_name = "S"; locals = [ ("r", V.Int 0) ];
      code =
        [ AAccept { acc_entry = "Outer"; acc_formals = [];
                    acc_body = [ ACall { task = "T"; entry = "Inner"; args = []; bind = Some "r" } ];
                    acc_result = Some (E.Var "r") } ] }
  in
  let c = { task_name = "C"; locals = [ ("x", V.Int 0) ];
            code = [ ACall { task = "S"; entry = "Outer"; args = []; bind = Some "x" };
                     AMark { klass = "Got"; params = [ E.Var "x" ] } ] } in
  let o = explore [ t; s; c ] in
  check Alcotest.int "no deadlock" 0 (List.length o.deadlocks);
  let comp = List.hd o.computations in
  match C.events_of_class comp "Got" with
  | [ h ] -> check Alcotest.int "nested result" 5 (V.as_int (Event.param (C.event comp h) "p0"))
  | _ -> Alcotest.fail "one Got"

let test_call_cycle_deadlock () =
  let a = { task_name = "A"; locals = [];
            code = [ ACall { task = "B"; entry = "E"; args = []; bind = None } ] } in
  let b = { task_name = "B"; locals = [];
            code = [ ACall { task = "A"; entry = "E"; args = []; bind = None } ] } in
  let o = explore [ a; b ] in
  (* Two distinct deadlocked partial orders: queue insertion is an event at
     the callee's element, so "A called first" and "B called first" differ
     in the callees' element orders. *)
  check Alcotest.int "deadlock" 2 (List.length o.deadlocks);
  check Alcotest.int "no completion" 0 (List.length o.computations)

let test_language_spec () =
  let program = [ echo_server; caller "C" 7 ] in
  let spec = language_spec program in
  let o = explore program in
  List.iter
    (fun comp ->
      Alcotest.(check bool) "ada spec ok" true
        (Gem_check.Verdict.ok (Gem_check.Check.check spec comp)))
    o.computations

let test_language_spec_rejects_unmatched () =
  (* An AcceptBegin with no enabling Call violates rendezvous-matching. *)
  let module Build = Gem_model.Build in
  let b = Build.create () in
  let sm = Build.emit b ~element:"main" ~klass:"Start" () in
  let ss = Build.emit_enabled_by b ~by:sm ~element:"S" ~klass:"Start" () in
  let _ = Build.emit_enabled_by b ~by:ss ~element:"S" ~klass:"AcceptBegin"
      ~params:[ ("entry", V.Str "Echo"); ("args", V.List []) ] () in
  let _ = Build.emit_enabled_by b ~by:sm ~element:"C" ~klass:"Start" () in
  let spec = language_spec [ echo_server; caller "C" 1 ] in
  check Alcotest.bool "unmatched rejected" false
    (Gem_check.Verdict.ok (Gem_check.Check.check spec (Build.finish b)))

let () =
  Alcotest.run "gem_ada"
    [
      ( "ada",
        [
          Alcotest.test_case "rendezvous" `Quick test_rendezvous;
          Alcotest.test_case "caller-blocked" `Quick test_caller_blocked_during_rendezvous;
          Alcotest.test_case "select" `Quick test_select_explores_choices;
          Alcotest.test_case "closed-guard" `Quick test_select_guard_closed;
          Alcotest.test_case "fifo-queue" `Quick test_entry_queue_fifo;
          Alcotest.test_case "nested" `Quick test_nested_rendezvous;
          Alcotest.test_case "call-cycle" `Quick test_call_cycle_deadlock;
          Alcotest.test_case "language-spec" `Quick test_language_spec;
          Alcotest.test_case "rejects-unmatched" `Quick test_language_spec_rejects_unmatched;
        ] );
    ]
