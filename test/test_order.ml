(* Unit tests for the order substrate: bitsets, digraphs, posets, and
   linear-extension / step-sequence enumeration. *)

module Bitset = Gem_order.Bitset
module Digraph = Gem_order.Digraph
module Poset = Gem_order.Poset
module Linext = Gem_order.Linext

let check = Alcotest.check
let intlist = Alcotest.(list int)
let intpairs = Alcotest.(list (pair int int))

(* ------------------------------------------------------------------ *)
(* Bitset                                                              *)
(* ------------------------------------------------------------------ *)

let test_bitset_empty () =
  let s = Bitset.create 10 in
  check Alcotest.bool "empty" true (Bitset.is_empty s);
  check Alcotest.int "cardinal" 0 (Bitset.cardinal s);
  check Alcotest.(option int) "choose" None (Bitset.choose s)

let test_bitset_add_remove () =
  let s = Bitset.create 10 in
  Bitset.add s 3;
  Bitset.add s 7;
  Bitset.add s 3;
  check Alcotest.bool "mem 3" true (Bitset.mem s 3);
  check Alcotest.bool "mem 4" false (Bitset.mem s 4);
  check Alcotest.int "cardinal" 2 (Bitset.cardinal s);
  Bitset.remove s 3;
  check Alcotest.bool "removed" false (Bitset.mem s 3);
  check intlist "elements" [ 7 ] (Bitset.elements s)

let test_bitset_bounds () =
  let s = Bitset.create 8 in
  Alcotest.check_raises "out of range" (Invalid_argument "Bitset: index out of range")
    (fun () -> Bitset.add s 8);
  Alcotest.check_raises "negative" (Invalid_argument "Bitset: index out of range")
    (fun () -> ignore (Bitset.mem s (-1)))

let test_bitset_set_ops () =
  let a = Bitset.of_list 16 [ 1; 3; 5; 15 ] in
  let b = Bitset.of_list 16 [ 3; 4; 15 ] in
  check intlist "union" [ 1; 3; 4; 5; 15 ] (Bitset.elements (Bitset.union a b));
  check intlist "inter" [ 3; 15 ] (Bitset.elements (Bitset.inter a b));
  check intlist "diff" [ 1; 5 ] (Bitset.elements (Bitset.diff a b));
  check Alcotest.bool "subset no" false (Bitset.subset a b);
  check Alcotest.bool "subset yes" true (Bitset.subset (Bitset.inter a b) a);
  check Alcotest.bool "disjoint no" false (Bitset.disjoint a b);
  check Alcotest.bool "disjoint yes" true
    (Bitset.disjoint (Bitset.diff a b) (Bitset.diff b a))

let test_bitset_union_into () =
  let a = Bitset.of_list 8 [ 0; 2 ] in
  let b = Bitset.of_list 8 [ 1; 2 ] in
  Bitset.union_into a b;
  check intlist "union_into" [ 0; 1; 2 ] (Bitset.elements a);
  check intlist "src untouched" [ 1; 2 ] (Bitset.elements b)

let test_bitset_equal_hash () =
  let a = Bitset.of_list 12 [ 2; 9 ] in
  let b = Bitset.of_list 12 [ 9; 2 ] in
  check Alcotest.bool "equal" true (Bitset.equal a b);
  check Alcotest.int "hash equal" (Bitset.hash a) (Bitset.hash b);
  check Alcotest.int "compare" 0 (Bitset.compare a b);
  Bitset.add b 0;
  check Alcotest.bool "not equal" false (Bitset.equal a b)

let test_bitset_capacity_mismatch () =
  let a = Bitset.create 8 and b = Bitset.create 9 in
  Alcotest.check_raises "mismatch" (Invalid_argument "Bitset: capacity mismatch")
    (fun () -> ignore (Bitset.union a b))

let test_bitset_iter_order () =
  let s = Bitset.of_list 64 [ 63; 0; 31; 32 ] in
  check intlist "ascending" [ 0; 31; 32; 63 ] (Bitset.elements s);
  check Alcotest.int "fold" (0 + 31 + 32 + 63) (Bitset.fold (fun i a -> i + a) s 0)

let test_bitset_for_all_exists () =
  let s = Bitset.of_list 10 [ 2; 4; 6 ] in
  check Alcotest.bool "all even" true (Bitset.for_all (fun i -> i mod 2 = 0) s);
  check Alcotest.bool "exists > 5" true (Bitset.exists (fun i -> i > 5) s);
  check Alcotest.bool "exists > 6" false (Bitset.exists (fun i -> i > 6) s)

let test_bitset_copy_isolated () =
  let a = Bitset.of_list 8 [ 1 ] in
  let b = Bitset.copy a in
  Bitset.add b 2;
  check Alcotest.bool "copy isolated" false (Bitset.mem a 2)

(* ------------------------------------------------------------------ *)
(* Digraph                                                             *)
(* ------------------------------------------------------------------ *)

let diamond () = Digraph.of_edges 4 [ (0, 1); (0, 2); (1, 3); (2, 3) ]

let test_digraph_edges () =
  let g = diamond () in
  check Alcotest.int "size" 4 (Digraph.size g);
  check Alcotest.int "nb_edges" 4 (Digraph.nb_edges g);
  check Alcotest.bool "mem" true (Digraph.mem_edge g 0 1);
  check Alcotest.bool "not mem" false (Digraph.mem_edge g 1 0);
  check intlist "succs 0" [ 1; 2 ] (Digraph.succs g 0);
  check intlist "preds 3" [ 1; 2 ] (Digraph.preds g 3);
  check intpairs "edges" [ (0, 1); (0, 2); (1, 3); (2, 3) ] (Digraph.edges g)

let test_digraph_idempotent_add () =
  let g = Digraph.create 3 in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 0 1;
  check Alcotest.int "one edge" 1 (Digraph.nb_edges g)

let test_digraph_topo () =
  check (Alcotest.option intlist) "diamond topo" (Some [ 0; 1; 2; 3 ])
    (Digraph.topological_sort (diamond ()));
  let cyc = Digraph.of_edges 3 [ (0, 1); (1, 2); (2, 0) ] in
  check (Alcotest.option intlist) "cycle" None (Digraph.topological_sort cyc);
  check Alcotest.bool "has_cycle" true (Digraph.has_cycle cyc);
  check Alcotest.bool "no cycle" false (Digraph.has_cycle (diamond ()))

let test_digraph_self_loop_is_cycle () =
  let g = Digraph.of_edges 2 [ (1, 1) ] in
  check Alcotest.bool "self loop" true (Digraph.has_cycle g)

let test_digraph_closure () =
  let c = Digraph.transitive_closure (diamond ()) in
  check Alcotest.bool "0->3" true (Digraph.mem_edge c 0 3);
  check Alcotest.bool "1->2 absent" false (Digraph.mem_edge c 1 2);
  check Alcotest.bool "no reflexive" false (Digraph.mem_edge c 0 0);
  let r = Digraph.transitive_closure ~reflexive:true (diamond ()) in
  check Alcotest.bool "reflexive" true (Digraph.mem_edge r 0 0)

let test_digraph_closure_cyclic () =
  let g = Digraph.of_edges 3 [ (0, 1); (1, 0) ] in
  let c = Digraph.transitive_closure g in
  check Alcotest.bool "0 reaches 0 via cycle" true (Digraph.mem_edge c 0 0);
  check Alcotest.bool "2 isolated" false (Digraph.mem_edge c 2 2)

let test_digraph_reduction () =
  let g = Digraph.of_edges 4 [ (0, 1); (1, 2); (0, 2); (2, 3); (0, 3) ] in
  let r = Digraph.transitive_reduction g in
  check intpairs "reduction" [ (0, 1); (1, 2); (2, 3) ] (Digraph.edges r);
  Alcotest.check_raises "cyclic reduction"
    (Invalid_argument "Digraph.transitive_reduction: cyclic graph") (fun () ->
      ignore (Digraph.transitive_reduction (Digraph.of_edges 2 [ (0, 1); (1, 0) ])))

let test_digraph_sources_sinks () =
  let g = diamond () in
  check intlist "sources" [ 0 ] (Digraph.sources g);
  check intlist "sinks" [ 3 ] (Digraph.sinks g)

let test_digraph_transpose () =
  let t = Digraph.transpose (diamond ()) in
  check intpairs "transposed" [ (1, 0); (2, 0); (3, 1); (3, 2) ] (Digraph.edges t)

let test_digraph_union_induced () =
  let a = Digraph.of_edges 3 [ (0, 1) ] in
  let b = Digraph.of_edges 3 [ (1, 2) ] in
  check intpairs "union" [ (0, 1); (1, 2) ] (Digraph.edges (Digraph.union a b));
  let sub = Bitset.of_list 4 [ 0; 1; 3 ] in
  let i = Digraph.induced (diamond ()) sub in
  check intpairs "induced" [ (0, 1); (1, 3) ] (Digraph.edges i)

let test_digraph_reachable () =
  let g = diamond () in
  check intlist "from 1" [ 3 ] (Bitset.elements (Digraph.reachable g 1));
  check intlist "from 0" [ 1; 2; 3 ] (Bitset.elements (Digraph.reachable g 0))

(* ------------------------------------------------------------------ *)
(* Poset                                                               *)
(* ------------------------------------------------------------------ *)

let diamond_poset () = Poset.of_digraph_exn (diamond ())

let test_poset_rejects_cycle () =
  check Alcotest.bool "cyclic -> None" true
    (Poset.of_digraph (Digraph.of_edges 2 [ (0, 1); (1, 0) ]) = None)

let test_poset_order () =
  let p = diamond_poset () in
  check Alcotest.bool "0 < 3" true (Poset.lt p 0 3);
  check Alcotest.bool "3 < 0 no" false (Poset.lt p 3 0);
  check Alcotest.bool "1 || 2" true (Poset.concurrent p 1 2);
  check Alcotest.bool "leq refl" true (Poset.leq p 1 1);
  check Alcotest.bool "comparable" true (Poset.comparable p 0 1)

let test_poset_down_up () =
  let p = diamond_poset () in
  check intlist "down 3" [ 0; 1; 2 ] (Bitset.elements (Poset.down_set p 3));
  check intlist "up 0" [ 1; 2; 3 ] (Bitset.elements (Poset.up_set p 0));
  let s = Bitset.of_list 4 [ 3 ] in
  check intlist "closure" [ 0; 1; 2; 3 ] (Bitset.elements (Poset.down_closure p s))

let test_poset_down_closed () =
  let p = diamond_poset () in
  check Alcotest.bool "yes" true (Poset.is_down_closed p (Bitset.of_list 4 [ 0; 1 ]));
  check Alcotest.bool "no" false (Poset.is_down_closed p (Bitset.of_list 4 [ 1 ]))

let test_poset_min_max () =
  let p = diamond_poset () in
  let s = Bitset.of_list 4 [ 1; 2; 3 ] in
  check intlist "minimal" [ 1; 2 ] (Bitset.elements (Poset.minimal_of p s));
  check intlist "maximal" [ 3 ] (Bitset.elements (Poset.maximal_of p s))

let test_poset_chains_antichains () =
  let p = diamond_poset () in
  check Alcotest.bool "antichain {1,2}" true (Poset.is_antichain p (Bitset.of_list 4 [ 1; 2 ]));
  check Alcotest.bool "not antichain {0,1}" false
    (Poset.is_antichain p (Bitset.of_list 4 [ 0; 1 ]));
  check Alcotest.bool "chain {0,1,3}" true (Poset.is_chain p (Bitset.of_list 4 [ 0; 1; 3 ]));
  check Alcotest.bool "not chain {1,2}" false (Poset.is_chain p (Bitset.of_list 4 [ 1; 2 ]))

let test_poset_height_width () =
  let p = diamond_poset () in
  check Alcotest.int "height" 3 (Poset.height p);
  check Alcotest.int "width >= 2" 2 (Poset.width_lower_bound p);
  let empty = Poset.of_digraph_exn (Digraph.create 0) in
  check Alcotest.int "empty height" 0 (Poset.height empty)

let test_poset_exact_width () =
  let p = diamond_poset () in
  check Alcotest.int "diamond width" 2 (Poset.width p);
  check intlist "diamond max antichain" [ 1; 2 ] (Poset.max_antichain p);
  (* A chain has width 1; an antichain has width n. *)
  let chain = Poset.of_digraph_exn (Digraph.of_edges 4 [ (0, 1); (1, 2); (2, 3) ]) in
  check Alcotest.int "chain width" 1 (Poset.width chain);
  let anti = Poset.of_digraph_exn (Digraph.create 5) in
  check Alcotest.int "antichain width" 5 (Poset.width anti);
  check Alcotest.int "antichain witness" 5 (List.length (Poset.max_antichain anti));
  (* A non-graded poset where the greedy layering underestimates:
     0<1<2<3 plus 4<3 and 0<5: width is 2. *)
  let tricky =
    Poset.of_digraph_exn (Digraph.of_edges 6 [ (0, 1); (1, 2); (2, 3); (4, 3); (0, 5) ])
  in
  check Alcotest.int "tricky width" 3 (Poset.width tricky);
  let witness = Poset.max_antichain tricky in
  check Alcotest.int "witness size" 3 (List.length witness);
  check Alcotest.bool "witness is antichain" true
    (Poset.is_antichain tricky (Bitset.of_list 6 witness));
  check Alcotest.int "empty width" 0 (Poset.width (Poset.of_digraph_exn (Digraph.create 0)))

let test_poset_covers () =
  let p = Poset.of_digraph_exn (Digraph.of_edges 3 [ (0, 1); (1, 2); (0, 2) ]) in
  check intpairs "covers drop transitivity" [ (0, 1); (1, 2) ] (Poset.covers p)

let test_poset_linear_extensions () =
  let p = diamond_poset () in
  let exts = Poset.linear_extensions p in
  check Alcotest.int "2 extensions" 2 (List.length exts);
  check Alcotest.bool "both valid" true
    (List.for_all (fun e -> e = [ 0; 1; 2; 3 ] || e = [ 0; 2; 1; 3 ]) exts);
  check Alcotest.int "count" 2 (Poset.count_linear_extensions p);
  check Alcotest.int "limit" 1 (List.length (Poset.linear_extensions ~limit:1 p))

let test_poset_count_cap () =
  (* Antichain of 6: 720 extensions, capped. *)
  let p = Poset.of_digraph_exn (Digraph.create 6) in
  check Alcotest.int "capped" 100 (Poset.count_linear_extensions ~cap:100 p);
  check Alcotest.int "exact" 720 (Poset.count_linear_extensions p)

let test_poset_empty_extensions () =
  let p = Poset.of_digraph_exn (Digraph.create 0) in
  check Alcotest.int "one empty extension" 1 (List.length (Poset.linear_extensions p))

(* ------------------------------------------------------------------ *)
(* Linext: step sequences (= the paper's valid history sequences)      *)
(* ------------------------------------------------------------------ *)

let test_step_sequences_diamond () =
  (* The paper's §7 example: e1 |> e2, e1 |> e3, {e2,e3} |> e4. Complete
     runs: e2 and e3 in either order or simultaneously — exactly 3. *)
  let p = diamond_poset () in
  let seqs = Linext.step_sequences p in
  check Alcotest.int "3 step sequences" 3 (List.length seqs);
  check Alcotest.bool "simultaneous step present" true
    (List.exists (fun s -> List.mem [ 1; 2 ] s) seqs);
  check Alcotest.bool "all valid" true (List.for_all (Linext.is_step_sequence p) seqs)

let test_count_step_sequences () =
  let p = diamond_poset () in
  check Alcotest.int "count matches" 3 (Linext.count_step_sequences p);
  check Alcotest.int "capped" 2 (Linext.count_step_sequences ~cap:2 p);
  (* Antichain of 3: ordered set partitions of 3 elements = 13. *)
  let a3 = Poset.of_digraph_exn (Digraph.create 3) in
  check Alcotest.int "antichain 3" 13 (Linext.count_step_sequences a3)

let test_greedy_levels () =
  let p = diamond_poset () in
  check (Alcotest.list intlist) "levels" [ [ 0 ]; [ 1; 2 ]; [ 3 ] ] (Linext.greedy_levels p);
  check Alcotest.bool "greedy is valid" true
    (Linext.is_step_sequence p (Linext.greedy_levels p))

let test_singleton_steps () =
  check (Alcotest.list intlist) "singletons" [ [ 2 ]; [ 0 ] ] (Linext.singleton_steps [ 2; 0 ])

let test_sampled_runs_valid () =
  let p = diamond_poset () in
  let rng = Random.State.make [| 11 |] in
  for _ = 1 to 20 do
    let ext = Linext.sample_linear_extension rng p in
    Alcotest.(check bool) "ext valid" true
      (Linext.is_step_sequence p (Linext.singleton_steps ext));
    let steps = Linext.sample_step_sequence rng p in
    Alcotest.(check bool) "steps valid" true (Linext.is_step_sequence p steps)
  done

let test_is_step_sequence_rejects () =
  let p = diamond_poset () in
  check Alcotest.bool "wrong order" false (Linext.is_step_sequence p [ [ 1 ]; [ 0 ]; [ 2 ]; [ 3 ] ]);
  check Alcotest.bool "non-antichain step" false (Linext.is_step_sequence p [ [ 0 ]; [ 1; 3 ]; [ 2 ] ]);
  check Alcotest.bool "incomplete" false (Linext.is_step_sequence p [ [ 0 ]; [ 1; 2 ] ]);
  check Alcotest.bool "duplicate" false
    (Linext.is_step_sequence p [ [ 0 ]; [ 1 ]; [ 1; 2 ]; [ 3 ] ]);
  check Alcotest.bool "empty step" false (Linext.is_step_sequence p [ [ 0 ]; []; [ 1; 2 ]; [ 3 ] ])

let () =
  Alcotest.run "gem_order"
    [
      ( "bitset",
        [
          Alcotest.test_case "empty" `Quick test_bitset_empty;
          Alcotest.test_case "add-remove" `Quick test_bitset_add_remove;
          Alcotest.test_case "bounds" `Quick test_bitset_bounds;
          Alcotest.test_case "set-ops" `Quick test_bitset_set_ops;
          Alcotest.test_case "union-into" `Quick test_bitset_union_into;
          Alcotest.test_case "equal-hash" `Quick test_bitset_equal_hash;
          Alcotest.test_case "capacity-mismatch" `Quick test_bitset_capacity_mismatch;
          Alcotest.test_case "iter-order" `Quick test_bitset_iter_order;
          Alcotest.test_case "for-all-exists" `Quick test_bitset_for_all_exists;
          Alcotest.test_case "copy-isolated" `Quick test_bitset_copy_isolated;
        ] );
      ( "digraph",
        [
          Alcotest.test_case "edges" `Quick test_digraph_edges;
          Alcotest.test_case "idempotent-add" `Quick test_digraph_idempotent_add;
          Alcotest.test_case "topological-sort" `Quick test_digraph_topo;
          Alcotest.test_case "self-loop" `Quick test_digraph_self_loop_is_cycle;
          Alcotest.test_case "closure" `Quick test_digraph_closure;
          Alcotest.test_case "closure-cyclic" `Quick test_digraph_closure_cyclic;
          Alcotest.test_case "reduction" `Quick test_digraph_reduction;
          Alcotest.test_case "sources-sinks" `Quick test_digraph_sources_sinks;
          Alcotest.test_case "transpose" `Quick test_digraph_transpose;
          Alcotest.test_case "union-induced" `Quick test_digraph_union_induced;
          Alcotest.test_case "reachable" `Quick test_digraph_reachable;
        ] );
      ( "poset",
        [
          Alcotest.test_case "rejects-cycle" `Quick test_poset_rejects_cycle;
          Alcotest.test_case "order" `Quick test_poset_order;
          Alcotest.test_case "down-up" `Quick test_poset_down_up;
          Alcotest.test_case "down-closed" `Quick test_poset_down_closed;
          Alcotest.test_case "min-max" `Quick test_poset_min_max;
          Alcotest.test_case "chains-antichains" `Quick test_poset_chains_antichains;
          Alcotest.test_case "height-width" `Quick test_poset_height_width;
          Alcotest.test_case "exact-width" `Quick test_poset_exact_width;
          Alcotest.test_case "covers" `Quick test_poset_covers;
          Alcotest.test_case "linear-extensions" `Quick test_poset_linear_extensions;
          Alcotest.test_case "count-cap" `Quick test_poset_count_cap;
          Alcotest.test_case "empty-extensions" `Quick test_poset_empty_extensions;
        ] );
      ( "linext",
        [
          Alcotest.test_case "diamond-steps" `Quick test_step_sequences_diamond;
          Alcotest.test_case "count" `Quick test_count_step_sequences;
          Alcotest.test_case "greedy-levels" `Quick test_greedy_levels;
          Alcotest.test_case "singleton-steps" `Quick test_singleton_steps;
          Alcotest.test_case "sampled-valid" `Quick test_sampled_runs_valid;
          Alcotest.test_case "rejects-invalid" `Quick test_is_step_sequence_rejects;
        ] );
    ]
