(* Differential harness for the source-DPOR reduction engine (PR 10).
   Every lib/problems workload is explored under all three --reduction
   engines (none / sleep / source) and must produce identical
   completed/deadlocked computation multisets (equal partial-order
   fingerprints) and the same exhaustion status; source-DPOR must also
   visit no more configurations than the sleep-set engine on any
   workload. qcheck properties extend the evidence to random
   Monitor/CSP/ADA programs across the jobs x batch x {fp,exact} grid.

   As in test_por.ml, rwd-ada is excluded from the engine triple: its
   cyclic state space is intractable without memoized reduction, so it
   is compared sleep-vs-source uncapped (both complete) and all three
   ways under a shared configuration cap. *)

module Explore = Gem_lang.Explore
module Monitor = Gem_lang.Monitor
module Csp = Gem_lang.Csp
module Ada = Gem_lang.Ada
module RW = Gem_problems.Readers_writers
module Buffer = Gem_problems.Buffer
module Rwd = Gem_problems.Rw_distributed
module Db = Gem_problems.Db_update
module Budget = Gem_check.Budget
module Refine = Gem_check.Refine
module Verdict = Gem_check.Verdict
module Strategy = Gem_check.Strategy
module Gen = Gem_fuzz.Gen

let check = Alcotest.check
let strategy = Strategy.Linearizations (Some 200)
let fps comps = List.sort compare (List.map Explore.fingerprint comps)
let reason_opt = Option.map Budget.reason_keyword

(* One exploration under one engine, normalized across the three
   interpreters: (computations, deadlocks, exhausted, explored). *)
type outcome = {
  o_comps : string list;
  o_deads : string list;
  o_exh : string option;
  o_explored : int;
}

let mon_outcome ?max_configs prog reduction =
  let o = Monitor.explore ~reduction ?max_configs prog in
  {
    o_comps = fps o.Monitor.computations;
    o_deads = fps o.Monitor.deadlocks;
    o_exh = reason_opt o.Monitor.exhausted;
    o_explored = o.Monitor.explored;
  }

let csp_outcome ?max_configs prog reduction =
  let o = Csp.explore ~reduction ?max_configs prog in
  {
    o_comps = fps o.Csp.computations;
    o_deads = fps o.Csp.deadlocks;
    o_exh = reason_opt o.Csp.exhausted;
    o_explored = o.Csp.explored;
  }

let ada_outcome ?max_configs prog reduction =
  let o = Ada.explore ~reduction ?max_configs prog in
  {
    o_comps = fps o.Ada.computations;
    o_deads = fps o.Ada.deadlocks;
    o_exh = reason_opt o.Ada.exhausted;
    o_explored = o.Ada.explored;
  }

(* The core differential: none, sleep and source agree on every leaf
   multiset and on the exhaustion status, and source visits no more
   configurations than sleep. *)
let triple name run =
  let none = run Explore.No_reduction
  and sleep = run Explore.Sleep_sets
  and source = run Explore.Source_sets in
  List.iter
    (fun (engine, o) ->
      check
        Alcotest.(list string)
        (Printf.sprintf "%s: %s completed multiset" name engine)
        none.o_comps o.o_comps;
      check
        Alcotest.(list string)
        (Printf.sprintf "%s: %s deadlock multiset" name engine)
        none.o_deads o.o_deads;
      check
        Alcotest.(option string)
        (Printf.sprintf "%s: %s exhaustion" name engine)
        none.o_exh o.o_exh)
    [ ("sleep", sleep); ("source", source) ];
  check Alcotest.bool
    (Printf.sprintf "%s: source explored (%d) <= sleep explored (%d)" name
       source.o_explored sleep.o_explored)
    true
    (source.o_explored <= sleep.o_explored)

let test_rw_monitor_workloads () =
  triple "rw-paper-1r1w"
    (mon_outcome (RW.program ~monitor:RW.paper_monitor ~readers:1 ~writers:1));
  triple "rw-paper-2r1w"
    (mon_outcome (RW.program ~monitor:RW.paper_monitor ~readers:2 ~writers:1));
  triple "rw-no-exclusion-2r1w"
    (mon_outcome
       (RW.program ~monitor:RW.no_exclusion_monitor ~readers:2 ~writers:1));
  triple "rw-buggy-1r2w"
    (mon_outcome (RW.program ~monitor:RW.buggy_monitor ~readers:1 ~writers:2))

let test_buffer_workloads () =
  triple "buffer-monitor-1p1c2i"
    (mon_outcome
       (Buffer.monitor_solution ~capacity:1 ~producers:1 ~consumers:1
          ~items_each:2));
  triple "buffer-buggy-monitor-1p1c2i"
    (mon_outcome
       (Buffer.buggy_monitor_solution ~capacity:1 ~producers:1 ~consumers:1
          ~items_each:2));
  triple "buffer-csp-1p1c2i"
    (csp_outcome
       (Buffer.csp_solution ~capacity:1 ~producers:1 ~consumers:1 ~items_each:2));
  triple "buffer-ada-1p1c2i"
    (ada_outcome
       (Buffer.ada_solution ~capacity:1 ~producers:1 ~consumers:1 ~items_each:2))

let test_distributed_workloads () =
  triple "rwd-csp-1r1w" (csp_outcome (Rwd.csp_program ~readers:1 ~writers:1));
  triple "rwd-csp-no-priority-1r1w"
    (csp_outcome (Rwd.csp_program_no_priority ~readers:1 ~writers:1));
  triple "db-update-2-sites" (csp_outcome (Db.program ~sites:2))

(* rwd-ada: cyclic, so the unreduced walk is intractable uncapped. The
   reduced engines are compared in full — the workload the reduction was
   built for — and all three under a shared cap must degrade alike. *)
let test_rwd_ada () =
  let prog = Rwd.ada_program ~readers:1 ~writers:1 in
  let sleep = ada_outcome prog Explore.Sleep_sets
  and source = ada_outcome prog Explore.Source_sets in
  check
    Alcotest.(list string)
    "rwd-ada-1r1w: completed multiset" sleep.o_comps source.o_comps;
  check
    Alcotest.(list string)
    "rwd-ada-1r1w: deadlock multiset" sleep.o_deads source.o_deads;
  check
    Alcotest.(option string)
    "rwd-ada-1r1w: both complete" None
    (if sleep.o_exh = None then source.o_exh else sleep.o_exh);
  check Alcotest.bool
    (Printf.sprintf "rwd-ada-1r1w: source explored (%d) <= sleep explored (%d)"
       source.o_explored sleep.o_explored)
    true
    (source.o_explored <= sleep.o_explored);
  let capped r = (ada_outcome ~max_configs:500 prog r).o_exh in
  check
    Alcotest.(option string)
    "rwd-ada capped: source reports config-budget" (Some "config-budget")
    (capped Explore.Source_sets);
  check
    Alcotest.(option string)
    "rwd-ada capped: none agrees"
    (capped Explore.Source_sets)
    (capped Explore.No_reduction)

(* ------------------------------------------------------------------ *)
(* Byte-identical verdicts across --reduction values                   *)
(* ------------------------------------------------------------------ *)

let render_sat ?edges ~problem ~map comps =
  let sorted =
    List.sort
      (fun a b -> compare (Explore.fingerprint a) (Explore.fingerprint b))
      comps
  in
  let verdicts = Refine.sat ~strategy ?edges ~problem ~map sorted in
  String.concat "\n"
    (List.map
       (fun (i, v) ->
         Printf.sprintf "%d %s %s" i
           (Verdict.status_keyword (Verdict.status v))
           (Format.asprintf "%a" (Verdict.pp None) v))
       verdicts)

let test_verdicts_byte_identical () =
  let engines =
    [ Explore.No_reduction; Explore.Sleep_sets; Explore.Source_sets ]
  in
  let rw_case name monitor version ~readers ~writers =
    let prog = RW.program ~monitor ~readers ~writers in
    let problem = RW.spec version ~users:(RW.user_names ~readers ~writers) in
    let render reduction =
      let o = Monitor.explore ~reduction prog in
      render_sat ~edges:Refine.Actor_paths ~problem ~map:RW.correspondence
        o.Monitor.computations
    in
    match List.map render engines with
    | [ a; b; c ] ->
        check Alcotest.string (name ^ ": sleep verdicts byte-identical") a b;
        check Alcotest.string (name ^ ": source verdicts byte-identical") a c
    | _ -> assert false
  in
  rw_case "rw-paper-verified" RW.paper_monitor RW.Readers_priority ~readers:1
    ~writers:1;
  rw_case "rw-no-exclusion-falsified" RW.no_exclusion_monitor RW.Free_for_all
    ~readers:2 ~writers:1

(* ------------------------------------------------------------------ *)
(* The reduction must actually reduce                                  *)
(* ------------------------------------------------------------------ *)

(* Source-DPOR's reason to exist: strictly fewer visits than sleep sets
   on the rendezvous families (the asymptotic claim is benchmarked in
   BENCH_dpor.json; here we pin the strict inequality on two). *)
let test_source_beats_sleep () =
  let strict name run =
    let sleep = run Explore.Sleep_sets and source = run Explore.Source_sets in
    check Alcotest.bool
      (Printf.sprintf "%s: source explored (%d) < sleep explored (%d)" name
         source.o_explored sleep.o_explored)
      true
      (source.o_explored < sleep.o_explored)
  in
  strict "buffer-ada-1p1c2i"
    (ada_outcome
       (Buffer.ada_solution ~capacity:1 ~producers:1 ~consumers:1 ~items_each:2));
  strict "rw-paper-2r1w"
    (mon_outcome (RW.program ~monitor:RW.paper_monitor ~readers:2 ~writers:1))

(* ------------------------------------------------------------------ *)
(* Random programs across the jobs x batch x {fp,exact} grid (qcheck)  *)
(* ------------------------------------------------------------------ *)

(* Whatever scheduling/keying knobs ride along, --reduction source must
   reproduce the plain engine's computation and deadlock multisets.
   (Under jobs > 1 the source engine deliberately runs sequentially —
   the grid checks the knobs cannot corrupt it.) *)
let grid = [ (1, 1, false); (2, 7, true); (8, 64, false) ]

let source_matches_plain ~explore_fn prog =
  let base = explore_fn ~reduction:Explore.No_reduction ~jobs:1 ~batch:1
      ~exact_keys:false prog
  in
  List.for_all
    (fun (jobs, batch, exact) ->
      let src =
        explore_fn ~reduction:Explore.Source_sets ~jobs ~batch
          ~exact_keys:exact prog
      in
      src.o_comps = base.o_comps
      && src.o_deads = base.o_deads
      && src.o_exh = None && base.o_exh = None)
    grid

let prop_csp_random =
  QCheck.Test.make ~name:"random CSP: source matches plain on the grid"
    ~count:40 Gen.csp_arb (fun prog ->
      source_matches_plain
        ~explore_fn:(fun ~reduction ~jobs ~batch ~exact_keys prog ->
          let o = Csp.explore ~reduction ~jobs ~batch ~exact_keys prog in
          {
            o_comps = fps o.Csp.computations;
            o_deads = fps o.Csp.deadlocks;
            o_exh = reason_opt o.Csp.exhausted;
            o_explored = o.Csp.explored;
          })
        prog)

let prop_monitor_random =
  QCheck.Test.make ~name:"random Monitor: source matches plain on the grid"
    ~count:30 Gen.monitor_arb (fun prog ->
      source_matches_plain
        ~explore_fn:(fun ~reduction ~jobs ~batch ~exact_keys prog ->
          let o = Monitor.explore ~reduction ~jobs ~batch ~exact_keys prog in
          {
            o_comps = fps o.Monitor.computations;
            o_deads = fps o.Monitor.deadlocks;
            o_exh = reason_opt o.Monitor.exhausted;
            o_explored = o.Monitor.explored;
          })
        prog)

let prop_ada_random =
  QCheck.Test.make ~name:"random ADA: source matches plain on the grid"
    ~count:30 Gen.ada_arb (fun prog ->
      source_matches_plain
        ~explore_fn:(fun ~reduction ~jobs ~batch ~exact_keys prog ->
          let o = Ada.explore ~reduction ~jobs ~batch ~exact_keys prog in
          {
            o_comps = fps o.Ada.computations;
            o_deads = fps o.Ada.deadlocks;
            o_exh = reason_opt o.Ada.exhausted;
            o_explored = o.Ada.explored;
          })
        prog)

(* Engine-selection plumbing: resolve_reduction's documented precedence. *)
let test_resolution_precedence () =
  check Alcotest.string "explicit reduction wins over por" "source"
    (Explore.reduction_name
       (Explore.resolve_reduction ~reduction:Explore.Source_sets ~por:false ()));
  check Alcotest.string "por=false means none" "none"
    (Explore.reduction_name (Explore.resolve_reduction ~por:false ()));
  check Alcotest.string "por=true means sleep" "sleep"
    (Explore.reduction_name (Explore.resolve_reduction ~por:true ()));
  check
    Alcotest.(option string)
    "of_string round-trips"
    (Some "source")
    (Option.map Explore.reduction_name (Explore.reduction_of_string "source"));
  check Alcotest.bool "invalid spelling rejected" true
    (Explore.reduction_of_string "Source" = None)

let () =
  let to_alc = QCheck_alcotest.to_alcotest in
  Alcotest.run "gem_dpor"
    [
      ( "differential",
        [
          Alcotest.test_case "rw-monitor workloads" `Quick
            test_rw_monitor_workloads;
          Alcotest.test_case "buffer workloads" `Quick test_buffer_workloads;
          Alcotest.test_case "distributed workloads" `Quick
            test_distributed_workloads;
          Alcotest.test_case "rwd-ada" `Quick test_rwd_ada;
          Alcotest.test_case "verdicts byte-identical" `Quick
            test_verdicts_byte_identical;
          Alcotest.test_case "source beats sleep" `Quick test_source_beats_sleep;
          Alcotest.test_case "resolution precedence" `Quick
            test_resolution_precedence;
        ] );
      ( "random-programs",
        [ to_alc prop_csp_random; to_alc prop_monitor_random; to_alc prop_ada_random ] );
    ]
