(* Soundness harness for the incremental 128-bit search keys. The
   fingerprint key replaces the exact marshal-string canonical key on the
   exploration hot path, so its correctness contract is that it induces
   exactly the same partition of configurations:

   - exact-key-equal => fingerprint-equal (absolutely required: a finer
     fingerprint partition would change memo hit counts and break the
     byte-identical-across-modes guarantee);
   - fingerprint-equal => exact-key-equal (a violation is a collision — a
     lossy merge that silently prunes a distinct state; vanishingly
     unlikely, and asserted absent on every state this harness reaches).

   The partition is checked pairwise over configurations harvested from
   bounded walks (deterministic workloads and random CSP programs), the
   audited explorations assert [Fingerprint_collisions = 0], a
   deliberately degenerate constant key proves the audit oracle actually
   fires, and a parity matrix checks byte-identical computation
   fingerprints across key mode x jobs x POR. *)

module Explore = Gem_lang.Explore
module Monitor = Gem_lang.Monitor
module Csp = Gem_lang.Csp
module Ada = Gem_lang.Ada
module Fp = Gem_order.Fingerprint
module T = Gem_obs.Telemetry
module RW = Gem_problems.Readers_writers
module Buffer_p = Gem_problems.Buffer
module Rwd = Gem_problems.Rw_distributed
module Gen_csp = Gem_fuzz.Gen

let check = Alcotest.check
let fps comps = List.sort compare (List.map Explore.fingerprint comps)

(* ------------------------------------------------------------------ *)
(* Partition agreement: exact key and fingerprint classify alike       *)
(* ------------------------------------------------------------------ *)

(* Bounded DFS harvesting configurations (duplicates included — revisits
   must agree under both keys too). *)
let collect ~moves ~max_configs ~max_depth init =
  let out = ref [] and n = ref 0 in
  let rec go depth c =
    if !n < max_configs && depth <= max_depth then begin
      incr n;
      out := c :: !out;
      List.iter (fun (_, c') -> go (depth + 1) c') (moves c)
    end
  in
  go 0 init;
  !out

let check_partition ~name ~key ~fp configs =
  let keyed = List.map (fun c -> (key c, fp c)) configs in
  List.iteri
    (fun i (ki, fi) ->
      List.iteri
        (fun j (kj, fj) ->
          if j > i then begin
            let ke = String.equal ki kj and fe = Fp.equal fi fj in
            if ke && not fe then
              Alcotest.failf
                "%s: equal exact keys but distinct fingerprints (states %d, %d)"
                name i j;
            if fe && not ke then
              Alcotest.failf
                "%s: fingerprint collision between distinct states (%d, %d): %s"
                name i j (Fp.to_hex fi)
          end)
        keyed)
    keyed

let test_monitor_partition () =
  let prog = RW.program ~monitor:RW.paper_monitor ~readers:1 ~writers:1 in
  check_partition ~name:"rw-monitor-1r1w"
    ~key:(Monitor.config_key prog)
    ~fp:(Monitor.config_fp prog)
    (collect
       ~moves:(Monitor.config_moves prog)
       ~max_configs:200 ~max_depth:25
       (Monitor.initial_config prog))

let test_ada_partition () =
  let prog = Buffer_p.ada_solution ~capacity:1 ~producers:1 ~consumers:1 ~items_each:2 in
  check_partition ~name:"buffer-ada-1p1c2i"
    ~key:(Ada.config_key prog)
    ~fp:(Ada.config_fp prog)
    (collect ~moves:Ada.config_moves ~max_configs:200 ~max_depth:25
       (Ada.initial_config prog));
  let prog = Rwd.ada_program ~readers:1 ~writers:1 in
  check_partition ~name:"rwd-ada-1r1w"
    ~key:(Ada.config_key prog)
    ~fp:(Ada.config_fp prog)
    (collect ~moves:Ada.config_moves ~max_configs:150 ~max_depth:20
       (Ada.initial_config prog))

let prop_csp_random_partition =
  QCheck.Test.make ~name:"random CSP: fp partition = exact partition" ~count:40
    Gen_csp.prog_arb (fun prog ->
      check_partition ~name:"csp-random"
        ~key:(Csp.config_key prog)
        ~fp:(Csp.config_fp prog)
        (collect ~moves:Csp.config_moves ~max_configs:120 ~max_depth:20
           (Csp.initial_config prog));
      true)

(* ------------------------------------------------------------------ *)
(* Parity matrix: key mode x jobs x POR, byte-identical outcomes       *)
(* ------------------------------------------------------------------ *)

let test_parity_matrix () =
  let matrix name run =
    let bc, bd = run ~exact_keys:true ~jobs:1 ~por:true in
    List.iter
      (fun por ->
        List.iter
          (fun jobs ->
            List.iter
              (fun exact_keys ->
                let c, d = run ~exact_keys ~jobs ~por in
                let leg what =
                  Printf.sprintf "%s %s (exact=%b jobs=%d por=%b)" name what
                    exact_keys jobs por
                in
                check Alcotest.(list string) (leg "computations") bc c;
                check Alcotest.(list string) (leg "deadlocks") bd d)
              [ true; false ])
          [ 1; 2; 8 ])
      [ true; false ]
  in
  let rw = RW.program ~monitor:RW.paper_monitor ~readers:1 ~writers:1 in
  matrix "rw-monitor-1r1w" (fun ~exact_keys ~jobs ~por ->
      let o = Monitor.explore ~por ~exact_keys ~jobs rw in
      (fps o.Monitor.computations, fps o.Monitor.deadlocks));
  let csp = Buffer_p.csp_solution ~capacity:1 ~producers:1 ~consumers:1 ~items_each:2 in
  matrix "buffer-csp-1p1c2i" (fun ~exact_keys ~jobs ~por ->
      let o = Csp.explore ~por ~exact_keys ~jobs csp in
      (fps o.Csp.computations, fps o.Csp.deadlocks));
  let ada = Buffer_p.ada_solution ~capacity:1 ~producers:1 ~consumers:1 ~items_each:2 in
  matrix "buffer-ada-1p1c2i" (fun ~exact_keys ~jobs ~por ->
      let o = Ada.explore ~por ~exact_keys ~jobs ada in
      (fps o.Ada.computations, fps o.Ada.deadlocks))

(* Fingerprint and exact keys induce the same partition, so the reduced
   search must also visit exactly the same number of configurations. *)
let test_explored_counts_agree () =
  let rw = RW.program ~monitor:RW.paper_monitor ~readers:2 ~writers:1 in
  let me e =
    let o = Monitor.explore ~por:true ~exact_keys:e ~jobs:1 rw in
    (o.Monitor.explored, o.Monitor.reduced)
  in
  check Alcotest.(pair int int) "rw-2r1w: counters" (me true) (me false);
  let csp = Buffer_p.csp_solution ~capacity:1 ~producers:1 ~consumers:1 ~items_each:2 in
  let ce e =
    let o = Csp.explore ~por:true ~exact_keys:e ~jobs:1 csp in
    (o.Csp.explored, o.Csp.reduced)
  in
  check Alcotest.(pair int int) "buffer-csp: counters" (ce true) (ce false)

(* ------------------------------------------------------------------ *)
(* Audit oracle: zero collisions on real workloads, and the detector   *)
(* actually detects                                                    *)
(* ------------------------------------------------------------------ *)

let with_telemetry f =
  let was = T.enabled () in
  T.enable ();
  T.reset ();
  Fun.protect
    ~finally:(fun () ->
      T.reset ();
      if not was then T.disable ())
    f

let test_audited_runs_collision_free () =
  with_telemetry (fun () ->
      let rw = RW.program ~monitor:RW.paper_monitor ~readers:2 ~writers:1 in
      ignore (Monitor.explore ~por:true ~exact_keys:false ~audit_keys:true ~jobs:1 rw);
      let ada =
        Buffer_p.ada_solution ~capacity:1 ~producers:1 ~consumers:1 ~items_each:2
      in
      ignore (Ada.explore ~por:true ~exact_keys:false ~audit_keys:true ~jobs:1 ada);
      let csp =
        Buffer_p.csp_solution ~capacity:1 ~producers:1 ~consumers:1 ~items_each:2
      in
      ignore (Csp.explore ~por:true ~exact_keys:false ~audit_keys:true ~jobs:4 csp);
      check Alcotest.int "audited workloads: fingerprint_collisions"
        0
        (T.read T.Fingerprint_collisions))

(* A constant fingerprint merges every state into one class; the audit
   oracle must flag the lossy merges. This pins down that a silent
   hash-quality regression cannot pass the collision gate vacuously. *)
let test_degenerate_key_detected () =
  with_telemetry (fun () ->
      let moves n = if n >= 6 then [] else [ n + 1; n + 2 ] in
      let r =
        Explore.run
          ~key:(fun _ -> Explore.Fp (Fp.of_int 0))
          ~audit:string_of_int ~moves
          ~terminated:(fun n -> n >= 6)
          0
      in
      check Alcotest.bool "degenerate key prunes" true (r.Explore.reduced > 0);
      check Alcotest.bool "audit flags the lossy merges" true
        (T.read T.Fingerprint_collisions > 0))

(* ------------------------------------------------------------------ *)
(* skey plumbing                                                       *)
(* ------------------------------------------------------------------ *)

(* The two key spaces must never unify inside one seen table. *)
let test_skey_spaces_disjoint () =
  let fp = Fp.of_string "x" in
  let ex = Explore.Exact "x" in
  check Alcotest.bool "Fp vs Exact never equal" false
    (Explore.skey_equal (Explore.Fp fp) ex);
  check Alcotest.bool "Fp = Fp" true
    (Explore.skey_equal (Explore.Fp fp) (Explore.Fp (Fp.of_string "x")));
  check Alcotest.bool "Exact = Exact" true
    (Explore.skey_equal ex (Explore.Exact "x"))

let () =
  let to_alc = QCheck_alcotest.to_alcotest in
  Alcotest.run "gem_keys"
    [
      ( "partition",
        [
          Alcotest.test_case "monitor walk" `Quick test_monitor_partition;
          Alcotest.test_case "ada walks" `Quick test_ada_partition;
          to_alc prop_csp_random_partition;
        ] );
      ( "parity",
        [
          Alcotest.test_case "matrix: mode x jobs x por" `Quick test_parity_matrix;
          Alcotest.test_case "explored counts agree" `Quick
            test_explored_counts_agree;
        ] );
      ( "audit",
        [
          Alcotest.test_case "real workloads collision-free" `Quick
            test_audited_runs_collision_free;
          Alcotest.test_case "degenerate key detected" `Quick
            test_degenerate_key_detected;
        ] );
      ( "skey", [ Alcotest.test_case "key spaces disjoint" `Quick test_skey_spaces_disjoint ] );
    ]
