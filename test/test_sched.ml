(* Scheduler-torture suite for the batched work-stealing engine.

   The batched scheduler (Explore.run ~jobs ~batch) moves frontier
   configurations in chunks, probes the seen table one shard-group at a
   time, and fronts the shared shards with a domain-local fingerprint
   cache. None of that may be observable: this suite drives the engine
   across a (jobs x batch x POR x key-mode) grid — including adversarial
   batch sizes like 1, 2, 7 and 1024 that force ragged partial chunks —
   and asserts the determinism contract holds everywhere:

   - rendered verdicts are byte-identical for every (jobs, batch) pair
     (the ISSUE acceptance grid: jobs in {1,2,8} x batch in {1,64,1024}
     x POR on/off);
   - random programs (Gem_fuzz.Gen) produce identical fingerprint
     multisets and exhaustion across the full torture grid;
   - the telemetry conservation invariant
     Configs_reduced = Sleep_prunes + Memo_hits + Local_cache_hits
     and Batch_probe_hits <= Memo_hits hold at every grid point;
   - budget cancellation is first-reason-wins: a poisoned deadline
     reports deadline-exceeded, a config cap reports config-budget,
     regardless of how many domains race to notice;
   - a GEM_FAULT domain-start leg: when worker domains refuse to start,
     the shrunken fleet still terminates with the same answer;
   - jobs >> frontier: a 1-configuration program at jobs 8 terminates
     (the partial-chunk flush regression). *)

module Explore = Gem_lang.Explore
module Monitor = Gem_lang.Monitor
module Csp = Gem_lang.Csp
module RW = Gem_problems.Readers_writers
module Buffer = Gem_problems.Buffer
module Rwd = Gem_problems.Rw_distributed
module Budget = Gem_check.Budget
module Faults = Gem_check.Faults
module Refine = Gem_check.Refine
module Verdict = Gem_check.Verdict
module Strategy = Gem_check.Strategy
module T = Gem_obs.Telemetry
module Gen = Gem_fuzz.Gen

let check = Alcotest.check
let strategy = Strategy.Linearizations (Some 200)
let fps comps = List.sort compare (List.map Explore.fingerprint comps)
let reason_opt = Option.map Budget.reason_keyword

(* The ISSUE acceptance grid: every (jobs, batch) pair that must render
   byte-identical verdicts, plus the baseline (1, 1). *)
let acceptance_grid =
  List.concat_map
    (fun jobs -> List.map (fun batch -> (jobs, batch)) [ 1; 64; 1024 ])
    [ 1; 2; 8 ]

(* Adversarial pairs for the wider torture legs: ragged batches that
   leave partial chunks (2, 7), degenerate per-task stealing (1), and a
   batch far larger than any frontier (1024). *)
let torture_grid = [ (2, 1); (3, 2); (8, 7); (5, 64); (8, 1024); (1, 1024) ]

(* ------------------------------------------------------------------ *)
(* Acceptance grid: byte-identical rendered verdicts                    *)
(* ------------------------------------------------------------------ *)

let render ~jobs ~problem ~map ?edges comps =
  let verdicts = Refine.sat ~strategy ~jobs ?edges ~problem ~map comps in
  String.concat "\n"
    (List.map
       (fun (i, v) ->
         Printf.sprintf "%d %s %s" i
           (Verdict.status_keyword (Verdict.status v))
           (Format.asprintf "%a" (Verdict.pp None) v))
       verdicts)

let test_acceptance_grid () =
  List.iter
    (fun por ->
      let rw_prog = RW.program ~monitor:RW.paper_monitor ~readers:2 ~writers:1 in
      let rw_problem =
        RW.spec RW.Readers_priority ~users:(RW.user_names ~readers:2 ~writers:1)
      in
      let rw_rendered (jobs, batch) =
        let o = Monitor.explore ~por ~jobs ~batch rw_prog in
        render ~jobs ~edges:Refine.Actor_paths ~problem:rw_problem
          ~map:RW.correspondence o.Monitor.computations
      in
      let buf_rendered (jobs, batch) =
        let o =
          Csp.explore ~por ~jobs ~batch
            (Buffer.csp_solution ~capacity:1 ~producers:1 ~consumers:1
               ~items_each:2)
        in
        render ~jobs ~problem:(Buffer.spec ~capacity:1)
          ~map:Buffer.csp_correspondence o.Csp.computations
      in
      let rw_base = rw_rendered (1, 1) in
      let buf_base = buf_rendered (1, 1) in
      List.iter
        (fun (jobs, batch) ->
          let tag =
            Printf.sprintf "por=%b jobs=%d batch=%d" por jobs batch
          in
          check Alcotest.string
            ("rw-monitor-2r1w verdicts byte-identical " ^ tag)
            rw_base
            (rw_rendered (jobs, batch));
          check Alcotest.string
            ("buffer-csp verdicts byte-identical " ^ tag)
            buf_base
            (buf_rendered (jobs, batch)))
        acceptance_grid)
    [ true; false ]

(* ------------------------------------------------------------------ *)
(* Fingerprint-multiset parity on fixed workloads, full torture grid    *)
(* ------------------------------------------------------------------ *)

let assert_parity name run =
  List.iter
    (fun por ->
      List.iter
        (fun exact ->
          let c1, d1, x1 = run ~por ~exact ~jobs:1 ~batch:1 in
          List.iter
            (fun (jobs, batch) ->
              let cn, dn, xn = run ~por ~exact ~jobs ~batch in
              let tag =
                Printf.sprintf "%s por=%b exact=%b jobs=%d batch=%d" name por
                  exact jobs batch
              in
              check
                Alcotest.(list string)
                (tag ^ ": completed multiset") (fps c1) (fps cn);
              check
                Alcotest.(list string)
                (tag ^ ": deadlock multiset") (fps d1) (fps dn);
              check
                Alcotest.(option string)
                (tag ^ ": exhaustion") (reason_opt x1) (reason_opt xn))
            torture_grid)
        [ true; false ])
    [ true; false ]

let test_fixed_workload_parity () =
  assert_parity "rw-monitor-2r1w" (fun ~por ~exact ~jobs ~batch ->
      let o =
        Monitor.explore ~por ~exact_keys:exact ~jobs ~batch
          (RW.program ~monitor:RW.paper_monitor ~readers:2 ~writers:1)
      in
      (o.Monitor.computations, o.Monitor.deadlocks, o.Monitor.exhausted));
  assert_parity "rwd-csp-1r1w" (fun ~por ~exact ~jobs ~batch ->
      let o =
        Csp.explore ~por ~exact_keys:exact ~jobs ~batch
          (Rwd.csp_program ~readers:1 ~writers:1)
      in
      (o.Csp.computations, o.Csp.deadlocks, o.Csp.exhausted))

(* ------------------------------------------------------------------ *)
(* Random programs across the torture grid (qcheck)                     *)
(* ------------------------------------------------------------------ *)

let prop_random_torture =
  QCheck.Test.make
    ~name:"random CSP: torture grid agrees with sequential baseline"
    ~count:25 Gen.prog_arb (fun prog ->
      List.for_all
        (fun por ->
          List.for_all
            (fun exact ->
              let base = Csp.explore ~por ~exact_keys:exact ~jobs:1 ~batch:1 prog in
              List.for_all
                (fun (jobs, batch) ->
                  let o = Csp.explore ~por ~exact_keys:exact ~jobs ~batch prog in
                  fps o.Csp.computations = fps base.Csp.computations
                  && fps o.Csp.deadlocks = fps base.Csp.deadlocks
                  && o.Csp.exhausted = None
                  && base.Csp.exhausted = None)
                torture_grid)
            [ true; false ])
        [ true; false ])

(* Monitor programs exercise the keyless non-POR path too. *)
let prop_random_monitor_torture =
  QCheck.Test.make
    ~name:"random monitor: torture grid agrees with sequential baseline"
    ~count:15 Gen.monitor_arb (fun prog ->
      List.for_all
        (fun por ->
          let base = Monitor.explore ~por ~jobs:1 ~batch:1 prog in
          List.for_all
            (fun (jobs, batch) ->
              let o = Monitor.explore ~por ~jobs ~batch prog in
              fps o.Monitor.computations = fps base.Monitor.computations
              && fps o.Monitor.deadlocks = fps base.Monitor.deadlocks)
            [ (2, 2); (8, 7); (8, 64); (4, 1024) ])
        [ true; false ])

(* ------------------------------------------------------------------ *)
(* Telemetry conservation across the grid                               *)
(* ------------------------------------------------------------------ *)

let with_telemetry f =
  T.reset ();
  T.enable ();
  Fun.protect ~finally:(fun () -> T.disable ()) f

let test_conservation_grid () =
  let prog = RW.program ~monitor:RW.paper_monitor ~readers:2 ~writers:1 in
  List.iter
    (fun por ->
      List.iter
        (fun (jobs, batch) ->
          with_telemetry (fun () ->
              let o = Monitor.explore ~por ~jobs ~batch prog in
              let tag = Printf.sprintf "por=%b jobs=%d batch=%d" por jobs batch in
              check Alcotest.int
                (tag ^ ": telemetry explored = result explored")
                o.Monitor.explored
                (T.read T.Configs_explored);
              check Alcotest.int
                (tag ^ ": telemetry reduced = result reduced")
                o.Monitor.reduced
                (T.read T.Configs_reduced);
              check Alcotest.int
                (tag ^ ": reduced = sleep + memo + local-cache")
                (T.read T.Sleep_prunes + T.read T.Memo_hits
               + T.read T.Local_cache_hits)
                (T.read T.Configs_reduced);
              check Alcotest.bool
                (tag ^ ": batch-probe hits bounded by memo hits")
                true
                (T.read T.Batch_probe_hits <= T.read T.Memo_hits);
              if jobs = 1 then begin
                (* The sequential engine has no chunks to steal and no
                   local cache in front of anything. *)
                check Alcotest.int (tag ^ ": no batches stolen") 0
                  (T.read T.Batches_stolen);
                check Alcotest.int (tag ^ ": no local-cache hits") 0
                  (T.read T.Local_cache_hits)
              end))
        ((1, 64) :: torture_grid))
    [ true; false ]

(* ------------------------------------------------------------------ *)
(* Budget cancellation: first reason wins                               *)
(* ------------------------------------------------------------------ *)

let test_budget_first_reason_wins () =
  let prog = RW.program ~monitor:RW.paper_monitor ~readers:2 ~writers:2 in
  List.iter
    (fun batch ->
      (* A poisoned deadline: every domain notices "expired" on its first
         probe; exactly one reason must surface, and it must be the
         deadline. *)
      let o =
        Monitor.explore ~budget:(Budget.make ~timeout:0.0 ()) ~jobs:8 ~batch prog
      in
      check
        Alcotest.(option string)
        (Printf.sprintf "deadline wins at jobs=8 batch=%d" batch)
        (Some "deadline-exceeded")
        (reason_opt o.Monitor.exhausted);
      (* A config cap races all 8 domains mid-batch: the reason is the
         cap, and the overshoot is bounded (claims already in flight may
         complete, but exploration stops promptly). *)
      let cap = 40 in
      let o =
        Monitor.explore
          ~budget:(Budget.make ~max_configs:cap ())
          ~jobs:8 ~batch prog
      in
      check
        Alcotest.(option string)
        (Printf.sprintf "config-budget wins at jobs=8 batch=%d" batch)
        (Some "config-budget")
        (reason_opt o.Monitor.exhausted))
    [ 1; 2; 7; 64; 1024 ]

(* ------------------------------------------------------------------ *)
(* Fault injection: domains that refuse to start                        *)
(* ------------------------------------------------------------------ *)

let test_domain_start_faults () =
  let prog = RW.program ~monitor:RW.paper_monitor ~readers:2 ~writers:1 in
  let base = Monitor.explore ~jobs:1 ~batch:1 prog in
  List.iter
    (fun (seed, period) ->
      (* Period 1 kills EVERY spawn (the initiating domain alone drains
         the frontier); period 2 kills roughly half the fleet. Either
         way the shrunken fleet must terminate with the same answer. *)
      (match Faults.arm (Printf.sprintf "%d:%d:domain-start" seed period) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "fault spec rejected: %s" e);
      Fun.protect
        ~finally:(fun () -> Faults.disarm ())
        (fun () ->
          let o = Monitor.explore ~jobs:8 ~batch:7 prog in
          let tag = Printf.sprintf "GEM_FAULT %d:%d:domain-start" seed period in
          check
            Alcotest.(list string)
            (tag ^ ": completed multiset")
            (fps base.Monitor.computations)
            (fps o.Monitor.computations);
          check
            Alcotest.(list string)
            (tag ^ ": deadlock multiset")
            (fps base.Monitor.deadlocks)
            (fps o.Monitor.deadlocks);
          check
            Alcotest.(option string)
            (tag ^ ": exhaustion")
            (reason_opt base.Monitor.exhausted)
            (reason_opt o.Monitor.exhausted)))
    [ (42, 1); (42, 2); (7, 3) ]

(* ------------------------------------------------------------------ *)
(* jobs >> frontier: the partial-chunk flush regression                 *)
(* ------------------------------------------------------------------ *)

(* A 1-configuration program: one process, no statements. The root is
   the only configuration; with batch 64 it never fills a chunk, so
   termination depends on the end-of-chunk partial flush (a worker that
   kept a partial chunk private would leave in_flight stuck and the
   fleet spinning). *)
let test_tiny_frontier () =
  let one_config : Csp.program =
    [ { Csp.proc_name = "P"; locals = []; code = [] } ]
  in
  List.iter
    (fun (jobs, batch) ->
      let o = Csp.explore ~jobs ~batch one_config in
      let tag = Printf.sprintf "1-config jobs=%d batch=%d" jobs batch in
      check Alcotest.int (tag ^ ": one computation") 1
        (List.length o.Csp.computations);
      check Alcotest.int (tag ^ ": no deadlocks") 0
        (List.length o.Csp.deadlocks);
      check
        Alcotest.(option string)
        (tag ^ ": not exhausted") None
        (reason_opt o.Csp.exhausted))
    [ (8, 64); (8, 1024); (8, 1); (2, 1024) ];
  (* Slightly larger than one config but still far smaller than the
     fleet: every worker but one parks immediately. *)
  let tiny = Rwd.csp_program ~readers:1 ~writers:1 in
  let base = Csp.explore ~jobs:1 ~batch:1 tiny in
  let o = Csp.explore ~jobs:8 ~batch:1024 tiny in
  check
    Alcotest.(list string)
    "tiny frontier at jobs=8 batch=1024: completed multiset"
    (fps base.Csp.computations) (fps o.Csp.computations)

let () =
  let to_alc = QCheck_alcotest.to_alcotest in
  Alcotest.run "gem_sched"
    [
      ( "acceptance",
        [
          Alcotest.test_case "verdicts byte-identical on (jobs x batch) grid"
            `Quick test_acceptance_grid;
        ] );
      ( "torture-parity",
        [
          Alcotest.test_case "fixed workloads across grid" `Quick
            test_fixed_workload_parity;
        ] );
      ( "random-programs",
        [ to_alc prop_random_torture; to_alc prop_random_monitor_torture ] );
      ( "conservation",
        [ Alcotest.test_case "counter invariants on grid" `Quick test_conservation_grid ] );
      ( "budget",
        [
          Alcotest.test_case "first reason wins under cancellation" `Quick
            test_budget_first_reason_wins;
        ] );
      ( "faults",
        [
          Alcotest.test_case "domain-start injection" `Quick
            test_domain_start_faults;
        ] );
      ( "tiny-frontier",
        [ Alcotest.test_case "jobs exceed frontier" `Quick test_tiny_frontier ] );
    ]
